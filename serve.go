package hyperdom

import (
	"hyperdom/internal/server"
	"hyperdom/internal/shard"
)

// ShardedIndex is a space-partitioned scatter-gather kNN index: the
// dataset is carved into shards, each searched by its own worker pool, and
// queries merge the per-shard candidate streams under the global Sk with
// cross-shard distK pushdown. Result sets are bit-identical to a
// single-index search when the criterion is sound (Hyperbola, Exact). See
// DESIGN.md §13.
type ShardedIndex = shard.Index

// ShardOptions configures BuildSharded.
type ShardOptions = shard.Options

// BuildSharded partitions items into opts.Shards space-partitioned shards
// (sample-based balanced splits over item centers) and starts an engine
// pool per shard. Close the returned index to stop the pools.
func BuildSharded(items []Item, dim int, opts ShardOptions) (*ShardedIndex, error) {
	return shard.Build(items, dim, opts)
}

// OpenShardOptions configures OpenSharded. The structural build
// parameters (substrate, dimensionality, shard count) come from the
// snapshot directory's manifest; this only picks serving parameters.
type OpenShardOptions = shard.OpenOptions

// OpenSharded loads a snapshot directory written by ShardedIndex.SaveDir
// (or datagen -freeze) into a serving index without rebuilding any tree:
// every shard file is mmapped where the platform supports it and answers
// are bit-identical to the index that was saved. Close the returned index
// to stop the pools and unmap the snapshots; result Center slices alias
// the mapping, so close only after results are no longer in use. See
// DESIGN.md §16.
func OpenSharded(dir string, opts OpenShardOptions) (*ShardedIndex, error) {
	return shard.OpenDir(dir, opts)
}

// Server is the HTTP+JSON front of the sharded layer: multi-collection
// routing, kNN and dominance endpoints under /v1/collections/{name}/, and
// the obs exposition (/metrics, /debug) mounted beside them. See
// cmd/hyperdomd for the serving binary.
type Server = server.Server

// NewServer returns a server with no collections; attach ShardedIndexes
// with AddCollection and serve Handler().
func NewServer() *Server { return server.New() }
