// Command hyperdomd serves the sharded scatter-gather kNN layer over HTTP
// (DESIGN.md §13): it loads one or more hypersphere collections, carves
// each into space-partitioned shards with their own engine pools, and
// exposes the paper's Definition 2 kNN query plus single dominance checks
// as JSON endpoints, with the full obs stack (Prometheus /metrics, /debug
// handlers) mounted beside them.
//
//	hyperdomd -data corpus.csv -shards 4
//	curl -s localhost:8080/v1/collections/default/knn \
//	  -d '{"center":[57.1,49.9,50.7],"radius":0.5,"k":5}'
//
// With -oracle it instead answers one query in process over a plain
// single-index search and prints {"ids":[...]} — the ground truth the CI
// server-e2e job diffs the HTTP answer against.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hyperdom/internal/buildinfo"
	"hyperdom/internal/dataset"
	"hyperdom/internal/dominance"
	"hyperdom/internal/geom"
	"hyperdom/internal/knn"
	"hyperdom/internal/obs"
	"hyperdom/internal/server"
	"hyperdom/internal/shard"
	"hyperdom/internal/sstree"
)

type config struct {
	addr        string
	data        string
	collections string
	n, d        int
	seed        int64
	shards      int
	workers     int
	substrate   string
	maxFill     int
	algo        string
	quant       string
	noPushdown  bool

	snapshotDir    string
	snapshotVerify bool

	timelinePeriod time.Duration
	timelineSlots  int
	healthP99      time.Duration
	healthErrRate  float64
	healthQueueSat float64

	oracle  bool
	k       int
	query   string
	qradius float64
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("hyperdomd", flag.ContinueOnError)
	var c config
	fs.StringVar(&c.addr, "addr", ":8080", "listen address")
	fs.StringVar(&c.data, "data", "", `CSV corpus ("id,radius,c1,…,cd") for the "default" collection; empty generates a synthetic one`)
	fs.StringVar(&c.collections, "collections", "", "extra collections as name=path[,name=path...]")
	fs.IntVar(&c.n, "n", 2000, "synthetic corpus size (when -data is empty)")
	fs.IntVar(&c.d, "d", 4, "synthetic corpus dimensionality")
	fs.Int64Var(&c.seed, "seed", 1, "synthetic corpus seed")
	fs.IntVar(&c.shards, "shards", 2, "shards per collection")
	fs.IntVar(&c.workers, "workers-per-shard", 0, "engine workers per shard (0 = auto)")
	fs.StringVar(&c.substrate, "substrate", "sstree", "index substrate: sstree|mtree|rtree")
	fs.IntVar(&c.maxFill, "maxfill", 0, "substrate node capacity (0 = default)")
	fs.StringVar(&c.algo, "algo", "hs", "per-shard traversal: hs|df")
	fs.StringVar(&c.quant, "quant", "f32", "coarse-filter tier: none|f32|i8")
	fs.BoolVar(&c.noPushdown, "no-pushdown", false, "disable cross-shard distK pushdown")
	fs.StringVar(&c.snapshotDir, "snapshot-dir", "", "snapshot root: each collection loads zero-copy from DIR/<name> when present and compatible, else builds and saves there for the next start")
	fs.BoolVar(&c.snapshotVerify, "snapshot-verify", false, "checksum every snapshot section at load (trades the lazy mmap cold-start for eager corruption detection)")
	fs.DurationVar(&c.timelinePeriod, "timeline-period", obs.DefaultTimelinePeriod, "telemetry timeline tick (window rotation) period")
	fs.IntVar(&c.timelineSlots, "timeline-slots", obs.DefaultTimelineSlots, "telemetry timeline ring capacity (snapshots retained)")
	fs.DurationVar(&c.healthP99, "health-p99", 250*time.Millisecond, "degraded when windowed request p99 exceeds this (0 disables)")
	fs.Float64Var(&c.healthErrRate, "health-error-rate", 0.05, "degraded when windowed 5xx fraction exceeds this (0 disables)")
	fs.Float64Var(&c.healthQueueSat, "health-queue-sat", 0.8, "degraded when engine queue depth/capacity exceeds this (0 disables)")
	fs.BoolVar(&c.oracle, "oracle", false, "answer one query in process (single-index oracle) and exit")
	fs.IntVar(&c.k, "k", 5, "oracle: k")
	fs.StringVar(&c.query, "query", "", "oracle: query center as c1,c2,...")
	fs.Float64Var(&c.qradius, "qradius", 0, "oracle: query radius")
	if err := fs.Parse(args); err != nil {
		return c, err
	}
	switch c.algo {
	case "hs", "df":
	default:
		return c, fmt.Errorf("unknown -algo %q", c.algo)
	}
	switch c.quant {
	case "none", "f32", "i8":
	default:
		return c, fmt.Errorf("unknown -quant %q", c.quant)
	}
	return c, nil
}

func (c config) algorithm() knn.Algorithm {
	if c.algo == "df" {
		return knn.DF
	}
	return knn.HS
}

func (c config) quantMode() knn.QuantMode {
	switch c.quant {
	case "none":
		return knn.QuantNone
	case "i8":
		return knn.QuantI8
	}
	return knn.QuantF32
}

// parseCollections splits "name=path,name=path" into ordered pairs.
func parseCollections(s string) ([][2]string, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([][2]string, 0, len(parts))
	for _, p := range parts {
		name, path, ok := strings.Cut(p, "=")
		if !ok || name == "" || path == "" {
			return nil, fmt.Errorf("bad -collections entry %q (want name=path)", p)
		}
		out = append(out, [2]string{name, path})
	}
	return out, nil
}

// parseCenter parses a comma-separated query center.
func parseCenter(s string) ([]float64, error) {
	if s == "" {
		return nil, errors.New("empty -query")
	}
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -query coordinate %q: %v", p, err)
		}
		out[i] = v
	}
	return out, nil
}

func loadCorpus(path string) ([]geom.Item, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	items, err := dataset.LoadCSV(f)
	if err != nil {
		return nil, 0, err
	}
	if len(items) == 0 {
		return nil, 0, fmt.Errorf("%s: empty corpus", path)
	}
	return items, len(items[0].Sphere.Center), nil
}

// syntheticCorpus mirrors the Gaussian workload of the bench fixtures:
// centers at 100±25 per coordinate, radii uniform in [0, 2).
func syntheticCorpus(n, d int, seed int64) []geom.Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]geom.Item, n)
	for i := range items {
		c := make([]float64, d)
		for j := range c {
			c[j] = 100 + rng.NormFloat64()*25
		}
		items[i] = geom.Item{Sphere: geom.NewSphere(c, rng.Float64()*2), ID: i}
	}
	return items
}

// runOracle answers one query over a plain single SS-tree search — the
// in-process ground truth of the CI server-e2e job — and prints the answer
// IDs as JSON.
func runOracle(c config, stdout *os.File) error {
	if c.data == "" {
		return errors.New("-oracle requires -data")
	}
	items, dim, err := loadCorpus(c.data)
	if err != nil {
		return err
	}
	center, err := parseCenter(c.query)
	if err != nil {
		return err
	}
	if len(center) != dim {
		return fmt.Errorf("-query dim %d, corpus dim %d", len(center), dim)
	}
	if c.qradius < 0 {
		return fmt.Errorf("bad -qradius %v", c.qradius)
	}
	t := sstree.New(dim)
	for _, it := range items {
		t.Insert(it)
	}
	res := knn.Search(knn.WrapSSTree(t), geom.NewSphere(center, c.qradius), c.k,
		dominance.Hyperbola{}, c.algorithm())
	ids := make([]int, 0, len(res.Items))
	for _, it := range res.Items {
		ids = append(ids, it.ID)
	}
	return json.NewEncoder(stdout).Encode(map[string]any{"ids": ids})
}

func buildCollection(c config, items []geom.Item, dim int, label string) (*shard.Index, error) {
	return shard.Build(items, dim, shard.Options{
		Shards:          c.shards,
		WorkersPerShard: c.workers,
		Substrate:       c.substrate,
		MaxFill:         c.maxFill,
		Algorithm:       c.algorithm(),
		DisablePushdown: c.noPushdown,
		Label:           label,
	})
}

// mountCollection resolves one collection. With -snapshot-dir set it first
// tries DIR/<name>: a present, compatible snapshot directory mmaps straight
// into serving with no tree rebuild (the instant cold-start path). A
// missing directory falls back to building from the corpus; an unusable one
// (corrupt, version skew) is logged and rebuilt over. Whenever the
// collection had to be built, the fresh index is saved back so the next
// start takes the fast path. corpus is called only when a build is needed.
func mountCollection(c config, name string, corpus func() ([]geom.Item, int, error)) (*shard.Index, error) {
	if c.snapshotDir != "" {
		dir := filepath.Join(c.snapshotDir, name)
		start := time.Now()
		x, err := shard.OpenDir(dir, shard.OpenOptions{
			WorkersPerShard: c.workers,
			Algorithm:       c.algorithm(),
			DisablePushdown: c.noPushdown,
			Label:           name,
			Verify:          c.snapshotVerify,
		})
		if err == nil {
			log.Printf("collection %s: loaded snapshot %s in %v (%d items, dim %d, %d shards)",
				name, dir, time.Since(start).Round(time.Microsecond), x.Len(), x.Dim(), x.Shards())
			return x, nil
		}
		if !errors.Is(err, fs.ErrNotExist) {
			log.Printf("collection %s: snapshot %s unusable, rebuilding: %v", name, dir, err)
		}
	}
	items, dim, err := corpus()
	if err != nil {
		return nil, err
	}
	x, err := buildCollection(c, items, dim, name)
	if err != nil {
		return nil, err
	}
	if c.snapshotDir != "" {
		dir := filepath.Join(c.snapshotDir, name)
		if err := x.SaveDir(dir); err != nil {
			log.Printf("collection %s: snapshot save to %s failed: %v", name, dir, err)
		} else {
			log.Printf("collection %s: snapshot saved to %s", name, dir)
		}
	}
	return x, nil
}

func run(c config) error {
	obs.SetEnabled(true)
	knn.SetQuantMode(c.quantMode())
	obs.SetGauge("build_info",
		fmt.Sprintf(`version=%q,go_version=%q,quant_mode=%q`,
			buildinfo.Version, runtime.Version(), c.quant), 1)

	// Time-aware telemetry (ISSUE 9): the timeline ticker drives window
	// rotation, rate deltas, runtime sampling and the snapshot ring; the
	// health thresholds turn those windows into the /debug/health verdict
	// (and the degraded notes on /readyz).
	obs.SetHealthConfig(obs.HealthConfig{
		LatencyFamily:      "server.request_latency",
		LatencyP99Max:      c.healthP99,
		ErrorRateMax:       c.healthErrRate,
		QueueSaturationMax: c.healthQueueSat,
	})
	obs.StartTimeline(c.timelinePeriod, c.timelineSlots)
	defer obs.StopTimeline()

	srv := server.New(server.WithLogger(slog.New(slog.NewJSONHandler(os.Stderr, nil))))
	defer srv.Close()

	// Listen before building: liveness (/healthz) answers immediately while
	// the corpora load and freeze, and /readyz stays 503 until every
	// collection is mounted — orchestrators gate traffic on readiness, not
	// on the process existing.
	ln, err := net.Listen("tcp", c.addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	log.Printf("hyperdomd listening on %s (not ready)", ln.Addr())

	x, err := mountCollection(c, "default", func() ([]geom.Item, int, error) {
		if c.data != "" {
			return loadCorpus(c.data)
		}
		return syntheticCorpus(c.n, c.d, c.seed), c.d, nil
	})
	if err != nil {
		return err
	}
	if err := srv.AddCollection("default", x); err != nil {
		return err
	}
	log.Printf("collection default: %d items, dim %d, %d shards (%v)", x.Len(), x.Dim(), x.Shards(), x.ShardSizes())

	extra, err := parseCollections(c.collections)
	if err != nil {
		return err
	}
	for _, nc := range extra {
		path := nc[1]
		x, err := mountCollection(c, nc[0], func() ([]geom.Item, int, error) {
			return loadCorpus(path)
		})
		if err != nil {
			return err
		}
		if err := srv.AddCollection(nc[0], x); err != nil {
			return err
		}
		log.Printf("collection %s: %d items, dim %d, %d shards", nc[0], x.Len(), x.Dim(), x.Shards())
	}

	srv.SetReady(true)
	log.Printf("hyperdomd ready (version %s)", buildinfo.Version)
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Graceful drain: stop accepting, let in-flight requests finish, then
	// stop the shard pools (srv.Close via defer).
	log.Printf("shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(sctx); err != nil {
		return err
	}
	return nil
}

func main() {
	c, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	if c.oracle {
		if err := runOracle(c, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "hyperdomd:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(c); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "hyperdomd:", err)
		os.Exit(1)
	}
}
