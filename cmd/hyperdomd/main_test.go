package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"hyperdom/internal/dataset"
	"hyperdom/internal/knn"
)

func TestParseFlagsDefaults(t *testing.T) {
	c, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.addr != ":8080" || c.shards != 2 || c.substrate != "sstree" ||
		c.algo != "hs" || c.quant != "f32" || c.oracle || c.noPushdown {
		t.Fatalf("defaults %+v", c)
	}
	if c.algorithm() != knn.HS || c.quantMode() != knn.QuantF32 {
		t.Fatalf("default algo/quant mapping wrong: %+v", c)
	}
}

func TestParseFlagsRejectsBadEnums(t *testing.T) {
	if _, err := parseFlags([]string{"-algo", "bfs"}); err == nil {
		t.Fatal("bad -algo accepted")
	}
	if _, err := parseFlags([]string{"-quant", "f16"}); err == nil {
		t.Fatal("bad -quant accepted")
	}
}

func TestParseCollections(t *testing.T) {
	got, err := parseCollections("a=x.csv,b=y.csv")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != [2]string{"a", "x.csv"} || got[1] != [2]string{"b", "y.csv"} {
		t.Fatalf("got %v", got)
	}
	if _, err := parseCollections("broken"); err == nil {
		t.Fatal("missing = accepted")
	}
	if got, err := parseCollections(""); err != nil || got != nil {
		t.Fatalf("empty: %v %v", got, err)
	}
}

func TestParseCenter(t *testing.T) {
	got, err := parseCenter("1, 2.5,-3")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2.5 || got[2] != -3 {
		t.Fatalf("got %v", got)
	}
	if _, err := parseCenter(""); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := parseCenter("1,x"); err == nil {
		t.Fatal("junk accepted")
	}
}

// TestOracleRoundTrip drives the -oracle path end to end: write a corpus,
// query it, and check the printed IDs against an in-process search over
// the same items.
func TestOracleRoundTrip(t *testing.T) {
	items := syntheticCorpus(200, 3, 7)
	path := filepath.Join(t.TempDir(), "corpus.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteCSV(f, items); err != nil {
		t.Fatal(err)
	}
	f.Close()

	out := filepath.Join(t.TempDir(), "out.json")
	of, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	c := config{data: path, oracle: true, k: 5, query: "100,100,100", qradius: 0.5, algo: "hs"}
	if err := runOracle(c, of); err != nil {
		t.Fatal(err)
	}
	of.Close()
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		IDs []int `json:"ids"`
	}
	if err := json.Unmarshal(bytes.TrimSpace(raw), &got); err != nil {
		t.Fatal(err)
	}
	if len(got.IDs) < 5 {
		t.Fatalf("oracle returned %d ids: %v", len(got.IDs), got.IDs)
	}
}
