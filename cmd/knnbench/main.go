// Command knnbench regenerates the kNN figures of the paper (Figures
// 13–16): query time and precision of the eight algorithm variants
// {HS, DF} × {Hyper, MinMax, MBR, GP} over an SS-tree.
//
// Usage:
//
//	knnbench [-fig N] [-scale S] [-seed N] [-quant none|f32|i8] [-parallel 1,2,4,8]
//
//	-fig      figure to run: 13, 14, 15, 16, or 0 for all (default 0);
//	          17 runs the index-comparison extension experiment
//	-scale    dataset/query scale relative to the paper's (default 0.02;
//	          1.0 reproduces the full cardinalities — budget hours)
//	-seed     RNG seed (default 1)
//	-shadow   audit every dominance check against Hyperbola and count
//	          per-criterion disagreements (Table 1 in vivo; slows checks)
//	-quant    quantized coarse-filter tier for frozen-snapshot searches
//	          (none, f32, i8; default f32 — results are identical across
//	          tiers, only the traversal cost changes; see DESIGN.md §12)
//	-parallel comma-separated worker-pool widths; runs the batch-engine
//	          scaling experiment over a frozen SS-tree instead of the
//	          figures and prints a queries/s table per width
//	-shards   comma-separated shard counts; runs the scatter-gather
//	          shard-scaling experiment (DESIGN.md §13) instead of the
//	          figures and prints a queries/s table per count
//	-load     open a snapshot directory written by datagen -freeze or
//	          hyperdomd/shard SaveDir and benchmark serving straight off
//	          the mmapped files (no tree rebuild) instead of the figures;
//	          prints open latency and queries/s
//
// The shared observability flags apply as well; in particular
// `-trace out.json` samples every `-trace-every`-th search (default 16,
// matching README "Tracing a slow query") for execution tracing and
// exports the retained traces — tagged with the trace_id that /debug/slow
// flight records carry — as Chrome trace_event JSON on exit (DESIGN.md
// §10).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"hyperdom/internal/dominance"
	"hyperdom/internal/experiments"
	"hyperdom/internal/geom"
	"hyperdom/internal/knn"
	"hyperdom/internal/obs"
	"hyperdom/internal/shard"
)

func main() {
	fig := flag.Int("fig", 0, "figure to run (13-16, 0 = all)")
	scale := flag.Float64("scale", 0.02, "workload scale relative to the paper")
	seed := flag.Int64("seed", 1, "random seed")
	shadow := flag.Bool("shadow", false,
		"shadow-evaluate every dominance check against Hyperbola and count per-criterion disagreements")
	parallel := flag.String("parallel", "",
		"comma-separated engine pool widths (e.g. 1,2,4,8); runs the batch-engine scaling experiment instead of the figures")
	shards := flag.String("shards", "",
		"comma-separated shard counts (e.g. 1,2,4); runs the scatter-gather shard-scaling experiment instead of the figures")
	load := flag.String("load", "",
		"snapshot directory to open and benchmark (skips the figures and any index build)")
	quant := flag.String("quant", "f32",
		"quantized coarse-filter tier for frozen-snapshot searches (none, f32, i8)")
	pf := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	if *shadow {
		dominance.SetShadow(true)
	}
	qm, err := knn.ParseQuantMode(*quant)
	if err != nil {
		fmt.Fprintf(os.Stderr, "knnbench: -quant: %v\n", err)
		os.Exit(2)
	}
	knn.SetQuantMode(qm)

	// Figure timings must stay comparable to the paper's, so the counter
	// gate stays off unless observability output was actually asked for.
	if !pf.Wanted() {
		obs.SetEnabled(false)
	}
	stop, err := pf.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "knnbench: %v\n", err)
		os.Exit(2)
	}
	defer stop()

	cfg := experiments.Config{Scale: *scale, Seed: *seed}
	if *load != "" {
		if err := runLoaded(*load, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "knnbench: -load: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *parallel != "" {
		widths, err := parseWidths(*parallel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "knnbench: -parallel: %v\n", err)
			os.Exit(2)
		}
		before := figureMetricsStart(pf)
		fmt.Println(experiments.RunParallel(cfg, widths).Table().Render())
		figureMetricsEnd(pf, 0, before)
		return
	}
	if *shards != "" {
		counts, err := parseWidths(*shards)
		if err != nil {
			fmt.Fprintf(os.Stderr, "knnbench: -shards: %v\n", err)
			os.Exit(2)
		}
		before := figureMetricsStart(pf)
		fmt.Println(experiments.RunSharded(cfg, counts).Table().Render())
		figureMetricsEnd(pf, 0, before)
		return
	}
	if *fig == 17 {
		before := figureMetricsStart(pf)
		fmt.Println(experiments.RunIndexComparison(cfg).Table().Render())
		figureMetricsEnd(pf, 17, before)
		return
	}
	runners := map[int]func(experiments.Config) experiments.KnnResult{
		13: experiments.Fig13,
		14: experiments.Fig14,
		15: experiments.Fig15,
		16: experiments.Fig16,
	}
	order := []int{13, 14, 15, 16}

	selected := order
	if *fig != 0 {
		if _, ok := runners[*fig]; !ok {
			fmt.Fprintf(os.Stderr, "knnbench: unknown figure %d (want 13-16)\n", *fig)
			os.Exit(2)
		}
		selected = []int{*fig}
	}

	for _, f := range selected {
		before := figureMetricsStart(pf)
		res := runners[f](cfg)
		fmt.Println(res.TimeTable().Render())
		fmt.Println(res.PrecisionTable().Render())
		figureMetricsEnd(pf, f, before)
	}
}

// runLoaded opens a snapshot directory and benchmarks serving directly off
// it: open+validate latency first (the cold-start the zero-copy format
// exists for), then sustained queries/s over the standard Gaussian query
// mix (centers 100±25 per coordinate, matching the synthetic corpora).
func runLoaded(dir string, seed int64) error {
	start := time.Now()
	x, err := shard.OpenDir(dir, shard.OpenOptions{Algorithm: knn.HS})
	if err != nil {
		return err
	}
	defer x.Close()
	openLat := time.Since(start)
	fmt.Printf("opened %s in %v: %d items, dim %d, %d shards\n",
		dir, openLat.Round(time.Microsecond), x.Len(), x.Dim(), x.Shards())

	rng := rand.New(rand.NewSource(seed))
	const nq, k = 2000, 10
	queries := make([]geom.Sphere, nq)
	for i := range queries {
		c := make([]float64, x.Dim())
		for j := range c {
			c[j] = 100 + rng.NormFloat64()*25
		}
		queries[i] = geom.NewSphere(c, rng.Float64()*2)
	}
	for i := 0; i < 64; i++ { // warm the mapping and the scratch pools
		x.Search(queries[i%nq], k)
	}
	bstart := time.Now()
	for _, q := range queries {
		x.Search(q, k)
	}
	el := time.Since(bstart)
	fmt.Printf("%d queries (k=%d) in %v: %.0f queries/s\n",
		nq, k, el.Round(time.Millisecond), float64(nq)/el.Seconds())
	return nil
}

// parseWidths parses the -parallel value: comma-separated positive pool
// widths.
func parseWidths(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	widths := make([]int, 0, len(parts))
	for _, p := range parts {
		w, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad pool width %q (want positive integers, e.g. 1,2,4,8)", p)
		}
		widths = append(widths, w)
	}
	return widths, nil
}

// figureMetricsStart honors an explicit -metrics per figure: the counter
// gate is (re-)enabled before each figure — regardless of what an earlier
// figure or timing loop left it at — and the registry snapshotted so the
// figure's own counter diff can be printed afterwards.
func figureMetricsStart(pf *obs.ProfileFlags) obs.Snap {
	if !pf.Metrics {
		return nil
	}
	obs.SetEnabled(true)
	return obs.Snapshot()
}

// figureMetricsEnd prints the counters one figure moved, to stderr so the
// figure tables on stdout stay machine-readable.
func figureMetricsEnd(pf *obs.ProfileFlags, fig int, before obs.Snap) {
	if before == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "-- fig %d counters --\n", fig)
	obs.Snapshot().Diff(before).Fprint(os.Stderr)
}
