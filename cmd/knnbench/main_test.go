package main

import (
	"reflect"
	"testing"
)

func TestParseWidths(t *testing.T) {
	got, err := parseWidths("1,2, 4,8")
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{1, 2, 4, 8}; !reflect.DeepEqual(got, want) {
		t.Errorf("parseWidths = %v, want %v", got, want)
	}
	for _, bad := range []string{"", "0", "-1", "two", "1,,2", "1,2,"} {
		if widths, err := parseWidths(bad); err == nil {
			t.Errorf("parseWidths(%q) = %v, want error", bad, widths)
		}
	}
}
