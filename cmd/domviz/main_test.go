package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunRendersSVG(t *testing.T) {
	input := `{"sa":{"center":[0,0],"radius":1},"sb":{"center":[9,0],"radius":1},"sq":{"center":[-4,0],"radius":2}}`
	var out bytes.Buffer
	if err := run(strings.NewReader(input), &out, 320); err != nil {
		t.Fatalf("run: %v", err)
	}
	svg := out.String()
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Error("output is not an SVG document")
	}
	if !strings.Contains(svg, `width="320"`) {
		t.Error("width flag not honoured")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"3d":         `{"sa":{"center":[0,0,0],"radius":1},"sb":{"center":[9,0,0],"radius":1},"sq":{"center":[-4,0,0],"radius":2}}`,
		"negative r": `{"sa":{"center":[0,0],"radius":-1},"sb":{"center":[9,0],"radius":1},"sq":{"center":[-4,0],"radius":2}}`,
		"garbage":    `nope`,
	}
	for name, input := range cases {
		var out bytes.Buffer
		if err := run(strings.NewReader(input), &out, 100); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
