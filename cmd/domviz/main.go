// Command domviz renders a 2-D dominance instance as SVG — the picture of
// the paper's Figures 1 and 6: the three spheres and the hyperbola
// boundary of the region Ra, captioned with the optimal verdict.
//
// Input is the same JSON as cmd/domquery:
//
//	{
//	  "sa": {"center": [0, 0], "radius": 1},
//	  "sb": {"center": [9, 0], "radius": 1},
//	  "sq": {"center": [-4, 0], "radius": 2}
//	}
//
// Usage:
//
//	domviz [-in FILE] [-o FILE] [-width N]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"hyperdom"
	"hyperdom/internal/viz"
)

type sphereJSON struct {
	Center []float64 `json:"center"`
	Radius float64   `json:"radius"`
}

type queryJSON struct {
	Sa sphereJSON `json:"sa"`
	Sb sphereJSON `json:"sb"`
	Sq sphereJSON `json:"sq"`
}

func main() {
	in := flag.String("in", "", "input file (default stdin)")
	out := flag.String("o", "", "output file (default stdout)")
	width := flag.Int("width", 640, "SVG width in pixels")
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal("opening %s: %v", *in, err)
		}
		defer f.Close()
		r = f
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("creating %s: %v", *out, err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal("closing %s: %v", *out, err)
			}
		}()
		w = f
	}
	if err := run(r, w, *width); err != nil {
		fatal("%v", err)
	}
}

// run decodes one instance from r and writes its SVG rendering to w.
func run(r io.Reader, w io.Writer, width int) error {
	var q queryJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&q); err != nil {
		return fmt.Errorf("decoding query: %w", err)
	}
	for _, s := range []sphereJSON{q.Sa, q.Sb, q.Sq} {
		if len(s.Center) != 2 {
			return fmt.Errorf("domviz renders 2-dimensional instances only")
		}
		if s.Radius < 0 {
			return fmt.Errorf("radius must be non-negative")
		}
	}
	svg, err := viz.RenderSVG(
		hyperdom.NewSphere(q.Sa.Center, q.Sa.Radius),
		hyperdom.NewSphere(q.Sb.Center, q.Sb.Radius),
		hyperdom.NewSphere(q.Sq.Center, q.Sq.Radius),
		viz.Options{Width: width},
	)
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, svg)
	return err
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "domviz: "+format+"\n", args...)
	os.Exit(2)
}
