package main

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"hyperdom/internal/dataset"
)

func TestBuildPointSet(t *testing.T) {
	ps, err := buildPointSet("synthetic", 100, 3, "G", 1)
	if err != nil {
		t.Fatalf("synthetic: %v", err)
	}
	if len(ps.Points) != 100 || ps.Dim != 3 {
		t.Errorf("synthetic shape %d × %dd", len(ps.Points), ps.Dim)
	}
	if _, err := buildPointSet("synthetic", 100, 3, "X", 1); err == nil {
		t.Error("bad distribution accepted")
	}
	if _, err := buildPointSet("synthetic", 0, 3, "G", 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := buildPointSet("mars", 1, 1, "G", 1); err == nil {
		t.Error("unknown dataset accepted")
	}
	for _, name := range []string{"nba", "color", "texture", "forest"} {
		if _, err := buildPointSet(name, 0, 0, "", 0); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestWriteCSVRoundTrip(t *testing.T) {
	ps, _ := buildPointSet("synthetic", 50, 4, "U", 7)
	items := dataset.Spheres(ps, dataset.GaussianRadii(10), 8)
	var buf bytes.Buffer
	if err := dataset.WriteCSV(&buf, items); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 50 {
		t.Fatalf("got %d lines, want 50", len(lines))
	}
	for i, line := range lines {
		fields := strings.Split(line, ",")
		if len(fields) != 2+4 {
			t.Fatalf("line %d has %d fields, want 6", i, len(fields))
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil || id != i {
			t.Fatalf("line %d: id field %q", i, fields[0])
		}
		r, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || r != items[i].Sphere.Radius {
			t.Fatalf("line %d: radius %q does not round-trip", i, fields[1])
		}
		for j := 0; j < 4; j++ {
			c, err := strconv.ParseFloat(fields[2+j], 64)
			if err != nil || c != items[i].Sphere.Center[j] {
				t.Fatalf("line %d: coordinate %d does not round-trip", i, j)
			}
		}
	}
}
