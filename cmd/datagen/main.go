// Command datagen writes the evaluation datasets to CSV so they can be
// inspected or consumed by external tooling. Each output row is
// "id,radius,c1,c2,…,cd".
//
// Usage:
//
//	datagen -dataset NAME [-n N] [-d D] [-mu MU] [-seed S] [-o FILE]
//
//	-dataset  synthetic | nba | color | texture | forest (default synthetic)
//	-n        synthetic only: number of spheres (default 100000)
//	-d        synthetic only: dimensionality (default 6)
//	-dist     synthetic only: center distribution, G or U (default G)
//	-mu       average radius μ; radii ~ N(μ, μ/4) clamped at 0 (default 50)
//	-seed     RNG seed (default 1)
//	-o        output file (default stdout)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hyperdom/internal/dataset"
)

func main() {
	name := flag.String("dataset", "synthetic", "dataset: synthetic|nba|color|texture|forest")
	n := flag.Int("n", 100000, "synthetic: number of spheres")
	d := flag.Int("d", 6, "synthetic: dimensionality")
	dist := flag.String("dist", "G", "synthetic: center distribution (G or U)")
	mu := flag.Float64("mu", 50, "average radius")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	ps, err := buildPointSet(*name, *n, *d, *dist, *seed)
	if err != nil {
		fatal("%v", err)
	}
	items := dataset.Spheres(ps, dataset.GaussianRadii(*mu), *seed+1)

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("creating %s: %v", *out, err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal("closing %s: %v", *out, err)
			}
		}()
		w = f
	}
	if err := dataset.WriteCSV(w, items); err != nil {
		fatal("writing: %v", err)
	}
}

// buildPointSet resolves the -dataset/-n/-d/-dist flags into a point set.
func buildPointSet(name string, n, d int, dist string, seed int64) (dataset.PointSet, error) {
	switch name {
	case "synthetic":
		var cd dataset.Distribution
		switch dist {
		case "G":
			cd = dataset.Gaussian
		case "U":
			cd = dataset.Uniform
		default:
			return dataset.PointSet{}, fmt.Errorf("unknown distribution %q (want G or U)", dist)
		}
		if n <= 0 || d <= 0 {
			return dataset.PointSet{}, fmt.Errorf("invalid synthetic shape n=%d d=%d", n, d)
		}
		return dataset.SyntheticCenters(n, d, cd, seed), nil
	case "nba":
		return dataset.NBA(), nil
	case "color":
		return dataset.Color(), nil
	case "texture":
		return dataset.Texture(), nil
	case "forest":
		return dataset.Forest(), nil
	}
	return dataset.PointSet{}, fmt.Errorf("unknown dataset %q", name)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "datagen: "+format+"\n", args...)
	os.Exit(2)
}
