// Command datagen writes the evaluation datasets to CSV so they can be
// inspected or consumed by external tooling. Each output row is
// "id,radius,c1,c2,…,cd".
//
// Usage:
//
//	datagen -dataset NAME [-n N] [-d D] [-mu MU] [-seed S] [-o FILE]
//
//	-dataset  synthetic | nba | color | texture | forest (default synthetic)
//	-n        synthetic only: number of spheres (default 100000)
//	-d        synthetic only: dimensionality (default 6)
//	-dist     synthetic only: center distribution, G or U (default G)
//	-mu       average radius μ; radii ~ N(μ, μ/4) clamped at 0 (default 50)
//	-seed     RNG seed (default 1)
//	-o        output file (default stdout)
//
// With -freeze DIR the dataset is additionally built into a sharded index
// and persisted as a packed snapshot directory (shard-NNNN.hds files plus
// manifest.json) that hyperdomd -snapshot-dir and knnbench -load open
// zero-copy — point hyperdomd's -snapshot-dir at DIR's parent, or name DIR
// "<root>/default". -shards/-substrate/-maxfill shape the frozen index.
// CSV floats round-trip exactly (strconv 'g' -1), so a snapshot frozen
// here answers bit-identically to an index built from the written CSV.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hyperdom/internal/dataset"
	"hyperdom/internal/shard"
)

func main() {
	name := flag.String("dataset", "synthetic", "dataset: synthetic|nba|color|texture|forest")
	n := flag.Int("n", 100000, "synthetic: number of spheres")
	d := flag.Int("d", 6, "synthetic: dimensionality")
	dist := flag.String("dist", "G", "synthetic: center distribution (G or U)")
	mu := flag.Float64("mu", 50, "average radius")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "", "output file (default stdout)")
	freeze := flag.String("freeze", "", "also build a sharded index and save it as a snapshot directory here")
	shards := flag.Int("shards", 2, "freeze: shard count")
	substrate := flag.String("substrate", "sstree", "freeze: index substrate (sstree|mtree|rtree)")
	maxFill := flag.Int("maxfill", 0, "freeze: substrate node capacity (0 = default)")
	flag.Parse()

	ps, err := buildPointSet(*name, *n, *d, *dist, *seed)
	if err != nil {
		fatal("%v", err)
	}
	items := dataset.Spheres(ps, dataset.GaussianRadii(*mu), *seed+1)

	// CSV goes to stdout only when no snapshot was asked for — a -freeze
	// run without -o should not flood the terminal with the corpus.
	if *out != "" || *freeze == "" {
		var w io.Writer = os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal("creating %s: %v", *out, err)
			}
			defer func() {
				if err := f.Close(); err != nil {
					fatal("closing %s: %v", *out, err)
				}
			}()
			w = f
		}
		if err := dataset.WriteCSV(w, items); err != nil {
			fatal("writing: %v", err)
		}
	}

	if *freeze != "" {
		if len(items) == 0 {
			fatal("-freeze: empty dataset")
		}
		dim := len(items[0].Sphere.Center)
		x, err := shard.Build(items, dim, shard.Options{
			Shards:    *shards,
			Substrate: *substrate,
			MaxFill:   *maxFill,
		})
		if err != nil {
			fatal("-freeze: %v", err)
		}
		defer x.Close()
		if err := x.SaveDir(*freeze); err != nil {
			fatal("-freeze: %v", err)
		}
		fmt.Fprintf(os.Stderr, "datagen: froze %d items (dim %d) into %s (%d shards, %s)\n",
			x.Len(), dim, *freeze, x.Shards(), *substrate)
	}
}

// buildPointSet resolves the -dataset/-n/-d/-dist flags into a point set.
func buildPointSet(name string, n, d int, dist string, seed int64) (dataset.PointSet, error) {
	switch name {
	case "synthetic":
		var cd dataset.Distribution
		switch dist {
		case "G":
			cd = dataset.Gaussian
		case "U":
			cd = dataset.Uniform
		default:
			return dataset.PointSet{}, fmt.Errorf("unknown distribution %q (want G or U)", dist)
		}
		if n <= 0 || d <= 0 {
			return dataset.PointSet{}, fmt.Errorf("invalid synthetic shape n=%d d=%d", n, d)
		}
		return dataset.SyntheticCenters(n, d, cd, seed), nil
	case "nba":
		return dataset.NBA(), nil
	case "color":
		return dataset.Color(), nil
	case "texture":
		return dataset.Texture(), nil
	case "forest":
		return dataset.Forest(), nil
	}
	return dataset.PointSet{}, fmt.Errorf("unknown dataset %q", name)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "datagen: "+format+"\n", args...)
	os.Exit(2)
}
