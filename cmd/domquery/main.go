// Command domquery evaluates one dominance query from JSON and reports the
// verdict of every criterion, a structured way to explore the operator.
//
// Input (stdin or -in FILE):
//
//	{
//	  "sa": {"center": [0, 0], "radius": 1},
//	  "sb": {"center": [9, 0], "radius": 1},
//	  "sq": {"center": [-4, 0], "radius": 2}
//	}
//
// Output: one JSON object with each criterion's verdict, the optimal
// verdict, and — when dominance fails — a witness point inside Sq whose
// distance margin certifies the failure.
//
// The shared observability flags are available too: `domquery -serve :6060`
// answers the query and then keeps serving /metrics, /debug/slow and
// /debug/pprof until interrupted, so the criterion counters the query moved
// can be inspected. With `-trace out.json` the query's criterion-by-
// criterion evaluation is recorded as an execution trace — one DomCheck
// event per criterion plus a shadow-disagreement event wherever a cheap
// criterion contradicts Hyperbola — and exported as Chrome trace_event
// JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"hyperdom"
	"hyperdom/internal/obs"
)

type sphereJSON struct {
	Center []float64 `json:"center"`
	Radius float64   `json:"radius"`
}

type queryJSON struct {
	Sa sphereJSON `json:"sa"`
	Sb sphereJSON `json:"sb"`
	Sq sphereJSON `json:"sq"`
}

type resultJSON struct {
	Dominates bool            `json:"dominates"`
	Verdicts  map[string]bool `json:"verdicts"`
	Witness   *witnessJSON    `json:"witness,omitempty"`
}

type witnessJSON struct {
	Q      []float64 `json:"q"`
	Margin float64   `json:"margin"`
}

func main() {
	in := flag.String("in", "", "input file (default stdin)")
	pf := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	stop, err := pf.Start()
	if err != nil {
		fatal("%v", err)
	}

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal("opening %s: %v", *in, err)
		}
		defer f.Close()
		r = f
	}
	var tb *obs.TraceBuf
	if obs.TraceEnabled() {
		tb = &obs.TraceBuf{}
	}
	if err := run(r, os.Stdout, tb); err != nil {
		fatal("%v", err)
	}
	stop()
}

// run decodes one query from r, evaluates it and writes the JSON result to
// w, recording the evaluation into tb (may be nil) for -trace. Extracted
// from main so the full pipeline is unit-testable.
func run(r io.Reader, w io.Writer, tb *obs.TraceBuf) error {
	var q queryJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&q); err != nil {
		return fmt.Errorf("decoding query: %w", err)
	}
	for _, s := range []sphereJSON{q.Sa, q.Sb, q.Sq} {
		if len(s.Center) == 0 {
			return fmt.Errorf("every sphere needs a non-empty center")
		}
		if len(s.Center) != len(q.Sa.Center) {
			return fmt.Errorf("spheres must share one dimensionality")
		}
		if s.Radius < 0 {
			return fmt.Errorf("radius must be non-negative")
		}
	}

	sa := hyperdom.NewSphere(q.Sa.Center, q.Sa.Radius)
	sb := hyperdom.NewSphere(q.Sb.Center, q.Sb.Radius)
	sq := hyperdom.NewSphere(q.Sq.Center, q.Sq.Radius)

	start := time.Now()
	if tb != nil {
		tb.Begin(start)
	}
	res := resultJSON{Verdicts: map[string]bool{}}
	for _, c := range hyperdom.Criteria() {
		v := c.Dominates(sa, sb, sq)
		res.Verdicts[c.Name()] = v
		if tb != nil {
			tb.DomCheck(0, obs.FlightLabel(c.Name()), -1, v, 0)
		}
	}
	res.Dominates = res.Verdicts["Hyperbola"]
	if tb != nil {
		for name, v := range res.Verdicts {
			if name != "Hyperbola" && v != res.Dominates {
				tb.Shadow(obs.FlightLabel(name), v, res.Dominates)
			}
		}
		lat := time.Since(start).Nanoseconds()
		qt := tb.Finish(obs.FlightLabel("domquery"), obs.FlightLabel("criteria"), 0, start.UnixNano(), lat)
		obs.Flight.Record(obs.FlightSample{
			WhenUnixNs: start.UnixNano(),
			LatencyNs:  lat,
			Substrate:  qt.Substrate,
			Algo:       qt.Algo,
			DomChecks:  uint64(len(res.Verdicts)),
			Trace:      qt,
		})
	}
	if !res.Dominates {
		if wit := hyperdom.FindWitness(sa, sb, sq, 2048); wit != nil {
			res.Witness = &witnessJSON{Q: wit.Q, Margin: wit.Margin}
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		return fmt.Errorf("encoding result: %w", err)
	}
	return nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "domquery: "+format+"\n", args...)
	os.Exit(2)
}
