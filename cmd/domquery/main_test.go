package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func evalQuery(t *testing.T, input string) resultJSON {
	t.Helper()
	var out bytes.Buffer
	if err := run(strings.NewReader(input), &out, nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	var res resultJSON
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatalf("bad output JSON: %v\n%s", err, out.String())
	}
	return res
}

func TestRunDominant(t *testing.T) {
	res := evalQuery(t, `{
		"sa": {"center": [0, 0], "radius": 1},
		"sb": {"center": [9, 0], "radius": 1},
		"sq": {"center": [-4, 0], "radius": 2}
	}`)
	if !res.Dominates {
		t.Error("expected dominance")
	}
	if res.Witness != nil {
		t.Error("dominant instance must not carry a witness")
	}
	for _, name := range []string{"Hyperbola", "MinMax", "MBR", "GP", "Trigonometric"} {
		if _, ok := res.Verdicts[name]; !ok {
			t.Errorf("missing verdict for %s", name)
		}
	}
}

func TestRunNonDominantHasWitness(t *testing.T) {
	res := evalQuery(t, `{
		"sa": {"center": [0, 0], "radius": 1},
		"sb": {"center": [6, 0], "radius": 1},
		"sq": {"center": [-1, 0], "radius": 3.5}
	}`)
	if res.Dominates {
		t.Error("expected non-dominance")
	}
	if res.Witness == nil {
		t.Fatal("non-dominant instance should carry a witness")
	}
	if res.Witness.Margin > 0 {
		t.Errorf("witness margin %v > 0", res.Witness.Margin)
	}
	if len(res.Witness.Q) != 2 {
		t.Errorf("witness point has %d coordinates", len(res.Witness.Q))
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"empty center":   `{"sa":{"center":[],"radius":1},"sb":{"center":[1],"radius":1},"sq":{"center":[2],"radius":1}}`,
		"mixed dims":     `{"sa":{"center":[0,0],"radius":1},"sb":{"center":[1],"radius":1},"sq":{"center":[2,2],"radius":1}}`,
		"negative r":     `{"sa":{"center":[0],"radius":-1},"sb":{"center":[1],"radius":1},"sq":{"center":[2],"radius":1}}`,
		"not json":       `hello`,
		"unknown fields": `{"sa":{"center":[0],"radius":1},"sb":{"center":[1],"radius":1},"sq":{"center":[2],"radius":1},"bogus":1}`,
	}
	for name, input := range cases {
		var out bytes.Buffer
		if err := run(strings.NewReader(input), &out, nil); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
