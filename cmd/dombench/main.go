// Command dombench regenerates the dominance-operator figures of the paper
// (Figures 8–12): execution time, precision and recall of the five decision
// criteria under the paper's parameter sweeps.
//
// Usage:
//
//	dombench [-fig N] [-scale S] [-seed N] [-timing D]
//
//	-fig    figure to run: 8, 9, 10, 11, 12, or 0 for all (default 0)
//	-scale  dataset/query scale relative to the paper's (default 0.05;
//	        1.0 reproduces the full cardinalities)
//	-seed   RNG seed (default 1)
//	-timing per-criterion timing budget per sweep point (default 50ms)
//	-data   run the criteria comparison on spheres loaded from a CSV file
//	        ("id,radius,c1,…,cd", as written by datagen) instead of the
//	        built-in figures — the path for users who hold the paper's
//	        actual datasets
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hyperdom/internal/dominance"
	"hyperdom/internal/experiments"
	"hyperdom/internal/obs"
	"hyperdom/internal/stats"
	"hyperdom/internal/workload"

	"hyperdom/internal/dataset"
)

func main() {
	fig := flag.Int("fig", 0, "figure to run (8-12, 0 = all)")
	scale := flag.Float64("scale", 0.05, "workload scale relative to the paper")
	seed := flag.Int64("seed", 1, "random seed")
	timing := flag.Duration("timing", 50*time.Millisecond, "per-criterion timing budget")
	dataFile := flag.String("data", "", "CSV file of spheres to run the comparison on")
	queries := flag.Int("queries", 10000, "-data only: dominance queries to draw")
	pf := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	// Figure timings must stay comparable to the paper's, so the counter
	// gate stays off unless observability output was actually asked for.
	if !pf.Wanted() {
		obs.SetEnabled(false)
	}
	stop, err := pf.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dombench: %v\n", err)
		os.Exit(2)
	}
	defer stop()

	if *dataFile != "" {
		if err := runOnFile(*dataFile, *queries, *seed, *timing); err != nil {
			fmt.Fprintf(os.Stderr, "dombench: %v\n", err)
			os.Exit(2)
		}
		return
	}

	cfg := experiments.Config{Scale: *scale, Seed: *seed, MinTiming: *timing}
	runners := map[int]func(experiments.Config) experiments.DomResult{
		8:  experiments.Fig8,
		9:  experiments.Fig9,
		10: experiments.Fig10,
		11: experiments.Fig11,
		12: experiments.Fig12,
	}
	order := []int{8, 9, 10, 11, 12}

	selected := order
	if *fig != 0 {
		if _, ok := runners[*fig]; !ok {
			fmt.Fprintf(os.Stderr, "dombench: unknown figure %d (want 8-12)\n", *fig)
			os.Exit(2)
		}
		selected = []int{*fig}
	}

	for _, f := range selected {
		before := figureMetricsStart(pf)
		res := runners[f](cfg)
		fmt.Println(res.TimeTable().Render())
		if f != 11 && f != 12 { // the paper reports time only for Figs 11–12
			fmt.Println(res.PrecisionTable().Render())
			fmt.Println(res.RecallTable().Render())
		}
		figureMetricsEnd(pf, f, before)
	}
}

// figureMetricsStart honors an explicit -metrics per figure: the counter
// gate is (re-)enabled before each figure — regardless of what an earlier
// figure or timing loop left it at — and the registry snapshotted so the
// figure's own counter diff can be printed afterwards.
func figureMetricsStart(pf *obs.ProfileFlags) obs.Snap {
	if !pf.Metrics {
		return nil
	}
	obs.SetEnabled(true)
	return obs.Snapshot()
}

// figureMetricsEnd prints the counters one figure moved, to stderr so the
// figure tables on stdout stay machine-readable.
func figureMetricsEnd(pf *obs.ProfileFlags, fig int, before obs.Snap) {
	if before == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "-- fig %d counters --\n", fig)
	obs.Snapshot().Diff(before).Fprint(os.Stderr)
}

// runOnFile runs the five-criteria comparison on spheres loaded from a CSV
// file.
func runOnFile(path string, queries int, seed int64, timing time.Duration) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	items, err := dataset.LoadCSV(f)
	if err != nil {
		return err
	}
	if len(items) == 0 {
		return fmt.Errorf("%s: no spheres", path)
	}
	w := workload.Dominance(items, queries, seed)
	truth := workload.Verdicts(dominance.Hyperbola{}, w)
	table := stats.Table{
		Title:  fmt.Sprintf("%s — %d spheres (%dd), %d queries", path, len(items), items[0].Sphere.Dim(), queries),
		Header: []string{"criterion", "ns/op", "precision%", "recall%"},
	}
	for _, crit := range dominance.All() {
		acc := workload.Compare(workload.Verdicts(crit, w), truth)
		per := workload.TimePerOp(crit, w, timing)
		table.AddRow(
			crit.Name(),
			fmt.Sprintf("%d", per.Nanoseconds()),
			fmt.Sprintf("%.1f", acc.Precision()*100),
			fmt.Sprintf("%.1f", acc.Recall()*100),
		)
	}
	fmt.Println(table.Render())
	return nil
}
