// Command benchkernel measures the dominance/kNN hot kernels and writes
// the machine-readable BENCH_knn.json tracked across PRs:
//
//   - the Hyperbola criterion evaluated per triple versus through a
//     PreparedPair on one fixed (Sa, Sb) at d=10, for point queries (the
//     certain-query pruning case) and fat sphere queries;
//   - the DF and HS kNN traversals over a 10k-item SS-tree, pointer path
//     and frozen packed-layout path, with their steady-state allocations
//     per search and the packed/pointer speedup ratio;
//   - tree construction cost: bulk load versus repeated insert, in
//     nanoseconds per item;
//   - snapshot cold-start: packed.Open over a saved 100k-item snapshot
//     (open + validate, zero-copy) versus a BulkLoad+Freeze rebuild, the
//     ratio -min-snapshot-speedup gates;
//   - batch-query throughput through the engine worker pool at 1/2/4/8
//     workers, with the scaling ratio relative to one worker;
//   - a metrics block captured from the obs registry: prune rates,
//     dominance checks and nodes visited per query, heap traffic, and the
//     p50/p99 per-search latency from the knn.search_latency histograms.
//
// Timing benchmarks run with the obs counters disabled so ns/op stays
// comparable across PRs; the metrics block comes from a separate
// counter-enabled pass over a fixed workload.
//
// Usage:
//
//	benchkernel [-o BENCH_knn.json] [-quant none|f32|i8]
//	benchkernel -gate BENCH_knn.json -min-speedup 1.3 \
//	            -min-packed-speedup 1.15 -min-quant-speedup 1.4 \
//	            -min-sphere-speedup 1.5 -min-snapshot-speedup 20 \
//	            -min-scaling 2.5                             # CI sanity gate
//	benchkernel -trace trace.json                           # export query traces
//
// The packed search is benchmarked four ways: pointer path, frozen
// snapshot with quantization off (isolating the SoA layout, the
// speedup_packed_layout gate), and the frozen snapshot through the float32
// and int8 coarse-filter tiers (ISSUE 6). The speedup_quantized block
// records each tier's gain over the pointer path; its best geomean is what
// -min-quant-speedup gates. -quant picks the tier the counter-enabled
// metrics pass runs under (default f32), which is where the
// coarse_prune_rate figure comes from.
//
// The -min-scaling floor is adaptive: a runner with P schedulable cores
// cannot scale past P, so the effective floor is
// min(min-scaling, 0.45·GOMAXPROCS), never below 0.8 — on a single-core
// container the gate only demands that the pool not slow queries down,
// while a multi-core runner must show real parallel speedup.
//
// The shared observability flags apply: with -trace the counter-enabled
// metrics pass samples its searches for execution tracing and the retained
// traces are exported as Chrome trace_event JSON on exit (DESIGN.md §10).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"hyperdom/internal/dominance"
	"hyperdom/internal/engine"
	"hyperdom/internal/geom"
	"hyperdom/internal/knn"
	"hyperdom/internal/obs"
	"hyperdom/internal/packed"
	"hyperdom/internal/shard"
	"hyperdom/internal/sstree"
	"hyperdom/internal/workload"
)

// kernelBench is one benchmark row of the output file.
type kernelBench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// metricsBlock summarizes the obs counter registry over a fixed
// counter-enabled workload: MetricsSearches kNN searches (HS) plus one
// prepared point-query sweep. Counters holds the raw snapshot diff; the
// derived ratios are what reviews and the CI gate read.
type metricsBlock struct {
	Searches           int               `json:"searches"`
	Counters           map[string]uint64 `json:"counters"`
	DomChecksPerQuery  float64           `json:"dom_checks_per_query"`
	NodesPerQuery      float64           `json:"nodes_per_query"`
	ItemsPerQuery      float64           `json:"items_scanned_per_query"`
	PruneRate          float64           `json:"prune_rate"`
	HeapPushesPerQuery float64           `json:"heap_pushes_per_query"`
	PreparedReuseRate  float64           `json:"prepared_reuse_rate"`
	SearchLatencyP50Ns float64           `json:"search_latency_p50_ns"`
	SearchLatencyP99Ns float64           `json:"search_latency_p99_ns"`
	// CoarsePruneRate is the fraction of packed candidates (child entries
	// plus leaf items) the quantized pass settled without touching the
	// exact float64 block, under the -quant tier of the metrics pass.
	CoarsePruneRate float64 `json:"coarse_prune_rate"`
}

// quantBlock is the quantized coarse-filter speedup table (ISSUE 6): each
// tier's traversal time against the pointer path on the same frozen
// fixture. Best is the larger tier geomean — the number the
// -min-quant-speedup gate reads.
type quantBlock struct {
	DFf32      float64 `json:"df_f32"`
	HSf32      float64 `json:"hs_f32"`
	DFi8       float64 `json:"df_i8"`
	HSi8       float64 `json:"hs_i8"`
	GeomeanF32 float64 `json:"geomean_f32"`
	GeomeanI8  float64 `json:"geomean_i8"`
	Best       float64 `json:"best"`
	BestTier   string  `json:"best_tier"`
}

// snapshotLoadBlock is the zero-copy persistence headline (ISSUE 10): the
// same 100k-item frozen index brought to serving two ways — packed.Open
// over a saved snapshot file (header validate + structural checks + slice
// the mapping; no tree rebuild) versus rebuilding from the raw items with
// BulkLoad+Freeze. Speedup is rebuild/open per item; -min-snapshot-speedup
// gates it. HeapBytesAfterOpen shows what the open path actually allocates
// (the item directory and headers — the payload stays in the page cache).
type snapshotLoadBlock struct {
	Items              int     `json:"items"`
	FileBytes          int64   `json:"file_bytes"`
	Mapped             bool    `json:"mapped"`
	OpenNsPerItem      float64 `json:"open_ns_per_item"`
	RebuildNsPerItem   float64 `json:"rebuild_ns_per_item"`
	HeapBytesAfterOpen uint64  `json:"heap_bytes_after_open"`
	Speedup            float64 `json:"speedup_vs_rebuild"`
}

// scalingPoint is one engine throughput measurement: a fixed query batch
// answered through a pool of Workers workers, as queries per second and as
// a ratio over the 1-worker pool.
type scalingPoint struct {
	Workers   int     `json:"workers"`
	OpsPerSec float64 `json:"ops_per_sec"`
	Scaling   float64 `json:"scaling_vs_1_worker"`
}

// throughputBlock is the batch-engine scaling table. GoMaxProcs records how
// many cores the measurement actually had — scaling cannot exceed it, and
// the CI gate adapts its floor accordingly. CoresDetected is the machine's
// physical view (runtime.NumCPU) and Gated says whether this runner can
// meaningfully enforce a multi-core scaling floor (GoMaxProcs ≥ 2) — a
// flat table with gated:false is an expected small-runner artifact, the
// same table with gated:true is a regression.
type throughputBlock struct {
	GoMaxProcs    int            `json:"gomaxprocs"`
	CoresDetected int            `json:"cores_detected"`
	Gated         bool           `json:"gated"`
	BatchQueries  int            `json:"batch_queries"`
	K             int            `json:"k"`
	Points        []scalingPoint `json:"points"`
	ScalingAtMax  float64        `json:"scaling_at_8_workers"`
}

// shardScalingPoint is one shard count of the scatter-gather scaling table.
type shardScalingPoint struct {
	Shards    int     `json:"shards"`
	OpsPerSec float64 `json:"ops_per_sec"`
	Scaling   float64 `json:"scaling_vs_1_shard"`
}

// shardScalingBlock is the scatter-gather shard-scaling table (DESIGN.md
// §13): the same query stream answered through sharded indexes of growing
// shard counts, every count returning bit-identical result sets. Carries
// the same cores_detected / gated runner context as throughputBlock.
type shardScalingBlock struct {
	GoMaxProcs    int                 `json:"gomaxprocs"`
	CoresDetected int                 `json:"cores_detected"`
	Gated         bool                `json:"gated"`
	BatchQueries  int                 `json:"batch_queries"`
	K             int                 `json:"k"`
	Points        []shardScalingPoint `json:"points"`
	ScalingAtMax  float64             `json:"scaling_at_max_shards"`
}

// report is the schema of BENCH_knn.json.
type report struct {
	Dim               int               `json:"dim"`
	Queries           int               `json:"queries_per_op"`
	Benchmarks        []kernelBench     `json:"benchmarks"`
	SpeedupPointQ     float64           `json:"speedup_prepared_point_query"`
	SpeedupSphereQ    float64           `json:"speedup_prepared_sphere_query"`
	KnnTreeItems      int               `json:"knn_tree_items"`
	KnnK              int               `json:"knn_k"`
	KnnAllocsDF       int64             `json:"knn_allocs_per_search_df"`
	KnnAllocsHS       int64             `json:"knn_allocs_per_search_hs"`
	KnnAllocsPackedDF int64             `json:"knn_allocs_per_search_packed_df"`
	KnnAllocsPackedHS int64             `json:"knn_allocs_per_search_packed_hs"`
	SpeedupPackedDF   float64           `json:"speedup_packed_layout_df"`
	SpeedupPackedHS   float64           `json:"speedup_packed_layout_hs"`
	SpeedupPacked     float64           `json:"speedup_packed_layout"` // geometric mean of DF and HS
	SpeedupQuantized  quantBlock        `json:"speedup_quantized"`     // quantized tiers vs pointer path
	BuildInsertNs     float64           `json:"build_insert_ns_per_item"`
	BuildBulkNs       float64           `json:"build_bulkload_ns_per_item"`
	BuildBulkSpeedup  float64           `json:"build_bulkload_speedup"`
	SnapshotLoad      snapshotLoadBlock `json:"snapshot_load"`
	Throughput        throughputBlock   `json:"throughput_scaling"`
	ShardScaling      shardScalingBlock `json:"shard_scaling"`
	SpeedupTargetMet  bool              `json:"speedup_target_met"` // point-query ratio >= 1.5
	Metrics           metricsBlock      `json:"metrics"`
}

// config holds the parsed command line.
type config struct {
	Out              string
	Gate             string
	MinSpeedup       float64
	MinPackedSpeedup float64
	MinQuantSpeedup  float64
	MinSphereSpeedup float64
	MinSnapSpeedup   float64
	MinScaling       float64
	ScalingOnly      bool
	RequireCores     int
	Quant            knn.QuantMode
	Profile          *obs.ProfileFlags
}

// parseFlags parses args (not including the program name) into a config.
func parseFlags(args []string) (*config, error) {
	fs := flag.NewFlagSet("benchkernel", flag.ContinueOnError)
	cfg := &config{}
	fs.StringVar(&cfg.Out, "o", "BENCH_knn.json", "output file")
	fs.StringVar(&cfg.Gate, "gate", "", "committed BENCH_knn.json to gate against (CI mode; exits non-zero on regression)")
	fs.Float64Var(&cfg.MinSpeedup, "min-speedup", 1.3, "minimum prepared point-query speedup the gate accepts")
	fs.Float64Var(&cfg.MinPackedSpeedup, "min-packed-speedup", 1.15, "minimum packed-layout (quantization off) search speedup the gate accepts")
	fs.Float64Var(&cfg.MinQuantSpeedup, "min-quant-speedup", 1.4, "minimum quantized-tier search speedup over the pointer path the gate accepts (best tier geomean)")
	fs.Float64Var(&cfg.MinSphereSpeedup, "min-sphere-speedup", 1.5, "minimum prepared sphere-query speedup the gate accepts")
	fs.Float64Var(&cfg.MinSnapSpeedup, "min-snapshot-speedup", 20, "minimum snapshot open-vs-rebuild speedup the gate accepts (<= 0 skips)")
	fs.Float64Var(&cfg.MinScaling, "min-scaling", 2.5, "minimum 8-worker throughput scaling the gate accepts on an 8-core runner (floor adapts down to min(value, 0.45*GOMAXPROCS), never below 0.8; <= 0 skips the scaling gate entirely)")
	fs.BoolVar(&cfg.ScalingOnly, "scaling-only", false, "measure (and gate) only the throughput_scaling and shard_scaling blocks — the dedicated multi-core CI job's mode")
	fs.IntVar(&cfg.RequireCores, "require-cores", 0, "gate mode: fail unless the measurement ran with at least this many schedulable cores (guards the scaling gate against silently passing on undersized runners)")
	quant := fs.String("quant", "f32", "quantized tier the counter-enabled metrics pass runs under (none, f32, i8)")
	cfg.Profile = obs.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	qm, err := knn.ParseQuantMode(*quant)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchkernel:", err)
		return nil, err
	}
	cfg.Quant = qm
	return cfg, nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	stop, err := cfg.Profile.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchkernel:", err)
		os.Exit(1)
	}

	var rep report
	if cfg.ScalingOnly {
		rep = scalingReport()
	} else {
		rep = buildReport(cfg)
	}

	if err := writeReport(cfg.Out, rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchkernel:", err)
		os.Exit(1)
	}
	if cfg.ScalingOnly {
		fmt.Printf("wrote %s (scaling-only: 8-worker scaling %.2fx, shard scaling %.2fx at %d shards; gomaxprocs=%d, cores_detected=%d, gated=%v)\n",
			cfg.Out, rep.Throughput.ScalingAtMax, rep.ShardScaling.ScalingAtMax,
			maxShards(rep.ShardScaling), rep.Throughput.GoMaxProcs,
			rep.Throughput.CoresDetected, rep.Throughput.Gated)
	} else {
		fmt.Printf("wrote %s (prepared point-query speedup %.2fx, sphere-query %.2fx; packed-layout speedup DF=%.2fx HS=%.2fx; quantized f32=%.2fx i8=%.2fx best=%s; coarse-prune rate %.2f; snapshot open %.2fx over rebuild (%.1f vs %.1f ns/item, mapped=%v); 8-worker scaling %.2fx on %d core(s); shard scaling %.2fx; knn allocs/search DF=%d HS=%d; prune rate %.2f; search p50=%.0fns p99=%.0fns)\n",
			cfg.Out, rep.SpeedupPointQ, rep.SpeedupSphereQ, rep.SpeedupPackedDF, rep.SpeedupPackedHS,
			rep.SpeedupQuantized.GeomeanF32, rep.SpeedupQuantized.GeomeanI8, rep.SpeedupQuantized.BestTier,
			rep.Metrics.CoarsePruneRate,
			rep.SnapshotLoad.Speedup, rep.SnapshotLoad.OpenNsPerItem, rep.SnapshotLoad.RebuildNsPerItem, rep.SnapshotLoad.Mapped,
			rep.Throughput.ScalingAtMax, rep.Throughput.GoMaxProcs, rep.ShardScaling.ScalingAtMax,
			rep.KnnAllocsDF, rep.KnnAllocsHS,
			rep.Metrics.PruneRate, rep.Metrics.SearchLatencyP50Ns, rep.Metrics.SearchLatencyP99Ns)
	}
	stop()

	if cfg.Gate != "" {
		committed, err := readReport(cfg.Gate)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchkernel: gate:", err)
			os.Exit(1)
		}
		if failures := gateReport(rep, committed, cfg); len(failures) > 0 {
			fmt.Fprintf(os.Stderr, "benchkernel: gate FAILED:\n  %s\n", strings.Join(failures, "\n  "))
			os.Exit(1)
		}
		fmt.Println("gate passed")
	}
}

// buildReport runs all benchmarks and the metrics pass. Timing runs with
// counters off; the metrics pass re-enables them and diffs the registry.
func buildReport(cfg *config) report {
	rep := report{Dim: 10, Queries: 512, KnnTreeItems: 10000, KnnK: 10}

	wasOn := obs.On()
	obs.SetEnabled(false)
	defer obs.SetEnabled(wasOn)

	sa, sb, points, spheres := pairWorkload(rand.New(rand.NewSource(123)), rep.Dim, rep.Queries)

	// Same round structure as the search section below: each cell keeps its
	// fastest of three interleaved rounds so host-speed drift between the
	// per-triple baseline and the prepared path cannot pose as (or mask) a
	// speedup.
	pairCells := []struct {
		name string
		qs   []geom.Sphere
		prep bool
	}{
		{"PreparedPair/PointQuery/PerTriple", points, false},
		{"PreparedPair/PointQuery/Prepared", points, true},
		{"PreparedPair/SphereQuery/PerTriple", spheres, false},
		{"PreparedPair/SphereQuery/Prepared", spheres, true},
	}
	var pairRows [4]kernelBench
	for round := 0; round < 3; round++ {
		for ci, cell := range pairCells {
			qs, prep := cell.qs, cell.prep
			pairRows[ci] = minBench(pairRows[ci], bench(func(b *testing.B) {
				if prep {
					pp := dominance.PreparePair(sa, sb)
					for i := 0; i < b.N; i++ {
						for _, q := range qs {
							sink(pp.Dominates(q))
						}
					}
					return
				}
				crit := dominance.Hyperbola{}
				for i := 0; i < b.N; i++ {
					for _, q := range qs {
						sink(crit.Dominates(sa, sb, q))
					}
				}
			}))
		}
	}
	for ci, cell := range pairCells {
		pairRows[ci].Name = cell.name
		rep.Benchmarks = append(rep.Benchmarks, pairRows[ci])
	}
	rep.SpeedupPointQ = ratio(pairRows[0], pairRows[1])
	rep.SpeedupSphereQ = ratio(pairRows[2], pairRows[3])
	rep.SpeedupTargetMet = rep.SpeedupPointQ >= 1.5

	tree, idx, items, queries := knnFixture(rep.KnnTreeItems, 8)
	// Pass 0 walks the pointer tree; the rest walk the packed snapshot with
	// quantization off (isolating the SoA layout, pass 1) and through the
	// two coarse-filter tiers (passes 2-3) — same fixture, same queries, so
	// every ratio isolates one mechanism. The packed passes run against a
	// deterministic twin of the tree (same seed, same insert order,
	// identical structure) that is frozen up front: with two trees the
	// pointer and packed cells interleave within each round instead of
	// running minutes apart on opposite sides of a Freeze call, so slow
	// drift of the host cannot masquerade as a layout speedup — or erase
	// one. The process default is QuantF32, so each pass pins its mode.
	frozenTree, frozenIdx, _, _ := knnFixture(rep.KnnTreeItems, 8)
	frozenTree.Freeze()
	passes := []struct {
		label string
		mode  knn.QuantMode
	}{
		{"Search/SS10k", knn.QuantNone},
		{"SearchPacked/SS10k", knn.QuantNone},
		{"SearchQuantF32/SS10k", knn.QuantF32},
		{"SearchQuantI8/SS10k", knn.QuantI8},
	}
	// Each cell keeps its fastest of five rounds: the passes share one
	// noisy core, and a single back-to-back sweep folds scheduler jitter
	// straight into the speedup ratios, so every round interleaves all
	// eight cells and the minimum filters out the slow stretches.
	var rows [4][2]kernelBench
	prevMode := knn.QuantModeNow()
	searchCell := func(pass int, algo knn.Algorithm) func(*testing.B) {
		target := idx
		if pass > 0 {
			target = frozenIdx
		}
		knn.SetQuantMode(passes[pass].mode)
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				knn.Search(target, queries[i%len(queries)], rep.KnnK, dominance.Hyperbola{}, algo)
			}
		}
	}
	const searchRounds = 5
	algos := []knn.Algorithm{knn.DF, knn.HS}
	for round := 0; round < searchRounds; round++ {
		for pass := range passes {
			for ai, algo := range algos {
				rows[pass][ai] = minBench(rows[pass][ai], bench(searchCell(pass, algo)))
			}
		}
	}
	knn.SetQuantMode(prevMode)
	// The post-search sections (scaling, metrics) exercise the packed quant
	// path on the primary fixture, so freeze it now that the pointer rounds
	// are done.
	tree.Freeze()
	for pass, p := range passes {
		for ai, algo := range algos {
			rows[pass][ai].Name = fmt.Sprintf("%s/%v", p.label, algo)
			rep.Benchmarks = append(rep.Benchmarks, rows[pass][ai])
		}
	}
	ptr, packed := rows[0], rows[1]
	rep.KnnAllocsDF, rep.KnnAllocsHS = ptr[0].AllocsPerOp, ptr[1].AllocsPerOp
	rep.KnnAllocsPackedDF, rep.KnnAllocsPackedHS = packed[0].AllocsPerOp, packed[1].AllocsPerOp
	rep.SpeedupPackedDF = ratio(ptr[0], packed[0])
	rep.SpeedupPackedHS = ratio(ptr[1], packed[1])
	// The gate reads the geometric mean of the two traversals: both must
	// contribute, and one noisy single-run ratio cannot flip the verdict
	// the way a min() would.
	rep.SpeedupPacked = math.Sqrt(rep.SpeedupPackedDF * rep.SpeedupPackedHS)

	q := &rep.SpeedupQuantized
	q.DFf32, q.HSf32 = ratio(ptr[0], rows[2][0]), ratio(ptr[1], rows[2][1])
	q.DFi8, q.HSi8 = ratio(ptr[0], rows[3][0]), ratio(ptr[1], rows[3][1])
	q.GeomeanF32 = math.Sqrt(q.DFf32 * q.HSf32)
	q.GeomeanI8 = math.Sqrt(q.DFi8 * q.HSi8)
	q.Best, q.BestTier = q.GeomeanF32, "f32"
	if q.GeomeanI8 > q.Best {
		q.Best, q.BestTier = q.GeomeanI8, "i8"
	}

	rep.BuildInsertNs, rep.BuildBulkNs, rep.BuildBulkSpeedup = buildCost(&rep)
	rep.SnapshotLoad = measureSnapshotLoad(&rep)
	rep.Throughput = measureScaling(&rep, idx, queries, rep.KnnK)
	rep.ShardScaling = measureShardScaling(&rep, items, 8, queries, rep.KnnK)

	// The metrics pass runs under the -quant tier so the coarse-filter
	// counters (and the derived prune rate) describe the configuration the
	// user asked about.
	knn.SetQuantMode(cfg.Quant)
	rep.Metrics = captureMetrics(idx, queries, rep.KnnK, sa, sb, points)
	knn.SetQuantMode(prevMode)
	return rep
}

// buildCost measures tree construction both ways — repeated Insert versus
// STR bulk load — over the same item set, in nanoseconds per item
// (BenchmarkBulkLoadVsInsert's numbers, snapshotted into the report).
func buildCost(rep *report) (insertNs, bulkNs, speedup float64) {
	rng := rand.New(rand.NewSource(42))
	d := 8
	items := make([]geom.Item, rep.KnnTreeItems)
	for i := range items {
		c := make([]float64, d)
		for j := range c {
			c[j] = 100 + rng.NormFloat64()*25
		}
		items[i] = geom.Item{ID: i, Sphere: geom.NewSphere(c, rng.Float64()*2)}
	}
	ins := run("Build/SS10k/Insert", rep, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t := sstree.New(d)
			for _, it := range items {
				t.Insert(it)
			}
		}
	})
	bulk := run("Build/SS10k/BulkLoad", rep, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t := sstree.New(d)
			t.BulkLoad(items)
		}
	})
	n := float64(len(items))
	return ins.NsPerOp / n, bulk.NsPerOp / n, ratio(ins, bulk)
}

// measureSnapshotLoad builds the 100k-item snapshot fixture, saves it
// once, and times the two cold-start paths: packed.Open over the file
// (open + validate, zero-copy on platforms with mmap) against a full
// BulkLoad+Freeze rebuild from the raw items. Also records the file size,
// whether the open actually mapped, and the heap the open path retains.
func measureSnapshotLoad(rep *report) snapshotLoadBlock {
	const n, d = 100000, 8
	rng := rand.New(rand.NewSource(4242))
	items := make([]geom.Item, n)
	for i := range items {
		c := make([]float64, d)
		for j := range c {
			c[j] = 100 + rng.NormFloat64()*25
		}
		items[i] = geom.Item{ID: i, Sphere: geom.NewSphere(c, rng.Float64()*2)}
	}
	dir, err := os.MkdirTemp("", "hdsnapbench")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "bench.hds")
	t := sstree.New(d)
	t.BulkLoad(items)
	if err := t.Freeze().Save(path); err != nil {
		panic(err)
	}
	blk := snapshotLoadBlock{Items: n}
	if fi, err := os.Stat(path); err == nil {
		blk.FileBytes = fi.Size()
	}

	rebuild := run("SnapshotLoad/SS100k/RebuildBulkFreeze", rep, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tt := sstree.New(d)
			tt.BulkLoad(items)
			tt.Freeze()
		}
	})
	open := run("SnapshotLoad/SS100k/Open", rep, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := packed.Open(path)
			if err != nil {
				b.Fatal(err)
			}
			s.Close()
		}
	})
	blk.OpenNsPerItem = open.NsPerOp / n
	blk.RebuildNsPerItem = rebuild.NsPerOp / n
	blk.Speedup = ratio(rebuild, open)

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	s, err := packed.Open(path)
	if err != nil {
		panic(err)
	}
	runtime.ReadMemStats(&after)
	blk.Mapped = s.Mapped()
	if after.HeapAlloc > before.HeapAlloc {
		blk.HeapBytesAfterOpen = after.HeapAlloc - before.HeapAlloc
	}
	s.Close()
	return blk
}

// measureScaling drives the same query batch through engine pools of
// 1/2/4/8 workers over the frozen fixture and reports queries per second at
// each width. The batch cycles the fixture queries up to a size that keeps
// eight workers busy.
func measureScaling(rep *report, idx knn.Index, queries []geom.Sphere, k int) throughputBlock {
	const batch = 128
	tb := throughputBlock{
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		CoresDetected: runtime.NumCPU(),
		BatchQueries:  batch,
		K:             k,
	}
	// A 1-core runner cannot show parallel speedup, so its flat table is an
	// artifact, not a regression — gated records which case this report is.
	tb.Gated = tb.GoMaxProcs >= 2
	bq := make([]geom.Sphere, batch)
	for i := range bq {
		bq[i] = queries[i%len(queries)]
	}
	for _, w := range []int{1, 2, 4, 8} {
		e := engine.New(idx, engine.WithWorkers(w))
		row := run(fmt.Sprintf("EngineBatch/SS10k/HS/workers=%d", w), rep, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.SearchBatch(bq, k)
			}
		})
		e.Close()
		pt := scalingPoint{Workers: w, OpsPerSec: batch / (row.NsPerOp / 1e9), Scaling: 1}
		if len(tb.Points) > 0 && tb.Points[0].OpsPerSec > 0 {
			pt.Scaling = pt.OpsPerSec / tb.Points[0].OpsPerSec
		}
		tb.Points = append(tb.Points, pt)
	}
	tb.ScalingAtMax = tb.Points[len(tb.Points)-1].Scaling
	return tb
}

// measureShardScaling answers the same query batch through scatter-gather
// sharded indexes of 1/2/4 shards — a sequential query loop, each query
// internally scattered across the shard engine pools and merged under the
// global Sk with distK pushdown. Every shard count returns bit-identical
// result sets (DESIGN.md §13), so the rows isolate the scatter-gather
// overhead against its pushdown payoff.
func measureShardScaling(rep *report, items []geom.Item, dim int, queries []geom.Sphere, k int) shardScalingBlock {
	const batch = 64
	sb := shardScalingBlock{
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		CoresDetected: runtime.NumCPU(),
		BatchQueries:  batch,
		K:             k,
	}
	sb.Gated = sb.GoMaxProcs >= 2
	bq := make([]geom.Sphere, batch)
	for i := range bq {
		bq[i] = queries[i%len(queries)]
	}
	for _, s := range []int{1, 2, 4} {
		x, err := shard.Build(items, dim, shard.Options{
			Shards:    s,
			Algorithm: knn.HS,
			Label:     fmt.Sprintf("bench-%d", s),
		})
		if err != nil {
			panic(err) // impossible: options are well-formed by construction
		}
		row := run(fmt.Sprintf("ShardedBatch/SS10k/HS/shards=%d", s), rep, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, q := range bq {
					x.Search(q, k)
				}
			}
		})
		x.Close()
		pt := shardScalingPoint{Shards: s, OpsPerSec: batch / (row.NsPerOp / 1e9), Scaling: 1}
		if len(sb.Points) > 0 && sb.Points[0].OpsPerSec > 0 {
			pt.Scaling = pt.OpsPerSec / sb.Points[0].OpsPerSec
		}
		sb.Points = append(sb.Points, pt)
	}
	sb.ScalingAtMax = sb.Points[len(sb.Points)-1].Scaling
	return sb
}

// scalingReport is the -scaling-only build: just the fixture, the engine
// worker-scaling table and the shard-scaling table — what the dedicated
// multi-core CI job measures and gates, without re-timing the kernel cells
// the single-core bench-sanity job already covers.
func scalingReport() report {
	rep := report{Dim: 10, Queries: 512, KnnTreeItems: 10000, KnnK: 10}

	wasOn := obs.On()
	obs.SetEnabled(false)
	defer obs.SetEnabled(wasOn)

	tree, idx, items, queries := knnFixture(rep.KnnTreeItems, 8)
	tree.Freeze()
	rep.Throughput = measureScaling(&rep, idx, queries, rep.KnnK)
	rep.ShardScaling = measureShardScaling(&rep, items, 8, queries, rep.KnnK)
	return rep
}

// maxShards returns the largest measured shard count, 0 for an empty block.
func maxShards(sb shardScalingBlock) int {
	if len(sb.Points) == 0 {
		return 0
	}
	return sb.Points[len(sb.Points)-1].Shards
}

// captureMetrics runs the fixed metrics workload with counters enabled and
// reduces the registry to the per-query ratios and latency quantiles the
// report carries. The registry is zeroed first (obs.ResetForTest) so every
// reading — counters and histograms alike — is absolute for this window.
func captureMetrics(idx knn.Index, queries []geom.Sphere, k int, sa, sb geom.Sphere, points []geom.Sphere) metricsBlock {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	obs.ResetForTest()

	const rounds = 4
	for r := 0; r < rounds; r++ {
		for _, q := range queries {
			knn.Search(idx, q, k, dominance.Hyperbola{}, knn.HS)
		}
	}
	// One parallel batch over the same queries through the engine pool, so
	// the engine layer's counters and queue-wait histogram carry samples in
	// the exposition. The batch answers are bit-identical to the serial
	// searches above, so the per-query ratios stay meaningful over the sum.
	workload.KNNBatch(idx, queries, k, 2, dominance.Hyperbola{}, knn.HS)
	// Snapshot between the traversal rounds and the point sweep: the kNN
	// path legitimately re-prepares on every check (the pair changes each
	// time), so the reuse rate is only meaningful over the sweep, where
	// one pair serves the whole query batch.
	preSweep := obs.Snapshot()
	pp := dominance.PreparePair(sa, sb)
	verdicts := make([]bool, len(points))
	pp.DominatesBatch(points, verdicts)
	pp.FlushObs()

	// One serial workload batch over the same fixture, so the workload
	// layer's batch-latency histogram carries samples in the exposition too.
	triples := make([]workload.Triple, len(points))
	for i, q := range points {
		triples[i] = workload.Triple{A: sa, B: sb, Q: q}
	}
	workload.Verdicts(dominance.Hyperbola{}, triples)

	diff := obs.Snapshot()
	sweep := diff.Diff(preSweep)

	searches := (rounds + 1) * len(queries)
	m := metricsBlock{Searches: searches, Counters: diff.Diff(obs.Snap{})}
	n := float64(searches)
	m.DomChecksPerQuery = float64(diff.Get("knn.dom_checks")) / n
	m.NodesPerQuery = float64(diff.Get("knn.nodes_visited")) / n
	m.ItemsPerQuery = float64(diff.Get("knn.items_scanned")) / n
	m.HeapPushesPerQuery = float64(diff.Get("knn.heap_pushes")) / n
	// Prune events per scanned item. Slightly above 1 is possible: a
	// deferred candidate counts again when the final filter re-prunes it.
	if scanned := diff.Get("knn.items_scanned"); scanned > 0 {
		m.PruneRate = float64(diff.Get("knn.pruned")) / float64(scanned)
	}
	if q := sweep.Get("dominance.prepared.queries"); q > 0 {
		m.PreparedReuseRate = float64(sweep.Get("dominance.prepared.reuse_hits")) / float64(q)
	}
	// Coarse-filter effectiveness: candidates settled by the narrow bounds
	// over all candidates the quantized pass looked at. Zero when the
	// metrics pass ran with -quant none.
	coarse := diff.Get("packed.quant.node_coarse_prunes") + diff.Get("packed.quant.item_coarse_prunes")
	if total := coarse + diff.Get("packed.quant.node_exact_fallbacks") + diff.Get("packed.quant.item_exact_fallbacks"); total > 0 {
		m.CoarsePruneRate = float64(coarse) / float64(total)
	}
	lat := obs.MergedHist("knn.search_latency")
	m.SearchLatencyP50Ns = lat.Quantile(0.5)
	m.SearchLatencyP99Ns = lat.Quantile(0.99)
	return m
}

// gateReport compares a fresh report against the committed one and returns
// the list of regressions; empty means the gate passes. Timing is checked
// only through dimensionless ratios (prepared-pair speedup, packed-layout
// speedup, worker scaling — all stable across machines of different
// speed); allocations are exact counts.
func gateReport(current, committed report, cfg *config) []string {
	var failures []string
	if cfg.RequireCores > 0 && current.Throughput.GoMaxProcs < cfg.RequireCores {
		failures = append(failures, fmt.Sprintf(
			"measurement ran with gomaxprocs=%d, below -require-cores %d (cores_detected=%d) — runner is undersized for this gate",
			current.Throughput.GoMaxProcs, cfg.RequireCores, current.Throughput.CoresDetected))
	}
	if !cfg.ScalingOnly {
		if current.SpeedupPointQ < cfg.MinSpeedup {
			failures = append(failures, fmt.Sprintf(
				"prepared point-query speedup %.2fx below floor %.2fx", current.SpeedupPointQ, cfg.MinSpeedup))
		}
		if current.SpeedupPacked < cfg.MinPackedSpeedup {
			failures = append(failures, fmt.Sprintf(
				"packed-layout search speedup %.2fx below floor %.2fx", current.SpeedupPacked, cfg.MinPackedSpeedup))
		}
		if current.SpeedupQuantized.Best < cfg.MinQuantSpeedup {
			failures = append(failures, fmt.Sprintf(
				"quantized search speedup %.2fx (best tier %s) below floor %.2fx",
				current.SpeedupQuantized.Best, current.SpeedupQuantized.BestTier, cfg.MinQuantSpeedup))
		}
		if current.SpeedupSphereQ < cfg.MinSphereSpeedup {
			failures = append(failures, fmt.Sprintf(
				"prepared sphere-query speedup %.2fx below floor %.2fx", current.SpeedupSphereQ, cfg.MinSphereSpeedup))
		}
		if cfg.MinSnapSpeedup > 0 && current.SnapshotLoad.Speedup < cfg.MinSnapSpeedup {
			failures = append(failures, fmt.Sprintf(
				"snapshot open-vs-rebuild speedup %.2fx below floor %.2fx (open %.1f ns/item, rebuild %.1f ns/item)",
				current.SnapshotLoad.Speedup, cfg.MinSnapSpeedup,
				current.SnapshotLoad.OpenNsPerItem, current.SnapshotLoad.RebuildNsPerItem))
		}
	}
	// A pool of 8 workers cannot scale past the cores it runs on, so the
	// floor adapts: min(-min-scaling, 0.45·GOMAXPROCS), never below 0.8 —
	// on one core the pool must merely not slow queries down, on 8 cores
	// the full -min-scaling bar applies. -min-scaling 0 (or below) skips
	// the check entirely: the single-core bench-sanity job opts out and
	// leaves scaling to the dedicated multi-core job.
	if cfg.MinScaling > 0 {
		floor := cfg.MinScaling
		if adaptive := 0.45 * float64(current.Throughput.GoMaxProcs); adaptive < floor {
			floor = adaptive
		}
		if floor < 0.8 {
			floor = 0.8
		}
		if current.Throughput.ScalingAtMax < floor {
			failures = append(failures, fmt.Sprintf(
				"8-worker throughput scaling %.2fx below floor %.2fx (gomaxprocs=%d)",
				current.Throughput.ScalingAtMax, floor, current.Throughput.GoMaxProcs))
		}
		// The shard table is recorded for trend review but held only to a
		// "not pathological" bar: scatter-gather at the max shard count must
		// not halve throughput versus one shard. Only gated (multi-core)
		// measurements count — on one core the scatter goroutines have
		// nowhere to run in parallel and the slowdown is an expected
		// runner artifact, which gated:false already flags.
		if n := len(current.ShardScaling.Points); n > 0 && current.ShardScaling.Gated &&
			current.ShardScaling.ScalingAtMax < 0.5 {
			failures = append(failures, fmt.Sprintf(
				"shard scaling %.2fx at %d shards below 0.50x of single-shard throughput (gomaxprocs=%d)",
				current.ShardScaling.ScalingAtMax, maxShards(current.ShardScaling),
				current.ShardScaling.GoMaxProcs))
		}
	}
	if !cfg.ScalingOnly {
		type allocGate struct {
			name               string
			current, committed int64
		}
		for _, g := range []allocGate{
			{"DF search", current.KnnAllocsDF, committed.KnnAllocsDF},
			{"HS search", current.KnnAllocsHS, committed.KnnAllocsHS},
			{"packed DF search", current.KnnAllocsPackedDF, committed.KnnAllocsPackedDF},
			{"packed HS search", current.KnnAllocsPackedHS, committed.KnnAllocsPackedHS},
		} {
			if g.current > g.committed {
				failures = append(failures, fmt.Sprintf(
					"%s allocs/op %d exceeds committed %d", g.name, g.current, g.committed))
			}
		}
	}
	return failures
}

func writeReport(path string, rep report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}

func readReport(path string) (report, error) {
	var rep report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	err = json.Unmarshal(data, &rep)
	return rep, err
}

// run executes one testing.Benchmark, appends the row to the report and
// returns it.
func run(name string, rep *report, fn func(*testing.B)) kernelBench {
	kb := bench(fn)
	kb.Name = name
	rep.Benchmarks = append(rep.Benchmarks, kb)
	return kb
}

// bench measures one configuration without recording it, so callers can
// take the best of several rounds before reporting.
func bench(fn func(*testing.B)) kernelBench {
	r := testing.Benchmark(fn)
	return kernelBench{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// minBench keeps the faster of two measurements of the same configuration
// (a zero-value best, from before any round ran, always loses).
func minBench(best, next kernelBench) kernelBench {
	if best.NsPerOp == 0 || next.NsPerOp < best.NsPerOp {
		next.Name = best.Name
		return next
	}
	return best
}

func ratio(base, fast kernelBench) float64 {
	if fast.NsPerOp == 0 {
		return 0
	}
	return base.NsPerOp / fast.NsPerOp
}

var sinkBool bool

func sink(b bool) { sinkBool = sinkBool != b }

// pairWorkload mirrors the dominance package's benchmark fixture: one fixed
// non-overlapping (Sa, Sb) pair and a query batch straddling the dominance
// boundary — points sharing the sphere-query centers, so the two workloads
// differ only in query fatness.
func pairWorkload(rng *rand.Rand, d, nq int) (sa, sb geom.Sphere, points, spheres []geom.Sphere) {
	for {
		sa = randSphere(rng, d, 1.5)
		sb = randSphere(rng, d, 1.5)
		if !geom.Overlap(sa, sb) {
			break
		}
	}
	points = make([]geom.Sphere, nq)
	spheres = make([]geom.Sphere, nq)
	for i := 0; i < nq; i++ {
		c := make([]float64, d)
		for j := range c {
			c[j] = (sa.Center[j]+sb.Center[j])/2 + rng.NormFloat64()*6
		}
		points[i] = geom.Point(c)
		spheres[i] = geom.NewSphere(c, rng.Float64()*2)
	}
	return sa, sb, points, spheres
}

func randSphere(rng *rand.Rand, d int, maxR float64) geom.Sphere {
	c := make([]float64, d)
	for j := range c {
		c[j] = rng.Float64() * 10
	}
	return geom.NewSphere(c, rng.Float64()*maxR)
}

// knnFixture mirrors the knn package's allocation fixture: a 10k-item
// SS-tree of Gaussian spheres and a query batch from the same distribution.
// The tree itself is returned too, so the caller can Freeze it between the
// pointer-path and packed-path timing passes; the raw item set rides along
// for the shard-scaling section, which builds its own partitioned trees.
func knnFixture(n, d int) (*sstree.Tree, knn.Index, []geom.Item, []geom.Sphere) {
	rng := rand.New(rand.NewSource(7001))
	t := sstree.New(d)
	items := make([]geom.Item, 0, n)
	for i := 0; i < n; i++ {
		c := make([]float64, d)
		for j := range c {
			c[j] = 100 + rng.NormFloat64()*25
		}
		it := geom.Item{Sphere: geom.NewSphere(c, rng.Float64()*2), ID: i}
		t.Insert(it)
		items = append(items, it)
	}
	queries := make([]geom.Sphere, 16)
	for i := range queries {
		c := make([]float64, d)
		for j := range c {
			c[j] = 100 + rng.NormFloat64()*25
		}
		queries[i] = geom.NewSphere(c, rng.Float64()*2)
	}
	return t, knn.WrapSSTree(t), items, queries
}
