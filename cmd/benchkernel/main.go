// Command benchkernel measures the dominance/kNN hot kernels and writes
// the machine-readable BENCH_knn.json tracked across PRs:
//
//   - the Hyperbola criterion evaluated per triple versus through a
//     PreparedPair on one fixed (Sa, Sb) at d=10, for point queries (the
//     certain-query pruning case) and fat sphere queries;
//   - the DF and HS kNN traversals over a 10k-item SS-tree, with their
//     steady-state allocations per search;
//   - a metrics block captured from the obs registry: prune rates,
//     dominance checks and nodes visited per query, heap traffic, and the
//     p50/p99 per-search latency from the knn.search_latency histograms.
//
// Timing benchmarks run with the obs counters disabled so ns/op stays
// comparable across PRs; the metrics block comes from a separate
// counter-enabled pass over a fixed workload.
//
// Usage:
//
//	benchkernel [-o BENCH_knn.json]
//	benchkernel -gate BENCH_knn.json -min-speedup 1.3   # CI sanity gate
//	benchkernel -trace trace.json                       # export query traces
//
// The shared observability flags apply: with -trace the counter-enabled
// metrics pass samples its searches for execution tracing and the retained
// traces are exported as Chrome trace_event JSON on exit (DESIGN.md §10).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"testing"

	"hyperdom/internal/dominance"
	"hyperdom/internal/geom"
	"hyperdom/internal/knn"
	"hyperdom/internal/obs"
	"hyperdom/internal/sstree"
	"hyperdom/internal/workload"
)

// kernelBench is one benchmark row of the output file.
type kernelBench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// metricsBlock summarizes the obs counter registry over a fixed
// counter-enabled workload: MetricsSearches kNN searches (HS) plus one
// prepared point-query sweep. Counters holds the raw snapshot diff; the
// derived ratios are what reviews and the CI gate read.
type metricsBlock struct {
	Searches           int               `json:"searches"`
	Counters           map[string]uint64 `json:"counters"`
	DomChecksPerQuery  float64           `json:"dom_checks_per_query"`
	NodesPerQuery      float64           `json:"nodes_per_query"`
	ItemsPerQuery      float64           `json:"items_scanned_per_query"`
	PruneRate          float64           `json:"prune_rate"`
	HeapPushesPerQuery float64           `json:"heap_pushes_per_query"`
	PreparedReuseRate  float64           `json:"prepared_reuse_rate"`
	SearchLatencyP50Ns float64           `json:"search_latency_p50_ns"`
	SearchLatencyP99Ns float64           `json:"search_latency_p99_ns"`
}

// report is the schema of BENCH_knn.json.
type report struct {
	Dim              int           `json:"dim"`
	Queries          int           `json:"queries_per_op"`
	Benchmarks       []kernelBench `json:"benchmarks"`
	SpeedupPointQ    float64       `json:"speedup_prepared_point_query"`
	SpeedupSphereQ   float64       `json:"speedup_prepared_sphere_query"`
	KnnTreeItems     int           `json:"knn_tree_items"`
	KnnK             int           `json:"knn_k"`
	KnnAllocsDF      int64         `json:"knn_allocs_per_search_df"`
	KnnAllocsHS      int64         `json:"knn_allocs_per_search_hs"`
	SpeedupTargetMet bool          `json:"speedup_target_met"` // point-query ratio >= 1.5
	Metrics          metricsBlock  `json:"metrics"`
}

// config holds the parsed command line.
type config struct {
	Out        string
	Gate       string
	MinSpeedup float64
	Profile    *obs.ProfileFlags
}

// parseFlags parses args (not including the program name) into a config.
func parseFlags(args []string) (*config, error) {
	fs := flag.NewFlagSet("benchkernel", flag.ContinueOnError)
	cfg := &config{}
	fs.StringVar(&cfg.Out, "o", "BENCH_knn.json", "output file")
	fs.StringVar(&cfg.Gate, "gate", "", "committed BENCH_knn.json to gate against (CI mode; exits non-zero on regression)")
	fs.Float64Var(&cfg.MinSpeedup, "min-speedup", 1.3, "minimum prepared point-query speedup the gate accepts")
	cfg.Profile = obs.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return cfg, nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	stop, err := cfg.Profile.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchkernel:", err)
		os.Exit(1)
	}

	rep := buildReport()

	if err := writeReport(cfg.Out, rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchkernel:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (prepared point-query speedup %.2fx, sphere-query %.2fx; knn allocs/search DF=%d HS=%d; prune rate %.2f; search p50=%.0fns p99=%.0fns)\n",
		cfg.Out, rep.SpeedupPointQ, rep.SpeedupSphereQ, rep.KnnAllocsDF, rep.KnnAllocsHS,
		rep.Metrics.PruneRate, rep.Metrics.SearchLatencyP50Ns, rep.Metrics.SearchLatencyP99Ns)
	stop()

	if cfg.Gate != "" {
		committed, err := readReport(cfg.Gate)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchkernel: gate:", err)
			os.Exit(1)
		}
		if failures := gateReport(rep, committed, cfg.MinSpeedup); len(failures) > 0 {
			fmt.Fprintf(os.Stderr, "benchkernel: gate FAILED:\n  %s\n", strings.Join(failures, "\n  "))
			os.Exit(1)
		}
		fmt.Println("gate passed")
	}
}

// buildReport runs all benchmarks and the metrics pass. Timing runs with
// counters off; the metrics pass re-enables them and diffs the registry.
func buildReport() report {
	rep := report{Dim: 10, Queries: 512, KnnTreeItems: 10000, KnnK: 10}

	wasOn := obs.On()
	obs.SetEnabled(false)
	defer obs.SetEnabled(wasOn)

	sa, sb, points, spheres := pairWorkload(rand.New(rand.NewSource(123)), rep.Dim, rep.Queries)

	perPoint := run("PreparedPair/PointQuery/PerTriple", &rep, func(b *testing.B) {
		crit := dominance.Hyperbola{}
		for i := 0; i < b.N; i++ {
			for _, q := range points {
				sink(crit.Dominates(sa, sb, q))
			}
		}
	})
	prepPoint := run("PreparedPair/PointQuery/Prepared", &rep, func(b *testing.B) {
		pp := dominance.PreparePair(sa, sb)
		for i := 0; i < b.N; i++ {
			for _, q := range points {
				sink(pp.Dominates(q))
			}
		}
	})
	perSphere := run("PreparedPair/SphereQuery/PerTriple", &rep, func(b *testing.B) {
		crit := dominance.Hyperbola{}
		for i := 0; i < b.N; i++ {
			for _, q := range spheres {
				sink(crit.Dominates(sa, sb, q))
			}
		}
	})
	prepSphere := run("PreparedPair/SphereQuery/Prepared", &rep, func(b *testing.B) {
		pp := dominance.PreparePair(sa, sb)
		for i := 0; i < b.N; i++ {
			for _, q := range spheres {
				sink(pp.Dominates(q))
			}
		}
	})
	rep.SpeedupPointQ = ratio(perPoint, prepPoint)
	rep.SpeedupSphereQ = ratio(perSphere, prepSphere)
	rep.SpeedupTargetMet = rep.SpeedupPointQ >= 1.5

	idx, queries := knnFixture(rep.KnnTreeItems, 8)
	for _, algo := range []knn.Algorithm{knn.DF, knn.HS} {
		algo := algo
		kb := run(fmt.Sprintf("Search/SS10k/%v", algo), &rep, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				knn.Search(idx, queries[i%len(queries)], rep.KnnK, dominance.Hyperbola{}, algo)
			}
		})
		if algo == knn.DF {
			rep.KnnAllocsDF = kb.AllocsPerOp
		} else {
			rep.KnnAllocsHS = kb.AllocsPerOp
		}
	}

	rep.Metrics = captureMetrics(idx, queries, rep.KnnK, sa, sb, points)
	return rep
}

// captureMetrics runs the fixed metrics workload with counters enabled and
// reduces the registry to the per-query ratios and latency quantiles the
// report carries. The registry is zeroed first (obs.ResetForTest) so every
// reading — counters and histograms alike — is absolute for this window.
func captureMetrics(idx knn.Index, queries []geom.Sphere, k int, sa, sb geom.Sphere, points []geom.Sphere) metricsBlock {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	obs.ResetForTest()

	const rounds = 4
	for r := 0; r < rounds; r++ {
		for _, q := range queries {
			knn.Search(idx, q, k, dominance.Hyperbola{}, knn.HS)
		}
	}
	// Snapshot between the traversal rounds and the point sweep: the kNN
	// path legitimately re-prepares on every check (the pair changes each
	// time), so the reuse rate is only meaningful over the sweep, where
	// one pair serves the whole query batch.
	preSweep := obs.Snapshot()
	pp := dominance.PreparePair(sa, sb)
	verdicts := make([]bool, len(points))
	pp.DominatesBatch(points, verdicts)
	pp.FlushObs()

	// One serial workload batch over the same fixture, so the workload
	// layer's batch-latency histogram carries samples in the exposition too.
	triples := make([]workload.Triple, len(points))
	for i, q := range points {
		triples[i] = workload.Triple{A: sa, B: sb, Q: q}
	}
	workload.Verdicts(dominance.Hyperbola{}, triples)

	diff := obs.Snapshot()
	sweep := diff.Diff(preSweep)

	searches := rounds * len(queries)
	m := metricsBlock{Searches: searches, Counters: diff.Diff(obs.Snap{})}
	n := float64(searches)
	m.DomChecksPerQuery = float64(diff.Get("knn.dom_checks")) / n
	m.NodesPerQuery = float64(diff.Get("knn.nodes_visited")) / n
	m.ItemsPerQuery = float64(diff.Get("knn.items_scanned")) / n
	m.HeapPushesPerQuery = float64(diff.Get("knn.heap_pushes")) / n
	// Prune events per scanned item. Slightly above 1 is possible: a
	// deferred candidate counts again when the final filter re-prunes it.
	if scanned := diff.Get("knn.items_scanned"); scanned > 0 {
		m.PruneRate = float64(diff.Get("knn.pruned")) / float64(scanned)
	}
	if q := sweep.Get("dominance.prepared.queries"); q > 0 {
		m.PreparedReuseRate = float64(sweep.Get("dominance.prepared.reuse_hits")) / float64(q)
	}
	lat := obs.MergedHist("knn.search_latency")
	m.SearchLatencyP50Ns = lat.Quantile(0.5)
	m.SearchLatencyP99Ns = lat.Quantile(0.99)
	return m
}

// gateReport compares a fresh report against the committed one and returns
// the list of regressions; empty means the gate passes. Timing is checked
// only through the prepared-pair speedup ratio (dimensionless, so stable
// across machines of different speed); allocations are exact counts.
func gateReport(current, committed report, minSpeedup float64) []string {
	var failures []string
	if current.SpeedupPointQ < minSpeedup {
		failures = append(failures, fmt.Sprintf(
			"prepared point-query speedup %.2fx below floor %.2fx", current.SpeedupPointQ, minSpeedup))
	}
	if current.KnnAllocsDF > committed.KnnAllocsDF {
		failures = append(failures, fmt.Sprintf(
			"DF search allocs/op %d exceeds committed %d", current.KnnAllocsDF, committed.KnnAllocsDF))
	}
	if current.KnnAllocsHS > committed.KnnAllocsHS {
		failures = append(failures, fmt.Sprintf(
			"HS search allocs/op %d exceeds committed %d", current.KnnAllocsHS, committed.KnnAllocsHS))
	}
	return failures
}

func writeReport(path string, rep report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}

func readReport(path string) (report, error) {
	var rep report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	err = json.Unmarshal(data, &rep)
	return rep, err
}

// run executes one testing.Benchmark, appends the row to the report and
// returns it.
func run(name string, rep *report, fn func(*testing.B)) kernelBench {
	r := testing.Benchmark(fn)
	kb := kernelBench{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	rep.Benchmarks = append(rep.Benchmarks, kb)
	return kb
}

func ratio(base, fast kernelBench) float64 {
	if fast.NsPerOp == 0 {
		return 0
	}
	return base.NsPerOp / fast.NsPerOp
}

var sinkBool bool

func sink(b bool) { sinkBool = sinkBool != b }

// pairWorkload mirrors the dominance package's benchmark fixture: one fixed
// non-overlapping (Sa, Sb) pair and a query batch straddling the dominance
// boundary — points sharing the sphere-query centers, so the two workloads
// differ only in query fatness.
func pairWorkload(rng *rand.Rand, d, nq int) (sa, sb geom.Sphere, points, spheres []geom.Sphere) {
	for {
		sa = randSphere(rng, d, 1.5)
		sb = randSphere(rng, d, 1.5)
		if !geom.Overlap(sa, sb) {
			break
		}
	}
	points = make([]geom.Sphere, nq)
	spheres = make([]geom.Sphere, nq)
	for i := 0; i < nq; i++ {
		c := make([]float64, d)
		for j := range c {
			c[j] = (sa.Center[j]+sb.Center[j])/2 + rng.NormFloat64()*6
		}
		points[i] = geom.Point(c)
		spheres[i] = geom.NewSphere(c, rng.Float64()*2)
	}
	return sa, sb, points, spheres
}

func randSphere(rng *rand.Rand, d int, maxR float64) geom.Sphere {
	c := make([]float64, d)
	for j := range c {
		c[j] = rng.Float64() * 10
	}
	return geom.NewSphere(c, rng.Float64()*maxR)
}

// knnFixture mirrors the knn package's allocation fixture: a 10k-item
// SS-tree of Gaussian spheres and a query batch from the same distribution.
func knnFixture(n, d int) (knn.Index, []geom.Sphere) {
	rng := rand.New(rand.NewSource(7001))
	t := sstree.New(d)
	for i := 0; i < n; i++ {
		c := make([]float64, d)
		for j := range c {
			c[j] = 100 + rng.NormFloat64()*25
		}
		t.Insert(geom.Item{Sphere: geom.NewSphere(c, rng.Float64()*2), ID: i})
	}
	queries := make([]geom.Sphere, 16)
	for i := range queries {
		c := make([]float64, d)
		for j := range c {
			c[j] = 100 + rng.NormFloat64()*25
		}
		queries[i] = geom.NewSphere(c, rng.Float64()*2)
	}
	return knn.WrapSSTree(t), queries
}
