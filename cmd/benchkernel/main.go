// Command benchkernel measures the dominance/kNN hot kernels and writes
// the machine-readable BENCH_knn.json tracked across PRs:
//
//   - the Hyperbola criterion evaluated per triple versus through a
//     PreparedPair on one fixed (Sa, Sb) at d=10, for point queries (the
//     certain-query pruning case) and fat sphere queries;
//   - the DF and HS kNN traversals over a 10k-item SS-tree, with their
//     steady-state allocations per search.
//
// Usage:
//
//	benchkernel [-o BENCH_knn.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"hyperdom/internal/dominance"
	"hyperdom/internal/geom"
	"hyperdom/internal/knn"
	"hyperdom/internal/sstree"
)

// kernelBench is one benchmark row of the output file.
type kernelBench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// report is the schema of BENCH_knn.json.
type report struct {
	Dim              int           `json:"dim"`
	Queries          int           `json:"queries_per_op"`
	Benchmarks       []kernelBench `json:"benchmarks"`
	SpeedupPointQ    float64       `json:"speedup_prepared_point_query"`
	SpeedupSphereQ   float64       `json:"speedup_prepared_sphere_query"`
	KnnTreeItems     int           `json:"knn_tree_items"`
	KnnK             int           `json:"knn_k"`
	KnnAllocsDF      int64         `json:"knn_allocs_per_search_df"`
	KnnAllocsHS      int64         `json:"knn_allocs_per_search_hs"`
	SpeedupTargetMet bool          `json:"speedup_target_met"` // point-query ratio >= 1.5
}

func main() {
	out := flag.String("o", "BENCH_knn.json", "output file")
	flag.Parse()

	rep := report{Dim: 10, Queries: 512, KnnTreeItems: 10000, KnnK: 10}

	sa, sb, points, spheres := pairWorkload(rand.New(rand.NewSource(123)), rep.Dim, rep.Queries)

	perPoint := run("PreparedPair/PointQuery/PerTriple", &rep, func(b *testing.B) {
		crit := dominance.Hyperbola{}
		for i := 0; i < b.N; i++ {
			for _, q := range points {
				sink(crit.Dominates(sa, sb, q))
			}
		}
	})
	prepPoint := run("PreparedPair/PointQuery/Prepared", &rep, func(b *testing.B) {
		pp := dominance.PreparePair(sa, sb)
		for i := 0; i < b.N; i++ {
			for _, q := range points {
				sink(pp.Dominates(q))
			}
		}
	})
	perSphere := run("PreparedPair/SphereQuery/PerTriple", &rep, func(b *testing.B) {
		crit := dominance.Hyperbola{}
		for i := 0; i < b.N; i++ {
			for _, q := range spheres {
				sink(crit.Dominates(sa, sb, q))
			}
		}
	})
	prepSphere := run("PreparedPair/SphereQuery/Prepared", &rep, func(b *testing.B) {
		pp := dominance.PreparePair(sa, sb)
		for i := 0; i < b.N; i++ {
			for _, q := range spheres {
				sink(pp.Dominates(q))
			}
		}
	})
	rep.SpeedupPointQ = ratio(perPoint, prepPoint)
	rep.SpeedupSphereQ = ratio(perSphere, prepSphere)
	rep.SpeedupTargetMet = rep.SpeedupPointQ >= 1.5

	idx, queries := knnFixture(rep.KnnTreeItems, 8)
	for _, algo := range []knn.Algorithm{knn.DF, knn.HS} {
		algo := algo
		kb := run(fmt.Sprintf("Search/SS10k/%v", algo), &rep, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				knn.Search(idx, queries[i%len(queries)], rep.KnnK, dominance.Hyperbola{}, algo)
			}
		})
		if algo == knn.DF {
			rep.KnnAllocsDF = kb.AllocsPerOp
		} else {
			rep.KnnAllocsHS = kb.AllocsPerOp
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchkernel:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchkernel:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (prepared point-query speedup %.2fx, sphere-query %.2fx; knn allocs/search DF=%d HS=%d)\n",
		*out, rep.SpeedupPointQ, rep.SpeedupSphereQ, rep.KnnAllocsDF, rep.KnnAllocsHS)
}

// run executes one testing.Benchmark, appends the row to the report and
// returns it.
func run(name string, rep *report, fn func(*testing.B)) kernelBench {
	r := testing.Benchmark(fn)
	kb := kernelBench{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	rep.Benchmarks = append(rep.Benchmarks, kb)
	return kb
}

func ratio(base, fast kernelBench) float64 {
	if fast.NsPerOp == 0 {
		return 0
	}
	return base.NsPerOp / fast.NsPerOp
}

var sinkBool bool

func sink(b bool) { sinkBool = sinkBool != b }

// pairWorkload mirrors the dominance package's benchmark fixture: one fixed
// non-overlapping (Sa, Sb) pair and a query batch straddling the dominance
// boundary — points sharing the sphere-query centers, so the two workloads
// differ only in query fatness.
func pairWorkload(rng *rand.Rand, d, nq int) (sa, sb geom.Sphere, points, spheres []geom.Sphere) {
	for {
		sa = randSphere(rng, d, 1.5)
		sb = randSphere(rng, d, 1.5)
		if !geom.Overlap(sa, sb) {
			break
		}
	}
	points = make([]geom.Sphere, nq)
	spheres = make([]geom.Sphere, nq)
	for i := 0; i < nq; i++ {
		c := make([]float64, d)
		for j := range c {
			c[j] = (sa.Center[j]+sb.Center[j])/2 + rng.NormFloat64()*6
		}
		points[i] = geom.Point(c)
		spheres[i] = geom.NewSphere(c, rng.Float64()*2)
	}
	return sa, sb, points, spheres
}

func randSphere(rng *rand.Rand, d int, maxR float64) geom.Sphere {
	c := make([]float64, d)
	for j := range c {
		c[j] = rng.Float64() * 10
	}
	return geom.NewSphere(c, rng.Float64()*maxR)
}

// knnFixture mirrors the knn package's allocation fixture: a 10k-item
// SS-tree of Gaussian spheres and a query batch from the same distribution.
func knnFixture(n, d int) (knn.Index, []geom.Sphere) {
	rng := rand.New(rand.NewSource(7001))
	t := sstree.New(d)
	for i := 0; i < n; i++ {
		c := make([]float64, d)
		for j := range c {
			c[j] = 100 + rng.NormFloat64()*25
		}
		t.Insert(geom.Item{Sphere: geom.NewSphere(c, rng.Float64()*2), ID: i})
	}
	queries := make([]geom.Sphere, 16)
	for i := range queries {
		c := make([]float64, d)
		for j := range c {
			c[j] = 100 + rng.NormFloat64()*25
		}
		queries[i] = geom.NewSphere(c, rng.Float64()*2)
	}
	return knn.WrapSSTree(t), queries
}
