package main

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"hyperdom/internal/dominance"
	"hyperdom/internal/knn"
	"hyperdom/internal/obs"
)

func TestParseFlagsDefaults(t *testing.T) {
	cfg, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Out != "BENCH_knn.json" {
		t.Errorf("Out = %q, want BENCH_knn.json", cfg.Out)
	}
	if cfg.Gate != "" {
		t.Errorf("Gate = %q, want empty", cfg.Gate)
	}
	if cfg.MinSpeedup != 1.3 {
		t.Errorf("MinSpeedup = %v, want 1.3", cfg.MinSpeedup)
	}
	if cfg.MinPackedSpeedup != 1.15 {
		t.Errorf("MinPackedSpeedup = %v, want 1.15", cfg.MinPackedSpeedup)
	}
	if cfg.MinQuantSpeedup != 1.4 {
		t.Errorf("MinQuantSpeedup = %v, want 1.4", cfg.MinQuantSpeedup)
	}
	if cfg.MinSphereSpeedup != 1.5 {
		t.Errorf("MinSphereSpeedup = %v, want 1.5", cfg.MinSphereSpeedup)
	}
	if cfg.MinScaling != 2.5 {
		t.Errorf("MinScaling = %v, want 2.5", cfg.MinScaling)
	}
	if cfg.ScalingOnly {
		t.Error("ScalingOnly defaults on")
	}
	if cfg.RequireCores != 0 {
		t.Errorf("RequireCores = %d, want 0", cfg.RequireCores)
	}
	if cfg.Quant != knn.QuantF32 {
		t.Errorf("Quant = %v, want f32", cfg.Quant)
	}
	if cfg.Profile == nil || cfg.Profile.Wanted() {
		t.Errorf("Profile = %+v, want registered and idle", cfg.Profile)
	}
}

func TestParseFlagsAll(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-o", "out.json", "-gate", "committed.json", "-min-speedup", "2.5",
		"-scaling-only", "-require-cores", "2",
		"-cpuprofile", "cpu.out", "-memprofile", "mem.out", "-pprof", "localhost:0", "-metrics",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Out != "out.json" || cfg.Gate != "committed.json" || cfg.MinSpeedup != 2.5 {
		t.Errorf("parsed config = %+v", cfg)
	}
	if !cfg.ScalingOnly || cfg.RequireCores != 2 {
		t.Errorf("scaling flags = %+v", cfg)
	}
	if !cfg.Profile.Wanted() || cfg.Profile.CPUProfile != "cpu.out" || !cfg.Profile.Metrics {
		t.Errorf("profile flags = %+v", cfg.Profile)
	}
}

func TestParseFlagsBad(t *testing.T) {
	if _, err := parseFlags([]string{"-min-speedup", "not-a-number"}); err == nil {
		t.Error("bad flag value accepted")
	}
	if _, err := parseFlags([]string{"-quant", "f16"}); err == nil {
		t.Error("unknown quant tier accepted")
	}
}

// TestReportRoundTrip pins the BENCH_knn.json schema, metrics block
// included: what writeReport emits, readReport must reproduce exactly.
func TestReportRoundTrip(t *testing.T) {
	rep := report{
		Dim:     10,
		Queries: 512,
		Benchmarks: []kernelBench{
			{Name: "PreparedPair/PointQuery/Prepared", NsPerOp: 31.5, AllocsPerOp: 0, BytesPerOp: 0},
			{Name: "Search/SS10k/HS", NsPerOp: 120000, AllocsPerOp: 2, BytesPerOp: 400},
		},
		SpeedupPointQ:    1.91,
		SpeedupSphereQ:   1.33,
		KnnTreeItems:     10000,
		KnnK:             10,
		KnnAllocsDF:      2,
		KnnAllocsHS:      2,
		SpeedupTargetMet: true,
		Metrics: metricsBlock{
			Searches: 64,
			Counters: map[string]uint64{
				"knn.searches":      64,
				"knn.nodes_visited": 4096,
				"knn.dom_checks":    20000,
			},
			DomChecksPerQuery:  312.5,
			NodesPerQuery:      64,
			ItemsPerQuery:      500,
			PruneRate:          0.93,
			HeapPushesPerQuery: 70,
			PreparedReuseRate:  0.99,
		},
		Throughput: throughputBlock{
			GoMaxProcs: 2, CoresDetected: 4, Gated: true, BatchQueries: 128, K: 10,
			Points:       []scalingPoint{{Workers: 1, OpsPerSec: 1000, Scaling: 1}, {Workers: 8, OpsPerSec: 1800, Scaling: 1.8}},
			ScalingAtMax: 1.8,
		},
		ShardScaling: shardScalingBlock{
			GoMaxProcs: 2, CoresDetected: 4, Gated: true, BatchQueries: 64, K: 10,
			Points:       []shardScalingPoint{{Shards: 1, OpsPerSec: 700, Scaling: 1}, {Shards: 4, OpsPerSec: 1100, Scaling: 1.57}},
			ScalingAtMax: 1.57,
		},
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := writeReport(path, rep); err != nil {
		t.Fatal(err)
	}
	got, err := readReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rep) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, rep)
	}
}

func TestReadReportMissing(t *testing.T) {
	if _, err := readReport(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestGateReport(t *testing.T) {
	cfg := &config{MinSpeedup: 1.3, MinPackedSpeedup: 1.15,
		MinQuantSpeedup: 1.4, MinSphereSpeedup: 1.5, MinScaling: 2.5}
	committed := report{
		KnnAllocsDF: 2, KnnAllocsHS: 2,
		KnnAllocsPackedDF: 2, KnnAllocsPackedHS: 2,
	}
	// Single core: the adaptive scaling floor collapses to 0.8, so flat
	// 1.0x scaling passes.
	ok := report{
		SpeedupPointQ: 1.9, SpeedupSphereQ: 1.8, SpeedupPacked: 1.2,
		SpeedupQuantized: quantBlock{Best: 1.6, BestTier: "f32"},
		KnnAllocsDF:      2, KnnAllocsHS: 1,
		KnnAllocsPackedDF: 2, KnnAllocsPackedHS: 2,
		Throughput: throughputBlock{GoMaxProcs: 1, ScalingAtMax: 1.0},
	}
	if failures := gateReport(ok, committed, cfg); len(failures) != 0 {
		t.Errorf("clean report failed the gate: %v", failures)
	}
	// Eight cores: the full -min-scaling bar applies, and every ratio and
	// alloc count here regresses — one failure per gate (point-query,
	// packed, quantized, sphere-query, scaling, four alloc rows).
	bad := report{
		SpeedupPointQ: 1.1, SpeedupSphereQ: 1.0, SpeedupPacked: 1.0,
		SpeedupQuantized: quantBlock{Best: 1.1, BestTier: "i8"},
		KnnAllocsDF:      3, KnnAllocsHS: 5,
		KnnAllocsPackedDF: 3, KnnAllocsPackedHS: 4,
		Throughput: throughputBlock{GoMaxProcs: 8, ScalingAtMax: 1.2},
	}
	failures := gateReport(bad, committed, cfg)
	if len(failures) != 9 {
		t.Errorf("regressed report produced %d failures, want 9: %v", len(failures), failures)
	}
	// Even one core must not make queries slower through the pool: scaling
	// under 0.8 fails regardless of GOMAXPROCS.
	slow := ok
	slow.Throughput = throughputBlock{GoMaxProcs: 1, ScalingAtMax: 0.7}
	if failures := gateReport(slow, committed, cfg); len(failures) != 1 {
		t.Errorf("sub-0.8x scaling produced %d failures, want 1: %v", len(failures), failures)
	}
	// -min-scaling 0 opts out of the scaling gates entirely — the
	// single-core bench-sanity job's mode.
	off := *cfg
	off.MinScaling = 0
	if failures := gateReport(slow, committed, &off); len(failures) != 0 {
		t.Errorf("-min-scaling 0 still gated scaling: %v", failures)
	}
	// -scaling-only restricts the gate to the scaling blocks: the kernel
	// ratios and alloc rows of the regressed report stop counting and only
	// its 8-core scaling failure remains.
	sOnly := *cfg
	sOnly.ScalingOnly = true
	if failures := gateReport(bad, committed, &sOnly); len(failures) != 1 {
		t.Errorf("-scaling-only produced %d failures, want 1: %v", len(failures), failures)
	}
	// -require-cores fails a measurement from an undersized runner even if
	// every ratio passes.
	cores := *cfg
	cores.RequireCores = 2
	if failures := gateReport(ok, committed, &cores); len(failures) != 1 {
		t.Errorf("-require-cores 2 on a 1-core report produced %d failures, want 1: %v", len(failures), failures)
	}
	// A pathological scatter-gather table (max-shard throughput under half
	// of single-shard) fails even when worker scaling is fine — but only
	// for gated (multi-core) measurements.
	shardBad := ok
	shardBad.Throughput = throughputBlock{GoMaxProcs: 8, ScalingAtMax: 4.0}
	shardBad.ShardScaling = shardScalingBlock{
		GoMaxProcs: 8, Gated: true,
		Points:       []shardScalingPoint{{Shards: 1, OpsPerSec: 1000, Scaling: 1}, {Shards: 4, OpsPerSec: 400, Scaling: 0.4}},
		ScalingAtMax: 0.4,
	}
	if failures := gateReport(shardBad, committed, cfg); len(failures) != 1 {
		t.Errorf("pathological shard scaling produced %d failures, want 1: %v", len(failures), failures)
	}
	// The same table from a 1-core runner is an expected artifact: the
	// scatter goroutines had nowhere to run in parallel, gated:false says
	// so, and the gate lets it pass.
	shardBad.Throughput = throughputBlock{GoMaxProcs: 1, ScalingAtMax: 1.0}
	shardBad.ShardScaling.GoMaxProcs, shardBad.ShardScaling.Gated = 1, false
	if failures := gateReport(shardBad, committed, cfg); len(failures) != 0 {
		t.Errorf("ungated 1-core shard table failed the gate: %v", failures)
	}
}

// TestCaptureMetrics runs the real metrics pass on a scaled-down fixture
// and checks the derived ratios are present and internally consistent.
func TestCaptureMetrics(t *testing.T) {
	defer obs.SetEnabled(true)
	obs.SetEnabled(false) // captureMetrics enables the gate itself

	_, idx, _, queries := knnFixture(1500, 6)
	sa, sb, points, _ := pairWorkload(rand.New(rand.NewSource(42)), 6, 64)
	m := captureMetrics(idx, queries, 5, sa, sb, points)

	if want := 5 * len(queries); m.Searches != want {
		t.Errorf("Searches = %d, want %d", m.Searches, want)
	}
	if got := m.Counters["knn.searches"]; got != uint64(m.Searches) {
		t.Errorf("counters[knn.searches] = %d, want %d", got, m.Searches)
	}
	if m.NodesPerQuery <= 0 || m.DomChecksPerQuery <= 0 || m.HeapPushesPerQuery <= 0 {
		t.Errorf("derived ratios missing: %+v", m)
	}
	// Prune events per scanned item; re-prunes of deferred candidates can
	// push it marginally above 1, but 2 would mean double counting.
	if m.PruneRate <= 0 || m.PruneRate >= 2 {
		t.Errorf("PruneRate = %v outside (0,2)", m.PruneRate)
	}
	if m.PreparedReuseRate <= 0 || m.PreparedReuseRate > 1 {
		t.Errorf("PreparedReuseRate = %v outside (0,1]", m.PreparedReuseRate)
	}
	if obs.On() {
		t.Error("captureMetrics left the counter gate enabled")
	}
	// Sanity against one live search with counters off: captureMetrics
	// must not leak tallies into later searches.
	knn.Search(idx, queries[0], 5, dominance.Hyperbola{}, knn.HS)
}
