package hyperdom_test

import (
	"bytes"
	"math/rand"
	"testing"

	"hyperdom"
)

func TestQuickstartFlow(t *testing.T) {
	sa := hyperdom.NewSphere([]float64{0, 0}, 1)
	sb := hyperdom.NewSphere([]float64{9, 0}, 1)
	sq := hyperdom.NewSphere([]float64{-4, 0}, 2)
	if !hyperdom.Dominates(sa, sb, sq) {
		t.Fatal("quickstart scenario must dominate")
	}
	if hyperdom.Dominates(sb, sa, sq) {
		t.Fatal("reverse direction must not dominate")
	}
}

func TestGeometryHelpers(t *testing.T) {
	a := hyperdom.NewSphere([]float64{0, 0}, 1)
	b := hyperdom.NewSphere([]float64{10, 0}, 2)
	if hyperdom.MinDist(a, b) != 7 || hyperdom.MaxDist(a, b) != 13 {
		t.Error("MinDist/MaxDist re-exports broken")
	}
	if hyperdom.Overlap(a, b) {
		t.Error("disjoint spheres reported overlapping")
	}
	p := hyperdom.Point([]float64{1, 2})
	if !p.IsPoint() {
		t.Error("Point is not a point")
	}
}

func TestCriteriaRegistry(t *testing.T) {
	if len(hyperdom.Criteria()) != 5 {
		t.Fatalf("Criteria() returned %d entries", len(hyperdom.Criteria()))
	}
	for _, name := range []string{"Hyperbola", "MinMax", "MBR", "GP", "Trigonometric", "Exact"} {
		if hyperdom.CriterionByName(name) == nil {
			t.Errorf("CriterionByName(%q) = nil", name)
		}
	}
	if hyperdom.Hyperbola().Name() != "Hyperbola" {
		t.Error("Hyperbola constructor broken")
	}
	if !hyperdom.Hyperbola().Correct() || !hyperdom.Hyperbola().Sound() {
		t.Error("Hyperbola must be correct and sound")
	}
	if hyperdom.Trigonometric().Correct() {
		t.Error("Trigonometric must not claim correctness")
	}
}

func randomItems(n, d int, seed int64) []hyperdom.Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]hyperdom.Item, n)
	for i := range items {
		c := make([]float64, d)
		for j := range c {
			c[j] = 100 + rng.NormFloat64()*25
		}
		items[i] = hyperdom.Item{Sphere: hyperdom.NewSphere(c, rng.Float64()*5), ID: i}
	}
	return items
}

func TestKNNThroughFacade(t *testing.T) {
	items := randomItems(800, 3, 1)
	ss := hyperdom.NewSSTree(3, 0)
	mt := hyperdom.NewMTree(3, 0)
	for _, it := range items {
		ss.Insert(it)
		mt.Insert(it)
	}
	sq := hyperdom.NewSphere([]float64{100, 100, 100}, 4)
	want := hyperdom.KNNBruteForce(items, sq, 5, hyperdom.Hyperbola())
	for _, strategy := range []hyperdom.SearchStrategy{hyperdom.DepthFirst, hyperdom.BestFirst} {
		got := hyperdom.KNN(ss, sq, 5, hyperdom.Hyperbola(), strategy)
		if len(got.Items) != len(want.Items) {
			t.Fatalf("SS-tree %v: %d items, want %d", strategy, len(got.Items), len(want.Items))
		}
		gotM := hyperdom.KNNOverMTree(mt, sq, 5, hyperdom.Hyperbola(), strategy)
		if len(gotM.Items) != len(want.Items) {
			t.Fatalf("M-tree %v: %d items, want %d", strategy, len(gotM.Items), len(want.Items))
		}
	}
}

func TestRKNNAndTopKThroughFacade(t *testing.T) {
	items := randomItems(300, 2, 2)
	ss := hyperdom.NewSSTree(2, 0)
	for _, it := range items {
		ss.Insert(it)
	}
	sq := hyperdom.NewSphere([]float64{100, 100}, 3)
	bf := hyperdom.RKNNBruteForce(items, sq, 2, hyperdom.Hyperbola())
	se := hyperdom.RKNN(ss, sq, 2, hyperdom.Hyperbola())
	if len(bf.Items) != len(se.Items) {
		t.Fatalf("RKNN: index %d items, brute force %d", len(se.Items), len(bf.Items))
	}
	tk := hyperdom.TopKDominating(items, sq, 3, hyperdom.Hyperbola())
	if len(tk.Top) != 3 {
		t.Fatalf("TopKDominating returned %d items", len(tk.Top))
	}
	if len(tk.Top) > 1 && tk.Top[0].Score < tk.Top[1].Score {
		t.Error("top-k not sorted by score")
	}
}

func TestRTreeThroughFacade(t *testing.T) {
	items := randomItems(500, 3, 3)
	rt := hyperdom.NewRTree(3, 0)
	small := hyperdom.NewRTree(3, 8)
	for _, it := range items {
		rt.Insert(it)
		small.Insert(it)
	}
	sq := hyperdom.NewSphere([]float64{100, 100, 100}, 4)
	want := hyperdom.KNNBruteForce(items, sq, 5, hyperdom.Hyperbola())
	for _, tr := range []*hyperdom.RTree{rt, small} {
		got := hyperdom.KNNOverRTree(tr, sq, 5, hyperdom.Hyperbola(), hyperdom.BestFirst)
		if len(got.Items) != len(want.Items) {
			t.Fatalf("R-tree kNN: %d items, want %d", len(got.Items), len(want.Items))
		}
	}
}

func TestSSTreeSerializationThroughFacade(t *testing.T) {
	items := randomItems(300, 2, 4)
	tr := hyperdom.NewSSTree(2, 12)
	for _, it := range items {
		tr.Insert(it)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := hyperdom.ReadSSTree(&buf)
	if err != nil {
		t.Fatalf("ReadSSTree: %v", err)
	}
	if got.Len() != 300 {
		t.Errorf("restored Len=%d", got.Len())
	}
}

func TestCriterionConstructors(t *testing.T) {
	cases := []struct {
		c       hyperdom.Criterion
		name    string
		correct bool
		sound   bool
	}{
		{hyperdom.Hyperbola(), "Hyperbola", true, true},
		{hyperdom.MinMax(), "MinMax", true, false},
		{hyperdom.MBR(), "MBR", true, false},
		{hyperdom.GP(), "GP", true, false},
		{hyperdom.Trigonometric(), "Trigonometric", false, true},
		{hyperdom.Exact(), "Exact", true, true},
	}
	for _, tc := range cases {
		if tc.c.Name() != tc.name || tc.c.Correct() != tc.correct || tc.c.Sound() != tc.sound {
			t.Errorf("%s metadata wrong", tc.name)
		}
	}
}

func TestFindWitnessThroughFacade(t *testing.T) {
	sa := hyperdom.NewSphere([]float64{0, 0}, 1)
	sb := hyperdom.NewSphere([]float64{6, 0}, 1)
	sq := hyperdom.NewSphere([]float64{-1, 0}, 3.5) // reaches past the boundary
	w := hyperdom.FindWitness(sa, sb, sq, 0)
	if w == nil {
		t.Fatal("no witness for a clearly non-dominant instance")
	}
	if w.Margin > 0 {
		t.Errorf("witness margin %v > 0", w.Margin)
	}
	if hyperdom.Dominates(sa, sb, sq) {
		t.Error("witness contradicts Dominates")
	}
}

func TestPreparePairThroughFacade(t *testing.T) {
	sa := hyperdom.NewSphere([]float64{0, 0, 0}, 1)
	sb := hyperdom.NewSphere([]float64{9, 0, 0}, 1)
	pp := hyperdom.PreparePair(sa, sb)
	queries := []hyperdom.Sphere{
		hyperdom.NewSphere([]float64{-4, 0, 0}, 2),
		hyperdom.NewSphere([]float64{-4, 0, 0}, 8),
		hyperdom.Point([]float64{4.5, 1, -2}),
		hyperdom.NewSphere([]float64{12, 3, 0}, 0.5),
	}
	for _, sq := range queries {
		if got, want := pp.Dominates(sq), hyperdom.Dominates(sa, sb, sq); got != want {
			t.Errorf("PreparePair(%v, %v).Dominates(%v) = %v, Dominates = %v", sa, sb, sq, got, want)
		}
	}
	pp.Reset(sb, sa) // swapped roles: reuse without re-preparing
	for _, sq := range queries {
		if got, want := pp.Dominates(sq), hyperdom.Dominates(sb, sa, sq); got != want {
			t.Errorf("after Reset: Dominates(%v) = %v, want %v", sq, got, want)
		}
	}
}
