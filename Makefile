# Convenience targets; everything is plain `go` underneath.

GO ?= go

# Release identity stamped into server binaries (hyperdom_build_info on
# /metrics). Defaults to the git describe of the checkout; override with
# `make hyperdomd VERSION=v1.2.3`.
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
LDFLAGS  = -ldflags "-X hyperdom/internal/buildinfo.Version=$(VERSION)"

.PHONY: all build check test test-short bench bench-all bench-parallel bench-quant fuzz experiments examples serve serve-sharded hyperdomd trace cover clean

all: build check

build:
	$(GO) build ./...

# Static analysis, formatting and the full suite under the race detector —
# the gate a change must pass before it ships. staticcheck runs when
# installed (CI installs it; locally: go install honnef.co/go/tools/cmd/staticcheck@latest).
check:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; fi
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed:"; echo "$$unformatted"; exit 1; fi
	$(GO) test -race ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# The hot-kernel benchmarks (dominance criteria, prepared-pair, kNN
# traversals) plus the machine-readable BENCH_knn.json snapshot.
bench:
	$(GO) test -bench=. -benchmem ./internal/dominance ./internal/knn
	$(GO) run ./cmd/benchkernel -o BENCH_knn.json

# One testing.B benchmark per paper table/figure plus the package micro-benches.
bench-all:
	$(GO) test -bench=. -benchmem ./...

# Short fuzzing passes over the six fuzz targets.
fuzz:
	$(GO) test ./internal/poly -fuzz FuzzQuartic -fuzztime 30s
	$(GO) test ./internal/dominance -fuzz FuzzHyperbolaVsExact2D -fuzztime 30s
	$(GO) test ./internal/sstree -fuzz FuzzTreeOps -fuzztime 30s
	$(GO) test ./internal/packed -fuzz FuzzPackedMinDist -fuzztime 30s
	$(GO) test ./internal/packed -fuzz FuzzQuantizedLowerBound -fuzztime 30s
	$(GO) test ./internal/packed -fuzz FuzzSnapshotOpen -fuzztime 30s

# Batch-engine worker scaling over a frozen SS-tree: queries/s at pool
# widths 1/2/4/8 (scaling tops out at GOMAXPROCS).
bench-parallel:
	$(GO) run ./cmd/knnbench -parallel 1,2,4,8 -scale 0.05

# The quantized coarse-filter comparison: Fig 13 once per tier (exact
# packed baseline, float32, int8) on the same workload.
bench-quant:
	$(GO) run ./cmd/knnbench -fig 13 -scale 0.05 -quant none
	$(GO) run ./cmd/knnbench -fig 13 -scale 0.05 -quant f32
	$(GO) run ./cmd/knnbench -fig 13 -scale 0.05 -quant i8

# Regenerate the paper's figures at a moderate scale.
experiments:
	$(GO) run ./cmd/dombench -scale 0.2 -timing 100ms
	$(GO) run ./cmd/knnbench -scale 0.05
	$(GO) run ./cmd/knnbench -fig 17 -scale 0.05

# Run the kNN figures with counters enabled and the observability server
# up for local profiling: /metrics, /debug/slow and /debug/pprof stay
# served on :6060 after the figures finish, until Ctrl-C.
serve:
	$(GO) run ./cmd/knnbench -serve :6060 -metrics

# Start the sharded scatter-gather kNN server on a synthetic corpus —
# the HTTP layer of DESIGN.md §13. See README "Running the server".
serve-sharded:
	$(GO) run $(LDFLAGS) ./cmd/hyperdomd -shards 4 -addr :8080

# Build the version-stamped server binary into ./bin/hyperdomd.
hyperdomd:
	$(GO) build $(LDFLAGS) -o bin/hyperdomd ./cmd/hyperdomd

# Record per-query execution traces from a Fig 13 run into trace.json —
# load it in chrome://tracing or https://ui.perfetto.dev. See README
# "Tracing a slow query".
trace:
	$(GO) run ./cmd/knnbench -fig 13 -scale 0.01 -trace trace.json -trace-every 8

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/uncertain_gis
	$(GO) run ./examples/image_retrieval
	$(GO) run ./examples/rknn_pruning
	$(GO) run ./examples/moving_objects

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -20

clean:
	rm -f cover.out trace.json
	rm -rf bin
