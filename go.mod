module hyperdom

go 1.22
