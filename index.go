package hyperdom

import (
	"io"

	"hyperdom/internal/dominance"
	"hyperdom/internal/knn"
	"hyperdom/internal/mtree"
	"hyperdom/internal/ranking"
	"hyperdom/internal/rknn"
	"hyperdom/internal/rtree"
	"hyperdom/internal/sstree"
	"hyperdom/internal/topk"
)

// SSTree is an SS-tree index over hyperspheres (White & Jain, ICDE 1996),
// the index the paper's kNN experiments run on.
type SSTree = sstree.Tree

// NewSSTree returns an empty SS-tree for dim-dimensional spheres. maxFill
// ≤ 0 selects the default node capacity.
func NewSSTree(dim, maxFill int) *SSTree {
	if maxFill <= 0 {
		return sstree.New(dim)
	}
	return sstree.New(dim, sstree.WithMaxFill(maxFill))
}

// MTree is an M-tree index over hyperspheres (Ciaccia, Patella & Zezula,
// VLDB 1997), interchangeable with the SS-tree for all searches.
type MTree = mtree.Tree

// NewMTree returns an empty M-tree for dim-dimensional spheres. maxFill
// ≤ 0 selects the default node capacity.
func NewMTree(dim, maxFill int) *MTree {
	if maxFill <= 0 {
		return mtree.New(dim)
	}
	return mtree.New(dim, mtree.WithMaxFill(maxFill))
}

// RTree is a Guttman R-tree over hypersphere items: the rectangle-bounded
// baseline the sphere-tree literature (and this paper's introduction)
// compares against. It answers the same searches as the sphere trees.
type RTree = rtree.Tree

// NewRTree returns an empty R-tree for dim-dimensional sphere items.
// maxFill ≤ 0 selects the default node capacity.
func NewRTree(dim, maxFill int) *RTree {
	if maxFill <= 0 {
		return rtree.New(dim)
	}
	return rtree.New(dim, rtree.WithMaxFill(maxFill))
}

// SearchStrategy selects the index traversal for KNN: depth-first
// (Roussopoulos et al.) or best-first (Hjaltason & Samet).
type SearchStrategy = knn.Algorithm

// The two traversal strategies of the paper's Section 7.2.
const (
	DepthFirst SearchStrategy = knn.DF
	BestFirst  SearchStrategy = knn.HS
)

// KNNResult is the answer of a kNN query.
type KNNResult = knn.Result

// QuantMode selects which quantized coarse-filter tier frozen snapshots
// search through: QuantNone (exact kernels only), QuantF32 (the default)
// or QuantI8. Whatever the tier, answers are bit-identical to the exact
// path — the tiers only decide how much exact work is skipped. See
// DESIGN.md §12.
type QuantMode = knn.QuantMode

// The three coarse-filter tiers.
const (
	QuantNone QuantMode = knn.QuantNone
	QuantF32  QuantMode = knn.QuantF32
	QuantI8   QuantMode = knn.QuantI8
)

// SetQuantMode switches the process-wide coarse-filter tier and returns
// the previous mode. Safe under concurrent searches: each search reads
// the mode once at dispatch, so no traversal straddles tiers.
func SetQuantMode(m QuantMode) QuantMode { return knn.SetQuantMode(m) }

// QuantModeNow reports the tier searches are currently dispatched with.
func QuantModeNow() QuantMode { return knn.QuantModeNow() }

// KNN answers the k-nearest-neighbour query of the paper's Definition 2
// over an SS-tree: it returns every indexed sphere that is not dominated,
// with respect to the query sphere sq, by the sphere with the k-th
// smallest MaxDist to sq. With the Hyperbola criterion the answer is
// exact; with another correct criterion it is a superset.
func KNN(t *SSTree, sq Sphere, k int, crit Criterion, strategy SearchStrategy) KNNResult {
	return knn.Search(knn.WrapSSTree(t), sq, k, crit, strategy)
}

// KNNOverMTree is KNN running over an M-tree.
func KNNOverMTree(t *MTree, sq Sphere, k int, crit Criterion, strategy SearchStrategy) KNNResult {
	return knn.Search(knn.WrapMTree(t), sq, k, crit, strategy)
}

// KNNOverRTree is KNN running over the R-tree baseline.
func KNNOverRTree(t *RTree, sq Sphere, k int, crit Criterion, strategy SearchStrategy) KNNResult {
	return knn.Search(knn.WrapRTree(t), sq, k, crit, strategy)
}

// KNNBruteForce evaluates the kNN query by scanning items — the ground
// truth the paper measures precision against when crit is Hyperbola() or
// Exact().
func KNNBruteForce(items []Item, sq Sphere, k int, crit Criterion) KNNResult {
	return knn.BruteForce(items, sq, k, crit)
}

// KNNBatch answers many kNN queries over one SS-tree concurrently and
// returns results in query order. workers ≤ 0 selects GOMAXPROCS.
func KNNBatch(t *SSTree, queries []Sphere, k int, crit Criterion, strategy SearchStrategy, workers int) []KNNResult {
	return knn.SearchBatch(knn.WrapSSTree(t), queries, k, crit, strategy, workers)
}

// RKNNResult is the answer of a reverse-kNN query.
type RKNNResult = rknn.Result

// RKNN answers the reverse k-nearest-neighbour query over an SS-tree: the
// indexed spheres S for which fewer than k other objects provably dominate
// sq with respect to S.
func RKNN(t *SSTree, sq Sphere, k int, crit Criterion) RKNNResult {
	return rknn.Search(t, sq, k, crit)
}

// RKNNBruteForce evaluates the reverse-kNN query by scanning all pairs.
func RKNNBruteForce(items []Item, sq Sphere, k int, crit Criterion) RKNNResult {
	return rknn.BruteForce(items, sq, k, crit)
}

// RankResult is the answer of an inverse ranking query.
type RankResult = ranking.Result

// RankInterval is an inclusive 1-based range of attainable ranks.
type RankInterval = ranking.Interval

// InverseRank computes the ranks the query object can take among the
// items, ordered by distance from the anchor sphere's vantage: objects
// that provably dominate the query rank before it, objects it provably
// dominates rank after it, everything else is undecided. With Hyperbola()
// or Exact() the interval is tight.
func InverseRank(items []Item, query, anchor Sphere, crit Criterion) RankResult {
	return ranking.Rank(items, query, anchor, crit)
}

// TopKDominatingResult is the answer of a top-k dominating query.
type TopKDominatingResult = topk.Result

// TopKDominating ranks items by how many other items they dominate with
// respect to sq and returns the k highest scorers.
func TopKDominating(items []Item, sq Sphere, k int, crit Criterion) TopKDominatingResult {
	return topk.Query(items, sq, k, crit)
}

// FindWitness searches for a certificate that sa does NOT dominate sb wrt
// sq: a point q ∈ sq whose distance margin is non-positive. A non-nil
// result is a proof of non-dominance; nil proves nothing (the search is
// randomized). samples ≤ 0 selects a default budget.
func FindWitness(sa, sb, sq Sphere, samples int) *dominance.Witness {
	if samples <= 0 {
		samples = 512
	}
	return dominance.FindWitness(sa, sb, sq, samples, nil)
}

// Witness is a certificate of non-dominance returned by FindWitness.
type Witness = dominance.Witness

// ReadSSTree deserialises an SS-tree previously written with
// (*SSTree).WriteTo and validates its structural invariants.
func ReadSSTree(r io.Reader) (*SSTree, error) { return sstree.ReadFrom(r) }

// DominanceHorizon returns the supremum time t* ∈ [0, tMax] up to which sa
// keeps dominating sb wrt sq while all three radii grow linearly
// (rx(t) = rx + vx·t, velocities ≥ 0) — the paper's "radii change over
// time" future-work direction. It returns 0 when dominance already fails
// at t = 0 and tMax when it survives the whole window.
func DominanceHorizon(sa, sb, sq Sphere, va, vb, vq, tMax float64) float64 {
	return dominance.Horizon(sa, sb, sq, va, vb, vq, tMax)
}
