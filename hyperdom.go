// Package hyperdom is a production-quality Go implementation of the paper
// "Hypersphere Dominance: An Optimal Approach" (Long, Wong, Zhang, Xie —
// SIGMOD 2014).
//
// # The dominance operator
//
// Given three hyperspheres Sa, Sb and Sq in d-dimensional Euclidean space,
// Sa dominates Sb with respect to Sq iff every point of Sa is strictly
// closer to every point of Sq than every point of Sb is:
//
//	∀q ∈ Sq, ∀a ∈ Sa, ∀b ∈ Sb :  Dist(a,q) < Dist(b,q)
//
// Dominance is the fundamental pruning operator of spatial queries over
// uncertain objects (kNN, reverse kNN, inverse ranking, top-k dominating).
// The paper's Hyperbola criterion is the first decision procedure that is
// simultaneously correct (no false positives), sound (no false negatives)
// and O(d); this package exposes it as Dominates, along with the four
// competitor criteria the paper evaluates, SS-tree / M-tree / R-tree indexes,
// and the kNN, reverse-kNN, inverse-ranking and top-k dominating queries
// built on the operator.
//
// # Quick start
//
//	sa := hyperdom.NewSphere([]float64{0, 0}, 1)   // object A
//	sb := hyperdom.NewSphere([]float64{9, 0}, 1)   // object B
//	sq := hyperdom.NewSphere([]float64{-4, 0}, 2)  // uncertain query
//	if hyperdom.Dominates(sa, sb, sq) {
//	    // B can never be closer to the query than A: prune B.
//	}
//
// See the examples directory for index-backed kNN search and the cmd
// directory for the experiment harness that regenerates the paper's
// figures.
package hyperdom

import (
	"hyperdom/internal/dominance"
	"hyperdom/internal/geom"
)

// Sphere is a closed d-dimensional ball with a Center point and a Radius.
// A point is a Sphere of radius 0.
type Sphere = geom.Sphere

// Rect is a closed axis-aligned d-dimensional hyperrectangle.
type Rect = geom.Rect

// Item is a Sphere labelled with a caller-assigned ID, the unit stored in
// indexes and returned from queries.
type Item = geom.Item

// NewSphere returns a sphere with the given center and radius; it panics
// on a negative radius or an empty center.
func NewSphere(center []float64, radius float64) Sphere {
	return geom.NewSphere(center, radius)
}

// Point returns the degenerate sphere of radius 0 centered at p.
func Point(p []float64) Sphere { return geom.Point(p) }

// MinDist returns the minimum distance between a point of a and a point of
// b (0 if the spheres overlap).
func MinDist(a, b Sphere) float64 { return geom.MinDist(a, b) }

// MaxDist returns the maximum distance between a point of a and a point of
// b.
func MaxDist(a, b Sphere) float64 { return geom.MaxDist(a, b) }

// Overlap reports whether the two spheres share at least one point
// (tangency counts).
func Overlap(a, b Sphere) bool { return geom.Overlap(a, b) }

// Dominates reports whether sa dominates sb with respect to the query
// sphere sq, decided exactly in O(d) time by the paper's Hyperbola
// criterion.
func Dominates(sa, sb, sq Sphere) bool {
	return dominance.Hyperbola{}.Dominates(sa, sb, sq)
}

// PreparedPair is the pair-amortized form of the Hyperbola criterion: all
// work that depends only on (Sa, Sb) — the overlap test, the focal frame,
// and the quartic prefactors — is done once, and each Dominates call pays
// only two dot products plus (for fat borderline queries) the closed-form
// quartic. Verdicts are bit-identical to Dominates(sa, sb, sq).
//
// Use it when one object pair is checked against many queries: moving
// queries over fixed objects, pruning sweeps, ground-truth matrices.
//
//	pp := hyperdom.PreparePair(sa, sb)
//	for _, sq := range queries {
//	    if pp.Dominates(sq) { ... }
//	}
type PreparedPair = dominance.PreparedPair

// PreparePair factors the (Sa, Sb)-only part of the Hyperbola criterion in
// O(d) time; it panics if the spheres mix dimensionalities. The returned
// value references the centers of sa and sb — do not mutate them while the
// pair is in use.
func PreparePair(sa, sb Sphere) PreparedPair { return dominance.PreparePair(sa, sb) }

// Criterion is a decision procedure for the dominance problem. The five
// criteria of the paper's Table 1 are available through the constructors
// below; all are safe for concurrent use.
type Criterion = dominance.Criterion

// Hyperbola returns the paper's optimal criterion: correct, sound, O(d).
func Hyperbola() Criterion { return dominance.Hyperbola{} }

// MinMax returns the MinMax criterion: correct, not sound, O(d).
func MinMax() Criterion { return dominance.MinMax{} }

// MBR returns the adapted MBR criterion: correct, not sound, O(d).
func MBR() Criterion { return dominance.MBR{} }

// GP returns the adapted GP criterion: correct, not sound (optimal for
// d ≤ 2), O(d).
func GP() Criterion { return dominance.GP{} }

// Trigonometric returns the adapted Trigonometric criterion: sound, not
// correct, O(d).
func Trigonometric() Criterion { return dominance.Trigonometric{} }

// Exact returns the reference oracle: correct and sound like Hyperbola but
// implemented with an independent numeric minimiser. Intended for testing
// and validation, not for hot pruning loops.
func Exact() Criterion { return dominance.Exact{} }

// Criteria returns the five criteria of Table 1 in the paper's order.
func Criteria() []Criterion { return dominance.All() }

// CriterionByName returns the named criterion ("Hyperbola", "MinMax",
// "MBR", "GP", "Trigonometric", "Exact") or nil.
func CriterionByName(name string) Criterion { return dominance.ByName(name) }
