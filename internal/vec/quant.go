package vec

import "math"

// Quantized coarse-filter kernels (ISSUE 6). These are the narrow-type
// companions of the exact block kernels in block.go: the packed snapshot
// (package packed) stores an additional float32 copy and an int8 copy (with
// per-node scale/offset) of every child/item bound, and the kernels below
// stream one pass over such a narrow block and write a *conservative
// lower bound* on the per-entry minimum distance into dst.
//
// Contract — the reason these are sufficient prune criteria: for every
// entry i,
//
//	dst[i] is finite, dst[i] >= 0, and
//	dst[i] <= exact[i] whenever exact[i] is not NaN,
//
// where exact[i] is the value the float64 kernel (MinDistSphereBlock,
// MinDistRectBlock) computes for the same entry. A traversal may therefore
// prune on dst[i] > bound exactly when it could have pruned on the exact
// value, and must fall back to the exact block only when the narrow bound
// fails to prune. When the inputs are degenerate (NaN anywhere, overflow
// to ±Inf in the narrow type), the kernels write 0 — the bound that never
// prunes — so the exact path keeps full authority over every edge case.
// FuzzQuantizedLowerBound (package packed) locks this contract.
//
// The slack accounting: quantization replaces an exact geometry g by a
// narrow ĝ, and the builder stores, per entry, an upper bound on how far
// the quantized mindist can exceed the exact one (center displacement
// ‖ĉ−c‖ plus any radius deficit r−r̂, computed in float64 at freeze time
// from the very same dequantized values the kernels reconstruct, rounded
// up). The kernels subtract that slack, then shave a relative lbEps off
// the distance term to absorb the float64 arithmetic rounding of both the
// narrow and the exact evaluation (true relative error is below 1e-13 for
// any practical dimensionality; 1e-9 leaves three orders of margin and
// costs nothing in pruning power). Rectangles quantize with directed
// rounding — lo down, hi up — so the narrow rect contains the exact one
// and only the arithmetic shave (plus the int8 clamping deficit) is
// needed.
const lbEps = 1e-9

// qclamp maps a raw lower bound to its final form: non-positive, +Inf and
// NaN all collapse to 0, the bound that never prunes.
func qclamp(m float64) float64 {
	if m > 0 && m <= math.MaxFloat64 {
		return m
	}
	return 0
}

// dist2SeqF32 accumulates the squared distance between a packed float32
// center and the float64 query in coordinate order, widening each stored
// coordinate to float64 (exact) so the only quantization error is the one
// the stored slack accounts for. 4-way unrolled like dist2Seq.
func dist2SeqF32(c []float32, q []float64) float64 {
	var s float64
	i := 0
	for ; i+4 <= len(q); i += 4 {
		d0 := float64(c[i]) - q[i]
		s += d0 * d0
		d1 := float64(c[i+1]) - q[i+1]
		s += d1 * d1
		d2 := float64(c[i+2]) - q[i+2]
		s += d2 * d2
		d3 := float64(c[i+3]) - q[i+3]
		s += d3 * d3
	}
	for ; i < len(q); i++ {
		d := float64(c[i]) - q[i]
		s += d * d
	}
	return s
}

// dist2SeqI8 is dist2SeqF32 for the int8 tier: each stored code
// dequantizes to offset + scale·code — the exact float64 expression the
// builder used when it measured the per-entry slack, so the reconstructed
// center matches the builder's bit for bit.
func dist2SeqI8(codes []int8, scale, offset float64, q []float64) float64 {
	var s float64
	for i, qi := range q {
		d := offset + scale*float64(codes[i]) - qi
		s += d * d
	}
	return s
}

// MinDistSphereBlockF32 writes into dst[i] a conservative lower bound on
// the minimum distance between the query sphere (center q, radius qr) and
// the i-th exact sphere, computed from its float32 copy: centers holds the
// round-to-nearest float32 centers, radii the round-up float32 radii, and
// slack the per-entry quantization slack (see package comment). len(centers)
// must be len(dst)*len(q); radii and slack must have length len(dst).
func MinDistSphereBlockF32(dst []float64, centers, radii, slack []float32, q []float64, qr float64) {
	n := blockLen("MinDistSphereBlockF32", dst, len(centers), len(q))
	if len(radii) != n || len(slack) != n {
		panic(dimMismatch("MinDistSphereBlockF32", len(radii), n))
	}
	d := len(q)
	for i := 0; i < n; i++ {
		dist := math.Sqrt(dist2SeqF32(centers[i*d:(i+1)*d], q))
		dst[i] = qclamp(dist*(1-lbEps) - float64(slack[i]) - float64(radii[i]) - qr)
	}
}

// MinDistSphereBlockI8 is the int8 tier of MinDistSphereBlockF32: codes
// dequantize through the node's scale/offset, radCodes through rScale
// (radius codes are rounded up, any clamping deficit is folded into
// slack).
func MinDistSphereBlockI8(dst []float64, codes []int8, scale, offset float64, radCodes []uint8, rScale float64, slack []float32, q []float64, qr float64) {
	n := blockLen("MinDistSphereBlockI8", dst, len(codes), len(q))
	if len(radCodes) != n || len(slack) != n {
		panic(dimMismatch("MinDistSphereBlockI8", len(radCodes), n))
	}
	d := len(q)
	for i := 0; i < n; i++ {
		dist := math.Sqrt(dist2SeqI8(codes[i*d:(i+1)*d], scale, offset, q))
		dst[i] = qclamp(dist*(1-lbEps) - float64(slack[i]) - rScale*float64(radCodes[i]) - qr)
	}
}

// MinDistRectBlockF32 writes into dst[i] a conservative lower bound on the
// minimum distance between the query sphere and the i-th exact rectangle,
// computed from its directed-rounded float32 copy (lo rounded down, hi
// rounded up, so the narrow rect contains the exact one).
func MinDistRectBlockF32(dst []float64, lo, hi []float32, q []float64, qr float64) {
	n := blockLen("MinDistRectBlockF32", dst, len(lo), len(q))
	if len(hi) != len(lo) {
		panic(dimMismatch("MinDistRectBlockF32", len(hi), len(lo)))
	}
	d := len(q)
	for i := 0; i < n; i++ {
		l := lo[i*d : (i+1)*d]
		h := hi[i*d : (i+1)*d]
		var sum float64
		for j, c := range q {
			var dd float64
			if lj := float64(l[j]); c < lj {
				dd = lj - c
			} else if hj := float64(h[j]); c > hj {
				dd = c - hj
			}
			sum += dd * dd
		}
		dst[i] = qclamp(math.Sqrt(sum)*(1-lbEps) - qr)
	}
}

// MinDistRectBlockI8 is the int8 tier of MinDistRectBlockF32. Directed
// rounding of the codes keeps containment except where int8 clamping
// forced a face inward; that deficit is stored per entry in slack.
func MinDistRectBlockI8(dst []float64, loCodes, hiCodes []int8, scale, offset float64, slack []float32, q []float64, qr float64) {
	n := blockLen("MinDistRectBlockI8", dst, len(loCodes), len(q))
	if len(hiCodes) != len(loCodes) || len(slack) != n {
		panic(dimMismatch("MinDistRectBlockI8", len(hiCodes), len(loCodes)))
	}
	d := len(q)
	for i := 0; i < n; i++ {
		l := loCodes[i*d : (i+1)*d]
		h := hiCodes[i*d : (i+1)*d]
		var sum float64
		for j, c := range q {
			var dd float64
			if lj := offset + scale*float64(l[j]); c < lj {
				dd = lj - c
			} else if hj := offset + scale*float64(h[j]); c > hj {
				dd = c - hj
			}
			sum += dd * dd
		}
		dst[i] = qclamp(math.Sqrt(sum)*(1-lbEps) - float64(slack[i]) - qr)
	}
}

// Select kernels — the traversal-facing form of the bound kernels above.
// Writing a bound and comparing it against the current kth distance costs a
// square root per entry; the traversal only needs the comparison, and
//
//	dist̂·(1−lbEps) > thr,  thr = dk + slack + radius + qr
//
// holds exactly when dist̂²·(1−2·lbEps) > thr² (both sides non-negative, and
// the doubled shave absorbs the squaring's own rounding), so the kernels
// below decide in squared space — no square root — and write the indices of
// the *survivors* into sel, returning their count. A dropped entry
// certainly has exact[i] > dk: the margin the comparison clears is relative
// to the (larger) distance side, just as in the bound kernels, so the whole
// conservatism chain of the package comment carries over. Entries are
// additionally dropped mid-accumulation once a partial squared sum already
// clears the threshold — a partial sum only underestimates the full one, so
// the early exit can only keep extra survivors' work, never drop a keeper.
// NaN anywhere settles every comparison false: the entry survives and the
// exact fallback keeps authority. sel must have length >= the entry count.
//
// Domain: the squared-space comparison is sound only when every term of thr
// is non-negative — a mixed-sign sum can cancel catastrophically, leaving
// thr with absolute error far beyond any relative margin (a tiny slack
// absorbed into a large ±qr pair vanishes entirely). Callers must pass
// qr >= 0 and dk >= 0 (the traversal's quantOn and dispatch gates guarantee
// both), and the freeze-time quantizers disable negative-radius entries by
// giving them infinite slack.

// selDrop is the squared-space prune decision shared by the select kernels.
func selDrop(s, thr2 float64) bool {
	return s*(1-2*lbEps) > thr2
}

// selLen validates a select kernel's geometry: positive dimensionality, a
// whole number of entries in the block, and room in sel for every survivor.
func selLen(name string, sel []int32, blockVals, d int) int {
	if d <= 0 || blockVals%d != 0 {
		panic(dimMismatch(name, blockVals, d))
	}
	n := blockVals / d
	if len(sel) < n {
		panic(dimMismatch(name, len(sel), n))
	}
	return n
}

// SelectSphereBlockF32 streams the float32 sphere tier against the query
// and keeps the entries whose narrow bound cannot certainly exceed dk.
func SelectSphereBlockF32(sel []int32, centers, radii, slack []float32, q []float64, qr, dk float64) int {
	n := selLen("SelectSphereBlockF32", sel, len(centers), len(q))
	if len(radii) != n || len(slack) != n {
		panic(dimMismatch("SelectSphereBlockF32", len(slack), n))
	}
	d := len(q)
	cnt := 0
	for i := 0; i < n; i++ {
		thr := dk + float64(slack[i]) + float64(radii[i]) + qr
		thr2 := thr * thr
		c := centers[i*d : (i+1)*d]
		var s float64
		j := 0
		drop := false
		// Low dimensionalities run branchless to the end: the mid-chunk
		// exit saves at most one chunk of arithmetic there, and its
		// data-dependent branch mispredicts often enough to cost more than
		// it saves (measured on the d=8 bench fixture).
		for ; j+4 <= d; j += 4 {
			d0 := float64(c[j]) - q[j]
			d1 := float64(c[j+1]) - q[j+1]
			d2 := float64(c[j+2]) - q[j+2]
			d3 := float64(c[j+3]) - q[j+3]
			s += d0*d0 + d1*d1 + d2*d2 + d3*d3
			if d > 8 && selDrop(s, thr2) {
				drop = true
				break
			}
		}
		if !drop {
			for ; j < d; j++ {
				dd := float64(c[j]) - q[j]
				s += dd * dd
			}
			drop = selDrop(s, thr2)
		}
		if !drop {
			sel[cnt] = int32(i)
			cnt++
		}
	}
	return cnt
}

// SelectSphereBlockI8 is the int8 tier of SelectSphereBlockF32.
func SelectSphereBlockI8(sel []int32, codes []int8, scale, offset float64, radCodes []uint8, rScale float64, slack []float32, q []float64, qr, dk float64) int {
	n := selLen("SelectSphereBlockI8", sel, len(codes), len(q))
	if len(radCodes) != n || len(slack) != n {
		panic(dimMismatch("SelectSphereBlockI8", len(slack), n))
	}
	d := len(q)
	cnt := 0
	for i := 0; i < n; i++ {
		thr := dk + float64(slack[i]) + rScale*float64(radCodes[i]) + qr
		thr2 := thr * thr
		c := codes[i*d : (i+1)*d]
		var s float64
		j := 0
		drop := false
		for ; j+4 <= d; j += 4 {
			d0 := offset + scale*float64(c[j]) - q[j]
			d1 := offset + scale*float64(c[j+1]) - q[j+1]
			d2 := offset + scale*float64(c[j+2]) - q[j+2]
			d3 := offset + scale*float64(c[j+3]) - q[j+3]
			s += d0*d0 + d1*d1 + d2*d2 + d3*d3
			if d > 8 && selDrop(s, thr2) {
				drop = true
				break
			}
		}
		if !drop {
			for ; j < d; j++ {
				dd := offset + scale*float64(c[j]) - q[j]
				s += dd * dd
			}
			drop = selDrop(s, thr2)
		}
		if !drop {
			sel[cnt] = int32(i)
			cnt++
		}
	}
	return cnt
}

// SelectRectBlockF32 is the rectangle form: clamped squared distance to the
// directed-rounded float32 rect, decided in squared space against
// thr = dk + qr (containment needs no slack).
func SelectRectBlockF32(sel []int32, lo, hi []float32, q []float64, qr, dk float64) int {
	n := selLen("SelectRectBlockF32", sel, len(lo), len(q))
	if len(hi) != len(lo) {
		panic(dimMismatch("SelectRectBlockF32", len(hi), len(lo)))
	}
	d := len(q)
	thr := dk + qr
	thr2 := thr * thr
	cnt := 0
	for i := 0; i < n; i++ {
		l := lo[i*d : (i+1)*d]
		h := hi[i*d : (i+1)*d]
		var s float64
		drop := false
		for j, c := range q {
			var dd float64
			if lj := float64(l[j]); c < lj {
				dd = lj - c
			} else if hj := float64(h[j]); c > hj {
				dd = c - hj
			}
			s += dd * dd
			if j&3 == 3 && selDrop(s, thr2) {
				drop = true
				break
			}
		}
		if !drop && !selDrop(s, thr2) {
			sel[cnt] = int32(i)
			cnt++
		}
	}
	return cnt
}

// SelectRectBlockI8 is the int8 tier of SelectRectBlockF32; the per-entry
// clamping deficit rejoins the threshold.
func SelectRectBlockI8(sel []int32, loCodes, hiCodes []int8, scale, offset float64, slack []float32, q []float64, qr, dk float64) int {
	n := selLen("SelectRectBlockI8", sel, len(loCodes), len(q))
	if len(hiCodes) != len(loCodes) || len(slack) != n {
		panic(dimMismatch("SelectRectBlockI8", len(hiCodes), len(loCodes)))
	}
	d := len(q)
	cnt := 0
	for i := 0; i < n; i++ {
		thr := dk + float64(slack[i]) + qr
		thr2 := thr * thr
		l := loCodes[i*d : (i+1)*d]
		h := hiCodes[i*d : (i+1)*d]
		var s float64
		drop := false
		for j, c := range q {
			var dd float64
			if lj := offset + scale*float64(l[j]); c < lj {
				dd = lj - c
			} else if hj := offset + scale*float64(h[j]); c > hj {
				dd = c - hj
			}
			s += dd * dd
			if j&3 == 3 && selDrop(s, thr2) {
				drop = true
				break
			}
		}
		if !drop && !selDrop(s, thr2) {
			sel[cnt] = int32(i)
			cnt++
		}
	}
	return cnt
}

// MinDistSphereEntry computes one entry of MinDistSphereBlock —
// bit-identical, the per-survivor exact fallback of the two-phase
// traversal.
func MinDistSphereEntry(center []float64, radius float64, q []float64, qr float64) float64 {
	m := math.Sqrt(dist2Seq(center, q)) - radius - qr
	if m > 0 {
		return m
	}
	return 0
}

// MinDistRectEntry computes one entry of MinDistRectBlock — bit-identical,
// the per-survivor exact fallback of the two-phase traversal.
func MinDistRectEntry(lo, hi []float64, q []float64, qr float64) float64 {
	var sum float64
	for j, c := range q {
		var dd float64
		switch {
		case c < lo[j]:
			dd = lo[j] - c
		case c > hi[j]:
			dd = c - hi[j]
		}
		sum += dd * dd
	}
	m := math.Sqrt(sum) - qr
	if m > 0 {
		return m
	}
	return 0
}

// DistEntry computes one entry of DistBlock — bit-identical to the block
// kernel (and to Dist: the unrolled accumulation preserves coordinate
// order).
func DistEntry(center, q []float64) float64 {
	return math.Sqrt(dist2Seq(center, q))
}

// Pivot pre-filter — the cheap first test of the fused leaf select
// kernels. Freeze stores, for every leaf, a float64 pivot point (the
// centroid of its item centers) and per item the float32 round-up of
// dist(pivot, c_i) + rad_i. One exact distance dCent = dist(q, pivot) per
// visited leaf then bounds every item by the triangle inequality:
//
//	mindist_i = dist(q, c_i) − rad_i − qr ≥ dCent − pd_i − qr
//
// so most items of a leaf whose pivot sits beyond dk settle on a single
// float32 load and compare before the per-dimension narrow bound runs at
// all. The margin here is absolute, 1e-12·dCent, not the relative lbEps
// shave of the squared-space kernels: the bound is a difference of two
// potentially-large near-equal distances, so its absolute float64 error
// scales with dCent (~1e-15·dCent for the handful of operations involved)
// while the difference itself can be arbitrarily small — a margin
// proportional to dCent covers the error at every scale, where a margin
// proportional to the difference would not. A NaN pd (or dCent) fails the
// comparison and falls through to the refine, keeping the exact path
// authoritative. (The reverse-triangle test — dropping items whose whole
// band around the pivot lies inside dCent + qr + dk — was measured too:
// on the bench workload dk stays larger than a leaf's spread, so it fired
// on 4 of 10⁵ items while taxing all of them; it is deliberately absent.)
//
// The kernels run in two passes over one leaf. Pass 1 applies only the
// pivot compare and gathers the indices that survive it into sel — the
// store is unconditional and the count advances by the comparison result,
// so the ~50/50 drop/refine outcome costs no branch mispredictions. Pass 2
// walks the gathered indices and applies the narrow per-dimension bound
// (exactly SelectSphereBlock*'s decision), compacting survivors into the
// front of sel in ascending index order — the order the exact fallback
// must replay in. The refine threshold uses sr, the freeze-time float32
// round-up of slack_i + rad_i (int8 tier: slack_i + rScale·radCode_i),
// which keeps the per-item threshold to one load and one add; rounding the
// precomputed sum up only raises thr, so conservatism is preserved, and
// both addends are non-negative by the select kernel domain rules above.

// SelectLeafSphereF32 is the fused leaf select kernel for the float32
// tier. Survivor indices go into sel (room for the item count required);
// every dropped entry has exact mindist > dk. The thr terms must be
// non-negative — see the select kernel domain note above.
func SelectLeafSphereF32(sel []int32, pd, sr []float32, dCent float64, centers []float32, q []float64, qr, dk float64) int {
	n := selLen("SelectLeafSphereF32", sel, len(centers), len(q))
	if len(pd) != n || len(sr) != n {
		panic(dimMismatch("SelectLeafSphereF32", len(pd), n))
	}
	mFar := dCent - qr - dk - 1e-12*dCent
	m := 0
	for i := 0; i < n; i++ {
		sel[m] = int32(i)
		keep := 0
		if !(float64(pd[i]) < mFar) { // NaN keeps: exact path stays authoritative
			keep = 1
		}
		m += keep
	}
	dkqr := dk + qr
	d := len(q)
	cnt := 0
	for s2 := 0; s2 < m; s2++ {
		i := int(sel[s2])
		thr := dkqr + float64(sr[i])
		c := centers[i*d : i*d+d]
		var s float64
		j := 0
		for ; j+4 <= d; j += 4 {
			d0 := float64(c[j]) - q[j]
			d1 := float64(c[j+1]) - q[j+1]
			d2 := float64(c[j+2]) - q[j+2]
			d3 := float64(c[j+3]) - q[j+3]
			s += d0*d0 + d1*d1 + d2*d2 + d3*d3
		}
		for ; j < d; j++ {
			dd := float64(c[j]) - q[j]
			s += dd * dd
		}
		if !selDrop(s, thr*thr) {
			sel[cnt] = int32(i)
			cnt++
		}
	}
	return cnt
}

// SelectLeafSphereI8 is SelectLeafSphereF32 for the int8 tier. The pivot
// and sr arrays are tier-specific only in their slack content; the pivot
// distances themselves are an exact-path by-product, not quantized
// geometry. Only the refine stage dequantizes.
func SelectLeafSphereI8(sel []int32, pd, sr []float32, dCent float64, codes []int8, scale, offset float64, q []float64, qr, dk float64) int {
	n := selLen("SelectLeafSphereI8", sel, len(codes), len(q))
	if len(pd) != n || len(sr) != n {
		panic(dimMismatch("SelectLeafSphereI8", len(pd), n))
	}
	mFar := dCent - qr - dk - 1e-12*dCent
	m := 0
	for i := 0; i < n; i++ {
		sel[m] = int32(i)
		keep := 0
		if !(float64(pd[i]) < mFar) {
			keep = 1
		}
		m += keep
	}
	dkqr := dk + qr
	d := len(q)
	cnt := 0
	for s2 := 0; s2 < m; s2++ {
		i := int(sel[s2])
		thr := dkqr + float64(sr[i])
		c := codes[i*d : i*d+d]
		var s float64
		j := 0
		for ; j+4 <= d; j += 4 {
			d0 := offset + scale*float64(c[j]) - q[j]
			d1 := offset + scale*float64(c[j+1]) - q[j+1]
			d2 := offset + scale*float64(c[j+2]) - q[j+2]
			d3 := offset + scale*float64(c[j+3]) - q[j+3]
			s += d0*d0 + d1*d1 + d2*d2 + d3*d3
		}
		for ; j < d; j++ {
			dd := offset + scale*float64(c[j]) - q[j]
			s += dd * dd
		}
		if !selDrop(s, thr*thr) {
			sel[cnt] = int32(i)
			cnt++
		}
	}
	return cnt
}
