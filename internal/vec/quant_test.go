package vec

import (
	"math"
	"math/rand"
	"testing"
)

// TestEntryHelpersMatchBlocks locks the per-entry exact fallbacks to their
// block kernels bit for bit — the two-phase traversal mixes both on one
// node, so any divergence would break the packed-vs-pointer equality.
func TestEntryHelpersMatchBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 200; trial++ {
		d := 1 + rng.Intn(12)
		n := 1 + rng.Intn(9)
		centers := make([]float64, n*d)
		radii := make([]float64, n)
		lo := make([]float64, n*d)
		hi := make([]float64, n*d)
		q := make([]float64, d)
		for i := range centers {
			centers[i] = rng.NormFloat64() * 50
			lo[i] = rng.NormFloat64() * 50
			hi[i] = lo[i] + math.Abs(rng.NormFloat64()*20)
		}
		for i := range radii {
			radii[i] = math.Abs(rng.NormFloat64() * 5)
		}
		for j := range q {
			q[j] = rng.NormFloat64() * 50
		}
		if trial%7 == 0 { // non-finite poke
			centers[rng.Intn(len(centers))] = math.NaN()
			lo[rng.Intn(len(lo))] = math.Inf(-1)
		}
		qr := math.Abs(rng.NormFloat64() * 3)

		dst := make([]float64, n)
		MinDistSphereBlock(dst, centers, radii, q, qr)
		for i := 0; i < n; i++ {
			got := MinDistSphereEntry(centers[i*d:(i+1)*d], radii[i], q, qr)
			if math.Float64bits(got) != math.Float64bits(dst[i]) {
				t.Fatalf("trial %d: MinDistSphereEntry[%d] = %v, block %v", trial, i, got, dst[i])
			}
		}
		MinDistRectBlock(dst, lo, hi, q, qr)
		for i := 0; i < n; i++ {
			got := MinDistRectEntry(lo[i*d:(i+1)*d], hi[i*d:(i+1)*d], q, qr)
			if math.Float64bits(got) != math.Float64bits(dst[i]) {
				t.Fatalf("trial %d: MinDistRectEntry[%d] = %v, block %v", trial, i, got, dst[i])
			}
		}
		DistBlock(dst, centers, q)
		for i := 0; i < n; i++ {
			got := DistEntry(centers[i*d:(i+1)*d], q)
			if math.Float64bits(got) != math.Float64bits(dst[i]) {
				t.Fatalf("trial %d: DistEntry[%d] = %v, block %v", trial, i, got, dst[i])
			}
		}
	}
}

// TestQuantKernelsConservative drives the narrow kernels directly with
// exactly-representable float32 data and zero slack: the bound must then
// sit within the lbEps shave of the exact kernel, never above it — the
// kernels' own arithmetic is the only error source in this setup.
func TestQuantKernelsConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 200; trial++ {
		d := 1 + rng.Intn(10)
		n := 1 + rng.Intn(8)
		cen64 := make([]float64, n*d)
		cen32 := make([]float32, n*d)
		rad64 := make([]float64, n)
		rad32 := make([]float32, n)
		slack := make([]float32, n)
		lo64 := make([]float64, n*d)
		hi64 := make([]float64, n*d)
		lo32 := make([]float32, n*d)
		hi32 := make([]float32, n*d)
		q := make([]float64, d)
		for i := range cen64 {
			cen32[i] = float32(rng.NormFloat64() * 40)
			cen64[i] = float64(cen32[i])
			lo32[i] = float32(rng.NormFloat64() * 40)
			lo64[i] = float64(lo32[i])
			hi32[i] = lo32[i] + float32(math.Abs(rng.NormFloat64()*15))
			hi64[i] = float64(hi32[i])
		}
		for i := range rad64 {
			rad32[i] = float32(math.Abs(rng.NormFloat64() * 4))
			rad64[i] = float64(rad32[i])
		}
		for j := range q {
			q[j] = rng.NormFloat64() * 40
		}
		qr := math.Abs(rng.NormFloat64() * 2)

		exact := make([]float64, n)
		bound := make([]float64, n)
		MinDistSphereBlock(exact, cen64, rad64, q, qr)
		MinDistSphereBlockF32(bound, cen32, rad32, slack, q, qr)
		for i := range bound {
			if bound[i] > exact[i] {
				t.Fatalf("trial %d sphere f32: bound %v > exact %v", trial, bound[i], exact[i])
			}
			if exact[i] > 0 && bound[i] < exact[i]*(1-1e-6) {
				t.Fatalf("trial %d sphere f32: bound %v too loose vs exact %v", trial, bound[i], exact[i])
			}
		}
		MinDistRectBlock(exact, lo64, hi64, q, qr)
		MinDistRectBlockF32(bound, lo32, hi32, q, qr)
		for i := range bound {
			if bound[i] > exact[i] {
				t.Fatalf("trial %d rect f32: bound %v > exact %v", trial, bound[i], exact[i])
			}
			if exact[i] > 0 && bound[i] < exact[i]*(1-1e-6) {
				t.Fatalf("trial %d rect f32: bound %v too loose vs exact %v", trial, bound[i], exact[i])
			}
		}
	}
}

// TestQuantKernelClamp: degenerate narrow inputs (NaN slack, Inf radius,
// overflowed center) must produce the never-prunes bound 0, not NaN/Inf.
func TestQuantKernelClamp(t *testing.T) {
	q := []float64{1, 2}
	dst := make([]float64, 1)
	nan32 := float32(math.NaN())
	inf32 := float32(math.Inf(1))

	MinDistSphereBlockF32(dst, []float32{nan32, 0}, []float32{0}, []float32{0}, q, 0)
	if dst[0] != 0 {
		t.Fatalf("NaN center: bound %v, want 0", dst[0])
	}
	MinDistSphereBlockF32(dst, []float32{1e30, 1e30}, []float32{inf32}, []float32{0}, q, 0)
	if dst[0] != 0 {
		t.Fatalf("Inf radius: bound %v, want 0", dst[0])
	}
	MinDistSphereBlockF32(dst, []float32{100, 100}, []float32{0}, []float32{nan32}, q, 0)
	if dst[0] != 0 {
		t.Fatalf("NaN slack: bound %v, want 0", dst[0])
	}
	MinDistSphereBlockI8(dst, []int8{127, 127}, math.Inf(1), 0, []uint8{0}, 0, []float32{inf32}, q, 0)
	if dst[0] != 0 {
		t.Fatalf("Inf scale: bound %v, want 0", dst[0])
	}
	MinDistRectBlockI8(dst, []int8{-127, -127}, []int8{127, 127}, 1, 0, []float32{nan32}, q, 0)
	if dst[0] != 0 {
		t.Fatalf("NaN rect slack: bound %v, want 0", dst[0])
	}
}
