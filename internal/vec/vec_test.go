package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		want float64
	}{
		{"orthogonal", []float64{1, 0}, []float64{0, 1}, 0},
		{"parallel", []float64{1, 2, 3}, []float64{2, 4, 6}, 28},
		{"negative", []float64{-1, 1}, []float64{1, 1}, 0},
		{"single", []float64{3}, []float64{4}, 12},
		{"zero vectors", []float64{0, 0, 0}, []float64{0, 0, 0}, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Dot(tc.a, tc.b); got != tc.want {
				t.Errorf("Dot(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
			}
		})
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched lengths did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNormAndDist(t *testing.T) {
	if got := Norm([]float64{3, 4}); got != 5 {
		t.Errorf("Norm(3,4) = %v, want 5", got)
	}
	if got := Dist([]float64{1, 1}, []float64{4, 5}); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := Dist2([]float64{0, 0, 0}, []float64{1, 2, 2}); got != 9 {
		t.Errorf("Dist2 = %v, want 9", got)
	}
}

func TestDistSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(16)
		a, b := randVec(r, d), randVec(r, d)
		return math.Abs(Dist(a, b)-Dist(b, a)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(16)
		a, b, c := randVec(r, d), randVec(r, d), randVec(r, d)
		return Dist(a, c) <= Dist(a, b)+Dist(b, c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubAddScale(t *testing.T) {
	a := []float64{5, 7}
	b := []float64{2, 3}
	if got := Sub(a, b); !Equal(got, []float64{3, 4}) {
		t.Errorf("Sub = %v", got)
	}
	if got := Add(a, b); !Equal(got, []float64{7, 10}) {
		t.Errorf("Add = %v", got)
	}
	if got := Scale(2, a); !Equal(got, []float64{10, 14}) {
		t.Errorf("Scale = %v", got)
	}
	dst := make([]float64, 2)
	SubTo(dst, a, b)
	if !Equal(dst, []float64{3, 4}) {
		t.Errorf("SubTo = %v", dst)
	}
	AddTo(dst, a, b)
	if !Equal(dst, []float64{7, 10}) {
		t.Errorf("AddTo = %v", dst)
	}
	ScaleTo(dst, -1, b)
	if !Equal(dst, []float64{-2, -3}) {
		t.Errorf("ScaleTo = %v", dst)
	}
	Axpy(dst, 2, b, a)
	if !Equal(dst, []float64{9, 13}) {
		t.Errorf("Axpy = %v", dst)
	}
}

func TestSubToAliasing(t *testing.T) {
	a := []float64{5, 7}
	b := []float64{2, 3}
	SubTo(a, a, b)
	if !Equal(a, []float64{3, 4}) {
		t.Errorf("aliased SubTo = %v", a)
	}
}

func TestLerp(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{10, 20}
	if got := Lerp(a, b, 0); !Equal(got, a) {
		t.Errorf("Lerp t=0 = %v", got)
	}
	if got := Lerp(a, b, 1); !Equal(got, b) {
		t.Errorf("Lerp t=1 = %v", got)
	}
	if got := Lerp(a, b, 0.5); !Equal(got, []float64{5, 10}) {
		t.Errorf("Lerp t=.5 = %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := []float64{1, 2}
	c := Clone(a)
	c[0] = 99
	if a[0] != 1 {
		t.Error("Clone shares backing array")
	}
}

func TestEqualAndApproxEqual(t *testing.T) {
	if Equal([]float64{1}, []float64{1, 2}) {
		t.Error("Equal with different lengths")
	}
	if !Equal([]float64{1, 2}, []float64{1, 2}) {
		t.Error("Equal on identical slices is false")
	}
	if !ApproxEqual([]float64{1, 2}, []float64{1 + 1e-12, 2}, 1e-9) {
		t.Error("ApproxEqual within tolerance is false")
	}
	if ApproxEqual([]float64{1, 2}, []float64{1.1, 2}, 1e-9) {
		t.Error("ApproxEqual outside tolerance is true")
	}
	if ApproxEqual([]float64{1}, []float64{1, 2}, 1) {
		t.Error("ApproxEqual with different lengths is true")
	}
}

func TestUnit(t *testing.T) {
	u, n := Unit([]float64{3, 4})
	if n != 5 {
		t.Errorf("Unit norm = %v, want 5", n)
	}
	if !ApproxEqual(u, []float64{0.6, 0.8}, 1e-15) {
		t.Errorf("Unit = %v", u)
	}
	z, n := Unit([]float64{0, 0})
	if n != 0 || !Equal(z, []float64{0, 0}) {
		t.Errorf("Unit(0) = %v, %v", z, n)
	}
}

func TestIsFinite(t *testing.T) {
	if !IsFinite([]float64{1, -2, 0}) {
		t.Error("finite vector reported non-finite")
	}
	if IsFinite([]float64{1, math.NaN()}) {
		t.Error("NaN vector reported finite")
	}
	if IsFinite([]float64{math.Inf(1)}) {
		t.Error("Inf vector reported finite")
	}
}

func TestMean(t *testing.T) {
	pts := [][]float64{{0, 0}, {2, 4}, {4, 8}}
	if got := Mean(pts); !Equal(got, []float64{2, 4}) {
		t.Errorf("Mean = %v", got)
	}
}

func TestMeanPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mean of empty set did not panic")
		}
	}()
	Mean(nil)
}

func TestUnitNormProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randVec(r, 1+r.Intn(10))
		u, n := Unit(v)
		if n == 0 {
			return true
		}
		return math.Abs(Norm(u)-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func randVec(r *rand.Rand, d int) []float64 {
	v := make([]float64, d)
	for i := range v {
		v[i] = r.NormFloat64() * 10
	}
	return v
}
