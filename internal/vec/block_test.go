package vec

import (
	"math"
	"math/rand"
	"testing"
)

// refDist2 is the scalar reference the block kernels must match bit-for-bit.
func refDist2(a, b []float64) float64 {
	var s float64
	for i, ai := range a {
		d := ai - b[i]
		s += d * d
	}
	return s
}

func randBlock(rng *rand.Rand, n, d int) (centers, radii []float64) {
	centers = make([]float64, n*d)
	radii = make([]float64, n)
	for i := range centers {
		centers[i] = rng.NormFloat64() * 10
	}
	for i := range radii {
		radii[i] = rng.Float64() * 3
	}
	return centers, radii
}

// TestDistBlockBitIdentical checks DistBlock against the scalar Dist for
// every dimensionality the unrolling has a distinct tail for.
func TestDistBlockBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, d := range []int{1, 2, 3, 4, 5, 7, 8, 10, 13, 16} {
		for _, n := range []int{1, 2, 5, 24} {
			centers, _ := randBlock(rng, n, d)
			q := make([]float64, d)
			for i := range q {
				q[i] = rng.NormFloat64() * 10
			}
			dst := make([]float64, n)
			DistBlock(dst, centers, q)
			for i := 0; i < n; i++ {
				want := math.Sqrt(refDist2(centers[i*d:(i+1)*d], q))
				if dst[i] != want {
					t.Fatalf("d=%d n=%d entry %d: DistBlock=%v want %v", d, n, i, dst[i], want)
				}
			}
		}
	}
}

// TestMinDistSphereBlockBitIdentical locks the exact subtraction order of
// the sphere mindist kernel: sqrt(dist2) − entryRadius − queryRadius,
// clamped at 0, matching geom.MinDist(entry, query).
func TestMinDistSphereBlockBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, d := range []int{1, 2, 3, 4, 6, 8, 10} {
		n := 24
		centers, radii := randBlock(rng, n, d)
		q := make([]float64, d)
		for i := range q {
			q[i] = rng.NormFloat64() * 10
		}
		qr := rng.Float64() * 2
		dst := make([]float64, n)
		MinDistSphereBlock(dst, centers, radii, q, qr)
		for i := 0; i < n; i++ {
			want := math.Sqrt(refDist2(centers[i*d:(i+1)*d], q)) - radii[i] - qr
			if want < 0 {
				want = 0
			}
			if dst[i] != want {
				t.Fatalf("d=%d entry %d: MinDistSphereBlock=%v want %v", d, i, dst[i], want)
			}
		}
	}
}

// TestMinDistSphereBlockClamps covers the overlap case: a query sphere fat
// enough to touch every entry must yield exactly 0.
func TestMinDistSphereBlockClamps(t *testing.T) {
	centers := []float64{0, 0, 3, 4}
	radii := []float64{1, 1}
	dst := make([]float64, 2)
	MinDistSphereBlock(dst, centers, radii, []float64{0, 0}, 100)
	if dst[0] != 0 || dst[1] != 0 {
		t.Fatalf("fat query: got %v, want zeros", dst)
	}
}

// TestMinDistRectBlockBitIdentical locks the rect kernel against the scalar
// per-coordinate accumulation of geom.MinDistRectSphere.
func TestMinDistRectBlockBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, d := range []int{1, 2, 4, 5, 8, 10} {
		n := 16
		lo := make([]float64, n*d)
		hi := make([]float64, n*d)
		for i := range lo {
			a, b := rng.NormFloat64()*10, rng.NormFloat64()*10
			if a > b {
				a, b = b, a
			}
			lo[i], hi[i] = a, b
		}
		q := make([]float64, d)
		for i := range q {
			q[i] = rng.NormFloat64() * 10
		}
		qr := rng.Float64() * 2
		dst := make([]float64, n)
		MinDistRectBlock(dst, lo, hi, q, qr)
		for i := 0; i < n; i++ {
			var sum float64
			for j := 0; j < d; j++ {
				var dd float64
				switch c := q[j]; {
				case c < lo[i*d+j]:
					dd = lo[i*d+j] - c
				case c > hi[i*d+j]:
					dd = c - hi[i*d+j]
				}
				sum += dd * dd
			}
			want := math.Sqrt(sum) - qr
			if want < 0 {
				want = 0
			}
			if dst[i] != want {
				t.Fatalf("d=%d entry %d: MinDistRectBlock=%v want %v", d, i, dst[i], want)
			}
		}
	}
}

// TestBlockKernelsPanic checks the length validation of every kernel.
func TestBlockKernelsPanic(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic on mismatched lengths", name)
			}
		}()
		fn()
	}
	q := []float64{0, 0}
	expectPanic("DistBlock ragged", func() { DistBlock(make([]float64, 2), make([]float64, 5), q) })
	expectPanic("DistBlock dst", func() { DistBlock(make([]float64, 3), make([]float64, 4), q) })
	expectPanic("MinDistSphereBlock radii", func() {
		MinDistSphereBlock(make([]float64, 2), make([]float64, 4), make([]float64, 1), q, 0)
	})
	expectPanic("MinDistRectBlock hi", func() {
		MinDistRectBlock(make([]float64, 2), make([]float64, 4), make([]float64, 2), q, 0)
	})
	expectPanic("DistBlock empty q", func() { DistBlock(nil, nil, nil) })
}

// TestBlockKernelsEmpty: zero entries is a no-op, not an error.
func TestBlockKernelsEmpty(t *testing.T) {
	q := []float64{1, 2}
	DistBlock(nil, nil, q)
	MinDistSphereBlock(nil, nil, nil, q, 1)
	MinDistRectBlock(nil, nil, nil, q, 1)
}

func BenchmarkMinDistSphereBlock(b *testing.B) {
	rng := rand.New(rand.NewSource(44))
	const n, d = 24, 8
	centers, radii := randBlock(rng, n, d)
	q := make([]float64, d)
	dst := make([]float64, n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MinDistSphereBlock(dst, centers, radii, q, 1)
	}
}
