// Package vec provides small dense-vector kernels used throughout the
// hypersphere-dominance library. All functions treat a []float64 as a point
// or vector in d-dimensional Euclidean space and avoid allocation unless
// they must return a fresh slice.
package vec

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b. It panics if the lengths differ.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(dimMismatch("Dot", len(a), len(b)))
	}
	var s float64
	for i, ai := range a {
		s += ai * b[i]
	}
	return s
}

// Norm returns the Euclidean norm of a.
func Norm(a []float64) float64 {
	return math.Sqrt(Dot(a, a))
}

// Norm2 returns the squared Euclidean norm of a.
func Norm2(a []float64) float64 {
	return Dot(a, a)
}

// Dist returns the Euclidean distance between points a and b (Eq. 1 of the
// paper). It panics if the lengths differ.
func Dist(a, b []float64) float64 {
	return math.Sqrt(Dist2(a, b))
}

// Dist2 returns the squared Euclidean distance between points a and b.
func Dist2(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(dimMismatch("Dist2", len(a), len(b)))
	}
	var s float64
	for i, ai := range a {
		d := ai - b[i]
		s += d * d
	}
	return s
}

// Sub returns a−b as a new slice.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(dimMismatch("Sub", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i, ai := range a {
		out[i] = ai - b[i]
	}
	return out
}

// SubTo stores a−b into dst and returns dst. dst must have the same length
// as a and b; it may alias either operand.
func SubTo(dst, a, b []float64) []float64 {
	if len(a) != len(b) || len(dst) != len(a) {
		panic(dimMismatch("SubTo", len(a), len(b)))
	}
	for i, ai := range a {
		dst[i] = ai - b[i]
	}
	return dst
}

// Add returns a+b as a new slice.
func Add(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(dimMismatch("Add", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i, ai := range a {
		out[i] = ai + b[i]
	}
	return out
}

// AddTo stores a+b into dst and returns dst.
func AddTo(dst, a, b []float64) []float64 {
	if len(a) != len(b) || len(dst) != len(a) {
		panic(dimMismatch("AddTo", len(a), len(b)))
	}
	for i, ai := range a {
		dst[i] = ai + b[i]
	}
	return dst
}

// Scale returns s·a as a new slice.
func Scale(s float64, a []float64) []float64 {
	out := make([]float64, len(a))
	for i, ai := range a {
		out[i] = s * ai
	}
	return out
}

// ScaleTo stores s·a into dst and returns dst.
func ScaleTo(dst []float64, s float64, a []float64) []float64 {
	if len(dst) != len(a) {
		panic(dimMismatch("ScaleTo", len(dst), len(a)))
	}
	for i, ai := range a {
		dst[i] = s * ai
	}
	return dst
}

// Axpy stores y + s·x into dst and returns dst (dst may alias x or y).
func Axpy(dst []float64, s float64, x, y []float64) []float64 {
	if len(x) != len(y) || len(dst) != len(x) {
		panic(dimMismatch("Axpy", len(x), len(y)))
	}
	for i, xi := range x {
		dst[i] = y[i] + s*xi
	}
	return dst
}

// Lerp returns (1−t)·a + t·b as a new slice.
func Lerp(a, b []float64, t float64) []float64 {
	if len(a) != len(b) {
		panic(dimMismatch("Lerp", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i, ai := range a {
		out[i] = ai + t*(b[i]-ai)
	}
	return out
}

// Clone returns a copy of a.
func Clone(a []float64) []float64 {
	out := make([]float64, len(a))
	copy(out, a)
	return out
}

// Equal reports whether a and b have the same length and identical elements.
func Equal(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, ai := range a {
		if ai != b[i] {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether a and b agree element-wise within tol
// (absolute).
func ApproxEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, ai := range a {
		if math.Abs(ai-b[i]) > tol {
			return false
		}
	}
	return true
}

// Unit returns a/‖a‖ as a new slice, and the norm. If a is the zero vector
// it returns a copy of a and 0.
func Unit(a []float64) ([]float64, float64) {
	n := Norm(a)
	if n == 0 {
		return Clone(a), 0
	}
	return Scale(1/n, a), n
}

// IsFinite reports whether every element of a is finite (no NaN/±Inf).
func IsFinite(a []float64) bool {
	for _, ai := range a {
		if math.IsNaN(ai) || math.IsInf(ai, 0) {
			return false
		}
	}
	return true
}

// Mean returns the component-wise mean of the points in pts. It panics if
// pts is empty or the points have differing dimensionalities.
func Mean(pts [][]float64) []float64 {
	if len(pts) == 0 {
		panic("vec: Mean of empty point set")
	}
	d := len(pts[0])
	out := make([]float64, d)
	for _, p := range pts {
		if len(p) != d {
			panic(dimMismatch("Mean", d, len(p)))
		}
		for i, pi := range p {
			out[i] += pi
		}
	}
	inv := 1 / float64(len(pts))
	for i := range out {
		out[i] *= inv
	}
	return out
}

func dimMismatch(op string, a, b int) string {
	return fmt.Sprintf("vec: %s dimension mismatch: %d vs %d", op, a, b)
}
