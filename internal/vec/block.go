package vec

import "math"

// Packed-block kernels (ISSUE 5). A "block" is the SoA layout of the frozen
// tree representation (package packed): the centers of entries 0..n-1 stored
// back-to-back in one contiguous []float64 — entry i occupies
// centers[i*d : (i+1)*d] — with radii (or rectangle bounds) in parallel
// slices. The kernels below stream one pass over such a block and write the
// per-entry result into a caller-owned scratch slice, so a traversal's
// mindist loop touches only sequential memory and allocates nothing.
//
// Bit-exactness contract: every kernel accumulates the squared distance in
// strict coordinate order — the inner loops are 4-way unrolled for loop
// overhead, but each term is added to a single accumulator in the same
// order the scalar Dist2 uses, so the results are bit-identical to the
// pointer-walking geom.MinDist / geom.MinDistRectSphere path. The frozen
// and pointer traversals therefore take exactly the same branches; the
// differential tests in package knn and FuzzPackedMinDist rely on this.

// dist2Seq returns the squared distance between c and q accumulated in
// coordinate order, 4-way unrolled. c and q must have equal length (the
// block kernels check once per block, not per entry).
func dist2Seq(c, q []float64) float64 {
	var s float64
	i := 0
	for ; i+4 <= len(q); i += 4 {
		d0 := c[i] - q[i]
		s += d0 * d0
		d1 := c[i+1] - q[i+1]
		s += d1 * d1
		d2 := c[i+2] - q[i+2]
		s += d2 * d2
		d3 := c[i+3] - q[i+3]
		s += d3 * d3
	}
	for ; i < len(q); i++ {
		d := c[i] - q[i]
		s += d * d
	}
	return s
}

// blockLen validates a block against its entry count and dimensionality and
// returns n, the number of entries.
func blockLen(name string, dst []float64, blockFloats, d int) int {
	if d <= 0 {
		panic(dimMismatch(name, blockFloats, d))
	}
	if blockFloats%d != 0 {
		panic(dimMismatch(name, blockFloats, d))
	}
	n := blockFloats / d
	if len(dst) != n {
		panic(dimMismatch(name, len(dst), n))
	}
	return n
}

// DistBlock writes into dst[i] the Euclidean distance between q and the
// i-th packed center, for every entry of the block. len(centers) must be
// len(dst)*len(q). Bit-identical to Dist applied per entry.
func DistBlock(dst, centers []float64, q []float64) {
	n := blockLen("DistBlock", dst, len(centers), len(q))
	d := len(q)
	for i := 0; i < n; i++ {
		dst[i] = math.Sqrt(dist2Seq(centers[i*d:(i+1)*d], q))
	}
}

// MinDistSphereBlock writes into dst[i] the minimum distance between the
// query sphere (center q, radius qr) and the i-th packed sphere (center
// block + radii[i]): max(0, Dist − radii[i] − qr), subtracting in exactly
// that order — bit-identical to geom.MinDist(entry, query) per entry.
func MinDistSphereBlock(dst, centers, radii []float64, q []float64, qr float64) {
	n := blockLen("MinDistSphereBlock", dst, len(centers), len(q))
	if len(radii) != n {
		panic(dimMismatch("MinDistSphereBlock", len(radii), n))
	}
	d := len(q)
	for i := 0; i < n; i++ {
		m := math.Sqrt(dist2Seq(centers[i*d:(i+1)*d], q)) - radii[i] - qr
		if m > 0 {
			dst[i] = m
		} else {
			dst[i] = 0
		}
	}
}

// MinDistRectBlock writes into dst[i] the minimum distance between the
// query sphere (center q, radius qr) and the i-th packed rectangle
// [lo[i*d:], hi[i*d:]]: max(0, pointDist(rect, q) − qr). Bit-identical to
// geom.MinDistRectSphere per entry, including the per-coordinate
// accumulation order.
func MinDistRectBlock(dst, lo, hi []float64, q []float64, qr float64) {
	n := blockLen("MinDistRectBlock", dst, len(lo), len(q))
	if len(hi) != len(lo) {
		panic(dimMismatch("MinDistRectBlock", len(hi), len(lo)))
	}
	d := len(q)
	for i := 0; i < n; i++ {
		l := lo[i*d : (i+1)*d]
		h := hi[i*d : (i+1)*d]
		var sum float64
		for j, c := range q {
			var dd float64
			switch {
			case c < l[j]:
				dd = l[j] - c
			case c > h[j]:
				dd = c - h[j]
			}
			sum += dd * dd
		}
		m := math.Sqrt(sum) - qr
		if m > 0 {
			dst[i] = m
		} else {
			dst[i] = 0
		}
	}
}
