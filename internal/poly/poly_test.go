package poly

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEval(t *testing.T) {
	// 2x³ − 3x + 1 at x = 2 → 16 − 6 + 1 = 11
	if got := Eval([]float64{2, 0, -3, 1}, 2); got != 11 {
		t.Errorf("Eval = %v, want 11", got)
	}
	if got := Eval([]float64{5}, 100); got != 5 {
		t.Errorf("Eval constant = %v, want 5", got)
	}
}

func TestEvalDeriv(t *testing.T) {
	// d/dx (2x³ − 3x + 1) = 6x² − 3, at x = 2 → 21
	if got := EvalDeriv([]float64{2, 0, -3, 1}, 2); got != 21 {
		t.Errorf("EvalDeriv = %v, want 21", got)
	}
}

func TestLinear(t *testing.T) {
	if got := Linear(2, -4); len(got) != 1 || got[0] != 2 {
		t.Errorf("Linear = %v, want [2]", got)
	}
	if got := Linear(0, 1); got != nil {
		t.Errorf("Linear degenerate = %v, want nil", got)
	}
}

func TestQuadratic(t *testing.T) {
	tests := []struct {
		name    string
		a, b, c float64
		want    []float64
	}{
		{"two roots", 1, -5, 6, []float64{2, 3}},
		{"double root", 1, -4, 4, []float64{2}},
		{"no real roots", 1, 0, 1, nil},
		{"degenerate to linear", 0, 2, -6, []float64{3}},
		{"negative leading", -1, 0, 4, []float64{-2, 2}},
		{"cancellation-prone", 1, -1e8, 1, []float64{1e-8, 1e8}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := Quadratic(tc.a, tc.b, tc.c)
			assertRoots(t, got, tc.want, 1e-6)
		})
	}
}

func TestCubic(t *testing.T) {
	tests := []struct {
		name       string
		a, b, c, d float64
		want       []float64
	}{
		{"three roots", 1, -6, 11, -6, []float64{1, 2, 3}},
		{"one root", 1, 0, 0, -8, []float64{2}},
		{"triple root", 1, -3, 3, -1, []float64{1}},
		{"double+single", 1, -4, 5, -2, []float64{1, 2}}, // (x−1)²(x−2)
		{"degenerate to quadratic", 0, 1, -5, 6, []float64{2, 3}},
		{"root at zero", 1, 0, -4, 0, []float64{-2, 0, 2}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := Cubic(tc.a, tc.b, tc.c, tc.d)
			assertRoots(t, got, tc.want, 1e-6)
		})
	}
}

func TestQuartic(t *testing.T) {
	tests := []struct {
		name          string
		a, b, c, d, e float64
		want          []float64
	}{
		{"four roots", 1, -10, 35, -50, 24, []float64{1, 2, 3, 4}},
		{"biquadratic", 1, 0, -5, 0, 4, []float64{-2, -1, 1, 2}},
		{"no real roots", 1, 0, 0, 0, 1, nil},
		{"two real roots", 1, 0, 0, 0, -1, []float64{-1, 1}},
		{"quadruple root", 1, -4, 6, -4, 1, []float64{1}},
		{"degenerate to cubic", 0, 1, -6, 11, -6, []float64{1, 2, 3}},
		{"double pair", 1, -6, 13, -12, 4, []float64{1, 2}}, // (x−1)²(x−2)²
		{"mixed scale", 1, 0, -10001, 0, 10000, []float64{-100, -1, 1, 100}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := Quartic(tc.a, tc.b, tc.c, tc.d, tc.e)
			assertRoots(t, got, tc.want, 1e-5)
		})
	}
}

// Property: reconstruct a quartic from random roots; the solver must return
// all of them with small residual.
func TestQuarticFromRandomRootsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		roots := []float64{
			r.NormFloat64() * 10,
			r.NormFloat64() * 10,
			r.NormFloat64() * 10,
			r.NormFloat64() * 10,
		}
		sort.Float64s(roots)
		// Expand (x−r1)(x−r2)(x−r3)(x−r4).
		c := []float64{1}
		for _, root := range roots {
			c = mulLinear(c, root)
		}
		got := Quartic(c[0], c[1], c[2], c[3], c[4])
		// Every true root must be matched by some returned root.
		for _, want := range roots {
			matched := false
			for _, g := range got {
				if math.Abs(g-want) < 1e-4*(1+math.Abs(want)) {
					matched = true
					break
				}
			}
			if !matched {
				t.Logf("seed %d: roots %v, got %v", seed, roots, got)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: every root returned by the solver has a small polynomial
// residual relative to the coefficient scale.
func TestQuarticResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := []float64{
			r.NormFloat64(), r.NormFloat64() * 10, r.NormFloat64() * 100,
			r.NormFloat64() * 10, r.NormFloat64(),
		}
		scale := 0.0
		for _, ci := range c {
			scale += math.Abs(ci)
		}
		if scale == 0 {
			return true
		}
		for _, root := range Quartic(c[0], c[1], c[2], c[3], c[4]) {
			m := math.Abs(root)
			res := math.Abs(Eval(c, root))
			if res > 1e-6*scale*(1+m*m*m*m) {
				t.Logf("seed %d: coefs %v root %v residual %v", seed, c, root, res)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: cubic always returns at least one real root.
func TestCubicAlwaysHasRootProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := r.NormFloat64()
		if a == 0 {
			a = 1
		}
		got := Cubic(a, r.NormFloat64()*10, r.NormFloat64()*10, r.NormFloat64()*10)
		return len(got) >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestScanRootsFallback(t *testing.T) {
	// (x−1)(x+1)(x−3)(x+3) = x⁴ −10x² + 9
	got := scanRoots([]float64{1, 0, -10, 0, 9})
	assertRoots(t, got, []float64{-3, -1, 1, 3}, 1e-6)
}

func assertRoots(t *testing.T, got, want []float64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got roots %v, want %v", got, want)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > tol*(1+math.Abs(want[i])) {
			t.Errorf("root %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// mulLinear multiplies polynomial c (leading first) by (x − root).
func mulLinear(c []float64, root float64) []float64 {
	out := make([]float64, len(c)+1)
	for i, ci := range c {
		out[i] += ci
		out[i+1] -= ci * root
	}
	return out
}
