package poly

import "math"

// This file holds the allocation-free solver cores. The hypersphere
// dominance operator solves one quartic per call on its hot path, so the
// closed-form machinery works in fixed-size arrays; the slice-returning
// exported functions are thin wrappers. Heap allocation only happens on the
// rare ill-conditioned fallback through scanRoots.

// quad2 returns the real roots of a·x² + b·x + c = 0 in ascending order
// without allocating. Degrades to linear when a is negligible.
func quad2(a, b, c float64) ([2]float64, int) {
	var out [2]float64
	if degenerate(a, b, c) {
		if b == 0 {
			return out, 0
		}
		out[0] = -c / b
		return out, 1
	}
	disc := b*b - 4*a*c
	if disc < 0 {
		return out, 0
	}
	if disc == 0 {
		out[0] = -b / (2 * a)
		return out, 1
	}
	q := -0.5 * (b + math.Copysign(math.Sqrt(disc), b))
	r1 := q / a
	r2 := c / q
	if r1 > r2 {
		r1, r2 = r2, r1
	}
	out[0], out[1] = r1, r2
	return out, 2
}

// cubic3 returns the real roots of a·x³ + b·x² + c·x + d = 0 in ascending
// order without allocating on the common path.
func cubic3(a, b, c, d float64) ([3]float64, int) {
	var out [3]float64
	if degenerate(a, b, c, d) {
		r2, n := quad2(b, c, d)
		copy(out[:], r2[:n])
		return out, n
	}
	B, C, D := b/a, c/a, d/a
	sh := B / 3
	p := C - B*B/3
	q := 2*B*B*B/27 - B*C/3 + D

	n := 0
	half := q / 2
	third := p / 3
	disc := half*half + third*third*third
	switch {
	case disc > 0:
		s := math.Sqrt(disc)
		u := math.Cbrt(-half + s)
		v := math.Cbrt(-half - s)
		out[0] = u + v - sh
		n = 1
	case disc == 0:
		if q == 0 {
			out[0] = -sh
			n = 1
		} else {
			u := math.Cbrt(-half)
			out[0], out[1] = 2*u-sh, -u-sh
			n = 2
		}
	default:
		r := math.Sqrt(-third * third * third)
		cosphi := clamp(-half/r, -1, 1)
		phi := math.Acos(cosphi)
		m := 2 * math.Sqrt(-third)
		out[0] = m*math.Cos(phi/3) - sh
		out[1] = m*math.Cos((phi+2*math.Pi)/3) - sh
		out[2] = m*math.Cos((phi+4*math.Pi)/3) - sh
		n = 3
	}
	coef := [4]float64{a, b, c, d}
	kept := 0
	dropped := false
	for i := 0; i < n; i++ {
		x := polish(coef[:], out[i])
		if residualOK(coef[:], x) {
			out[kept] = x
			kept++
		} else {
			dropped = true
		}
	}
	if dropped {
		// Rare: recover through the provably-complete splitting fallback.
		rs := scanRoots([]float64{a, b, c, d})
		var arr [3]float64
		m := copy(arr[:], rs)
		return arr, m
	}
	return sortDedup3(out, kept)
}

// Quartic4 returns the real roots of a·x⁴ + b·x³ + c·x² + d·x + e = 0 in
// ascending order without heap allocation on the common path — the solver
// the Hyperbola criterion uses per dominance query.
func Quartic4(a, b, c, d, e float64) ([4]float64, int) {
	var out [4]float64
	if degenerate(a, b, c, d, e) {
		r3, n := cubic3(b, c, d, e)
		copy(out[:], r3[:n])
		return out, n
	}
	B, C, D, E := b/a, c/a, d/a, e/a
	sh := B / 4
	B2 := B * B
	p := C - 3*B2/8
	q := D - B*C/2 + B2*B/8
	r := E - B*D/4 + B2*C/16 - 3*B2*B2/256

	var troots [4]float64
	nt := 0
	if math.Abs(q) < eps*(1+math.Abs(p)+math.Abs(r)) {
		ys, ny := quad2(1, p, r)
		for i := 0; i < ny; i++ {
			y := ys[i]
			if y > 0 {
				s := math.Sqrt(y)
				troots[nt], troots[nt+1] = -s, s
				nt += 2
			} else if y == 0 && nt < 4 {
				troots[nt] = 0
				nt++
			}
		}
	} else {
		res, nres := cubic3(1, -p, -4*r, 4*p*r-q*q)
		if nres == 0 {
			return fallback4(a, b, c, d, e)
		}
		y := res[0]
		for i := 1; i < nres; i++ {
			if res[i]-p > y-p {
				y = res[i]
			}
		}
		w2 := y - p
		if w2 < 0 {
			if w2 > -1e-9*(1+math.Abs(p)) {
				w2 = 0
			} else {
				return fallback4(a, b, c, d, e)
			}
		}
		w := math.Sqrt(w2)
		var u, v float64
		if w == 0 {
			h2 := y*y/4 - r
			if h2 < 0 {
				h2 = 0
			}
			h := math.Sqrt(h2)
			u, v = y/2+h, y/2-h
		} else {
			u = y/2 - q/(2*w)
			v = y/2 + q/(2*w)
		}
		r1, n1 := quad2(1, w, u)
		for i := 0; i < n1; i++ {
			troots[nt] = r1[i]
			nt++
		}
		r2, n2 := quad2(1, -w, v)
		for i := 0; i < n2; i++ {
			troots[nt] = r2[i]
			nt++
		}
	}
	if nt == 0 {
		// Either genuinely rootless or Ferrari lost the roots; settle it
		// with the complete fallback.
		return fallback4(a, b, c, d, e)
	}
	coef := [5]float64{a, b, c, d, e}
	kept := 0
	dropped := false
	for i := 0; i < nt; i++ {
		x := polish(coef[:], troots[i]-sh)
		if residualOK(coef[:], x) {
			out[kept] = x
			kept++
		} else {
			dropped = true
		}
	}
	if dropped {
		return fallback4(a, b, c, d, e)
	}
	return sortDedup4(out, kept)
}

// fallback4 routes through the slow, provably-complete splitting solver.
func fallback4(a, b, c, d, e float64) ([4]float64, int) {
	var out [4]float64
	rs := scanRoots([]float64{a, b, c, d, e})
	n := copy(out[:], rs)
	return out, n
}

func sortDedup3(r [3]float64, n int) ([3]float64, int) {
	insertionSort(r[:n])
	m := dedupInPlace(r[:n])
	return r, m
}

func sortDedup4(r [4]float64, n int) ([4]float64, int) {
	insertionSort(r[:n])
	m := dedupInPlace(r[:n])
	return r, m
}

func insertionSort(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// dedupInPlace merges sorted near-duplicates and returns the new length.
func dedupInPlace(xs []float64) int {
	if len(xs) == 0 {
		return 0
	}
	m := 1
	for _, x := range xs[1:] {
		last := xs[m-1]
		if x-last > 1e-7*(1+math.Abs(x)+math.Abs(last)) {
			xs[m] = x
			m++
		}
	}
	return m
}
