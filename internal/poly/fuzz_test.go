package poly

import (
	"math"
	"testing"
)

// FuzzQuartic drives the solver with arbitrary coefficients: it must never
// panic, every returned root must have a small residual relative to the
// coefficient majorant, roots must come back sorted, and the slice and
// array entry points must agree.
func FuzzQuartic(f *testing.F) {
	f.Add(1.0, -10.0, 35.0, -50.0, 24.0)
	f.Add(0.0, 1.0, -6.0, 11.0, -6.0)
	f.Add(1.0, 0.0, 0.0, 0.0, 1.0)
	f.Add(-2.334134318587408e-06, -0.0022339859592858656, -0.6125581218717506, 0.09412998341831239, 4.190641305599159)
	f.Add(1e-300, 1.0, 1.0, 1.0, 1.0)
	f.Fuzz(func(t *testing.T, a, b, c, d, e float64) {
		for _, v := range []float64{a, b, c, d, e} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				t.Skip()
			}
		}
		coef := []float64{a, b, c, d, e}
		roots := Quartic(a, b, c, d, e)
		arr, n := Quartic4(a, b, c, d, e)
		if n != len(roots) {
			t.Fatalf("Quartic returned %d roots, Quartic4 %d", len(roots), n)
		}
		for i, r := range roots {
			if math.IsNaN(r) || math.IsInf(r, 0) {
				t.Fatalf("non-finite root %v", r)
			}
			if r != arr[i] {
				t.Fatalf("root %d differs between entry points: %v vs %v", i, r, arr[i])
			}
			if i > 0 && roots[i-1] > r {
				t.Fatalf("roots not sorted: %v", roots)
			}
			if !residualOK(coef, r) {
				t.Fatalf("root %v has residual %v (majorant %v)", r, math.Abs(Eval(coef, r)), majorant(coef, r))
			}
		}
	})
}

// FuzzCubicHasRoot: every genuine cubic has at least one real root.
func FuzzCubicHasRoot(f *testing.F) {
	f.Add(1.0, 0.0, 0.0, -8.0)
	f.Add(3.0, -1.0, 2.0, 5.0)
	f.Fuzz(func(t *testing.T, a, b, c, d float64) {
		for _, v := range []float64{a, b, c, d} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				t.Skip()
			}
		}
		// Only exercise genuine cubics: a clearly dominant leading term.
		m := math.Max(math.Abs(b), math.Max(math.Abs(c), math.Abs(d)))
		if math.Abs(a) < 1e-6*(1+m) {
			t.Skip()
		}
		if roots := Cubic(a, b, c, d); len(roots) == 0 {
			t.Fatalf("cubic %v %v %v %v returned no real roots", a, b, c, d)
		}
	})
}
