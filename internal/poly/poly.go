// Package poly provides closed-form real-root solvers for polynomials of
// degree ≤ 4. The quartic solver is the O(1) primitive that Algorithm
// Hyperbola (Section 4.3.2 of the paper) relies on to stay O(d) overall:
// Eq. (14) reduces the Lagrange conditions of the minimum-distance problem
// to a single quartic in the multiplier λ.
//
// All solvers return only real roots, deduplicated, in ascending order, and
// polish each root with a few Newton iterations against the original
// polynomial so that downstream geometric residuals stay small.
package poly

import (
	"math"
	"sort"
)

// eps is the relative tolerance used to decide that a leading coefficient
// has effectively vanished and the degree should be lowered.
const eps = 1e-12

// Eval evaluates the polynomial with coefficients c (c[0] is the leading
// coefficient) at x using Horner's rule.
func Eval(c []float64, x float64) float64 {
	var v float64
	for _, ci := range c {
		v = v*x + ci
	}
	return v
}

// EvalDeriv evaluates the derivative of the polynomial with coefficients c
// (c[0] leading) at x.
func EvalDeriv(c []float64, x float64) float64 {
	n := len(c) - 1
	var v float64
	for i, ci := range c[:n] {
		v = v*x + float64(n-i)*ci
	}
	return v
}

// Linear returns the real roots of a·x + b = 0.
func Linear(a, b float64) []float64 {
	if a == 0 {
		return nil
	}
	return []float64{-b / a}
}

// Quadratic returns the real roots of a·x² + b·x + c = 0 in ascending
// order. A double root is returned once. If a is (relatively) zero the
// equation degrades to linear.
func Quadratic(a, b, c float64) []float64 {
	if degenerate(a, b, c) {
		return Linear(b, c)
	}
	disc := b*b - 4*a*c
	if disc < 0 {
		return nil
	}
	if disc == 0 {
		return []float64{-b / (2 * a)}
	}
	// Numerically stable form: avoid cancellation between -b and ±sqrt.
	q := -0.5 * (b + math.Copysign(math.Sqrt(disc), b))
	r1 := q / a
	r2 := c / q
	if r1 > r2 {
		r1, r2 = r2, r1
	}
	return []float64{r1, r2}
}

// Cubic returns the real roots of a·x³ + b·x² + c·x + d = 0 in ascending
// order, using the trigonometric/Cardano method. If a is (relatively) zero
// the equation degrades to quadratic.
func Cubic(a, b, c, d float64) []float64 {
	r, n := cubic3(a, b, c, d)
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	copy(out, r[:n])
	return out
}

// Quartic returns the real roots of a·x⁴ + b·x³ + c·x² + d·x + e = 0 in
// ascending order, via Ferrari's method with a Cardano resolvent cubic.
// If a is (relatively) zero the equation degrades to cubic. Quartic4 is the
// allocation-free variant used on hot paths.
func Quartic(a, b, c, d, e float64) []float64 {
	r, n := Quartic4(a, b, c, d, e)
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	copy(out, r[:n])
	return out
}

// residualOK reports whether x is, within floating-point backward error, a
// root of the polynomial c. The primary test is relative to the term
// majorant; the secondary test handles the degenerate neighbourhood of
// x ≈ 0 with a vanishing constant term, where the majorant itself goes to
// zero and any ratio test breaks down.
func residualOK(c []float64, x float64) bool {
	res := math.Abs(Eval(c, x))
	if res <= 2e-7*majorant(c, x) {
		return true
	}
	var mc float64
	for _, ci := range c {
		if a := math.Abs(ci); a > mc {
			mc = a
		}
	}
	scale := mc
	if ax := math.Abs(x); ax > 1 {
		for i := 1; i < len(c); i++ {
			scale *= ax
		}
	}
	return res <= 1e-9*scale
}

// majorant returns Σ|c_i|·|x|^(n−i), an upper bound on the magnitude the
// polynomial's terms can reach at x; residuals are judged relative to it.
func majorant(c []float64, x float64) float64 {
	ax := math.Abs(x)
	var m float64
	for _, ci := range c {
		m = m*ax + math.Abs(ci)
	}
	if m < 1e-300 {
		m = 1e-300
	}
	return m
}

// polish refines root x of the polynomial with coefficients c (c[0]
// leading) with up to 8 damped Newton iterations. It returns the refined
// root, or x unchanged if Newton does not improve the residual.
func polish(c []float64, x float64) float64 {
	best := x
	bestRes := math.Abs(Eval(c, x))
	cur := x
	for i := 0; i < 8; i++ {
		f := Eval(c, cur)
		df := EvalDeriv(c, cur)
		if df == 0 || math.IsNaN(f) || math.IsInf(f, 0) {
			break
		}
		next := cur - f/df
		res := math.Abs(Eval(c, next))
		if math.IsNaN(next) || math.IsInf(next, 0) {
			break
		}
		if res < bestRes {
			best, bestRes = next, res
		}
		if next == cur {
			break
		}
		cur = next
	}
	return best
}

// scanRoots is a slow, provably-complete fallback used when the closed-form
// path misbehaves on ill-conditioned coefficients. Real roots of a
// polynomial are separated by the real roots of its derivative, so the
// derivative's roots (degree ≤ 3, found recursively in closed form) split
// the real line into intervals on which the polynomial is monotone; each
// interval whose endpoint values change sign is bisected.
func scanRoots(c []float64) []float64 {
	// Strip a negligible leading coefficient so the derivative split works
	// on the true degree.
	for len(c) > 1 && degenerate(c...) {
		c = c[1:]
	}
	n := len(c) - 1
	switch n {
	case 0:
		return nil
	case 1:
		return Linear(c[0], c[1])
	case 2:
		return Quadratic(c[0], c[1], c[2])
	}

	// Critical points of the polynomial = roots of the derivative.
	dc := make([]float64, n)
	for i := 0; i < n; i++ {
		dc[i] = float64(n-i) * c[i]
	}
	var crits []float64
	switch n {
	case 3:
		crits = Quadratic(dc[0], dc[1], dc[2])
	case 4:
		crits = Cubic(dc[0], dc[1], dc[2], dc[3])
	default:
		crits = scanRoots(dc)
	}

	// Cauchy bound on root magnitude.
	lead := math.Abs(c[0])
	bound := 1.0
	for _, ci := range c[1:] {
		if m := math.Abs(ci)/lead + 1; m > bound {
			bound = m
		}
	}
	pts := make([]float64, 0, len(crits)+2)
	pts = append(pts, -bound)
	for _, cr := range crits {
		if cr > -bound && cr < bound {
			pts = append(pts, cr)
		}
	}
	pts = append(pts, bound)
	sort.Float64s(pts)

	var roots []float64
	for i := 0; i+1 < len(pts); i++ {
		lo, hi := pts[i], pts[i+1]
		flo, fhi := Eval(c, lo), Eval(c, hi)
		switch {
		case flo == 0:
			roots = append(roots, lo)
		case flo*fhi < 0:
			roots = append(roots, bisect(c, lo, hi))
		}
	}
	if f := Eval(c, pts[len(pts)-1]); f == 0 {
		roots = append(roots, pts[len(pts)-1])
	}
	// A repeated root touches zero at a critical point without a sign
	// change; pick those up by residual.
	for _, cr := range crits {
		if math.Abs(Eval(c, cr)) <= 1e-9*majorant(c, cr) {
			roots = append(roots, cr)
		}
	}
	for i, r := range roots {
		roots[i] = polish(c, r)
	}
	return dedupSort(roots)
}

func bisect(c []float64, lo, hi float64) float64 {
	flo := Eval(c, lo)
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		fm := Eval(c, mid)
		if fm == 0 || hi-lo < 1e-15*(math.Abs(lo)+math.Abs(hi)+1) {
			return mid
		}
		if flo*fm < 0 {
			hi = mid
		} else {
			lo, flo = mid, fm
		}
	}
	return (lo + hi) / 2
}

// degenerate reports whether the leading coefficient c[0] is negligible
// relative to the remaining coefficients.
func degenerate(c ...float64) bool {
	lead := math.Abs(c[0])
	if lead == 0 {
		return true
	}
	var m float64
	for _, ci := range c[1:] {
		if a := math.Abs(ci); a > m {
			m = a
		}
	}
	return lead < eps*m
}

func dedupSort(roots []float64) []float64 {
	if len(roots) == 0 {
		return roots
	}
	sort.Float64s(roots)
	out := roots[:1]
	for _, r := range roots[1:] {
		last := out[len(out)-1]
		if r-last > 1e-7*(1+math.Abs(r)+math.Abs(last)) {
			out = append(out, r)
		}
	}
	return out
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
