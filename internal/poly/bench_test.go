package poly

import (
	"math/rand"
	"testing"
)

// BenchmarkQuartic4 measures the allocation-free quartic core on
// well-conditioned random coefficients — the dominance operator's hot path.
func BenchmarkQuartic4(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	coefs := make([][5]float64, 512)
	for i := range coefs {
		for j := range coefs[i] {
			coefs[i][j] = rng.NormFloat64()
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := coefs[i%len(coefs)]
		Quartic4(c[0], c[1], c[2], c[3], c[4])
	}
}

// BenchmarkQuarticFromRoots measures the solver on quartics built from
// known real roots (always four real solutions — the worst case for
// Ferrari's factorisation work).
func BenchmarkQuarticFromRoots(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	coefs := make([][5]float64, 512)
	for i := range coefs {
		c := []float64{1}
		for k := 0; k < 4; k++ {
			root := rng.NormFloat64() * 5
			next := make([]float64, len(c)+1)
			for j, cj := range c {
				next[j] += cj
				next[j+1] -= cj * root
			}
			c = next
		}
		copy(coefs[i][:], c)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := coefs[i%len(coefs)]
		Quartic4(c[0], c[1], c[2], c[3], c[4])
	}
}

// BenchmarkCubic3 measures the cubic core.
func BenchmarkCubic3(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	coefs := make([][4]float64, 512)
	for i := range coefs {
		for j := range coefs[i] {
			coefs[i][j] = rng.NormFloat64()
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := coefs[i%len(coefs)]
		cubic3(c[0], c[1], c[2], c[3])
	}
}
