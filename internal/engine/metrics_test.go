package engine

import (
	"math/rand"
	"testing"

	"hyperdom/internal/geom"
	"hyperdom/internal/knn"
	"hyperdom/internal/obs"
	"hyperdom/internal/sstree"
)

// TestQueueSaturationGauges pins the live-pool callback gauges (ISSUE 9):
// New registers a pool's bounded-queue capacity, Close removes it, and the
// gauges read through obs.GaugeValue at any moment.
func TestQueueSaturationGauges(t *testing.T) {
	gauge := func(name string) float64 {
		t.Helper()
		v, ok := obs.GaugeValue(name, "")
		if !ok {
			t.Fatalf("gauge %s not registered", name)
		}
		return v
	}
	baseCap := gauge("engine.queue_capacity")
	basePools := gauge("engine.pools_live")

	rng := rand.New(rand.NewSource(901))
	ss := sstree.New(3)
	for i := 0; i < 50; i++ {
		c := []float64{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
		ss.Insert(geom.Item{Sphere: geom.NewSphere(c, rng.Float64()), ID: i})
	}
	e := New(knn.WrapSSTree(ss), WithWorkers(2))
	wantCap := float64(2 * queueDepthPerWorker)
	if got := gauge("engine.queue_capacity") - baseCap; got != wantCap {
		t.Errorf("queue_capacity delta = %v after New, want %v", got, wantCap)
	}
	if got := gauge("engine.pools_live") - basePools; got != 1 {
		t.Errorf("pools_live delta = %v after New, want 1", got)
	}
	if got := gauge("engine.queue_depth"); got < 0 {
		t.Errorf("queue_depth = %v, want ≥ 0", got)
	}

	// A working pool keeps depth within capacity.
	for i := 0; i < 8; i++ {
		e.Search(geom.NewSphere([]float64{50, 50, 50}, 1), 3)
	}
	if depth, capacity := gauge("engine.queue_depth"), gauge("engine.queue_capacity"); depth > capacity {
		t.Errorf("queue_depth %v exceeds capacity %v", depth, capacity)
	}

	e.Close()
	if got := gauge("engine.queue_capacity") - baseCap; got != 0 {
		t.Errorf("queue_capacity delta = %v after Close, want 0", got)
	}
	if got := gauge("engine.pools_live") - basePools; got != 0 {
		t.Errorf("pools_live delta = %v after Close, want 0", got)
	}
}
