package engine

import (
	"sync"

	"hyperdom/internal/obs"
)

// Engine observability: pool lifecycle, submission/completion flow and
// queue-wait latency. engine.submitted − engine.completed is the number of
// queries currently queued or running; the engine.queue_wait histogram is
// the saturation signal — its tail grows as soon as submissions outpace
// the workers. The /metrics exposition renders these as
// hyperdom_engine_*.
var (
	obsEngines   = obs.New("engine.pools_started")
	obsWorkers   = obs.New("engine.workers")
	obsBatches   = obs.New("engine.batches")
	obsSubmitted = obs.New("engine.submitted")
	obsCompleted = obs.New("engine.completed")

	histQueueWait = obs.NewHistogram("engine.queue_wait", "")
)

// Saturation gauges (ISSUE 9). Queue depth and capacity are instantaneous
// facts of live pools, not monotone counters, so they are exposed as
// callback gauges summed over every running Engine: engine.queue_depth is
// how many submitted tasks currently sit unclaimed across all pools,
// engine.queue_capacity the total bounded-queue headroom. depth ÷ capacity
// is the saturation ratio the /debug/health queue check grades. New adds a
// pool to the live set, Close removes it; the callbacks only read channel
// len/cap, so a scrape never blocks a query.
var liveEngines struct {
	mu sync.Mutex
	m  map[*Engine]struct{}
}

func init() {
	obs.RegisterGaugeFunc("engine.queue_depth", "", func() float64 {
		liveEngines.mu.Lock()
		defer liveEngines.mu.Unlock()
		var depth int
		for e := range liveEngines.m {
			depth += len(e.queue)
		}
		return float64(depth)
	})
	obs.RegisterGaugeFunc("engine.queue_capacity", "", func() float64 {
		liveEngines.mu.Lock()
		defer liveEngines.mu.Unlock()
		var capacity int
		for e := range liveEngines.m {
			capacity += cap(e.queue)
		}
		return float64(capacity)
	})
	obs.RegisterGaugeFunc("engine.pools_live", "", func() float64 {
		liveEngines.mu.Lock()
		defer liveEngines.mu.Unlock()
		return float64(len(liveEngines.m))
	})
}

func trackEngine(e *Engine) {
	liveEngines.mu.Lock()
	if liveEngines.m == nil {
		liveEngines.m = make(map[*Engine]struct{})
	}
	liveEngines.m[e] = struct{}{}
	liveEngines.mu.Unlock()
}

func untrackEngine(e *Engine) {
	liveEngines.mu.Lock()
	delete(liveEngines.m, e)
	liveEngines.mu.Unlock()
}
