package engine

import "hyperdom/internal/obs"

// Engine observability: pool lifecycle, submission/completion flow and
// queue-wait latency. engine.submitted − engine.completed is the number of
// queries currently queued or running; the engine.queue_wait histogram is
// the saturation signal — its tail grows as soon as submissions outpace
// the workers. The /metrics exposition renders these as
// hyperdom_engine_*.
var (
	obsEngines   = obs.New("engine.pools_started")
	obsWorkers   = obs.New("engine.workers")
	obsBatches   = obs.New("engine.batches")
	obsSubmitted = obs.New("engine.submitted")
	obsCompleted = obs.New("engine.completed")

	histQueueWait = obs.NewHistogram("engine.queue_wait", "")
)
