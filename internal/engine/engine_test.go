package engine

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"hyperdom/internal/dominance"
	"hyperdom/internal/geom"
	"hyperdom/internal/knn"
	"hyperdom/internal/obs"
	"hyperdom/internal/rtree"
	"hyperdom/internal/sstree"
)

func randItems(rng *rand.Rand, d, n int) []geom.Item {
	items := make([]geom.Item, n)
	for i := range items {
		c := make([]float64, d)
		for j := range c {
			c[j] = rng.NormFloat64() * 20
		}
		items[i] = geom.Item{ID: i, Sphere: geom.NewSphere(c, rng.Float64()*3)}
	}
	return items
}

func randQueries(rng *rand.Rand, d, n int) []geom.Sphere {
	qs := make([]geom.Sphere, n)
	for i := range qs {
		c := make([]float64, d)
		for j := range c {
			c[j] = rng.NormFloat64() * 20
		}
		qs[i] = geom.NewSphere(c, rng.Float64()*2)
	}
	return qs
}

// TestEngineMatchesSequential: the engine is a scheduler, not a different
// algorithm — every batch result must equal the direct knn.Search answer,
// items and stats, frozen or not, on sphere- and rect-bounded substrates.
func TestEngineMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	d := 5
	items := randItems(rng, d, 3000)
	queries := randQueries(rng, d, 60)

	ss := sstree.New(d)
	rt := rtree.New(d)
	for _, it := range items {
		ss.Insert(it)
		rt.Insert(it)
	}
	for _, frozen := range []bool{false, true} {
		if frozen {
			ss.Freeze()
			rt.Freeze()
		}
		for _, tc := range []struct {
			name string
			idx  knn.Index
		}{
			{"sstree", knn.WrapSSTree(ss)},
			{"rtree", knn.WrapRTree(rt)},
		} {
			for _, algo := range []knn.Algorithm{knn.DF, knn.HS} {
				e := New(tc.idx, WithWorkers(4), WithAlgorithm(algo))
				got := e.SearchBatch(queries, 8)
				e.Close()
				for i, sq := range queries {
					want := knn.Search(tc.idx, sq, 8, dominance.Hyperbola{}, algo)
					if !reflect.DeepEqual(got[i].Items, want.Items) || got[i].Stats != want.Stats {
						t.Fatalf("%s frozen=%v algo=%v query %d: engine result differs", tc.name, frozen, algo, i)
					}
				}
			}
		}
	}
}

// TestEngineBackpressure: a single slow worker with a minimal queue must
// still complete a batch far larger than the queue — submission blocks
// instead of dropping or growing without bound.
func TestEngineBackpressure(t *testing.T) {
	rng := rand.New(rand.NewSource(602))
	d := 3
	items := randItems(rng, d, 400)
	ss := sstree.New(d)
	for _, it := range items {
		ss.Insert(it)
	}
	ss.Freeze()
	e := New(knn.WrapSSTree(ss), WithWorkers(1))
	defer e.Close()
	queries := randQueries(rng, d, 50*queueDepthPerWorker)
	res := e.SearchBatch(queries, 5)
	if len(res) != len(queries) {
		t.Fatalf("batch returned %d results for %d queries", len(res), len(queries))
	}
	for i, r := range res {
		if r.K != 5 {
			t.Fatalf("result %d: K = %d, not filled in", i, r.K)
		}
	}
}

// TestEngineConcurrentBatches drives several batches from concurrent
// goroutines through one pool (run under -race in CI) and checks each gets
// its own correct, complete answer set.
func TestEngineConcurrentBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(603))
	d := 4
	items := randItems(rng, d, 1500)
	ss := sstree.New(d)
	for _, it := range items {
		ss.Insert(it)
	}
	ss.Freeze()
	idx := knn.WrapSSTree(ss)
	e := New(idx, WithWorkers(4))
	defer e.Close()

	const callers = 6
	batches := make([][]geom.Sphere, callers)
	for i := range batches {
		batches[i] = randQueries(rng, d, 40)
	}
	results := make([][]knn.Result, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = e.SearchBatch(batches[i], 6)
		}(i)
	}
	wg.Wait()
	for i := range batches {
		for j, sq := range batches[i] {
			want := knn.Search(idx, sq, 6, dominance.Hyperbola{}, knn.HS)
			if !reflect.DeepEqual(results[i][j].Items, want.Items) {
				t.Fatalf("caller %d query %d: concurrent batch result differs", i, j)
			}
		}
	}
}

// TestEngineObs verifies the saturation metrics: submitted == completed ==
// batch size after a batch drains, workers is the pool size, and
// engine.queue_wait holds one sample per query.
func TestEngineObs(t *testing.T) {
	defer obs.SetEnabled(true)
	obs.SetEnabled(true)

	rng := rand.New(rand.NewSource(604))
	d := 3
	items := randItems(rng, d, 500)
	ss := sstree.New(d)
	for _, it := range items {
		ss.Insert(it)
	}
	ss.Freeze()

	obs.ResetForTest()
	e := New(knn.WrapSSTree(ss), WithWorkers(3))
	queries := randQueries(rng, d, 37)
	e.SearchBatch(queries, 4)
	e.Search(queries[0], 4)
	e.Close()

	snap := obs.Snapshot()
	wantSubmitted := uint64(len(queries) + 1)
	if got := snap.Get("engine.submitted"); got != wantSubmitted {
		t.Errorf("engine.submitted = %d, want %d", got, wantSubmitted)
	}
	if got := snap.Get("engine.completed"); got != wantSubmitted {
		t.Errorf("engine.completed = %d, want %d", got, wantSubmitted)
	}
	if got := snap.Get("engine.batches"); got != 1 {
		t.Errorf("engine.batches = %d, want 1", got)
	}
	if got := snap.Get("engine.workers"); got != 3 {
		t.Errorf("engine.workers = %d, want 3", got)
	}
	if got := snap.Get("engine.pools_started"); got != 1 {
		t.Errorf("engine.pools_started = %d, want 1", got)
	}
	if hist := obs.MergedHist("engine.queue_wait"); hist.Count != wantSubmitted {
		t.Errorf("engine.queue_wait samples = %d, want %d", hist.Count, wantSubmitted)
	}
	// The engine routes through knn.Search, so the per-search accounting
	// (counters, latency histograms, flight recorder) keeps working.
	if got := snap.Get("knn.searches"); got != wantSubmitted {
		t.Errorf("knn.searches = %d, want %d", got, wantSubmitted)
	}
	if got := snap.Get("knn.searches.packed"); got != wantSubmitted {
		t.Errorf("knn.searches.packed = %d, want %d", got, wantSubmitted)
	}

	// Nothing moves while the gate is off.
	obs.SetEnabled(false)
	obs.ResetForTest()
	e2 := New(knn.WrapSSTree(ss), WithWorkers(2))
	e2.SearchBatch(queries[:5], 4)
	e2.Close()
	if moved := obs.Snapshot().Diff(obs.Snap{}); len(moved) != 0 {
		t.Errorf("counters moved while disabled: %v", moved)
	}
}

// TestEngineAllocs pins the per-query allocation cost of the engine path:
// the fixed scaffolding (results slice, waitgroup, channel sends) plus the
// per-query answer slices, nothing proportional to tree size.
func TestEngineAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement")
	}
	if raceEnabled {
		t.Skip("race instrumentation allocates; AllocsPerRun is meaningless under -race")
	}
	rng := rand.New(rand.NewSource(605))
	d := 8
	items := randItems(rng, d, 5000)
	ss := sstree.New(d)
	for _, it := range items {
		ss.Insert(it)
	}
	ss.Freeze()
	e := New(knn.WrapSSTree(ss), WithWorkers(2))
	defer e.Close()
	queries := randQueries(rng, d, 16)
	e.SearchBatch(queries, 10) // warm worker arenas
	allocs := testing.AllocsPerRun(16, func() {
		e.SearchBatch(queries, 10)
	})
	// Budget mirrors TestSearchBatchAllocs: per-query answer allocations
	// plus fixed batch scaffolding.
	budget := float64(len(queries)*8 + 8)
	if allocs > budget {
		t.Errorf("%.1f allocs per %d-query batch, budget %.0f", allocs, len(queries), budget)
	}
}

func TestEngineEmptyBatchAndPanics(t *testing.T) {
	ss := sstree.New(2)
	ss.Insert(geom.Item{ID: 1, Sphere: geom.NewSphere([]float64{0, 0}, 1)})
	e := New(knn.WrapSSTree(ss), WithWorkers(1))
	defer e.Close()
	if res := e.SearchBatch(nil, 3); len(res) != 0 {
		t.Fatalf("empty batch returned %d results", len(res))
	}
	defer func() {
		if recover() == nil {
			t.Error("k=0 batch did not panic")
		}
	}()
	e.SearchBatch(randQueries(rand.New(rand.NewSource(1)), 2, 1), 0)
}

// TestTaskTelemetry pins the per-task queue-wait plumbing (ISSUE 8): a
// caller-supplied TaskTelemetry is filled with a positive queue wait even
// when the process-wide obs gate is off, and passing nil stays valid.
func TestTaskTelemetry(t *testing.T) {
	// Force the gate off: the telemetry contract is specifically that it
	// works without process-wide obs.
	was := obs.On()
	obs.SetEnabled(false)
	defer obs.SetEnabled(was)
	rng := rand.New(rand.NewSource(604))
	d := 3
	items := randItems(rng, d, 800)
	ss := sstree.New(d)
	for _, it := range items {
		ss.Insert(it)
	}
	ss.Freeze()
	e := New(knn.WrapSSTree(ss), WithWorkers(1))
	defer e.Close()

	q := randQueries(rng, d, 1)[0]
	var tt TaskTelemetry
	cs := e.SearchCandidates(q, 5, nil, &tt)
	if tt.QueueWaitNs <= 0 {
		t.Fatalf("queue wait %d, want > 0 (obs off)", tt.QueueWaitNs)
	}
	if len(cs.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	// nil telemetry must keep working and return the same stream.
	cs2 := e.SearchCandidates(q, 5, nil, nil)
	if !reflect.DeepEqual(cs.Candidates, cs2.Candidates) {
		t.Fatal("telemetry changed the candidate stream")
	}
}
