// Package engine is the parallel batch-query engine (ISSUE 5): a fixed
// pool of workers answering kNN queries over one shared index, each worker
// owning a knn.Searcher (and through it a scratch arena) for its whole
// lifetime, so a query costs no pool round-trip and no cross-worker
// sharing.
//
// Submission runs through a bounded queue: when every worker is busy and
// the queue is full, SearchBatch blocks in the send — backpressure reaches
// the producer instead of growing an unbounded backlog (DESIGN.md §11).
// Saturation is observable: engine.queue_wait histograms the
// submit-to-dequeue latency of every task, and the engine.submitted /
// engine.completed counters expose the in-flight depth as their difference.
//
// The index must not be mutated while an Engine is running over it. Freeze
// the substrate first (e.g. sstree.Freeze) so the workers stream over the
// packed snapshot — the engine works either way, but the frozen path is
// both faster and immune to accidental mutation, since the snapshot is
// immutable.
package engine

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"hyperdom/internal/dominance"
	"hyperdom/internal/geom"
	"hyperdom/internal/knn"
	"hyperdom/internal/obs"
)

// task is one queued query. Results are written in place through out, so
// the batch path allocates nothing per task beyond what the search itself
// returns.
type task struct {
	sq    geom.Sphere
	k     int
	out   *knn.Result
	wg    *sync.WaitGroup
	enqNs int64 // submit time (UnixNano), 0 when nobody wants the wait
	obsOn bool  // record the wait into the engine.queue_wait histogram

	// Candidate-mode fields (scatter-gather, DESIGN.md §13). When cands is
	// non-nil the worker runs SearchCandidates into it instead of Search
	// into out, under the external pushdown bound ext (may be nil). tt, when
	// non-nil, receives per-task telemetry for the request EXPLAIN layer
	// independent of the process-wide obs gate.
	cands *knn.CandidateSet
	ext   *knn.Bound
	tt    *TaskTelemetry
}

// TaskTelemetry carries per-task measurements the worker writes back for
// the caller — today the submit-to-dequeue queue wait, the one number only
// the engine can observe. The caller owns the struct and must not read it
// before the task's WaitGroup is done.
type TaskTelemetry struct {
	QueueWaitNs int64
}

// Engine is the worker pool. Construct with New; Close releases it.
// SearchBatch and Search are safe for concurrent use from any number of
// goroutines; Close must happen-after every submission.
type Engine struct {
	idx     knn.Index
	crit    dominance.Criterion
	algo    knn.Algorithm
	workers int
	queue   chan task
	done    sync.WaitGroup
	closing sync.Once
}

// Option configures an Engine.
type Option func(*Engine)

// WithWorkers sets the pool size; n ≤ 0 (and the default) selects
// GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(e *Engine) { e.workers = n }
}

// WithCriterion sets the dominance criterion (default Hyperbola, the exact
// one).
func WithCriterion(c dominance.Criterion) Option {
	return func(e *Engine) { e.crit = c }
}

// WithAlgorithm sets the traversal strategy (default HS).
func WithAlgorithm(a knn.Algorithm) Option {
	return func(e *Engine) { e.algo = a }
}

// queueDepthPerWorker sizes the bounded submission queue: deep enough that
// workers never starve between a batch's sends, shallow enough that a
// stalled pool pushes back on producers within a few queries.
const queueDepthPerWorker = 4

// New starts an engine over the index. The caller owns the returned
// Engine and must Close it to stop the workers.
func New(idx knn.Index, opts ...Option) *Engine {
	e := &Engine{idx: idx, crit: dominance.Hyperbola{}, algo: knn.HS}
	for _, o := range opts {
		o(e)
	}
	if e.workers <= 0 {
		e.workers = runtime.GOMAXPROCS(0)
	}
	e.queue = make(chan task, e.workers*queueDepthPerWorker)
	if obs.On() {
		obsEngines.Inc()
		obsWorkers.Add(uint64(e.workers))
	}
	e.done.Add(e.workers)
	for i := 0; i < e.workers; i++ {
		go e.worker()
	}
	trackEngine(e)
	return e
}

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.workers }

// worker drains the queue until Close. Its Searcher — and the scratch
// arena inside — lives for the worker's whole life, so per-query state
// never crosses goroutines and the knn allocation budget holds under any
// worker count.
func (e *Engine) worker() {
	defer e.done.Done()
	s := knn.NewSearcher()
	defer s.Close()
	shard := obs.NextShard()
	for t := range e.queue {
		if t.enqNs != 0 {
			wait := time.Now().UnixNano() - t.enqNs
			if t.obsOn {
				histQueueWait.RecordShard(shard, wait)
			}
			if t.tt != nil {
				t.tt.QueueWaitNs = wait
			}
		}
		if t.cands != nil {
			*t.cands = s.SearchCandidates(e.idx, t.sq, t.k, e.crit, e.algo, t.ext)
		} else {
			*t.out = s.Search(e.idx, t.sq, t.k, e.crit, e.algo)
		}
		if obs.On() {
			obsCompleted.Inc()
		}
		t.wg.Done()
	}
}

// SearchBatch answers every query with the engine's criterion and strategy
// and returns the results in query order. It blocks until the whole batch
// is done; submission itself blocks whenever the bounded queue is full
// (backpressure). Concurrent batches interleave fairly at query
// granularity.
func (e *Engine) SearchBatch(queries []geom.Sphere, k int) []knn.Result {
	if k <= 0 {
		panic(fmt.Sprintf("engine: k = %d", k))
	}
	results := make([]knn.Result, len(queries))
	if len(queries) == 0 {
		return results
	}
	on := obs.On()
	if on {
		obsBatches.Inc()
		obsSubmitted.Add(uint64(len(queries)))
	}
	var wg sync.WaitGroup
	wg.Add(len(queries))
	for i := range queries {
		var enq int64
		if on {
			enq = time.Now().UnixNano()
		}
		e.queue <- task{sq: queries[i], k: k, out: &results[i], wg: &wg, enqNs: enq, obsOn: on}
	}
	wg.Wait()
	return results
}

// Search answers a single query through the pool, blocking until a worker
// picks it up and finishes. Prefer SearchBatch for throughput; Search
// exists so sporadic queries share the workers' warm arenas.
func (e *Engine) Search(sq geom.Sphere, k int) knn.Result {
	if k <= 0 {
		panic(fmt.Sprintf("engine: k = %d", k))
	}
	on := obs.On()
	if on {
		obsSubmitted.Inc()
	}
	var res knn.Result
	var wg sync.WaitGroup
	wg.Add(1)
	var enq int64
	if on {
		enq = time.Now().UnixNano()
	}
	e.queue <- task{sq: sq, k: k, out: &res, wg: &wg, enqNs: enq, obsOn: on}
	wg.Wait()
	return res
}

// SearchCandidates answers a single candidate-stream query through the pool
// (knn.SearchCandidates semantics), blocking until a worker finishes it.
// ext is the optional scatter-gather distK pushdown bound; nil disables
// pushdown. tt, when non-nil, receives the task's queue-wait measurement
// for the request EXPLAIN layer — independent of the process-wide obs gate,
// and costing exactly one extra clock read when obs is off. The scatter
// layer of internal/shard calls this once per shard per query, so each
// shard's traversal runs on that shard's warm arenas.
func (e *Engine) SearchCandidates(sq geom.Sphere, k int, ext *knn.Bound, tt *TaskTelemetry) knn.CandidateSet {
	if k <= 0 {
		panic(fmt.Sprintf("engine: k = %d", k))
	}
	on := obs.On()
	if on {
		obsSubmitted.Inc()
	}
	var cs knn.CandidateSet
	var wg sync.WaitGroup
	wg.Add(1)
	var enq int64
	if on || tt != nil {
		enq = time.Now().UnixNano()
	}
	e.queue <- task{sq: sq, k: k, cands: &cs, ext: ext, wg: &wg, enqNs: enq, obsOn: on, tt: tt}
	wg.Wait()
	return cs
}

// Criterion returns the dominance criterion the engine answers with.
func (e *Engine) Criterion() dominance.Criterion { return e.crit }

// Algorithm returns the traversal strategy the engine answers with.
func (e *Engine) Algorithm() knn.Algorithm { return e.algo }

// Close stops the workers after the already-queued work drains and waits
// for them to exit. Safe to call more than once; submitting after Close
// panics.
func (e *Engine) Close() {
	e.closing.Do(func() {
		untrackEngine(e)
		close(e.queue)
	})
	e.done.Wait()
}
