// Package mtree implements an M-tree (Ciaccia, Patella & Zezula, VLDB
// 1997): a height-balanced metric access method whose routing entries are
// pivot objects with covering radii. The hypersphere-dominance paper lists
// the M-tree among the sphere-based indexes its operator serves (Section
// 5.1); this package provides it as an alternative substrate for the kNN
// search of package knn, interchangeable with the SS-tree.
//
// Differences from the SS-tree: routing centers are actual object centers
// (pivots) rather than centroids, the insertion heuristic minimises
// covering-radius enlargement rather than centroid distance, and splits use
// the generalised-hyperplane partition around a far-apart pivot pair.
package mtree

import (
	"fmt"
	"math"

	"hyperdom/internal/geom"
	"hyperdom/internal/obs"
	"hyperdom/internal/packed"
	"hyperdom/internal/vec"
)

// Item is the indexed unit, shared with the other index packages.
type Item = geom.Item

// DefaultMaxFill is the default node capacity.
const DefaultMaxFill = 24

// Tree is an M-tree over d-dimensional hyperspheres. Construct with New.
// Not safe for concurrent mutation.
type Tree struct {
	dim     int
	minFill int
	maxFill int
	root    *node
	size    int
	frozen  *packed.Tree // cached Freeze snapshot; nil when thawed
}

type node struct {
	leaf     bool
	pivot    []float64 // routing object center
	radius   float64   // covering radius: every sphere below fits inside
	count    int
	children []*node
	items    []Item
}

// Option configures a Tree.
type Option func(*Tree)

// WithMaxFill sets the node capacity (minimum 4; min fill = capacity/3).
func WithMaxFill(m int) Option {
	return func(t *Tree) {
		if m < 4 {
			m = 4
		}
		t.maxFill = m
		t.minFill = m / 3
		if t.minFill < 2 {
			t.minFill = 2
		}
	}
}

// New returns an empty M-tree for dim-dimensional spheres.
func New(dim int, opts ...Option) *Tree {
	if dim <= 0 {
		panic(fmt.Sprintf("mtree: New with dimensionality %d", dim))
	}
	t := &Tree{dim: dim}
	WithMaxFill(DefaultMaxFill)(t)
	for _, o := range opts {
		o(t)
	}
	return t
}

// Dim returns the tree's dimensionality.
func (t *Tree) Dim() int { return t.dim }

// Len returns the number of indexed spheres.
func (t *Tree) Len() int { return t.size }

// Insert adds the item to the tree.
func (t *Tree) Insert(it Item) {
	if it.Sphere.Dim() != t.dim {
		panic(fmt.Sprintf("mtree: Insert of %d-dimensional sphere into %d-dimensional tree",
			it.Sphere.Dim(), t.dim))
	}
	if err := it.Sphere.Validate(); err != nil {
		panic("mtree: " + err.Error())
	}
	t.thaw()
	if t.root == nil {
		t.root = &node{leaf: true, pivot: vec.Clone(it.Sphere.Center)}
	}
	left, right := t.insert(t.root, it)
	if right != nil {
		newRoot := &node{leaf: false, children: []*node{left, right}}
		newRoot.adoptPivot()
		t.root = newRoot
	}
	t.size++
	if obs.On() {
		obsInserts.Inc()
	}
}

func (t *Tree) insert(n *node, it Item) (*node, *node) {
	if n.leaf {
		n.items = append(n.items, it)
		if len(n.items) > t.maxFill {
			return t.splitLeaf(n)
		}
		n.cover(it.Sphere)
		n.count = len(n.items)
		return n, nil
	}
	best := chooseSubtree(n.children, it.Sphere)
	left, right := t.insert(n.children[best], it)
	n.children[best] = left
	if right != nil {
		n.children = append(n.children, right)
		if len(n.children) > t.maxFill {
			return t.splitInternal(n)
		}
	}
	n.count = 0
	for _, c := range n.children {
		n.count += c.count
		n.cover(geom.Sphere{Center: c.pivot, Radius: c.radius})
	}
	return n, nil
}

// chooseSubtree prefers a child whose covering sphere already contains the
// new sphere (closest pivot among those); otherwise the child needing the
// least radius enlargement.
func chooseSubtree(children []*node, s geom.Sphere) int {
	best := -1
	bestDist := math.Inf(1)
	for i, c := range children {
		d := vec.Dist(c.pivot, s.Center)
		if d+s.Radius <= c.radius && d < bestDist {
			best, bestDist = i, d
		}
	}
	if best >= 0 {
		return best
	}
	bestEnl := math.Inf(1)
	for i, c := range children {
		enl := vec.Dist(c.pivot, s.Center) + s.Radius - c.radius
		if enl < bestEnl {
			best, bestEnl = i, enl
		}
	}
	return best
}

// cover grows the node's covering radius to include sphere s.
func (n *node) cover(s geom.Sphere) {
	if r := vec.Dist(n.pivot, s.Center) + s.Radius; r > n.radius {
		n.radius = r
	}
}

// refit recomputes the covering radius (keeping the current pivot) and
// count from scratch.
func (n *node) refit() {
	n.radius = 0
	if n.leaf {
		n.count = len(n.items)
		for _, it := range n.items {
			n.cover(it.Sphere)
		}
		return
	}
	n.count = 0
	for _, c := range n.children {
		n.count += c.count
		n.cover(geom.Sphere{Center: c.pivot, Radius: c.radius})
	}
}

// adoptPivot picks the first child's pivot as this node's routing object
// (the "parent promotion" of the original M-tree) and refits.
func (n *node) adoptPivot() {
	n.pivot = vec.Clone(n.children[0].pivot)
	n.refit()
}

// farPair returns indices of two far-apart points: the point farthest from
// pts[0], and the point farthest from that one — the classic linear-cost
// pivot-promotion heuristic.
func farPair(pts [][]float64) (int, int) {
	a := 0
	bestD := -1.0
	for i, p := range pts {
		if d := vec.Dist2(pts[0], p); d > bestD {
			a, bestD = i, d
		}
	}
	b := 0
	bestD = -1.0
	for i, p := range pts {
		if d := vec.Dist2(pts[a], p); d > bestD {
			b, bestD = i, d
		}
	}
	if a == b {
		b = (a + 1) % len(pts)
	}
	return a, b
}

// partition assigns each index to the nearer of the two pivots, then
// rebalances so both sides reach minFill (moving the entries whose
// pivot-distance difference is smallest).
func partition(pts [][]float64, pa, pb []float64, minFill int) ([]int, []int) {
	type scored struct {
		idx  int
		bias float64 // dist to A − dist to B; negative prefers A
	}
	all := make([]scored, len(pts))
	var left, right []int
	for i, p := range pts {
		all[i] = scored{i, vec.Dist(pa, p) - vec.Dist(pb, p)}
	}
	for _, s := range all {
		if s.bias <= 0 {
			left = append(left, s.idx)
		} else {
			right = append(right, s.idx)
		}
	}
	// Rebalance deficient sides by stealing the least-committed entries.
	steal := func(from, to []int) ([]int, []int) {
		bestPos := -1
		bestAbs := math.Inf(1)
		for pos, idx := range from {
			if a := math.Abs(all[idx].bias); a < bestAbs {
				bestPos, bestAbs = pos, a
			}
		}
		to = append(to, from[bestPos])
		from = append(from[:bestPos], from[bestPos+1:]...)
		return from, to
	}
	for len(left) < minFill {
		right, left = steal(right, left)
	}
	for len(right) < minFill {
		left, right = steal(left, right)
	}
	return left, right
}

func (t *Tree) splitLeaf(n *node) (*node, *node) {
	if obs.On() {
		obsSplits.Inc()
	}
	pts := make([][]float64, len(n.items))
	for i, it := range n.items {
		pts[i] = it.Sphere.Center
	}
	a, b := farPair(pts)
	la, lb := partition(pts, pts[a], pts[b], t.minFill)
	mk := func(pivotIdx int, idxs []int) *node {
		nn := &node{leaf: true, pivot: vec.Clone(pts[pivotIdx])}
		for _, i := range idxs {
			nn.items = append(nn.items, n.items[i])
		}
		nn.refit()
		return nn
	}
	return mk(a, la), mk(b, lb)
}

func (t *Tree) splitInternal(n *node) (*node, *node) {
	if obs.On() {
		obsSplits.Inc()
	}
	pts := make([][]float64, len(n.children))
	for i, c := range n.children {
		pts[i] = c.pivot
	}
	a, b := farPair(pts)
	la, lb := partition(pts, pts[a], pts[b], t.minFill)
	mk := func(pivotIdx int, idxs []int) *node {
		nn := &node{leaf: false, pivot: vec.Clone(pts[pivotIdx])}
		for _, i := range idxs {
			nn.children = append(nn.children, n.children[i])
		}
		nn.refit()
		return nn
	}
	return mk(a, la), mk(b, lb)
}
