package mtree

import (
	"hyperdom/internal/obs"
	"hyperdom/internal/vec"
)

// Delete removes one item with the given ID and an equal sphere from the
// tree and reports whether such an item was found. Underflowing leaves are
// dissolved and their items reinserted, matching the SS-tree's strategy.
func (t *Tree) Delete(it Item) bool {
	if t.root == nil {
		return false
	}
	t.thaw()
	var orphans []Item
	if !t.delete(t.root, it, &orphans) {
		return false
	}
	t.size--
	for t.root != nil && !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
	if t.root != nil && t.root.leaf && len(t.root.items) == 0 {
		t.root = nil
	}
	for _, o := range orphans {
		t.size--
		t.Insert(o)
	}
	if obs.On() {
		obsDeletes.Inc()
		obsReinserts.Add(uint64(len(orphans)))
	}
	return true
}

func (t *Tree) delete(n *node, it Item, orphans *[]Item) bool {
	// Covering-radius pruning with float slack accumulated over refits.
	if vec.Dist(n.pivot, it.Sphere.Center) > n.radius+1e-9*(1+n.radius) {
		return false
	}
	if n.leaf {
		for i, cand := range n.items {
			if cand.ID == it.ID && cand.Sphere.Radius == it.Sphere.Radius &&
				vec.Equal(cand.Sphere.Center, it.Sphere.Center) {
				n.items = append(n.items[:i], n.items[i+1:]...)
				n.refit()
				return true
			}
		}
		return false
	}
	for i, c := range n.children {
		if !t.delete(c, it, orphans) {
			continue
		}
		underflow := (c.leaf && len(c.items) < t.minFill) ||
			(!c.leaf && len(c.children) < t.minFill)
		if underflow && len(n.children) > 1 {
			collectItems(c, orphans)
			n.children = append(n.children[:i], n.children[i+1:]...)
		}
		n.refit()
		return true
	}
	return false
}

func collectItems(n *node, out *[]Item) {
	if n.leaf {
		*out = append(*out, n.items...)
		return
	}
	for _, c := range n.children {
		collectItems(c, out)
	}
}
