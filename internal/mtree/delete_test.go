package mtree

import (
	"math/rand"
	"testing"
)

func TestDeleteAll(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	tr, items := buildTree(t, rng, 4, 1500)
	perm := rng.Perm(len(items))
	for i, pi := range perm {
		if !tr.Delete(items[pi]) {
			t.Fatalf("delete of existing item %d failed (step %d)", items[pi].ID, i)
		}
		if i%131 == 0 {
			if msg := tr.CheckInvariants(); msg != "" {
				t.Fatalf("invariants after %d deletes: %s", i+1, msg)
			}
		}
	}
	if tr.Len() != 0 {
		t.Errorf("Len=%d after deleting everything", tr.Len())
	}
}

func TestDeleteMissing(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	tr, _ := buildTree(t, rng, 3, 100)
	if tr.Delete(randItem(rng, 3, 10_000)) {
		t.Error("delete of non-existent item returned true")
	}
	if tr.Len() != 100 {
		t.Errorf("Len=%d after failed delete", tr.Len())
	}
}

func TestInsertDeleteInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	tr := New(3, WithMaxFill(6))
	live := map[int]Item{}
	next := 0
	for step := 0; step < 3000; step++ {
		if len(live) == 0 || rng.Float64() < 0.6 {
			it := randItem(rng, 3, next)
			next++
			tr.Insert(it)
			live[it.ID] = it
		} else {
			var victim Item
			for _, it := range live {
				victim = it
				break
			}
			if !tr.Delete(victim) {
				t.Fatalf("step %d: delete of live item %d failed", step, victim.ID)
			}
			delete(live, victim.ID)
		}
		if tr.Len() != len(live) {
			t.Fatalf("step %d: Len=%d live=%d", step, tr.Len(), len(live))
		}
	}
	if msg := tr.CheckInvariants(); msg != "" {
		t.Fatalf("invariants after interleaved ops: %s", msg)
	}
}
