package mtree

import "hyperdom/internal/obs"

// Structural observability counters (ISSUE 2), mirroring the sstree set;
// see sstree/metrics.go.
var (
	obsInserts   = obs.New("mtree.inserts")
	obsDeletes   = obs.New("mtree.deletes")
	obsSplits    = obs.New("mtree.node_splits")
	obsReinserts = obs.New("mtree.reinserts")
)
