package mtree

import "hyperdom/internal/packed"

// Freeze builds — or returns the cached — packed read-optimized snapshot
// of the tree (ISSUE 5): routing entries (pivot centers and covering
// radii) flattened into contiguous SoA blocks the kNN traversal streams
// over. Searches through knn.WrapMTree pick the snapshot up automatically.
//
// The snapshot is immutable and safe for concurrent readers. Mutating the
// tree afterwards (Insert, Delete) auto-thaws: the cached snapshot is
// dropped and searches fall back to the pointer path until the next
// Freeze. Callers holding the returned *packed.Tree directly must discard
// it after mutating the source.
func (t *Tree) Freeze() *packed.Tree {
	if t.frozen != nil {
		return t.frozen
	}
	b := packed.NewBuilder(packed.KindSphere, t.dim)
	b.SetSubstrate(packed.SubstrateMTree)
	if t.root == nil {
		t.frozen = b.FinishEmpty()
		return t.frozen
	}
	var build func(n *node) int32
	build = func(n *node) int32 {
		if n.leaf {
			return b.Leaf(n.items)
		}
		ids := make([]int32, len(n.children))
		centers := make([][]float64, len(n.children))
		radii := make([]float64, len(n.children))
		for i, c := range n.children {
			ids[i] = build(c)
			centers[i] = c.pivot
			radii[i] = c.radius
		}
		return b.InternalSphere(ids, centers, radii)
	}
	root := build(t.root)
	t.frozen = b.FinishSphere(root, t.root.pivot, t.root.radius)
	return t.frozen
}

// Frozen returns the cached packed snapshot; ok is false when the tree was
// never frozen or has been mutated (auto-thawed) since the last Freeze.
func (t *Tree) Frozen() (*packed.Tree, bool) { return t.frozen, t.frozen != nil }

// thaw drops the cached snapshot. Every mutating operation calls it first,
// which is the auto-thaw half of the freeze/thaw contract (DESIGN.md §11).
func (t *Tree) thaw() {
	if t.frozen != nil {
		t.frozen = nil
		packed.NoteThaw()
	}
}
