package mtree

import (
	"reflect"

	"hyperdom/internal/geom"
)

// Node is a read-only cursor over a tree node.
type Node struct {
	n *node
}

// Root returns a cursor to the root node; ok is false for an empty tree.
func (t *Tree) Root() (Node, bool) {
	if t.root == nil {
		return Node{}, false
	}
	return Node{t.root}, true
}

// IsLeaf reports whether the node is a leaf.
func (n Node) IsLeaf() bool { return n.n.leaf }

// Count returns the number of spheres under the node.
func (n Node) Count() int { return n.n.count }

// Sphere returns the node's covering sphere (pivot + covering radius). The
// returned sphere shares the node's pivot slice; callers must not modify it.
func (n Node) Sphere() geom.Sphere {
	return geom.Sphere{Center: n.n.pivot, Radius: n.n.radius}
}

// Children returns cursors to the node's children. Only valid on internal
// nodes.
func (n Node) Children() []Node {
	out := make([]Node, len(n.n.children))
	for i, c := range n.n.children {
		out[i] = Node{c}
	}
	return out
}

// NumChildren returns the number of children. Only valid on internal nodes.
func (n Node) NumChildren() int { return len(n.n.children) }

// Child returns a cursor to the i-th child without allocating (unlike
// Children, which builds a fresh slice). Only valid on internal nodes.
func (n Node) Child(i int) Node { return Node{n.n.children[i]} }

// Items returns the node's items. Only valid on leaves; callers must not
// modify the returned slice.
func (n Node) Items() []Item { return n.n.items }

// DebugID returns an opaque identifier for the underlying node — stable
// across visits for the tree's lifetime and distinct between live nodes —
// for execution traces and prune audits. It carries no meaning beyond
// identity.
func (n Node) DebugID() uint64 { return uint64(reflect.ValueOf(n.n).Pointer()) }

// RangeSearch returns all items whose spheres intersect the query sphere.
func (t *Tree) RangeSearch(q geom.Sphere) []Item {
	if q.Dim() != t.dim {
		panic("mtree: RangeSearch with mismatched dimensionality")
	}
	var out []Item
	if t.root == nil {
		return out
	}
	var walk func(n *node)
	walk = func(n *node) {
		if geom.MinDist(geom.Sphere{Center: n.pivot, Radius: n.radius}, q) > 0 {
			return
		}
		if n.leaf {
			for _, it := range n.items {
				if geom.Overlap(it.Sphere, q) {
					out = append(out, it)
				}
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// Visit calls fn for every indexed item; returning false stops the walk.
func (t *Tree) Visit(fn func(Item) bool) {
	if t.root == nil {
		return
	}
	var walk func(n *node) bool
	walk = func(n *node) bool {
		if n.leaf {
			for _, it := range n.items {
				if !fn(it) {
					return false
				}
			}
			return true
		}
		for _, c := range n.children {
			if !walk(c) {
				return false
			}
		}
		return true
	}
	walk(t.root)
}

// CheckInvariants validates the structural invariants and returns a
// description of the first violation, or "".
func (t *Tree) CheckInvariants() string {
	if t.root == nil {
		if t.size != 0 {
			return "empty root but non-zero size"
		}
		return ""
	}
	leafDepth := -1
	total := 0
	var walk func(n *node, depth int) string
	walk = func(n *node, depth int) string {
		cover := geom.Sphere{Center: n.pivot, Radius: n.radius * (1 + 1e-9)}
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return "leaves at differing depths"
			}
			if n.count != len(n.items) {
				return "leaf count mismatch"
			}
			total += len(n.items)
			for _, it := range n.items {
				if !cover.ContainsSphere(it.Sphere) {
					return "item escapes leaf covering sphere"
				}
			}
			return ""
		}
		if depth == 0 && len(n.children) < 2 {
			return "internal root with fewer than 2 children"
		}
		cnt := 0
		for _, c := range n.children {
			child := geom.Sphere{Center: c.pivot, Radius: c.radius}
			if !cover.ContainsSphere(child) {
				return "child escapes parent covering sphere"
			}
			if msg := walk(c, depth+1); msg != "" {
				return msg
			}
			cnt += c.count
		}
		if n.count != cnt {
			return "internal count mismatch"
		}
		return ""
	}
	if msg := walk(t.root, 0); msg != "" {
		return msg
	}
	if total != t.size {
		return "tree size does not match item total"
	}
	return ""
}
