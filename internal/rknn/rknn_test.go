package rknn

import (
	"math/rand"
	"sort"
	"testing"

	"hyperdom/internal/dominance"
	"hyperdom/internal/geom"
	"hyperdom/internal/sstree"
)

func randItems(rng *rand.Rand, d, n int, maxR float64) []Item {
	items := make([]Item, n)
	for i := range items {
		c := make([]float64, d)
		for j := range c {
			c[j] = 100 + rng.NormFloat64()*25
		}
		items[i] = Item{Sphere: geom.NewSphere(c, rng.Float64()*maxR), ID: i}
	}
	return items
}

func ids(items []Item) []int {
	out := make([]int, len(items))
	for i, it := range items {
		out[i] = it.ID
	}
	sort.Ints(out)
	return out
}

func equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestHandCase: points on a line at 0, 1, 2, 100; query point at 0.5.
// For k=1: object 0 keeps Sq as 1NN candidate (nothing strictly between 0
// and 0.5 other than Sq); object 1 likewise; object 2's nearest is object
// 1 (certainly closer than Sq: |2−1| = 1 < |2−0.5| = 1.5); object 100 is
// certainly closer to 2 than to Sq.
func TestHandCase(t *testing.T) {
	var items []Item
	for i, x := range []float64{0, 1, 2, 100} {
		items = append(items, Item{Sphere: geom.NewSphere([]float64{x}, 0), ID: i})
	}
	sq := geom.NewSphere([]float64{0.5}, 0)
	res := BruteForce(items, sq, 1, dominance.Exact{})
	if !equal(ids(res.Items), []int{0, 1}) {
		t.Errorf("RkNN answer = %v, want [0 1]", ids(res.Items))
	}
	// k=2: object 2 needs two objects certainly closer; only object 1
	// qualifies (object 0 at distance 2 vs Sq at 1.5), so it stays.
	res = BruteForce(items, sq, 2, dominance.Exact{})
	if !equal(ids(res.Items), []int{0, 1, 2}) {
		t.Errorf("R2NN answer = %v, want [0 1 2]", ids(res.Items))
	}
}

// TestSearchMatchesBruteForce: the index-filtered evaluation must return
// exactly the brute-force answer for every criterion.
func TestSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, d := range []int{2, 4} {
		items := randItems(rng, d, 600, 4)
		tree := sstree.New(d)
		for _, it := range items {
			tree.Insert(it)
		}
		for trial := 0; trial < 8; trial++ {
			c := make([]float64, d)
			for j := range c {
				c[j] = 100 + rng.NormFloat64()*25
			}
			sq := geom.NewSphere(c, rng.Float64()*4)
			for _, k := range []int{1, 3} {
				for _, crit := range []dominance.Criterion{dominance.Hyperbola{}, dominance.MinMax{}} {
					bf := BruteForce(items, sq, k, crit)
					se := Search(tree, sq, k, crit)
					if !equal(ids(bf.Items), ids(se.Items)) {
						t.Fatalf("d=%d k=%d %s: Search != BruteForce (%d vs %d items)",
							d, k, crit.Name(), len(se.Items), len(bf.Items))
					}
				}
			}
		}
	}
}

// TestCorrectCriteriaGiveSupersets: an unsound-but-correct criterion
// certifies fewer dominators, so its RkNN answer must contain the truth.
func TestCorrectCriteriaGiveSupersets(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	items := randItems(rng, 3, 400, 8)
	c := []float64{100, 100, 100}
	sq := geom.NewSphere(c, 5)
	truth := map[int]bool{}
	for _, it := range BruteForce(items, sq, 2, dominance.Exact{}).Items {
		truth[it.ID] = true
	}
	for _, crit := range []dominance.Criterion{dominance.MinMax{}, dominance.MBR{}, dominance.GP{}} {
		got := map[int]bool{}
		for _, it := range BruteForce(items, sq, 2, crit).Items {
			got[it.ID] = true
		}
		for id := range truth {
			if !got[id] {
				t.Errorf("%s dropped true RkNN answer %d", crit.Name(), id)
			}
		}
	}
}

// TestHyperbolaMatchesExact on random workloads.
func TestHyperbolaMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	items := randItems(rng, 4, 300, 5)
	for trial := 0; trial < 5; trial++ {
		c := make([]float64, 4)
		for j := range c {
			c[j] = 100 + rng.NormFloat64()*25
		}
		sq := geom.NewSphere(c, rng.Float64()*5)
		a := BruteForce(items, sq, 2, dominance.Hyperbola{})
		b := BruteForce(items, sq, 2, dominance.Exact{})
		if !equal(ids(a.Items), ids(b.Items)) {
			t.Fatalf("trial %d: Hyperbola RkNN differs from Exact", trial)
		}
	}
}

func TestPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 did not panic")
		}
	}()
	BruteForce(nil, geom.NewSphere([]float64{0}, 0), 0, dominance.Exact{})
}
