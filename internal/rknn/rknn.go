// Package rknn implements the reverse k-nearest-neighbour query over
// hypersphere databases, the second application of the dominance operator
// the paper names (Section 1): an object S is a reverse kNN of the query Sq
// unless k other objects certainly sit between them — that is, unless there
// exist k objects Sa with Dom(Sa, Sq, S), where S itself plays the role of
// the query sphere in the dominance test.
//
// With the Exact (or Hyperbola) criterion the result is the set of objects
// for which Sq could still be among the k nearest neighbours; with a
// correct-but-unsound criterion fewer dominators are certified, so the
// result is a superset (perfect recall, imperfect precision) — the same
// trade-off structure the paper measures for kNN.
package rknn

import (
	"fmt"
	"sort"

	"hyperdom/internal/dominance"
	"hyperdom/internal/geom"
	"hyperdom/internal/sstree"
	"hyperdom/internal/vec"
)

// Item is the indexed unit, shared with the index packages.
type Item = geom.Item

// Stats counts the work a query performed.
type Stats struct {
	DomChecks  int // dominance-criterion invocations
	Candidates int // candidate dominators inspected (index path only)
}

// Result is the answer of a reverse-kNN query.
type Result struct {
	// Items is the answer, ordered by ascending MinDist to the query.
	Items []Item
	K     int
	Stats Stats
}

// BruteForce evaluates the RkNN query by scanning all object pairs: S stays
// in the answer while fewer than k distinct objects provably dominate Sq
// with respect to S.
func BruteForce(items []Item, sq geom.Sphere, k int, crit dominance.Criterion) Result {
	if k <= 0 {
		panic(fmt.Sprintf("rknn: k = %d", k))
	}
	res := Result{K: k}
	for i, s := range items {
		dominators := 0
		for j, sa := range items {
			if i == j {
				continue
			}
			res.Stats.DomChecks++
			if crit.Dominates(sa.Sphere, sq, s.Sphere) {
				dominators++
				if dominators >= k {
					break
				}
			}
		}
		if dominators < k {
			res.Items = append(res.Items, s)
		}
	}
	sortByMinDist(res.Items, sq)
	return res
}

// Search evaluates the RkNN query with an SS-tree filter step: a dominator
// Sa of Sq wrt S must have its center strictly closer to S's center than
// Sq's center is (take the dominance condition at q = center of S), so only
// the index items within that ball are checked. The result is identical to
// BruteForce with the same criterion.
func Search(tree *sstree.Tree, sq geom.Sphere, k int, crit dominance.Criterion) Result {
	if k <= 0 {
		panic(fmt.Sprintf("rknn: k = %d", k))
	}
	res := Result{K: k}
	tree.Visit(func(s Item) bool {
		// Candidate dominators: Dom(Sa,Sq,S) evaluated at the center of S
		// forces Dist(ca, cS) + ra + rq < Dist(cq, cS); RangeSearch over the
		// ball of that radius is a superset of all possible dominators.
		r := vec.Dist(sq.Center, s.Sphere.Center)
		dominators := 0
		for _, sa := range tree.RangeSearch(geom.Sphere{Center: s.Sphere.Center, Radius: r}) {
			if sa.ID == s.ID && sa.Sphere.Radius == s.Sphere.Radius &&
				vec.Equal(sa.Sphere.Center, s.Sphere.Center) {
				continue
			}
			res.Stats.Candidates++
			res.Stats.DomChecks++
			if crit.Dominates(sa.Sphere, sq, s.Sphere) {
				dominators++
				if dominators >= k {
					break
				}
			}
		}
		if dominators < k {
			res.Items = append(res.Items, s)
		}
		return true
	})
	sortByMinDist(res.Items, sq)
	return res
}

func sortByMinDist(items []Item, sq geom.Sphere) {
	sort.Slice(items, func(a, b int) bool {
		da := geom.MinDist(items[a].Sphere, sq)
		db := geom.MinDist(items[b].Sphere, sq)
		if da != db {
			return da < db
		}
		return items[a].ID < items[b].ID
	})
}
