// Package buildinfo carries the build-time identity of a hyperdom binary.
// Version is stamped by the Makefile via
//
//	-ldflags "-X hyperdom/internal/buildinfo.Version=$(VERSION)"
//
// and defaults to "dev" for plain `go build`/`go test` invocations. Servers
// export it (with the runtime's Go version and the active quant mode) as
// the hyperdom_build_info gauge on /metrics.
package buildinfo

// Version is the stamped release identity, "dev" when unstamped.
var Version = "dev"
