package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hyperdom/internal/vec"
)

func TestMaxDist(t *testing.T) {
	tests := []struct {
		name string
		a, b Sphere
		want float64
	}{
		{
			"two balls on x axis",
			NewSphere([]float64{0, 0}, 1),
			NewSphere([]float64{10, 0}, 2),
			13,
		},
		{
			"point and ball (Fig 2b)",
			NewSphere([]float64{0, 0}, 3),
			Point([]float64{4, 3}),
			8,
		},
		{
			"identical points",
			Point([]float64{1, 1}),
			Point([]float64{1, 1}),
			0,
		},
		{
			"concentric",
			NewSphere([]float64{0, 0}, 1),
			NewSphere([]float64{0, 0}, 2),
			3,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := MaxDist(tc.a, tc.b); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("MaxDist = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestMinDist(t *testing.T) {
	tests := []struct {
		name string
		a, b Sphere
		want float64
	}{
		{
			"disjoint (Fig 3a)",
			NewSphere([]float64{0, 0}, 1),
			NewSphere([]float64{10, 0}, 2),
			7,
		},
		{
			"overlapping (Fig 3b)",
			NewSphere([]float64{0, 0}, 3),
			NewSphere([]float64{4, 0}, 3),
			0,
		},
		{
			"ball and point (Fig 3c)",
			NewSphere([]float64{0, 0}, 2),
			Point([]float64{4, 3}),
			3,
		},
		{
			"tangent",
			NewSphere([]float64{0, 0}, 2),
			NewSphere([]float64{5, 0}, 3),
			0,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := MinDist(tc.a, tc.b); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("MinDist = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestOverlap(t *testing.T) {
	a := NewSphere([]float64{0, 0}, 2)
	if !Overlap(a, NewSphere([]float64{3, 0}, 2)) {
		t.Error("overlapping spheres reported disjoint")
	}
	if !Overlap(a, NewSphere([]float64{4, 0}, 2)) {
		t.Error("tangent spheres must count as overlapping (Lemma 1)")
	}
	if Overlap(a, NewSphere([]float64{4.0001, 0}, 2)) {
		t.Error("disjoint spheres reported overlapping")
	}
	if !Overlap(a, NewSphere([]float64{0.5, 0.5}, 0.1)) {
		t.Error("contained sphere reported disjoint")
	}
}

func TestMinMaxDistPoint(t *testing.T) {
	s := NewSphere([]float64{0, 0}, 2)
	p := []float64{5, 0}
	if got := MinDistPoint(s, p); got != 3 {
		t.Errorf("MinDistPoint = %v, want 3", got)
	}
	if got := MaxDistPoint(s, p); got != 7 {
		t.Errorf("MaxDistPoint = %v, want 7", got)
	}
	inside := []float64{1, 0}
	if got := MinDistPoint(s, inside); got != 0 {
		t.Errorf("MinDistPoint inside = %v, want 0", got)
	}
}

func TestSphereContains(t *testing.T) {
	s := NewSphere([]float64{0, 0}, 2)
	if !s.Contains([]float64{1, 1}) {
		t.Error("interior point not contained")
	}
	if !s.Contains([]float64{2, 0}) {
		t.Error("boundary point not contained (closed ball)")
	}
	if s.Contains([]float64{2.001, 0}) {
		t.Error("exterior point contained")
	}
}

func TestContainsSphere(t *testing.T) {
	s := NewSphere([]float64{0, 0}, 5)
	if !s.ContainsSphere(NewSphere([]float64{2, 0}, 3)) {
		t.Error("internally tangent sphere not contained")
	}
	if s.ContainsSphere(NewSphere([]float64{2, 0}, 3.001)) {
		t.Error("protruding sphere contained")
	}
}

func TestSphereValidate(t *testing.T) {
	if err := NewSphere([]float64{1}, 0).Validate(); err != nil {
		t.Errorf("valid sphere failed validation: %v", err)
	}
	bad := []Sphere{
		{Center: nil, Radius: 1},
		{Center: []float64{math.NaN()}, Radius: 1},
		{Center: []float64{0}, Radius: -1},
		{Center: []float64{0}, Radius: math.Inf(1)},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad sphere %d passed validation", i)
		}
	}
}

func TestNewSpherePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewSphere(nil, 1) },
		func() { NewSphere([]float64{0}, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("NewSphere with invalid input did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestSphereMBR(t *testing.T) {
	s := NewSphere([]float64{1, -2, 3}, 2)
	r := s.MBR()
	if !vec.Equal(r.Lo, []float64{-1, -4, 1}) || !vec.Equal(r.Hi, []float64{3, 0, 5}) {
		t.Errorf("MBR = %v", r)
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect([]float64{0, 0}, []float64{4, 2})
	if r.Dim() != 2 {
		t.Errorf("Dim = %d", r.Dim())
	}
	if !vec.Equal(r.Center(), []float64{2, 1}) {
		t.Errorf("Center = %v", r.Center())
	}
	if !r.Contains([]float64{4, 2}) {
		t.Error("boundary corner not contained")
	}
	if r.Contains([]float64{4.1, 2}) {
		t.Error("outside point contained")
	}
	if r.Contains([]float64{1}) {
		t.Error("wrong-dimension point contained")
	}
}

func TestRectIntersects(t *testing.T) {
	a := NewRect([]float64{0, 0}, []float64{2, 2})
	if !a.Intersects(NewRect([]float64{1, 1}, []float64{3, 3})) {
		t.Error("overlapping rects reported disjoint")
	}
	if !a.Intersects(NewRect([]float64{2, 0}, []float64{3, 1})) {
		t.Error("edge-touching rects reported disjoint")
	}
	if a.Intersects(NewRect([]float64{2.1, 0}, []float64{3, 1})) {
		t.Error("disjoint rects reported intersecting")
	}
}

func TestRectMinMaxDist(t *testing.T) {
	a := NewRect([]float64{0, 0}, []float64{1, 1})
	b := NewRect([]float64{4, 4}, []float64{5, 5})
	want := math.Sqrt(18) // corner (1,1) to corner (4,4)
	if got := MinDistRect(a, b); math.Abs(got-want) > 1e-12 {
		t.Errorf("MinDistRect = %v, want %v", got, want)
	}
	wantMax := math.Sqrt(50) // corner (0,0) to corner (5,5)
	if got := MaxDistRect(a, b); math.Abs(got-wantMax) > 1e-12 {
		t.Errorf("MaxDistRect = %v, want %v", got, wantMax)
	}
	if got := MinDistRect(a, NewRect([]float64{0.5, 0.5}, []float64{2, 2})); got != 0 {
		t.Errorf("MinDistRect of intersecting rects = %v, want 0", got)
	}
}

func TestRectCorners(t *testing.T) {
	r := NewRect([]float64{0, 0}, []float64{1, 2})
	corners := r.Corners()
	if len(corners) != 4 {
		t.Fatalf("got %d corners, want 4", len(corners))
	}
	want := map[[2]float64]bool{
		{0, 0}: true, {1, 0}: true, {0, 2}: true, {1, 2}: true,
	}
	for _, c := range corners {
		if !want[[2]float64{c[0], c[1]}] {
			t.Errorf("unexpected corner %v", c)
		}
	}
}

func TestNewRectPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRect with lo > hi did not panic")
		}
	}()
	NewRect([]float64{1}, []float64{0})
}

// Property: MinDist and MaxDist bracket the distance between any contained
// points, verified by random sampling.
func TestMinMaxDistBracketProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(8)
		a := randSphere(r, d)
		b := randSphere(r, d)
		lo, hi := MinDist(a, b), MaxDist(a, b)
		for i := 0; i < 20; i++ {
			p := randPointIn(r, a)
			q := randPointIn(r, b)
			dist := vec.Dist(p, q)
			if dist < lo-1e-9 || dist > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: MinDist/MaxDist between rectangles bracket sampled distances.
func TestRectMinMaxDistBracketProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(6)
		a := randRect(r, d)
		b := randRect(r, d)
		lo, hi := MinDistRect(a, b), MaxDistRect(a, b)
		for i := 0; i < 20; i++ {
			p := randPointInRect(r, a)
			q := randPointInRect(r, b)
			dist := vec.Dist(p, q)
			if dist < lo-1e-9 || dist > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: a sphere's MBR contains every sampled point of the sphere.
func TestSphereMBRContainsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randSphere(r, 1+r.Intn(8))
		mbr := s.MBR()
		for i := 0; i < 20; i++ {
			if !mbr.Contains(randPointIn(r, s)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func randSphere(r *rand.Rand, d int) Sphere {
	c := make([]float64, d)
	for i := range c {
		c[i] = r.NormFloat64() * 20
	}
	return NewSphere(c, r.Float64()*5)
}

func randRect(r *rand.Rand, d int) Rect {
	lo := make([]float64, d)
	hi := make([]float64, d)
	for i := range lo {
		a, b := r.NormFloat64()*20, r.NormFloat64()*20
		if a > b {
			a, b = b, a
		}
		lo[i], hi[i] = a, b
	}
	return NewRect(lo, hi)
}

// randPointIn returns a uniformly random point inside sphere s (rejection
// sampling in the bounding box, falling back to the center).
func randPointIn(r *rand.Rand, s Sphere) []float64 {
	d := s.Dim()
	for tries := 0; tries < 200; tries++ {
		p := make([]float64, d)
		for i := range p {
			p[i] = s.Center[i] + (2*r.Float64()-1)*s.Radius
		}
		if s.Contains(p) {
			return p
		}
	}
	return vec.Clone(s.Center)
}

func randPointInRect(r *rand.Rand, rect Rect) []float64 {
	p := make([]float64, rect.Dim())
	for i := range p {
		p[i] = rect.Lo[i] + r.Float64()*(rect.Hi[i]-rect.Lo[i])
	}
	return p
}
