// Package geom defines the geometric primitives of the hypersphere-dominance
// library: d-dimensional hyperspheres and hyperrectangles together with the
// MinDist/MaxDist machinery of Section 2 of the paper.
package geom

import (
	"fmt"
	"math"

	"hyperdom/internal/vec"
)

// Sphere is a closed d-dimensional hypersphere (ball): the set of points at
// distance ≤ Radius from Center. A point is a Sphere with Radius 0.
type Sphere struct {
	Center []float64
	Radius float64
}

// NewSphere returns a sphere with the given center and radius. It panics if
// the radius is negative or the center is empty, because every caller bug of
// that kind would otherwise surface as a far-away wrong answer.
func NewSphere(center []float64, radius float64) Sphere {
	if len(center) == 0 {
		panic("geom: NewSphere with empty center")
	}
	if radius < 0 || math.IsNaN(radius) {
		panic(fmt.Sprintf("geom: NewSphere with invalid radius %v", radius))
	}
	return Sphere{Center: center, Radius: radius}
}

// Point returns the degenerate sphere of radius 0 centered at p.
func Point(p []float64) Sphere { return Sphere{Center: p, Radius: 0} }

// Dim returns the dimensionality of the sphere.
func (s Sphere) Dim() int { return len(s.Center) }

// IsPoint reports whether the sphere has zero radius.
func (s Sphere) IsPoint() bool { return s.Radius == 0 }

// Clone returns a deep copy of s.
func (s Sphere) Clone() Sphere {
	return Sphere{Center: vec.Clone(s.Center), Radius: s.Radius}
}

// Contains reports whether point p lies inside or on s.
func (s Sphere) Contains(p []float64) bool {
	return vec.Dist2(s.Center, p) <= s.Radius*s.Radius
}

// ContainsSphere reports whether t lies entirely inside or on s.
func (s Sphere) ContainsSphere(t Sphere) bool {
	return vec.Dist(s.Center, t.Center)+t.Radius <= s.Radius
}

// String implements fmt.Stringer.
func (s Sphere) String() string {
	return fmt.Sprintf("Sphere(c=%v, r=%g)", s.Center, s.Radius)
}

// Validate returns an error if the sphere is malformed (empty center,
// negative or non-finite radius, non-finite coordinates).
func (s Sphere) Validate() error {
	if len(s.Center) == 0 {
		return fmt.Errorf("geom: sphere has empty center")
	}
	if !vec.IsFinite(s.Center) {
		return fmt.Errorf("geom: sphere center has non-finite coordinate: %v", s.Center)
	}
	if s.Radius < 0 || math.IsNaN(s.Radius) || math.IsInf(s.Radius, 0) {
		return fmt.Errorf("geom: sphere has invalid radius %v", s.Radius)
	}
	return nil
}

// MaxDist returns the maximum distance between a point of a and a point of
// b: Dist(ca,cb) + ra + rb (Eq. 3).
func MaxDist(a, b Sphere) float64 {
	return vec.Dist(a.Center, b.Center) + a.Radius + b.Radius
}

// MinDist returns the minimum distance between a point of a and a point of
// b: Dist(ca,cb) − ra − rb when the spheres are disjoint and 0 otherwise
// (Eq. 4).
func MinDist(a, b Sphere) float64 {
	d := vec.Dist(a.Center, b.Center) - a.Radius - b.Radius
	if d > 0 {
		return d
	}
	return 0
}

// MinDistPoint returns the minimum distance between sphere s and point p.
func MinDistPoint(s Sphere, p []float64) float64 {
	d := vec.Dist(s.Center, p) - s.Radius
	if d > 0 {
		return d
	}
	return 0
}

// MaxDistPoint returns the maximum distance between sphere s and point p.
func MaxDistPoint(s Sphere, p []float64) float64 {
	return vec.Dist(s.Center, p) + s.Radius
}

// Overlap reports whether a and b overlap: Dist(ca,cb) ≤ ra + rb
// (Section 2.1). Tangent spheres count as overlapping, matching Lemma 1.
func Overlap(a, b Sphere) bool {
	rs := a.Radius + b.Radius
	return vec.Dist2(a.Center, b.Center) <= rs*rs
}

// MBR returns the minimum bounding hyperrectangle of s.
func (s Sphere) MBR() Rect {
	d := s.Dim()
	lo := make([]float64, d)
	hi := make([]float64, d)
	for i, c := range s.Center {
		lo[i] = c - s.Radius
		hi[i] = c + s.Radius
	}
	return Rect{Lo: lo, Hi: hi}
}
