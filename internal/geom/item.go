package geom

// Item is a hypersphere labelled with a caller-assigned identifier — the
// unit stored in indexes (SS-tree, M-tree) and returned from queries.
type Item struct {
	Sphere Sphere
	ID     int
}
