package geom

import (
	"math"
	"math/rand"
	"testing"

	"hyperdom/internal/vec"
)

func TestUnionRect(t *testing.T) {
	a := NewRect([]float64{0, 0}, []float64{2, 1})
	b := NewRect([]float64{-1, 0.5}, []float64{1, 3})
	u := UnionRect(a, b)
	if !vec.Equal(u.Lo, []float64{-1, 0}) || !vec.Equal(u.Hi, []float64{2, 3}) {
		t.Errorf("UnionRect = %v", u)
	}
	// In-place variant must agree.
	c := a.Clone()
	UnionRectInto(&c, b)
	if !vec.Equal(c.Lo, u.Lo) || !vec.Equal(c.Hi, u.Hi) {
		t.Errorf("UnionRectInto = %v", c)
	}
	// Union with itself is identity.
	self := UnionRect(a, a)
	if !vec.Equal(self.Lo, a.Lo) || !vec.Equal(self.Hi, a.Hi) {
		t.Error("UnionRect(a,a) != a")
	}
}

func TestUnionRectPanicsOnMixedDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	UnionRect(NewRect([]float64{0}, []float64{1}), NewRect([]float64{0, 0}, []float64{1, 1}))
}

func TestVolume(t *testing.T) {
	r := NewRect([]float64{0, 0, 0}, []float64{2, 3, 4})
	if r.Volume() != 24 {
		t.Errorf("Volume = %v", r.Volume())
	}
	flat := NewRect([]float64{0, 0}, []float64{5, 0})
	if flat.Volume() != 0 {
		t.Errorf("degenerate Volume = %v", flat.Volume())
	}
}

func TestMinDistRectSphere(t *testing.T) {
	r := NewRect([]float64{0, 0}, []float64{2, 2})
	cases := []struct {
		s    Sphere
		want float64
	}{
		{NewSphere([]float64{5, 2}, 1), 2},                  // to the right, shrunk by radius
		{NewSphere([]float64{1, 1}, 0.5), 0},                // center inside
		{NewSphere([]float64{3, 3}, 0.1), math.Sqrt2 - 0.1}, // corner case
		{NewSphere([]float64{3, 3}, 5), 0},                  // engulfing sphere
		{NewSphere([]float64{2, 1}, 0), 0},                  // on the boundary
	}
	for i, c := range cases {
		if got := MinDistRectSphere(r, c.s); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: MinDistRectSphere = %v, want %v", i, got, c.want)
		}
	}
}

// Property: MinDistRectSphere lower-bounds sampled point-pair distances
// and is exact against a dense boundary scan in 2D.
func TestMinDistRectSphereBracket(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 2000; trial++ {
		d := 1 + rng.Intn(5)
		lo := make([]float64, d)
		hi := make([]float64, d)
		for i := range lo {
			a, b := rng.NormFloat64()*10, rng.NormFloat64()*10
			if a > b {
				a, b = b, a
			}
			lo[i], hi[i] = a, b
		}
		r := NewRect(lo, hi)
		c := make([]float64, d)
		for i := range c {
			c[i] = rng.NormFloat64() * 15
		}
		s := NewSphere(c, rng.Float64()*3)
		bound := MinDistRectSphere(r, s)
		for sample := 0; sample < 20; sample++ {
			p := make([]float64, d)
			for i := range p {
				p[i] = lo[i] + rng.Float64()*(hi[i]-lo[i])
			}
			q := randPointIn(rng, s)
			if vec.Dist(p, q) < bound-1e-9 {
				t.Fatalf("trial %d: sampled pair closer (%v) than bound (%v)", trial, vec.Dist(p, q), bound)
			}
		}
	}
}
