package geom

import (
	"fmt"

	"hyperdom/internal/vec"
)

// Rect is a closed axis-aligned d-dimensional hyperrectangle [Lo, Hi].
type Rect struct {
	Lo []float64
	Hi []float64
}

// NewRect returns the rectangle [lo, hi]. It panics if the bounds are
// malformed (differing lengths or lo[i] > hi[i]).
func NewRect(lo, hi []float64) Rect {
	if len(lo) != len(hi) || len(lo) == 0 {
		panic(fmt.Sprintf("geom: NewRect with bounds of length %d and %d", len(lo), len(hi)))
	}
	for i := range lo {
		if lo[i] > hi[i] {
			panic(fmt.Sprintf("geom: NewRect with lo[%d]=%g > hi[%d]=%g", i, lo[i], i, hi[i]))
		}
	}
	return Rect{Lo: lo, Hi: hi}
}

// Dim returns the dimensionality of the rectangle.
func (r Rect) Dim() int { return len(r.Lo) }

// Clone returns a deep copy of r.
func (r Rect) Clone() Rect {
	return Rect{Lo: vec.Clone(r.Lo), Hi: vec.Clone(r.Hi)}
}

// Center returns the center point of r as a new slice.
func (r Rect) Center() []float64 {
	out := make([]float64, r.Dim())
	for i := range out {
		out[i] = (r.Lo[i] + r.Hi[i]) / 2
	}
	return out
}

// Contains reports whether point p lies inside or on r.
func (r Rect) Contains(p []float64) bool {
	if len(p) != r.Dim() {
		return false
	}
	for i, pi := range p {
		if pi < r.Lo[i] || pi > r.Hi[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	if r.Dim() != s.Dim() {
		return false
	}
	for i := range r.Lo {
		if r.Hi[i] < s.Lo[i] || s.Hi[i] < r.Lo[i] {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("Rect(lo=%v, hi=%v)", r.Lo, r.Hi)
}

// MinDistRect returns the minimum distance between a point of a and a point
// of b, 0 if they intersect.
func MinDistRect(a, b Rect) float64 {
	var s float64
	for i := range a.Lo {
		var d float64
		switch {
		case a.Hi[i] < b.Lo[i]:
			d = b.Lo[i] - a.Hi[i]
		case b.Hi[i] < a.Lo[i]:
			d = a.Lo[i] - b.Hi[i]
		}
		s += d * d
	}
	return sqrt(s)
}

// MaxDistRect returns the maximum distance between a point of a and a point
// of b.
func MaxDistRect(a, b Rect) float64 {
	var s float64
	for i := range a.Lo {
		d := maxf(b.Hi[i]-a.Lo[i], a.Hi[i]-b.Lo[i])
		s += d * d
	}
	return sqrt(s)
}

// UnionRect returns the smallest rectangle containing both a and b.
func UnionRect(a, b Rect) Rect {
	d := a.Dim()
	if b.Dim() != d {
		panic("geom: UnionRect of rectangles with mixed dimensionality")
	}
	lo := make([]float64, d)
	hi := make([]float64, d)
	for i := 0; i < d; i++ {
		lo[i] = a.Lo[i]
		if b.Lo[i] < lo[i] {
			lo[i] = b.Lo[i]
		}
		hi[i] = a.Hi[i]
		if b.Hi[i] > hi[i] {
			hi[i] = b.Hi[i]
		}
	}
	return Rect{Lo: lo, Hi: hi}
}

// UnionRectInto grows dst in place to contain r. dst and r must share one
// dimensionality.
func UnionRectInto(dst *Rect, r Rect) {
	for i := range dst.Lo {
		if r.Lo[i] < dst.Lo[i] {
			dst.Lo[i] = r.Lo[i]
		}
		if r.Hi[i] > dst.Hi[i] {
			dst.Hi[i] = r.Hi[i]
		}
	}
}

// Volume returns the d-dimensional volume of r (the product of its
// extents). Degenerate rectangles have volume 0.
func (r Rect) Volume() float64 {
	v := 1.0
	for i := range r.Lo {
		v *= r.Hi[i] - r.Lo[i]
	}
	return v
}

// MinDistRectSphere returns the minimum distance between a point of the
// rectangle and a point of the sphere (0 when they intersect).
func MinDistRectSphere(r Rect, s Sphere) float64 {
	var sum float64
	for i, c := range s.Center {
		var d float64
		switch {
		case c < r.Lo[i]:
			d = r.Lo[i] - c
		case c > r.Hi[i]:
			d = c - r.Hi[i]
		}
		sum += d * d
	}
	dist := sqrt(sum) - s.Radius
	if dist > 0 {
		return dist
	}
	return 0
}

// Corners returns all 2^d corner points of r. It is exponential in the
// dimensionality and exists to support the corner-based decision criterion
// and exhaustive low-dimensional tests.
func (r Rect) Corners() [][]float64 {
	d := r.Dim()
	if d > 20 {
		panic("geom: Corners called on rectangle with more than 20 dimensions")
	}
	n := 1 << uint(d)
	out := make([][]float64, n)
	for m := 0; m < n; m++ {
		p := make([]float64, d)
		for i := 0; i < d; i++ {
			if m&(1<<uint(i)) != 0 {
				p[i] = r.Hi[i]
			} else {
				p[i] = r.Lo[i]
			}
		}
		out[m] = p
	}
	return out
}
