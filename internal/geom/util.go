package geom

import "math"

func sqrt(x float64) float64 { return math.Sqrt(x) }

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
