package workload

import (
	"testing"

	"hyperdom/internal/dataset"
	"hyperdom/internal/dominance"
)

func TestVerdictsParallelMatchesSerial(t *testing.T) {
	ps := dataset.SyntheticCenters(400, 4, dataset.Gaussian, 1)
	items := dataset.Spheres(ps, dataset.GaussianRadii(20), 2)
	w := Dominance(items, 5000, 3)
	want := Verdicts(dominance.Hyperbola{}, w)
	for _, workers := range []int{0, 1, 2, 7, 64, 10000} {
		got := VerdictsParallel(dominance.Hyperbola{}, w, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: length %d", workers, len(got))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: verdict %d differs", workers, i)
			}
		}
	}
}

func TestVerdictsParallelEmpty(t *testing.T) {
	if got := VerdictsParallel(dominance.Hyperbola{}, nil, 4); len(got) != 0 {
		t.Errorf("empty workload returned %d verdicts", len(got))
	}
}
