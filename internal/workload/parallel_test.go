package workload

import (
	"testing"

	"hyperdom/internal/dataset"
	"hyperdom/internal/dominance"
)

func TestVerdictsParallelMatchesSerial(t *testing.T) {
	ps := dataset.SyntheticCenters(400, 4, dataset.Gaussian, 1)
	items := dataset.Spheres(ps, dataset.GaussianRadii(20), 2)
	w := Dominance(items, 5000, 3)
	want := Verdicts(dominance.Hyperbola{}, w)
	for _, workers := range []int{0, 1, 2, 7, 64, 10000} {
		got := VerdictsParallel(dominance.Hyperbola{}, w, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: length %d", workers, len(got))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: verdict %d differs", workers, i)
			}
		}
	}
}

func TestVerdictsParallelEmpty(t *testing.T) {
	if got := VerdictsParallel(dominance.Hyperbola{}, nil, 4); len(got) != 0 {
		t.Errorf("empty workload returned %d verdicts", len(got))
	}
}

// TestVerdictsParallelRepeatedPairs drives the prepared-pair amortization:
// a workload where each (A, B) pair recurs with many different queries must
// still produce verdicts identical to the serial per-triple path, in the
// caller's original order.
func TestVerdictsParallelRepeatedPairs(t *testing.T) {
	ps := dataset.SyntheticCenters(50, 3, dataset.Gaussian, 4)
	items := dataset.Spheres(ps, dataset.GaussianRadii(20), 5)
	base := Dominance(items, 200, 6)
	// 30 queries per pair, interleaved so groups are scattered before the
	// kernel's sort makes them adjacent.
	var w []Triple
	for q := 0; q < 30; q++ {
		for _, tr := range base[:40] {
			w = append(w, Triple{A: tr.A, B: tr.B, Q: base[q].Q})
		}
	}
	want := Verdicts(dominance.Hyperbola{}, w)
	for _, workers := range []int{1, 3, 16} {
		got := VerdictsParallel(dominance.Hyperbola{}, w, workers)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: verdict %d differs from serial", workers, i)
			}
		}
	}
}

// TestVerdictsParallelNonHyperbola keeps the generic criterion path honest:
// it must match the serial evaluator too.
func TestVerdictsParallelNonHyperbola(t *testing.T) {
	ps := dataset.SyntheticCenters(100, 3, dataset.Gaussian, 7)
	items := dataset.Spheres(ps, dataset.GaussianRadii(20), 8)
	w := Dominance(items, 2000, 9)
	for _, crit := range []dominance.Criterion{dominance.MinMax{}, dominance.MBR{}} {
		want := Verdicts(crit, w)
		got := VerdictsParallel(crit, w, 4)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: verdict %d differs from serial", crit.Name(), i)
			}
		}
	}
}
