package workload

import (
	"hyperdom/internal/dominance"
	"hyperdom/internal/obs"
)

// Worker/batch-level observability counters (ISSUE 2). The per-triple hot
// loops stay untouched: every counter here is fed with one atomic add per
// batch (or per worker chunk), amortizing the accounting over thousands of
// criterion calls. Per-criterion invocation totals are published under
// "workload.verdicts.<criterion name>".
var (
	obsTriples       = obs.New("workload.triples_evaluated")
	obsSerialBatches = obs.New("workload.batches_serial")
	obsParBatches    = obs.New("workload.batches_parallel")
	obsWorkers       = obs.New("workload.workers_spawned")
	obsPrepGroups    = obs.New("workload.prepared_groups")
	obsPrepShared    = obs.New("workload.prepared_shared_triples")
	obsTimingRuns    = obs.New("workload.timing_runs")
	obsShadowBatches = obs.New("workload.batches_shadow")
)

// Batch- and worker-level latency histograms (ISSUE 3). One sample per
// whole batch and one per worker chunk — never per triple, so the
// accounting cost stays amortized over thousands of criterion calls.
var (
	histSerialBatch = obs.NewHistogram("workload.batch_latency", `path="serial"`)
	histParBatch    = obs.NewHistogram("workload.batch_latency", `path="parallel"`)
	histChunk       = obs.NewHistogram("workload.chunk_latency", `path="generic"`)
	histPrepChunk   = obs.NewHistogram("workload.chunk_latency", `path="prepared"`)
	histShadowBatch = obs.NewHistogram("workload.batch_latency", `path="shadow"`)
)

// tallyBatch records one evaluated workload batch for the given criterion.
func tallyBatch(c dominance.Criterion, n int, batches *obs.Counter) {
	if !obs.On() || n == 0 {
		return
	}
	batches.Inc()
	obsTriples.Add(uint64(n))
	obs.GetOrNew("workload.verdicts." + c.Name()).Add(uint64(n))
}
