package workload

import (
	"math/rand"
	"reflect"
	"testing"

	"hyperdom/internal/dominance"
	"hyperdom/internal/geom"
	"hyperdom/internal/knn"
	"hyperdom/internal/sstree"
)

func TestKNNBatchMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	d := 4
	items := make([]geom.Item, 1200)
	for i := range items {
		c := make([]float64, d)
		for j := range c {
			c[j] = rng.NormFloat64() * 15
		}
		items[i] = geom.Item{ID: i, Sphere: geom.NewSphere(c, rng.Float64()*2)}
	}
	ss := sstree.New(d)
	for _, it := range items {
		ss.Insert(it)
	}
	ss.Freeze()
	idx := knn.WrapSSTree(ss)
	queries := KNNQueries(items, 30, 7)
	got := KNNBatch(idx, queries, 6, 3, dominance.Hyperbola{}, knn.HS)
	for i, sq := range queries {
		want := knn.Search(idx, sq, 6, dominance.Hyperbola{}, knn.HS)
		if !reflect.DeepEqual(got[i].Items, want.Items) {
			t.Fatalf("query %d: batch result differs from serial search", i)
		}
	}
}

func TestKNNQueriesDeterministic(t *testing.T) {
	items := []geom.Item{
		{ID: 1, Sphere: geom.NewSphere([]float64{1, 2}, 1)},
		{ID: 2, Sphere: geom.NewSphere([]float64{3, 4}, 2)},
	}
	a := KNNQueries(items, 10, 42)
	b := KNNQueries(items, 10, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different query workloads")
	}
}
