package workload

import (
	"testing"
	"time"

	"hyperdom/internal/dataset"
	"hyperdom/internal/dominance"
)

func TestDominanceWorkload(t *testing.T) {
	ps := dataset.SyntheticCenters(500, 3, dataset.Gaussian, 1)
	items := dataset.Spheres(ps, dataset.GaussianRadii(10), 2)
	w := Dominance(items, 1000, 3)
	if len(w) != 1000 {
		t.Fatalf("workload size %d", len(w))
	}
	for _, tr := range w {
		if tr.A.Dim() != 3 || tr.B.Dim() != 3 || tr.Q.Dim() != 3 {
			t.Fatal("triple with wrong dimensionality")
		}
	}
	// Deterministic given the seed.
	w2 := Dominance(items, 1000, 3)
	for i := range w {
		if &w[i].A.Center[0] != &w2[i].A.Center[0] {
			// Sphere slices are shared with items; identical selection
			// means identical backing arrays.
			t.Fatal("same seed selected different triples")
		}
	}
}

func TestVerdictsAndCompare(t *testing.T) {
	ps := dataset.SyntheticCenters(500, 3, dataset.Gaussian, 1)
	items := dataset.Spheres(ps, dataset.GaussianRadii(30), 2)
	w := Dominance(items, 2000, 3)
	truth := Verdicts(dominance.Hyperbola{}, w)
	for _, crit := range dominance.All() {
		acc := Compare(Verdicts(crit, w), truth)
		if acc.TP+acc.FP+acc.TN+acc.FN != len(w) {
			t.Fatalf("%s: tallies do not sum to workload size", crit.Name())
		}
		if crit.Correct() && acc.Precision() != 1 {
			t.Errorf("%s claims correctness but precision = %v", crit.Name(), acc.Precision())
		}
		if crit.Sound() && acc.Recall() != 1 {
			t.Errorf("%s claims soundness but recall = %v", crit.Name(), acc.Recall())
		}
	}
}

func TestAccuracyEdgeCases(t *testing.T) {
	a := Accuracy{TP: 0, FP: 0, FN: 0, TN: 10}
	if a.Precision() != 1 || a.Recall() != 1 {
		t.Error("all-negative workload should score 100/100 by convention")
	}
	b := Accuracy{TP: 3, FP: 1, FN: 2}
	if b.Precision() != 0.75 {
		t.Errorf("precision = %v", b.Precision())
	}
	if b.Recall() != 0.6 {
		t.Errorf("recall = %v", b.Recall())
	}
}

func TestComparePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	Compare([]bool{true}, []bool{true, false})
}

func TestTimePerOp(t *testing.T) {
	ps := dataset.SyntheticCenters(100, 3, dataset.Gaussian, 1)
	items := dataset.Spheres(ps, dataset.GaussianRadii(10), 2)
	w := Dominance(items, 100, 3)
	per := TimePerOp(dominance.MinMax{}, w, 5*time.Millisecond)
	if per <= 0 {
		t.Errorf("TimePerOp = %v", per)
	}
	if per > time.Millisecond {
		t.Errorf("TimePerOp = %v for MinMax; suspiciously slow", per)
	}
	if TimePerOp(dominance.MinMax{}, nil, time.Millisecond) != 0 {
		t.Error("empty workload should time to 0")
	}
}

func TestDominancePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty dataset")
		}
	}()
	Dominance(nil, 10, 1)
}
