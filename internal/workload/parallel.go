package workload

import (
	"runtime"
	"sync"

	"hyperdom/internal/dominance"
)

// VerdictsParallel evaluates the criterion over the workload with a pool
// of goroutines and returns the same slice Verdicts would. All criteria in
// this library are stateless and safe for concurrent use, so the batch
// parallelises embarrassingly; workers ≤ 0 selects GOMAXPROCS.
//
// Use it for large ground-truth computations (millions of triples); the
// figure runners keep the serial path so their timings stay comparable to
// the paper's single-threaded measurements.
func VerdictsParallel(c dominance.Criterion, w []Triple, workers int) []bool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(w) {
		workers = len(w)
	}
	out := make([]bool, len(w))
	if len(w) == 0 {
		return out
	}
	var wg sync.WaitGroup
	chunk := (len(w) + workers - 1) / workers
	for start := 0; start < len(w); start += chunk {
		end := start + chunk
		if end > len(w) {
			end = len(w)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = c.Dominates(w[i].A, w[i].B, w[i].Q)
			}
		}(start, end)
	}
	wg.Wait()
	return out
}
