package workload

import (
	"runtime"
	"sort"
	"sync"

	"hyperdom/internal/dominance"
	"hyperdom/internal/geom"
	"hyperdom/internal/obs"
)

// VerdictsParallel evaluates the criterion over the workload with a pool
// of goroutines and returns the same slice Verdicts would. All criteria in
// this library are stateless and safe for concurrent use, so the batch
// parallelises embarrassingly; workers ≤ 0 selects GOMAXPROCS.
//
// With the Hyperbola criterion the batch goes through the dominance
// kernel's prepared-pair path: triples are processed in (Sa, Sb)-sorted
// order so that consecutive equal pairs share one PreparedPair and pay only
// the per-query half of the transform. Workloads with repeated pairs — a
// moving query probed against fixed object pairs, ground-truth matrices, a
// pruning pair swept over a query batch — amortize the pair work across the
// whole group; fully random workloads pay one sort pass and prepare per
// triple, which costs the same transform the per-triple criterion would
// have run anyway. Verdicts are bit-identical to the serial path's.
//
// Use it for large ground-truth computations (millions of triples); the
// figure runners keep the serial path so their timings stay comparable to
// the paper's single-threaded measurements.
func VerdictsParallel(c dominance.Criterion, w []Triple, workers int) []bool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(w) {
		workers = len(w)
	}
	out := make([]bool, len(w))
	if len(w) == 0 {
		return out
	}
	sw := obs.StartTimer()
	tallyBatch(c, len(w), obsParBatches)
	if obs.On() {
		obsWorkers.Add(uint64(workers))
	}
	if _, ok := c.(dominance.Hyperbola); ok {
		verdictsPrepared(w, out, workers)
		sw.Stop(histParBatch)
		return out
	}
	var wg sync.WaitGroup
	chunk := (len(w) + workers - 1) / workers
	for start := 0; start < len(w); start += chunk {
		end := start + chunk
		if end > len(w) {
			end = len(w)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			csw := obs.StartTimer()
			for i := lo; i < hi; i++ {
				out[i] = c.Dominates(w[i].A, w[i].B, w[i].Q)
			}
			csw.Stop(histChunk)
		}(start, end)
	}
	wg.Wait()
	sw.Stop(histParBatch)
	return out
}

// verdictsPrepared is the Hyperbola fast path: evaluate in (A, B)-sorted
// order, re-preparing the pair kernel only at group boundaries. A group
// that straddles a worker-chunk boundary is prepared once more by the
// second worker — correct, and cheaper than coordinating.
func verdictsPrepared(w []Triple, out []bool, workers int) {
	order := make([]int, len(w))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return comparePairs(w[order[a]], w[order[b]]) < 0
	})
	var wg sync.WaitGroup
	chunk := (len(w) + workers - 1) / workers
	for start := 0; start < len(w); start += chunk {
		end := start + chunk
		if end > len(w) {
			end = len(w)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			csw := obs.StartTimer()
			var pp dominance.PreparedPair
			var groups uint64
			for s := lo; s < hi; s++ {
				i := order[s]
				if s == lo || comparePairs(w[order[s-1]], w[i]) != 0 {
					pp.Reset(w[i].A, w[i].B)
					groups++
				}
				out[i] = pp.Dominates(w[i].Q)
			}
			// One batch of atomic adds per worker chunk: how many distinct
			// pair groups it prepared and how many triples rode an
			// already-prepared pair, plus the kernel's own tallies.
			if obs.On() {
				obsPrepGroups.Add(groups)
				obsPrepShared.Add(uint64(hi-lo) - groups)
			}
			pp.FlushObs()
			csw.Stop(histPrepChunk)
		}(start, end)
	}
	wg.Wait()
}

// comparePairs orders triples by their (A, B) pair so equal pairs become
// adjacent; the Q sphere is deliberately ignored.
func comparePairs(x, y Triple) int {
	if c := compareSpheres(x.A, y.A); c != 0 {
		return c
	}
	return compareSpheres(x.B, y.B)
}

// compareSpheres is a total lexicographic order on (dimension, center,
// radius). Equality means the spheres are numerically identical, which is
// exactly the condition under which a PreparedPair may be shared.
func compareSpheres(a, b geom.Sphere) int {
	if len(a.Center) != len(b.Center) {
		if len(a.Center) < len(b.Center) {
			return -1
		}
		return 1
	}
	for i := range a.Center {
		if a.Center[i] != b.Center[i] {
			if a.Center[i] < b.Center[i] {
				return -1
			}
			return 1
		}
	}
	if a.Radius != b.Radius {
		if a.Radius < b.Radius {
			return -1
		}
		return 1
	}
	return 0
}
