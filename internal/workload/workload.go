// Package workload builds the measurement workloads of Section 7: batches
// of random dominance queries over a dataset, together with the precision/
// recall and timing machinery the paper's figures report.
//
// Following the paper, each dominance workload contains random triples
// (Sa, Sb, Sq) drawn from the dataset, the results of the Hyperbola
// criterion serve as ground truth (it is the only correct and sound
// method), precision is TP/(TP+FP) and recall is TP/(TP+FN).
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"hyperdom/internal/dominance"
	"hyperdom/internal/geom"
	"hyperdom/internal/obs"
)

// Triple is one dominance query instance.
type Triple struct {
	A, B, Q geom.Sphere
}

// Dominance draws n random query triples from the items, matching the
// paper's "10,000 random queries each involving three hyperspheres selected
// from the dataset randomly".
func Dominance(items []geom.Item, n int, seed int64) []Triple {
	if len(items) == 0 {
		panic("workload: Dominance over empty dataset")
	}
	rng := rand.New(rand.NewSource(seed))
	w := make([]Triple, n)
	for i := range w {
		w[i] = Triple{
			A: items[rng.Intn(len(items))].Sphere,
			B: items[rng.Intn(len(items))].Sphere,
			Q: items[rng.Intn(len(items))].Sphere,
		}
	}
	return w
}

// Verdicts evaluates the criterion over the whole workload.
func Verdicts(c dominance.Criterion, w []Triple) []bool {
	sw := obs.StartTimer()
	out := make([]bool, len(w))
	for i, t := range w {
		out[i] = c.Dominates(t.A, t.B, t.Q)
	}
	tallyBatch(c, len(w), obsSerialBatches)
	sw.Stop(histSerialBatch)
	return out
}

// Accuracy holds the classification quality of a criterion against the
// ground truth over one workload.
type Accuracy struct {
	TP, FP, TN, FN int
}

// Precision returns TP/(TP+FP); 1 when the criterion returned no trues
// (matching the convention that a correct criterion scores 100%).
func (a Accuracy) Precision() float64 {
	if a.TP+a.FP == 0 {
		return 1
	}
	return float64(a.TP) / float64(a.TP+a.FP)
}

// Recall returns TP/(TP+FN); 1 when the truth contains no trues.
func (a Accuracy) Recall() float64 {
	if a.TP+a.FN == 0 {
		return 1
	}
	return float64(a.TP) / float64(a.TP+a.FN)
}

// Compare tallies got against truth. It panics if the lengths differ.
func Compare(got, truth []bool) Accuracy {
	if len(got) != len(truth) {
		panic(fmt.Sprintf("workload: Compare of %d verdicts against %d truths", len(got), len(truth)))
	}
	var a Accuracy
	for i, g := range got {
		switch {
		case g && truth[i]:
			a.TP++
		case g && !truth[i]:
			a.FP++
		case !g && truth[i]:
			a.FN++
		default:
			a.TN++
		}
	}
	return a
}

// TimePerOp measures the criterion's average time per dominance query over
// the workload, repeating the whole batch until at least minDuration has
// elapsed (one batch minimum).
func TimePerOp(c dominance.Criterion, w []Triple, minDuration time.Duration) time.Duration {
	if len(w) == 0 {
		return 0
	}
	var ops int
	var sink bool
	start := time.Now()
	for time.Since(start) < minDuration || ops == 0 {
		for _, t := range w {
			sink = c.Dominates(t.A, t.B, t.Q) != sink
		}
		ops += len(w)
	}
	elapsed := time.Since(start)
	_ = sink
	perOp := elapsed / time.Duration(ops)
	if obs.On() {
		obsTimingRuns.Inc()
		obsTriples.Add(uint64(ops))
		obs.GetOrNew("workload.verdicts." + c.Name()).Add(uint64(ops))
		// One sample per timing run: the measured per-query latency of the
		// criterion, labeled so the exposition splits them apart.
		obs.GetOrNewHistogram("workload.criterion_latency",
			`criterion="`+c.Name()+`"`).Record(perOp.Nanoseconds())
	}
	return perOp
}
