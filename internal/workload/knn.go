package workload

import (
	"math/rand"

	"hyperdom/internal/dominance"
	"hyperdom/internal/engine"
	"hyperdom/internal/geom"
	"hyperdom/internal/knn"
	"hyperdom/internal/obs"
)

// kNN-workload observability, one add per batch like the dominance
// counters above.
var (
	obsKNNBatches = obs.New("workload.knn_batches")
	obsKNNQueries = obs.New("workload.knn_queries")
)

// KNNQueries draws n random query spheres from the dataset, the query
// model of the paper's kNN experiments (Section 7.2: query objects are
// dataset members).
func KNNQueries(items []geom.Item, n int, seed int64) []geom.Sphere {
	if len(items) == 0 {
		panic("workload: KNNQueries over empty dataset")
	}
	rng := rand.New(rand.NewSource(seed))
	qs := make([]geom.Sphere, n)
	for i := range qs {
		qs[i] = items[rng.Intn(len(items))].Sphere
	}
	return qs
}

// KNNBatch answers the query workload through a parallel batch engine over
// the index and returns the per-query results in query order. workers ≤ 0
// selects GOMAXPROCS. Freeze the substrate first to route the workers over
// the packed snapshot. Results are identical to serial knn.Search calls —
// the engine schedules, it does not approximate.
func KNNBatch(idx knn.Index, queries []geom.Sphere, k, workers int, crit dominance.Criterion, algo knn.Algorithm) []knn.Result {
	e := engine.New(idx, engine.WithWorkers(workers), engine.WithCriterion(crit), engine.WithAlgorithm(algo))
	defer e.Close()
	if obs.On() {
		obsKNNBatches.Inc()
		obsKNNQueries.Add(uint64(len(queries)))
	}
	return e.SearchBatch(queries, k)
}
