package workload

import (
	"strings"
	"testing"

	"hyperdom/internal/dataset"
	"hyperdom/internal/dominance"
	"hyperdom/internal/obs"
)

// shadowTestWorkload is the seed workload for the Table 1 expectations:
// Section 7-shaped random triples over a Gaussian dataset.
func shadowTestWorkload() []Triple {
	ps := dataset.SyntheticCenters(800, 3, dataset.Gaussian, 5)
	items := dataset.Spheres(ps, dataset.GaussianRadii(11), 2)
	return Dominance(items, 6000, 6)
}

// TestShadowVerdicts checks the batch audit: verdicts are exactly
// Hyperbola's, the report totals match a direct per-criterion recount, and
// its polarity follows Table 1 — correct criteria (MinMax, MBR, GP) report
// zero false positives, the sound one (Trigonometric) zero missed prunes,
// with real disagreements present on both sides.
func TestShadowVerdicts(t *testing.T) {
	w := shadowTestWorkload()
	got, rep := ShadowVerdicts(w)

	truth := Verdicts(dominance.Hyperbola{}, w)
	for i := range truth {
		if got[i] != truth[i] {
			t.Fatalf("ShadowVerdicts diverged from Hyperbola at triple %d", i)
		}
	}
	if rep.Checks != len(w) {
		t.Errorf("report Checks = %d, want %d", rep.Checks, len(w))
	}

	// Recount each criterion's disagreements directly.
	for _, c := range []dominance.Criterion{
		dominance.MinMax{}, dominance.MBR{}, dominance.GP{}, dominance.Trigonometric{},
	} {
		verd := Verdicts(c, w)
		missed, falsePos := 0, 0
		for i := range verd {
			switch {
			case truth[i] && !verd[i]:
				missed++
			case !truth[i] && verd[i]:
				falsePos++
			}
		}
		name := c.Name()
		if rep.Missed[name] != missed {
			t.Errorf("%s: report missed=%d, recount %d", name, rep.Missed[name], missed)
		}
		if rep.FalsePositives[name] != falsePos {
			t.Errorf("%s: report false_positives=%d, recount %d", name, rep.FalsePositives[name], falsePos)
		}
	}

	// Table 1 polarity on the seed workload.
	for _, name := range []string{"MinMax", "MBR", "GP"} {
		if rep.FalsePositives[name] != 0 {
			t.Errorf("correct criterion %s reported %d false positives", name, rep.FalsePositives[name])
		}
	}
	if rep.Missed["Trigonometric"] != 0 {
		t.Errorf("sound criterion Trigonometric missed %d prunes", rep.Missed["Trigonometric"])
	}
	if rep.Missed["MinMax"] == 0 {
		t.Error("seed workload produced no MinMax missed prunes; audit has no signal")
	}
}

// TestShadowVerdictsObs checks the batch counters and histogram move with
// the obs gate on.
func TestShadowVerdictsObs(t *testing.T) {
	defer obs.SetEnabled(true)
	obs.SetEnabled(true)
	obs.ResetForTest()

	w := shadowTestWorkload()
	ShadowVerdicts(w)

	snap := obs.Snapshot()
	if got := snap.Get("workload.batches_shadow"); got != 1 {
		t.Errorf("workload.batches_shadow = %d, want 1", got)
	}
	if got := snap.Get("dominance.shadow.checks"); got != uint64(len(w)) {
		t.Errorf("dominance.shadow.checks = %d, want %d", got, len(w))
	}
}

// TestShadowReportFprint spot-checks the printed summary shape.
func TestShadowReportFprint(t *testing.T) {
	_, rep := ShadowVerdicts(shadowTestWorkload())
	var sb strings.Builder
	rep.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"reference: Hyperbola", "MinMax", "Trigonometric", "missed_prunes="} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q:\n%s", want, out)
		}
	}
}
