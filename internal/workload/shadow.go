package workload

import (
	"fmt"
	"io"
	"sort"

	"hyperdom/internal/dominance"
	"hyperdom/internal/obs"
)

// Shadow-evaluation workload support (ISSUE 4): batch-audit a dominance
// workload against Hyperbola and report per-criterion disagreement counts —
// the paper's Table 1 correct/sound distinction measured on data instead of
// proved on paper. A correct criterion must show zero false positives; a
// sound one zero missed prunes.

// ShadowReport aggregates one workload's disagreements per criterion.
type ShadowReport struct {
	// Checks is the number of triples audited.
	Checks int
	// Missed counts triples where Hyperbola proves dominance but the
	// criterion cannot — the unsound side, a pruning opportunity lost.
	Missed map[string]int
	// FalsePositives counts triples where the criterion claims dominance
	// Hyperbola refutes — the incorrect side, which would wrongly discard
	// an answer.
	FalsePositives map[string]int
}

// ShadowVerdicts audits every triple of the workload through
// dominance.ShadowCompare, returning Hyperbola's verdicts (the ground
// truth) and the aggregated disagreement report.
func ShadowVerdicts(w []Triple) ([]bool, ShadowReport) {
	names := dominance.ShadowCompetitorNames()
	rep := ShadowReport{
		Checks:         len(w),
		Missed:         make(map[string]int, len(names)),
		FalsePositives: make(map[string]int, len(names)),
	}
	for _, name := range names {
		rep.Missed[name] = 0
		rep.FalsePositives[name] = 0
	}
	sw := obs.StartTimer()
	out := make([]bool, len(w))
	for i, t := range w {
		hyp, mask := dominance.ShadowCompare(t.A, t.B, t.Q, nil)
		out[i] = hyp
		for bit, name := range names {
			if mask&(1<<bit) == 0 {
				continue
			}
			if hyp {
				rep.Missed[name]++
			} else {
				rep.FalsePositives[name]++
			}
		}
	}
	if obs.On() {
		obsShadowBatches.Inc()
		obsTriples.Add(uint64(len(w)))
	}
	sw.Stop(histShadowBatch)
	return out, rep
}

// Fprint writes the report as a Table 1-shaped summary, criteria in
// audit order.
func (r ShadowReport) Fprint(w io.Writer) {
	names := make([]string, 0, len(r.Missed))
	for name := range r.Missed {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "shadow audit over %d checks (reference: Hyperbola)\n", r.Checks)
	for _, name := range names {
		fmt.Fprintf(w, "  %-14s missed_prunes=%-6d false_positives=%d\n",
			name, r.Missed[name], r.FalsePositives[name])
	}
}
