// Package obs is the process-wide observability substrate: a registry of
// named, allocation-free counters that every layer of the system —
// dominance criteria, kNN traversals, the tree substrates, the workload
// runners — increments on its hot paths, plus snapshot/diff machinery and
// an expvar export so operators (and the benchmark harness) can read the
// work counts the paper's evaluation is stated in.
//
// Design constraints, in order:
//
//  1. A counter update on a hot path must cost one uncontended atomic add —
//     no map lookup, no lock, no allocation. Callers hold *Counter
//     pointers resolved once at package init.
//  2. Counters written from many goroutines must not false-share: each
//     Counter is padded out to its own cache line.
//  3. The whole layer must be switchable off (SetEnabled) so timing runs
//     that want paper-comparable numbers can exclude even the atomic adds;
//     the gate itself is a single atomic load.
//
// The innermost kernels (PreparedPair.Dominates, the traversal heaps) go
// one step further and tally into plain locals owned by one goroutine,
// flushing into the registry counters at amortization points (pool
// put-back, batch end, every 4096th event). See DESIGN.md §8.
package obs

import (
	"expvar"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// cacheLine is the assumed cache-line (and padding) granularity. 64 bytes
// covers x86-64 and most arm64 cores; on 128-byte-line machines two
// counters may share a line, which costs some false sharing but is still
// correct.
const cacheLine = 64

// Counter is a monotonically increasing, cache-line-padded atomic counter.
// All methods are safe for concurrent use and never allocate. Counters are
// created through New/GetOrNew so they appear in snapshots; the zero value
// works but is invisible to the registry.
type Counter struct {
	v atomic.Uint64
	_ [cacheLine - 8]byte
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// enabled gates every instrumentation site. Stored as int32 for a cheap
// relaxed-ish load on all architectures; 1 = on. On by default.
var enabled atomic.Int32

func init() {
	enabled.Store(1)
	expvar.Publish("hyperdom", expvar.Func(func() any { return Snapshot() }))
}

// On reports whether instrumentation is enabled. Hot paths check it once
// per operation (or cache it across a batch) and skip their tallies when
// off.
func On() bool { return enabled.Load() != 0 }

// SetEnabled turns instrumentation on or off process-wide. Counters keep
// their values; disabling only stops new increments at sites that honour
// the gate. Batched tallies already accumulated in scratch space may still
// be flushed.
func SetEnabled(on bool) {
	if on {
		enabled.Store(1)
	} else {
		enabled.Store(0)
	}
}

// registry is the global name → counter table. Registration happens at
// package-init time (or first use, for dynamic names); reads on the hot
// path never touch it.
var registry struct {
	mu sync.RWMutex
	m  map[string]*Counter
}

// New registers and returns a counter under the given name. It panics on a
// duplicate name: two subsystems silently sharing a counter is a bug. Use
// GetOrNew for names built at runtime.
func New(name string) *Counter {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.m == nil {
		registry.m = make(map[string]*Counter)
	}
	if _, dup := registry.m[name]; dup {
		panic(fmt.Sprintf("obs: duplicate counter %q", name))
	}
	c := new(Counter)
	registry.m[name] = c
	return c
}

// GetOrNew returns the counter registered under name, creating it if
// needed. For counter names derived from runtime values (for example a
// criterion name); static instrumentation should use New at init.
func GetOrNew(name string) *Counter {
	registry.mu.RLock()
	c := registry.m[name]
	registry.mu.RUnlock()
	if c != nil {
		return c
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.m == nil {
		registry.m = make(map[string]*Counter)
	}
	if c := registry.m[name]; c != nil {
		return c
	}
	c = new(Counter)
	registry.m[name] = c
	return c
}

// Lookup returns the counter registered under name, or nil.
func Lookup(name string) *Counter {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	return registry.m[name]
}

// Names returns all registered counter names, sorted.
func Names() []string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	out := make([]string, 0, len(registry.m))
	for name := range registry.m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Snap is a point-in-time reading of every registered counter.
type Snap map[string]uint64

// Snapshot reads every registered counter. The reads are individually
// atomic but not mutually consistent — counters may advance between reads;
// for work accounting over a bounded region, take a snapshot before and
// after and Diff them.
func Snapshot() Snap {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	s := make(Snap, len(registry.m))
	for name, c := range registry.m {
		s[name] = c.Load()
	}
	return s
}

// Diff returns s − prev per counter, keeping only the counters that moved.
// Counters absent from prev are treated as 0 there.
func (s Snap) Diff(prev Snap) Snap {
	out := make(Snap)
	for name, v := range s {
		if d := v - prev[name]; d != 0 {
			out[name] = d
		}
	}
	return out
}

// Get returns the named value, or 0 when absent — so prune-rate style
// arithmetic over a Diff needs no existence checks.
func (s Snap) Get(name string) uint64 { return s[name] }

// Fprint writes the snapshot as sorted "name value" lines.
func (s Snap) Fprint(w io.Writer) {
	names := make([]string, 0, len(s))
	for name := range s {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%-48s %d\n", name, s[name])
	}
}
