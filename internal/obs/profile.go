package obs

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux too
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"
)

// StartCPUProfile starts a CPU profile into path and returns the function
// that stops it and closes the file.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile runs a GC (so the profile reflects live objects, not
// garbage) and writes the heap profile to path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Serve starts an HTTP server on addr exposing the full observability mux
// of Handler: /metrics (Prometheus text), /debug/slow (flight recorder),
// /debug/vars (expvar, including the "hyperdom" snapshot) and
// /debug/pprof. It returns the bound address — pass "localhost:0" for an
// ephemeral port. The server runs until the process exits.
func Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go http.Serve(ln, Handler()) //nolint:errcheck — runs for the process lifetime
	return ln.Addr().String(), nil
}

// ProfileFlags is the shared -serve/-pprof/-cpuprofile/-memprofile/-metrics/
// -trace flag set of the benchmark commands.
type ProfileFlags struct {
	CPUProfile     string
	MemProfile     string
	PprofAddr      string
	ServeAddr      string
	Metrics        bool
	TracePath      string
	TraceEvery     int
	TimelinePeriod time.Duration

	boundServe string // the address -serve actually bound (ephemeral ports)
}

// RegisterFlags installs the profiling flags on fs and returns the
// destination struct. Call Start after fs.Parse.
func RegisterFlags(fs *flag.FlagSet) *ProfileFlags {
	pf := &ProfileFlags{}
	fs.StringVar(&pf.CPUProfile, "cpuprofile", "", "write a CPU profile to `file`")
	fs.StringVar(&pf.MemProfile, "memprofile", "", "write a heap profile to `file` on exit")
	fs.StringVar(&pf.PprofAddr, "pprof", "", "serve /debug/pprof and /debug/vars on `addr` (e.g. localhost:6060)")
	fs.StringVar(&pf.ServeAddr, "serve", "",
		"serve /metrics, /debug/slow, /debug/vars and /debug/pprof on `addr`; keeps serving after the run until interrupted")
	fs.BoolVar(&pf.Metrics, "metrics", false,
		"print the obs counter snapshot on exit; in the figure runners this also re-enables counters for each figure and prints a per-figure diff")
	fs.StringVar(&pf.TracePath, "trace", "",
		"export the retained per-query execution traces as Chrome trace_event JSON to `file` on exit (open in chrome://tracing or ui.perfetto.dev)")
	fs.IntVar(&pf.TraceEvery, "trace-every", 16,
		"with -trace or -serve, sample every Nth search for execution tracing")
	fs.DurationVar(&pf.TimelinePeriod, "timeline-period", DefaultTimelinePeriod,
		"with -serve, telemetry timeline tick (window rotation) period")
	return pf
}

// Wanted reports whether any observability output was requested — commands
// that disable counters by default for timing fidelity re-enable them when
// it returns true.
func (pf *ProfileFlags) Wanted() bool {
	return pf.Metrics || pf.PprofAddr != "" || pf.ServeAddr != "" || pf.CPUProfile != "" ||
		pf.MemProfile != "" || pf.TracePath != ""
}

// Start begins whatever profiling the flags request and returns the
// function to run at exit (stop the CPU profile, dump the heap profile,
// print the metrics snapshot). The returned stop is never nil. When -serve
// was given, stop keeps the process alive serving the observability mux
// until SIGINT/SIGTERM, so `cmd -serve addr` stays inspectable after its
// run finishes.
func (pf *ProfileFlags) Start() (stop func(), err error) {
	if pf.TracePath != "" || pf.ServeAddr != "" {
		// -trace wants a file on exit; -serve wants /debug/trace to have
		// content. Either way, turn on 1-in-N execution-trace sampling.
		SetTraceEvery(pf.TraceEvery)
	}
	var stopCPU func() error
	if pf.CPUProfile != "" {
		stopCPU, err = StartCPUProfile(pf.CPUProfile)
		if err != nil {
			return nil, err
		}
	}
	if pf.PprofAddr != "" {
		addr, err := Serve(pf.PprofAddr)
		if err != nil {
			if stopCPU != nil {
				stopCPU() //nolint:errcheck
			}
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "obs: serving pprof + expvar on http://%s/debug/pprof/\n", addr)
	}
	if pf.ServeAddr != "" {
		addr, err := Serve(pf.ServeAddr)
		if err != nil {
			if stopCPU != nil {
				stopCPU() //nolint:errcheck
			}
			return nil, err
		}
		pf.boundServe = addr
		// A served bench process is a live server: run the timeline ticker so
		// /debug/timeline, the _1m windowed families and /debug/health have
		// data while the operator pokes at it.
		period := pf.TimelinePeriod
		if period <= 0 {
			period = DefaultTimelinePeriod
		}
		StartTimeline(period, DefaultTimelineSlots)
		fmt.Fprintf(os.Stderr, "obs: serving metrics on http://%s/metrics\n", addr)
	}
	return func() {
		if stopCPU != nil {
			if err := stopCPU(); err != nil {
				fmt.Fprintf(os.Stderr, "obs: cpu profile: %v\n", err)
			}
		}
		if pf.MemProfile != "" {
			if err := WriteHeapProfile(pf.MemProfile); err != nil {
				fmt.Fprintf(os.Stderr, "obs: heap profile: %v\n", err)
			}
		}
		if pf.Metrics {
			Snapshot().Fprint(os.Stderr)
		}
		if pf.TracePath != "" {
			// Written before the -serve wait so the file exists while the
			// process is still inspectable over HTTP.
			n, err := WriteChromeTraceFile(pf.TracePath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "obs: trace export: %v\n", err)
			} else {
				fmt.Fprintf(os.Stderr, "obs: wrote %d query traces to %s\n", n, pf.TracePath)
			}
		}
		if pf.boundServe != "" {
			fmt.Fprintf(os.Stderr, "obs: still serving on http://%s/metrics — Ctrl-C to exit\n", pf.boundServe)
			ch := make(chan os.Signal, 1)
			signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
			<-ch
		}
	}, nil
}
