package obs

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile starts a CPU profile into path and returns the function
// that stops it and closes the file.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile runs a GC (so the profile reflects live objects, not
// garbage) and writes the heap profile to path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Serve starts an HTTP server on addr exposing net/http/pprof under
// /debug/pprof/ and the expvar counter export (including the "hyperdom"
// snapshot) under /debug/vars. It returns the bound address — pass
// "localhost:0" for an ephemeral port. The server runs until the process
// exits.
func Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go http.Serve(ln, nil) //nolint:errcheck — runs for the process lifetime
	return ln.Addr().String(), nil
}

// ProfileFlags is the shared -pprof/-cpuprofile/-memprofile/-metrics flag
// set of the benchmark commands.
type ProfileFlags struct {
	CPUProfile string
	MemProfile string
	PprofAddr  string
	Metrics    bool
}

// RegisterFlags installs the profiling flags on fs and returns the
// destination struct. Call Start after fs.Parse.
func RegisterFlags(fs *flag.FlagSet) *ProfileFlags {
	pf := &ProfileFlags{}
	fs.StringVar(&pf.CPUProfile, "cpuprofile", "", "write a CPU profile to `file`")
	fs.StringVar(&pf.MemProfile, "memprofile", "", "write a heap profile to `file` on exit")
	fs.StringVar(&pf.PprofAddr, "pprof", "", "serve /debug/pprof and /debug/vars on `addr` (e.g. localhost:6060)")
	fs.BoolVar(&pf.Metrics, "metrics", false, "print the obs counter snapshot on exit")
	return pf
}

// Wanted reports whether any observability output was requested — commands
// that disable counters by default for timing fidelity re-enable them when
// it returns true.
func (pf *ProfileFlags) Wanted() bool {
	return pf.Metrics || pf.PprofAddr != "" || pf.CPUProfile != "" || pf.MemProfile != ""
}

// Start begins whatever profiling the flags request and returns the
// function to run at exit (stop the CPU profile, dump the heap profile,
// print the metrics snapshot). The returned stop is never nil.
func (pf *ProfileFlags) Start() (stop func(), err error) {
	var stopCPU func() error
	if pf.CPUProfile != "" {
		stopCPU, err = StartCPUProfile(pf.CPUProfile)
		if err != nil {
			return nil, err
		}
	}
	if pf.PprofAddr != "" {
		addr, err := Serve(pf.PprofAddr)
		if err != nil {
			if stopCPU != nil {
				stopCPU() //nolint:errcheck
			}
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "obs: serving pprof + expvar on http://%s/debug/pprof/\n", addr)
	}
	return func() {
		if stopCPU != nil {
			if err := stopCPU(); err != nil {
				fmt.Fprintf(os.Stderr, "obs: cpu profile: %v\n", err)
			}
		}
		if pf.MemProfile != "" {
			if err := WriteHeapProfile(pf.MemProfile); err != nil {
				fmt.Fprintf(os.Stderr, "obs: heap profile: %v\n", err)
			}
		}
		if pf.Metrics {
			Snapshot().Fprint(os.Stderr)
		}
	}, nil
}
