package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Sliding-window aggregation (ISSUE 9). Every surface built so far is
// cumulative since process start, so a long-running server cannot answer
// "what is the p99 right now". The time dimension is added in two shapes:
//
//   - Windowed histograms: every registered Histogram carries WinSlots
//     rotating time shards over the same 624-bucket layout as the
//     cumulative counts. The record path gains one atomic load (the
//     current slot index) and one atomic add (the slot bucket) — still
//     lock-free, still allocation-free (test-locked). RotateWindows,
//     driven by the timeline ticker, zeroes the oldest slot and makes it
//     current; WindowSnap merges all slots into an ordinary HistSnap, so
//     windowed quantiles cover the last WinSlots-1..WinSlots rotation
//     periods (nominally 1 minute at the default 10s period).
//
//   - Counter-delta rate rings: RateWindow keeps, per registered counter,
//     a ring of per-tick deltas. Ticked off the same timeline cadence, it
//     turns the monotone counters into windowed per-second rates without
//     touching any hot path — the deltas come from ordinary snapshots.
//
// Rotation is deliberately lossy at the slot boundary: a recorder that
// loaded the slot index just before a rotation lands its sample in the
// previous slot, which is still inside the window. No sample is ever torn
// or double-counted; at most it ages out one period early.

// WinSlots is the number of rotating time shards per histogram window.
// With the timeline's default 10s rotation period the merged window spans
// 50–60 seconds — the "_1m" families of the /metrics exposition.
const WinSlots = 6

// winSlot is one time shard of a histogram window. Buckets are written
// with plain atomic adds by any goroutine currently recording; the
// trailing pad keeps the next slot's first buckets off this slot's last
// cache line.
type winSlot struct {
	counts [histBuckets]atomic.Uint64
	sum    atomic.Uint64
	_      [cacheLine - 8]byte
}

// histWindow is the windowed side of a Histogram: the rotating slots and
// the atomically published index of the slot currently recorded into.
type histWindow struct {
	cur   atomic.Int32
	_     [cacheLine - 4]byte // keep rotations off the recorders' slot lines
	slots [WinSlots]winSlot
}

// recordWindow lands one already-bucketed sample in the current slot.
// Called from RecordShard with the bucket index it just computed, so the
// windowed path shares the histIndex work.
func (w *histWindow) record(bucket int, v int64) {
	s := &w.slots[int(w.cur.Load())%WinSlots]
	s.counts[bucket].Add(1)
	if v > 0 {
		s.sum.Add(uint64(v))
	}
}

// rotate zeroes the oldest slot and publishes it as current. Zeroing
// happens before the publish, so recorders never see a dirty slot; a
// recorder racing the publish writes into the previous slot, which stays
// in the window.
func (w *histWindow) rotate() {
	next := (w.cur.Load() + 1) % WinSlots
	s := &w.slots[next]
	for i := range s.counts {
		s.counts[i].Store(0)
	}
	s.sum.Store(0)
	w.cur.Store(next)
}

// reset zeroes every slot (ResetForTest).
func (w *histWindow) reset() {
	for i := range w.slots {
		s := &w.slots[i]
		for b := range s.counts {
			s.counts[b].Store(0)
		}
		s.sum.Store(0)
	}
	w.cur.Store(0)
}

// WindowSnap merges the window's slots into one HistSnap — the same
// quantile machinery as the cumulative Snap, over only the samples of the
// last WinSlots rotation periods.
func (h *Histogram) WindowSnap() HistSnap {
	s := HistSnap{Name: h.name, Labels: h.labels, Counts: make([]uint64, histBuckets)}
	for si := range h.win.slots {
		slot := &h.win.slots[si]
		for i := range s.Counts {
			c := slot.counts[i].Load()
			s.Counts[i] += c
			s.Count += c
		}
		s.Sum += slot.sum.Load()
	}
	return s
}

// RotateWindow advances this histogram's window by one slot.
func (h *Histogram) RotateWindow() { h.win.rotate() }

// RotateWindows advances every registered histogram's window by one slot.
// The timeline ticker calls this once per period, after snapshotting.
func RotateWindows() {
	for _, h := range Histograms() {
		h.win.rotate()
	}
}

// MergedWindow merges the windowed snapshots of every labeled instance
// registered under name — the whole-family windowed view the timeline and
// the health verdict quantile from. An unknown name yields an empty
// snapshot.
func MergedWindow(name string) HistSnap {
	merged := HistSnap{Name: name, Counts: make([]uint64, histBuckets)}
	for _, h := range Histograms() {
		if h.name == name {
			merged.merge(h.WindowSnap())
		}
	}
	return merged
}

// RateWindow turns the monotone counter registry into windowed per-second
// rates: each Tick diffs the current snapshot against the previous one and
// stores the delta (plus the tick's wall duration) in a WinSlots ring.
// Rates sums the ring, so a counter's windowed rate covers the same span
// as the histograms' windowed quantiles. All methods are mutex-guarded —
// ticks happen at timeline cadence, never on a query path.
type RateWindow struct {
	mu      sync.Mutex
	prev    Snap
	started bool
	slots   [WinSlots]Snap
	elapsed [WinSlots]time.Duration
	cur     int
}

// Rates is the process-wide counter rate ring, ticked by the timeline.
var Rates = &RateWindow{}

// Tick folds one new counter snapshot into the ring: the delta since the
// previous tick replaces the oldest slot. dt is the wall time since that
// previous tick. The first tick only arms the baseline and stores nothing.
func (rw *RateWindow) Tick(now Snap, dt time.Duration) {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	if !rw.started {
		rw.prev, rw.started = now, true
		return
	}
	rw.cur = (rw.cur + 1) % WinSlots
	rw.slots[rw.cur] = now.Diff(rw.prev)
	rw.elapsed[rw.cur] = dt
	rw.prev = now
}

// RatesPerSec returns every counter's windowed per-second rate: the summed
// ring deltas divided by the summed ring durations. Counters that did not
// move inside the window are absent. Returns nil before the second tick.
func (rw *RateWindow) RatesPerSec() map[string]float64 {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	var total time.Duration
	sums := make(map[string]uint64)
	for i := range rw.slots {
		total += rw.elapsed[i]
		for name, d := range rw.slots[i] {
			sums[name] += d
		}
	}
	if total <= 0 || len(sums) == 0 {
		return nil
	}
	secs := total.Seconds()
	out := make(map[string]float64, len(sums))
	for name, s := range sums {
		out[name] = float64(s) / secs
	}
	return out
}

// WindowSpan returns the wall duration the ring currently covers.
func (rw *RateWindow) WindowSpan() time.Duration {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	var total time.Duration
	for _, d := range rw.elapsed {
		total += d
	}
	return total
}

// Reset empties the ring and disarms the baseline (ResetForTest).
func (rw *RateWindow) Reset() {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	rw.prev, rw.started, rw.cur = nil, false, 0
	for i := range rw.slots {
		rw.slots[i], rw.elapsed[i] = nil, 0
	}
}
