package obs

import (
	"sync"
	"testing"
	"time"
)

// TestFlightAdmitAndReplace fills a fresh ring past capacity and checks the
// replace-minimum policy: the retained set is exactly the FlightSlots
// slowest samples, dumped in descending latency order.
func TestFlightAdmitAndReplace(t *testing.T) {
	var f FlightRecorder
	sub := FlightLabel("test-substrate")
	algo := FlightLabel("test-algo")
	// 2×FlightSlots samples with distinct latencies 1..128, offered in an
	// interleaved order so slow ones arrive both before and after fast ones.
	n := 2 * FlightSlots
	for i := 0; i < n; i++ {
		lat := int64(((i * 37) % n) + 1)
		f.Record(FlightSample{
			WhenUnixNs: lat, LatencyNs: lat,
			Substrate: sub, Algo: algo, K: int(lat),
			Nodes: uint64(lat), Items: uint64(2 * lat),
			DomChecks: uint64(3 * lat), Pruned: uint64(4 * lat),
			HeapPushes: uint64(5 * lat),
		})
	}
	dump := f.Dump()
	if len(dump) != FlightSlots {
		t.Fatalf("ring holds %d records, want %d", len(dump), FlightSlots)
	}
	for i, r := range dump {
		want := int64(n - i) // slowest FlightSlots are n, n-1, ..., n-FlightSlots+1
		if r.LatencyNs != want {
			t.Errorf("dump[%d].LatencyNs = %d, want %d", i, r.LatencyNs, want)
		}
		if r.Substrate != "test-substrate" || r.Algo != "test-algo" {
			t.Errorf("dump[%d] labels = (%q, %q), want interned names", i, r.Substrate, r.Algo)
		}
		lat := uint64(r.LatencyNs)
		if r.K != int(lat) || r.Nodes != lat || r.Items != 2*lat ||
			r.DomChecks != 3*lat || r.Pruned != 4*lat || r.HeapPushes != 5*lat {
			t.Errorf("dump[%d] counter diffs do not match the sample: %+v", i, r)
		}
	}
	// A sample no slower than the retained minimum must be rejected on the
	// fast path and must not disturb the ring.
	f.Record(FlightSample{LatencyNs: int64(n - FlightSlots)})
	if again := f.Dump(); len(again) != FlightSlots || again[FlightSlots-1].LatencyNs != int64(n-FlightSlots+1) {
		t.Error("rejected sample disturbed the ring")
	}
}

// TestFlightReset empties the ring and reopens admission.
func TestFlightReset(t *testing.T) {
	var f FlightRecorder
	f.Record(FlightSample{LatencyNs: 100})
	f.Reset()
	if dump := f.Dump(); len(dump) != 0 {
		t.Fatalf("ring holds %d records after Reset, want 0", len(dump))
	}
	f.Record(FlightSample{LatencyNs: 5})
	if dump := f.Dump(); len(dump) != 1 || dump[0].LatencyNs != 5 {
		t.Error("ring does not admit after Reset")
	}
}

// TestFlightRecordAllocs keeps the record path allocation-free, both for
// the fast rejection and for an admitted overwrite.
func TestFlightRecordAllocs(t *testing.T) {
	var f FlightRecorder
	for i := 0; i < FlightSlots; i++ {
		f.Record(FlightSample{LatencyNs: 1000 + int64(i)})
	}
	reject := FlightSample{LatencyNs: 1}
	if allocs := testing.AllocsPerRun(100, func() { f.Record(reject) }); allocs != 0 {
		t.Errorf("fast-path Record allocates %.1f times per call, want 0", allocs)
	}
	var admitLat int64 = 10000
	if allocs := testing.AllocsPerRun(100, func() {
		admitLat++
		f.Record(FlightSample{LatencyNs: admitLat})
	}); allocs != 0 {
		t.Errorf("admitting Record allocates %.1f times per call, want 0", allocs)
	}
}

// TestFlightConcurrent races recorders against dumpers. The ring is
// deliberately lossy, so the only hard guarantees are: no torn records
// (every dumped latency is one that was actually offered) and a full ring
// at the end. Under -race this also proves the seqlock discipline is clean.
func TestFlightConcurrent(t *testing.T) {
	var f FlightRecorder
	const workers, per = 8, 2000
	offered := func(lat int64) bool { return lat >= 1 && lat <= workers*per }
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				for _, r := range f.Dump() {
					if !offered(r.LatencyNs) {
						t.Errorf("dump returned latency %d that was never offered", r.LatencyNs)
						return
					}
				}
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				f.Record(FlightSample{LatencyNs: int64(w*per + i + 1), K: w})
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	dump := f.Dump()
	if len(dump) != FlightSlots {
		t.Fatalf("ring holds %d records after concurrent filling, want %d", len(dump), FlightSlots)
	}
	for _, r := range dump {
		if !offered(r.LatencyNs) {
			t.Errorf("retained latency %d was never offered", r.LatencyNs)
		}
	}
	// The slowest sample overall can never be displaced, racy or not.
	if dump[0].LatencyNs != workers*per {
		t.Errorf("slowest retained latency = %d, want %d", dump[0].LatencyNs, workers*per)
	}
}

// TestFlightLabelIntern pins the intern table: stable IDs, zero = empty.
func TestFlightLabelIntern(t *testing.T) {
	if id := FlightLabel(""); id != 0 {
		t.Errorf(`FlightLabel("") = %d, want 0`, id)
	}
	a := FlightLabel("test-intern-a")
	if FlightLabel("test-intern-a") != a {
		t.Error("re-interning returned a different ID")
	}
	if got := labelName(a); got != "test-intern-a" {
		t.Errorf("labelName round-trip = %q", got)
	}
	if got := labelName(LabelID(1 << 30)); got != "" {
		t.Errorf("unknown LabelID resolved to %q, want empty", got)
	}
}

// TestFlightDumpWallClock checks Dump renders when_unix_ns as an RFC3339
// when string (ISSUE 9: /debug/slow correlates with the timeline and logs).
func TestFlightDumpWallClock(t *testing.T) {
	var f FlightRecorder
	when := time.Date(2026, 8, 7, 12, 30, 45, 123456789, time.UTC)
	f.Record(FlightSample{WhenUnixNs: when.UnixNano(), LatencyNs: 999})
	dump := f.Dump()
	if len(dump) != 1 {
		t.Fatalf("dump holds %d records, want 1", len(dump))
	}
	got, err := time.Parse(time.RFC3339Nano, dump[0].When)
	if err != nil {
		t.Fatalf("When %q not RFC3339Nano: %v", dump[0].When, err)
	}
	if got.UnixNano() != when.UnixNano() {
		t.Errorf("When = %v, want %v", got, when)
	}
}
