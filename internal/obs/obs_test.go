package obs

import (
	"bytes"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"unsafe"
)

func TestCounterPadding(t *testing.T) {
	if got := unsafe.Sizeof(Counter{}); got != cacheLine {
		t.Errorf("Counter occupies %d bytes, want one %d-byte cache line", got, cacheLine)
	}
}

func TestRegistry(t *testing.T) {
	c := New("test.registry.first")
	if Lookup("test.registry.first") != c {
		t.Error("Lookup did not return the registered counter")
	}
	if Lookup("test.registry.absent") != nil {
		t.Error("Lookup invented a counter")
	}
	if GetOrNew("test.registry.first") != c {
		t.Error("GetOrNew did not reuse the registered counter")
	}
	d := GetOrNew("test.registry.dynamic")
	if GetOrNew("test.registry.dynamic") != d {
		t.Error("GetOrNew created the same name twice")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate New did not panic")
			}
		}()
		New("test.registry.first")
	}()

	names := Names()
	found := 0
	for i, name := range names {
		if i > 0 && names[i-1] >= name {
			t.Fatalf("Names not sorted: %q before %q", names[i-1], name)
		}
		if strings.HasPrefix(name, "test.registry.") {
			found++
		}
	}
	if found != 2 {
		t.Errorf("Names listed %d test.registry counters, want 2", found)
	}
}

func TestSnapshotDiff(t *testing.T) {
	a := New("test.snap.a")
	b := New("test.snap.b")
	before := Snapshot()
	a.Add(7)
	b.Inc()
	b.Inc()
	diff := Snapshot().Diff(before)
	if diff.Get("test.snap.a") != 7 || diff.Get("test.snap.b") != 2 {
		t.Errorf("diff = a:%d b:%d, want a:7 b:2", diff.Get("test.snap.a"), diff.Get("test.snap.b"))
	}
	for name, v := range diff {
		if v == 0 {
			t.Errorf("diff kept unmoved counter %q", name)
		}
	}
	if diff.Get("test.snap.absent") != 0 {
		t.Error("Get of an absent name is not 0")
	}
}

func TestEnabledGate(t *testing.T) {
	if !On() {
		t.Fatal("instrumentation must default to enabled")
	}
	SetEnabled(false)
	if On() {
		t.Error("On() after SetEnabled(false)")
	}
	SetEnabled(true)
	if !On() {
		t.Error("!On() after SetEnabled(true)")
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := New("test.concurrent")
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Errorf("concurrent Inc lost updates: %d, want %d", got, workers*per)
	}
}

func TestCounterAddAllocs(t *testing.T) {
	c := New("test.allocs")
	if allocs := testing.AllocsPerRun(100, func() { c.Add(3) }); allocs != 0 {
		t.Errorf("Counter.Add allocates %.1f times per call, want 0", allocs)
	}
}

func TestFprintSorted(t *testing.T) {
	s := Snap{"z.last": 1, "a.first": 2}
	var buf bytes.Buffer
	s.Fprint(&buf)
	out := buf.String()
	if strings.Index(out, "a.first") > strings.Index(out, "z.last") {
		t.Errorf("Fprint not sorted:\n%s", out)
	}
}

func TestProfileFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	stop, err := StartCPUProfile(cpu)
	if err != nil {
		t.Fatalf("StartCPUProfile: %v", err)
	}
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&bytes.Buffer{}, "%d", i)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if fi, err := os.Stat(cpu); err != nil || fi.Size() == 0 {
		t.Errorf("cpu profile missing or empty: %v", err)
	}

	heap := filepath.Join(dir, "heap.out")
	if err := WriteHeapProfile(heap); err != nil {
		t.Fatalf("WriteHeapProfile: %v", err)
	}
	if fi, err := os.Stat(heap); err != nil || fi.Size() == 0 {
		t.Errorf("heap profile missing or empty: %v", err)
	}
}

func TestServeExportsVars(t *testing.T) {
	addr, err := Serve("localhost:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	New("test.serve.visible").Add(41)
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatalf("GET /debug/vars: %v", err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	body.ReadFrom(resp.Body) //nolint:errcheck
	if !strings.Contains(body.String(), "test.serve.visible") {
		t.Error("expvar export does not include the hyperdom counter snapshot")
	}
}

func TestRegisterFlags(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	pf := RegisterFlags(fs)
	if pf.Wanted() {
		t.Error("zero ProfileFlags reports Wanted")
	}
	if err := fs.Parse([]string{"-metrics", "-cpuprofile", "c.out"}); err != nil {
		t.Fatal(err)
	}
	if !pf.Metrics || pf.CPUProfile != "c.out" || !pf.Wanted() {
		t.Errorf("flags not bound: %+v", pf)
	}
}
