package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
)

// Request-scoped tracing (ISSUE 8). A served kNN request fans out to N
// shards and merges under the global Sk; the per-process TraceBuf spans
// (ISSUE 4) explain one traversal, but not the request: which shard was
// slow, how long its task sat in the engine queue, how many candidates it
// streamed, and whether the cross-shard distK pushdown actually tightened
// its bound. RequestTrace is that missing layer — a root span per HTTP
// request, one ShardSpan child per shard, and the final merge/filter span —
// recorded by the serving layer and retained for the slowest requests in
// the Requests ring (served at /debug/requests, Chrome trace_event export
// included, linked to the per-traversal traces by trace_id).

// BoundValue is a float64 that marshals non-finite values (the +Inf a
// never-tightened distK bound reports) as JSON null instead of failing the
// whole encode.
type BoundValue float64

// MarshalJSON implements json.Marshaler.
func (v BoundValue) MarshalJSON() ([]byte, error) {
	f := float64(v)
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return []byte("null"), nil
	}
	return strconv.AppendFloat(nil, f, 'g', -1, 64), nil
}

// ShardSpan is one shard's slice of a scatter-gather request: the latency
// and queue wait of its candidate search, the work its traversal performed,
// and the distK pushdown traffic it saw. BoundObserved is the shared global
// bound as of the shard's completion (what the traversal could prune with);
// BoundPublished is the shard's own final local distK as pushed into the
// bound. BoundObserved < BoundPublished means another shard's publication
// tightened this shard's pruning — the pushdown was effective here.
type ShardSpan struct {
	Shard          int        `json:"shard"`
	Items          int        `json:"items"` // items resident in the shard
	LatencyNs      int64      `json:"latency_ns"`
	QueueWaitNs    int64      `json:"queue_wait_ns"`
	Candidates     int        `json:"candidates"`
	NodesVisited   int        `json:"nodes_visited"`
	ItemsScanned   int        `json:"items_scanned"`
	CoarsePrunes   uint64     `json:"coarse_prunes"`
	BoundObserved  BoundValue `json:"distk_observed"`
	BoundPublished BoundValue `json:"distk_published"`
	// TraceID links to this traversal's retained execution trace in
	// /debug/trace when it was sampled (SetTraceEvery), 0 otherwise.
	TraceID uint64 `json:"trace_id,omitempty"`
}

// MergeSpan is the gather side of a request: merging the per-shard
// candidate streams and applying the one final global-Sk filter.
type MergeSpan struct {
	LatencyNs  int64 `json:"latency_ns"`
	Candidates int   `json:"candidates"`
	Pruned     int   `json:"pruned"`
	Results    int   `json:"results"`
}

// RequestTrace is one served request's full trace tree. Instances are
// immutable once recorded; the ring and exporters share them by pointer.
type RequestTrace struct {
	RequestID  string `json:"request_id"`
	Collection string `json:"collection"`
	Endpoint   string `json:"endpoint"`
	Status     int    `json:"status"`
	K          int    `json:"k"`
	WhenUnixNs int64  `json:"when_unix_ns"`
	// When is WhenUnixNs as RFC3339Nano wall-clock text, so a
	// /debug/requests entry lines up with access-log lines and timeline
	// snapshots without epoch arithmetic (ISSUE 9).
	When      string      `json:"when"`
	LatencyNs int64       `json:"latency_ns"`
	Shards    []ShardSpan `json:"shards"`
	Merge     MergeSpan   `json:"merge"`
}

// RequestSlots is the request ring capacity.
const RequestSlots = 64

// RequestRecorder retains the slowest recent requests. Unlike the seqlock
// flight recorder, the ring is mutex-guarded — requests arrive at HTTP
// rate, orders of magnitude below the per-traversal recorder, so a lock is
// cheap and keeps slot writes (which carry a slice) simple. The zero value
// is ready.
type RequestRecorder struct {
	mu    sync.Mutex
	slots [RequestSlots]*RequestTrace
	used  int
}

// Requests is the process-wide request recorder the serving layer records
// into; /debug/requests serves its dump.
var Requests = &RequestRecorder{}

// Record offers one request to the ring: admitted while the ring has free
// slots, then only when slower than the currently fastest retained request
// (which it evicts).
func (rr *RequestRecorder) Record(t *RequestTrace) {
	if t == nil {
		return
	}
	rr.mu.Lock()
	defer rr.mu.Unlock()
	if rr.used < RequestSlots {
		rr.slots[rr.used] = t
		rr.used++
		return
	}
	mi := 0
	for i := 1; i < RequestSlots; i++ {
		if rr.slots[i].LatencyNs < rr.slots[mi].LatencyNs {
			mi = i
		}
	}
	if t.LatencyNs > rr.slots[mi].LatencyNs {
		rr.slots[mi] = t
	}
}

// Dump returns the retained requests sorted by descending latency.
func (rr *RequestRecorder) Dump() []*RequestTrace {
	rr.mu.Lock()
	out := make([]*RequestTrace, rr.used)
	copy(out, rr.slots[:rr.used])
	rr.mu.Unlock()
	sort.Slice(out, func(a, b int) bool {
		if out[a].LatencyNs != out[b].LatencyNs {
			return out[a].LatencyNs > out[b].LatencyNs
		}
		return out[a].WhenUnixNs > out[b].WhenUnixNs
	})
	return out
}

// Reset empties the ring.
func (rr *RequestRecorder) Reset() {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	for i := range rr.slots {
		rr.slots[i] = nil
	}
	rr.used = 0
}

// WriteRequestChromeTrace writes the request traces as one Chrome
// trace_event JSON document: each request becomes its own process, with the
// root request span and the merge span on thread 0 and one thread per shard
// span. Shard and merge timestamps are offsets within the scatter-gather
// (all shards scatter at once), not wall-aligned sub-microsecond truth; the
// root span carries the request's true wall latency. An empty set produces
// a valid document with "traceEvents": [].
func WriteRequestChromeTrace(w io.Writer, traces []*RequestTrace) error {
	var minWhen int64
	for i, t := range traces {
		if i == 0 || t.WhenUnixNs < minWhen {
			minWhen = t.WhenUnixNs
		}
	}
	events := make([]map[string]any, 0, 2+4*len(traces))
	for ti, t := range traces {
		pid := ti + 1
		base := float64(t.WhenUnixNs-minWhen) / 1e3
		events = append(events, map[string]any{
			"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
			"args": map[string]any{"name": fmt.Sprintf("request %s %s/%s %.3fms",
				t.RequestID, t.Collection, t.Endpoint, float64(t.LatencyNs)/1e6)},
		})
		events = append(events, map[string]any{
			"name": t.Endpoint, "cat": "request", "ph": "X", "pid": pid, "tid": 0,
			"ts": base, "dur": float64(t.LatencyNs) / 1e3,
			"args": map[string]any{
				"request_id": t.RequestID,
				"collection": t.Collection,
				"status":     t.Status,
				"k":          t.K,
				"shards":     len(t.Shards),
			},
		})
		var maxShard int64
		for _, sp := range t.Shards {
			if sp.LatencyNs > maxShard {
				maxShard = sp.LatencyNs
			}
			events = append(events, map[string]any{
				"name": "thread_name", "ph": "M", "pid": pid, "tid": sp.Shard + 1,
				"args": map[string]any{"name": fmt.Sprintf("shard %d", sp.Shard)},
			})
			args := map[string]any{
				"request_id":      t.RequestID,
				"queue_wait_ns":   sp.QueueWaitNs,
				"candidates":      sp.Candidates,
				"nodes_visited":   sp.NodesVisited,
				"items_scanned":   sp.ItemsScanned,
				"coarse_prunes":   sp.CoarsePrunes,
				"distk_observed":  sp.BoundObserved,
				"distk_published": sp.BoundPublished,
			}
			if sp.TraceID != 0 {
				args["trace_id"] = sp.TraceID
			}
			events = append(events, map[string]any{
				"name": "shard-search", "cat": "request", "ph": "X",
				"pid": pid, "tid": sp.Shard + 1,
				"ts": base, "dur": float64(sp.LatencyNs) / 1e3,
				"args": args,
			})
		}
		events = append(events, map[string]any{
			"name": "merge", "cat": "request", "ph": "X", "pid": pid, "tid": 0,
			"ts": base + float64(maxShard)/1e3, "dur": float64(t.Merge.LatencyNs) / 1e3,
			"args": map[string]any{
				"request_id": t.RequestID,
				"candidates": t.Merge.Candidates,
				"pruned":     t.Merge.Pruned,
				"results":    t.Merge.Results,
			},
		})
	}
	doc := map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ns",
	}
	return json.NewEncoder(w).Encode(doc)
}
