package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Latency histograms (ISSUE 3). A Histogram is an HDR-style log-linear
// bucket array over int64 nanosecond samples: values below 16ns land in
// exact unit buckets, and every power-of-two range above is subdivided
// into 16 linear sub-buckets, so the relative width of any bucket is at
// most 1/16 (6.25%). The bucket array is fixed at compile time — no
// resizing, no allocation, ever — and covers up to 2^42ns (~73 minutes);
// slower samples clamp into the last bucket.
//
// The record path is lock-free and allocation-free: one atomic add into a
// bucket and one into the shard's running sum. To keep concurrent
// recorders from serialising on the same cache lines, each histogram is
// split into histShards independent shards that are merged only at
// snapshot time. Go offers no goroutine-local storage, so "per-goroutine"
// sharding is approximated two ways: long-lived owners (the kNN scratch
// arena, pooled per worker goroutine) hold a shard index from NextShard
// and record through RecordShard, while ownerless call sites use Record,
// which spreads samples across shards by hashing the value.
const (
	histSubBits    = 4
	histSubBuckets = 1 << histSubBits // linear sub-buckets per power of two
	histMaxTop     = 41               // highest bucketed power of two (2^42ns ≈ 73min)
	histBuckets    = histSubBuckets + (histMaxTop-histSubBits+1)*histSubBuckets

	histShardBits = 2
	histShards    = 1 << histShardBits
	histShardMask = histShards - 1
)

// histIndex maps a sample to its bucket.
func histIndex(v int64) int {
	if v < histSubBuckets {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	top := 63 - bits.LeadingZeros64(uint64(v))
	if top > histMaxTop {
		return histBuckets - 1
	}
	shift := top - histSubBits
	return (shift << histSubBits) + int(uint64(v)>>shift)
}

// histLower returns the inclusive lower bound of bucket i — the value
// quantile extraction reports, so estimates never exceed the true sample.
func histLower(i int) int64 {
	if i < histSubBuckets {
		return int64(i)
	}
	shift := (i >> histSubBits) - 1
	return int64(i-(shift<<histSubBits)) << shift
}

// histShard is one independently written slice of a histogram. The trailing
// pad keeps the next shard's first buckets off this shard's last cache
// line; the bucket array itself is written by at most a few goroutines per
// shard, which is the contention the sharding exists to bound.
type histShard struct {
	counts [histBuckets]atomic.Uint64
	sum    atomic.Uint64
	_      [cacheLine - 8]byte
}

// Histogram is a registered, sharded log-linear latency histogram. All
// methods are safe for concurrent use; Record and RecordShard never
// allocate and take no locks. Construct with NewHistogram (or
// GetOrNewHistogram for runtime-derived names) so snapshots and the
// /metrics exposition can find it.
type Histogram struct {
	name   string
	labels string // Prometheus label pairs, e.g. `substrate="sstree",algo="DF"`; may be empty
	shards [histShards]histShard
	// win is the sliding-window side (ISSUE 9): WinSlots rotating time
	// shards over the same bucket layout, fed by the same record call.
	win histWindow
}

// Name returns the registered histogram name.
func (h *Histogram) Name() string { return h.name }

// Labels returns the constant Prometheus label pairs, without braces.
func (h *Histogram) Labels() string { return h.labels }

// Record adds one sample (nanoseconds), spreading concurrent recorders
// across shards by hashing the value. Callers on gated hot paths check
// On() themselves — Record does not, so batch-level instrumentation that
// already paid for the gate is not charged twice.
func (h *Histogram) Record(v int64) {
	shard := int((uint64(v) * 0x9E3779B97F4A7C15) >> (64 - histShardBits))
	h.RecordShard(shard, v)
}

// RecordShard adds one sample into the given shard. Owners that live on
// one goroutine (a pooled scratch arena, a worker) obtain a stable shard
// from NextShard once and pass it here, giving true per-goroutine striping.
func (h *Histogram) RecordShard(shard int, v int64) {
	s := &h.shards[shard&histShardMask]
	i := histIndex(v)
	s.counts[i].Add(1)
	if v > 0 {
		s.sum.Add(uint64(v))
	}
	h.win.record(i, v)
}

// RecordDuration records d in nanoseconds.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(d.Nanoseconds()) }

// shardSeq hands out round-robin shard indexes to long-lived recorders.
var shardSeq atomic.Uint32

// NextShard returns a shard index for RecordShard, assigned round-robin so
// a pool of recorders spreads evenly across the histogram shards.
func NextShard() int { return int(shardSeq.Add(1)) & histShardMask }

// reset zeroes every shard. Not linearizable against concurrent recorders
// (a racing sample may survive or vanish); meant for ResetForTest.
func (h *Histogram) reset() {
	for s := range h.shards {
		sh := &h.shards[s]
		for i := range sh.counts {
			sh.counts[i].Store(0)
		}
		sh.sum.Store(0)
	}
	h.win.reset()
}

// HistSnap is a merged point-in-time reading of a histogram: the summed
// shard buckets, total sample count and nanosecond sum. The zero value
// behaves as an empty histogram.
type HistSnap struct {
	Name   string
	Labels string
	Counts []uint64 // len histBuckets; bucket i counts samples in [histLower(i), histLower(i+1))
	Count  uint64
	Sum    uint64 // nanoseconds
}

// Snap merges the shards into one consistent-enough reading: each bucket
// load is atomic, but buckets may advance between loads, exactly like
// Snapshot over counters.
func (h *Histogram) Snap() HistSnap {
	s := HistSnap{Name: h.name, Labels: h.labels, Counts: make([]uint64, histBuckets)}
	for sh := range h.shards {
		shard := &h.shards[sh]
		for i := range s.Counts {
			c := shard.counts[i].Load()
			s.Counts[i] += c
			s.Count += c
		}
		s.Sum += shard.sum.Load()
	}
	return s
}

// merge folds o's buckets into s (for combining labeled instances of one
// metric). Both sides must be full-length snapshots or zero values.
func (s *HistSnap) merge(o HistSnap) {
	if s.Counts == nil {
		s.Counts = make([]uint64, histBuckets)
	}
	for i, c := range o.Counts {
		s.Counts[i] += c
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) in nanoseconds: the lower
// bound of the bucket holding the sample of that rank, so the estimate
// never exceeds the true value and undershoots by at most one bucket width
// (≤ 1/16 relative for samples ≥ 16ns). An empty histogram returns 0 for
// every q — never NaN, never a panic.
func (s HistSnap) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			return float64(histLower(i))
		}
	}
	return float64(histLower(histBuckets - 1))
}

// Mean returns the mean sample in nanoseconds, or 0 when empty.
func (s HistSnap) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// histRegistry is the global (name, labels) → histogram table, a sibling
// of the counter registry with the same init-time registration contract.
var histRegistry struct {
	mu sync.RWMutex
	m  map[string]*Histogram
}

func histKey(name, labels string) string { return name + "{" + labels + "}" }

// NewHistogram registers and returns a histogram under the given name and
// constant Prometheus label pairs (e.g. `substrate="sstree",algo="DF"`;
// empty for none). Instances sharing a name form one labeled metric family
// in the /metrics exposition. Panics on a duplicate (name, labels) pair.
func NewHistogram(name, labels string) *Histogram {
	histRegistry.mu.Lock()
	defer histRegistry.mu.Unlock()
	if histRegistry.m == nil {
		histRegistry.m = make(map[string]*Histogram)
	}
	key := histKey(name, labels)
	if _, dup := histRegistry.m[key]; dup {
		panic("obs: duplicate histogram " + key)
	}
	h := &Histogram{name: name, labels: labels}
	histRegistry.m[key] = h
	return h
}

// GetOrNewHistogram returns the histogram registered under (name, labels),
// creating it if needed — for names or labels derived at runtime.
func GetOrNewHistogram(name, labels string) *Histogram {
	key := histKey(name, labels)
	histRegistry.mu.RLock()
	h := histRegistry.m[key]
	histRegistry.mu.RUnlock()
	if h != nil {
		return h
	}
	histRegistry.mu.Lock()
	defer histRegistry.mu.Unlock()
	if histRegistry.m == nil {
		histRegistry.m = make(map[string]*Histogram)
	}
	if h := histRegistry.m[key]; h != nil {
		return h
	}
	h = &Histogram{name: name, labels: labels}
	histRegistry.m[key] = h
	return h
}

// Histograms returns every registered histogram, sorted by (name, labels)
// so exposition output is stable.
func Histograms() []*Histogram {
	histRegistry.mu.RLock()
	defer histRegistry.mu.RUnlock()
	out := make([]*Histogram, 0, len(histRegistry.m))
	for _, h := range histRegistry.m {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels < out[j].labels
	})
	return out
}

// MergedHist merges every labeled instance registered under name into one
// snapshot — the whole-metric view quantile summaries are computed from.
// An unknown name yields an empty (all-zero) snapshot.
func MergedHist(name string) HistSnap {
	merged := HistSnap{Name: name, Counts: make([]uint64, histBuckets)}
	for _, h := range Histograms() {
		if h.name == name {
			merged.merge(h.Snap())
		}
	}
	return merged
}

// Stopwatch measures one latency sample from time.Now deltas. The zero
// value is a stopped watch: StartTimer returns one when instrumentation is
// disabled, and Stop on it records nothing, so call sites need no second
// gate check.
type Stopwatch struct {
	t0 time.Time
}

// StartTimer starts a stopwatch, or returns a stopped one when the obs
// gate is off (no clock read).
func StartTimer() Stopwatch {
	if !On() {
		return Stopwatch{}
	}
	return Stopwatch{t0: time.Now()}
}

// Started reports whether the stopwatch is running.
func (sw Stopwatch) Started() bool { return !sw.t0.IsZero() }

// Stop records the elapsed time into h (if non-nil) and returns it. On a
// stopped watch it records nothing and returns 0.
func (sw Stopwatch) Stop(h *Histogram) time.Duration {
	if sw.t0.IsZero() {
		return 0
	}
	d := time.Since(sw.t0)
	if h != nil {
		h.RecordDuration(d)
	}
	return d
}

// ResetForTest zeroes every registered counter and histogram and clears
// the flight recorder, preserving all registrations — so tests (and
// measurement harnesses like benchkernel) can assert absolute readings
// instead of diffing snapshots of monotonically growing globals. It is not
// linearizable against concurrent recorders; quiesce the workload first.
func ResetForTest() {
	registry.mu.RLock()
	for _, c := range registry.m {
		c.v.Store(0)
	}
	registry.mu.RUnlock()
	histRegistry.mu.RLock()
	for _, h := range histRegistry.m {
		h.reset()
	}
	histRegistry.mu.RUnlock()
	Flight.Reset()
	Requests.Reset()
	Rates.Reset()
	gauges.mu.RLock()
	for _, g := range gauges.m {
		g.store(0)
	}
	gauges.mu.RUnlock()
}
