package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestWindowedExposition checks /metrics carries the _1m windowed quantile
// and rate families alongside the cumulative ones after a timeline tick.
func TestWindowedExposition(t *testing.T) {
	ResetForTest()
	ResetTimelineForTest()
	h := GetOrNewHistogram("test.expo.win_latency", "")
	for i := 0; i < 1000; i++ {
		h.Record(int64(i) * 1000)
	}
	GetOrNewLabeled("test.expo.win_requests", `code="200"`).Add(40)
	TimelineTick() // arms the rate baseline
	GetOrNewLabeled("test.expo.win_requests", `code="200"`).Add(60)
	time.Sleep(2 * time.Millisecond)
	TimelineTick() // first delta: rates appear

	srv := httptest.NewServer(Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)

	for _, want := range []string{
		"# TYPE hyperdom_test_expo_win_latency_seconds_1m gauge",
		`hyperdom_test_expo_win_latency_seconds_1m{quantile="0.99"}`,
		"hyperdom_test_expo_win_latency_seconds_1m_count",
		"# TYPE hyperdom_test_expo_win_requests_rate_1m gauge",
		`hyperdom_test_expo_win_requests_rate_1m{code="200"}`,
		"hyperdom_runtime_goroutines",
		"hyperdom_runtime_heap_bytes",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// After the window expires, the _1m family disappears (no stale zeros)
	// while the cumulative histogram stays.
	for i := 0; i < WinSlots; i++ {
		RotateWindows()
	}
	resp2, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	raw2, _ := io.ReadAll(resp2.Body)
	if strings.Contains(string(raw2), "hyperdom_test_expo_win_latency_seconds_1m{") {
		t.Error("expired window still exposes _1m quantiles")
	}
	if !strings.Contains(string(raw2), "hyperdom_test_expo_win_latency_seconds_bucket") {
		t.Error("cumulative histogram vanished with its window")
	}
}

// TestTimelineEndpoint checks /debug/timeline serves the ring as a JSON
// array (empty ring → []) with windowed quantiles present.
func TestTimelineEndpoint(t *testing.T) {
	ResetForTest()
	ResetTimelineForTest()
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	get := func() []map[string]any {
		resp, err := http.Get(srv.URL + "/debug/timeline")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out []map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("/debug/timeline not a JSON array: %v", err)
		}
		return out
	}

	if got := get(); len(got) != 0 {
		t.Fatalf("empty ring served %d snapshots, want []", len(got))
	}

	h := GetOrNewHistogram("test.timeline.endpoint", "")
	for i := 0; i < 50; i++ {
		h.Record(5000)
	}
	TimelineTick()
	snaps := get()
	if len(snaps) != 1 {
		t.Fatalf("got %d snapshots, want 1", len(snaps))
	}
	q, ok := snaps[0]["windowed_quantiles"].(map[string]any)
	if !ok {
		t.Fatalf("snapshot missing windowed_quantiles: %v", snaps[0])
	}
	fam, ok := q["test.timeline.endpoint"].(map[string]any)
	if !ok {
		t.Fatalf("windowed_quantiles missing the recorded family: %v", q)
	}
	if fam["p99"] == nil {
		t.Error("p99 is null for a family with samples in the window")
	}
	if _, err := time.Parse(time.RFC3339Nano, snaps[0]["when"].(string)); err != nil {
		t.Errorf("snapshot when field: %v", err)
	}
}

// TestHealthEndpoint checks /debug/health serves the structured verdict,
// 200 for ok/degraded and 503 for unhealthy.
func TestHealthEndpoint(t *testing.T) {
	ResetForTest()
	t.Cleanup(func() {
		healthCfg.mu.Lock()
		healthCfg.cfg = HealthConfig{}
		healthCfg.mu.Unlock()
	})
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	get := func() (int, HealthVerdict) {
		resp, err := http.Get(srv.URL + "/debug/health")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var v HealthVerdict
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("/debug/health not JSON: %v", err)
		}
		return resp.StatusCode, v
	}

	if code, v := get(); code != http.StatusOK || v.Status != HealthOK {
		t.Errorf("unconfigured health = %d %q, want 200 ok", code, v.Status)
	}

	SetHealthConfig(HealthConfig{LatencyFamily: "test.health.endpoint", LatencyP99Max: time.Millisecond})
	h := GetOrNewHistogram("test.health.endpoint", "")
	for i := 0; i < 100; i++ {
		h.Record((1500 * time.Microsecond).Nanoseconds())
	}
	code, v := get()
	if code != http.StatusOK || v.Status != HealthDegraded {
		t.Errorf("degraded health = %d %q, want 200 degraded", code, v.Status)
	}
	if len(v.Reasons) == 0 || len(v.Checks) == 0 {
		t.Errorf("degraded verdict carries no reasons/checks: %+v", v)
	}

	ResetForTest()
	for i := 0; i < 100; i++ {
		h.Record((10 * time.Millisecond).Nanoseconds())
	}
	if code, v := get(); code != http.StatusServiceUnavailable || v.Status != HealthUnhealthy {
		t.Errorf("unhealthy health = %d %q, want 503 unhealthy", code, v.Status)
	}
}
