package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labeled serving-level metrics (ISSUE 8). The counter registry's names are
// flat strings; serving metrics need Prometheus label pairs (status code,
// endpoint) without giving the hot path a map-of-maps. Both needs are met
// by encoding the label set into the registry key — "name|pairs" — and
// teaching the exposition writer to split it back out. Call sites resolve
// the *Counter once per distinct label combination (the status-code ×
// endpoint product is tiny) and pay the usual single atomic add after that.

// labelSep joins a metric name and its label pairs inside the counter
// registry. '|' cannot appear in a Prometheus metric name, so splitting on
// the first occurrence is unambiguous.
const labelSep = "|"

// GetOrNewLabeled returns the counter registered under name with the given
// constant Prometheus label pairs (e.g. `code="200",endpoint="knn"`),
// creating it if needed. Counters sharing a name form one labeled family in
// the /metrics exposition; keep the pair order consistent per family so
// each combination resolves to a single counter.
func GetOrNewLabeled(name, labels string) *Counter {
	if labels == "" {
		return GetOrNew(name)
	}
	return GetOrNew(name + labelSep + labels)
}

// splitLabeled splits a registry key into its metric name and label pairs.
func splitLabeled(key string) (name, labels string) {
	if i := strings.Index(key, labelSep); i >= 0 {
		return key[:i], key[i+len(labelSep):]
	}
	return key, ""
}

// gauges is the process-wide labeled gauge table: last-write-wins float64
// values for slow-moving facts (build info, readiness, corpus sizes) that a
// counter cannot express. Gauge writes go through a mutex — they happen at
// startup or config changes, never on a query path.
var gauges struct {
	mu sync.RWMutex
	m  map[string]*atomicFloat
}

type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) load() float64   { return math.Float64frombits(f.bits.Load()) }

// SetGauge sets the gauge registered under name and constant label pairs
// (e.g. `version="v1.2",go_version="go1.22"`; empty for none) to v,
// creating it on first use. Gauges appear in /metrics as TYPE gauge with
// the usual hyperdom_ naming.
func SetGauge(name, labels string, v float64) {
	key := name
	if labels != "" {
		key = name + labelSep + labels
	}
	gauges.mu.RLock()
	g := gauges.m[key]
	gauges.mu.RUnlock()
	if g == nil {
		gauges.mu.Lock()
		if gauges.m == nil {
			gauges.m = make(map[string]*atomicFloat)
		}
		if g = gauges.m[key]; g == nil {
			g = &atomicFloat{}
			gauges.m[key] = g
		}
		gauges.mu.Unlock()
	}
	g.store(v)
}

// GaugeValue returns the gauge registered under (name, labels) and whether
// it exists. Callback gauges (RegisterGaugeFunc) are evaluated on the spot.
func GaugeValue(name, labels string) (float64, bool) {
	key := name
	if labels != "" {
		key = name + labelSep + labels
	}
	gauges.mu.RLock()
	g := gauges.m[key]
	gauges.mu.RUnlock()
	if g != nil {
		return g.load(), true
	}
	gaugeFuncs.mu.RLock()
	e, ok := gaugeFuncs.m[key]
	gaugeFuncs.mu.RUnlock()
	if !ok {
		return 0, false
	}
	return e.f(), true
}

// gaugeFuncs holds callback gauges: values computed at read time (queue
// depths, in-flight counts, imbalance ratios) instead of stored. Each entry
// carries a registration token so a stale unregister cannot remove a newer
// registration under the same key.
var gaugeFuncs struct {
	mu  sync.RWMutex
	seq uint64
	m   map[string]gaugeFuncEntry
}

type gaugeFuncEntry struct {
	f   func() float64
	tok uint64
}

// RegisterGaugeFunc registers f as a callback gauge under (name, labels),
// replacing any previous registration under the same key — subsystems that
// rebuild (a re-created shard index reusing its collection label) get
// last-writer-wins semantics. The returned unregister removes exactly this
// registration and is safe to call after a replacement. f must be safe for
// concurrent use and must not block: it runs inline in /metrics scrapes,
// timeline ticks and health checks.
func RegisterGaugeFunc(name, labels string, f func() float64) (unregister func()) {
	key := name
	if labels != "" {
		key = name + labelSep + labels
	}
	gaugeFuncs.mu.Lock()
	if gaugeFuncs.m == nil {
		gaugeFuncs.m = make(map[string]gaugeFuncEntry)
	}
	gaugeFuncs.seq++
	tok := gaugeFuncs.seq
	gaugeFuncs.m[key] = gaugeFuncEntry{f: f, tok: tok}
	gaugeFuncs.mu.Unlock()
	return func() {
		gaugeFuncs.mu.Lock()
		if e, ok := gaugeFuncs.m[key]; ok && e.tok == tok {
			delete(gaugeFuncs.m, key)
		}
		gaugeFuncs.mu.Unlock()
	}
}

// gaugeSnapshot returns the registered gauges — stored and callback — as
// sorted (key, value) pairs for the exposition writer. A stored gauge and a
// callback under the same key resolve to the stored value.
func gaugeSnapshot() (keys []string, vals []float64) {
	gauges.mu.RLock()
	stored := make(map[string]float64, len(gauges.m))
	for key, g := range gauges.m {
		stored[key] = g.load()
	}
	gauges.mu.RUnlock()
	gaugeFuncs.mu.RLock()
	funcs := make(map[string]func() float64, len(gaugeFuncs.m))
	for key, e := range gaugeFuncs.m {
		funcs[key] = e.f
	}
	gaugeFuncs.mu.RUnlock()

	keys = make([]string, 0, len(stored)+len(funcs))
	for key := range stored {
		keys = append(keys, key)
	}
	for key := range funcs {
		if _, dup := stored[key]; !dup {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	vals = make([]float64, len(keys))
	for i, key := range keys {
		if v, ok := stored[key]; ok {
			vals[i] = v
			continue
		}
		vals[i] = funcs[key]()
	}
	return keys, vals
}
