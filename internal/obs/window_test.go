package obs

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestWindowQuantileAccuracy records a known sample set and checks the
// windowed quantiles against the exact order statistics under the same
// contract as the cumulative histogram: the estimate never exceeds the true
// value and sits within one bucket's relative width (1/16) below it.
func TestWindowQuantileAccuracy(t *testing.T) {
	ResetForTest()
	h := GetOrNewHistogram("test.win.accuracy", "")
	rng := rand.New(rand.NewSource(7))
	samples := make([]int64, 0, 5000)
	for i := 0; i < 5000; i++ {
		v := int64(rng.ExpFloat64() * 1e6)
		samples = append(samples, v)
		h.Record(v)
	}
	sort.Slice(samples, func(a, b int) bool { return samples[a] < samples[b] })

	snap := h.WindowSnap()
	if snap.Count != uint64(len(samples)) {
		t.Fatalf("window Count = %d, want %d", snap.Count, len(samples))
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		got := snap.Quantile(q)
		idx := int(q * float64(len(samples)-1))
		want := float64(samples[idx])
		if got > want {
			t.Errorf("windowed q%.3f = %v exceeds exact order statistic %v", q, got, want)
		}
		if want > 16 && got < want*(1-1.0/16)-1 {
			t.Errorf("windowed q%.3f = %v more than one bucket below exact %v", q, got, want)
		}
	}

	// The windowed and cumulative views of an un-rotated histogram agree.
	cum := h.Snap()
	if snap.Count != cum.Count || snap.Sum != cum.Sum {
		t.Errorf("window (count=%d sum=%d) disagrees with cumulative (count=%d sum=%d) before any rotation",
			snap.Count, snap.Sum, cum.Count, cum.Sum)
	}
}

// TestWindowRotationExpiry pins the sliding-window semantics across slot
// boundaries: samples stay visible for WinSlots-1 further rotations, expire
// on the WinSlots-th, and the cumulative histogram never forgets.
func TestWindowRotationExpiry(t *testing.T) {
	ResetForTest()
	h := GetOrNewHistogram("test.win.expiry", "")
	for i := 0; i < 100; i++ {
		h.Record(1000)
	}

	// The batch stays in the window while its slot is still among the
	// WinSlots retained ones...
	for r := 1; r < WinSlots; r++ {
		h.RotateWindow()
		if got := h.WindowSnap().Count; got != 100 {
			t.Fatalf("after %d rotations window Count = %d, want 100", r, got)
		}
	}
	// ...and the WinSlots-th rotation reclaims the slot it was recorded in.
	h.RotateWindow()
	if got := h.WindowSnap().Count; got != 0 {
		t.Errorf("after %d rotations window Count = %d, want 0 (expired)", WinSlots, got)
	}
	if got := h.Snap().Count; got != 100 {
		t.Errorf("cumulative Count = %d after rotations, want 100", got)
	}

	// A second batch recorded post-rotation lands in the new current slot
	// and ages out on its own schedule.
	for i := 0; i < 40; i++ {
		h.Record(2000)
	}
	h.RotateWindow()
	if got := h.WindowSnap().Count; got != 40 {
		t.Errorf("fresh batch: window Count = %d after one rotation, want 40", got)
	}
}

// TestWindowRotationPartialOverlap interleaves recording and rotation and
// checks the merged window always equals the sum of the live slots.
func TestWindowRotationPartialOverlap(t *testing.T) {
	ResetForTest()
	h := GetOrNewHistogram("test.win.overlap", "")
	// One batch of i+1 samples per rotation period, WinSlots+2 periods.
	for p := 0; p < WinSlots+2; p++ {
		for i := 0; i <= p; i++ {
			h.Record(int64(1000 * (p + 1)))
		}
		h.RotateWindow()
		// Live slots hold the last min(p+1, WinSlots-1) full batches plus
		// the (empty) new current slot... except batches only expire once
		// rotation count exceeds WinSlots-1.
		want := uint64(0)
		for b := p; b >= 0 && b > p-(WinSlots-1); b-- {
			want += uint64(b + 1)
		}
		if got := h.WindowSnap().Count; got != want {
			t.Fatalf("period %d: window Count = %d, want %d", p, got, want)
		}
	}
}

// TestWindowConcurrentRecordRotate hammers the record path from several
// goroutines while another rotates continuously. Under -race this validates
// the lock-free slot handoff; in any mode it checks the invariants that
// survive the deliberately lossy boundary: the cumulative count is exact,
// and the window never exceeds what was recorded.
func TestWindowConcurrentRecordRotate(t *testing.T) {
	ResetForTest()
	h := GetOrNewHistogram("test.win.race", "")
	const (
		writers = 4
		perG    = 20000
	)
	stop := make(chan struct{})
	var rotator sync.WaitGroup
	rotator.Add(1)
	go func() {
		defer rotator.Done()
		for {
			select {
			case <-stop:
				return
			default:
				RotateWindows()
				time.Sleep(time.Microsecond)
			}
		}
	}()
	var writersWG sync.WaitGroup
	for g := 0; g < writers; g++ {
		writersWG.Add(1)
		go func(g int) {
			defer writersWG.Done()
			shard := g & histShardMask
			for i := 0; i < perG; i++ {
				h.RecordShard(shard, int64(i%4096))
			}
		}(g)
	}
	writersWG.Wait()
	close(stop)
	rotator.Wait()

	if got := h.Snap().Count; got != writers*perG {
		t.Errorf("cumulative Count = %d, want %d (rotation must never lose cumulative samples)", got, writers*perG)
	}
	if got := h.WindowSnap().Count; got > writers*perG {
		t.Errorf("window Count = %d exceeds samples recorded %d", got, writers*perG)
	}
}

// TestWindowRecordAllocs locks the windowed record path's zero-allocation
// guarantee (the ISSUE 9 acceptance bar alongside TestSearchAllocs).
func TestWindowRecordAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("-race instrumentation allocates; alloc gate runs in the non-race matrix")
	}
	ResetForTest()
	h := GetOrNewHistogram("test.win.allocs", "")
	if allocs := testing.AllocsPerRun(100, func() { h.Record(12345) }); allocs != 0 {
		t.Errorf("windowed Record allocates %v per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { h.RotateWindow() }); allocs != 0 {
		t.Errorf("RotateWindow allocates %v per call, want 0", allocs)
	}
}

// TestMergedWindow checks the whole-family windowed view merges labeled
// instances and honors rotation.
func TestMergedWindow(t *testing.T) {
	ResetForTest()
	a := GetOrNewHistogram("test.win.family", `inst="a"`)
	b := GetOrNewHistogram("test.win.family", `inst="b"`)
	for i := 0; i < 10; i++ {
		a.Record(100)
	}
	for i := 0; i < 5; i++ {
		b.Record(200)
	}
	if got := MergedWindow("test.win.family").Count; got != 15 {
		t.Errorf("MergedWindow Count = %d, want 15", got)
	}
	if got := MergedWindow("test.win.nosuch").Count; got != 0 {
		t.Errorf("unknown family MergedWindow Count = %d, want 0", got)
	}
	for r := 0; r < WinSlots; r++ {
		a.RotateWindow()
	}
	if got := MergedWindow("test.win.family").Count; got != 5 {
		t.Errorf("after expiring a's samples MergedWindow Count = %d, want 5", got)
	}
}

// TestRateWindow drives the counter-delta ring with synthetic snapshots and
// pins the windowed-rate arithmetic, the baseline arming, and expiry.
func TestRateWindow(t *testing.T) {
	rw := &RateWindow{}
	if got := rw.RatesPerSec(); got != nil {
		t.Fatalf("rates before any tick = %v, want nil", got)
	}
	// First tick arms the baseline only.
	rw.Tick(Snap{"q": 100}, 0)
	if got := rw.RatesPerSec(); got != nil {
		t.Fatalf("rates after baseline tick = %v, want nil", got)
	}
	// 50 increments over 10 seconds → 5/s.
	rw.Tick(Snap{"q": 150}, 10*time.Second)
	rates := rw.RatesPerSec()
	if got := rates["q"]; got != 5 {
		t.Errorf("rate after one delta = %v, want 5", got)
	}
	// A second delta: 10 more over 10s → window rate (50+10)/20s = 3/s.
	rw.Tick(Snap{"q": 160}, 10*time.Second)
	if got := rw.RatesPerSec()["q"]; got != 3 {
		t.Errorf("rate after two deltas = %v, want 3", got)
	}
	if got := rw.WindowSpan(); got != 20*time.Second {
		t.Errorf("WindowSpan = %v, want 20s", got)
	}
	// Idle ticks age the early delta out of the ring.
	for i := 0; i < WinSlots; i++ {
		rw.Tick(Snap{"q": 160}, 10*time.Second)
	}
	if got, ok := rw.RatesPerSec()["q"]; ok && got != 0 {
		t.Errorf("rate after idle window = %v, want 0 or absent", got)
	}
	rw.Reset()
	if got := rw.RatesPerSec(); got != nil {
		t.Errorf("rates after Reset = %v, want nil", got)
	}
}

// TestRegisterGaugeFunc pins the callback-gauge contract: reads evaluate
// the function, re-registration replaces, a stale unregister is a no-op,
// and stored gauges shadow callbacks in the snapshot.
func TestRegisterGaugeFunc(t *testing.T) {
	un1 := RegisterGaugeFunc("test.gaugefunc", "", func() float64 { return 7 })
	if v, ok := GaugeValue("test.gaugefunc", ""); !ok || v != 7 {
		t.Fatalf("GaugeValue = %v,%v want 7,true", v, ok)
	}
	// Replace; then the old unregister must not remove the new registration.
	un2 := RegisterGaugeFunc("test.gaugefunc", "", func() float64 { return 9 })
	un1()
	if v, ok := GaugeValue("test.gaugefunc", ""); !ok || v != 9 {
		t.Fatalf("after replace GaugeValue = %v,%v want 9,true", v, ok)
	}
	// Stored gauges win key collisions.
	SetGauge("test.gaugefunc.shadow", "", 1)
	unS := RegisterGaugeFunc("test.gaugefunc.shadow", "", func() float64 { return 2 })
	keys, vals := gaugeSnapshot()
	for i, k := range keys {
		if k == "test.gaugefunc.shadow" && vals[i] != 1 {
			t.Errorf("stored gauge shadowed by callback: snapshot = %v, want 1", vals[i])
		}
	}
	unS()
	un2()
	if _, ok := GaugeValue("test.gaugefunc", ""); ok {
		t.Error("gauge func still readable after unregister")
	}
}
