package obs

import (
	"strings"
	"sync"
	"time"
)

// The /debug/health verdict (ISSUE 9): a structured ok/degraded/unhealthy
// reading computed from the windowed telemetry — windowed p99 latency,
// windowed error rate, and queue saturation — against operator-set
// thresholds. Each enabled check compares its current value to its
// threshold: under it the check is ok, over it degraded, over twice it
// unhealthy; the verdict is the worst check, with one reason string per
// non-ok check. A check with no data (no traffic in the window, no gauge
// registered) is ok — an idle server is a healthy server.

// HealthConfig sets the thresholds the verdict is computed from. The zero
// value disables every check, so Health() reports ok until a server opts
// in (SetHealthConfig).
type HealthConfig struct {
	// LatencyFamily is the histogram family whose windowed p99 the latency
	// check reads (merged across labels), e.g. "server.request_latency" or
	// "knn.search_latency". Empty disables the latency check.
	LatencyFamily string
	// LatencyP99Max is the windowed-p99 degraded threshold; ≤ 0 disables.
	LatencyP99Max time.Duration
	// ErrorRateMax is the degraded threshold for the windowed ratio of 5xx
	// responses among ErrorFamily counters; ≤ 0 disables.
	ErrorRateMax float64
	// ErrorFamily is the labeled counter family error rate is computed
	// over, matching instances by a code="5xx" label. Empty selects
	// "server.requests_total".
	ErrorFamily string
	// QueueSaturationMax is the degraded threshold for engine queue
	// saturation (queue depth ÷ queue capacity, summed over live engine
	// pools); ≤ 0 disables.
	QueueSaturationMax float64
}

var healthCfg struct {
	mu  sync.RWMutex
	cfg HealthConfig
}

// SetHealthConfig installs the thresholds /debug/health (and the server's
// /readyz degraded report) computes against.
func SetHealthConfig(cfg HealthConfig) {
	if cfg.ErrorFamily == "" {
		cfg.ErrorFamily = "server.requests_total"
	}
	healthCfg.mu.Lock()
	healthCfg.cfg = cfg
	healthCfg.mu.Unlock()
}

// HealthConfigured returns the installed thresholds.
func HealthConfigured() HealthConfig {
	healthCfg.mu.RLock()
	defer healthCfg.mu.RUnlock()
	return healthCfg.cfg
}

// Health statuses, ordered by severity.
const (
	HealthOK        = "ok"
	HealthDegraded  = "degraded"
	HealthUnhealthy = "unhealthy"
)

// HealthCheck is one threshold comparison inside a verdict.
type HealthCheck struct {
	Name      string  `json:"name"`
	Status    string  `json:"status"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	// Detail spells the comparison out for humans ("windowed p99 12ms,
	// threshold 250ms over 60s window").
	Detail string `json:"detail"`
}

// HealthVerdict is the structured /debug/health answer.
type HealthVerdict struct {
	Status     string        `json:"status"`
	WhenUnixNs int64         `json:"when_unix_ns"`
	When       string        `json:"when"`
	Reasons    []string      `json:"reasons"`
	Checks     []HealthCheck `json:"checks"`
}

// grade maps a value against its degraded threshold: ok under it,
// degraded over it, unhealthy over twice it.
func grade(v, threshold float64) string {
	switch {
	case v > 2*threshold:
		return HealthUnhealthy
	case v > threshold:
		return HealthDegraded
	}
	return HealthOK
}

func worse(a, b string) string {
	rank := map[string]int{HealthOK: 0, HealthDegraded: 1, HealthUnhealthy: 2}
	if rank[b] > rank[a] {
		return b
	}
	return a
}

// Health computes the current verdict from the installed thresholds and
// the live windowed telemetry. Always safe to call; with no configuration
// (or no enabled checks) it reports ok with an empty check list.
func Health() HealthVerdict {
	cfg := HealthConfigured()
	now := time.Now()
	v := HealthVerdict{
		Status:     HealthOK,
		WhenUnixNs: now.UnixNano(),
		When:       now.Format(time.RFC3339Nano),
		Reasons:    []string{},
		Checks:     []HealthCheck{},
	}
	addCheck := func(c HealthCheck, reason string) {
		v.Checks = append(v.Checks, c)
		v.Status = worse(v.Status, c.Status)
		if c.Status != HealthOK {
			v.Reasons = append(v.Reasons, reason)
		}
	}

	if cfg.LatencyFamily != "" && cfg.LatencyP99Max > 0 {
		snap := MergedWindow(cfg.LatencyFamily)
		c := HealthCheck{
			Name:      "windowed_p99_latency",
			Status:    HealthOK,
			Threshold: float64(cfg.LatencyP99Max.Nanoseconds()),
		}
		if snap.Count > 0 {
			c.Value = snap.Quantile(0.99)
			c.Status = grade(c.Value, c.Threshold)
			c.Detail = cfg.LatencyFamily + " windowed p99 " +
				time.Duration(c.Value).String() + ", threshold " + cfg.LatencyP99Max.String()
		} else {
			c.Detail = cfg.LatencyFamily + ": no samples in window"
		}
		addCheck(c, c.Detail)
	}

	if cfg.ErrorRateMax > 0 {
		var errRate, totalRate float64
		for key, rate := range Rates.RatesPerSec() {
			name, labels := splitLabeled(key)
			if name != cfg.ErrorFamily {
				continue
			}
			totalRate += rate
			if strings.Contains(labels, `code="5`) {
				errRate += rate
			}
		}
		c := HealthCheck{Name: "windowed_error_rate", Status: HealthOK, Threshold: cfg.ErrorRateMax}
		if totalRate > 0 {
			c.Value = errRate / totalRate
			c.Status = grade(c.Value, c.Threshold)
			c.Detail = "5xx fraction of " + cfg.ErrorFamily + " over window"
		} else {
			c.Detail = cfg.ErrorFamily + ": no requests in window"
		}
		addCheck(c, c.Detail)
	}

	if cfg.QueueSaturationMax > 0 {
		depth, okD := GaugeValue("engine.queue_depth", "")
		capacity, okC := GaugeValue("engine.queue_capacity", "")
		c := HealthCheck{Name: "engine_queue_saturation", Status: HealthOK, Threshold: cfg.QueueSaturationMax}
		if okD && okC && capacity > 0 {
			c.Value = depth / capacity
			c.Status = grade(c.Value, c.Threshold)
			c.Detail = "engine queue depth over capacity"
		} else {
			c.Detail = "no engine pools registered"
		}
		addCheck(c, c.Detail)
	}

	return v
}
