//go:build !race

package obs

// raceEnabled reports that this test binary was built with -race, whose
// instrumentation allocates on its own and invalidates AllocsPerRun gates.
const raceEnabled = false
