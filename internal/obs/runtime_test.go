package obs

import (
	"runtime"
	"testing"
)

// TestSampleRuntime checks the runtime/metrics sample reads live values.
func TestSampleRuntime(t *testing.T) {
	rs := SampleRuntime()
	if rs.Goroutines <= 0 {
		t.Errorf("Goroutines = %d, want > 0", rs.Goroutines)
	}
	if rs.GOMAXPROCS != runtime.GOMAXPROCS(0) {
		t.Errorf("GOMAXPROCS = %d, want %d", rs.GOMAXPROCS, runtime.GOMAXPROCS(0))
	}
	if rs.HeapBytes == 0 {
		t.Errorf("HeapBytes = %d, want > 0", rs.HeapBytes)
	}
	if rs.HeapObjects == 0 {
		t.Errorf("HeapObjects = %d, want > 0", rs.HeapObjects)
	}
	// Force a GC so cycle counts and pause quantiles have data, then
	// re-sample: the counters must be monotone and the pause quantiles
	// ordered.
	runtime.GC()
	rs2 := SampleRuntime()
	if rs2.GCCycles < rs.GCCycles || rs2.GCCycles == 0 {
		t.Errorf("GCCycles went %d -> %d, want monotone and > 0 after runtime.GC", rs.GCCycles, rs2.GCCycles)
	}
	if rs2.GCPauseP99Ns < rs2.GCPauseP50Ns {
		t.Errorf("GC pause p99 %v < p50 %v", rs2.GCPauseP99Ns, rs2.GCPauseP50Ns)
	}
	if rs2.GCPauseP50Ns < 0 || rs2.SchedLatP99Ns < 0 {
		t.Errorf("negative quantiles: %+v", rs2)
	}
}

// TestPublishRuntimeGauges checks the hyperdom_runtime_* gauges appear in
// the gauge table after a publish.
func TestPublishRuntimeGauges(t *testing.T) {
	PublishRuntimeGauges(SampleRuntime())
	for _, name := range []string{
		"runtime.goroutines", "runtime.gomaxprocs", "runtime.heap_bytes",
		"runtime.heap_objects", "runtime.gc_cycles", "runtime.gc_pause_p99_ns",
		"runtime.sched_latency_p99_ns",
	} {
		if _, ok := GaugeValue(name, ""); !ok {
			t.Errorf("gauge %s not published", name)
		}
	}
	if v, _ := GaugeValue("runtime.goroutines", ""); v <= 0 {
		t.Errorf("runtime.goroutines = %v, want > 0", v)
	}
}
