package obs

import (
	"sort"
	"sync"
	"time"
)

// The timeline ring (ISSUE 9): a fixed-size in-process ring of periodic
// snapshots, each pairing the windowed histogram quantiles with the
// counter rates of the same span, the runtime sample and the current
// gauges. One background ticker drives the whole time dimension:
//
//	every period: snapshot counters → Rates.Tick
//	              capture every histogram family's windowed quantiles
//	              sample the runtime, publish hyperdom_runtime_* gauges
//	              append a TimelineSnapshot to the ring
//	              RotateWindows()
//
// Rotation happens after the capture, so each snapshot sees the full
// just-finished period, and the first snapshot — one period after start —
// already carries non-null windowed quantiles for every family that
// recorded samples ("within one rotation period", the acceptance bar).
// /debug/timeline serves the ring oldest-first as JSON.

// FamilyWindow is one histogram family's windowed reading inside a
// timeline snapshot: the merged-across-labels sample count and quantiles
// over the window. Quantile fields are nil (JSON null) when the window is
// empty — a scraper can tell "no traffic" from "zero latency".
type FamilyWindow struct {
	Count uint64   `json:"count"`
	P50   *float64 `json:"p50"`
	P90   *float64 `json:"p90"`
	P99   *float64 `json:"p99"`
	P999  *float64 `json:"p999"`
}

// familyWindowOf summarizes a merged windowed snapshot.
func familyWindowOf(s HistSnap) FamilyWindow {
	fw := FamilyWindow{Count: s.Count}
	if s.Count == 0 {
		return fw
	}
	q := func(p float64) *float64 { v := s.Quantile(p); return &v }
	fw.P50, fw.P90, fw.P99, fw.P999 = q(0.50), q(0.90), q(0.99), q(0.999)
	return fw
}

// TimelineSnapshot is one periodic reading of the whole process: windowed
// quantiles per histogram family, windowed per-second counter rates, the
// runtime sample and the gauges, stamped with the wall clock so entries
// correlate with access logs and the flight recorders.
type TimelineSnapshot struct {
	WhenUnixNs int64  `json:"when_unix_ns"`
	When       string `json:"when"` // RFC3339Nano, for humans and log grep
	// WindowNs is the wall span the windowed quantiles and rates cover —
	// grows toward WinSlots×period as the ring warms up.
	WindowNs    int64                   `json:"window_ns"`
	Quantiles   map[string]FamilyWindow `json:"windowed_quantiles"`
	RatesPerSec map[string]float64      `json:"rates_per_sec"`
	Runtime     RuntimeSample           `json:"runtime"`
	Gauges      map[string]float64      `json:"gauges"`
}

// DefaultTimelineSlots sizes the ring when StartTimeline is given n ≤ 0:
// one hour of history at the default 10s period.
const DefaultTimelineSlots = 360

// DefaultTimelinePeriod is the rotation/snapshot cadence when
// StartTimeline is given period ≤ 0. Six window slots at 10s give the
// nominal one-minute windows of the _1m metric families.
const DefaultTimelinePeriod = 10 * time.Second

// timelineState is the running collector: the ring plus the ticker
// goroutine's lifecycle.
type timelineState struct {
	mu    sync.Mutex
	ring  []*TimelineSnapshot
	next  int
	used  int
	stop  chan struct{}
	done  chan struct{}
	tick  time.Duration
	prevT time.Time
}

var timeline timelineState

// StartTimeline starts the periodic collector: every period it captures a
// TimelineSnapshot into a slots-sized ring, ticks the counter rate window
// and rotates every histogram window. period ≤ 0 selects
// DefaultTimelinePeriod, slots ≤ 0 DefaultTimelineSlots. A second call
// replaces the running collector (the ring restarts empty). Stop with
// StopTimeline.
func StartTimeline(period time.Duration, slots int) {
	if period <= 0 {
		period = DefaultTimelinePeriod
	}
	if slots <= 0 {
		slots = DefaultTimelineSlots
	}
	StopTimeline()
	timeline.mu.Lock()
	timeline.ring = make([]*TimelineSnapshot, slots)
	timeline.next, timeline.used = 0, 0
	timeline.tick = period
	timeline.prevT = time.Now()
	stop := make(chan struct{})
	done := make(chan struct{})
	timeline.stop, timeline.done = stop, done
	timeline.mu.Unlock()

	// Arm the rate baseline so the first periodic tick already yields
	// deltas over a known span.
	Rates.Tick(Snapshot(), 0)

	go func() {
		defer close(done)
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				TimelineTick()
			}
		}
	}()
}

// StopTimeline stops the collector goroutine, keeping the ring readable.
// No-op when the timeline is not running.
func StopTimeline() {
	timeline.mu.Lock()
	stop, done := timeline.stop, timeline.done
	timeline.stop, timeline.done = nil, nil
	timeline.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// TimelineTick performs one collection step by hand: capture, tick rates,
// rotate windows. The running collector calls it on its cadence; tests
// (and callers embedding their own scheduler) may call it directly.
func TimelineTick() {
	now := time.Now()
	timeline.mu.Lock()
	dt := now.Sub(timeline.prevT)
	if timeline.prevT.IsZero() {
		dt = 0
	}
	timeline.prevT = now
	timeline.mu.Unlock()

	Rates.Tick(Snapshot(), dt)
	rs := SampleRuntime()
	PublishRuntimeGauges(rs)

	snap := &TimelineSnapshot{
		WhenUnixNs:  now.UnixNano(),
		When:        now.Format(time.RFC3339Nano),
		WindowNs:    Rates.WindowSpan().Nanoseconds(),
		Quantiles:   make(map[string]FamilyWindow),
		RatesPerSec: Rates.RatesPerSec(),
		Runtime:     rs,
		Gauges:      make(map[string]float64),
	}
	for _, name := range histogramFamilies() {
		snap.Quantiles[name] = familyWindowOf(MergedWindow(name))
	}
	gk, gv := gaugeSnapshot()
	for i, key := range gk {
		snap.Gauges[key] = gv[i]
	}

	timeline.mu.Lock()
	if timeline.ring == nil {
		timeline.ring = make([]*TimelineSnapshot, DefaultTimelineSlots)
	}
	timeline.ring[timeline.next] = snap
	timeline.next = (timeline.next + 1) % len(timeline.ring)
	if timeline.used < len(timeline.ring) {
		timeline.used++
	}
	timeline.mu.Unlock()

	RotateWindows()
}

// TimelineSnapshots returns the retained snapshots, oldest first.
func TimelineSnapshots() []*TimelineSnapshot {
	timeline.mu.Lock()
	defer timeline.mu.Unlock()
	out := make([]*TimelineSnapshot, 0, timeline.used)
	if timeline.used == 0 {
		return out
	}
	n := len(timeline.ring)
	start := (timeline.next - timeline.used + n) % n
	for i := 0; i < timeline.used; i++ {
		out = append(out, timeline.ring[(start+i)%n])
	}
	return out
}

// ResetTimelineForTest empties the ring without touching the collector
// goroutine.
func ResetTimelineForTest() {
	timeline.mu.Lock()
	defer timeline.mu.Unlock()
	for i := range timeline.ring {
		timeline.ring[i] = nil
	}
	timeline.next, timeline.used = 0, 0
	timeline.prevT = time.Time{}
}

// histogramFamilies returns the distinct registered histogram family
// names, sorted.
func histogramFamilies() []string {
	var names []string
	seen := ""
	for _, h := range Histograms() { // sorted by (name, labels)
		if h.Name() != seen {
			seen = h.Name()
			names = append(names, seen)
		}
	}
	sort.Strings(names)
	return names
}
