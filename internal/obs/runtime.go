package obs

import (
	"math"
	"runtime"
	"runtime/metrics"
	"sync"
)

// Runtime collector (ISSUE 9): a point-in-time sample of the Go runtime's
// own health — heap footprint, GC pause distribution, scheduler pressure —
// read from runtime/metrics. The timeline ticker takes one sample per
// period, stores it in the timeline ring and publishes the scalar fields
// as hyperdom_runtime_* gauges, so an operator can correlate a windowed
// latency regression with a GC storm or a goroutine leak without attaching
// a profiler.

// runtimeMetricNames are the runtime/metrics keys the collector reads.
// All of them exist since Go 1.17; a missing or KindBad sample (an older
// or future runtime dropping a key) degrades to zero instead of failing.
var runtimeMetricNames = []string{
	"/memory/classes/heap/objects:bytes",
	"/gc/heap/objects:objects",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
	"/sched/goroutines:goroutines",
	"/sched/latencies:seconds",
}

// runtimeSampleBuf reuses the metrics.Sample slice across ticks; the
// collector runs on one goroutine (the timeline ticker) plus ad-hoc test
// callers, so a mutex is plenty.
var runtimeSampleBuf struct {
	mu      sync.Mutex
	samples []metrics.Sample
}

// RuntimeSample is one reading of the runtime collector. Pause and
// scheduling-latency quantiles come from the runtime's own cumulative
// float64 histograms, so they cover the process lifetime (the runtime does
// not expose windowed pause data); everything else is instantaneous.
type RuntimeSample struct {
	Goroutines    int     `json:"goroutines"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	HeapBytes     uint64  `json:"heap_bytes"`
	HeapObjects   uint64  `json:"heap_objects"`
	GCCycles      uint64  `json:"gc_cycles"`
	GCPauseP50Ns  float64 `json:"gc_pause_p50_ns"`
	GCPauseP99Ns  float64 `json:"gc_pause_p99_ns"`
	SchedLatP99Ns float64 `json:"sched_latency_p99_ns"`
}

// SampleRuntime reads one RuntimeSample from runtime/metrics.
func SampleRuntime() RuntimeSample {
	runtimeSampleBuf.mu.Lock()
	defer runtimeSampleBuf.mu.Unlock()
	if runtimeSampleBuf.samples == nil {
		runtimeSampleBuf.samples = make([]metrics.Sample, len(runtimeMetricNames))
		for i, name := range runtimeMetricNames {
			runtimeSampleBuf.samples[i].Name = name
		}
	}
	metrics.Read(runtimeSampleBuf.samples)

	var rs RuntimeSample
	rs.GOMAXPROCS = runtime.GOMAXPROCS(0)
	for _, s := range runtimeSampleBuf.samples {
		switch s.Name {
		case "/memory/classes/heap/objects:bytes":
			rs.HeapBytes = sampleUint(s)
		case "/gc/heap/objects:objects":
			rs.HeapObjects = sampleUint(s)
		case "/gc/cycles/total:gc-cycles":
			rs.GCCycles = sampleUint(s)
		case "/sched/goroutines:goroutines":
			rs.Goroutines = int(sampleUint(s))
		case "/gc/pauses:seconds":
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				h := s.Value.Float64Histogram()
				rs.GCPauseP50Ns = float64HistQuantile(h, 0.50) * 1e9
				rs.GCPauseP99Ns = float64HistQuantile(h, 0.99) * 1e9
			}
		case "/sched/latencies:seconds":
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				rs.SchedLatP99Ns = float64HistQuantile(s.Value.Float64Histogram(), 0.99) * 1e9
			}
		}
	}
	return rs
}

// sampleUint reads a KindUint64 sample, zero otherwise.
func sampleUint(s metrics.Sample) uint64 {
	if s.Value.Kind() == metrics.KindUint64 {
		return s.Value.Uint64()
	}
	return 0
}

// float64HistQuantile extracts the q-quantile from a runtime/metrics
// Float64Histogram, reporting the lower bound of the bucket holding the
// sample of that rank (matching HistSnap.Quantile's never-overshoot
// contract). Empty histograms return 0; -Inf lower bounds clamp to 0.
func float64HistQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			lo := h.Buckets[i]
			if math.IsInf(lo, -1) || lo < 0 {
				return 0
			}
			return lo
		}
	}
	return 0
}

// PublishRuntimeGauges stores rs as hyperdom_runtime_* gauges so /metrics
// carries the latest runtime reading between timeline ticks.
func PublishRuntimeGauges(rs RuntimeSample) {
	SetGauge("runtime.goroutines", "", float64(rs.Goroutines))
	SetGauge("runtime.gomaxprocs", "", float64(rs.GOMAXPROCS))
	SetGauge("runtime.heap_bytes", "", float64(rs.HeapBytes))
	SetGauge("runtime.heap_objects", "", float64(rs.HeapObjects))
	SetGauge("runtime.gc_cycles", "", float64(rs.GCCycles))
	SetGauge("runtime.gc_pause_p99_ns", "", rs.GCPauseP99Ns)
	SetGauge("runtime.sched_latency_p99_ns", "", rs.SchedLatP99Ns)
}
