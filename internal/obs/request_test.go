package obs

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

func TestBoundValueMarshal(t *testing.T) {
	b, err := json.Marshal(map[string]BoundValue{
		"inf":  BoundValue(math.Inf(1)),
		"ninf": BoundValue(math.Inf(-1)),
		"nan":  BoundValue(math.NaN()),
		"v":    BoundValue(2.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, want := range []string{`"inf":null`, `"ninf":null`, `"nan":null`, `"v":2.5`} {
		if !strings.Contains(s, want) {
			t.Fatalf("marshal %s missing %s", s, want)
		}
	}
}

func TestRequestRecorderAdmissionAndDump(t *testing.T) {
	rr := &RequestRecorder{}
	// Fill beyond capacity with ascending latencies; the RequestSlots
	// slowest must survive.
	for i := 0; i < RequestSlots+16; i++ {
		rr.Record(&RequestTrace{RequestID: "r", LatencyNs: int64(i + 1)})
	}
	dump := rr.Dump()
	if len(dump) != RequestSlots {
		t.Fatalf("dump %d, want %d", len(dump), RequestSlots)
	}
	for i := 1; i < len(dump); i++ {
		if dump[i].LatencyNs > dump[i-1].LatencyNs {
			t.Fatalf("dump not sorted desc at %d: %d > %d", i, dump[i].LatencyNs, dump[i-1].LatencyNs)
		}
	}
	// The fastest retained must be the (16+1)-th slowest overall.
	if got, want := dump[len(dump)-1].LatencyNs, int64(17); got != want {
		t.Fatalf("fastest retained %d, want %d", got, want)
	}
	// A too-fast request is rejected once full.
	rr.Record(&RequestTrace{RequestID: "fast", LatencyNs: 1})
	for _, d := range rr.Dump() {
		if d.RequestID == "fast" {
			t.Fatal("too-fast request admitted into a full ring")
		}
	}
	rr.Reset()
	if got := rr.Dump(); len(got) != 0 {
		t.Fatalf("dump after reset: %d", len(got))
	}
}

func TestRequestChromeTraceExport(t *testing.T) {
	traces := []*RequestTrace{{
		RequestID:  "abc-1",
		Collection: "default",
		Endpoint:   "knn",
		Status:     200,
		K:          5,
		WhenUnixNs: 1000,
		LatencyNs:  500,
		Shards: []ShardSpan{
			{Shard: 0, LatencyNs: 200, Candidates: 7, BoundObserved: BoundValue(math.Inf(1)), BoundPublished: 3.5, TraceID: 42},
			{Shard: 1, LatencyNs: 300, Candidates: 9, BoundObserved: 3.5, BoundPublished: 3.5},
		},
		Merge: MergeSpan{LatencyNs: 50, Candidates: 16, Pruned: 11, Results: 5},
	}}
	var sb strings.Builder
	if err := WriteRequestChromeTrace(&sb, traces); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("invalid trace_event JSON: %v\n%s", err, sb.String())
	}
	// 1 process meta + 1 root + 2 thread metas + 2 shard spans + 1 merge.
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("%d events, want 7\n%s", len(doc.TraceEvents), sb.String())
	}
	shardSpans, withTraceID := 0, 0
	for _, e := range doc.TraceEvents {
		if e["name"] == "shard-search" {
			shardSpans++
			args := e["args"].(map[string]any)
			if args["request_id"] != "abc-1" {
				t.Fatalf("shard span missing request_id: %v", e)
			}
			if _, ok := args["trace_id"]; ok {
				withTraceID++
			}
			// The Inf bound must surface as null, never +Inf (which
			// would have failed the whole encode).
			if v, ok := args["distk_observed"]; ok && v != nil {
				if f, isF := v.(float64); isF && math.IsInf(f, 0) {
					t.Fatalf("Inf leaked into trace args: %v", e)
				}
			}
		}
	}
	if shardSpans != 2 || withTraceID != 1 {
		t.Fatalf("shard spans %d (with trace_id %d), want 2 (1)", shardSpans, withTraceID)
	}

	// Empty set still produces a valid document.
	sb.Reset()
	if err := WriteRequestChromeTrace(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 0 {
		t.Fatalf("empty export has %d events", len(doc.TraceEvents))
	}
}

func TestDebugRequestsEndpoint(t *testing.T) {
	ResetForTest()
	Requests.Record(&RequestTrace{
		RequestID: "req-9", Collection: "default", Endpoint: "knn",
		Status: 200, K: 3, LatencyNs: 1234,
		Shards: []ShardSpan{{Shard: 0, Candidates: 5, BoundObserved: BoundValue(math.Inf(1))}},
	})
	defer ResetForTest()
	ts := httptest.NewServer(Handler())
	defer ts.Close()

	body := httpGet(t, ts.URL+"/debug/requests")
	var recs []RequestTrace
	if err := json.Unmarshal([]byte(body), &recs); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if len(recs) != 1 || recs[0].RequestID != "req-9" || len(recs[0].Shards) != 1 {
		t.Fatalf("records %+v", recs)
	}
	if !strings.Contains(body, `"distk_observed": null`) {
		t.Fatalf("Inf bound not serialized as null:\n%s", body)
	}

	chrome := httpGet(t, ts.URL+"/debug/requests?format=chrome")
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(chrome), &doc); err != nil {
		t.Fatalf("invalid chrome JSON: %v\n%s", err, chrome)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome export empty")
	}

	// Empty recorder must serve [].
	ResetForTest()
	body = httpGet(t, ts.URL+"/debug/requests")
	if strings.TrimSpace(body) != "[]" {
		t.Fatalf("empty dump = %q, want []", body)
	}
}

func TestLabeledCountersAndGaugesExposition(t *testing.T) {
	ResetForTest()
	SetEnabled(true)
	defer SetEnabled(false)
	defer ResetForTest()

	GetOrNewLabeled("server.requests_total", `code="200",endpoint="knn"`).Add(3)
	GetOrNewLabeled("server.requests_total", `code="404",endpoint="knn"`).Inc()
	SetGauge("build_info", `version="test",go_version="go0",quant_mode="f32"`, 1)
	SetGauge("plain_gauge", "", 2.5)

	var sb strings.Builder
	if err := WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		`hyperdom_server_requests_total{code="200",endpoint="knn"} 3`,
		`hyperdom_server_requests_total{code="404",endpoint="knn"} 1`,
		"# TYPE hyperdom_server_requests_total counter",
		"# TYPE hyperdom_build_info gauge",
		`hyperdom_build_info{version="test",go_version="go0",quant_mode="f32"} 1`,
		"hyperdom_plain_gauge 2.5",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q\n%s", want, body)
		}
	}
	// One # TYPE line per family even with several label sets.
	if got := strings.Count(body, "# TYPE hyperdom_server_requests_total counter"); got != 1 {
		t.Fatalf("requests_total TYPE lines = %d, want 1", got)
	}

	if v, ok := GaugeValue("plain_gauge", ""); !ok || v != 2.5 {
		t.Fatalf("GaugeValue = %v, %v", v, ok)
	}
	if _, ok := GaugeValue("missing", ""); ok {
		t.Fatal("missing gauge reported present")
	}
}
