package obs

import (
	"testing"
	"time"
)

// TestTimelineTickCapture drives one manual collection step and checks the
// acceptance bar of ISSUE 9: a family that recorded samples shows non-null
// windowed quantiles in the very first snapshot (capture happens before
// rotation), the runtime sample is live, and gauges ride along.
func TestTimelineTickCapture(t *testing.T) {
	ResetForTest()
	ResetTimelineForTest()
	h := GetOrNewHistogram("test.timeline.lat", "")
	for i := 0; i < 200; i++ {
		h.Record(int64(i) * 1000)
	}
	GetOrNew("test.timeline.hits").Add(30)
	SetGauge("test.timeline.gauge", "", 42)

	TimelineTick()

	snaps := TimelineSnapshots()
	if len(snaps) != 1 {
		t.Fatalf("got %d snapshots after one tick, want 1", len(snaps))
	}
	s := snaps[0]
	if s.WhenUnixNs == 0 || s.When == "" {
		t.Error("snapshot missing wall-clock stamp")
	}
	if _, err := time.Parse(time.RFC3339Nano, s.When); err != nil {
		t.Errorf("When %q is not RFC3339Nano: %v", s.When, err)
	}
	fw, ok := s.Quantiles["test.timeline.lat"]
	if !ok {
		t.Fatalf("snapshot has no windowed quantiles for the recorded family; got %v", s.Quantiles)
	}
	if fw.Count != 200 {
		t.Errorf("windowed Count = %d, want 200", fw.Count)
	}
	if fw.P99 == nil || fw.P50 == nil {
		t.Fatal("windowed quantiles are null in the first snapshot (capture must precede rotation)")
	}
	if *fw.P99 < *fw.P50 {
		t.Errorf("p99 %v < p50 %v", *fw.P99, *fw.P50)
	}
	if s.Runtime.Goroutines <= 0 || s.Runtime.GOMAXPROCS <= 0 {
		t.Errorf("runtime sample not live: %+v", s.Runtime)
	}
	if got := s.Gauges["test.timeline.gauge"]; got != 42 {
		t.Errorf("snapshot gauge = %v, want 42", got)
	}

	// An idle family yields null quantiles, not zeros.
	GetOrNewHistogram("test.timeline.idle", "")
	ResetForTest()
	ResetTimelineForTest()
	TimelineTick()
	s = TimelineSnapshots()[0]
	if fw := s.Quantiles["test.timeline.idle"]; fw.Count != 0 || fw.P99 != nil {
		t.Errorf("idle family window = %+v, want count 0 and null quantiles", fw)
	}
}

// TestTimelineRates checks the second tick carries windowed per-second
// counter rates derived from the deltas between ticks.
func TestTimelineRates(t *testing.T) {
	ResetForTest()
	ResetTimelineForTest()
	TimelineTick() // arms the rate baseline via Rates.Tick inside
	GetOrNew("test.timeline.rate").Add(500)
	time.Sleep(5 * time.Millisecond)
	TimelineTick()
	snaps := TimelineSnapshots()
	s := snaps[len(snaps)-1]
	rate, ok := s.RatesPerSec["test.timeline.rate"]
	if !ok {
		t.Fatalf("no windowed rate for the moved counter; got %v", s.RatesPerSec)
	}
	if rate <= 0 {
		t.Errorf("rate = %v, want > 0", rate)
	}
	if s.WindowNs <= 0 {
		t.Errorf("WindowNs = %d, want > 0", s.WindowNs)
	}
}

// TestTimelineRingWrap fills a small ring past capacity and checks the
// oldest-first read order and the fixed size.
func TestTimelineRingWrap(t *testing.T) {
	ResetForTest()
	StartTimeline(time.Hour, 3) // ticker too slow to interfere; ring of 3
	defer StopTimeline()
	ResetTimelineForTest()
	for i := 0; i < 5; i++ {
		TimelineTick()
	}
	snaps := TimelineSnapshots()
	if len(snaps) != 3 {
		t.Fatalf("ring holds %d snapshots, want 3", len(snaps))
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].WhenUnixNs < snaps[i-1].WhenUnixNs {
			t.Errorf("snapshots out of order: [%d]=%d before [%d]=%d",
				i, snaps[i].WhenUnixNs, i-1, snaps[i-1].WhenUnixNs)
		}
	}
}

// TestStartStopTimeline checks the background collector ticks on its own
// cadence and that Stop leaves the ring readable.
func TestStartStopTimeline(t *testing.T) {
	ResetForTest()
	StartTimeline(5*time.Millisecond, 16)
	deadline := time.Now().Add(2 * time.Second)
	for len(TimelineSnapshots()) == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	StopTimeline()
	n := len(TimelineSnapshots())
	if n == 0 {
		t.Fatal("background collector produced no snapshots")
	}
	time.Sleep(15 * time.Millisecond)
	if got := len(TimelineSnapshots()); got != n {
		t.Errorf("ring advanced after StopTimeline: %d -> %d", n, got)
	}
	StopTimeline() // idempotent
}
