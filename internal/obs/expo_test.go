package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"knn.search_latency":        "hyperdom_knn_search_latency",
		"dominance.hyperbola.trues": "hyperdom_dominance_hyperbola_trues",
		"weird-name with spaces/9":  "hyperdom_weird_name_with_spaces_9",
		"":                          "hyperdom_",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestMetricsEndpoint drives /metrics through the real handler and checks
// the Prometheus text contract: 200, the versioned content type, a # TYPE
// line per family, cumulative _bucket series ending in +Inf, and _sum/_count
// lines for a histogram we populated.
func TestMetricsEndpoint(t *testing.T) {
	c := New("test.expo.counter")
	c.Add(7)
	h := NewHistogram("test.expo.hist", `kind="a"`)
	h.Record(100)
	h.Record(200)
	h.Record(1 << 20)

	srv := httptest.NewServer(Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	for _, want := range []string{
		"# TYPE hyperdom_test_expo_counter counter\n",
		"hyperdom_test_expo_counter 7\n",
		"# TYPE hyperdom_test_expo_hist_seconds histogram\n",
		`hyperdom_test_expo_hist_seconds_bucket{kind="a",le="+Inf"} 3`,
		`hyperdom_test_expo_hist_seconds_count{kind="a"} 3`,
		`hyperdom_test_expo_hist_seconds_sum{kind="a"} `,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics output missing %q", want)
		}
	}

	// Cumulative bucket counts must be non-decreasing within the family and
	// the finite bounds must be in seconds (well below 1 for our ns samples).
	var prevCum int64 = -1
	var bucketLines int
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, `hyperdom_test_expo_hist_seconds_bucket{kind="a",le=`) {
			continue
		}
		bucketLines++
		cum, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("unparsable bucket line %q: %v", line, err)
		}
		if cum < prevCum {
			t.Errorf("bucket series not cumulative at %q", line)
		}
		prevCum = cum
	}
	if bucketLines < 4 { // 3 sample buckets + +Inf
		t.Errorf("expected ≥4 bucket lines for the populated histogram, got %d", bucketLines)
	}

	// One # TYPE line per family, even with multiple labeled instances.
	NewHistogram("test.expo.hist", `kind="b"`).Record(50)
	resp2, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	raw2, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(raw2), "# TYPE hyperdom_test_expo_hist_seconds histogram"); n != 1 {
		t.Errorf("family has %d # TYPE lines, want exactly 1", n)
	}
}

// TestSlowEndpoint checks /debug/slow serves the flight recorder dump as
// valid JSON in descending latency order.
func TestSlowEndpoint(t *testing.T) {
	Flight.Reset()
	defer Flight.Reset()
	sub := FlightLabel("expo-substrate")
	Flight.Record(FlightSample{LatencyNs: 300, Substrate: sub, K: 10, Nodes: 42})
	Flight.Record(FlightSample{LatencyNs: 700, Substrate: sub, K: 5, Nodes: 99})

	srv := httptest.NewServer(Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/slow status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("/debug/slow Content-Type = %q", ct)
	}
	var recs []FlightRecord
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		t.Fatalf("/debug/slow is not valid JSON: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("/debug/slow returned %d records, want 2", len(recs))
	}
	if recs[0].LatencyNs != 700 || recs[1].LatencyNs != 300 {
		t.Errorf("records not in descending latency order: %+v", recs)
	}
	if recs[0].Substrate != "expo-substrate" || recs[0].K != 5 || recs[0].Nodes != 99 {
		t.Errorf("record fields lost in exposition: %+v", recs[0])
	}
}

// TestSlowEndpointEmpty checks the empty-recorder case: /debug/slow must
// serve [] (never null), with the JSON content type.
func TestSlowEndpointEmpty(t *testing.T) {
	Flight.Reset()
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("/debug/slow Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := strings.TrimSpace(string(raw))
	if body != "[]" {
		t.Errorf("empty /debug/slow body = %q, want []", body)
	}
}

// TestTraceEndpoint checks /debug/trace serves the retained execution
// traces as trace_event JSON — and a valid empty document (traceEvents: [],
// not null) when nothing is retained.
func TestTraceEndpoint(t *testing.T) {
	Flight.Reset()
	defer Flight.Reset()
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	get := func() (string, map[string]json.RawMessage) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + "/debug/trace")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("/debug/trace status = %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
			t.Errorf("/debug/trace Content-Type = %q", ct)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		var doc map[string]json.RawMessage
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("/debug/trace is not valid JSON: %v", err)
		}
		return string(raw), doc
	}

	_, doc := get()
	events, ok := doc["traceEvents"]
	if !ok || strings.TrimSpace(string(events)) == "null" {
		t.Fatalf("empty /debug/trace traceEvents = %q, want an array", events)
	}

	var b TraceBuf
	b.Begin(time.Now())
	sp := b.StartNode(1, 0)
	b.EndNode(sp, 0, 3)
	qt := b.Finish(FlightLabel("sstree"), FlightLabel("DF"), 4, time.Now().UnixNano(), 900)
	Flight.Record(FlightSample{LatencyNs: 900, K: 4, Trace: qt})

	body, doc := get()
	var evs []map[string]any
	if err := json.Unmarshal(doc["traceEvents"], &evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("/debug/trace has no events after recording a trace")
	}
	if !strings.Contains(body, `"search"`) || !strings.Contains(body, `"leaf"`) {
		t.Errorf("/debug/trace export lost the span events: %s", body)
	}
}

// TestDebugEndpoints checks /debug/vars and the pprof index respond.
func TestDebugEndpoints(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	for _, path := range []string{"/debug/vars", "/debug/pprof/"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != 200 {
			t.Errorf("%s status = %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp, err := srv.Client().Get(srv.URL + "/metrics/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Errorf("unknown path served 200")
	}
}
