package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
)

// The exposition server (ISSUE 3): obs.Handler serves every observability
// surface of the process over HTTP —
//
//	/metrics        counters and histogram buckets in Prometheus text
//	                format, plus the windowed *_1m quantile and rate
//	                families when the timeline is ticking
//	/debug/slow     the flight recorder's slowest-queries dump as JSON
//	/debug/trace    the retained execution traces as Chrome trace_event JSON
//	/debug/timeline the timeline ring: periodic windowed-quantile /
//	                rate / runtime snapshots, oldest first, as JSON
//	/debug/health   the structured ok/degraded/unhealthy verdict (503
//	                when unhealthy)
//	/debug/vars     the expvar export (including the "hyperdom" snapshot)
//	/debug/pprof    the runtime profiler endpoints
//
// Metric names follow the hyperdom_* convention: the registry name with
// every non-alphanumeric rune mapped to '_' behind a "hyperdom_" prefix,
// and histogram families suffixed "_seconds" with nanosecond bounds
// converted to seconds, per Prometheus base-unit convention.

// promName sanitizes a registry name into a Prometheus metric name.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + len("hyperdom_"))
	b.WriteString("hyperdom_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteMetrics writes the whole registry — counters (flat and labeled),
// then gauges, then histogram families — in Prometheus text exposition
// format. Labeled counters carry their label pairs in the registry key
// ("name|pairs", see GetOrNewLabeled) and are split back out here, with one
// # TYPE line per family.
func WriteMetrics(w io.Writer) error {
	snap := Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	// Order by (name, labels), not by raw key: '|' sorts after '_', so raw
	// order could split a labeled family around an unrelated longer name and
	// emit its # TYPE line twice.
	sort.Slice(names, func(i, j int) bool {
		ni, li := splitLabeled(names[i])
		nj, lj := splitLabeled(names[j])
		if ni != nj {
			return ni < nj
		}
		return li < lj
	})
	var family string
	for _, key := range names {
		name, labels := splitLabeled(key)
		pn := promName(name)
		if pn != family {
			family = pn
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", pn); err != nil {
				return err
			}
		}
		var err error
		if labels == "" {
			_, err = fmt.Fprintf(w, "%s %d\n", pn, snap[key])
		} else {
			_, err = fmt.Fprintf(w, "%s{%s} %d\n", pn, labels, snap[key])
		}
		if err != nil {
			return err
		}
	}

	gk, gv := gaugeSnapshot()
	family = ""
	for i, key := range gk {
		name, labels := splitLabeled(key)
		pn := promName(name)
		if pn != family {
			family = pn
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", pn); err != nil {
				return err
			}
		}
		var err error
		if labels == "" {
			_, err = fmt.Fprintf(w, "%s %g\n", pn, gv[i])
		} else {
			_, err = fmt.Fprintf(w, "%s{%s} %g\n", pn, labels, gv[i])
		}
		if err != nil {
			return err
		}
	}

	family = ""
	for _, h := range Histograms() {
		pn := promName(h.Name()) + "_seconds"
		if pn != family {
			family = pn
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
				return err
			}
		}
		if err := writeHistogram(w, pn, h.Labels(), h.Snap()); err != nil {
			return err
		}
	}
	return writeWindowedMetrics(w)
}

// writeWindowedMetrics emits the sliding-window families (ISSUE 9):
// per-family windowed quantile gauges suffixed "_1m" (nominal — the true
// span is WinSlots rotation periods) and, when the timeline rate ring is
// ticking, windowed per-second counter rates suffixed "_rate_1m". Gauge
// typed: windowed values go down as well as up.
func writeWindowedMetrics(w io.Writer) error {
	for _, name := range histogramFamilies() {
		ws := MergedWindow(name)
		if ws.Count == 0 {
			continue
		}
		pn := promName(name) + "_seconds_1m"
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", pn); err != nil {
			return err
		}
		for _, q := range [...]struct {
			label string
			p     float64
		}{{"0.5", 0.50}, {"0.9", 0.90}, {"0.99", 0.99}, {"0.999", 0.999}} {
			if _, err := fmt.Fprintf(w, "%s{quantile=%q} %g\n",
				pn, q.label, ws.Quantile(q.p)/1e9); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s_count gauge\n%s_count %d\n", pn, pn, ws.Count); err != nil {
			return err
		}
	}

	rates := Rates.RatesPerSec()
	keys := make([]string, 0, len(rates))
	for key := range rates {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		ni, li := splitLabeled(keys[i])
		nj, lj := splitLabeled(keys[j])
		if ni != nj {
			return ni < nj
		}
		return li < lj
	})
	family := ""
	for _, key := range keys {
		name, labels := splitLabeled(key)
		pn := promName(name) + "_rate_1m"
		if pn != family {
			family = pn
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", pn); err != nil {
				return err
			}
		}
		var err error
		if labels == "" {
			_, err = fmt.Fprintf(w, "%s %g\n", pn, rates[key])
		} else {
			_, err = fmt.Fprintf(w, "%s{%s} %g\n", pn, labels, rates[key])
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram writes one labeled histogram instance: cumulative
// _bucket lines for every non-empty bucket boundary plus +Inf, then _sum
// and _count. Bounds are emitted in seconds.
func writeHistogram(w io.Writer, pn, labels string, s HistSnap) error {
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		cum += c
		le := strconv.FormatFloat(float64(histLower(i+1))/1e9, 'g', -1, 64)
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", pn, joinLabels(labels), le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", pn, joinLabels(labels), s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum{%s} %g\n%s_count{%s} %d\n",
		pn, labels, float64(s.Sum)/1e9, pn, labels, s.Count); err != nil {
		return err
	}
	return nil
}

// joinLabels returns labels ready to precede another pair inside braces.
func joinLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

// Handler returns the observability mux described above. Mount it on any
// server, or let Serve run it on a dedicated listener.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WriteMetrics(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/slow", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		recs := Flight.Dump()
		if recs == nil {
			// Dump never returns nil today, but an empty recorder must
			// serve [] — scrapers index into the array unconditionally.
			recs = []FlightRecord{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(recs); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/requests", func(w http.ResponseWriter, r *http.Request) {
		recs := Requests.Dump()
		if r.URL.Query().Get("format") == "chrome" {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			if err := WriteRequestChromeTrace(w, recs); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if recs == nil {
			recs = []*RequestTrace{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(recs); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/timeline", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		snaps := TimelineSnapshots() // never nil: an empty ring serves []
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snaps); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/health", func(w http.ResponseWriter, r *http.Request) {
		v := Health()
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if v.Status == HealthUnhealthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(v); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := WriteChromeTrace(w, Flight.Traces()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
