package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
)

// The exposition server (ISSUE 3): obs.Handler serves every observability
// surface of the process over HTTP —
//
//	/metrics     counters and histogram buckets in Prometheus text format
//	/debug/slow  the flight recorder's slowest-queries dump as JSON
//	/debug/trace the retained execution traces as Chrome trace_event JSON
//	/debug/vars  the expvar export (including the "hyperdom" snapshot)
//	/debug/pprof the runtime profiler endpoints
//
// Metric names follow the hyperdom_* convention: the registry name with
// every non-alphanumeric rune mapped to '_' behind a "hyperdom_" prefix,
// and histogram families suffixed "_seconds" with nanosecond bounds
// converted to seconds, per Prometheus base-unit convention.

// promName sanitizes a registry name into a Prometheus metric name.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + len("hyperdom_"))
	b.WriteString("hyperdom_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteMetrics writes the whole registry — counters (flat and labeled),
// then gauges, then histogram families — in Prometheus text exposition
// format. Labeled counters carry their label pairs in the registry key
// ("name|pairs", see GetOrNewLabeled) and are split back out here, with one
// # TYPE line per family.
func WriteMetrics(w io.Writer) error {
	snap := Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	// Order by (name, labels), not by raw key: '|' sorts after '_', so raw
	// order could split a labeled family around an unrelated longer name and
	// emit its # TYPE line twice.
	sort.Slice(names, func(i, j int) bool {
		ni, li := splitLabeled(names[i])
		nj, lj := splitLabeled(names[j])
		if ni != nj {
			return ni < nj
		}
		return li < lj
	})
	var family string
	for _, key := range names {
		name, labels := splitLabeled(key)
		pn := promName(name)
		if pn != family {
			family = pn
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", pn); err != nil {
				return err
			}
		}
		var err error
		if labels == "" {
			_, err = fmt.Fprintf(w, "%s %d\n", pn, snap[key])
		} else {
			_, err = fmt.Fprintf(w, "%s{%s} %d\n", pn, labels, snap[key])
		}
		if err != nil {
			return err
		}
	}

	gk, gv := gaugeSnapshot()
	family = ""
	for i, key := range gk {
		name, labels := splitLabeled(key)
		pn := promName(name)
		if pn != family {
			family = pn
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", pn); err != nil {
				return err
			}
		}
		var err error
		if labels == "" {
			_, err = fmt.Fprintf(w, "%s %g\n", pn, gv[i])
		} else {
			_, err = fmt.Fprintf(w, "%s{%s} %g\n", pn, labels, gv[i])
		}
		if err != nil {
			return err
		}
	}

	family = ""
	for _, h := range Histograms() {
		pn := promName(h.Name()) + "_seconds"
		if pn != family {
			family = pn
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
				return err
			}
		}
		if err := writeHistogram(w, pn, h.Labels(), h.Snap()); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram writes one labeled histogram instance: cumulative
// _bucket lines for every non-empty bucket boundary plus +Inf, then _sum
// and _count. Bounds are emitted in seconds.
func writeHistogram(w io.Writer, pn, labels string, s HistSnap) error {
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		cum += c
		le := strconv.FormatFloat(float64(histLower(i+1))/1e9, 'g', -1, 64)
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", pn, joinLabels(labels), le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", pn, joinLabels(labels), s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum{%s} %g\n%s_count{%s} %d\n",
		pn, labels, float64(s.Sum)/1e9, pn, labels, s.Count); err != nil {
		return err
	}
	return nil
}

// joinLabels returns labels ready to precede another pair inside braces.
func joinLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

// Handler returns the observability mux described above. Mount it on any
// server, or let Serve run it on a dedicated listener.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WriteMetrics(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/slow", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		recs := Flight.Dump()
		if recs == nil {
			// Dump never returns nil today, but an empty recorder must
			// serve [] — scrapers index into the array unconditionally.
			recs = []FlightRecord{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(recs); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/requests", func(w http.ResponseWriter, r *http.Request) {
		recs := Requests.Dump()
		if r.URL.Query().Get("format") == "chrome" {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			if err := WriteRequestChromeTrace(w, recs); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if recs == nil {
			recs = []*RequestTrace{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(recs); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := WriteChromeTrace(w, Flight.Traces()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
