package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// buildTrace records a tiny two-node traversal into a TraceBuf and
// finishes it: root → internal node (one child pruned) → leaf with two
// items, one dominance check, one item prune, one shadow disagreement.
func buildTrace(t *testing.T) *QueryTrace {
	t.Helper()
	var b TraceBuf
	b.Begin(time.Now())
	if !b.Active() {
		t.Fatal("Begin did not activate the buffer")
	}
	crit := FlightLabel("Hyperbola")
	inner := b.StartNode(0x10, 0.5)
	b.NodePrune(0x11, 9.5)
	leaf := b.StartNode(0x12, 0.75)
	b.DomCheck(PhaseCase2, crit, 7, true, 2)
	b.ItemPrune(PhaseCase2, 7, 1.25)
	b.Shadow(FlightLabel("MinMax"), false, true)
	b.EndNode(leaf, 0, 2)
	b.EndNode(inner, 2, 0)
	qt := b.Finish(FlightLabel("sstree"), FlightLabel("HS"), 10, time.Now().UnixNano(), 1500)
	if b.Active() {
		t.Fatal("Finish left the buffer active")
	}
	return qt
}

func TestTraceBufSpans(t *testing.T) {
	qt := buildTrace(t)
	if qt.ID == 0 {
		t.Error("Finish assigned trace ID 0")
	}
	if got := len(qt.Spans); got != 7 {
		t.Fatalf("got %d spans, want 7", got)
	}
	wantKinds := map[SpanKind]int{
		SpanSearch: 1, SpanNode: 2, SpanNodePrune: 1,
		SpanDomCheck: 1, SpanItemPrune: 1, SpanShadow: 1,
	}
	for kind, want := range wantKinds {
		if got := qt.CountKind(kind); got != want {
			t.Errorf("CountKind(%d) = %d, want %d", kind, got, want)
		}
	}

	root := qt.Spans[0]
	if root.Kind != SpanSearch || root.Parent != -1 {
		t.Errorf("root span = kind %d parent %d, want SpanSearch/-1", root.Kind, root.Parent)
	}
	if root.EndNs != qt.LatencyNs {
		t.Errorf("root EndNs = %d, want latency %d", root.EndNs, qt.LatencyNs)
	}

	// Nesting: inner node under root, prune event and leaf under inner,
	// item-level events under the leaf.
	inner, leaf := qt.Spans[1], qt.Spans[3]
	if inner.Parent != 0 || inner.NodeID != 0x10 {
		t.Errorf("inner span parent=%d node=%#x, want 0/0x10", inner.Parent, inner.NodeID)
	}
	if prune := qt.Spans[2]; prune.Parent != 1 || prune.MinDist != 9.5 {
		t.Errorf("node-prune parent=%d mindist=%v, want 1/9.5", prune.Parent, prune.MinDist)
	}
	if leaf.Parent != 1 || leaf.Items != 2 {
		t.Errorf("leaf span parent=%d items=%d, want 1/2", leaf.Parent, leaf.Items)
	}
	for i := 4; i <= 6; i++ {
		if qt.Spans[i].Parent != 3 {
			t.Errorf("span %d parent = %d, want leaf (3)", i, qt.Spans[i].Parent)
		}
	}
	if dc := qt.Spans[4]; !dc.Verdict || dc.ItemID != 7 || dc.Arg != 2 || dc.Phase != PhaseCase2 {
		t.Errorf("dom-check span = %+v, want verdict/item 7/2 quartics/case2", dc)
	}
}

func TestTraceSampling(t *testing.T) {
	defer SetTraceEvery(0)

	SetTraceEvery(0)
	if TraceEnabled() {
		t.Error("TraceEnabled with period 0")
	}
	for i := 0; i < 100; i++ {
		if SampleTrace() {
			t.Fatal("SampleTrace fired while disabled")
		}
	}

	SetTraceEvery(1)
	for i := 0; i < 10; i++ {
		if !SampleTrace() {
			t.Fatal("SampleTrace(every=1) declined a search")
		}
	}

	SetTraceEvery(4)
	hits := 0
	for i := 0; i < 400; i++ {
		if SampleTrace() {
			hits++
		}
	}
	if hits != 100 {
		t.Errorf("every=4 sampled %d of 400", hits)
	}
}

// chromeDoc decodes a trace_event export for assertions.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Ts   *float64       `json:"ts"`
		Dur  *float64       `json:"dur"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestWriteChromeTrace(t *testing.T) {
	qt := buildTrace(t)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []*QueryTrace{qt}); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	// 2 metadata + 7 spans.
	if got := len(doc.TraceEvents); got != 9 {
		t.Fatalf("got %d trace events, want 9", got)
	}
	var phX, phI, phM int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			phX++
			if ev.Dur == nil || ev.Ts == nil {
				t.Errorf("duration event %q missing ts/dur", ev.Name)
			}
		case "i":
			phI++
		case "M":
			phM++
		default:
			t.Errorf("unexpected ph %q", ev.Ph)
		}
	}
	if phX != 3 || phI != 4 || phM != 2 {
		t.Errorf("event phases X/i/M = %d/%d/%d, want 3/4/2", phX, phI, phM)
	}
	if !strings.Contains(buf.String(), `"shadow-disagree"`) {
		t.Error("export lost the shadow-disagreement event")
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty export is not valid JSON: %v", err)
	}
	events, ok := doc["traceEvents"]
	if !ok {
		t.Fatal("empty export lacks traceEvents")
	}
	if strings.TrimSpace(string(events)) == "null" {
		t.Fatal("empty export serialized traceEvents as null, want []")
	}
}

func TestFlightTraceLinkage(t *testing.T) {
	f := &FlightRecorder{}
	qt := buildTrace(t)
	f.Record(FlightSample{
		WhenUnixNs: qt.WhenUnixNs, LatencyNs: qt.LatencyNs,
		Substrate: qt.Substrate, Algo: qt.Algo, K: qt.K,
		Nodes: 2, Trace: qt,
	})
	f.Record(FlightSample{WhenUnixNs: qt.WhenUnixNs, LatencyNs: qt.LatencyNs + 10, K: 3})

	traces := f.Traces()
	if len(traces) != 1 || traces[0] != qt {
		t.Fatalf("Traces() = %v, want exactly the recorded trace", traces)
	}

	dump := f.Dump()
	if len(dump) != 2 {
		t.Fatalf("Dump len = %d, want 2", len(dump))
	}
	// Dump is latency-descending: the traced record is second.
	if dump[0].TraceID != 0 {
		t.Errorf("untraced record has TraceID %d", dump[0].TraceID)
	}
	if dump[1].TraceID != qt.ID {
		t.Errorf("traced record TraceID = %d, want %d", dump[1].TraceID, qt.ID)
	}

	// Traces sort by descending latency.
	qt2 := buildTrace(t)
	f.Record(FlightSample{LatencyNs: qt.LatencyNs + 20, Trace: qt2, WhenUnixNs: qt.WhenUnixNs})
	traces = f.Traces()
	if len(traces) != 2 || traces[0] != qt2 {
		t.Fatalf("Traces() order wrong: got %d traces", len(traces))
	}

	f.Reset()
	if got := f.Traces(); len(got) != 0 {
		t.Errorf("Reset left %d traces behind", len(got))
	}
}
