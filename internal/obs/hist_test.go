package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestHistBucketScheme pins the log-linear mapping: indexes are monotone,
// lower bounds invert them, and bucket widths never exceed 1/16 of the
// bucket's lower bound (for values past the exact range).
func TestHistBucketScheme(t *testing.T) {
	if got := histIndex(-5); got != 0 {
		t.Errorf("histIndex(-5) = %d, want 0", got)
	}
	for v := int64(0); v < histSubBuckets; v++ {
		if got := histIndex(v); got != int(v) {
			t.Errorf("histIndex(%d) = %d, want exact unit bucket", v, got)
		}
		if got := histLower(int(v)); got != v {
			t.Errorf("histLower(%d) = %d, want %d", v, got, v)
		}
	}
	prev := -1
	for _, v := range []int64{16, 17, 31, 32, 33, 100, 1000, 1 << 20, 1<<42 - 1, 1 << 42, math.MaxInt64} {
		i := histIndex(v)
		if i < prev {
			t.Errorf("histIndex(%d) = %d below previous %d: not monotone", v, i, prev)
		}
		prev = i
		if i >= histBuckets {
			t.Fatalf("histIndex(%d) = %d out of range", v, i)
		}
		lo := histLower(i)
		if v <= 1<<(histMaxTop+1) {
			if lo > v {
				t.Errorf("histLower(histIndex(%d)) = %d exceeds the sample", v, lo)
			}
			if up := histLower(i + 1); v >= up && i != histBuckets-1 {
				t.Errorf("sample %d ≥ upper bound %d of its bucket %d", v, up, i)
			}
			if v >= histSubBuckets && i < histBuckets-1 {
				if width := histLower(i+1) - lo; float64(width) > float64(lo)/16+0.5 {
					t.Errorf("bucket %d width %d exceeds lower/16 = %d", i, width, lo/16)
				}
			}
		}
	}
}

// TestHistQuantileErrorBounds records a known sample set straddling many
// bucket boundaries and checks every extracted quantile against the exact
// order statistic: the estimate must not exceed the true value and must be
// within one bucket's relative width (1/16) below it.
func TestHistQuantileErrorBounds(t *testing.T) {
	h := NewHistogram("test.hist.quantile", "")
	rng := rand.New(rand.NewSource(42))
	samples := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform over [16, 2^40): exercises boundaries at every scale.
		v := int64(math.Exp(rng.Float64()*math.Log(float64(int64(1)<<40))) + 16)
		samples = append(samples, v)
		h.Record(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	s := h.Snap()
	if s.Count != uint64(len(samples)) {
		t.Fatalf("Count = %d, want %d", s.Count, len(samples))
	}
	for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
		rank := int(math.Ceil(q * float64(len(samples))))
		if rank < 1 {
			rank = 1
		}
		truth := float64(samples[rank-1])
		got := s.Quantile(q)
		if got > truth {
			t.Errorf("Quantile(%g) = %g exceeds true order statistic %g", q, got, truth)
		}
		if got < truth*(1-1.0/16)-1 {
			t.Errorf("Quantile(%g) = %g undershoots %g by more than a bucket width", q, got, truth)
		}
	}
}

// TestHistEmptyQuantiles is the empty-histogram edge case: every quantile
// of zero samples is 0 — not NaN, not a panic.
func TestHistEmptyQuantiles(t *testing.T) {
	h := NewHistogram("test.hist.empty", "")
	s := h.Snap()
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2} {
		got := s.Quantile(q)
		if got != 0 || math.IsNaN(got) {
			t.Errorf("empty Quantile(%g) = %v, want 0", q, got)
		}
	}
	if m := s.Mean(); m != 0 {
		t.Errorf("empty Mean = %v, want 0", m)
	}
	var zero HistSnap
	if got := zero.Quantile(0.5); got != 0 {
		t.Errorf("zero-value HistSnap Quantile = %v, want 0", got)
	}
}

// TestHistConcurrentShardMerge hammers one histogram from concurrent
// recorders — through both the value-hashed and the owner-shard paths —
// while snapshots run, and checks no sample is lost. Run under -race this
// also proves the record/merge paths are data-race free.
func TestHistConcurrentShardMerge(t *testing.T) {
	h := NewHistogram("test.hist.concurrent", "")
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	stopSnaps := make(chan struct{})
	go func() {
		for {
			select {
			case <-stopSnaps:
				return
			default:
				h.Snap().Quantile(0.99)
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shard := NextShard()
			for i := 0; i < per; i++ {
				v := int64(w*per + i)
				if w%2 == 0 {
					h.RecordShard(shard, v)
				} else {
					h.Record(v)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopSnaps)
	s := h.Snap()
	if s.Count != workers*per {
		t.Errorf("concurrent recording lost samples: Count = %d, want %d", s.Count, workers*per)
	}
	var bucketSum uint64
	for _, c := range s.Counts {
		bucketSum += c
	}
	if bucketSum != s.Count {
		t.Errorf("bucket sum %d disagrees with Count %d", bucketSum, s.Count)
	}
}

// TestHistRegistry pins registration semantics: duplicates panic, labeled
// instances are distinct, MergedHist folds a family together, and
// GetOrNewHistogram reuses.
func TestHistRegistry(t *testing.T) {
	a := NewHistogram("test.hist.family", `side="a"`)
	b := NewHistogram("test.hist.family", `side="b"`)
	if a == b {
		t.Fatal("labeled instances must be distinct")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate NewHistogram did not panic")
			}
		}()
		NewHistogram("test.hist.family", `side="a"`)
	}()
	if GetOrNewHistogram("test.hist.family", `side="a"`) != a {
		t.Error("GetOrNewHistogram did not reuse the registered instance")
	}
	a.Record(100)
	a.Record(100)
	b.Record(200)
	m := MergedHist("test.hist.family")
	if m.Count != 3 {
		t.Errorf("MergedHist Count = %d, want 3", m.Count)
	}
	if m.Sum != 400 {
		t.Errorf("MergedHist Sum = %d, want 400", m.Sum)
	}
	if MergedHist("test.hist.unknown").Quantile(0.5) != 0 {
		t.Error("MergedHist of unknown name is not empty")
	}
}

// TestStopwatch checks the timer helper: a running watch records one
// sample, a stopped (gate-off) watch records nothing.
func TestStopwatch(t *testing.T) {
	defer SetEnabled(true)
	h := NewHistogram("test.hist.stopwatch", "")

	SetEnabled(true)
	sw := StartTimer()
	if !sw.Started() {
		t.Fatal("StartTimer with the gate on returned a stopped watch")
	}
	time.Sleep(time.Millisecond)
	d := sw.Stop(h)
	if d < time.Millisecond {
		t.Errorf("Stop returned %v, want ≥ 1ms", d)
	}
	if got := h.Snap().Count; got != 1 {
		t.Errorf("histogram holds %d samples after Stop, want 1", got)
	}
	if q := h.Snap().Quantile(0.5); q < float64(time.Millisecond)*(1-1.0/16)-1 {
		t.Errorf("recorded latency quantile %.0fns below the slept millisecond", q)
	}

	SetEnabled(false)
	sw = StartTimer()
	if sw.Started() {
		t.Error("StartTimer with the gate off returned a running watch")
	}
	if d := sw.Stop(h); d != 0 {
		t.Errorf("stopped watch Stop returned %v, want 0", d)
	}
	if got := h.Snap().Count; got != 1 {
		t.Errorf("stopped watch recorded a sample: count %d", got)
	}
}

// TestHistRecordAllocs keeps the record path allocation-free.
func TestHistRecordAllocs(t *testing.T) {
	h := NewHistogram("test.hist.allocs", "")
	if allocs := testing.AllocsPerRun(100, func() { h.Record(12345) }); allocs != 0 {
		t.Errorf("Record allocates %.1f times per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { h.RecordShard(1, 12345) }); allocs != 0 {
		t.Errorf("RecordShard allocates %.1f times per call, want 0", allocs)
	}
}

// TestResetForTest verifies registry-preserving zeroing across counters,
// histograms and the flight recorder.
func TestResetForTest(t *testing.T) {
	c := New("test.reset.counter")
	h := NewHistogram("test.reset.hist", "")
	c.Add(5)
	h.Record(100)
	Flight.Record(FlightSample{LatencyNs: 999, K: 1})
	ResetForTest()
	if got := c.Load(); got != 0 {
		t.Errorf("counter = %d after ResetForTest, want 0", got)
	}
	if Lookup("test.reset.counter") != c {
		t.Error("ResetForTest dropped the counter registration")
	}
	if got := h.Snap().Count; got != 0 {
		t.Errorf("histogram Count = %d after ResetForTest, want 0", got)
	}
	if GetOrNewHistogram("test.reset.hist", "") != h {
		t.Error("ResetForTest dropped the histogram registration")
	}
	if dump := Flight.Dump(); len(dump) != 0 {
		t.Errorf("flight recorder holds %d records after ResetForTest, want 0", len(dump))
	}
	c.Inc()
	h.Record(7)
	if c.Load() != 1 || h.Snap().Count != 1 {
		t.Error("registrations unusable after ResetForTest")
	}
}
