package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync/atomic"
	"time"
)

// Per-query execution tracing (ISSUE 4). A traced search records a full
// span tree — one span per index-node visit plus instant events for every
// prune decision, dominance check and shadow-evaluation disagreement — into
// a TraceBuf owned by the search's scratch arena. Tracing is tail-sampled
// twice over: the record path only runs for 1-in-N searches (SetTraceEvery),
// and a finished trace survives only while its query stays among the
// FlightSlots slowest in the flight recorder, so steady state retains the
// traces that explain the latency tail. With sampling disabled the only
// cost left in the hot path is a nil check per instrumentation site and one
// atomic load per search — no clock reads, no allocation (gated by the knn
// package's TestObsOverheadTracing).
//
// Traces export as Chrome trace_event JSON (WriteChromeTrace, the
// /debug/trace endpoint, and the -trace flag of the benchmark commands) and
// open directly in chrome://tracing or https://ui.perfetto.dev.

// SpanKind classifies one span (or instant event) of a query trace.
type SpanKind uint8

const (
	// SpanSearch is the root span covering the whole query.
	SpanSearch SpanKind = iota
	// SpanNode covers one index-node visit: MinDist on entry, child and
	// item counts on exit. Node spans nest by traversal structure.
	SpanNode
	// SpanNodePrune is an instant event: a subtree discarded because its
	// MinDist exceeded distk (the Lemma 9 / Case 3 bound at node level).
	SpanNodePrune
	// SpanDomCheck is an instant event: one dominance-criterion invocation,
	// with the criterion label, phase, verdict and quartic-solve count.
	SpanDomCheck
	// SpanItemPrune is an instant event: one data item discarded, phase
	// saying which of the Section 6 cases fired. Item-prune events
	// correspond one-to-one with the knn.pruned counter.
	SpanItemPrune
	// SpanShadow is an instant event: a shadow-evaluated criterion
	// disagreed with Hyperbola on this check (the paper's Table 1
	// correct/sound distinction caught in the act).
	SpanShadow
)

// Phases of the Section 6 candidate filter, recorded on SpanDomCheck and
// SpanItemPrune events.
const (
	// PhaseCase2 is the encounter-time check against the interim Sk.
	PhaseCase2 uint8 = iota + 1
	// PhaseCase3 is the MinDist > distk discard (Lemma 9).
	PhaseCase3
	// PhaseEvict is the post-insertion sweep after a Case 1 insert.
	PhaseEvict
	// PhaseFinal is the Definition 2 re-filter against the final Sk.
	PhaseFinal
)

// PhaseName returns the exposition name of a filter phase.
func PhaseName(p uint8) string {
	switch p {
	case PhaseCase2:
		return "case2"
	case PhaseCase3:
		return "case3"
	case PhaseEvict:
		return "evict"
	case PhaseFinal:
		return "final"
	}
	return ""
}

// Span is one node of a query's trace tree. All fields are plain scalars
// (labels pre-interned) so recording never allocates beyond the buffer's
// amortized growth, and a pooled TraceBuf retains no references into the
// index. Instant events have StartNs == EndNs.
type Span struct {
	Parent   int32 // index of the parent span; -1 for the root
	Kind     SpanKind
	Phase    uint8   // PhaseCase2..PhaseFinal on DomCheck/ItemPrune events
	Verdict  bool    // DomCheck: the criterion's verdict; Shadow: the disagreeing criterion's verdict
	Label    LabelID // criterion (DomCheck/Shadow); unused otherwise
	NodeID   uint64  // opaque node identity (Node/NodePrune)
	ItemID   int64   // data item ID (DomCheck/ItemPrune); -1 when absent
	StartNs  int64   // nanoseconds since the root span started
	EndNs    int64
	MinDist  float64 // MinDist to the query (Node/NodePrune)
	Children int32   // children expanded (internal Node spans)
	Items    int32   // items scanned (leaf Node spans)
	Arg      uint64  // kind-specific: quartic solves (DomCheck), Hyperbola verdict (Shadow)
}

// TraceBuf accumulates one query's spans. It is owned by exactly one
// goroutine (the kNN scratch arena keeps one per search); the buffer is
// reused across traced queries, so steady-state recording costs only the
// clock reads. The zero value is ready: Begin activates it.
type TraceBuf struct {
	spans  []Span
	start  time.Time
	cur    int32 // current open span — the parent instant events attach to
	active bool
}

// Active reports whether a trace is being recorded.
func (b *TraceBuf) Active() bool { return b.active }

// Begin resets the buffer and opens the root SpanSearch span with the given
// start time (shared with the search's latency measurement, so trace
// timestamps line up with the flight recorder).
func (b *TraceBuf) Begin(start time.Time) {
	b.spans = b.spans[:0]
	b.start = start
	b.cur = 0
	b.active = true
	b.spans = append(b.spans, Span{Parent: -1, Kind: SpanSearch, ItemID: -1})
}

func (b *TraceBuf) now() int64 { return time.Since(b.start).Nanoseconds() }

// StartNode opens a node-visit span under the current span and makes it
// current. Pair with EndNode.
func (b *TraceBuf) StartNode(nodeID uint64, minDist float64) int32 {
	i := int32(len(b.spans))
	b.spans = append(b.spans, Span{
		Parent: b.cur, Kind: SpanNode, ItemID: -1,
		NodeID: nodeID, MinDist: minDist, StartNs: b.now(),
	})
	b.cur = i
	return i
}

// EndNode closes a node-visit span with its fan-out accounting and restores
// the parent as current.
func (b *TraceBuf) EndNode(i, children, items int32) {
	sp := &b.spans[i]
	sp.EndNs = b.now()
	sp.Children = children
	sp.Items = items
	b.cur = sp.Parent
}

// NodePrune records a subtree discarded by the distk bound.
func (b *TraceBuf) NodePrune(nodeID uint64, minDist float64) {
	t := b.now()
	b.spans = append(b.spans, Span{
		Parent: b.cur, Kind: SpanNodePrune, ItemID: -1,
		NodeID: nodeID, MinDist: minDist, StartNs: t, EndNs: t,
	})
}

// DomCheck records one dominance-criterion invocation: which phase asked,
// which criterion answered, its verdict, and how many quartic solves the
// check cost.
func (b *TraceBuf) DomCheck(phase uint8, crit LabelID, itemID int64, verdict bool, quartics uint64) {
	t := b.now()
	b.spans = append(b.spans, Span{
		Parent: b.cur, Kind: SpanDomCheck, Phase: phase, Label: crit,
		ItemID: itemID, Verdict: verdict, Arg: quartics, StartNs: t, EndNs: t,
	})
}

// ItemPrune records one data item discarded by the given phase. These
// events correspond one-to-one with the knn.pruned counter.
func (b *TraceBuf) ItemPrune(phase uint8, itemID int64, minDist float64) {
	t := b.now()
	b.spans = append(b.spans, Span{
		Parent: b.cur, Kind: SpanItemPrune, Phase: phase,
		ItemID: itemID, MinDist: minDist, StartNs: t, EndNs: t,
	})
}

// Shadow records a shadow-evaluation disagreement: crit answered verdict
// while Hyperbola answered hyperbola.
func (b *TraceBuf) Shadow(crit LabelID, verdict, hyperbola bool) {
	t := b.now()
	var arg uint64
	if hyperbola {
		arg = 1
	}
	b.spans = append(b.spans, Span{
		Parent: b.cur, Kind: SpanShadow, Label: crit, ItemID: -1,
		Verdict: verdict, Arg: arg, StartNs: t, EndNs: t,
	})
}

// Cancel abandons an in-flight trace (a search that turned out to have
// nothing to traverse), keeping the buffer for reuse.
func (b *TraceBuf) Cancel() {
	b.active = false
	b.spans = b.spans[:0]
}

// traceIDs hands out process-unique trace IDs.
var traceIDs atomic.Uint64

// Finish closes the root span and freezes the buffer into an immutable
// QueryTrace ready for the flight recorder. The buffer is reset for reuse;
// only this copy allocates, and only for sampled queries.
func (b *TraceBuf) Finish(substrate, algo LabelID, k int, whenUnixNs, latencyNs int64) *QueryTrace {
	b.spans[0].EndNs = latencyNs
	qt := &QueryTrace{
		ID:         traceIDs.Add(1),
		WhenUnixNs: whenUnixNs,
		LatencyNs:  latencyNs,
		Substrate:  substrate,
		Algo:       algo,
		K:          k,
		Spans:      append([]Span(nil), b.spans...),
	}
	b.active = false
	b.spans = b.spans[:0]
	return qt
}

// QueryTrace is one finished, immutable query trace. Instances are shared
// by pointer between the flight recorder and exporters; nothing mutates
// them after Finish.
type QueryTrace struct {
	ID         uint64
	WhenUnixNs int64
	LatencyNs  int64
	Substrate  LabelID
	Algo       LabelID
	K          int
	Spans      []Span
}

// CountKind returns how many spans of the given kind the trace holds.
func (t *QueryTrace) CountKind(k SpanKind) int {
	n := 0
	for i := range t.Spans {
		if t.Spans[i].Kind == k {
			n++
		}
	}
	return n
}

// Sampling gate. traceEvery == 0 disables tracing entirely; N > 0 samples
// every Nth search process-wide. The decision costs one atomic load when
// disabled and one atomic add when enabled.
var (
	traceEvery atomic.Int64
	traceSeq   atomic.Uint64
)

// SetTraceEvery sets the sampling period: every Nth search records a full
// trace. 0 (the default) disables tracing; 1 traces every search.
func SetTraceEvery(n int) {
	if n < 0 {
		n = 0
	}
	traceEvery.Store(int64(n))
}

// TraceEveryN returns the current sampling period (0 = disabled).
func TraceEveryN() int { return int(traceEvery.Load()) }

// TraceEnabled reports whether tracing is on at all.
func TraceEnabled() bool { return traceEvery.Load() > 0 }

// SampleTrace decides whether the calling search should record a trace:
// false immediately when tracing is disabled, else true for every Nth call
// process-wide.
func SampleTrace() bool {
	n := traceEvery.Load()
	if n <= 0 {
		return false
	}
	return traceSeq.Add(1)%uint64(n) == 0
}

// spanName returns the Chrome event name for a span.
func spanName(sp *Span) string {
	switch sp.Kind {
	case SpanSearch:
		return "search"
	case SpanNode:
		if sp.Children == 0 && sp.Items > 0 {
			return "leaf"
		}
		return "node"
	case SpanNodePrune:
		return "prune-subtree"
	case SpanDomCheck:
		return "domcheck"
	case SpanItemPrune:
		return "prune-item"
	case SpanShadow:
		return "shadow-disagree"
	}
	return fmt.Sprintf("span(%d)", int(sp.Kind))
}

// spanArgs builds the Chrome args object for a span.
func spanArgs(t *QueryTrace, sp *Span) map[string]any {
	args := map[string]any{}
	switch sp.Kind {
	case SpanSearch:
		args["substrate"] = labelName(t.Substrate)
		args["algo"] = labelName(t.Algo)
		args["k"] = t.K
		args["nodes_visited"] = t.CountKind(SpanNode)
		args["pruned"] = t.CountKind(SpanItemPrune)
		args["dom_checks"] = t.CountKind(SpanDomCheck)
		args["subtree_prunes"] = t.CountKind(SpanNodePrune)
	case SpanNode, SpanNodePrune:
		args["node"] = fmt.Sprintf("0x%x", sp.NodeID)
		args["mindist"] = sp.MinDist
		if sp.Kind == SpanNode {
			args["children"] = sp.Children
			args["items"] = sp.Items
		}
	case SpanDomCheck:
		args["criterion"] = labelName(sp.Label)
		args["phase"] = PhaseName(sp.Phase)
		args["item"] = sp.ItemID
		args["dominated"] = sp.Verdict
		args["quartic_solves"] = sp.Arg
	case SpanItemPrune:
		args["phase"] = PhaseName(sp.Phase)
		args["item"] = sp.ItemID
		args["mindist"] = sp.MinDist
	case SpanShadow:
		args["criterion"] = labelName(sp.Label)
		args["verdict"] = sp.Verdict
		args["hyperbola"] = sp.Arg == 1
	}
	return args
}

// WriteChromeTrace writes the traces as one Chrome trace_event JSON
// document: each query becomes its own named thread track, duration events
// for the search and node-visit spans, instant events for prune decisions,
// dominance checks and shadow disagreements. Timestamps are microseconds
// relative to the earliest trace, so concurrent queries line up in time.
// An empty trace set produces a valid document with "traceEvents": [].
func WriteChromeTrace(w io.Writer, traces []*QueryTrace) error {
	var minWhen int64
	for i, t := range traces {
		if i == 0 || t.WhenUnixNs < minWhen {
			minWhen = t.WhenUnixNs
		}
	}
	events := make([]map[string]any, 0, 2+8*len(traces))
	events = append(events, map[string]any{
		"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
		"args": map[string]any{"name": "hyperdom"},
	})
	for ti, t := range traces {
		tid := ti + 1
		base := float64(t.WhenUnixNs-minWhen) / 1e3
		events = append(events, map[string]any{
			"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
			"args": map[string]any{"name": fmt.Sprintf("q%d %s/%s k=%d %.3fms",
				t.ID, labelName(t.Substrate), labelName(t.Algo), t.K,
				float64(t.LatencyNs)/1e6)},
		})
		for i := range t.Spans {
			sp := &t.Spans[i]
			ev := map[string]any{
				"name": spanName(sp),
				"cat":  "hyperdom",
				"pid":  1,
				"tid":  tid,
				"ts":   base + float64(sp.StartNs)/1e3,
				"args": spanArgs(t, sp),
			}
			if sp.Kind == SpanSearch || sp.Kind == SpanNode {
				ev["ph"] = "X"
				ev["dur"] = float64(sp.EndNs-sp.StartNs) / 1e3
			} else {
				ev["ph"] = "i"
				ev["s"] = "t"
			}
			events = append(events, ev)
		}
	}
	doc := map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ns",
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// WriteChromeTraceFile writes the flight recorder's retained traces to
// path, sorted by descending latency — the -trace flag's exit path.
func WriteChromeTraceFile(path string) (int, error) {
	traces := Flight.Traces()
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	if err := WriteChromeTrace(f, traces); err != nil {
		f.Close()
		return 0, err
	}
	return len(traces), f.Close()
}

// Traces returns the query traces currently retained by the ring — the
// sampled queries among the FlightSlots slowest — sorted by descending
// latency. Trace objects are immutable; the pointer loads are atomic, so
// this is safe against concurrent recording.
func (f *FlightRecorder) Traces() []*QueryTrace {
	out := make([]*QueryTrace, 0, FlightSlots)
	for i := range f.slots {
		if t := f.slots[i].trace.Load(); t != nil {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].LatencyNs != out[b].LatencyNs {
			return out[a].LatencyNs > out[b].LatencyNs
		}
		return out[a].ID > out[b].ID
	})
	return out
}
