package obs

import (
	"strings"
	"testing"
	"time"
)

// resetHealth restores the disabled zero config after a test.
func resetHealth(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		healthCfg.mu.Lock()
		healthCfg.cfg = HealthConfig{}
		healthCfg.mu.Unlock()
	})
}

// TestHealthUnconfigured pins the default: no thresholds, ok verdict, no
// checks.
func TestHealthUnconfigured(t *testing.T) {
	resetHealth(t)
	v := Health()
	if v.Status != HealthOK || len(v.Checks) != 0 || len(v.Reasons) != 0 {
		t.Errorf("unconfigured Health = %+v, want plain ok", v)
	}
	if v.When == "" || v.WhenUnixNs == 0 {
		t.Error("verdict missing wall-clock stamp")
	}
}

// TestHealthLatencyCheck walks the windowed-p99 check through ok, degraded
// (over threshold) and unhealthy (over twice), and pins the no-data case to
// ok.
func TestHealthLatencyCheck(t *testing.T) {
	ResetForTest()
	resetHealth(t)
	SetHealthConfig(HealthConfig{
		LatencyFamily: "test.health.lat",
		LatencyP99Max: time.Millisecond,
	})

	// No samples in the window: an idle server is a healthy server.
	if v := Health(); v.Status != HealthOK {
		t.Errorf("no-data latency verdict = %s, want ok", v.Status)
	}

	h := GetOrNewHistogram("test.health.lat", "")
	for i := 0; i < 100; i++ {
		h.Record((500 * time.Microsecond).Nanoseconds())
	}
	if v := Health(); v.Status != HealthOK {
		t.Errorf("under-threshold verdict = %s, want ok", v.Status)
	}

	ResetForTest()
	for i := 0; i < 100; i++ {
		h.Record((1500 * time.Microsecond).Nanoseconds())
	}
	v := Health()
	if v.Status != HealthDegraded {
		t.Errorf("1.5x-threshold verdict = %s, want degraded", v.Status)
	}
	if len(v.Reasons) != 1 || !strings.Contains(v.Reasons[0], "test.health.lat") {
		t.Errorf("degraded Reasons = %v, want one naming the family", v.Reasons)
	}

	ResetForTest()
	for i := 0; i < 100; i++ {
		h.Record((5 * time.Millisecond).Nanoseconds())
	}
	if v := Health(); v.Status != HealthUnhealthy {
		t.Errorf("5x-threshold verdict = %s, want unhealthy", v.Status)
	}

	// Expiring the window restores ok without touching the cumulative data.
	for i := 0; i < WinSlots; i++ {
		h.RotateWindow()
	}
	if v := Health(); v.Status != HealthOK {
		t.Errorf("post-expiry verdict = %s, want ok", v.Status)
	}
}

// TestHealthErrorRateCheck feeds the rate ring synthetic request-counter
// deltas and checks the 5xx-fraction math.
func TestHealthErrorRateCheck(t *testing.T) {
	ResetForTest()
	resetHealth(t)
	SetHealthConfig(HealthConfig{ErrorRateMax: 0.05})

	okKey := "server.requests_total" + labelSep + `code="200",endpoint="knn"`
	errKey := "server.requests_total" + labelSep + `code="500",endpoint="knn"`
	Rates.Tick(Snap{okKey: 0, errKey: 0}, 0)
	Rates.Tick(Snap{okKey: 96, errKey: 4}, 10*time.Second)
	if v := Health(); v.Status != HealthOK {
		t.Errorf("4%% errors vs 5%% threshold: verdict = %s, want ok", v.Status)
	}

	Rates.Reset()
	Rates.Tick(Snap{okKey: 0, errKey: 0}, 0)
	Rates.Tick(Snap{okKey: 92, errKey: 8}, 10*time.Second)
	if v := Health(); v.Status != HealthDegraded {
		t.Errorf("8%% errors: verdict = %s, want degraded", v.Status)
	}

	Rates.Reset()
	Rates.Tick(Snap{okKey: 0, errKey: 0}, 0)
	Rates.Tick(Snap{okKey: 80, errKey: 20}, 10*time.Second)
	if v := Health(); v.Status != HealthUnhealthy {
		t.Errorf("20%% errors: verdict = %s, want unhealthy", v.Status)
	}

	// No traffic in the window → ok.
	Rates.Reset()
	if v := Health(); v.Status != HealthOK {
		t.Errorf("idle error-rate verdict = %s, want ok", v.Status)
	}
}

// TestHealthQueueSaturationCheck drives the saturation check off stored
// gauges (the engine publishes callback gauges with the same keys).
func TestHealthQueueSaturationCheck(t *testing.T) {
	ResetForTest()
	resetHealth(t)
	SetHealthConfig(HealthConfig{QueueSaturationMax: 0.8})
	t.Cleanup(func() {
		SetGauge("engine.queue_depth", "", 0)
		SetGauge("engine.queue_capacity", "", 0)
	})

	SetGauge("engine.queue_capacity", "", 100)
	SetGauge("engine.queue_depth", "", 50)
	if v := Health(); v.Status != HealthOK {
		t.Errorf("50%% saturation verdict = %s, want ok", v.Status)
	}
	SetGauge("engine.queue_depth", "", 90)
	if v := Health(); v.Status != HealthDegraded {
		t.Errorf("90%% saturation verdict = %s, want degraded", v.Status)
	}
	// Over twice the threshold is impossible for a bounded queue with a 0.8
	// threshold (max saturation 1.0), so unhealthy needs a lower bar.
	SetHealthConfig(HealthConfig{QueueSaturationMax: 0.4})
	if v := Health(); v.Status != HealthUnhealthy {
		t.Errorf("90%% saturation vs 40%% threshold: verdict = %s, want unhealthy", v.Status)
	}
}

// TestHealthWorstCheckWins combines a degraded latency check with an
// unhealthy saturation check and expects the worst to set the verdict.
func TestHealthWorstCheckWins(t *testing.T) {
	ResetForTest()
	resetHealth(t)
	SetHealthConfig(HealthConfig{
		LatencyFamily:      "test.health.combo",
		LatencyP99Max:      time.Millisecond,
		QueueSaturationMax: 0.2,
	})
	t.Cleanup(func() {
		SetGauge("engine.queue_depth", "", 0)
		SetGauge("engine.queue_capacity", "", 0)
	})
	h := GetOrNewHistogram("test.health.combo", "")
	for i := 0; i < 100; i++ {
		h.Record((1500 * time.Microsecond).Nanoseconds()) // degraded
	}
	SetGauge("engine.queue_capacity", "", 100)
	SetGauge("engine.queue_depth", "", 90) // 0.9 > 2*0.2 → unhealthy
	v := Health()
	if v.Status != HealthUnhealthy {
		t.Errorf("combined verdict = %s, want unhealthy", v.Status)
	}
	if len(v.Reasons) != 2 {
		t.Errorf("Reasons = %v, want one per non-ok check", v.Reasons)
	}
	if len(v.Checks) != 2 {
		t.Errorf("Checks = %v, want 2", v.Checks)
	}
}
