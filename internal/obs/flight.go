package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The query flight recorder (ISSUE 3) retains the K slowest recent queries
// so a tail-latency spike can be explained after the fact: each record
// carries the query's latency, substrate, k and the per-query counter
// diffs the traversal tallied. The ring is fixed-size and lock-free on the
// record path — admission costs one atomic load for the fast (not slow
// enough) case, and a bounded scan plus a seqlock-versioned slot write for
// admitted queries. It is deliberately lossy: two concurrent admissions
// may target the same slot, and the last writer wins; readers skip slots
// whose version moved mid-read. See DESIGN.md §9.

// FlightSlots is the ring capacity: how many slow queries the recorder
// retains.
const FlightSlots = 64

// LabelID is an interned label (substrate or algorithm name) for the
// flight recorder's record path, which cannot afford a string table lookup
// per query. Intern once at package init with FlightLabel.
type LabelID uint32

// flightLabels is the process-wide label intern table. ID 0 is reserved
// for the empty string so zero-valued samples read back cleanly.
var flightLabels struct {
	mu    sync.RWMutex
	names []string
	ids   map[string]LabelID
}

func init() {
	flightLabels.names = []string{""}
	flightLabels.ids = map[string]LabelID{"": 0}
}

// FlightLabel interns name and returns its ID. Call once per distinct
// label at init time and cache the result; the record path only stores the
// uint32.
func FlightLabel(name string) LabelID {
	flightLabels.mu.RLock()
	id, ok := flightLabels.ids[name]
	flightLabels.mu.RUnlock()
	if ok {
		return id
	}
	flightLabels.mu.Lock()
	defer flightLabels.mu.Unlock()
	if id, ok := flightLabels.ids[name]; ok {
		return id
	}
	id = LabelID(len(flightLabels.names))
	flightLabels.names = append(flightLabels.names, name)
	flightLabels.ids[name] = id
	return id
}

// labelName resolves an interned ID; unknown IDs resolve to "".
func labelName(id LabelID) string {
	flightLabels.mu.RLock()
	defer flightLabels.mu.RUnlock()
	if int(id) < len(flightLabels.names) {
		return flightLabels.names[id]
	}
	return ""
}

// FlightSample is one query's record-path payload. All fields are plain
// scalars (labels pre-interned) so Record performs no allocation.
type FlightSample struct {
	WhenUnixNs int64
	LatencyNs  int64
	Substrate  LabelID
	Algo       LabelID
	K          int
	Nodes      uint64
	Items      uint64
	DomChecks  uint64
	Pruned     uint64
	HeapPushes uint64
	// Trace is the query's execution trace when the search was sampled
	// (ISSUE 4), nil otherwise. Retention is tied to ring admission: a
	// trace lives exactly as long as its query stays among the FlightSlots
	// slowest.
	Trace *QueryTrace
}

// FlightRecord is the reader-facing form of a retained query, as served by
// /debug/slow.
type FlightRecord struct {
	WhenUnixNs int64 `json:"when_unix_ns"`
	// When renders WhenUnixNs as RFC3339Nano wall-clock text (zero time for
	// never-stamped records), so /debug/slow entries correlate with the
	// timeline ring, /debug/requests and external logs (ISSUE 9). Filled at
	// Dump time — the record path stays scalar-only.
	When       string `json:"when"`
	LatencyNs  int64  `json:"latency_ns"`
	Substrate  string `json:"substrate"`
	Algo       string `json:"algo"`
	K          int    `json:"k"`
	Nodes      uint64 `json:"nodes_visited"`
	Items      uint64 `json:"items_scanned"`
	DomChecks  uint64 `json:"dom_checks"`
	Pruned     uint64 `json:"pruned"`
	HeapPushes uint64 `json:"heap_pushes"`
	// TraceID identifies the retained execution trace for this query in
	// the /debug/trace export (the qN thread names), 0 when the query was
	// not sampled.
	TraceID uint64 `json:"trace_id,omitempty"`
}

// flightSlot is one ring entry. Every field is individually atomic — the
// seqlock makes reads consistent, and the atomics keep racing last-writer
// overwrites well-defined (and race-detector clean). seq is even when the
// slot is stable, odd while a write is in flight, 0 when never written.
type flightSlot struct {
	seq  atomic.Uint64
	lat  atomic.Int64
	when atomic.Int64
	sub  atomic.Uint32
	algo atomic.Uint32
	k    atomic.Int64

	nodes, items, domChecks, pruned, heapPushes atomic.Uint64

	// trace holds the slot's retained execution trace, if any. The object
	// is immutable after Finish, so a bare atomic pointer suffices; the
	// seqlock covers its association with the scalar fields.
	trace atomic.Pointer[QueryTrace]
}

// FlightRecorder retains the slowest recent queries in a fixed ring.
// The zero value is ready to use.
type FlightRecorder struct {
	slots [FlightSlots]flightSlot
	// floor caches the smallest retained latency, so queries that cannot
	// displace anything pay a single atomic load. It may lag the true
	// minimum (admission is racy); the slot scan re-checks.
	floor atomic.Int64
}

// Flight is the process-wide flight recorder every instrumented query
// layer records into; /debug/slow serves its dump.
var Flight = &FlightRecorder{}

// Record offers one query to the ring. Queries no slower than every
// retained entry return after one atomic load; a slower query overwrites
// the currently fastest slot (last-writer-wins under races).
func (f *FlightRecorder) Record(s FlightSample) {
	if s.LatencyNs <= f.floor.Load() {
		return
	}
	mi, ml := 0, int64(math.MaxInt64)
	for i := range f.slots {
		if l := f.slots[i].lat.Load(); l < ml {
			mi, ml = i, l
			if l == 0 {
				break // empty slot: admit immediately
			}
		}
	}
	if s.LatencyNs <= ml {
		f.floor.Store(ml) // stale floor; refresh and drop
		return
	}
	sl := &f.slots[mi]
	sl.seq.Add(1) // odd: write in progress
	sl.lat.Store(s.LatencyNs)
	sl.when.Store(s.WhenUnixNs)
	sl.sub.Store(uint32(s.Substrate))
	sl.algo.Store(uint32(s.Algo))
	sl.k.Store(int64(s.K))
	sl.nodes.Store(s.Nodes)
	sl.items.Store(s.Items)
	sl.domChecks.Store(s.DomChecks)
	sl.pruned.Store(s.Pruned)
	sl.heapPushes.Store(s.HeapPushes)
	sl.trace.Store(s.Trace)
	sl.seq.Add(1) // even: stable
	// Refresh the admission floor from the post-write ring. Concurrent
	// writers may leave it slightly stale in either direction; that only
	// costs a spurious scan or drop, never a torn record.
	ml = int64(math.MaxInt64)
	for i := range f.slots {
		if l := f.slots[i].lat.Load(); l < ml {
			ml = l
		}
	}
	f.floor.Store(ml)
}

// Dump returns the retained queries sorted by descending latency. Slots
// being overwritten mid-read are retried a few times and then skipped —
// the dump is a diagnostic view, not an audit log.
func (f *FlightRecorder) Dump() []FlightRecord {
	out := make([]FlightRecord, 0, FlightSlots)
	for i := range f.slots {
		sl := &f.slots[i]
		for attempt := 0; attempt < 3; attempt++ {
			v1 := sl.seq.Load()
			if v1 == 0 { // never written
				break
			}
			if v1&1 == 1 { // write in flight
				continue
			}
			when := sl.when.Load()
			rec := FlightRecord{
				LatencyNs:  sl.lat.Load(),
				WhenUnixNs: when,
				When:       time.Unix(0, when).Format(time.RFC3339Nano),
				Substrate:  labelName(LabelID(sl.sub.Load())),
				Algo:       labelName(LabelID(sl.algo.Load())),
				K:          int(sl.k.Load()),
				Nodes:      sl.nodes.Load(),
				Items:      sl.items.Load(),
				DomChecks:  sl.domChecks.Load(),
				Pruned:     sl.pruned.Load(),
				HeapPushes: sl.heapPushes.Load(),
			}
			if t := sl.trace.Load(); t != nil {
				rec.TraceID = t.ID
			}
			if sl.seq.Load() != v1 {
				continue
			}
			out = append(out, rec)
			break
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].LatencyNs != out[b].LatencyNs {
			return out[a].LatencyNs > out[b].LatencyNs
		}
		return out[a].WhenUnixNs > out[b].WhenUnixNs
	})
	return out
}

// Reset empties the ring. Like ResetForTest, not linearizable against
// concurrent recorders.
func (f *FlightRecorder) Reset() {
	for i := range f.slots {
		sl := &f.slots[i]
		sl.seq.Add(1)
		sl.lat.Store(0)
		sl.when.Store(0)
		sl.sub.Store(0)
		sl.algo.Store(0)
		sl.k.Store(0)
		sl.nodes.Store(0)
		sl.items.Store(0)
		sl.domChecks.Store(0)
		sl.pruned.Store(0)
		sl.heapPushes.Store(0)
		sl.trace.Store(nil)
		sl.seq.Store(0)
	}
	f.floor.Store(0)
}
