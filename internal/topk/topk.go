// Package topk implements the top-k dominating query over hypersphere
// databases, the third application the paper names (Section 6, refs [33,
// 24]): rank every object by how many other objects it provably dominates
// with respect to the query hypersphere, and return the k highest-scoring
// objects.
//
// Scores computed with a correct-but-unsound criterion are lower bounds of
// the true scores, so rankings can only demote objects; with the Exact or
// Hyperbola criterion the scores — and hence the ranking — are exact.
package topk

import (
	"fmt"
	"sort"

	"hyperdom/internal/dominance"
	"hyperdom/internal/geom"
)

// Item is the indexed unit, shared with the index packages.
type Item = geom.Item

// Scored is an item with its dominance score.
type Scored struct {
	Item  Item
	Score int // number of other objects the item dominates wrt the query
}

// Result is the answer of a top-k dominating query.
type Result struct {
	// Top holds the k best items, highest score first (ties by ID).
	Top []Scored
	// Scores holds every object's score, in input order.
	Scores []int
	// DomChecks counts criterion invocations.
	DomChecks int
}

// Query computes dominance scores for all items and returns the top k.
func Query(items []Item, sq geom.Sphere, k int, crit dominance.Criterion) Result {
	if k <= 0 {
		panic(fmt.Sprintf("topk: k = %d", k))
	}
	res := Result{Scores: make([]int, len(items))}
	for i, sa := range items {
		for j, sb := range items {
			if i == j {
				continue
			}
			res.DomChecks++
			if crit.Dominates(sa.Sphere, sb.Sphere, sq) {
				res.Scores[i]++
			}
		}
	}
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if res.Scores[order[a]] != res.Scores[order[b]] {
			return res.Scores[order[a]] > res.Scores[order[b]]
		}
		return items[order[a]].ID < items[order[b]].ID
	})
	if k > len(order) {
		k = len(order)
	}
	for _, idx := range order[:k] {
		res.Top = append(res.Top, Scored{Item: items[idx], Score: res.Scores[idx]})
	}
	return res
}
