package topk

import (
	"math/rand"
	"testing"

	"hyperdom/internal/dominance"
	"hyperdom/internal/geom"
)

func randItems(rng *rand.Rand, d, n int, maxR float64) []Item {
	items := make([]Item, n)
	for i := range items {
		c := make([]float64, d)
		for j := range c {
			c[j] = 100 + rng.NormFloat64()*25
		}
		items[i] = Item{Sphere: geom.NewSphere(c, rng.Float64()*maxR), ID: i}
	}
	return items
}

// TestHandCase: collinear points with the query at the origin — closer
// points dominate all strictly farther points.
func TestHandCase(t *testing.T) {
	var items []Item
	for i, x := range []float64{1, 2, 3, 4} {
		items = append(items, Item{Sphere: geom.NewSphere([]float64{x}, 0), ID: i})
	}
	sq := geom.NewSphere([]float64{0}, 0)
	res := Query(items, sq, 2, dominance.Exact{})
	wantScores := []int{3, 2, 1, 0}
	for i, w := range wantScores {
		if res.Scores[i] != w {
			t.Errorf("score[%d] = %d, want %d", i, res.Scores[i], w)
		}
	}
	if len(res.Top) != 2 || res.Top[0].Item.ID != 0 || res.Top[1].Item.ID != 1 {
		t.Errorf("top-2 = %+v, want items 0 and 1", res.Top)
	}
}

// TestScoresAreLowerBounds: correct criteria cannot overcount.
func TestScoresAreLowerBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	items := randItems(rng, 3, 150, 8)
	sq := geom.NewSphere([]float64{100, 100, 100}, 5)
	truth := Query(items, sq, 5, dominance.Exact{})
	for _, crit := range []dominance.Criterion{dominance.MinMax{}, dominance.MBR{}, dominance.GP{}} {
		got := Query(items, sq, 5, crit)
		for i := range items {
			if got.Scores[i] > truth.Scores[i] {
				t.Errorf("%s overcounted item %d: %d > %d", crit.Name(), i, got.Scores[i], truth.Scores[i])
			}
		}
	}
}

// TestHyperbolaMatchesExact: scores must agree exactly.
func TestHyperbolaMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	items := randItems(rng, 4, 150, 5)
	sq := geom.NewSphere([]float64{100, 100, 100, 100}, 3)
	a := Query(items, sq, 5, dominance.Hyperbola{})
	b := Query(items, sq, 5, dominance.Exact{})
	for i := range items {
		if a.Scores[i] != b.Scores[i] {
			t.Fatalf("score[%d]: Hyperbola %d vs Exact %d", i, a.Scores[i], b.Scores[i])
		}
	}
}

func TestKLargerThanDatabase(t *testing.T) {
	items := randItems(rand.New(rand.NewSource(14)), 2, 5, 1)
	res := Query(items, geom.NewSphere([]float64{100, 100}, 1), 50, dominance.Exact{})
	if len(res.Top) != 5 {
		t.Errorf("Top has %d entries, want 5", len(res.Top))
	}
}

func TestPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 did not panic")
		}
	}()
	Query(nil, geom.NewSphere([]float64{0}, 0), 0, dominance.Exact{})
}
