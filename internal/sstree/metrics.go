package sstree

import "hyperdom/internal/obs"

// Structural observability counters (ISSUE 2): how much maintenance work
// the substrate performs. All sites are O(node) operations already, so a
// gated atomic add is free relative to the work it counts; traversal-time
// work (node visits per query) is counted by package knn, which owns the
// searches.
var (
	obsInserts   = obs.New("sstree.inserts")
	obsDeletes   = obs.New("sstree.deletes")
	obsSplits    = obs.New("sstree.node_splits")
	obsReinserts = obs.New("sstree.reinserts")
	obsBulkItems = obs.New("sstree.bulkload_items")
)
