package sstree

import (
	"fmt"
	"sort"

	"hyperdom/internal/obs"
)

// BulkLoad builds the tree from the whole item set at once, STR-style:
// items are recursively sorted along the coordinate of highest center
// variance and sliced into evenly-sized runs, one per child, so every leaf
// ends up at the same depth with near-uniform fill. Bulk loading is
// considerably faster than repeated Insert and produces tighter bounding
// spheres (see BenchmarkBulkLoadVsInsert).
//
// The tree must be empty; items are not retained (their slice may be
// reused), but the spheres inside them are shared, not copied.
func (t *Tree) BulkLoad(items []Item) {
	if t.size != 0 || t.root != nil {
		panic("sstree: BulkLoad into a non-empty tree")
	}
	t.thaw()
	if len(items) == 0 {
		return
	}
	for _, it := range items {
		if it.Sphere.Dim() != t.dim {
			panic(fmt.Sprintf("sstree: BulkLoad of %d-dimensional sphere into %d-dimensional tree",
				it.Sphere.Dim(), t.dim))
		}
		if err := it.Sphere.Validate(); err != nil {
			panic("sstree: " + err.Error())
		}
	}
	buf := make([]Item, len(items))
	copy(buf, items)
	height := 1
	cap := t.maxFill
	for cap < len(buf) {
		cap *= t.maxFill
		height++
	}
	t.root = t.bulkBuild(buf, height)
	t.size = len(buf)
	if obs.On() {
		obsBulkItems.Add(uint64(len(buf)))
	}
}

// bulkBuild constructs a subtree of the given height over items, which it
// may reorder.
func (t *Tree) bulkBuild(items []Item, height int) *node {
	n := &node{centroid: make([]float64, t.dim)}
	if height == 1 {
		n.leaf = true
		n.items = append([]Item(nil), items...)
		n.refit()
		return n
	}
	// Capacity of one child subtree.
	childCap := 1
	for i := 0; i < height-1; i++ {
		childCap *= t.maxFill
	}
	k := (len(items) + childCap - 1) / childCap
	if k < 2 {
		k = 2
	}
	if k > t.maxFill {
		k = t.maxFill
	}
	pts := make([][]float64, len(items))
	for i, it := range items {
		pts[i] = it.Sphere.Center
	}
	dim := maxVarianceDim(pts, t.dim)
	sort.Slice(items, func(a, b int) bool {
		return items[a].Sphere.Center[dim] < items[b].Sphere.Center[dim]
	})
	base := len(items) / k
	rem := len(items) % k
	start := 0
	for i := 0; i < k && start < len(items); i++ {
		size := base
		if i < rem {
			size++
		}
		if size == 0 {
			continue
		}
		n.children = append(n.children, t.bulkBuild(items[start:start+size], height-1))
		start += size
	}
	n.refit()
	return n
}
