package sstree

import (
	"reflect"
	"sort"

	"hyperdom/internal/geom"
)

// Node is a read-only cursor over a tree node, used by search algorithms
// (package knn) and by tests.
type Node struct {
	n *node
}

// Root returns a cursor to the root node; ok is false for an empty tree.
func (t *Tree) Root() (Node, bool) {
	if t.root == nil {
		return Node{}, false
	}
	return Node{t.root}, true
}

// IsLeaf reports whether the node is a leaf.
func (n Node) IsLeaf() bool { return n.n.leaf }

// Count returns the number of spheres under the node.
func (n Node) Count() int { return n.n.count }

// Sphere returns the node's bounding sphere. The returned sphere shares the
// node's centroid slice; callers must not modify it.
func (n Node) Sphere() geom.Sphere {
	return geom.Sphere{Center: n.n.centroid, Radius: n.n.radius}
}

// Children returns cursors to the node's children. Only valid on internal
// nodes.
func (n Node) Children() []Node {
	out := make([]Node, len(n.n.children))
	for i, c := range n.n.children {
		out[i] = Node{c}
	}
	return out
}

// NumChildren returns the number of children. Only valid on internal nodes.
func (n Node) NumChildren() int { return len(n.n.children) }

// Child returns a cursor to the i-th child without allocating (unlike
// Children, which builds a fresh slice). Only valid on internal nodes.
func (n Node) Child(i int) Node { return Node{n.n.children[i]} }

// Items returns the node's items. Only valid on leaves. The returned slice
// is the node's own; callers must not modify it.
func (n Node) Items() []Item { return n.n.items }

// DebugID returns an opaque identifier for the underlying node — stable
// across visits for the tree's lifetime and distinct between live nodes —
// for execution traces and prune audits. It carries no meaning beyond
// identity.
func (n Node) DebugID() uint64 { return uint64(reflect.ValueOf(n.n).Pointer()) }

// RangeSearch returns all items whose spheres intersect the query sphere q
// (MinDist(item, q) == 0), in unspecified order.
func (t *Tree) RangeSearch(q geom.Sphere) []Item {
	if q.Dim() != t.dim {
		panic("sstree: RangeSearch with mismatched dimensionality")
	}
	var out []Item
	if t.root == nil {
		return out
	}
	var walk func(n *node)
	walk = func(n *node) {
		if geom.MinDist(geom.Sphere{Center: n.centroid, Radius: n.radius}, q) > 0 {
			return
		}
		if n.leaf {
			for _, it := range n.items {
				if geom.Overlap(it.Sphere, q) {
					out = append(out, it)
				}
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// Visit calls fn for every indexed item in unspecified order; returning
// false from fn stops the walk.
func (t *Tree) Visit(fn func(Item) bool) {
	if t.root == nil {
		return
	}
	var walk func(n *node) bool
	walk = func(n *node) bool {
		if n.leaf {
			for _, it := range n.items {
				if !fn(it) {
					return false
				}
			}
			return true
		}
		for _, c := range n.children {
			if !walk(c) {
				return false
			}
		}
		return true
	}
	walk(t.root)
}

func sortItemsByDim(items []Item, dim int) {
	sort.Slice(items, func(i, j int) bool {
		return items[i].Sphere.Center[dim] < items[j].Sphere.Center[dim]
	})
}

func sortChildrenByDim(children []*node, dim int) {
	sort.Slice(children, func(i, j int) bool {
		return children[i].centroid[dim] < children[j].centroid[dim]
	})
}
