// Package sstree implements an SS-tree (White & Jain, ICDE 1996): a
// height-balanced similarity-search tree whose nodes are bounded by
// hyperspheres rather than hyperrectangles. The paper's kNN experiments
// (Section 7.2) index the dataset with an SS-tree and run the DF and HS
// search strategies over it; this package provides the index, and package
// knn provides the searches.
//
// Each node maintains the centroid of the sphere centers stored beneath it
// and a covering radius, so the bounding sphere of a node is directly
// comparable against a query hypersphere with geom.MinDist/MaxDist.
// Insertion descends to the child with the nearest centroid and splits
// overflowing nodes along the coordinate of highest centroid variance, the
// two defining heuristics of the SS-tree.
package sstree

import (
	"fmt"
	"math"

	"hyperdom/internal/geom"
	"hyperdom/internal/obs"
	"hyperdom/internal/packed"
	"hyperdom/internal/vec"
)

// Item is one indexed hypersphere together with its caller-assigned ID.
// It is an alias for geom.Item so that indexes and search algorithms share
// one item type.
type Item = geom.Item

// DefaultMaxFill is the default node capacity.
const DefaultMaxFill = 24

// Tree is an SS-tree over d-dimensional hyperspheres. The zero value is not
// usable; construct with New. A Tree is not safe for concurrent mutation;
// concurrent read-only use is safe.
type Tree struct {
	dim     int
	minFill int
	maxFill int
	root    *node
	size    int
	frozen  *packed.Tree // cached Freeze snapshot; nil when thawed
}

type node struct {
	leaf     bool
	centroid []float64
	radius   float64
	count    int // spheres in this subtree
	children []*node
	items    []Item
}

// Option configures a Tree.
type Option func(*Tree)

// WithMaxFill sets the node capacity (and the minimum fill to capacity/3,
// at least 2). Capacities below 4 are raised to 4.
func WithMaxFill(m int) Option {
	return func(t *Tree) {
		if m < 4 {
			m = 4
		}
		t.maxFill = m
		t.minFill = m / 3
		if t.minFill < 2 {
			t.minFill = 2
		}
	}
}

// New returns an empty SS-tree for dim-dimensional spheres.
func New(dim int, opts ...Option) *Tree {
	if dim <= 0 {
		panic(fmt.Sprintf("sstree: New with dimensionality %d", dim))
	}
	t := &Tree{dim: dim}
	WithMaxFill(DefaultMaxFill)(t)
	for _, o := range opts {
		o(t)
	}
	return t
}

// Dim returns the tree's dimensionality.
func (t *Tree) Dim() int { return t.dim }

// Len returns the number of indexed spheres.
func (t *Tree) Len() int { return t.size }

// Height returns the height of the tree (0 for an empty tree, 1 for a
// single leaf).
func (t *Tree) Height() int {
	h := 0
	for n := t.root; n != nil; {
		h++
		if n.leaf {
			break
		}
		n = n.children[0]
	}
	return h
}

// Insert adds the item to the tree. The item's sphere must match the
// tree's dimensionality.
func (t *Tree) Insert(it Item) {
	if it.Sphere.Dim() != t.dim {
		panic(fmt.Sprintf("sstree: Insert of %d-dimensional sphere into %d-dimensional tree",
			it.Sphere.Dim(), t.dim))
	}
	if err := it.Sphere.Validate(); err != nil {
		panic("sstree: " + err.Error())
	}
	t.thaw()
	if t.root == nil {
		t.root = &node{leaf: true, centroid: make([]float64, t.dim)}
	}
	left, right := t.insert(t.root, it)
	if right != nil {
		// Root split: grow the tree by one level.
		newRoot := &node{
			leaf:     false,
			centroid: make([]float64, t.dim),
			children: []*node{left, right},
		}
		newRoot.refit()
		t.root = newRoot
	}
	t.size++
	if obs.On() {
		obsInserts.Inc()
	}
}

// insert descends, inserts, refits bounding spheres on the way out, and
// returns (n, nil) normally or the two halves on overflow.
func (t *Tree) insert(n *node, it Item) (*node, *node) {
	if n.leaf {
		n.items = append(n.items, it)
		if len(n.items) > t.maxFill {
			return t.splitLeaf(n)
		}
		n.refit()
		return n, nil
	}
	best := t.chooseSubtree(n, it.Sphere.Center)
	left, right := t.insert(n.children[best], it)
	n.children[best] = left
	if right != nil {
		n.children = append(n.children, right)
		if len(n.children) > t.maxFill {
			return t.splitInternal(n)
		}
	}
	n.refit()
	return n, nil
}

// chooseSubtree returns the index of the child whose centroid is nearest to
// p, breaking ties toward the smaller covering radius.
func (t *Tree) chooseSubtree(n *node, p []float64) int {
	best := 0
	bestDist := math.Inf(1)
	for i, c := range n.children {
		d := vec.Dist2(c.centroid, p)
		if d < bestDist || (d == bestDist && c.radius < n.children[best].radius) {
			best, bestDist = i, d
		}
	}
	return best
}

// refit recomputes the centroid (mean of the underlying sphere centers),
// covering radius and count of n from its direct entries.
func (n *node) refit() {
	for i := range n.centroid {
		n.centroid[i] = 0
	}
	if n.leaf {
		n.count = len(n.items)
		if n.count == 0 {
			n.radius = 0
			return
		}
		for _, it := range n.items {
			for i, c := range it.Sphere.Center {
				n.centroid[i] += c
			}
		}
		inv := 1 / float64(n.count)
		for i := range n.centroid {
			n.centroid[i] *= inv
		}
		n.radius = 0
		for _, it := range n.items {
			if r := vec.Dist(n.centroid, it.Sphere.Center) + it.Sphere.Radius; r > n.radius {
				n.radius = r
			}
		}
		return
	}
	n.count = 0
	for _, c := range n.children {
		n.count += c.count
	}
	if n.count == 0 {
		n.radius = 0
		return
	}
	for _, c := range n.children {
		w := float64(c.count)
		for i, x := range c.centroid {
			n.centroid[i] += w * x
		}
	}
	inv := 1 / float64(n.count)
	for i := range n.centroid {
		n.centroid[i] *= inv
	}
	n.radius = 0
	for _, c := range n.children {
		if r := vec.Dist(n.centroid, c.centroid) + c.radius; r > n.radius {
			n.radius = r
		}
	}
}

// maxVarianceDim returns the coordinate with the highest variance over the
// given points.
func maxVarianceDim(pts [][]float64, dim int) int {
	best, bestVar := 0, -1.0
	n := float64(len(pts))
	for i := 0; i < dim; i++ {
		var s, s2 float64
		for _, p := range pts {
			s += p[i]
			s2 += p[i] * p[i]
		}
		v := s2/n - (s/n)*(s/n)
		if v > bestVar {
			best, bestVar = i, v
		}
	}
	return best
}

// bestSplitIndex returns k minimising the summed variance of vals[:k] and
// vals[k:] along the split coordinate, with both sides at least minFill.
// vals must be sorted.
func bestSplitIndex(vals []float64, minFill int) int {
	n := len(vals)
	prefix := make([]float64, n+1)
	prefix2 := make([]float64, n+1)
	for i, v := range vals {
		prefix[i+1] = prefix[i] + v
		prefix2[i+1] = prefix2[i] + v*v
	}
	ss := func(lo, hi int) float64 { // sum of squared deviations of vals[lo:hi]
		c := float64(hi - lo)
		s := prefix[hi] - prefix[lo]
		s2 := prefix2[hi] - prefix2[lo]
		return s2 - s*s/c
	}
	bestK, bestCost := minFill, math.Inf(1)
	for k := minFill; k <= n-minFill; k++ {
		if cost := ss(0, k) + ss(k, n); cost < bestCost {
			bestK, bestCost = k, cost
		}
	}
	return bestK
}

func (t *Tree) splitLeaf(n *node) (*node, *node) {
	if obs.On() {
		obsSplits.Inc()
	}
	pts := make([][]float64, len(n.items))
	for i, it := range n.items {
		pts[i] = it.Sphere.Center
	}
	dim := maxVarianceDim(pts, t.dim)
	sortItemsByDim(n.items, dim)
	vals := make([]float64, len(n.items))
	for i, it := range n.items {
		vals[i] = it.Sphere.Center[dim]
	}
	k := bestSplitIndex(vals, t.minFill)
	right := &node{leaf: true, centroid: make([]float64, t.dim)}
	right.items = append(right.items, n.items[k:]...)
	n.items = n.items[:k]
	n.refit()
	right.refit()
	return n, right
}

func (t *Tree) splitInternal(n *node) (*node, *node) {
	if obs.On() {
		obsSplits.Inc()
	}
	pts := make([][]float64, len(n.children))
	for i, c := range n.children {
		pts[i] = c.centroid
	}
	dim := maxVarianceDim(pts, t.dim)
	sortChildrenByDim(n.children, dim)
	vals := make([]float64, len(n.children))
	for i, c := range n.children {
		vals[i] = c.centroid[dim]
	}
	k := bestSplitIndex(vals, t.minFill)
	right := &node{leaf: false, centroid: make([]float64, t.dim)}
	right.children = append(right.children, n.children[k:]...)
	n.children = n.children[:k]
	n.refit()
	right.refit()
	return n, right
}
