package sstree

import (
	"math/rand"
	"testing"
)

// TestCursorTraversal walks the tree through the read-only cursor API and
// cross-checks counts, leaf depth and item totals against Len.
func TestCursorTraversal(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	tr, _ := buildTree(t, rng, 3, 700, WithMaxFill(8))
	root, ok := tr.Root()
	if !ok {
		t.Fatal("no root")
	}
	if root.Count() != tr.Len() {
		t.Errorf("root Count=%d, Len=%d", root.Count(), tr.Len())
	}
	total := 0
	var walk func(n Node)
	walk = func(n Node) {
		if n.IsLeaf() {
			total += len(n.Items())
			return
		}
		kids := n.Children()
		if len(kids) == 0 {
			t.Fatal("internal node without children")
		}
		sum := 0
		for _, c := range kids {
			sum += c.Count()
			walk(c)
		}
		if sum != n.Count() {
			t.Fatalf("node Count=%d but children sum to %d", n.Count(), sum)
		}
	}
	walk(root)
	if total != tr.Len() {
		t.Errorf("cursor walk saw %d items, Len=%d", total, tr.Len())
	}
}
