package sstree

import (
	"fmt"
	"math/rand"
	"testing"

	"hyperdom/internal/geom"
)

func benchItems(n, d int, seed int64) []Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	for i := range items {
		c := make([]float64, d)
		for j := range c {
			c[j] = rng.NormFloat64() * 25
		}
		items[i] = Item{Sphere: geom.NewSphere(c, rng.Float64()*2), ID: i}
	}
	return items
}

// BenchmarkInsert measures incremental insertion throughput.
func BenchmarkInsert(b *testing.B) {
	for _, d := range []int{2, 8} {
		items := benchItems(100000, d, 1)
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			tr := New(d)
			for i := 0; i < b.N; i++ {
				tr.Insert(items[i%len(items)])
			}
		})
	}
}

// BenchmarkRangeSearch measures intersection queries against a 50k tree.
func BenchmarkRangeSearch(b *testing.B) {
	for _, d := range []int{2, 8} {
		items := benchItems(50000, d, 2)
		tr := New(d)
		tr.BulkLoad(items)
		queries := benchItems(256, d, 3)
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)].Sphere
				tr.RangeSearch(q)
			}
		})
	}
}

// BenchmarkDelete measures deletion from a 20k tree (rebuilt per batch via
// timer exclusion).
func BenchmarkDelete(b *testing.B) {
	items := benchItems(20000, 4, 4)
	b.StopTimer()
	tr := New(4)
	for _, it := range items {
		tr.Insert(it)
	}
	idx := 0
	b.StartTimer()
	for i := 0; i < b.N; i++ {
		if idx == len(items) {
			b.StopTimer()
			tr = New(4)
			for _, it := range items {
				tr.Insert(it)
			}
			idx = 0
			b.StartTimer()
		}
		tr.Delete(items[idx])
		idx++
	}
}
