package sstree

import (
	"math/rand"
	"sort"
	"testing"

	"hyperdom/internal/geom"
	"hyperdom/internal/vec"
)

func randItem(rng *rand.Rand, d int, id int) Item {
	c := make([]float64, d)
	for i := range c {
		c[i] = rng.NormFloat64() * 25
	}
	return Item{Sphere: geom.NewSphere(c, rng.Float64()*3), ID: id}
}

func buildTree(t *testing.T, rng *rand.Rand, d, n int, opts ...Option) (*Tree, []Item) {
	t.Helper()
	tree := New(d, opts...)
	items := make([]Item, n)
	for i := 0; i < n; i++ {
		items[i] = randItem(rng, d, i)
		tree.Insert(items[i])
	}
	return tree, items
}

func TestEmptyTree(t *testing.T) {
	tr := New(3)
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Errorf("empty tree Len=%d Height=%d", tr.Len(), tr.Height())
	}
	if _, ok := tr.Root(); ok {
		t.Error("empty tree has a root")
	}
	if got := tr.RangeSearch(geom.NewSphere([]float64{0, 0, 0}, 1)); len(got) != 0 {
		t.Errorf("RangeSearch on empty tree = %v", got)
	}
	if msg := tr.CheckInvariants(); msg != "" {
		t.Errorf("empty tree invariants: %s", msg)
	}
}

func TestInsertInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 5, 24, 25, 100, 1000, 5000} {
		tr, _ := buildTree(t, rng, 4, n)
		if tr.Len() != n {
			t.Errorf("n=%d: Len=%d", n, tr.Len())
		}
		if msg := tr.CheckInvariants(); msg != "" {
			t.Errorf("n=%d: invariant violated: %s", n, msg)
		}
	}
}

func TestVisitSeesEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr, items := buildTree(t, rng, 3, 2000)
	seen := map[int]int{}
	tr.Visit(func(it Item) bool {
		seen[it.ID]++
		return true
	})
	if len(seen) != len(items) {
		t.Fatalf("visited %d distinct IDs, want %d", len(seen), len(items))
	}
	for id, cnt := range seen {
		if cnt != 1 {
			t.Errorf("ID %d visited %d times", id, cnt)
		}
	}
}

func TestVisitEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr, _ := buildTree(t, rng, 2, 500)
	calls := 0
	tr.Visit(func(Item) bool {
		calls++
		return calls < 10
	})
	if calls != 10 {
		t.Errorf("Visit made %d calls after stop, want 10", calls)
	}
}

func TestRangeSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, d := range []int{2, 5, 10} {
		tr, items := buildTree(t, rng, d, 3000)
		for trial := 0; trial < 30; trial++ {
			q := randItem(rng, d, -1).Sphere
			q.Radius += 10 * rng.Float64()
			var want []int
			for _, it := range items {
				if geom.Overlap(it.Sphere, q) {
					want = append(want, it.ID)
				}
			}
			got := tr.RangeSearch(q)
			gotIDs := make([]int, len(got))
			for i, it := range got {
				gotIDs[i] = it.ID
			}
			sort.Ints(want)
			sort.Ints(gotIDs)
			if !equalInts(want, gotIDs) {
				t.Fatalf("d=%d trial=%d: RangeSearch mismatch: got %d items, want %d",
					d, trial, len(gotIDs), len(want))
			}
		}
	}
}

func TestBoundingSpheresCoverItems(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr, items := buildTree(t, rng, 6, 4000)
	root, ok := tr.Root()
	if !ok {
		t.Fatal("no root")
	}
	cover := root.Sphere()
	grown := geom.NewSphere(cover.Center, cover.Radius*(1+1e-9))
	for _, it := range items {
		if !grown.ContainsSphere(it.Sphere) {
			t.Fatalf("item %d escapes root bounding sphere", it.ID)
		}
	}
}

func TestDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tr, items := buildTree(t, rng, 4, 2000)
	perm := rng.Perm(len(items))
	for i, pi := range perm {
		if !tr.Delete(items[pi]) {
			t.Fatalf("Delete of existing item %d failed (step %d)", items[pi].ID, i)
		}
		if tr.Len() != len(items)-i-1 {
			t.Fatalf("Len=%d after %d deletes", tr.Len(), i+1)
		}
		if i%97 == 0 {
			if msg := tr.CheckInvariants(); msg != "" {
				t.Fatalf("invariant violated after %d deletes: %s", i+1, msg)
			}
		}
	}
	if tr.Len() != 0 {
		t.Errorf("Len=%d after deleting everything", tr.Len())
	}
	if msg := tr.CheckInvariants(); msg != "" {
		t.Errorf("invariant violated on emptied tree: %s", msg)
	}
}

func TestDeleteMissing(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr, _ := buildTree(t, rng, 3, 100)
	ghost := randItem(rng, 3, 10_000)
	if tr.Delete(ghost) {
		t.Error("Delete of non-existent item returned true")
	}
	if tr.Len() != 100 {
		t.Errorf("Len=%d after failed delete", tr.Len())
	}
}

func TestInsertDeleteInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tr := New(3, WithMaxFill(8))
	live := map[int]Item{}
	next := 0
	for step := 0; step < 5000; step++ {
		if len(live) == 0 || rng.Float64() < 0.6 {
			it := randItem(rng, 3, next)
			next++
			tr.Insert(it)
			live[it.ID] = it
		} else {
			// Delete a random live item.
			var victim Item
			for _, it := range live {
				victim = it
				break
			}
			if !tr.Delete(victim) {
				t.Fatalf("step %d: delete of live item %d failed", step, victim.ID)
			}
			delete(live, victim.ID)
		}
		if tr.Len() != len(live) {
			t.Fatalf("step %d: Len=%d, live=%d", step, tr.Len(), len(live))
		}
	}
	if msg := tr.CheckInvariants(); msg != "" {
		t.Fatalf("invariant violated after interleaved ops: %s", msg)
	}
}

func TestHeightGrowsLogarithmically(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr, _ := buildTree(t, rng, 3, 10000, WithMaxFill(16))
	h := tr.Height()
	if h < 3 || h > 8 {
		t.Errorf("height %d for 10k items with fanout 16; expected a shallow balanced tree", h)
	}
}

func TestInsertPanics(t *testing.T) {
	tr := New(3)
	for name, fn := range map[string]func(){
		"wrong dim": func() { tr.Insert(Item{Sphere: geom.NewSphere([]float64{1, 2}, 1)}) },
		"bad radius": func() {
			tr.Insert(Item{Sphere: geom.Sphere{Center: []float64{1, 2, 3}, Radius: -1}})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New(0) did not panic")
			}
		}()
		New(0)
	}()
}

func TestDuplicateSpheres(t *testing.T) {
	tr := New(2, WithMaxFill(4))
	s := geom.NewSphere([]float64{1, 1}, 0.5)
	for i := 0; i < 50; i++ {
		tr.Insert(Item{Sphere: s.Clone(), ID: i})
	}
	if tr.Len() != 50 {
		t.Fatalf("Len=%d", tr.Len())
	}
	if msg := tr.CheckInvariants(); msg != "" {
		t.Fatalf("invariants with duplicates: %s", msg)
	}
	got := tr.RangeSearch(geom.NewSphere([]float64{1, 1}, 0.1))
	if len(got) != 50 {
		t.Errorf("RangeSearch found %d duplicates, want 50", len(got))
	}
}

func TestCentroidIsMeanOfCenters(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	tr, items := buildTree(t, rng, 3, 500)
	root, _ := tr.Root()
	var mean []float64
	pts := make([][]float64, len(items))
	for i, it := range items {
		pts[i] = it.Sphere.Center
	}
	mean = vec.Mean(pts)
	if !vec.ApproxEqual(root.Sphere().Center, mean, 1e-6) {
		t.Errorf("root centroid %v, want mean of centers %v", root.Sphere().Center, mean)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
