package sstree

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"hyperdom/internal/geom"
)

func TestBulkLoadInvariantsAcrossSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	sizes := []int{1, 2, 3, 5, 24, 25, 26, 48, 49, 100, 577, 1000, 2431, 5000}
	for _, n := range sizes {
		items := make([]Item, n)
		for i := range items {
			items[i] = randItem(rng, 4, i)
		}
		tr := New(4)
		tr.BulkLoad(items)
		if tr.Len() != n {
			t.Errorf("n=%d: Len=%d", n, tr.Len())
		}
		if msg := tr.CheckInvariantsLoose(); msg != "" {
			t.Errorf("n=%d: %s", n, msg)
		}
	}
}

func TestBulkLoadMatchesInsertResults(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	items := make([]Item, 3000)
	for i := range items {
		items[i] = randItem(rng, 3, i)
	}
	bulk := New(3)
	bulk.BulkLoad(items)
	inc := New(3)
	for _, it := range items {
		inc.Insert(it)
	}
	for trial := 0; trial < 20; trial++ {
		q := randItem(rng, 3, -1).Sphere
		q.Radius += 5 * rng.Float64()
		a := idsOf(bulk.RangeSearch(q))
		b := idsOf(inc.RangeSearch(q))
		if !equalInts(a, b) {
			t.Fatalf("trial %d: bulk answer (%d) differs from incremental (%d)", trial, len(a), len(b))
		}
	}
}

func TestBulkLoadPanics(t *testing.T) {
	tr := New(2)
	tr.Insert(Item{Sphere: geom.NewSphere([]float64{0, 0}, 1), ID: 0})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("BulkLoad into non-empty tree did not panic")
			}
		}()
		tr.BulkLoad([]Item{{Sphere: geom.NewSphere([]float64{1, 1}, 1), ID: 1}})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("BulkLoad with wrong dimensionality did not panic")
			}
		}()
		fresh := New(2)
		fresh.BulkLoad([]Item{{Sphere: geom.NewSphere([]float64{1, 1, 1}, 1), ID: 1}})
	}()
}

func TestBulkLoadEmpty(t *testing.T) {
	tr := New(3)
	tr.BulkLoad(nil)
	if tr.Len() != 0 {
		t.Error("BulkLoad(nil) produced items")
	}
}

func TestBulkLoadDoesNotRetainInput(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	items := make([]Item, 200)
	for i := range items {
		items[i] = randItem(rng, 2, i)
	}
	tr := New(2)
	tr.BulkLoad(items)
	// Scrambling the caller's slice must not affect the tree.
	for i := range items {
		items[i] = Item{Sphere: geom.NewSphere([]float64{-999, -999}, 0), ID: -1}
	}
	seen := 0
	tr.Visit(func(it Item) bool {
		if it.ID == -1 {
			t.Fatal("tree retained the caller's slice")
		}
		seen++
		return true
	})
	if seen != 200 {
		t.Errorf("visited %d items", seen)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	tr, items := buildTree(t, rng, 5, 2000)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if got.Len() != tr.Len() || got.Dim() != tr.Dim() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d", got.Len(), got.Dim(), tr.Len(), tr.Dim())
	}
	for trial := 0; trial < 20; trial++ {
		q := randItem(rng, 5, -1).Sphere
		q.Radius += 5 * rng.Float64()
		if !equalInts(idsOf(tr.RangeSearch(q)), idsOf(got.RangeSearch(q))) {
			t.Fatalf("trial %d: restored tree answers differently", trial)
		}
	}
	// The restored tree must accept further inserts.
	got.Insert(randItem(rng, 5, 10_000))
	if got.Len() != len(items)+1 {
		t.Errorf("insert after restore: Len=%d", got.Len())
	}
}

func TestSerializeEmptyTree(t *testing.T) {
	var buf bytes.Buffer
	if _, err := New(3).WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if got.Len() != 0 || got.Dim() != 3 {
		t.Errorf("empty round trip: Len=%d Dim=%d", got.Len(), got.Dim())
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestReadFromRejectsWrongVersion(t *testing.T) {
	var buf bytes.Buffer
	snap := treeSnapshot{Version: 99, Dim: 2, MinFill: 2, MaxFill: 8}
	if err := encodeSnapshot(&buf, snap); err != nil {
		t.Fatalf("encoding: %v", err)
	}
	if _, err := ReadFrom(&buf); err == nil {
		t.Error("future snapshot version accepted")
	}
}

func TestReadFromRejectsCorruptHeader(t *testing.T) {
	for name, snap := range map[string]treeSnapshot{
		"zero dim":      {Version: snapshotVersion, Dim: 0, MinFill: 2, MaxFill: 8},
		"tiny maxfill":  {Version: snapshotVersion, Dim: 2, MinFill: 2, MaxFill: 1},
		"negative size": {Version: snapshotVersion, Dim: 2, MinFill: 2, MaxFill: 8, Size: -3},
	} {
		var buf bytes.Buffer
		if err := encodeSnapshot(&buf, snap); err != nil {
			t.Fatalf("%s: encoding: %v", name, err)
		}
		if _, err := ReadFrom(&buf); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestBulkLoadedTreeSerializes(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	items := make([]Item, 700)
	for i := range items {
		items[i] = randItem(rng, 3, i)
	}
	tr := New(3)
	tr.BulkLoad(items)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatalf("ReadFrom of a bulk-loaded tree: %v", err)
	}
	if got.Len() != 700 {
		t.Errorf("Len=%d", got.Len())
	}
}

func BenchmarkBulkLoadVsInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(25))
	items := make([]Item, 20000)
	for i := range items {
		items[i] = randItem(rng, 6, i)
	}
	b.Run("Insert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := New(6)
			for _, it := range items {
				tr.Insert(it)
			}
		}
	})
	b.Run("BulkLoad", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := New(6)
			tr.BulkLoad(items)
		}
	})
}

func idsOf(items []Item) []int {
	out := make([]int, len(items))
	for i, it := range items {
		out[i] = it.ID
	}
	sort.Ints(out)
	return out
}
