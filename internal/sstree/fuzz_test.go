package sstree

import (
	"testing"

	"hyperdom/internal/geom"
)

// FuzzTreeOps decodes the fuzz input into a sequence of insert/delete
// operations and checks the structural invariants after the batch: the
// classic stateful-fuzzing harness for the index.
func FuzzTreeOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 250, 251, 252})
	f.Add([]byte{10, 10, 10, 10})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			t.Skip()
		}
		tr := New(2, WithMaxFill(4)) // tiny fanout: maximum structural churn
		var live []Item
		next := 0
		for i := 0; i+2 < len(data); i += 3 {
			op, bx, by := data[i], data[i+1], data[i+2]
			if op < 200 || len(live) == 0 {
				it := Item{
					Sphere: geom.NewSphere(
						[]float64{float64(bx), float64(by)},
						float64(op%16),
					),
					ID: next,
				}
				next++
				tr.Insert(it)
				live = append(live, it)
			} else {
				victim := int(bx) % len(live)
				if !tr.Delete(live[victim]) {
					t.Fatalf("delete of live item %d failed", live[victim].ID)
				}
				live = append(live[:victim], live[victim+1:]...)
			}
		}
		if tr.Len() != len(live) {
			t.Fatalf("Len=%d, live=%d", tr.Len(), len(live))
		}
		if msg := tr.CheckInvariants(); msg != "" {
			t.Fatalf("invariant violated: %s", msg)
		}
		// Every live item must be findable by a range query at its center.
		for _, it := range live[:min(len(live), 16)] {
			found := false
			for _, got := range tr.RangeSearch(it.Sphere) {
				if got.ID == it.ID {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("live item %d not found by range search", it.ID)
			}
		}
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
