package sstree

import (
	"encoding/gob"
	"fmt"
	"io"

	"hyperdom/internal/geom"
)

// The on-wire snapshot types. Kept separate from the in-memory node so the
// encoding is an explicit, versioned contract rather than an accident of
// the implementation.

type treeSnapshot struct {
	Version int
	Dim     int
	MinFill int
	MaxFill int
	Size    int
	Root    *nodeSnapshot
}

type nodeSnapshot struct {
	Leaf     bool
	Centroid []float64
	Radius   float64
	Count    int
	Children []*nodeSnapshot
	Items    []Item
}

const snapshotVersion = 1

// encodeSnapshot writes a raw snapshot; split out so tests can produce
// malformed streams.
func encodeSnapshot(w io.Writer, snap treeSnapshot) error {
	return gob.NewEncoder(w).Encode(snap)
}

// WriteTo serialises the tree with encoding/gob. It implements
// io.WriterTo; the returned byte count is 0 because gob does not expose
// one (callers needing sizes should wrap w with a counter).
func (t *Tree) WriteTo(w io.Writer) (int64, error) {
	snap := treeSnapshot{
		Version: snapshotVersion,
		Dim:     t.dim,
		MinFill: t.minFill,
		MaxFill: t.maxFill,
		Size:    t.size,
		Root:    snapshotNode(t.root),
	}
	if err := encodeSnapshot(w, snap); err != nil {
		return 0, fmt.Errorf("sstree: encoding tree: %w", err)
	}
	return 0, nil
}

// ReadFrom deserialises a tree previously written with WriteTo and
// validates its structural invariants before returning it.
func ReadFrom(r io.Reader) (*Tree, error) {
	var snap treeSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("sstree: decoding tree: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("sstree: unsupported snapshot version %d", snap.Version)
	}
	if snap.Dim <= 0 || snap.MaxFill < 4 || snap.MinFill < 2 || snap.Size < 0 {
		return nil, fmt.Errorf("sstree: corrupt snapshot header (dim=%d, fill=%d/%d, size=%d)",
			snap.Dim, snap.MinFill, snap.MaxFill, snap.Size)
	}
	t := &Tree{
		dim:     snap.Dim,
		minFill: snap.MinFill,
		maxFill: snap.MaxFill,
		size:    snap.Size,
		root:    restoreNode(snap.Root, snap.Dim),
	}
	// Bulk-loaded trees may legitimately sit below the minimum fill, so
	// only the structural (loose) invariants gate deserialisation.
	if msg := t.CheckInvariantsLoose(); msg != "" {
		return nil, fmt.Errorf("sstree: snapshot fails invariants: %s", msg)
	}
	return t, nil
}

func snapshotNode(n *node) *nodeSnapshot {
	if n == nil {
		return nil
	}
	s := &nodeSnapshot{
		Leaf:     n.leaf,
		Centroid: n.centroid,
		Radius:   n.radius,
		Count:    n.count,
		Items:    n.items,
	}
	for _, c := range n.children {
		s.Children = append(s.Children, snapshotNode(c))
	}
	return s
}

func restoreNode(s *nodeSnapshot, dim int) *node {
	if s == nil {
		return nil
	}
	n := &node{
		leaf:     s.Leaf,
		centroid: s.Centroid,
		radius:   s.Radius,
		count:    s.Count,
		items:    s.Items,
	}
	if len(n.centroid) != dim {
		// Let CheckInvariants produce the error; normalise so it can run.
		n.centroid = make([]float64, dim)
	}
	for _, c := range s.Children {
		n.children = append(n.children, restoreNode(c, dim))
	}
	return n
}

var _ io.WriterTo = (*Tree)(nil)

// geomItemGobGuard ensures geom.Item stays gob-encodable; a compile-time
// reminder that the snapshot embeds it.
var _ = geom.Item{}
