package sstree

import (
	"hyperdom/internal/geom"
	"hyperdom/internal/obs"
	"hyperdom/internal/vec"
)

// Delete removes one item with the given ID and an equal sphere from the
// tree and reports whether such an item was found. Underflowing leaves are
// dissolved and their remaining items reinserted, keeping the tree balanced
// in the amortised sense the SS-tree literature uses.
func (t *Tree) Delete(it Item) bool {
	if t.root == nil {
		return false
	}
	t.thaw()
	var orphans []Item
	found := t.delete(t.root, it, &orphans)
	if !found {
		return false
	}
	t.size--
	// Collapse a root that lost its fanout.
	for t.root != nil && !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
	if t.root != nil && t.root.leaf && len(t.root.items) == 0 {
		t.root = nil
	}
	for _, o := range orphans {
		t.size-- // Insert will count it back
		t.Insert(o)
	}
	if obs.On() {
		obsDeletes.Inc()
		obsReinserts.Add(uint64(len(orphans)))
	}
	return true
}

func sameItem(a, b Item) bool {
	return a.ID == b.ID && a.Sphere.Radius == b.Sphere.Radius &&
		vec.Equal(a.Sphere.Center, b.Sphere.Center)
}

// delete removes it from the subtree, collecting orphaned items from
// dissolved leaves into orphans. It reports whether the item was found.
func (t *Tree) delete(n *node, it Item, orphans *[]Item) bool {
	// An indexed item's center always lies within its ancestors' bounding
	// spheres, up to float error accumulated over refits; prune with a
	// small relative tolerance so marginal items are still found.
	if vec.Dist(n.centroid, it.Sphere.Center) > n.radius+1e-9*(1+n.radius) {
		return false
	}
	if n.leaf {
		for i, cand := range n.items {
			if sameItem(cand, it) {
				n.items = append(n.items[:i], n.items[i+1:]...)
				n.refit()
				return true
			}
		}
		return false
	}
	for i, c := range n.children {
		if !t.delete(c, it, orphans) {
			continue
		}
		underflow := (c.leaf && len(c.items) < t.minFill) ||
			(!c.leaf && len(c.children) < t.minFill)
		if underflow && len(n.children) > 1 {
			collectItems(c, orphans)
			n.children = append(n.children[:i], n.children[i+1:]...)
		}
		n.refit()
		return true
	}
	return false
}

func collectItems(n *node, out *[]Item) {
	if n.leaf {
		*out = append(*out, n.items...)
		return
	}
	for _, c := range n.children {
		collectItems(c, out)
	}
}

// CheckInvariants validates the structural invariants of the tree and
// returns a description of the first violation, or "" if the tree is
// consistent. Intended for tests and debugging.
//
// Invariants: every leaf at the same depth; every node's count equals the
// items beneath it; every item's sphere is inside its ancestors' bounding
// spheres (within a small float tolerance); fanout within [minFill,
// maxFill] except at the root.
func (t *Tree) CheckInvariants() string { return t.checkInvariants(true) }

// CheckInvariantsLoose validates everything CheckInvariants does except
// the fill bounds. Bulk-loaded trees trade guaranteed minimum fill for
// build speed and tighter spheres, so their nodes may legitimately sit
// below minFill.
func (t *Tree) CheckInvariantsLoose() string { return t.checkInvariants(false) }

func (t *Tree) checkInvariants(strictFill bool) string {
	if t.root == nil {
		if t.size != 0 {
			return "empty root but non-zero size"
		}
		return ""
	}
	leafDepth := -1
	total := 0
	var walk func(n *node, depth int) string
	walk = func(n *node, depth int) string {
		cover := geom.Sphere{Center: n.centroid, Radius: n.radius * (1 + 1e-9)}
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return "leaves at differing depths"
			}
			if strictFill && depth != 0 && (len(n.items) < t.minFill || len(n.items) > t.maxFill) {
				return "leaf fill out of bounds"
			}
			if len(n.items) > t.maxFill {
				return "leaf overflow"
			}
			if n.count != len(n.items) {
				return "leaf count mismatch"
			}
			total += len(n.items)
			for _, it := range n.items {
				if !cover.ContainsSphere(it.Sphere) {
					return "item escapes leaf bounding sphere"
				}
			}
			return ""
		}
		if strictFill && depth != 0 && (len(n.children) < t.minFill || len(n.children) > t.maxFill) {
			return "internal fill out of bounds"
		}
		if len(n.children) > t.maxFill {
			return "internal overflow"
		}
		if depth == 0 && len(n.children) < 2 {
			return "internal root with fewer than 2 children"
		}
		cnt := 0
		for _, c := range n.children {
			child := geom.Sphere{Center: c.centroid, Radius: c.radius}
			if !cover.ContainsSphere(child) {
				return "child escapes parent bounding sphere"
			}
			if msg := walk(c, depth+1); msg != "" {
				return msg
			}
			cnt += c.count
		}
		if n.count != cnt {
			return "internal count mismatch"
		}
		return ""
	}
	if msg := walk(t.root, 0); msg != "" {
		return msg
	}
	if total != t.size {
		return "tree size does not match item total"
	}
	return ""
}
