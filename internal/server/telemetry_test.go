package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"hyperdom/internal/obs"
	"hyperdom/internal/shard"
)

// syncBuffer is a goroutine-safe log sink for the access-log assertions
// (the httptest server handles requests on its own goroutines).
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// loggedServer is testServer plus a captured slog JSON access log.
func loggedServer(t *testing.T, d, n int) (*Server, *httptest.Server, *syncBuffer) {
	t.Helper()
	items := testCorpus(t, d, n)
	x, err := shard.Build(items, d, shard.Options{Shards: 2, WorkersPerShard: 1, Label: "default"})
	if err != nil {
		t.Fatal(err)
	}
	logs := &syncBuffer{}
	s := New(WithLogger(slog.New(slog.NewJSONHandler(logs, nil))))
	if err := s.AddCollection("default", x); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts, logs
}

// lastLogLine decodes the most recent access-log record.
func lastLogLine(t *testing.T, logs *syncBuffer) map[string]any {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(logs.String()), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("no access-log lines")
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &rec); err != nil {
		t.Fatalf("bad log line %q: %v", lines[len(lines)-1], err)
	}
	return rec
}

// TestExplainAnswerUnchanged locks the tentpole byte-identity gate: the
// kNN answer fields are byte-identical with and without ?explain=true; the
// explain response only adds the per-shard tree.
func TestExplainAnswerUnchanged(t *testing.T) {
	const d = 3
	_, ts, _ := loggedServer(t, d, 500)
	body := map[string]any{"center": []float64{100, 100, 100}, "radius": 0.5, "k": 7}

	read := func(url string) map[string]json.RawMessage {
		resp := postJSON(t, url, body)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var m map[string]json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return m
	}
	plain := read(ts.URL + "/v1/collections/default/knn")
	explained := read(ts.URL + "/v1/collections/default/knn?explain=true")

	if _, has := plain["explain"]; has {
		t.Fatal("explain-off response carries an explain field")
	}
	ex, has := explained["explain"]
	if !has {
		t.Fatal("explain-on response missing explain field")
	}
	// The answer (k, ids, items) must be byte-identical with explain on.
	// Stats are deliberately excluded: distK pushdown racing makes the
	// per-run traversal work nondeterministic (DESIGN.md §13), so only the
	// result set carries the bit-identity contract.
	for _, field := range []string{"k", "ids", "items"} {
		if !bytes.Equal(plain[field], explained[field]) {
			t.Fatalf("answer field %q differs under explain:\n off: %s\n on:  %s",
				field, plain[field], explained[field])
		}
	}

	var tree struct {
		Shards []obs.ShardSpan `json:"shards"`
		Merge  obs.MergeSpan   `json:"merge"`
	}
	if err := json.Unmarshal(ex, &tree); err != nil {
		t.Fatal(err)
	}
	if len(tree.Shards) != 2 {
		t.Fatalf("%d shard spans, want 2", len(tree.Shards))
	}
	sum := 0
	for i, sp := range tree.Shards {
		if sp.LatencyNs <= 0 || sp.QueueWaitNs <= 0 {
			t.Fatalf("span %d: latency %d, queue wait %d", i, sp.LatencyNs, sp.QueueWaitNs)
		}
		sum += sp.Candidates
	}
	if sum < 7 {
		t.Fatalf("per-shard candidates sum %d < k", sum)
	}
	if tree.Merge.Candidates != sum || tree.Merge.Results <= 0 {
		t.Fatalf("merge span %+v, shard candidate sum %d", tree.Merge, sum)
	}
}

// TestRequestIDHonoredAndGenerated pins the X-Request-ID contract: a sane
// client ID is echoed on the response and in the access log; an absent or
// garbage one is replaced with a generated ID.
func TestRequestIDHonoredAndGenerated(t *testing.T) {
	const d = 2
	_, ts, logs := loggedServer(t, d, 100)
	body, _ := json.Marshal(map[string]any{"center": []float64{100, 100}, "radius": 0.5, "k": 3})

	req, _ := http.NewRequest("POST", ts.URL+"/v1/collections/default/knn", bytes.NewReader(body))
	req.Header.Set("X-Request-ID", "client-abc-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "client-abc-123" {
		t.Fatalf("echoed ID %q, want client-abc-123", got)
	}
	rec := lastLogLine(t, logs)
	if rec["request_id"] != "client-abc-123" || rec["endpoint"] != "knn" ||
		rec["collection"] != "default" || rec["status"] != float64(200) ||
		rec["shards"] != float64(2) {
		t.Fatalf("access log %+v", rec)
	}
	if _, ok := rec["latency_ns"]; !ok {
		t.Fatalf("access log missing latency_ns: %+v", rec)
	}

	// No client ID → generated, non-empty, echoed.
	resp = postJSON(t, ts.URL+"/v1/collections/default/knn",
		map[string]any{"center": []float64{100, 100}, "radius": 0.5, "k": 3})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	gen := resp.Header.Get("X-Request-ID")
	if gen == "" || gen == "client-abc-123" {
		t.Fatalf("generated ID %q", gen)
	}
	if rec := lastLogLine(t, logs); rec["request_id"] != gen {
		t.Fatalf("log request_id %v, header %q", rec["request_id"], gen)
	}

	// Garbage (control bytes / oversized) client IDs are replaced.
	req, _ = http.NewRequest("POST", ts.URL+"/v1/collections/default/knn", bytes.NewReader(body))
	req.Header.Set("X-Request-ID", strings.Repeat("x", maxRequestIDLen+1))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); len(got) > maxRequestIDLen || got == "" {
		t.Fatalf("oversized client ID echoed back: %q", got)
	}
}

// TestReadyz pins the readiness contract: 503 until SetReady, 200 after,
// while /healthz stays 200 throughout (liveness is not readiness).
func TestReadyz(t *testing.T) {
	const d = 2
	s, ts, _ := loggedServer(t, d, 50)

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz before SetReady: %d", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz before SetReady: %d", got)
	}
	s.SetReady(true)
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("readyz after SetReady: %d", got)
	}
	if !s.Ready() {
		t.Fatal("Ready() false after SetReady(true)")
	}
	s.SetReady(false)
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz after SetReady(false): %d", got)
	}
}

// TestServerErrorPaths covers the four required error paths — oversized
// body, malformed JSON, unknown collection, bad k — asserting the status
// code, the error-labeled requests_total increment, and a structured log
// line carrying a request_id.
func TestServerErrorPaths(t *testing.T) {
	obs.ResetForTest()
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	defer obs.ResetForTest()

	const d = 2
	_, ts, logs := loggedServer(t, d, 80)

	cases := []struct {
		name   string
		path   string
		body   []byte
		status int
	}{
		{"oversized body", "/v1/collections/default/knn",
			append([]byte(`{"center":[`), append(bytes.Repeat([]byte("1,"), maxBodyBytes/2), []byte(`1],"k":1}`)...)...),
			http.StatusRequestEntityTooLarge},
		{"malformed json", "/v1/collections/default/knn",
			[]byte(`{"center":[1,2`), http.StatusBadRequest},
		{"unknown collection", "/v1/collections/nope/knn",
			[]byte(`{"center":[1,2],"k":1}`), http.StatusNotFound},
		{"bad k", "/v1/collections/default/knn",
			[]byte(`{"center":[1,2],"k":0}`), http.StatusBadRequest},
	}
	wantCodes := map[string]bool{}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+c.path, "application/json", bytes.NewReader(c.body))
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.status {
			t.Fatalf("%s: status %d, want %d", c.name, resp.StatusCode, c.status)
		}
		id := resp.Header.Get("X-Request-ID")
		if id == "" {
			t.Fatalf("%s: no X-Request-ID on error response", c.name)
		}
		rec := lastLogLine(t, logs)
		if rec["request_id"] != id || rec["status"] != float64(c.status) {
			t.Fatalf("%s: log line %+v, want request_id %q status %d", c.name, rec, id, c.status)
		}
		if rec["level"] != "WARN" {
			t.Fatalf("%s: log level %v, want WARN", c.name, rec["level"])
		}
		wantCodes[`code="`+strconv.Itoa(c.status)+`",endpoint="knn"`] = true
	}

	// Every error code must have incremented its labeled counter.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	body := string(raw)
	for labels := range wantCodes {
		if !strings.Contains(body, "hyperdom_server_requests_total{"+labels+"}") {
			t.Fatalf("metrics missing requests_total{%s}\n%s", labels, body)
		}
	}
	if !strings.Contains(body, "hyperdom_server_bad_requests 4") {
		t.Fatalf("bad_requests counter not at 4\n%s", body)
	}
}

// TestDebugRequestsServed pins the request flight recorder end to end: a
// served kNN query appears at /debug/requests with its shard tree, linked
// by the request ID the response carried.
func TestDebugRequestsServed(t *testing.T) {
	obs.ResetForTest()
	defer obs.ResetForTest()
	const d = 2
	_, ts, _ := loggedServer(t, d, 200)

	resp := postJSON(t, ts.URL+"/v1/collections/default/knn",
		map[string]any{"center": []float64{100, 100}, "radius": 0.5, "k": 4})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	id := resp.Header.Get("X-Request-ID")

	dresp, err := http.Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	var recs []obs.RequestTrace
	if err := json.NewDecoder(dresp.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	found := false
	for _, r := range recs {
		if r.RequestID == id {
			found = true
			if r.Collection != "default" || r.Endpoint != "knn" || r.Status != 200 ||
				r.K != 4 || len(r.Shards) != 2 || r.LatencyNs <= 0 {
				t.Fatalf("request trace %+v", r)
			}
		}
	}
	if !found {
		t.Fatalf("request %q not in /debug/requests (%d records)", id, len(recs))
	}
}
