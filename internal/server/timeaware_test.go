package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"hyperdom/internal/obs"
)

// knnQuery fires one valid kNN request against the test server.
func knnQuery(t *testing.T, ts string) {
	t.Helper()
	resp := postJSON(t, ts+"/v1/collections/default/knn",
		map[string]any{"center": []float64{100, 100, 100}, "radius": 0.5, "k": 3})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("knn query status %d", resp.StatusCode)
	}
}

// TestHealthAndTimelineEndpoints drives the served time-aware surfaces end
// to end: queries land in the windowed histogram, one timeline tick later
// /debug/timeline carries non-null windowed p99 for the request-latency
// family and /debug/health grades it ok against sane thresholds.
func TestHealthAndTimelineEndpoints(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	obs.ResetForTest()
	obs.ResetTimelineForTest()
	obs.SetHealthConfig(obs.HealthConfig{
		LatencyFamily:      "server.request_latency",
		LatencyP99Max:      5 * time.Second, // generous: CI machines are slow, not degraded
		ErrorRateMax:       0.5,
		QueueSaturationMax: 0.9,
	})
	t.Cleanup(func() { obs.SetHealthConfig(obs.HealthConfig{}) })

	items := testCorpus(t, 3, 400)
	_, ts := testServer(t, items, 3)
	for i := 0; i < 10; i++ {
		knnQuery(t, ts.URL)
	}
	obs.TimelineTick()

	resp, err := http.Get(ts.URL + "/debug/timeline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snaps []struct {
		When      string `json:"when"`
		Quantiles map[string]struct {
			Count uint64   `json:"count"`
			P99   *float64 `json:"p99"`
		} `json:"windowed_quantiles"`
		Runtime struct {
			Goroutines int `json:"goroutines"`
		} `json:"runtime"`
		Gauges map[string]float64 `json:"gauges"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snaps); err != nil {
		t.Fatalf("/debug/timeline decode: %v", err)
	}
	if len(snaps) == 0 {
		t.Fatal("no timeline snapshots after a tick")
	}
	last := snaps[len(snaps)-1]
	fam, ok := last.Quantiles["server.request_latency"]
	if !ok {
		t.Fatalf("timeline lacks server.request_latency; families: %v", last.Quantiles)
	}
	if fam.Count < 10 || fam.P99 == nil {
		t.Errorf("windowed request latency = %+v, want count ≥ 10 and non-null p99", fam)
	}
	if last.Runtime.Goroutines <= 0 {
		t.Errorf("timeline runtime sample dead: %+v", last.Runtime)
	}
	if _, ok := last.Gauges["server.inflight_requests"]; !ok {
		t.Error("timeline gauges missing server.inflight_requests")
	}

	hresp, err := http.Get(ts.URL + "/debug/health")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var verdict obs.HealthVerdict
	if err := json.NewDecoder(hresp.Body).Decode(&verdict); err != nil {
		t.Fatalf("/debug/health decode: %v", err)
	}
	if hresp.StatusCode != http.StatusOK || verdict.Status != obs.HealthOK {
		t.Errorf("health = %d %q (%v), want 200 ok", hresp.StatusCode, verdict.Status, verdict.Reasons)
	}
	if len(verdict.Checks) != 3 {
		t.Errorf("health ran %d checks, want 3 (latency, error rate, queue)", len(verdict.Checks))
	}
}

// TestReadyzReportsDegraded pins the readiness contract under degraded
// health: still 200 with "ready" as the first line (orchestrators and the
// CI gate grep for it), with the health status and reasons appended.
func TestReadyzReportsDegraded(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	obs.ResetForTest()
	t.Cleanup(func() { obs.SetHealthConfig(obs.HealthConfig{}) })

	items := testCorpus(t, 3, 100)
	s, ts := testServer(t, items, 3)

	get := func() (int, string) {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := get(); code != http.StatusServiceUnavailable || !strings.Contains(body, "not ready") {
		t.Errorf("pre-ready /readyz = %d %q, want 503 not ready", code, body)
	}
	s.SetReady(true)
	obs.SetHealthConfig(obs.HealthConfig{})
	if code, body := get(); code != http.StatusOK || !strings.HasPrefix(body, "ready") {
		t.Errorf("healthy /readyz = %d %q, want 200 starting with ready", code, body)
	}

	// Degrade: tiny latency threshold plus slow recorded samples.
	obs.SetHealthConfig(obs.HealthConfig{
		LatencyFamily: "server.request_latency",
		LatencyP99Max: time.Nanosecond,
	})
	knnQuery(t, ts.URL)
	code, body := get()
	if code != http.StatusOK {
		t.Errorf("degraded /readyz status = %d, want 200 (degraded is not unready)", code)
	}
	if !strings.HasPrefix(body, "ready") {
		t.Errorf("degraded /readyz body %q does not start with ready", body)
	}
	if !strings.Contains(body, "health: ") {
		t.Errorf("degraded /readyz body %q does not report health status", body)
	}
}

// TestRequestTraceWallClock checks /debug/requests entries carry the
// RFC3339 when field alongside when_unix_ns (satellite: correlate with
// timeline snapshots and external logs).
func TestRequestTraceWallClock(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	obs.ResetForTest()

	items := testCorpus(t, 3, 200)
	_, ts := testServer(t, items, 3)
	before := time.Now().Add(-time.Second)
	knnQuery(t, ts.URL)

	resp, err := http.Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var traces []struct {
		WhenUnixNs int64  `json:"when_unix_ns"`
		When       string `json:"when"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) == 0 {
		t.Fatal("no request traces retained")
	}
	for _, tr := range traces {
		w, err := time.Parse(time.RFC3339Nano, tr.When)
		if err != nil {
			t.Fatalf("when %q not RFC3339Nano: %v", tr.When, err)
		}
		if w.UnixNano() != tr.WhenUnixNs {
			t.Errorf("when %q (%d) disagrees with when_unix_ns %d", tr.When, w.UnixNano(), tr.WhenUnixNs)
		}
		if w.Before(before) || w.After(time.Now().Add(time.Second)) {
			t.Errorf("when %q outside the test run", tr.When)
		}
	}
}

// TestInflightGauge checks the server.inflight_requests callback gauge
// reads zero at rest (the bracket decrements on every path).
func TestInflightGauge(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	items := testCorpus(t, 3, 100)
	_, ts := testServer(t, items, 3)
	for i := 0; i < 5; i++ {
		knnQuery(t, ts.URL)
	}
	// An invalid request exercises the error path's decrement too.
	resp := postJSON(t, ts.URL+"/v1/collections/default/knn", map[string]any{"k": 0})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if v, ok := obs.GaugeValue("server.inflight_requests", ""); !ok || v != 0 {
		t.Errorf("inflight at rest = %v,%v want 0,true", v, ok)
	}
}
