// Package server is the HTTP+JSON front of the sharded scatter-gather
// layer (DESIGN.md §13): multi-collection routing over shard.Index values,
// the paper's kNN and dominance queries as POST endpoints, and the obs
// stack (Prometheus /metrics, /debug handlers) mounted beside them.
//
// Endpoints:
//
//	POST /v1/collections/{name}/knn        {"center":[...],"radius":r,"k":k}
//	POST /v1/collections/{name}/dominates  {"a":sphere,"b":sphere,"criterion":"Hyperbola"?}
//	GET  /v1/collections                   collection inventory
//	GET  /healthz                          liveness
//	GET  /metrics, /debug/...              obs exposition
//
// Every request is measured into the per-(collection, endpoint) labeled
// hyperdom_server_request_latency_seconds family and counted in
// hyperdom_server_requests; kNN answers additionally drive the
// hyperdom_shard_* families of the collection they hit.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"hyperdom/internal/dominance"
	"hyperdom/internal/geom"
	"hyperdom/internal/knn"
	"hyperdom/internal/obs"
	"hyperdom/internal/shard"
)

var (
	obsRequests    = obs.New("server.requests")
	obsBadRequests = obs.New("server.bad_requests")
)

// maxBodyBytes bounds request bodies: generous for high-dimensional
// centers, far below anything that could balloon the process.
const maxBodyBytes = 1 << 20

// Server routes requests to named collections. Construct with New, attach
// collections with AddCollection, serve Handler(). Safe for concurrent
// use; Close stops every collection's shard pools.
type Server struct {
	mu          sync.RWMutex
	collections map[string]*shard.Index
}

// New returns a server with no collections.
func New() *Server {
	return &Server{collections: make(map[string]*shard.Index)}
}

// AddCollection mounts x under /v1/collections/{name}. The server takes
// ownership: Close closes it. Duplicate names error.
func (s *Server) AddCollection(name string, x *shard.Index) error {
	if name == "" {
		return fmt.Errorf("server: empty collection name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.collections[name]; dup {
		return fmt.Errorf("server: duplicate collection %q", name)
	}
	s.collections[name] = x
	return nil
}

// Collections returns the mounted collection names, sorted.
func (s *Server) Collections() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.collections))
	for name := range s.collections {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Close stops every collection's shard pools.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, x := range s.collections {
		x.Close()
	}
	s.collections = make(map[string]*shard.Index)
}

// Handler returns the full route table, obs exposition included.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/collections/{name}/knn", s.handleKNN)
	mux.HandleFunc("POST /v1/collections/{name}/dominates", s.handleDominates)
	mux.HandleFunc("GET /v1/collections", s.handleList)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/metrics", obs.Handler())
	mux.Handle("/debug/", obs.Handler())
	return mux
}

func (s *Server) lookup(name string) (*shard.Index, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	x, ok := s.collections[name]
	return x, ok
}

type sphereJSON struct {
	Center []float64 `json:"center"`
	Radius float64   `json:"radius"`
}

func (sj sphereJSON) sphere() (geom.Sphere, error) {
	if len(sj.Center) == 0 {
		return geom.Sphere{}, fmt.Errorf("empty center")
	}
	if sj.Radius < 0 || sj.Radius != sj.Radius {
		return geom.Sphere{}, fmt.Errorf("invalid radius %v", sj.Radius)
	}
	return geom.Sphere{Center: sj.Center, Radius: sj.Radius}, nil
}

type knnRequest struct {
	Center []float64 `json:"center"`
	Radius float64   `json:"radius"`
	K      int       `json:"k"`
}

type itemJSON struct {
	ID     int       `json:"id"`
	Center []float64 `json:"center"`
	Radius float64   `json:"radius"`
}

type knnResponse struct {
	K     int        `json:"k"`
	IDs   []int      `json:"ids"`
	Items []itemJSON `json:"items"`
	Stats knn.Stats  `json:"stats"`
}

// observe runs f measured into the per-(collection, endpoint) latency
// family and the request counter.
func observe(collection, endpoint string, f func()) {
	if !obs.On() {
		f()
		return
	}
	obsRequests.Inc()
	sw := obs.StartTimer()
	f()
	sw.Stop(obs.GetOrNewHistogram("server.request_latency",
		`collection="`+collection+`",endpoint="`+endpoint+`"`))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	if obs.On() {
		obsBadRequests.Inc()
	}
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	x, ok := s.lookup(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown collection %q", name)
		return
	}
	var req knnRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	sq, err := sphereJSON{Center: req.Center, Radius: req.Radius}.sphere()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad query sphere: %v", err)
		return
	}
	if len(sq.Center) != x.Dim() {
		writeError(w, http.StatusBadRequest, "query dim %d, collection dim %d", len(sq.Center), x.Dim())
		return
	}
	if req.K <= 0 {
		writeError(w, http.StatusBadRequest, "k must be >= 1, got %d", req.K)
		return
	}
	observe(name, "knn", func() {
		res := x.Search(sq, req.K)
		resp := knnResponse{K: res.K, IDs: make([]int, 0, len(res.Items)), Stats: res.Stats}
		for _, it := range res.Items {
			resp.IDs = append(resp.IDs, it.ID)
			resp.Items = append(resp.Items, itemJSON{ID: it.ID, Center: it.Sphere.Center, Radius: it.Sphere.Radius})
		}
		writeJSON(w, http.StatusOK, resp)
	})
}

type dominatesRequest struct {
	A         sphereJSON `json:"a"`
	B         sphereJSON `json:"b"`
	Q         sphereJSON `json:"q"`
	Criterion string     `json:"criterion"`
}

type dominatesResponse struct {
	Dominates bool   `json:"dominates"`
	Criterion string `json:"criterion"`
}

// handleDominates answers one dominance check DC(a, b, q): does a dominate
// b with respect to the collection-dimensioned query sphere q? The
// collection only anchors the dimensionality check; the verdict is pure
// geometry.
func (s *Server) handleDominates(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	x, ok := s.lookup(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown collection %q", name)
		return
	}
	var req dominatesRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	crit := dominance.Criterion(dominance.Hyperbola{})
	if req.Criterion != "" {
		if crit = dominance.ByName(req.Criterion); crit == nil {
			writeError(w, http.StatusBadRequest, "unknown criterion %q", req.Criterion)
			return
		}
	}
	spheres := make([]geom.Sphere, 3)
	for i, sj := range []sphereJSON{req.A, req.B, req.Q} {
		sp, err := sj.sphere()
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad sphere %q: %v", [3]string{"a", "b", "q"}[i], err)
			return
		}
		if len(sp.Center) != x.Dim() {
			writeError(w, http.StatusBadRequest, "sphere %q dim %d, collection dim %d",
				[3]string{"a", "b", "q"}[i], len(sp.Center), x.Dim())
			return
		}
		spheres[i] = sp
	}
	observe(name, "dominates", func() {
		writeJSON(w, http.StatusOK, dominatesResponse{
			Dominates: crit.Dominates(spheres[0], spheres[1], spheres[2]),
			Criterion: crit.Name(),
		})
	})
}

type collectionJSON struct {
	Name   string `json:"name"`
	Items  int    `json:"items"`
	Dim    int    `json:"dim"`
	Shards int    `json:"shards"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	out := make([]collectionJSON, 0, len(s.collections))
	for name, x := range s.collections {
		out = append(out, collectionJSON{Name: name, Items: x.Len(), Dim: x.Dim(), Shards: x.Shards()})
	}
	s.mu.RUnlock()
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	writeJSON(w, http.StatusOK, map[string]any{"collections": out})
}
