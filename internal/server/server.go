// Package server is the HTTP+JSON front of the sharded scatter-gather
// layer (DESIGN.md §13): multi-collection routing over shard.Index values,
// the paper's kNN and dominance queries as POST endpoints, and the obs
// stack (Prometheus /metrics, /debug handlers) mounted beside them.
//
// Endpoints:
//
//	POST /v1/collections/{name}/knn        {"center":[...],"radius":r,"k":k}
//	                                       ?explain=true adds the per-shard
//	                                       trace tree to the response
//	POST /v1/collections/{name}/dominates  {"a":sphere,"b":sphere,"criterion":"Hyperbola"?}
//	GET  /v1/collections                   collection inventory
//	GET  /healthz                          liveness
//	GET  /readyz                           readiness (503 until SetReady)
//	GET  /metrics, /debug/...              obs exposition
//
// Every /v1 request runs through one middleware (DESIGN.md §14): it honors
// or generates an X-Request-ID (echoed on the response), captures the
// status code, measures latency into the per-(collection, endpoint, code)
// hyperdom_server_request_latency_seconds family, counts it in
// hyperdom_server_requests_total{code,endpoint}, emits one structured JSON
// access-log line, and offers kNN requests — with their per-shard trace
// trees — to the request flight recorder behind /debug/requests.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hyperdom/internal/dominance"
	"hyperdom/internal/geom"
	"hyperdom/internal/knn"
	"hyperdom/internal/obs"
	"hyperdom/internal/shard"
)

var (
	obsRequests    = obs.New("server.requests")
	obsBadRequests = obs.New("server.bad_requests")

	// inflight counts /v1 requests currently inside a handler, exposed as
	// the hyperdom_server_inflight_requests saturation gauge (ISSUE 9).
	// Process-wide rather than per-Server: the gauge answers "how loaded is
	// this process", and test servers coexisting briefly only ever add.
	inflight atomic.Int64
)

func init() {
	obs.RegisterGaugeFunc("server.inflight_requests", "", func() float64 {
		return float64(inflight.Load())
	})
}

// maxBodyBytes bounds request bodies: generous for high-dimensional
// centers, far below anything that could balloon the process.
const maxBodyBytes = 1 << 20

// maxRequestIDLen caps client-supplied X-Request-ID values; anything
// longer (or containing non-printable bytes) is replaced with a generated
// ID rather than echoed into logs.
const maxRequestIDLen = 128

// Server routes requests to named collections. Construct with New, attach
// collections with AddCollection, serve Handler(). Safe for concurrent
// use; Close stops every collection's shard pools.
type Server struct {
	mu          sync.RWMutex
	collections map[string]*shard.Index

	log    *slog.Logger
	ready  atomic.Bool
	reqSeq atomic.Uint64
	bootNs int64
}

// Option configures a Server.
type Option func(*Server)

// WithLogger sets the structured access-log destination. The default
// discards log output (library embedders opt in; hyperdomd wires stderr).
func WithLogger(l *slog.Logger) Option {
	return func(s *Server) {
		if l != nil {
			s.log = l
		}
	}
}

// New returns a server with no collections, not yet ready.
func New(opts ...Option) *Server {
	s := &Server{
		collections: make(map[string]*shard.Index),
		log:         slog.New(slog.NewJSONHandler(discard{}, nil)),
		bootNs:      time.Now().UnixNano(),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// SetReady flips the /readyz verdict. hyperdomd calls SetReady(true) once
// every collection has finished building and freezing, so orchestrators
// (and the e2e CI job) can gate traffic on readiness instead of liveness.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Ready reports the current /readyz verdict.
func (s *Server) Ready() bool { return s.ready.Load() }

// AddCollection mounts x under /v1/collections/{name}. The server takes
// ownership: Close closes it. Duplicate names error.
func (s *Server) AddCollection(name string, x *shard.Index) error {
	if name == "" {
		return fmt.Errorf("server: empty collection name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.collections[name]; dup {
		return fmt.Errorf("server: duplicate collection %q", name)
	}
	s.collections[name] = x
	return nil
}

// Collections returns the mounted collection names, sorted.
func (s *Server) Collections() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.collections))
	for name := range s.collections {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Close stops every collection's shard pools.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, x := range s.collections {
		x.Close()
	}
	s.collections = make(map[string]*shard.Index)
	s.ready.Store(false)
}

// Handler returns the full route table, obs exposition included.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/collections/{name}/knn", s.wrap("knn", s.handleKNN))
	mux.HandleFunc("POST /v1/collections/{name}/dominates", s.wrap("dominates", s.handleDominates))
	mux.HandleFunc("GET /v1/collections", s.wrap("list", s.handleList))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !s.ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "not ready")
			return
		}
		// Ready stays 200 even under degraded health — the server answers
		// queries, just not at its thresholds; orchestrators that want to
		// shed traffic act on the reported status (or on /debug/health,
		// which turns 503 when unhealthy).
		fmt.Fprintln(w, "ready")
		if hv := obs.Health(); hv.Status != obs.HealthOK {
			fmt.Fprintf(w, "health: %s\n", hv.Status)
			for _, reason := range hv.Reasons {
				fmt.Fprintf(w, "  - %s\n", reason)
			}
		}
	})
	mux.Handle("/metrics", obs.Handler())
	mux.Handle("/debug/", obs.Handler())
	return mux
}

// reqCtx is the per-request trace context the middleware threads through a
// handler: the response writer (capturing the status code on first write),
// the request identity, and the slots a kNN handler fills so the
// middleware — which alone knows the request's full wall latency — can
// finish the RequestTrace.
type reqCtx struct {
	http.ResponseWriter
	id         string
	collection string
	status     int

	// Filled by handleKNN for successful searches: the scatter-gather
	// trace tree and the query's k, wrapped into an obs.RequestTrace by
	// the middleware after the response is written.
	explain *shard.Explain
	k       int
}

func (c *reqCtx) WriteHeader(code int) {
	if c.status == 0 {
		c.status = code
	}
	c.ResponseWriter.WriteHeader(code)
}

func (c *reqCtx) Write(b []byte) (int, error) {
	if c.status == 0 {
		c.status = http.StatusOK
	}
	return c.ResponseWriter.Write(b)
}

// requestID returns the client-supplied X-Request-ID when it is sane, else
// a fresh process-unique ID.
func (s *Server) requestID(r *http.Request) string {
	id := r.Header.Get("X-Request-ID")
	if id != "" && len(id) <= maxRequestIDLen {
		ok := true
		for i := 0; i < len(id); i++ {
			if id[i] < 0x21 || id[i] > 0x7e {
				ok = false
				break
			}
		}
		if ok {
			return id
		}
	}
	return fmt.Sprintf("%08x-%06d", uint32(s.bootNs), s.reqSeq.Add(1))
}

// wrap is the /v1 middleware described in the package comment.
func (s *Server) wrap(endpoint string, h func(*reqCtx, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := s.requestID(r)
		w.Header().Set("X-Request-ID", id)
		c := &reqCtx{ResponseWriter: w, id: id, collection: r.PathValue("name")}
		inflight.Add(1)
		start := time.Now()
		h(c, r)
		inflight.Add(-1)
		if c.status == 0 {
			c.status = http.StatusOK
		}
		lat := time.Since(start)

		if obs.On() {
			code := strconv.Itoa(c.status)
			obsRequests.Inc()
			obs.GetOrNewLabeled("server.requests_total",
				`code="`+code+`",endpoint="`+endpoint+`"`).Inc()
			obs.GetOrNewHistogram("server.request_latency",
				`collection="`+c.collection+`",endpoint="`+endpoint+`",code="`+code+`"`).
				Record(lat.Nanoseconds())
		}

		if c.explain != nil {
			t := &obs.RequestTrace{
				RequestID:  id,
				Collection: c.collection,
				Endpoint:   endpoint,
				Status:     c.status,
				K:          c.k,
				WhenUnixNs: start.UnixNano(),
				When:       start.Format(time.RFC3339Nano),
				LatencyNs:  lat.Nanoseconds(),
				Shards:     c.explain.Shards,
				Merge:      c.explain.Merge,
			}
			obs.Requests.Record(t)
		}

		level := slog.LevelInfo
		switch {
		case c.status >= 500:
			level = slog.LevelError
		case c.status >= 400:
			level = slog.LevelWarn
		}
		s.log.LogAttrs(r.Context(), level, "request",
			slog.String("request_id", id),
			slog.String("collection", c.collection),
			slog.String("endpoint", endpoint),
			slog.Int("status", c.status),
			slog.Int("shards", len(c.explainShards())),
			slog.Int64("latency_ns", lat.Nanoseconds()),
		)
	}
}

func (c *reqCtx) explainShards() []obs.ShardSpan {
	if c.explain == nil {
		return nil
	}
	return c.explain.Shards
}

func (s *Server) lookup(name string) (*shard.Index, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	x, ok := s.collections[name]
	return x, ok
}

type sphereJSON struct {
	Center []float64 `json:"center"`
	Radius float64   `json:"radius"`
}

func (sj sphereJSON) sphere() (geom.Sphere, error) {
	if len(sj.Center) == 0 {
		return geom.Sphere{}, fmt.Errorf("empty center")
	}
	if sj.Radius < 0 || sj.Radius != sj.Radius {
		return geom.Sphere{}, fmt.Errorf("invalid radius %v", sj.Radius)
	}
	return geom.Sphere{Center: sj.Center, Radius: sj.Radius}, nil
}

type knnRequest struct {
	Center []float64 `json:"center"`
	Radius float64   `json:"radius"`
	K      int       `json:"k"`
}

type itemJSON struct {
	ID     int       `json:"id"`
	Center []float64 `json:"center"`
	Radius float64   `json:"radius"`
}

// knnResponse is the kNN answer. Explain is present only under
// ?explain=true — the answer fields are byte-identical either way.
type knnResponse struct {
	K       int            `json:"k"`
	IDs     []int          `json:"ids"`
	Items   []itemJSON     `json:"items"`
	Stats   knn.Stats      `json:"stats"`
	Explain *shard.Explain `json:"explain,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	if obs.On() {
		obsBadRequests.Inc()
	}
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// decodeBody decodes the capped request body, mapping an over-cap read to
// 413 and any other decode failure to 400.
func decodeBody(c *reqCtx, r *http.Request, v any) bool {
	err := json.NewDecoder(http.MaxBytesReader(c, r.Body, maxBodyBytes)).Decode(v)
	if err == nil {
		return true
	}
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeError(c, http.StatusRequestEntityTooLarge, "request body over %d bytes", tooBig.Limit)
		return false
	}
	writeError(c, http.StatusBadRequest, "bad request body: %v", err)
	return false
}

func (s *Server) handleKNN(c *reqCtx, r *http.Request) {
	x, ok := s.lookup(c.collection)
	if !ok {
		writeError(c, http.StatusNotFound, "unknown collection %q", c.collection)
		return
	}
	var req knnRequest
	if !decodeBody(c, r, &req) {
		return
	}
	sq, err := sphereJSON{Center: req.Center, Radius: req.Radius}.sphere()
	if err != nil {
		writeError(c, http.StatusBadRequest, "bad query sphere: %v", err)
		return
	}
	if len(sq.Center) != x.Dim() {
		writeError(c, http.StatusBadRequest, "query dim %d, collection dim %d", len(sq.Center), x.Dim())
		return
	}
	if req.K <= 0 {
		writeError(c, http.StatusBadRequest, "k must be >= 1, got %d", req.K)
		return
	}
	// Always search in explain mode: the trace tree feeds /debug/requests
	// whether or not the client asked to see it, and its cost is a couple
	// of slice allocations per request — zero per shard. Results are
	// bit-identical to the plain path (test-locked).
	res, ex := x.SearchExplain(sq, req.K)
	c.explain, c.k = ex, req.K
	resp := knnResponse{K: res.K, IDs: make([]int, 0, len(res.Items)), Stats: res.Stats}
	for _, it := range res.Items {
		resp.IDs = append(resp.IDs, it.ID)
		resp.Items = append(resp.Items, itemJSON{ID: it.ID, Center: it.Sphere.Center, Radius: it.Sphere.Radius})
	}
	if r.URL.Query().Get("explain") == "true" {
		resp.Explain = ex
	}
	writeJSON(c, http.StatusOK, resp)
}

type dominatesRequest struct {
	A         sphereJSON `json:"a"`
	B         sphereJSON `json:"b"`
	Q         sphereJSON `json:"q"`
	Criterion string     `json:"criterion"`
}

type dominatesResponse struct {
	Dominates bool   `json:"dominates"`
	Criterion string `json:"criterion"`
}

// handleDominates answers one dominance check DC(a, b, q): does a dominate
// b with respect to the collection-dimensioned query sphere q? The
// collection only anchors the dimensionality check; the verdict is pure
// geometry.
func (s *Server) handleDominates(c *reqCtx, r *http.Request) {
	x, ok := s.lookup(c.collection)
	if !ok {
		writeError(c, http.StatusNotFound, "unknown collection %q", c.collection)
		return
	}
	var req dominatesRequest
	if !decodeBody(c, r, &req) {
		return
	}
	crit := dominance.Criterion(dominance.Hyperbola{})
	if req.Criterion != "" {
		if crit = dominance.ByName(req.Criterion); crit == nil {
			writeError(c, http.StatusBadRequest, "unknown criterion %q", req.Criterion)
			return
		}
	}
	spheres := make([]geom.Sphere, 3)
	for i, sj := range []sphereJSON{req.A, req.B, req.Q} {
		sp, err := sj.sphere()
		if err != nil {
			writeError(c, http.StatusBadRequest, "bad sphere %q: %v", [3]string{"a", "b", "q"}[i], err)
			return
		}
		if len(sp.Center) != x.Dim() {
			writeError(c, http.StatusBadRequest, "sphere %q dim %d, collection dim %d",
				[3]string{"a", "b", "q"}[i], len(sp.Center), x.Dim())
			return
		}
		spheres[i] = sp
	}
	writeJSON(c, http.StatusOK, dominatesResponse{
		Dominates: crit.Dominates(spheres[0], spheres[1], spheres[2]),
		Criterion: crit.Name(),
	})
}

type collectionJSON struct {
	Name   string `json:"name"`
	Items  int    `json:"items"`
	Dim    int    `json:"dim"`
	Shards int    `json:"shards"`
}

func (s *Server) handleList(c *reqCtx, r *http.Request) {
	s.mu.RLock()
	out := make([]collectionJSON, 0, len(s.collections))
	for name, x := range s.collections {
		out = append(out, collectionJSON{Name: name, Items: x.Len(), Dim: x.Dim(), Shards: x.Shards()})
	}
	s.mu.RUnlock()
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	writeJSON(c, http.StatusOK, map[string]any{"collections": out})
}
