package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hyperdom/internal/dominance"
	"hyperdom/internal/geom"
	"hyperdom/internal/knn"
	"hyperdom/internal/obs"
	"hyperdom/internal/shard"
	"hyperdom/internal/sstree"
)

func testCorpus(t *testing.T, d, n int) []geom.Item {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	items := make([]geom.Item, n)
	for i := range items {
		c := make([]float64, d)
		for j := range c {
			c[j] = 100 + rng.NormFloat64()*25
		}
		items[i] = geom.Item{Sphere: geom.NewSphere(c, rng.Float64()*2), ID: i}
	}
	return items
}

func testServer(t *testing.T, items []geom.Item, d int) (*Server, *httptest.Server) {
	t.Helper()
	x, err := shard.Build(items, d, shard.Options{Shards: 2, WorkersPerShard: 1, Algorithm: knn.HS, Label: "default"})
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	if err := s.AddCollection("default", x); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestKNNEndpointMatchesOracle(t *testing.T) {
	const d, n = 3, 400
	items := testCorpus(t, d, n)
	_, ts := testServer(t, items, d)

	tree := sstree.New(d)
	for _, it := range items {
		tree.Insert(it)
	}
	oracle := knn.WrapSSTree(tree)

	rng := rand.New(rand.NewSource(42))
	for q := 0; q < 10; q++ {
		c := make([]float64, d)
		for j := range c {
			c[j] = 100 + rng.NormFloat64()*25
		}
		k := 1 + rng.Intn(10)
		resp := postJSON(t, ts.URL+"/v1/collections/default/knn",
			map[string]any{"center": c, "radius": 0.5, "k": k})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var got knnResponse
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		want := knn.Search(oracle, geom.NewSphere(c, 0.5), k, dominance.Hyperbola{}, knn.HS)
		if len(got.IDs) != len(want.Items) {
			t.Fatalf("query %d: %d ids, want %d", q, len(got.IDs), len(want.Items))
		}
		for i, it := range want.Items {
			if got.IDs[i] != it.ID {
				t.Fatalf("query %d: ids[%d] = %d, want %d", q, i, got.IDs[i], it.ID)
			}
		}
		if got.K != k || len(got.Items) != len(got.IDs) {
			t.Fatalf("query %d: malformed response %+v", q, got)
		}
	}
}

func TestDominatesEndpoint(t *testing.T) {
	const d = 2
	_, ts := testServer(t, testCorpus(t, d, 50), d)
	// A tight sphere near the query dominates a far one.
	body := map[string]any{
		"a": map[string]any{"center": []float64{0, 0}, "radius": 0.1},
		"b": map[string]any{"center": []float64{50, 50}, "radius": 0.1},
		"q": map[string]any{"center": []float64{0, 1}, "radius": 0.1},
	}
	resp := postJSON(t, ts.URL+"/v1/collections/default/dominates", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var got dominatesResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !got.Dominates || got.Criterion != "Hyperbola" {
		t.Fatalf("got %+v", got)
	}
	// Unknown criterion is a 400.
	body["criterion"] = "Oracle"
	resp = postJSON(t, ts.URL+"/v1/collections/default/dominates", body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown criterion: status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestValidationAndRouting(t *testing.T) {
	const d = 2
	_, ts := testServer(t, testCorpus(t, d, 50), d)
	cases := []struct {
		path   string
		body   any
		status int
	}{
		{"/v1/collections/nope/knn", map[string]any{"center": []float64{0, 0}, "k": 1}, http.StatusNotFound},
		{"/v1/collections/default/knn", map[string]any{"center": []float64{0, 0}, "k": 0}, http.StatusBadRequest},
		{"/v1/collections/default/knn", map[string]any{"center": []float64{0}, "k": 1}, http.StatusBadRequest},
		{"/v1/collections/default/knn", map[string]any{"center": []float64{0, 0}, "radius": -1, "k": 1}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp := postJSON(t, ts.URL+c.path, c.body)
		if resp.StatusCode != c.status {
			t.Fatalf("%s: status %d, want %d", c.path, resp.StatusCode, c.status)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/v1/collections")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("collections: %v %v", err, resp)
	}
	var inv struct {
		Collections []collectionJSON `json:"collections"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&inv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(inv.Collections) != 1 || inv.Collections[0].Name != "default" || inv.Collections[0].Shards != 2 {
		t.Fatalf("inventory %+v", inv)
	}
}

// TestMetricsExposition pins the serving-path metric families the CI
// server-e2e job greps for: hyperdom_shard_* and
// hyperdom_server_request_latency.
func TestMetricsExposition(t *testing.T) {
	obs.ResetForTest()
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	const d = 2
	_, ts := testServer(t, testCorpus(t, d, 120), d)
	resp := postJSON(t, ts.URL+"/v1/collections/default/knn",
		map[string]any{"center": []float64{100, 100}, "radius": 0.5, "k": 3})
	resp.Body.Close()
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	body := buf.String()
	for _, want := range []string{
		"hyperdom_shard_queries",
		"hyperdom_shard_search_latency_seconds",
		`collection="default"`,
		"hyperdom_server_request_latency_seconds",
		`endpoint="knn"`,
		"hyperdom_server_requests",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics exposition missing %q\n%s", want, body)
		}
	}
}

func TestDuplicateCollectionRejected(t *testing.T) {
	const d = 2
	items := testCorpus(t, d, 30)
	x, err := shard.Build(items, d, shard.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	defer s.Close()
	if err := s.AddCollection("c", x); err != nil {
		t.Fatal(err)
	}
	if err := s.AddCollection("c", x); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := s.AddCollection("", x); err == nil {
		t.Fatal("empty name accepted")
	}
	if got := s.Collections(); len(got) != 1 || got[0] != "c" {
		t.Fatalf("collections %v", got)
	}
}
