package packed

import (
	"math"
	"testing"

	"hyperdom/internal/geom"
)

func sph(id int, center []float64, r float64) geom.Item {
	return geom.Item{ID: id, Sphere: geom.Sphere{Center: center, Radius: r}}
}

// buildTwoLevel assembles a 2-level sphere tree by hand:
// root → [leaf0{items a,b}, leaf1{items c}].
func buildTwoLevel(t *testing.T) *Tree {
	t.Helper()
	b := NewBuilder(KindSphere, 2)
	l0 := b.Leaf([]geom.Item{sph(1, []float64{0, 0}, 0.5), sph(2, []float64{1, 0}, 0.25)})
	l1 := b.Leaf([]geom.Item{sph(3, []float64{4, 4}, 1)})
	root := b.InternalSphere(
		[]int32{l0, l1},
		[][]float64{{0.5, 0}, {4, 4}},
		[]float64{1.25, 1},
	)
	return b.FinishSphere(root, []float64{2, 2}, 4)
}

func TestBuilderStructure(t *testing.T) {
	pt := buildTwoLevel(t)
	if pt.Kind() != KindSphere || pt.Dim() != 2 {
		t.Fatalf("kind/dim = %v/%d", pt.Kind(), pt.Dim())
	}
	if pt.Empty() || pt.NumNodes() != 3 || pt.Len() != 3 {
		t.Fatalf("empty=%v nodes=%d items=%d", pt.Empty(), pt.NumNodes(), pt.Len())
	}
	root := pt.Root()
	if pt.IsLeaf(root) {
		t.Fatal("root should be internal")
	}
	kids := pt.Children(root)
	if len(kids) != 2 || !pt.IsLeaf(kids[0]) || !pt.IsLeaf(kids[1]) {
		t.Fatalf("children = %v", kids)
	}
	if got := pt.LeafItems(kids[0]); len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("leaf0 items = %v", got)
	}
	if got := pt.LeafItems(kids[1]); len(got) != 1 || got[0].ID != 3 {
		t.Fatalf("leaf1 items = %v", got)
	}
	if got := pt.ItemRadii(kids[0]); len(got) != 2 || got[0] != 0.5 || got[1] != 0.25 {
		t.Fatalf("leaf0 radii = %v", got)
	}
}

// TestAccessorsMatchScalar checks that ChildMinDists / LeafDists /
// RootMinDist agree bit-for-bit with the scalar geom helpers the pointer
// traversal uses.
func TestAccessorsMatchScalar(t *testing.T) {
	pt := buildTwoLevel(t)
	q := geom.Sphere{Center: []float64{0.25, 3}, Radius: 0.75}

	if got, want := pt.RootMinDist(q), geom.MinDist(geom.Sphere{Center: []float64{2, 2}, Radius: 4}, q); got != want {
		t.Fatalf("RootMinDist = %v, want %v", got, want)
	}

	root := pt.Root()
	dst := make([]float64, 2)
	pt.ChildMinDists(root, q, dst)
	bounds := []geom.Sphere{
		{Center: []float64{0.5, 0}, Radius: 1.25},
		{Center: []float64{4, 4}, Radius: 1},
	}
	for i, b := range bounds {
		if want := geom.MinDist(b, q); dst[i] != want {
			t.Fatalf("ChildMinDists[%d] = %v, want %v", i, dst[i], want)
		}
	}

	leaf0 := pt.Children(root)[0]
	ld := make([]float64, 2)
	pt.LeafDists(leaf0, q.Center, ld)
	for i, it := range pt.LeafItems(leaf0) {
		dx := it.Sphere.Center[0] - q.Center[0]
		dy := it.Sphere.Center[1] - q.Center[1]
		if want := math.Sqrt(dx*dx + dy*dy); ld[i] != want {
			t.Fatalf("LeafDists[%d] = %v, want %v", i, ld[i], want)
		}
	}
}

func TestRectBuilder(t *testing.T) {
	b := NewBuilder(KindRect, 2)
	l0 := b.Leaf([]geom.Item{sph(7, []float64{1, 1}, 0.5)})
	root := b.InternalRect([]int32{l0}, [][]float64{{0.5, 0.5}}, [][]float64{{1.5, 1.5}})
	pt := b.FinishRect(root, []float64{0.5, 0.5}, []float64{1.5, 1.5})

	q := geom.Sphere{Center: []float64{3, 1}, Radius: 0.25}
	wantRoot := geom.MinDistRectSphere(geom.Rect{Lo: []float64{0.5, 0.5}, Hi: []float64{1.5, 1.5}}, q)
	if got := pt.RootMinDist(q); got != wantRoot {
		t.Fatalf("rect RootMinDist = %v, want %v", got, wantRoot)
	}
	dst := make([]float64, 1)
	pt.ChildMinDists(pt.Root(), q, dst)
	if dst[0] != wantRoot {
		t.Fatalf("rect ChildMinDists = %v, want %v", dst[0], wantRoot)
	}
}

func TestFinishEmpty(t *testing.T) {
	pt := NewBuilder(KindSphere, 3).FinishEmpty()
	if !pt.Empty() || pt.NumNodes() != 0 || pt.Len() != 0 {
		t.Fatalf("empty tree: empty=%v nodes=%d len=%d", pt.Empty(), pt.NumNodes(), pt.Len())
	}
}

func TestBuilderPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	expectPanic("zero dim", func() { NewBuilder(KindSphere, 0) })
	expectPanic("wrong item dim", func() {
		NewBuilder(KindSphere, 2).Leaf([]geom.Item{sph(1, []float64{1, 2, 3}, 1)})
	})
	expectPanic("rect on sphere builder", func() {
		NewBuilder(KindSphere, 2).InternalRect(nil, nil, nil)
	})
	expectPanic("sphere on rect builder", func() {
		NewBuilder(KindRect, 2).InternalSphere(nil, nil, nil)
	})
	expectPanic("ragged children", func() {
		NewBuilder(KindSphere, 2).InternalSphere([]int32{0}, nil, []float64{1})
	})
	expectPanic("root out of range", func() {
		b := NewBuilder(KindSphere, 2)
		b.FinishSphere(5, []float64{0, 0}, 1)
	})
}
