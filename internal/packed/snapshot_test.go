package packed

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"

	"hyperdom/internal/geom"
)

// randTree builds a three-level tree of the given kind through the
// Builder — the same entry point the substrates' Freeze methods use — so
// the snapshot tests exercise every section kind without importing a
// substrate (which would cycle back into packed).
func randTree(seed int64, kind Kind, dim, leaves, perLeaf int) *Tree {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(kind, dim)
	center := func() []float64 {
		c := make([]float64, dim)
		for j := range c {
			c[j] = 100 + rng.NormFloat64()*25
		}
		return c
	}
	id := 0
	var leafIDs []int32
	var bounds [][]float64
	var radii []float64
	var los, his [][]float64
	for l := 0; l < leaves; l++ {
		items := make([]geom.Item, perLeaf)
		for i := range items {
			items[i] = geom.Item{ID: id, Sphere: geom.Sphere{Center: center(), Radius: rng.Float64() * 2}}
			id++
		}
		leafIDs = append(leafIDs, b.Leaf(items))
		c := center()
		bounds = append(bounds, c)
		radii = append(radii, 30+rng.Float64())
		lo, hi := make([]float64, dim), make([]float64, dim)
		for j := range lo {
			lo[j] = c[j] - 30
			hi[j] = c[j] + 30
		}
		los, his = append(los, lo), append(his, hi)
	}
	// Group leaves under two internal nodes, then a root above them.
	half := len(leafIDs) / 2
	if kind == KindSphere {
		n0 := b.InternalSphere(leafIDs[:half], bounds[:half], radii[:half])
		n1 := b.InternalSphere(leafIDs[half:], bounds[half:], radii[half:])
		root := b.InternalSphere([]int32{n0, n1},
			[][]float64{center(), center()}, []float64{90, 90})
		return b.FinishSphere(root, center(), 200)
	}
	n0 := b.InternalRect(leafIDs[:half], los[:half], his[:half])
	n1 := b.InternalRect(leafIDs[half:], los[half:], his[half:])
	wide := func(off float64) ([]float64, []float64) {
		lo, hi := make([]float64, dim), make([]float64, dim)
		for j := range lo {
			lo[j], hi[j] = off-80, off+80
		}
		return lo, hi
	}
	l0, h0 := wide(100)
	l1, h1 := wide(100)
	root := b.InternalRect([]int32{n0, n1}, [][]float64{l0, l1}, [][]float64{h0, h1})
	lr, hr := wide(100)
	return b.FinishRect(root, lr, hr)
}

// eqSlices reports a test error for every field where the two trees
// differ. Float comparisons are exact: serialization must be bit-lossless.
func eqTree(t *testing.T, want, got *Tree) {
	t.Helper()
	eq := func(name string, a, b any) {
		t.Helper()
		switch x := a.(type) {
		case []float64:
			if !slices.Equal(x, b.([]float64)) {
				t.Errorf("%s differs", name)
			}
		case []float32:
			if !slices.Equal(x, b.([]float32)) {
				t.Errorf("%s differs", name)
			}
		case []int32:
			if !slices.Equal(x, b.([]int32)) {
				t.Errorf("%s differs", name)
			}
		case []int8:
			if !slices.Equal(x, b.([]int8)) {
				t.Errorf("%s differs", name)
			}
		case []uint8:
			if !slices.Equal(x, b.([]uint8)) {
				t.Errorf("%s differs", name)
			}
		case []bool:
			if !slices.Equal(x, b.([]bool)) {
				t.Errorf("%s differs", name)
			}
		default:
			t.Fatalf("eqTree: unhandled type %T", a)
		}
	}
	if want.kind != got.kind || want.dim != got.dim || want.root != got.root ||
		want.substrate != got.substrate || want.rootRadius != got.rootRadius {
		t.Errorf("scalars differ: kind %v/%v dim %d/%d root %d/%d substrate %v/%v rootRadius %v/%v",
			want.kind, got.kind, want.dim, got.dim, want.root, got.root,
			want.substrate, got.substrate, want.rootRadius, got.rootRadius)
	}
	eq("leaf", want.leaf, got.leaf)
	eq("childStart", want.childStart, got.childStart)
	eq("itemStart", want.itemStart, got.itemStart)
	eq("child", want.child, got.child)
	eq("cCenters", want.cCenters, got.cCenters)
	eq("cRadii", want.cRadii, got.cRadii)
	eq("cLo", want.cLo, got.cLo)
	eq("cHi", want.cHi, got.cHi)
	eq("iCenters", want.iCenters, got.iCenters)
	eq("iRadii", want.iRadii, got.iRadii)
	eq("rootCenter", want.rootCenter, got.rootCenter)
	eq("rootLo", want.rootLo, got.rootLo)
	eq("rootHi", want.rootHi, got.rootHi)
	if len(want.items) != len(got.items) {
		t.Fatalf("items: %d vs %d", len(want.items), len(got.items))
	}
	for i := range want.items {
		w, g := want.items[i], got.items[i]
		if w.ID != g.ID || w.Sphere.Radius != g.Sphere.Radius || !slices.Equal(w.Sphere.Center, g.Sphere.Center) {
			t.Fatalf("item %d differs: %+v vs %+v", i, w, g)
		}
	}
	wq, gq := &want.quant, &got.quant
	eq("cCen32", wq.cCen32, gq.cCen32)
	eq("cRad32", wq.cRad32, gq.cRad32)
	eq("cSlack32", wq.cSlack32, gq.cSlack32)
	eq("cLo32", wq.cLo32, gq.cLo32)
	eq("cHi32", wq.cHi32, gq.cHi32)
	eq("cCen8", wq.cCen8, gq.cCen8)
	eq("cRad8", wq.cRad8, gq.cRad8)
	eq("cSlack8", wq.cSlack8, gq.cSlack8)
	eq("cLo8", wq.cLo8, gq.cLo8)
	eq("cHi8", wq.cHi8, gq.cHi8)
	eq("cRectSlack8", wq.cRectSlack8, gq.cRectSlack8)
	eq("cScale", wq.cScale, gq.cScale)
	eq("cOffset", wq.cOffset, gq.cOffset)
	eq("cRScale", wq.cRScale, gq.cRScale)
	eq("iCen32", wq.iCen32, gq.iCen32)
	eq("iRad32", wq.iRad32, gq.iRad32)
	eq("iSlack32", wq.iSlack32, gq.iSlack32)
	eq("iCen8", wq.iCen8, gq.iCen8)
	eq("iRad8", wq.iRad8, gq.iRad8)
	eq("iSlack8", wq.iSlack8, gq.iSlack8)
	eq("iScale", wq.iScale, gq.iScale)
	eq("iOffset", wq.iOffset, gq.iOffset)
	eq("iRScale", wq.iRScale, gq.iRScale)
	eq("leafPivot", wq.leafPivot, gq.leafPivot)
	eq("iPivotHi32", wq.iPivotHi32, gq.iPivotHi32)
	eq("iSR32", wq.iSR32, gq.iSR32)
	eq("iSR8", wq.iSR8, gq.iSR8)
}

func snapshotBytes(t *testing.T, pt *Tree) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := pt.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	return buf.Bytes()
}

func TestSnapshotRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		kind Kind
	}{{"sphere", KindSphere}, {"rect", KindRect}} {
		t.Run(tc.name, func(t *testing.T) {
			pt := randTree(42, tc.kind, 4, 8, 16)
			pt.substrate = SubstrateSSTree
			got, err := OpenBytes(snapshotBytes(t, pt))
			if err != nil {
				t.Fatalf("OpenBytes: %v", err)
			}
			eqTree(t, pt, got)
		})
	}
}

func TestSnapshotRoundTripEmpty(t *testing.T) {
	pt := NewBuilder(KindSphere, 3).FinishEmpty()
	got, err := OpenBytes(snapshotBytes(t, pt))
	if err != nil {
		t.Fatalf("OpenBytes: %v", err)
	}
	if !got.Empty() || got.Dim() != 3 || got.Len() != 0 {
		t.Fatalf("empty=%v dim=%d len=%d", got.Empty(), got.Dim(), got.Len())
	}
}

func TestSnapshotSingleLeafRoundTrip(t *testing.T) {
	b := NewBuilder(KindSphere, 2)
	root := b.Leaf([]geom.Item{
		{ID: 9, Sphere: geom.Sphere{Center: []float64{1, 2}, Radius: 0.5}},
	})
	pt := b.FinishSphere(root, []float64{1, 2}, 0.5)
	got, err := OpenBytes(snapshotBytes(t, pt))
	if err != nil {
		t.Fatalf("OpenBytes: %v", err)
	}
	eqTree(t, pt, got)
}

// TestSnapshotSaveOpen exercises the durable path end to end: Save
// (atomic temp+rename), Open (mmap where supported) and Load (copy), each
// yielding a bit-identical tree, and Close releasing the mapping.
func TestSnapshotSaveOpen(t *testing.T) {
	pt := randTree(7, KindSphere, 4, 8, 16)
	pt.substrate = SubstrateMTree
	path := filepath.Join(t.TempDir(), "t.hds")
	if err := pt.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}

	s, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if mmapSupported && !s.Mapped() {
		t.Error("Open on a mmap-capable platform did not map")
	}
	eqTree(t, pt, s.Tree)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	for _, open := range []struct {
		name string
		fn   func() (*Snapshot, error)
	}{
		{"Load", func() (*Snapshot, error) { return Load(path) }},
		{"Open+Verify", func() (*Snapshot, error) { return Open(path, VerifyChecksums()) }},
		{"Open+NoMmap", func() (*Snapshot, error) { return Open(path, NoMmap()) }},
	} {
		s, err := open.fn()
		if err != nil {
			t.Fatalf("%s: %v", open.name, err)
		}
		eqTree(t, pt, s.Tree)
		s.Close()
	}
}

// TestSnapshotSaveAtomic locks in the crash-safety contract: Save over an
// existing file replaces it wholesale and leaves no temp litter.
func TestSnapshotSaveAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.hds")
	first := randTree(1, KindSphere, 2, 4, 4)
	second := randTree(2, KindRect, 3, 6, 8)
	for _, pt := range []*Tree{first, second} {
		if err := pt.Save(path); err != nil {
			t.Fatalf("Save: %v", err)
		}
	}
	s, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	eqTree(t, second, s.Tree)
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "t.hds" {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("directory holds %v, want only t.hds", names)
	}
}

// rewriteCRCs recomputes every section CRC and the header CRC in place —
// the tool structural-corruption tests use to slip a mutated payload past
// the checksum layer and hit the validator behind it.
func rewriteCRCs(data []byte) {
	le := binary.LittleEndian
	hdrLen := int64(le.Uint32(data[16:]))
	nsec := int(le.Uint32(data[44:]))
	for i := 0; i < nsec; i++ {
		e := data[fixedHdrLen+i*secEntryLen:]
		off, ln := le.Uint64(e[8:]), le.Uint64(e[16:])
		le.PutUint32(e[4:], crc32.Checksum(data[off:off+ln], castagnoli))
	}
	le.PutUint32(data[12:], 0)
	le.PutUint32(data[12:], crc32.Checksum(data[:hdrLen], castagnoli))
}

// sectionRange returns the byte range of section id, for targeted
// corruption.
func sectionRange(t *testing.T, data []byte, id uint32) (off, ln uint64) {
	t.Helper()
	le := binary.LittleEndian
	nsec := int(le.Uint32(data[44:]))
	for i := 0; i < nsec; i++ {
		e := data[fixedHdrLen+i*secEntryLen:]
		if le.Uint32(e[0:]) == id {
			return le.Uint64(e[8:]), le.Uint64(e[16:])
		}
	}
	t.Fatalf("section %d not present", id)
	return 0, 0
}

// TestSnapshotCorruptInputs is the regression table of the corrupt-input
// hardening: every mutation must come back as the right typed error —
// never a panic, never an out-of-bounds slice, never a silently served
// wrong tree.
func TestSnapshotCorruptInputs(t *testing.T) {
	base := snapshotBytes(t, randTree(11, KindSphere, 3, 4, 8))
	le := binary.LittleEndian
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
	}{
		{"empty", func(b []byte) []byte { return nil }, ErrTruncated},
		{"short header", func(b []byte) []byte { return b[:40] }, ErrTruncated},
		{"bad magic", func(b []byte) []byte { copy(b, "NOTSNAP!"); return b }, ErrBadMagic},
		{"big-endian magic", func(b []byte) []byte { copy(b, magicBE); return b }, ErrIncompatible},
		{"future version", func(b []byte) []byte {
			le.PutUint32(b[8:], FormatVersion+1)
			rewriteCRCs(b)
			return b
		}, ErrBadVersion},
		{"header bit flip", func(b []byte) []byte { b[25] ^= 0x40; return b }, ErrChecksum},
		{"payload bit flip", func(b []byte) []byte { b[len(b)-7] ^= 1; return b }, ErrChecksum},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-100] }, ErrTruncated},
		{"unknown flags", func(b []byte) []byte {
			b[43] = 0x80
			rewriteCRCs(b)
			return b
		}, ErrIncompatible},
		{"tier mask missing i8", func(b []byte) []byte {
			b[42] = tiersF32
			rewriteCRCs(b)
			return b
		}, ErrIncompatible},
		{"quant margin mismatch", func(b []byte) []byte {
			le.PutUint64(b[56:], le.Uint64(b[56:])+1)
			rewriteCRCs(b)
			return b
		}, ErrIncompatible},
		{"zero dim", func(b []byte) []byte {
			le.PutUint32(b[20:], 0)
			rewriteCRCs(b)
			return b
		}, ErrCorrupt},
		{"root beyond nodes", func(b []byte) []byte {
			le.PutUint32(b[36:], le.Uint32(b[24:])+7)
			rewriteCRCs(b)
			return b
		}, ErrCorrupt},
		{"section offset past EOF", func(b []byte) []byte {
			le.PutUint64(b[fixedHdrLen+8:], uint64(len(b)+secAlign))
			rewriteCRCs(b)
			return b
		}, ErrTruncated},
		{"section misaligned", func(b []byte) []byte {
			le.PutUint64(b[fixedHdrLen+8:], le.Uint64(b[fixedHdrLen+8:])+4)
			rewriteCRCs(b)
			return b
		}, ErrCorrupt},
		{"duplicate section id", func(b []byte) []byte {
			copy(b[fixedHdrLen+secEntryLen:fixedHdrLen+2*secEntryLen], b[fixedHdrLen:fixedHdrLen+secEntryLen])
			rewriteCRCs(b)
			return b
		}, ErrCorrupt},
		{"leaf flag out of range", func(b []byte) []byte {
			off, _ := sectionRange(t, b, secLeaf)
			b[off] = 2
			rewriteCRCs(b)
			return b
		}, ErrCorrupt},
		{"child id above parent", func(b []byte) []byte {
			off, ln := sectionRange(t, b, secChild)
			le.PutUint32(b[off+ln-4:], le.Uint32(b[24:])+100)
			rewriteCRCs(b)
			return b
		}, ErrCorrupt},
		{"prefix array decreasing", func(b []byte) []byte {
			off, _ := sectionRange(t, b, secItemStart)
			le.PutUint32(b[off+4:], ^uint32(0)) // -1
			rewriteCRCs(b)
			return b
		}, ErrCorrupt},
		{"item count lies", func(b []byte) []byte {
			le.PutUint32(b[32:], le.Uint32(b[32:])+1)
			rewriteCRCs(b)
			return b
		}, ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(slices.Clone(base))
			_, err := OpenBytes(data)
			if err == nil {
				t.Fatal("corrupt snapshot decoded without error")
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("error %v, want %v", err, tc.wantErr)
			}
		})
	}
}

// TestSnapshotErrorMessages spot-checks that the rejection messages say
// what to do about it, not just that bytes were bad.
func TestSnapshotErrorMessages(t *testing.T) {
	base := snapshotBytes(t, randTree(12, KindSphere, 2, 4, 4))
	le := binary.LittleEndian

	b := slices.Clone(base)
	le.PutUint32(b[8:], 99)
	rewriteCRCs(b)
	_, err := OpenBytes(b)
	if err == nil || !strings.Contains(err.Error(), "rebuild the snapshot") {
		t.Errorf("version mismatch error not actionable: %v", err)
	}

	b = slices.Clone(base)
	copy(b, magicBE)
	_, err = OpenBytes(b)
	if err == nil || !strings.Contains(err.Error(), "little-endian") {
		t.Errorf("endianness error not actionable: %v", err)
	}
}
