package packed

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"hyperdom/internal/geom"
	"hyperdom/internal/vec"
)

// FuzzPackedMinDist locks the bit-exactness contract of the frozen layout
// (ISSUE 5): on arbitrary nodes of 2–10 dimensions, the streaming block
// kernels behind ChildMinDists and LeafDists must reproduce the pointer
// path's per-entry geom.MinDist / geom.MinDistRectSphere / vec.Dist values
// bit for bit — including non-finite inputs, where "same bits" means the
// same NaN propagation, so the packed traversal can never diverge from the
// pointer traversal on any input.
func FuzzPackedMinDist(f *testing.F) {
	f.Add([]byte{3, 4, 0})
	f.Add([]byte{0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	seed := make([]byte, 3+8*16)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		dim := 2 + int(data[0])%9 // 2..10
		n := 1 + int(data[1])%8   // 1..8 entries per node
		data = data[2:]

		// Draw float64s from the fuzz input while it lasts, then from a
		// PRNG seeded by the input, so every byte budget yields a full node.
		rng := rand.New(rand.NewSource(int64(len(data)) + int64(dim)*31 + int64(n)))
		next := func() float64 {
			if len(data) >= 8 {
				v := math.Float64frombits(binary.LittleEndian.Uint64(data))
				data = data[8:]
				return v
			}
			return rng.NormFloat64() * 100
		}

		centers := make([][]float64, n)
		radii := make([]float64, n)
		lo := make([][]float64, n)
		hi := make([][]float64, n)
		items := make([]geom.Item, n)
		for i := 0; i < n; i++ {
			c := make([]float64, dim)
			l := make([]float64, dim)
			h := make([]float64, dim)
			for j := 0; j < dim; j++ {
				c[j] = next()
				l[j] = next()
				h[j] = l[j] + math.Abs(next())
			}
			centers[i], radii[i], lo[i], hi[i] = c, next(), l, h
			items[i] = geom.Item{ID: i, Sphere: geom.Sphere{Center: c, Radius: radii[i]}}
		}
		qc := make([]float64, dim)
		for j := range qc {
			qc[j] = next()
		}
		q := geom.Sphere{Center: qc, Radius: next()}

		dst := make([]float64, n)

		// Sphere-bounded internal node + leaf (SS-tree / M-tree shape).
		sb := NewBuilder(KindSphere, dim)
		leafID := sb.Leaf(items)
		var kids []int32
		for range centers {
			kids = append(kids, leafID)
		}
		node := sb.InternalSphere(kids, centers, radii)
		st := sb.FinishSphere(node, centers[0], radii[0])

		st.ChildMinDists(node, q, dst)
		for i := range dst {
			want := geom.MinDist(geom.Sphere{Center: centers[i], Radius: radii[i]}, q)
			if math.Float64bits(dst[i]) != math.Float64bits(want) {
				t.Fatalf("sphere mindist[%d] = %v (bits %x), pointer path %v (bits %x), dim=%d n=%d",
					i, dst[i], math.Float64bits(dst[i]), want, math.Float64bits(want), dim, n)
			}
		}
		st.LeafDists(leafID, qc, dst)
		for i := range dst {
			want := vec.Dist(items[i].Sphere.Center, qc)
			if math.Float64bits(dst[i]) != math.Float64bits(want) {
				t.Fatalf("leaf dist[%d] = %v, pointer path %v, dim=%d n=%d", i, dst[i], want, dim, n)
			}
		}

		// Rect-bounded internal node (R-tree shape).
		rb := NewBuilder(KindRect, dim)
		rleaf := rb.Leaf(items)
		node = rb.InternalRect(kidsOf(rleaf, n), lo, hi)
		rt := rb.FinishRect(node, lo[0], hi[0])
		rt.ChildMinDists(node, q, dst)
		for i := range dst {
			want := geom.MinDistRectSphere(geom.Rect{Lo: lo[i], Hi: hi[i]}, q)
			if math.Float64bits(dst[i]) != math.Float64bits(want) {
				t.Fatalf("rect mindist[%d] = %v, pointer path %v, dim=%d n=%d", i, dst[i], want, dim, n)
			}
		}
	})
}

// kidsOf returns n copies of the id — the fuzz nodes only exercise
// geometry, so every entry can point at the same child.
func kidsOf(id int32, n int) []int32 {
	kids := make([]int32, n)
	for i := range kids {
		kids[i] = id
	}
	return kids
}
