// Package packed provides the read-optimized "frozen" representation of
// the tree substrates (ISSUE 5). A packed.Tree flattens a pointer-based
// index into structure-of-arrays form: for every node, the bounding
// geometry of its children (or the spheres of its leaf items) is stored in
// one contiguous []float64 block — all coordinates of entry 0..n-1
// back-to-back — with radii and child offsets in parallel slices. The kNN
// traversal's mindist loop over a node then becomes a single streaming
// pass over sequential memory (vec.MinDistSphereBlock and friends) instead
// of a pointer chase through per-node heap objects.
//
// A frozen tree is an immutable snapshot. The substrates build one through
// their Freeze method and cache it; mutating the source tree (Insert,
// Delete, BulkLoad) auto-thaws — the cached snapshot is dropped and
// searches fall back to the pointer path until the next Freeze. See
// DESIGN.md §11 for the freeze/thaw contract.
//
// Bit-exactness: the packed traversal (package knn) produces verdicts,
// result sets and work stats identical to the pointer path, because the
// block kernels preserve the scalar accumulation order (package vec) and
// the entry order preserves the child/item order of the source nodes.
package packed

import (
	"fmt"

	"hyperdom/internal/geom"
	"hyperdom/internal/obs"
	"hyperdom/internal/vec"
)

// Kind is the bounding geometry of internal-node entries.
type Kind uint8

const (
	// KindSphere: children are bounded by hyperspheres (SS-tree centroids,
	// M-tree pivots with covering radii).
	KindSphere Kind = iota
	// KindRect: children are bounded by axis-aligned rectangles (R-tree
	// MBRs). Leaf items are spheres regardless of kind.
	KindRect
)

// Freeze/thaw observability: how many snapshots were built and how much
// they hold. Thaws are counted by the substrates through NoteThaw.
var (
	obsFreezes = obs.New("packed.freezes")
	obsThaws   = obs.New("packed.thaws")
	obsNodes   = obs.New("packed.nodes_frozen")
	obsItems   = obs.New("packed.items_frozen")
)

// NoteThaw records one auto-thaw (a mutation dropping a cached snapshot).
func NoteThaw() {
	if obs.On() {
		obsThaws.Inc()
	}
}

// Tree is the frozen SoA snapshot of one index. All fields are built once
// by a Builder and never mutated afterwards, so a Tree is safe for
// unsynchronised concurrent reads.
//
// Nodes are identified by dense int32 ids. Two parallel prefix arrays
// delimit each node's entries:
//
//   - internal node i owns child entries child[childStart[i]:childStart[i+1]],
//     whose bounds live at cCenters[e*dim:(e+1)*dim]+cRadii[e] (KindSphere)
//     or cLo/cHi[e*dim:(e+1)*dim] (KindRect);
//   - leaf node i owns items[itemStart[i]:itemStart[i+1]], whose sphere
//     geometry is mirrored into iCenters/iRadii for the streaming pass.
type Tree struct {
	kind      Kind
	dim       int
	root      int32 // -1 for an empty tree
	substrate Substrate

	leaf       []bool
	childStart []int32 // len nodes+1
	itemStart  []int32 // len nodes+1

	child    []int32
	cCenters []float64 // KindSphere: len(child)*dim
	cRadii   []float64 // KindSphere: len(child)
	cLo, cHi []float64 // KindRect: len(child)*dim each

	items    []geom.Item
	iCenters []float64 // len(items)*dim
	iRadii   []float64 // len(items)

	rootCenter     []float64 // KindSphere root bound
	rootRadius     float64
	rootLo, rootHi []float64 // KindRect root bound

	// quant holds the narrow (float32 / int8) copies of every child and
	// item bound used by the coarse-filter pass (ISSUE 6); see quant.go.
	quant quantTiers
}

// Kind returns the bounding geometry of the tree's internal entries.
func (t *Tree) Kind() Kind { return t.kind }

// Dim returns the dimensionality.
func (t *Tree) Dim() int { return t.dim }

// Empty reports whether the snapshot holds no nodes.
func (t *Tree) Empty() bool { return t.root < 0 }

// Root returns the root node id. Only valid when !Empty().
func (t *Tree) Root() int32 { return t.root }

// Len returns the number of items in the snapshot.
func (t *Tree) Len() int { return len(t.items) }

// NumNodes returns the number of nodes in the snapshot.
func (t *Tree) NumNodes() int { return len(t.leaf) }

// IsLeaf reports whether node n is a leaf.
func (t *Tree) IsLeaf(n int32) bool { return t.leaf[n] }

// Children returns the child node ids of internal node n. The returned
// slice aliases the snapshot; callers must not modify it.
func (t *Tree) Children(n int32) []int32 {
	return t.child[t.childStart[n]:t.childStart[n+1]]
}

// LeafItems returns the items of leaf n. The returned slice aliases the
// snapshot; callers must not modify it.
func (t *Tree) LeafItems(n int32) []geom.Item {
	return t.items[t.itemStart[n]:t.itemStart[n+1]]
}

// RootMinDist returns the minimum distance between the query sphere and
// the root's bound — the same value the pointer path computes from the
// root cursor.
func (t *Tree) RootMinDist(q geom.Sphere) float64 {
	if t.kind == KindRect {
		return geom.MinDistRectSphere(geom.Rect{Lo: t.rootLo, Hi: t.rootHi}, q)
	}
	return geom.MinDist(geom.Sphere{Center: t.rootCenter, Radius: t.rootRadius}, q)
}

// ChildMinDists streams one pass over internal node n's packed child
// bounds and writes the per-child minimum distance to the query sphere
// into dst, which must have length len(Children(n)). Values are
// bit-identical to the pointer path's per-child geom.MinDist /
// geom.MinDistRectSphere calls.
func (t *Tree) ChildMinDists(n int32, q geom.Sphere, dst []float64) {
	lo, hi := t.childStart[n]*int32(t.dim), t.childStart[n+1]*int32(t.dim)
	if t.kind == KindRect {
		vec.MinDistRectBlock(dst, t.cLo[lo:hi], t.cHi[lo:hi], q.Center, q.Radius)
		return
	}
	vec.MinDistSphereBlock(dst, t.cCenters[lo:hi], t.cRadii[t.childStart[n]:t.childStart[n+1]], q.Center, q.Radius)
}

// LeafDists streams one pass over leaf n's packed item centers and writes
// the center-to-center distance from the query into dst (length
// len(LeafItems(n))). The traversal derives the item's MaxDist and MinDist
// from it with one addition each, saving the second sqrt the pointer path
// historically paid; the distances are bit-identical to vec.Dist.
func (t *Tree) LeafDists(n int32, q []float64, dst []float64) {
	lo, hi := t.itemStart[n]*int32(t.dim), t.itemStart[n+1]*int32(t.dim)
	vec.DistBlock(dst, t.iCenters[lo:hi], q)
}

// ItemRadii returns the packed radii of leaf n's items, parallel to
// LeafItems. The slice aliases the snapshot.
func (t *Tree) ItemRadii(n int32) []float64 {
	return t.iRadii[t.itemStart[n]:t.itemStart[n+1]]
}

// Builder assembles a Tree bottom-up. The substrates' Freeze methods walk
// their pointer nodes post-order: children are added first, then the
// parent references their ids. Entry blocks are appended at node creation,
// so each node's block is contiguous by construction.
type Builder struct {
	t *Tree
}

// NewBuilder starts a snapshot of the given kind and dimensionality.
func NewBuilder(kind Kind, dim int) *Builder {
	if dim <= 0 {
		panic(fmt.Sprintf("packed: NewBuilder with dimensionality %d", dim))
	}
	t := &Tree{kind: kind, dim: dim, root: -1}
	t.childStart = append(t.childStart, 0)
	t.itemStart = append(t.itemStart, 0)
	return &Builder{t: t}
}

func (b *Builder) newNode(leaf bool) int32 {
	id := int32(len(b.t.leaf))
	b.t.leaf = append(b.t.leaf, leaf)
	b.t.childStart = append(b.t.childStart, b.t.childStart[id])
	b.t.itemStart = append(b.t.itemStart, b.t.itemStart[id])
	return id
}

// Leaf adds a leaf node holding the given items (in order) and returns its
// id. Item structs are copied; their sphere geometry is additionally
// mirrored into the packed blocks.
func (b *Builder) Leaf(items []geom.Item) int32 {
	id := b.newNode(true)
	for _, it := range items {
		if it.Sphere.Dim() != b.t.dim {
			panic(fmt.Sprintf("packed: Leaf item of dimensionality %d in %d-dimensional tree",
				it.Sphere.Dim(), b.t.dim))
		}
		b.t.items = append(b.t.items, it)
		b.t.iCenters = append(b.t.iCenters, it.Sphere.Center...)
		b.t.iRadii = append(b.t.iRadii, it.Sphere.Radius)
	}
	b.t.itemStart[id+1] = int32(len(b.t.items))
	return id
}

// InternalSphere adds an internal node (KindSphere) whose i-th child is
// node ids[i] bounded by the sphere (centers[i], radii[i]), preserving
// order, and returns its id. Bound geometry is copied.
func (b *Builder) InternalSphere(ids []int32, centers [][]float64, radii []float64) int32 {
	if b.t.kind != KindSphere {
		panic("packed: InternalSphere on a rect-bounded builder")
	}
	if len(ids) != len(centers) || len(ids) != len(radii) {
		panic("packed: InternalSphere with mismatched child slices")
	}
	id := b.newNode(false)
	for i, c := range ids {
		b.t.child = append(b.t.child, c)
		b.t.cCenters = append(b.t.cCenters, centers[i]...)
		b.t.cRadii = append(b.t.cRadii, radii[i])
	}
	b.t.childStart[id+1] = int32(len(b.t.child))
	return id
}

// InternalRect adds an internal node (KindRect) whose i-th child is node
// ids[i] bounded by the rectangle [lo[i], hi[i]], preserving order, and
// returns its id. Bound geometry is copied.
func (b *Builder) InternalRect(ids []int32, lo, hi [][]float64) int32 {
	if b.t.kind != KindRect {
		panic("packed: InternalRect on a sphere-bounded builder")
	}
	if len(ids) != len(lo) || len(ids) != len(hi) {
		panic("packed: InternalRect with mismatched child slices")
	}
	id := b.newNode(false)
	for i, c := range ids {
		b.t.child = append(b.t.child, c)
		b.t.cLo = append(b.t.cLo, lo[i]...)
		b.t.cHi = append(b.t.cHi, hi[i]...)
	}
	b.t.childStart[id+1] = int32(len(b.t.child))
	return id
}

// FinishSphere seals the snapshot with root node id and its bounding
// sphere and returns the immutable Tree. The bound is copied.
func (b *Builder) FinishSphere(root int32, center []float64, radius float64) *Tree {
	b.t.rootCenter = append([]float64(nil), center...)
	b.t.rootRadius = radius
	return b.finish(root)
}

// FinishRect seals the snapshot with root node id and its bounding
// rectangle and returns the immutable Tree. The bound is copied.
func (b *Builder) FinishRect(root int32, lo, hi []float64) *Tree {
	b.t.rootLo = append([]float64(nil), lo...)
	b.t.rootHi = append([]float64(nil), hi...)
	return b.finish(root)
}

// FinishEmpty seals an empty snapshot (no nodes).
func (b *Builder) FinishEmpty() *Tree { return b.finish(-1) }

func (b *Builder) finish(root int32) *Tree {
	t := b.t
	b.t = nil // a Builder is single-use
	if root >= int32(len(t.leaf)) {
		panic(fmt.Sprintf("packed: Finish with root %d of %d nodes", root, len(t.leaf)))
	}
	t.root = root
	t.buildQuant()
	if obs.On() {
		obsFreezes.Inc()
		obsNodes.Add(uint64(len(t.leaf)))
		obsItems.Add(uint64(len(t.items)))
	}
	return t
}
