//go:build unix

package packed

import (
	"os"
	"syscall"
)

const mmapSupported = true

// mmapFile maps size bytes of f read-only and shared: pages come straight
// from the page cache, are never copied into the Go heap, and reclaim
// under memory pressure without the process noticing.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmap(b []byte) error { return syscall.Munmap(b) }
