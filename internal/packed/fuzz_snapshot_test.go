package packed

import (
	"bytes"
	"errors"
	"testing"

	"hyperdom/internal/geom"
)

// fuzzSeedSnapshot builds a small valid snapshot of each kind for the
// fuzz seed corpus.
func fuzzSeedSnapshot(kind Kind) []byte {
	var pt *Tree
	if kind == KindSphere {
		b := NewBuilder(KindSphere, 2)
		l0 := b.Leaf([]geom.Item{
			{ID: 1, Sphere: geom.Sphere{Center: []float64{0, 0}, Radius: 0.5}},
			{ID: 2, Sphere: geom.Sphere{Center: []float64{1, 0}, Radius: 0.25}},
		})
		l1 := b.Leaf([]geom.Item{
			{ID: 3, Sphere: geom.Sphere{Center: []float64{4, 4}, Radius: 1}},
		})
		root := b.InternalSphere([]int32{l0, l1},
			[][]float64{{0.5, 0}, {4, 4}}, []float64{1.25, 1})
		pt = b.FinishSphere(root, []float64{2, 2}, 4)
	} else {
		b := NewBuilder(KindRect, 2)
		l0 := b.Leaf([]geom.Item{
			{ID: 1, Sphere: geom.Sphere{Center: []float64{0, 0}, Radius: 0.5}},
		})
		root := b.InternalRect([]int32{l0},
			[][]float64{{-1, -1}}, [][]float64{{1, 1}})
		pt = b.FinishRect(root, []float64{-1, -1}, []float64{1, 1})
	}
	var buf bytes.Buffer
	if _, err := pt.WriteTo(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzSnapshotOpen is the corrupt-input hardening gate (ISSUE 10): no
// byte sequence may make the snapshot decoder panic, slice out of bounds,
// or fail with anything but the typed sentinel errors — and anything it
// does accept must be safely traversable.
func FuzzSnapshotOpen(f *testing.F) {
	sphere := fuzzSeedSnapshot(KindSphere)
	rect := fuzzSeedSnapshot(KindRect)
	f.Add(sphere)
	f.Add(rect)
	f.Add([]byte{})
	f.Add([]byte(magicLE))
	f.Add(sphere[:len(sphere)/2])
	f.Add(sphere[:fixedHdrLen])
	flipped := bytes.Clone(sphere)
	flipped[24] ^= 0xff
	f.Add(flipped)
	payload := bytes.Clone(rect)
	payload[len(payload)-1] ^= 0x01
	f.Add(payload)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := OpenBytes(data)
		if err != nil {
			for _, sentinel := range []error{
				ErrBadMagic, ErrBadVersion, ErrTruncated,
				ErrChecksum, ErrCorrupt, ErrIncompatible,
			} {
				if errors.Is(err, sentinel) {
					return
				}
			}
			t.Fatalf("untyped decode error: %v", err)
		}
		if tr.Empty() {
			return
		}
		// Whatever decoded must be safe to walk: visit every reachable
		// node, stream every accessor the traversals use.
		q := geom.Sphere{Center: make([]float64, tr.Dim()), Radius: 1}
		_ = tr.RootMinDist(q)
		stack := []int32{tr.Root()}
		var dst []float64
		var sel []int32
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if tr.IsLeaf(n) {
				items := tr.LeafItems(n)
				dst = append(dst[:0], make([]float64, len(items))...)
				tr.LeafDists(n, q.Center, dst)
				sel = append(sel[:0], make([]int32, len(items))...)
				tr.LeafQuantSelect(TierF32, n, q, 1, sel)
				tr.LeafQuantSelect(TierI8, n, q, 1, sel)
				continue
			}
			kids := tr.Children(n)
			dst = append(dst[:0], make([]float64, len(kids))...)
			tr.ChildMinDists(n, q, dst)
			if len(kids) > 0 {
				sel = append(sel[:0], make([]int32, len(kids))...)
				tr.ChildQuantSelect(TierF32, n, q, 1, sel)
				tr.ChildQuantSelect(TierI8, n, q, 1, sel)
			}
			stack = append(stack, kids...)
		}
	})
}
