package packed

import (
	"math"
	"math/rand"
	"testing"

	"hyperdom/internal/geom"
)

// buildQuantFixture assembles one sphere node + leaf and one rect node over
// the same n random entries and returns both trees plus the raw geometry.
type quantFixture struct {
	st, rt       *Tree
	sNode, sLeaf int32
	rNode        int32
	centers      [][]float64
	radii        []float64
	lo, hi       [][]float64
}

func buildQuantFixture(rng *rand.Rand, dim, n int, spread float64) *quantFixture {
	fx := &quantFixture{}
	items := make([]geom.Item, n)
	for i := 0; i < n; i++ {
		c := make([]float64, dim)
		l := make([]float64, dim)
		h := make([]float64, dim)
		for j := 0; j < dim; j++ {
			c[j] = rng.NormFloat64() * spread
			l[j] = rng.NormFloat64() * spread
			h[j] = l[j] + math.Abs(rng.NormFloat64()*spread/4)
		}
		fx.centers = append(fx.centers, c)
		fx.radii = append(fx.radii, math.Abs(rng.NormFloat64()*spread/10))
		fx.lo = append(fx.lo, l)
		fx.hi = append(fx.hi, h)
		items[i] = geom.Item{ID: i, Sphere: geom.Sphere{Center: c, Radius: fx.radii[i]}}
	}
	sb := NewBuilder(KindSphere, dim)
	fx.sLeaf = sb.Leaf(items)
	fx.sNode = sb.InternalSphere(kidsOf(fx.sLeaf, n), fx.centers, fx.radii)
	fx.st = sb.FinishSphere(fx.sNode, fx.centers[0], fx.radii[0])

	rb := NewBuilder(KindRect, dim)
	rleaf := rb.Leaf(items)
	fx.rNode = rb.InternalRect(kidsOf(rleaf, n), fx.lo, fx.hi)
	fx.rt = rb.FinishRect(fx.rNode, fx.lo[0], fx.hi[0])
	return fx
}

// TestQuantBoundsConservative checks bound <= exact per entry over both
// tiers, kinds and the leaf items, on well-behaved random geometry across
// several scales (the fuzz target covers the hostile inputs).
func TestQuantBoundsConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, spread := range []float64{1e-6, 1, 1e3, 1e12} {
		for trial := 0; trial < 30; trial++ {
			dim := 2 + rng.Intn(9)
			n := 1 + rng.Intn(8)
			fx := buildQuantFixture(rng, dim, n, spread)
			qc := make([]float64, dim)
			for j := range qc {
				qc[j] = rng.NormFloat64() * spread
			}
			q := geom.Sphere{Center: qc, Radius: math.Abs(rng.NormFloat64() * spread / 8)}

			exact := make([]float64, n)
			bound := make([]float64, n)
			for _, tier := range []Tier{TierF32, TierI8} {
				fx.st.ChildMinDists(fx.sNode, q, exact)
				fx.st.ChildQuantBounds(tier, fx.sNode, q, bound)
				for i := range bound {
					if !(bound[i] >= 0) || bound[i] > exact[i] {
						t.Fatalf("spread=%g tier=%d sphere child %d: bound %v vs exact %v",
							spread, tier, i, bound[i], exact[i])
					}
				}
				fx.rt.ChildMinDists(fx.rNode, q, exact)
				fx.rt.ChildQuantBounds(tier, fx.rNode, q, bound)
				for i := range bound {
					if !(bound[i] >= 0) || bound[i] > exact[i] {
						t.Fatalf("spread=%g tier=%d rect child %d: bound %v vs exact %v",
							spread, tier, i, bound[i], exact[i])
					}
				}
			}
		}
	}
}

// TestQuantBoundsTight guards the other half of the design: on
// well-scaled data the narrow bounds must track the exact mindist closely
// enough to prune with — all-zero (or grossly slack) bounds would satisfy
// conservatism while silently disabling the coarse filter. f32 carries
// ~1e-7 relative center error; int8 resolves the node's extent in 254
// steps, so its bound may undershoot by a few node-diameter LSBs but no
// more.
func TestQuantBoundsTight(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	dim, n := 6, 8
	fx := buildQuantFixture(rng, dim, n, 100)
	qc := make([]float64, dim)
	for j := range qc {
		qc[j] = rng.NormFloat64()*100 + 500 // far query: mindists well above 0
	}
	q := geom.Sphere{Center: qc, Radius: 1}

	exact := make([]float64, n)
	bound := make([]float64, n)
	fx.st.ChildMinDists(fx.sNode, q, exact)

	fx.st.ChildQuantBounds(TierF32, fx.sNode, q, bound)
	for i := range bound {
		if bound[i] < exact[i]*(1-1e-5) {
			t.Fatalf("f32 sphere bound %d too loose: %v vs exact %v", i, bound[i], exact[i])
		}
	}
	// int8: node extent is a few hundred units, 254 steps → LSB ~ a few
	// units; center displacement across dim coords stays within ~3 LSB
	// plus the radius LSB.
	fx.st.ChildQuantBounds(TierI8, fx.sNode, q, bound)
	for i := range bound {
		if bound[i] < exact[i]-40 {
			t.Fatalf("i8 sphere bound %d too loose: %v vs exact %v", i, bound[i], exact[i])
		}
	}

	fx.rt.ChildMinDists(fx.rNode, q, exact)
	fx.rt.ChildQuantBounds(TierF32, fx.rNode, q, bound)
	for i := range bound {
		if bound[i] < exact[i]*(1-1e-5) {
			t.Fatalf("f32 rect bound %d too loose: %v vs exact %v", i, bound[i], exact[i])
		}
	}
	fx.rt.ChildQuantBounds(TierI8, fx.rNode, q, bound)
	for i := range bound {
		if bound[i] < exact[i]-40 {
			t.Fatalf("i8 rect bound %d too loose: %v vs exact %v", i, bound[i], exact[i])
		}
	}
}

// TestQuantEntryAccessors: the per-survivor exact fallbacks must equal the
// streaming kernels bit for bit.
func TestQuantEntryAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	dim, n := 5, 7
	fx := buildQuantFixture(rng, dim, n, 10)
	qc := make([]float64, dim)
	for j := range qc {
		qc[j] = rng.NormFloat64() * 10
	}
	q := geom.Sphere{Center: qc, Radius: 0.5}

	dst := make([]float64, n)
	fx.st.ChildMinDists(fx.sNode, q, dst)
	for i := 0; i < n; i++ {
		if got := fx.st.ChildMinDistAt(fx.sNode, int32(i), q); math.Float64bits(got) != math.Float64bits(dst[i]) {
			t.Fatalf("sphere ChildMinDistAt(%d) = %v, block %v", i, got, dst[i])
		}
	}
	fx.rt.ChildMinDists(fx.rNode, q, dst)
	for i := 0; i < n; i++ {
		if got := fx.rt.ChildMinDistAt(fx.rNode, int32(i), q); math.Float64bits(got) != math.Float64bits(dst[i]) {
			t.Fatalf("rect ChildMinDistAt(%d) = %v, block %v", i, got, dst[i])
		}
	}
	fx.st.LeafDists(fx.sLeaf, qc, dst)
	for i := 0; i < n; i++ {
		if got := fx.st.LeafDistAt(fx.sLeaf, int32(i), qc); math.Float64bits(got) != math.Float64bits(dst[i]) {
			t.Fatalf("LeafDistAt(%d) = %v, block %v", i, got, dst[i])
		}
	}
}
