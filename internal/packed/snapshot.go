// Snapshot persistence (ISSUE 10): the on-disk form of a frozen Tree.
//
// A packed.Tree is already structure-of-arrays — plain numeric blocks plus
// int32 prefix offsets, no pointers — so the file format is little more
// than a checksummed table of contents over those blocks written verbatim
// in little-endian order:
//
//	[0,  8)  magic "HDSNAPLE" (the trailing LE doubles as the byte-order mark)
//	[8, 12)  format version (u32, currently 1)
//	[12,16)  header CRC-32C over [0, hdrLen) with this field zeroed
//	[16,20)  hdrLen: fixed fields + section table, the CRC-covered prefix
//	[20,40)  dim, nodes, children, items (u32 each), root (i32)
//	[40,44)  kind, substrate, tiers, flags (u8 each)
//	[44,48)  section count (u32)
//	[48,72)  rootRadius, slackRel, pivotRel (f64 bits each)
//	[72, ..) section table: {id u32, CRC-32C u32, off u64, len u64} ascending
//	         by id, offsets 64-byte aligned and ascending
//	[...  )  raw section payloads
//
// Every section's expected element count is derivable from the header
// alone (see secSpecs), so a reader never trusts a length field further
// than the arithmetic it can check — the foundation of the corrupt-input
// hardening FuzzSnapshotOpen locks in.
//
// Two load paths share one decoder. Load/OpenBytes copy every block out of
// the file bytes and verify every section CRC — the portable path. Open
// maps the file (syscall.Mmap behind a build tag) and, on little-endian
// hosts, points the Tree's slices straight into the mapping via
// unsafe.Slice: open+validate replaces rebuild, and the page cache — not
// the Go heap — holds cold shards. Structural validation (prefix
// monotonicity, child-id acyclicity, exact section lengths) always runs;
// per-section CRCs are opt-in on the mmap path (VerifyChecksums) so a
// multi-GB shard is not forced resident just to open it.
//
// The header stamps the freeze-time quant-slack parameters (slackRel,
// pivotRel). The coarse-filter kernels' conservatism proof fixes these
// constants at build time (vec/quant.go); a loader compiled with different
// margins must reject the file rather than serve bounds its kernels cannot
// honour, so a mismatch is ErrIncompatible, not a warning.
package packed

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"unsafe"

	"hyperdom/internal/obs"
)

// FormatVersion is the snapshot format this build writes and reads.
const FormatVersion = 1

const (
	magicLE = "HDSNAPLE"
	magicBE = "HDSNAPBE" // never written; recognised for an actionable error

	fixedHdrLen = 72
	secEntryLen = 24
	secAlign    = 64

	// tiersBoth: both narrow tiers (f32 | i8) are present. v1 snapshots
	// always carry both — buildQuant constructs them unconditionally.
	tiersF32  = 1
	tiersI8   = 2
	tiersBoth = tiersF32 | tiersI8

	// Freeze-time conservatism margins stamped into the header: the
	// relative slack inflation of slackMargin and the relative pivot
	// margin of the fused leaf kernels (vec/quant.go). A reader whose
	// compiled-in margins differ must reject the snapshot.
	slackRelParam = 1e-9
	pivotRelParam = 1e-12

	// Validation caps: int32 node/entry ids bound everything by 2^31, and
	// the dimensionality cap keeps count arithmetic far from int64
	// overflow (2^31 entries × 2^16 dim × 8 bytes < 2^62).
	maxSnapDim   = 1 << 16
	maxSnapCount = 1<<31 - 2
)

// Typed load errors. Every load failure wraps exactly one of these, so
// callers can errors.Is-dispatch (e.g. rebuild on ErrIncompatible, alert
// on ErrChecksum) without parsing messages.
var (
	ErrBadMagic     = errors.New("packed: not a hyperdom snapshot")
	ErrBadVersion   = errors.New("packed: unsupported snapshot version")
	ErrTruncated    = errors.New("packed: truncated snapshot")
	ErrChecksum     = errors.New("packed: snapshot checksum mismatch")
	ErrCorrupt      = errors.New("packed: corrupt snapshot")
	ErrIncompatible = errors.New("packed: incompatible snapshot")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Snapshot load/store observability (ISSUE 10): exported on /metrics as
// hyperdom_snapshot_*.
var (
	obsSnapOpened  = obs.New("snapshot.files_opened")
	obsSnapWritten = obs.New("snapshot.files_written")
	obsSnapMapped  = obs.New("snapshot.bytes_mapped")
	obsSnapCRCFail = obs.New("snapshot.checksum_failures")
	histSnapLoad   = obs.GetOrNewHistogram("snapshot.load_latency", "")
)

// Substrate records which tree substrate froze a snapshot. Routing layers
// (shard manifests, hyperdomd collections) use it to refuse a file built
// for a different substrate than the one they were configured to serve.
type Substrate uint8

const (
	SubstrateUnknown Substrate = iota
	SubstrateSSTree
	SubstrateMTree
	SubstrateRTree
)

func (s Substrate) String() string {
	switch s {
	case SubstrateSSTree:
		return "sstree"
	case SubstrateMTree:
		return "mtree"
	case SubstrateRTree:
		return "rtree"
	}
	return "unknown"
}

// SubstrateFromString is the inverse of Substrate.String; unrecognised
// names map to SubstrateUnknown.
func SubstrateFromString(s string) Substrate {
	switch s {
	case "sstree":
		return SubstrateSSTree
	case "mtree":
		return SubstrateMTree
	case "rtree":
		return SubstrateRTree
	}
	return SubstrateUnknown
}

// Substrate returns the substrate that froze this snapshot
// (SubstrateUnknown for trees built before stamping existed).
func (t *Tree) Substrate() Substrate { return t.substrate }

// SetSubstrate stamps the substrate origin into the snapshot under
// construction; the substrates' Freeze methods call it so the information
// survives serialization.
func (b *Builder) SetSubstrate(s Substrate) { b.t.substrate = s }

// Section ids, in both file order and ascending numeric order (the table
// is required to be strictly ascending). Which ids appear in a given file
// depends on kind and emptiness; secSpecs is the single source of truth
// for the expected element count of every section.
const (
	secLeaf uint32 = iota + 1
	secChildStart
	secItemStart
	secChild
	secCCenters
	secCRadii
	secCLo
	secCHi
	secItemIDs
	secICenters
	secIRadii
	secRootCenter
	secRootLo
	secRootHi
	secQCCen32
	secQCRad32
	secQCSlack32
	secQCLo32
	secQCHi32
	secQCCen8
	secQCRad8
	secQCSlack8
	secQCLo8
	secQCHi8
	secQCRectSlack8
	secQCScale
	secQCOffset
	secQCRScale
	secQICen32
	secQIRad32
	secQISlack32
	secQICen8
	secQIRad8
	secQISlack8
	secQIScale
	secQIOffset
	secQIRScale
	secLeafPivot
	secIPivotHi32
	secISR32
	secISR8
)

// secSpec is one section's contract: element width and the exact element
// count implied by the header. n == 0 means the section must be absent.
type secSpec struct {
	id   uint32
	elem int64
	n    int64
}

// secSpecs derives every section's expected shape from the header fields
// alone. Writer and reader share it, so a valid writer cannot emit a file
// its own reader would reject, and a corrupted length can never make the
// reader slice out of bounds — the count is recomputed, never trusted.
func secSpecs(kind Kind, dim, nodes, children, items int64, root int32) []secSpec {
	sphere := kind == KindSphere
	rect := kind == KindRect
	sel := func(cond bool, n int64) int64 {
		if cond {
			return n
		}
		return 0
	}
	rootN := sel(root >= 0, dim)
	return []secSpec{
		{secLeaf, 1, nodes},
		{secChildStart, 4, nodes + 1},
		{secItemStart, 4, nodes + 1},
		{secChild, 4, children},
		{secCCenters, 8, sel(sphere, children*dim)},
		{secCRadii, 8, sel(sphere, children)},
		{secCLo, 8, sel(rect, children*dim)},
		{secCHi, 8, sel(rect, children*dim)},
		{secItemIDs, 8, items},
		{secICenters, 8, items * dim},
		{secIRadii, 8, items},
		{secRootCenter, 8, sel(sphere, rootN)},
		{secRootLo, 8, sel(rect, rootN)},
		{secRootHi, 8, sel(rect, rootN)},
		{secQCCen32, 4, sel(sphere, children*dim)},
		{secQCRad32, 4, sel(sphere, children)},
		{secQCSlack32, 4, sel(sphere, children)},
		{secQCLo32, 4, sel(rect, children*dim)},
		{secQCHi32, 4, sel(rect, children*dim)},
		{secQCCen8, 1, sel(sphere, children*dim)},
		{secQCRad8, 1, sel(sphere, children)},
		{secQCSlack8, 4, sel(sphere, children)},
		{secQCLo8, 1, sel(rect, children*dim)},
		{secQCHi8, 1, sel(rect, children*dim)},
		{secQCRectSlack8, 4, sel(rect, children)},
		{secQCScale, 8, nodes},
		{secQCOffset, 8, nodes},
		{secQCRScale, 8, sel(sphere, nodes)},
		{secQICen32, 4, items * dim},
		{secQIRad32, 4, items},
		{secQISlack32, 4, items},
		{secQICen8, 1, items * dim},
		{secQIRad8, 1, items},
		{secQISlack8, 4, items},
		{secQIScale, 8, nodes},
		{secQIOffset, 8, nodes},
		{secQIRScale, 8, nodes},
		{secLeafPivot, 8, nodes * dim},
		{secIPivotHi32, 4, items},
		{secISR32, 4, items},
		{secISR8, 4, items},
	}
}

// hostLE reports whether this process runs little-endian. The format is
// little-endian on disk regardless; on big-endian hosts every block is
// byte-swap-copied and the zero-copy fast path is simply unavailable.
var hostLE = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// word is any fixed-width element a section can hold. bool rides along
// because []bool is one 0/1 byte per element in Go's ABI — the leaf
// section validates every byte before casting back.
type word interface {
	~int8 | ~uint8 | ~bool | ~int32 | ~float32 | ~int64 | ~float64
}

// rawBytes returns the in-memory bytes of s without copying.
func rawBytes[T word](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*int(unsafe.Sizeof(s[0])))
}

// leBytes returns s as little-endian bytes: an alias of the backing array
// on little-endian hosts, an element-wise swapped copy otherwise.
func leBytes[T word](s []T) []byte {
	b := rawBytes(s)
	if hostLE || len(b) == len(s) {
		return b
	}
	w := int(unsafe.Sizeof(s[0]))
	out := make([]byte, len(b))
	for i := 0; i < len(b); i += w {
		for j := 0; j < w; j++ {
			out[i+j] = b[i+w-1-j]
		}
	}
	return out
}

// decodeSlice interprets little-endian bytes b as []T. With zeroCopy, a
// little-endian host and natural alignment the result aliases b (this is
// the mmap fast path — b must outlive the slice); otherwise the elements
// are copied out, byte-swapped on big-endian hosts.
func decodeSlice[T word](b []byte, zeroCopy bool) []T {
	var z T
	w := int(unsafe.Sizeof(z))
	n := len(b) / w
	if n == 0 {
		return nil
	}
	if zeroCopy && hostLE && uintptr(unsafe.Pointer(&b[0]))%uintptr(w) == 0 {
		return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]T, n)
	ob := rawBytes(out)
	if hostLE || w == 1 {
		copy(ob, b)
	} else {
		for i := 0; i < len(b); i += w {
			for j := 0; j < w; j++ {
				ob[i+j] = b[i+w-1-j]
			}
		}
	}
	return out
}

func align64(n int64) int64 { return (n + secAlign - 1) &^ (secAlign - 1) }

// secData returns section id's payload as little-endian bytes. Sections
// whose elements are 1 byte wide alias the Tree's slices; wider sections
// alias on little-endian hosts and are swap-copied on big-endian ones.
func (t *Tree) secData(id uint32) []byte {
	q := &t.quant
	switch id {
	case secLeaf:
		return rawBytes(t.leaf)
	case secChildStart:
		return leBytes(t.childStart)
	case secItemStart:
		return leBytes(t.itemStart)
	case secChild:
		return leBytes(t.child)
	case secCCenters:
		return leBytes(t.cCenters)
	case secCRadii:
		return leBytes(t.cRadii)
	case secCLo:
		return leBytes(t.cLo)
	case secCHi:
		return leBytes(t.cHi)
	case secItemIDs:
		ids := make([]int64, len(t.items))
		for i := range t.items {
			ids[i] = int64(t.items[i].ID)
		}
		return leBytes(ids)
	case secICenters:
		return leBytes(t.iCenters)
	case secIRadii:
		return leBytes(t.iRadii)
	case secRootCenter:
		return leBytes(t.rootCenter)
	case secRootLo:
		return leBytes(t.rootLo)
	case secRootHi:
		return leBytes(t.rootHi)
	case secQCCen32:
		return leBytes(q.cCen32)
	case secQCRad32:
		return leBytes(q.cRad32)
	case secQCSlack32:
		return leBytes(q.cSlack32)
	case secQCLo32:
		return leBytes(q.cLo32)
	case secQCHi32:
		return leBytes(q.cHi32)
	case secQCCen8:
		return rawBytes(q.cCen8)
	case secQCRad8:
		return rawBytes(q.cRad8)
	case secQCSlack8:
		return leBytes(q.cSlack8)
	case secQCLo8:
		return rawBytes(q.cLo8)
	case secQCHi8:
		return rawBytes(q.cHi8)
	case secQCRectSlack8:
		return leBytes(q.cRectSlack8)
	case secQCScale:
		return leBytes(q.cScale)
	case secQCOffset:
		return leBytes(q.cOffset)
	case secQCRScale:
		return leBytes(q.cRScale)
	case secQICen32:
		return leBytes(q.iCen32)
	case secQIRad32:
		return leBytes(q.iRad32)
	case secQISlack32:
		return leBytes(q.iSlack32)
	case secQICen8:
		return rawBytes(q.iCen8)
	case secQIRad8:
		return rawBytes(q.iRad8)
	case secQISlack8:
		return leBytes(q.iSlack8)
	case secQIScale:
		return leBytes(q.iScale)
	case secQIOffset:
		return leBytes(q.iOffset)
	case secQIRScale:
		return leBytes(q.iRScale)
	case secLeafPivot:
		return leBytes(q.leafPivot)
	case secIPivotHi32:
		return leBytes(q.iPivotHi32)
	case secISR32:
		return leBytes(q.iSR32)
	case secISR8:
		return leBytes(q.iSR8)
	}
	panic(fmt.Sprintf("packed: unknown section id %d", id))
}

// WriteTo serializes the snapshot in format v1 and reports the bytes
// written. It implements io.WriterTo; durability (atomic replace, fsync)
// is Save's job — WriteTo only streams bytes.
func (t *Tree) WriteTo(w io.Writer) (int64, error) {
	type sec struct {
		id   uint32
		data []byte
	}
	var secs []sec
	for _, sp := range secSpecs(t.kind, int64(t.dim), int64(len(t.leaf)), int64(len(t.child)), int64(len(t.items)), t.root) {
		data := t.secData(sp.id)
		if int64(len(data)) != sp.n*sp.elem {
			panic(fmt.Sprintf("packed: section %d holds %d bytes, format expects %d", sp.id, len(data), sp.n*sp.elem))
		}
		if sp.n == 0 {
			continue
		}
		secs = append(secs, sec{sp.id, data})
	}

	hdrLen := int64(fixedHdrLen + secEntryLen*len(secs))
	hdr := make([]byte, align64(hdrLen))
	le := binary.LittleEndian
	copy(hdr, magicLE)
	le.PutUint32(hdr[8:], FormatVersion)
	le.PutUint32(hdr[16:], uint32(hdrLen))
	le.PutUint32(hdr[20:], uint32(t.dim))
	le.PutUint32(hdr[24:], uint32(len(t.leaf)))
	le.PutUint32(hdr[28:], uint32(len(t.child)))
	le.PutUint32(hdr[32:], uint32(len(t.items)))
	le.PutUint32(hdr[36:], uint32(t.root))
	hdr[40] = byte(t.kind)
	hdr[41] = byte(t.substrate)
	hdr[42] = tiersBoth
	hdr[43] = 0 // flags, reserved
	le.PutUint32(hdr[44:], uint32(len(secs)))
	le.PutUint64(hdr[48:], math.Float64bits(t.rootRadius))
	le.PutUint64(hdr[56:], math.Float64bits(slackRelParam))
	le.PutUint64(hdr[64:], math.Float64bits(pivotRelParam))
	off := align64(hdrLen)
	for i, s := range secs {
		e := hdr[fixedHdrLen+i*secEntryLen:]
		le.PutUint32(e[0:], s.id)
		le.PutUint32(e[4:], crc32.Checksum(s.data, castagnoli))
		le.PutUint64(e[8:], uint64(off))
		le.PutUint64(e[16:], uint64(len(s.data)))
		off = align64(off + int64(len(s.data)))
	}
	// The CRC field is still zero here, which is exactly the byte state
	// the checksum is defined over.
	le.PutUint32(hdr[12:], crc32.Checksum(hdr[:hdrLen], castagnoli))

	var n int64
	emit := func(b []byte) error {
		m, err := w.Write(b)
		n += int64(m)
		return err
	}
	if err := emit(hdr); err != nil {
		return n, err
	}
	var pad [secAlign]byte
	for _, s := range secs {
		if err := emit(s.data); err != nil {
			return n, err
		}
		if rem := int64(len(s.data)) % secAlign; rem != 0 {
			if err := emit(pad[:secAlign-rem]); err != nil {
				return n, err
			}
		}
	}
	if obs.On() {
		obsSnapWritten.Inc()
	}
	return n, nil
}

// Save writes the snapshot to path atomically: the bytes go to a temp
// file in the same directory, the file is fsynced, renamed over path, and
// the directory fsynced — a crash leaves either the old file or the new
// one, never a torn hybrid, and a reader can Open concurrently with a
// writer replacing the file.
func (t *Tree) Save(path string) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if f != nil {
			f.Close()
		}
		if err != nil {
			os.Remove(tmp)
		}
	}()
	if _, err = t.WriteTo(f); err != nil {
		return err
	}
	// CreateTemp opens 0600; a snapshot is a shippable artifact, so widen
	// to the usual rw-r--r-- (cut down by the process umask on rename).
	if err = f.Chmod(0o644); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	err = f.Close()
	f = nil
	if err != nil {
		return err
	}
	if err = os.Rename(tmp, path); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
