//go:build !unix

package packed

import (
	"errors"
	"os"
)

// Platforms without syscall.Mmap take the copying load path; Open remains
// correct, just not zero-copy.
const mmapSupported = false

func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, errors.ErrUnsupported
}

func munmap(b []byte) error { return nil }
