package packed

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"hyperdom/internal/geom"
)

// FuzzQuantizedLowerBound locks the conservatism contract of the narrow
// tiers (ISSUE 6): on arbitrary nodes of 2–10 dimensions — NaN/Inf
// coordinates, magnitudes beyond float32 range, denormals, whatever the
// fuzzer finds — every bound a quantized kernel writes must be finite,
// non-negative, and never exceed the exact kernel's value for the same
// entry. This is exactly the property the two-phase traversal needs: a
// coarse prune (bound > distk) is then always a decision the exact path
// would have made too.
func FuzzQuantizedLowerBound(f *testing.F) {
	f.Add([]byte{3, 4, 0})
	f.Add([]byte{0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	// A seed with non-finite and extreme-scale values in the float stream.
	ext := make([]byte, 2, 2+8*12)
	ext[0], ext[1] = 5, 3
	for _, v := range []float64{
		math.NaN(), math.Inf(1), math.Inf(-1),
		1e300, -1e300, 4e38, -4e38, 1e-300, math.MaxFloat64, 0, 1, -1,
	} {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		ext = append(ext, b[:]...)
	}
	f.Add(ext)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		dim := 2 + int(data[0])%9 // 2..10
		n := 1 + int(data[1])%8   // 1..8 entries per node
		data = data[2:]

		rng := rand.New(rand.NewSource(int64(len(data)) + int64(dim)*31 + int64(n)))
		next := func() float64 {
			if len(data) >= 8 {
				v := math.Float64frombits(binary.LittleEndian.Uint64(data))
				data = data[8:]
				return v
			}
			return rng.NormFloat64() * 100
		}

		centers := make([][]float64, n)
		radii := make([]float64, n)
		lo := make([][]float64, n)
		hi := make([][]float64, n)
		items := make([]geom.Item, n)
		for i := 0; i < n; i++ {
			c := make([]float64, dim)
			l := make([]float64, dim)
			h := make([]float64, dim)
			for j := 0; j < dim; j++ {
				c[j] = next()
				l[j] = next()
				h[j] = l[j] + math.Abs(next())
			}
			centers[i], radii[i], lo[i], hi[i] = c, next(), l, h
			items[i] = geom.Item{ID: i, Sphere: geom.Sphere{Center: c, Radius: radii[i]}}
		}
		qc := make([]float64, dim)
		for j := range qc {
			qc[j] = next()
		}
		q := geom.Sphere{Center: qc, Radius: next()}

		exact := make([]float64, n)
		bound := make([]float64, n)
		check := func(kind string, tier Tier) {
			t.Helper()
			for i := range bound {
				b, e := bound[i], exact[i]
				if math.IsNaN(b) || b < 0 || b > math.MaxFloat64 {
					t.Fatalf("%s tier=%d entry %d: bound %v not in [0, MaxFloat64], dim=%d n=%d",
						kind, tier, i, b, dim, n)
				}
				// The exact kernels clamp at 0 and never produce NaN (a NaN
				// raw mindist fails the >0 test), so <= is well-defined.
				if b > e {
					t.Fatalf("%s tier=%d entry %d: bound %v exceeds exact %v, dim=%d n=%d",
						kind, tier, i, b, e, dim, n)
				}
			}
		}

		// Sphere-bounded internal node + leaf (SS-tree / M-tree shape).
		sb := NewBuilder(KindSphere, dim)
		leafID := sb.Leaf(items)
		node := sb.InternalSphere(kidsOf(leafID, n), centers, radii)
		st := sb.FinishSphere(node, centers[0], radii[0])
		for _, tier := range []Tier{TierF32, TierI8} {
			st.ChildMinDists(node, q, exact)
			st.ChildQuantBounds(tier, node, q, bound)
			check("sphere-child", tier)

			// Leaf item bounds compare against the exact per-item mindist
			// expression the traversal evaluates: dist − radius − qr.
			st.LeafDists(leafID, qc, exact)
			ir := st.ItemRadii(leafID)
			for i := range exact {
				if m := exact[i] - ir[i] - q.Radius; m > 0 {
					exact[i] = m
				} else {
					exact[i] = 0
				}
			}
			st.LeafQuantBounds(tier, leafID, q, bound)
			check("leaf-item", tier)

			// Two-stage select (pivot pre-filter + narrow refine): every
			// index it drops must be one the exact path would prune
			// (mindist > dk). The select kernels' threshold arithmetic
			// assumes a non-negative query radius and dk — exactly what
			// the traversal guarantees (quantOn and the dispatch gate in
			// knn/search.go) — so the check runs the query with |radius|.
			// Exercise a query-derived dk and one sitting in the middle of
			// the exact mindist range, where the drop/keep boundary
			// actually cuts.
			absQ := geom.Sphere{Center: qc, Radius: math.Abs(q.Radius)}
			st.LeafDists(leafID, qc, exact)
			for i := range exact {
				if m := exact[i] - ir[i] - absQ.Radius; m > 0 {
					exact[i] = m
				} else {
					exact[i] = 0
				}
			}
			sel := make([]int32, n)
			for _, dk := range []float64{absQ.Radius, exact[n/2]} {
				if math.IsNaN(dk) || math.IsInf(dk, 0) {
					continue
				}
				nsel := st.LeafQuantSelect(tier, leafID, absQ, dk, sel)
				kept := make(map[int32]bool, nsel)
				for _, i := range sel[:nsel] {
					kept[i] = true
				}
				for i := range exact {
					if !kept[int32(i)] && !(exact[i] > dk) {
						t.Fatalf("leaf-select tier=%d entry %d: dropped but exact mindist %v <= dk %v, dim=%d n=%d",
							tier, i, exact[i], dk, dim, n)
					}
				}
			}
		}

		// Rect-bounded internal node (R-tree shape).
		rb := NewBuilder(KindRect, dim)
		rleaf := rb.Leaf(items)
		node = rb.InternalRect(kidsOf(rleaf, n), lo, hi)
		rt := rb.FinishRect(node, lo[0], hi[0])
		for _, tier := range []Tier{TierF32, TierI8} {
			rt.ChildMinDists(node, q, exact)
			rt.ChildQuantBounds(tier, node, q, bound)
			check("rect-child", tier)
		}
	})
}
