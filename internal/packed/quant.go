package packed

import (
	"math"

	"hyperdom/internal/geom"
	"hyperdom/internal/vec"
)

// Quantized coarse-filter tiers (ISSUE 6). Freeze builds, next to the exact
// float64 blocks, two narrow parallel copies of every child bound and leaf
// item sphere: a float32 tier and an int8 tier with per-node scale/offset.
// A traversal streams the narrow copy first (vec.MinDistSphereBlockF32 and
// friends) to obtain a conservative lower bound on each entry's mindist,
// prunes on that, and touches the exact float64 block only for the
// survivors — same answers, a fraction of the bytes.
//
// The conservatism is bought at build time, not proven per query: every
// quantized entry carries a float32 slack that upper-bounds how far its
// reconstructed geometry can understate the exact mindist, measured in
// float64 from the very dequantization expression the kernels evaluate
// (center displacement ‖ĉ−c‖ plus any radius shortfall r−r̂, inflated by
// a 1e-9 relative margin and rounded up). Radii quantize upward (f32Up /
// ceil codes) so the quantized ball contains the exact one wherever the
// narrow type can represent it; rectangle bounds quantize outward (lo
// down, hi up). Degenerate inputs — NaN coordinates, magnitudes beyond
// the narrow type's range, int8 clamping — simply inflate the entry's
// slack to +Inf (or leave NaN in it), which the kernels collapse to the
// never-prunes bound 0, keeping the exact path authoritative.
// FuzzQuantizedLowerBound exercises exactly these edges. See DESIGN.md §12.

// Tier selects which quantized copy a traversal consults.
type Tier uint8

const (
	// TierNone: no coarse pass — stream the exact float64 blocks directly.
	TierNone Tier = iota
	// TierF32: float32 centers/radii/bounds, per-entry slack.
	TierF32
	// TierI8: int8 codes with per-node scale/offset, per-entry slack.
	TierI8
)

// quantTiers holds both narrow copies. Child arrays parallel t.child /
// t.cCenters; item arrays parallel t.items / t.iCenters; the int8 tier's
// scale/offset/rScale arrays are indexed by node id.
type quantTiers struct {
	// Child bounds, float32 tier.
	cCen32   []float32 // KindSphere: len(child)*dim
	cRad32   []float32 // KindSphere: len(child), rounded up
	cSlack32 []float32 // KindSphere: len(child)
	cLo32    []float32 // KindRect: len(child)*dim, rounded down
	cHi32    []float32 // KindRect: len(child)*dim, rounded up

	// Child bounds, int8 tier.
	cCen8       []int8    // KindSphere: len(child)*dim
	cRad8       []uint8   // KindSphere: len(child), ceil codes
	cSlack8     []float32 // KindSphere: len(child)
	cLo8, cHi8  []int8    // KindRect: len(child)*dim each
	cRectSlack8 []float32 // KindRect: len(child)
	cScale      []float64 // per node
	cOffset     []float64 // per node
	cRScale     []float64 // KindSphere: per node

	// Leaf item spheres, both tiers (items are spheres in every kind).
	iCen32   []float32
	iRad32   []float32
	iSlack32 []float32
	iCen8    []int8
	iRad8    []uint8
	iSlack8  []float32
	iScale   []float64 // per node
	iOffset  []float64 // per node
	iRScale  []float64 // per node

	// Pivot pre-filter (the cheap first test of the fused leaf select):
	// per leaf the mean of its item centers in float64, and per item the
	// float32 round-up of dist(pivot, c) + rad. One exact distance to the
	// pivot per visited leaf then settles most items on a single float32
	// compare via the triangle inequality — see the pivot doc block in
	// vec/quant.go. Shared by both tiers (the bound is an exact-path
	// by-product, not quantized geometry). Degenerate coordinates poison
	// the pivot with NaN, which fails every drop comparison and routes
	// the whole leaf to the refine stage.
	leafPivot  []float64 // nodes*dim
	iPivotHi32 []float32 // len(items)

	// Per-item refine-threshold sums for the fused leaf kernels: the
	// float32 round-up of slack + radius (int8 tier: slack +
	// rScale·radCode), so the hot loop's threshold is one load and one
	// add. Rounding the sum up only raises the threshold, which keeps
	// the drop decision conservative.
	iSR32 []float32 // len(items)
	iSR8  []float32 // len(items)
}

// f32Up returns the smallest float32 whose value is >= x (NaN stays NaN,
// ±Inf stay themselves; finite x beyond float32 range saturates correctly:
// 1e300 → +Inf, -1e300 → -MaxFloat32).
func f32Up(x float64) float32 {
	f := float32(x)
	if float64(f) < x {
		f = math.Nextafter32(f, float32(math.Inf(1)))
	}
	return f
}

// f32Down returns the largest float32 whose value is <= x.
func f32Down(x float64) float32 {
	f := float32(x)
	if float64(f) > x {
		f = math.Nextafter32(f, float32(math.Inf(-1)))
	}
	return f
}

// slackMargin inflates a float64-measured slack so that the float32 value
// stored is a guaranteed upper bound despite the measurement's own
// rounding (relative error ~1e-15, margin 1e-9).
func slackMargin(s float64) float32 { return f32Up(s * (1 + 1e-9)) }

// quantSphereF32 appends the float32 tier of one sphere block (n entries,
// centers[e*dim:], radii[e]) to the destination slices: round-to-nearest
// centers, round-up radii, and the per-entry slack ‖ĉ−c‖.
func quantSphereF32(cen32, rad32, slack []float32, centers, radii []float64, dim int) ([]float32, []float32, []float32) {
	for e := 0; e < len(radii); e++ {
		c := centers[e*dim : (e+1)*dim]
		var disp2 float64
		for _, cj := range c {
			w := float32(cj)
			cen32 = append(cen32, w)
			d := float64(w) - cj
			disp2 += d * d
		}
		rad32 = append(rad32, f32Up(radii[e]))
		s := math.Sqrt(disp2)
		if radii[e] < 0 {
			// A negative radius would put a mixed-sign term into the select
			// kernels' threshold sum, whose cancellation analysis assumes
			// all-non-negative terms; infinite slack disables the entry
			// (never prunes) and leaves the exact path authoritative.
			s = math.Inf(1)
		}
		slack = append(slack, slackMargin(s))
	}
	return cen32, rad32, slack
}

// rangeOf returns the min and max of the finite values in xs (0, 0 when
// none are finite) — the per-node code range for the int8 tier. Skipping
// non-finite coordinates keeps one degenerate entry from destroying the
// resolution of its siblings; the entry itself is disabled through its
// slack.
func rangeOf(xs []float64) (lo, hi float64, any bool) {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		if !any || x < lo {
			lo = x
		}
		if !any || x > hi {
			hi = x
		}
		any = true
	}
	if !any {
		return 0, 0, false
	}
	return lo, hi, true
}

// i8Params derives the per-node dequantization parameters from a finite
// value range: codes span [-127, 127], so scale covers the range in 254
// steps around the midpoint. Degenerate or overflowing ranges collapse to
// scale 0 (every code dequantizes to offset; per-entry slack absorbs the
// error, exactly for single-point nodes).
func i8Params(lo, hi float64) (scale, offset float64) {
	scale = (hi - lo) / 254
	offset = (lo + hi) / 2
	if scale <= 0 || math.IsInf(scale, 0) || math.IsNaN(scale) ||
		math.IsInf(offset, 0) || math.IsNaN(offset) {
		return 0, lo
	}
	return scale, offset
}

// i8Code quantizes one coordinate. The NaN-safe clamp pattern matters:
// converting a NaN or out-of-range float to int8 directly is undefined in
// Go, so the comparisons run on the float.
func i8Code(x, scale, offset float64) int8 {
	if scale == 0 {
		return 0
	}
	t := math.Round((x - offset) / scale)
	if !(t >= -127) {
		t = -127
	}
	if t > 127 {
		t = 127
	}
	return int8(t)
}

// i8CodeFloor / i8CodeCeil are the directed-rounding variants for
// rectangle faces.
func i8CodeFloor(x, scale, offset float64) int8 {
	if scale == 0 {
		return 0
	}
	t := math.Floor((x - offset) / scale)
	if !(t >= -127) {
		t = -127
	}
	if t > 127 {
		t = 127
	}
	return int8(t)
}

func i8CodeCeil(x, scale, offset float64) int8 {
	if scale == 0 {
		return 0
	}
	t := math.Ceil((x - offset) / scale)
	if !(t >= -127) {
		t = -127
	}
	if t > 127 {
		t = 127
	}
	return int8(t)
}

// radCode quantizes a radius into a ceil uint8 code against rScale and
// returns the code plus the shortfall r − rScale·code the caller must fold
// into the entry's slack when positive (a quantized radius smaller than
// the exact one would otherwise overstate the mindist).
func radCode(r, rScale float64) (uint8, float64) {
	if rScale == 0 {
		return 0, r
	}
	t := math.Ceil(r / rScale)
	if !(t >= 0) {
		t = 0
	}
	if t > 255 {
		t = 255
	}
	code := uint8(t)
	return code, r - rScale*float64(code)
}

// quantSphereI8 appends the int8 tier of one sphere block and returns the
// node's scale/offset/rScale. The slack is measured against the exact
// dequantization expression the kernel evaluates (offset + scale·code),
// plus any radius shortfall.
func quantSphereI8(cen8 []int8, rad8 []uint8, slack []float32, centers, radii []float64, dim int) ([]int8, []uint8, []float32, float64, float64, float64) {
	lo, hi, _ := rangeOf(centers)
	scale, offset := i8Params(lo, hi)
	var maxR float64
	for _, r := range radii {
		if r > maxR && !math.IsInf(r, 1) {
			maxR = r
		}
	}
	rScale := maxR / 255
	for e := 0; e < len(radii); e++ {
		c := centers[e*dim : (e+1)*dim]
		var disp2 float64
		for _, cj := range c {
			code := i8Code(cj, scale, offset)
			cen8 = append(cen8, code)
			d := offset + scale*float64(code) - cj
			disp2 += d * d
		}
		code, deficit := radCode(radii[e], rScale)
		rad8 = append(rad8, code)
		s := math.Sqrt(disp2)
		if deficit > 0 {
			s += deficit
		} else if math.IsNaN(deficit) {
			s = math.NaN()
		}
		if radii[e] < 0 {
			// See quantSphereF32: a negative radius entry is disabled
			// through infinite slack rather than allowed to feed a
			// mixed-sign threshold sum.
			s = math.Inf(1)
		}
		slack = append(slack, slackMargin(s))
	}
	return cen8, rad8, slack, scale, offset, rScale
}

// quantRectI8 appends the int8 tier of one rect block and returns the
// node's scale/offset. Directed code rounding keeps the quantized rect
// containing the exact one except where int8 clamping pushed a face
// inward; the per-coordinate inward shifts δ are folded into the entry
// slack as ‖δ‖ (per-coordinate distances grow by at most δ_j, so the
// mindist grows by at most the norm — Minkowski).
func quantRectI8(lo8, hi8 []int8, slack []float32, cLo, cHi []float64, nEntries, dim int) ([]int8, []int8, []float32, float64, float64) {
	l1, h1, any1 := rangeOf(cLo)
	l2, h2, any2 := rangeOf(cHi)
	switch {
	case any1 && any2:
		l1, h1 = math.Min(l1, l2), math.Max(h1, h2)
	case any2:
		l1, h1 = l2, h2
	}
	scale, offset := i8Params(l1, h1)
	for e := 0; e < nEntries; e++ {
		var shift2 float64
		for j := 0; j < dim; j++ {
			loJ, hiJ := cLo[e*dim+j], cHi[e*dim+j]
			lc := i8CodeFloor(loJ, scale, offset)
			hc := i8CodeCeil(hiJ, scale, offset)
			lo8 = append(lo8, lc)
			hi8 = append(hi8, hc)
			var shift float64
			if d := offset + scale*float64(lc) - loJ; d > 0 || math.IsNaN(d) {
				shift = d
			}
			if d := hiJ - (offset + scale*float64(hc)); d > shift || math.IsNaN(d) {
				shift = d
			}
			shift2 += shift * shift
		}
		slack = append(slack, slackMargin(math.Sqrt(shift2)))
	}
	return lo8, hi8, slack, scale, offset
}

// buildQuant fills both narrow tiers for every node's child block and leaf
// item block. Called once by finish(); one pass per tier over data the
// builder just wrote, so freezing stays O(data).
func (t *Tree) buildQuant() {
	q := &t.quant
	nodes := len(t.leaf)
	q.cScale = make([]float64, nodes)
	q.cOffset = make([]float64, nodes)
	q.iScale = make([]float64, nodes)
	q.iOffset = make([]float64, nodes)
	q.iRScale = make([]float64, nodes)
	q.leafPivot = make([]float64, nodes*t.dim)
	if t.kind == KindSphere {
		q.cRScale = make([]float64, nodes)
	}
	dim := t.dim
	for n := 0; n < nodes; n++ {
		cs, ce := t.childStart[n], t.childStart[n+1]
		if ce > cs {
			if t.kind == KindSphere {
				centers := t.cCenters[cs*int32(dim) : ce*int32(dim)]
				radii := t.cRadii[cs:ce]
				q.cCen32, q.cRad32, q.cSlack32 = quantSphereF32(q.cCen32, q.cRad32, q.cSlack32, centers, radii, dim)
				q.cCen8, q.cRad8, q.cSlack8, q.cScale[n], q.cOffset[n], q.cRScale[n] =
					quantSphereI8(q.cCen8, q.cRad8, q.cSlack8, centers, radii, dim)
			} else {
				lo := t.cLo[cs*int32(dim) : ce*int32(dim)]
				hi := t.cHi[cs*int32(dim) : ce*int32(dim)]
				for _, x := range lo {
					q.cLo32 = append(q.cLo32, f32Down(x))
				}
				for _, x := range hi {
					q.cHi32 = append(q.cHi32, f32Up(x))
				}
				q.cLo8, q.cHi8, q.cRectSlack8, q.cScale[n], q.cOffset[n] =
					quantRectI8(q.cLo8, q.cHi8, q.cRectSlack8, lo, hi, int(ce-cs), dim)
			}
		}
		is, ie := t.itemStart[n], t.itemStart[n+1]
		if ie > is {
			centers := t.iCenters[is*int32(dim) : ie*int32(dim)]
			radii := t.iRadii[is:ie]
			q.iCen32, q.iRad32, q.iSlack32 = quantSphereF32(q.iCen32, q.iRad32, q.iSlack32, centers, radii, dim)
			q.iCen8, q.iRad8, q.iSlack8, q.iScale[n], q.iOffset[n], q.iRScale[n] =
				quantSphereI8(q.iCen8, q.iRad8, q.iSlack8, centers, radii, dim)
			// Pivot = centroid of the leaf's item centers (any point works
			// for correctness; the centroid keeps the per-item distances —
			// and with them the bound's looseness — small).
			pv := q.leafPivot[n*dim : n*dim+dim]
			for e := 0; e < int(ie-is); e++ {
				for j := 0; j < dim; j++ {
					pv[j] += centers[e*dim+j]
				}
			}
			for j := range pv {
				pv[j] /= float64(ie - is)
			}
			for e := 0; e < int(ie-is); e++ {
				d := vec.DistEntry(pv, centers[e*dim:(e+1)*dim])
				// Clamp at 0: a negative value would flip the direction
				// the relative rounding margin must point, and raising
				// the bound only loosens it, so the clamp stays
				// conservative. A NaN passes through slackMargin and
				// fails every drop comparison at query time.
				hi := d + radii[e]
				if hi < 0 {
					hi = 0
				}
				q.iPivotHi32 = append(q.iPivotHi32, slackMargin(hi))
			}
			for e := int(is); e < int(ie); e++ {
				q.iSR32 = append(q.iSR32, f32Up(float64(q.iSlack32[e])+float64(q.iRad32[e])))
				q.iSR8 = append(q.iSR8, f32Up(float64(q.iSlack8[e])+q.iRScale[n]*float64(q.iRad8[e])))
			}
		}
	}
}

// ChildQuantBounds streams one pass over internal node n's quantized child
// bounds in the given tier and writes a conservative lower bound on each
// child's mindist to the query into dst (length len(Children(n))): every
// value is finite, >= 0, and <= the exact value ChildMinDists writes for
// the same entry. Panics if tier is TierNone.
func (t *Tree) ChildQuantBounds(tier Tier, n int32, q geom.Sphere, dst []float64) {
	cs, ce := t.childStart[n], t.childStart[n+1]
	lo, hi := cs*int32(t.dim), ce*int32(t.dim)
	qt := &t.quant
	switch {
	case t.kind == KindSphere && tier == TierF32:
		vec.MinDistSphereBlockF32(dst, qt.cCen32[lo:hi], qt.cRad32[cs:ce], qt.cSlack32[cs:ce], q.Center, q.Radius)
	case t.kind == KindSphere && tier == TierI8:
		vec.MinDistSphereBlockI8(dst, qt.cCen8[lo:hi], qt.cScale[n], qt.cOffset[n],
			qt.cRad8[cs:ce], qt.cRScale[n], qt.cSlack8[cs:ce], q.Center, q.Radius)
	case tier == TierF32:
		vec.MinDistRectBlockF32(dst, qt.cLo32[lo:hi], qt.cHi32[lo:hi], q.Center, q.Radius)
	case tier == TierI8:
		vec.MinDistRectBlockI8(dst, qt.cLo8[lo:hi], qt.cHi8[lo:hi], qt.cScale[n], qt.cOffset[n],
			qt.cRectSlack8[cs:ce], q.Center, q.Radius)
	default:
		panic("packed: ChildQuantBounds with TierNone")
	}
}

// LeafQuantBounds is ChildQuantBounds for leaf n's item spheres: dst gets a
// conservative lower bound on each item's mindist (dist − radius − query
// radius, clamped at 0) in the given tier.
func (t *Tree) LeafQuantBounds(tier Tier, n int32, q geom.Sphere, dst []float64) {
	is, ie := t.itemStart[n], t.itemStart[n+1]
	lo, hi := is*int32(t.dim), ie*int32(t.dim)
	qt := &t.quant
	switch tier {
	case TierF32:
		vec.MinDistSphereBlockF32(dst, qt.iCen32[lo:hi], qt.iRad32[is:ie], qt.iSlack32[is:ie], q.Center, q.Radius)
	case TierI8:
		vec.MinDistSphereBlockI8(dst, qt.iCen8[lo:hi], qt.iScale[n], qt.iOffset[n],
			qt.iRad8[is:ie], qt.iRScale[n], qt.iSlack8[is:ie], q.Center, q.Radius)
	default:
		panic("packed: LeafQuantBounds with TierNone")
	}
}

// ChildQuantSelect is the traversal-facing form of ChildQuantBounds: it
// writes into sel the indices (within node n's child block) of the entries
// whose narrow bound cannot certainly exceed dk, and returns their count.
// Every dropped entry has exact mindist > dk; survivors must take the exact
// per-entry fallback (ChildMinDistAt). sel needs room for the node's full
// child count.
func (t *Tree) ChildQuantSelect(tier Tier, n int32, q geom.Sphere, dk float64, sel []int32) int {
	cs, ce := t.childStart[n], t.childStart[n+1]
	lo, hi := cs*int32(t.dim), ce*int32(t.dim)
	qt := &t.quant
	switch {
	case t.kind == KindSphere && tier == TierF32:
		return vec.SelectSphereBlockF32(sel, qt.cCen32[lo:hi], qt.cRad32[cs:ce], qt.cSlack32[cs:ce], q.Center, q.Radius, dk)
	case t.kind == KindSphere && tier == TierI8:
		return vec.SelectSphereBlockI8(sel, qt.cCen8[lo:hi], qt.cScale[n], qt.cOffset[n],
			qt.cRad8[cs:ce], qt.cRScale[n], qt.cSlack8[cs:ce], q.Center, q.Radius, dk)
	case tier == TierF32:
		return vec.SelectRectBlockF32(sel, qt.cLo32[lo:hi], qt.cHi32[lo:hi], q.Center, q.Radius, dk)
	case tier == TierI8:
		return vec.SelectRectBlockI8(sel, qt.cLo8[lo:hi], qt.cHi8[lo:hi], qt.cScale[n], qt.cOffset[n],
			qt.cRectSlack8[cs:ce], q.Center, q.Radius, dk)
	default:
		panic("packed: ChildQuantSelect with TierNone")
	}
}

// LeafQuantSelect is ChildQuantSelect for leaf n's item spheres, fused with
// the pivot pre-filter: one exact distance to the leaf's pivot, then a
// single pass in which most items settle on one float32 compare (triangle
// inequality) and only the unsettled ones pay the per-dimension narrow
// bound. Both tests are conservative, so the contract is unchanged: every
// dropped entry has exact mindist > dk.
func (t *Tree) LeafQuantSelect(tier Tier, n int32, q geom.Sphere, dk float64, sel []int32) int {
	is, ie := t.itemStart[n], t.itemStart[n+1]
	lo, hi := is*int32(t.dim), ie*int32(t.dim)
	qt := &t.quant
	pv := qt.leafPivot[int(n)*t.dim : (int(n)+1)*t.dim]
	dCent := vec.DistEntry(pv, q.Center)
	switch tier {
	case TierF32:
		return vec.SelectLeafSphereF32(sel, qt.iPivotHi32[is:ie], qt.iSR32[is:ie], dCent,
			qt.iCen32[lo:hi], q.Center, q.Radius, dk)
	case TierI8:
		return vec.SelectLeafSphereI8(sel, qt.iPivotHi32[is:ie], qt.iSR8[is:ie], dCent,
			qt.iCen8[lo:hi], qt.iScale[n], qt.iOffset[n], q.Center, q.Radius, dk)
	default:
		panic("packed: LeafQuantSelect with TierNone")
	}
}

// ChildMinDistAt computes the exact mindist of internal node n's i-th
// child entry — bit-identical to entry i of a ChildMinDists pass. The
// two-phase traversal calls it for the survivors of the coarse pass.
func (t *Tree) ChildMinDistAt(n int32, i int32, q geom.Sphere) float64 {
	e := t.childStart[n] + i
	lo, hi := e*int32(t.dim), (e+1)*int32(t.dim)
	if t.kind == KindRect {
		return vec.MinDistRectEntry(t.cLo[lo:hi], t.cHi[lo:hi], q.Center, q.Radius)
	}
	return vec.MinDistSphereEntry(t.cCenters[lo:hi], t.cRadii[e], q.Center, q.Radius)
}

// LeafDistAt computes the exact center distance of leaf n's i-th item —
// bit-identical to entry i of a LeafDists pass.
func (t *Tree) LeafDistAt(n int32, i int32, q []float64) float64 {
	e := t.itemStart[n] + i
	return vec.DistEntry(t.iCenters[e*int32(t.dim):(e+1)*int32(t.dim)], q)
}
