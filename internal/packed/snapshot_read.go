package packed

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"time"

	"hyperdom/internal/geom"
	"hyperdom/internal/obs"
)

// header is the parsed, bounds-checked fixed header plus section table.
// Counts are widened to int64 so all downstream size arithmetic is
// overflow-free under the maxSnap* caps.
type header struct {
	kind      Kind
	substrate Substrate
	dim       int64
	nodes     int64
	children  int64
	items     int64
	root      int32
	rootRad   float64
	secs      []secEntry
}

type secEntry struct {
	id  uint32
	crc uint32
	off uint64
	ln  uint64
}

// parseHeader validates everything that can be validated before touching a
// single payload byte: magic, version, header CRC, field caps, and a
// section table whose entries are strictly ascending by id, 64-byte
// aligned, non-overlapping and inside the file. After it returns, every
// secs[i] byte range is safe to slice out of data.
func parseHeader(data []byte) (*header, error) {
	le := binary.LittleEndian
	if len(data) < fixedHdrLen {
		return nil, fmt.Errorf("%w: %d bytes, header needs %d", ErrTruncated, len(data), fixedHdrLen)
	}
	switch string(data[:8]) {
	case magicLE:
	case magicBE:
		return nil, fmt.Errorf("%w: big-endian snapshot; re-freeze and save on a little-endian host (v%d writes little-endian only)",
			ErrIncompatible, FormatVersion)
	default:
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadMagic, data[:8])
	}
	if v := le.Uint32(data[8:]); v != FormatVersion {
		return nil, fmt.Errorf("%w: file is format v%d, this build reads v%d — rebuild the snapshot with a matching hyperdom build (datagen -freeze or hyperdomd build-and-save)",
			ErrBadVersion, v, FormatVersion)
	}
	hdrLen := int64(le.Uint32(data[16:]))
	nsec := int64(le.Uint32(data[44:]))
	if hdrLen != fixedHdrLen+secEntryLen*nsec || hdrLen > int64(len(data)) {
		return nil, fmt.Errorf("%w: header length %d inconsistent with %d sections in a %d-byte file",
			ErrCorrupt, hdrLen, nsec, len(data))
	}
	// The stored CRC is defined over the header bytes with its own field
	// zeroed; fold the three spans instead of copying.
	crc := crc32.Update(0, castagnoli, data[:12])
	crc = crc32.Update(crc, castagnoli, []byte{0, 0, 0, 0})
	crc = crc32.Update(crc, castagnoli, data[16:hdrLen])
	if got := le.Uint32(data[12:]); got != crc {
		noteChecksumFailure()
		return nil, fmt.Errorf("%w: header CRC %08x, computed %08x", ErrChecksum, got, crc)
	}

	h := &header{
		dim:      int64(le.Uint32(data[20:])),
		nodes:    int64(le.Uint32(data[24:])),
		children: int64(le.Uint32(data[28:])),
		items:    int64(le.Uint32(data[32:])),
		root:     int32(le.Uint32(data[36:])),
		rootRad:  math.Float64frombits(le.Uint64(data[48:])),
	}
	h.kind = Kind(data[40])
	h.substrate = Substrate(data[41])
	if h.kind != KindSphere && h.kind != KindRect {
		return nil, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, data[40])
	}
	if h.substrate > SubstrateRTree {
		return nil, fmt.Errorf("%w: unknown substrate %d", ErrCorrupt, data[41])
	}
	if tiers := data[42]; tiers != tiersBoth {
		return nil, fmt.Errorf("%w: quant tier mask %#x, this build serves snapshots carrying both tiers (%#x) — re-freeze with a matching build",
			ErrIncompatible, tiers, tiersBoth)
	}
	if flags := data[43]; flags != 0 {
		return nil, fmt.Errorf("%w: unknown flags %#x — written by a newer build; upgrade this reader or re-freeze", ErrIncompatible, flags)
	}
	if h.dim < 1 || h.dim > maxSnapDim {
		return nil, fmt.Errorf("%w: dimensionality %d outside [1, %d]", ErrCorrupt, h.dim, maxSnapDim)
	}
	if h.nodes > maxSnapCount || h.children > maxSnapCount || h.items > maxSnapCount {
		return nil, fmt.Errorf("%w: counts nodes=%d children=%d items=%d exceed the int32 id space",
			ErrCorrupt, h.nodes, h.children, h.items)
	}
	if h.root < -1 || int64(h.root) >= h.nodes {
		return nil, fmt.Errorf("%w: root %d of %d nodes", ErrCorrupt, h.root, h.nodes)
	}
	if h.root < 0 && (h.nodes != 0 || h.items != 0) {
		return nil, fmt.Errorf("%w: rootless snapshot with %d nodes, %d items", ErrCorrupt, h.nodes, h.items)
	}
	// The freeze-time conservatism margins must match this build's
	// compiled-in constants bit-for-bit: the coarse kernels subtract
	// exactly these margins, so a snapshot frozen with smaller ones could
	// make them prune items the exact path would keep.
	slackRel := math.Float64frombits(le.Uint64(data[56:]))
	pivotRel := math.Float64frombits(le.Uint64(data[64:]))
	if slackRel != slackRelParam || pivotRel != pivotRelParam {
		return nil, fmt.Errorf("%w: quant-slack margins slackRel=%g pivotRel=%g, this build requires slackRel=%g pivotRel=%g — re-freeze with a matching build",
			ErrIncompatible, slackRel, pivotRel, slackRelParam, pivotRelParam)
	}

	h.secs = make([]secEntry, nsec)
	prevEnd := uint64(align64(hdrLen))
	prevID := uint32(0)
	for i := range h.secs {
		e := data[fixedHdrLen+i*secEntryLen:]
		s := secEntry{
			id:  le.Uint32(e[0:]),
			crc: le.Uint32(e[4:]),
			off: le.Uint64(e[8:]),
			ln:  le.Uint64(e[16:]),
		}
		if s.id <= prevID {
			return nil, fmt.Errorf("%w: section ids not strictly ascending at entry %d (id %d)", ErrCorrupt, i, s.id)
		}
		if s.off%secAlign != 0 || s.off < prevEnd {
			return nil, fmt.Errorf("%w: section %d at offset %d (previous end %d)", ErrCorrupt, s.id, s.off, prevEnd)
		}
		if s.ln > uint64(len(data)) || s.off > uint64(len(data))-s.ln {
			return nil, fmt.Errorf("%w: section %d spans [%d, %d+%d) beyond the %d-byte file",
				ErrTruncated, s.id, s.off, s.off, s.ln, len(data))
		}
		prevEnd, prevID = s.off+s.ln, s.id
		h.secs[i] = s
	}
	return h, nil
}

// decodeTree turns snapshot bytes into a servable Tree. zeroCopy points
// the Tree's slices into data (mmap path; data must outlive the Tree);
// otherwise every block is copied out. verify additionally checks every
// section's CRC — always on for the copy paths, opt-in for mmap so
// opening does not force the whole file resident.
func decodeTree(data []byte, zeroCopy, verify bool) (*Tree, error) {
	h, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	sections := make(map[uint32][]byte, len(h.secs))
	for _, e := range h.secs {
		b := data[e.off : e.off+e.ln]
		if verify {
			if got := crc32.Checksum(b, castagnoli); got != e.crc {
				noteChecksumFailure()
				return nil, fmt.Errorf("%w: section %d CRC %08x, computed %08x", ErrChecksum, e.id, e.crc, got)
			}
		}
		sections[e.id] = b
	}

	t := &Tree{
		kind:       h.kind,
		dim:        int(h.dim),
		root:       h.root,
		substrate:  h.substrate,
		rootRadius: h.rootRad,
	}
	q := &t.quant
	var itemIDs []int64
	for _, sp := range secSpecs(h.kind, h.dim, h.nodes, h.children, h.items, h.root) {
		b, present := sections[sp.id]
		if sp.n == 0 {
			if present {
				return nil, fmt.Errorf("%w: unexpected section %d", ErrCorrupt, sp.id)
			}
			continue
		}
		if !present {
			return nil, fmt.Errorf("%w: missing section %d (%d bytes expected)", ErrTruncated, sp.id, sp.n*sp.elem)
		}
		if int64(len(b)) != sp.n*sp.elem {
			return nil, fmt.Errorf("%w: section %d holds %d bytes, header implies %d", ErrCorrupt, sp.id, len(b), sp.n*sp.elem)
		}
		delete(sections, sp.id)
		switch sp.id {
		case secLeaf:
			for i, v := range b {
				if v > 1 {
					return nil, fmt.Errorf("%w: leaf flag %d at node %d", ErrCorrupt, v, i)
				}
			}
			t.leaf = decodeSlice[bool](b, zeroCopy)
		case secChildStart:
			t.childStart = decodeSlice[int32](b, zeroCopy)
		case secItemStart:
			t.itemStart = decodeSlice[int32](b, zeroCopy)
		case secChild:
			t.child = decodeSlice[int32](b, zeroCopy)
		case secCCenters:
			t.cCenters = decodeSlice[float64](b, zeroCopy)
		case secCRadii:
			t.cRadii = decodeSlice[float64](b, zeroCopy)
		case secCLo:
			t.cLo = decodeSlice[float64](b, zeroCopy)
		case secCHi:
			t.cHi = decodeSlice[float64](b, zeroCopy)
		case secItemIDs:
			itemIDs = decodeSlice[int64](b, zeroCopy)
		case secICenters:
			t.iCenters = decodeSlice[float64](b, zeroCopy)
		case secIRadii:
			t.iRadii = decodeSlice[float64](b, zeroCopy)
		case secRootCenter:
			t.rootCenter = decodeSlice[float64](b, zeroCopy)
		case secRootLo:
			t.rootLo = decodeSlice[float64](b, zeroCopy)
		case secRootHi:
			t.rootHi = decodeSlice[float64](b, zeroCopy)
		case secQCCen32:
			q.cCen32 = decodeSlice[float32](b, zeroCopy)
		case secQCRad32:
			q.cRad32 = decodeSlice[float32](b, zeroCopy)
		case secQCSlack32:
			q.cSlack32 = decodeSlice[float32](b, zeroCopy)
		case secQCLo32:
			q.cLo32 = decodeSlice[float32](b, zeroCopy)
		case secQCHi32:
			q.cHi32 = decodeSlice[float32](b, zeroCopy)
		case secQCCen8:
			q.cCen8 = decodeSlice[int8](b, zeroCopy)
		case secQCRad8:
			q.cRad8 = decodeSlice[uint8](b, zeroCopy)
		case secQCSlack8:
			q.cSlack8 = decodeSlice[float32](b, zeroCopy)
		case secQCLo8:
			q.cLo8 = decodeSlice[int8](b, zeroCopy)
		case secQCHi8:
			q.cHi8 = decodeSlice[int8](b, zeroCopy)
		case secQCRectSlack8:
			q.cRectSlack8 = decodeSlice[float32](b, zeroCopy)
		case secQCScale:
			q.cScale = decodeSlice[float64](b, zeroCopy)
		case secQCOffset:
			q.cOffset = decodeSlice[float64](b, zeroCopy)
		case secQCRScale:
			q.cRScale = decodeSlice[float64](b, zeroCopy)
		case secQICen32:
			q.iCen32 = decodeSlice[float32](b, zeroCopy)
		case secQIRad32:
			q.iRad32 = decodeSlice[float32](b, zeroCopy)
		case secQISlack32:
			q.iSlack32 = decodeSlice[float32](b, zeroCopy)
		case secQICen8:
			q.iCen8 = decodeSlice[int8](b, zeroCopy)
		case secQIRad8:
			q.iRad8 = decodeSlice[uint8](b, zeroCopy)
		case secQISlack8:
			q.iSlack8 = decodeSlice[float32](b, zeroCopy)
		case secQIScale:
			q.iScale = decodeSlice[float64](b, zeroCopy)
		case secQIOffset:
			q.iOffset = decodeSlice[float64](b, zeroCopy)
		case secQIRScale:
			q.iRScale = decodeSlice[float64](b, zeroCopy)
		case secLeafPivot:
			q.leafPivot = decodeSlice[float64](b, zeroCopy)
		case secIPivotHi32:
			q.iPivotHi32 = decodeSlice[float32](b, zeroCopy)
		case secISR32:
			q.iSR32 = decodeSlice[float32](b, zeroCopy)
		case secISR8:
			q.iSR8 = decodeSlice[float32](b, zeroCopy)
		}
	}
	if len(sections) > 0 {
		for id := range sections {
			return nil, fmt.Errorf("%w: unknown section id %d", ErrCorrupt, id)
		}
	}
	if err := t.validateStructure(h); err != nil {
		return nil, err
	}

	// Rebuild the []geom.Item view. The struct slice itself is the one
	// block that cannot live in the file (it holds Go slice headers), but
	// each Center points into iCenters — zero-copy on the mmap path — so
	// the per-item heap cost is the ~40-byte struct, not the coordinates.
	t.items = make([]geom.Item, h.items)
	dim := t.dim
	for i := range t.items {
		t.items[i] = geom.Item{
			Sphere: geom.Sphere{
				Center: t.iCenters[i*dim : (i+1)*dim : (i+1)*dim],
				Radius: t.iRadii[i],
			},
			ID: int(itemIDs[i]),
		}
	}
	return t, nil
}

// validateStructure checks the decoded arrays describe a well-formed
// forest before any traversal touches them: exact prefix-array shape, and
// the builder's bottom-up id invariant child[e] < parent — which makes
// cycles impossible (ids strictly decrease along any path) and bounds
// every child id in one comparison.
func (t *Tree) validateStructure(h *header) error {
	cs, is := t.childStart, t.itemStart
	if cs[0] != 0 || is[0] != 0 {
		return fmt.Errorf("%w: prefix arrays start at %d/%d", ErrCorrupt, cs[0], is[0])
	}
	if int64(cs[h.nodes]) != h.children || int64(is[h.nodes]) != h.items {
		return fmt.Errorf("%w: prefix arrays end at %d/%d, header says %d children, %d items",
			ErrCorrupt, cs[h.nodes], is[h.nodes], h.children, h.items)
	}
	for n := int64(0); n < h.nodes; n++ {
		if cs[n+1] < cs[n] || is[n+1] < is[n] {
			return fmt.Errorf("%w: prefix array decreases at node %d", ErrCorrupt, n)
		}
		if t.leaf[n] {
			if cs[n+1] != cs[n] {
				return fmt.Errorf("%w: leaf %d has children", ErrCorrupt, n)
			}
		} else if is[n+1] != is[n] {
			return fmt.Errorf("%w: internal node %d has items", ErrCorrupt, n)
		}
		for _, c := range t.child[cs[n]:cs[n+1]] {
			if c < 0 || int64(c) >= n {
				return fmt.Errorf("%w: node %d references child %d (bottom-up ids require 0 <= child < parent)",
					ErrCorrupt, n, c)
			}
		}
	}
	return nil
}

func noteChecksumFailure() {
	if obs.On() {
		obsSnapCRCFail.Inc()
	}
}

// Snapshot is a Tree loaded from a snapshot file together with the
// resources backing it. Mmap-backed snapshots alias the mapping: the Tree
// (and anything still holding its slices — including result Items, whose
// Centers point into the mapping) must not be used after Close. Copy-path
// snapshots own their memory and Close is a no-op.
type Snapshot struct {
	Tree *Tree

	mapped []byte
	size   int64
}

// Mapped reports whether the snapshot is mmap-backed (zero-copy).
func (s *Snapshot) Mapped() bool { return s.mapped != nil }

// SizeBytes returns the snapshot file's size.
func (s *Snapshot) SizeBytes() int64 { return s.size }

// Close releases the mapping, if any. Idempotent; not safe to race with
// searches over the snapshot's Tree.
func (s *Snapshot) Close() error {
	if s.mapped == nil {
		return nil
	}
	m := s.mapped
	s.mapped = nil
	return munmap(m)
}

type openConfig struct {
	verify bool
	noMmap bool
}

// OpenOption configures Open.
type OpenOption func(*openConfig)

// VerifyChecksums makes Open verify every section CRC, forcing the whole
// file resident. The copy paths (Load, OpenBytes) always verify.
func VerifyChecksums() OpenOption { return func(c *openConfig) { c.verify = true } }

// NoMmap forces the copying load path even where mmap is available.
func NoMmap() OpenOption { return func(c *openConfig) { c.noMmap = true } }

// Open loads a snapshot file, zero-copy via mmap where the platform
// supports it (falling back to a verified copy load otherwise). The
// header is CRC-checked and the structure fully validated either way;
// section payload CRCs are verified only with VerifyChecksums, so an open
// faults in the metadata pages and leaves the payload to the page cache.
func Open(path string, opts ...OpenOption) (*Snapshot, error) {
	var cfg openConfig
	for _, o := range opts {
		o(&cfg)
	}
	start := time.Now()
	if mmapSupported && !cfg.noMmap {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		st, err := f.Stat()
		if err != nil {
			return nil, err
		}
		if st.Size() < fixedHdrLen {
			return nil, fmt.Errorf("%w: %s is %d bytes", ErrTruncated, path, st.Size())
		}
		m, err := mmapFile(f, st.Size())
		if err == nil {
			t, derr := decodeTree(m, true, cfg.verify)
			if derr != nil {
				munmap(m)
				return nil, fmt.Errorf("%s: %w", path, derr)
			}
			s := &Snapshot{Tree: t, mapped: m, size: st.Size()}
			noteOpen(s, start)
			return s, nil
		}
		// mmap itself failed (e.g. a filesystem without mapping support):
		// fall through to the copy path.
	}
	s, err := Load(path)
	if err != nil {
		return nil, err
	}
	noteOpen(s, start)
	return s, nil
}

// Load reads a snapshot file through the portable copy path: every block
// is copied to the heap and every CRC verified. The returned Snapshot
// owns its memory; Close is a no-op.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	t, err := OpenBytes(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &Snapshot{Tree: t, size: int64(len(data))}, nil
}

// OpenBytes decodes a snapshot from bytes through the copy path with full
// CRC verification — the entry point FuzzSnapshotOpen drives. The
// returned Tree does not alias data.
func OpenBytes(data []byte) (*Tree, error) {
	return decodeTree(data, false, true)
}

func noteOpen(s *Snapshot, start time.Time) {
	if !obs.On() {
		return
	}
	obsSnapOpened.Inc()
	if s.Mapped() {
		obsSnapMapped.Add(uint64(s.size))
	}
	histSnapLoad.RecordDuration(time.Since(start))
}
