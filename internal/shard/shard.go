// Package shard is the sharded scatter-gather serving layer (DESIGN.md
// §13): it carves one hypersphere dataset into N space-partitioned shards,
// each owning a frozen packed snapshot searched by its own internal/engine
// worker pool, and answers the paper's Definition 2 kNN query by
// broadcasting it to every shard and merging the per-shard candidate
// streams under the global Sk.
//
// Two properties make the distribution invisible to callers:
//
//   - Shards return RAW candidate streams (knn.SearchCandidates), not
//     filtered answers. Definition 2 filters against the GLOBAL Sk, which
//     no single shard knows, and dominance is not monotone in MaxDist — an
//     item dominated by a shard-local Sk need not be dominated by the
//     closer global one. The merge layer computes Sk over the union and
//     applies the one final filter, so the result set is bit-identical to
//     a single-index search over the same data (test-locked for every
//     substrate × traversal × quantization tier).
//
//   - distK pushdown: all shards of a query share one knn.Bound. Each
//     shard publishes its running local distK into it, the merge layer
//     publishes the running global distK as candidate streams arrive, and
//     laggard shards read the bound at node-prune decisions — a shard that
//     has already found k close candidates prunes the others' traversals.
//     Every value in the bound is a k-th smallest MaxDist over a subset of
//     the data, hence ≥ the final global distK, so pushdown prunes only
//     items the final global Sk provably dominates (Lemma 9).
package shard

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync/atomic"

	"hyperdom/internal/dominance"
	"hyperdom/internal/engine"
	"hyperdom/internal/geom"
	"hyperdom/internal/knn"
	"hyperdom/internal/mtree"
	"hyperdom/internal/obs"
	"hyperdom/internal/packed"
	"hyperdom/internal/rtree"
	"hyperdom/internal/sstree"
)

// Options configures BuildSharded.
type Options struct {
	// Shards is the shard count; ≤ 0 selects 1 (a single shard, which
	// degenerates to a pooled single-index search).
	Shards int
	// WorkersPerShard sizes each shard's engine pool; ≤ 0 selects
	// ceil(GOMAXPROCS / Shards), at least 1, so the fleet's total worker
	// count roughly matches the machine.
	WorkersPerShard int
	// Substrate selects the per-shard index: "sstree" (default), "mtree"
	// or "rtree".
	Substrate string
	// MaxFill is the substrate node capacity; ≤ 0 selects the default.
	MaxFill int
	// Criterion is the dominance criterion (nil selects Hyperbola, the
	// exact one). Bit-identity with a single-index search is guaranteed
	// for sound criteria (Hyperbola, Exact); for heuristic criteria both
	// layouts return supersets of the truth that may differ.
	Criterion dominance.Criterion
	// Algorithm is the per-shard traversal strategy. The zero value is DF;
	// servers typically select knn.HS.
	Algorithm knn.Algorithm
	// DisablePushdown turns off cross-shard distK pushdown. Results are
	// identical either way; with pushdown off the per-shard traversals —
	// and therefore the aggregate Stats — are deterministic.
	DisablePushdown bool
	// SampleSize bounds how many item centers the planner inspects per
	// split when picking the cut dimension; ≤ 0 selects 1024.
	SampleSize int
	// Label names this index in the obs exposition: the per-collection
	// `collection="..."` label of the hyperdom_shard_* latency families.
	// Empty selects "default".
	Label string
}

func (o *Options) fill() {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.WorkersPerShard <= 0 {
		o.WorkersPerShard = (runtime.GOMAXPROCS(0) + o.Shards - 1) / o.Shards
		if o.WorkersPerShard < 1 {
			o.WorkersPerShard = 1
		}
	}
	if o.Substrate == "" {
		o.Substrate = "sstree"
	}
	if o.Criterion == nil {
		o.Criterion = dominance.Hyperbola{}
	}
	if o.SampleSize <= 0 {
		o.SampleSize = 1024
	}
	if o.Label == "" {
		o.Label = "default"
	}
}

// shardState is one shard: its index (frozen when non-empty), the engine
// pool that searches it, and — when the shard was built in this process —
// the packed snapshot backing the frozen index, which SaveDir persists.
type shardState struct {
	idx  knn.Index
	eng  *engine.Engine
	n    int
	snap *packed.Tree
}

// Index is a sharded scatter-gather kNN index. Build with Build; Close
// releases the worker pools. Search is safe for concurrent use; Close must
// happen-after every search.
type Index struct {
	opts   Options
	dim    int
	n      int
	shards []shardState

	// plan is the partition planner's split tree: how space was cut into
	// shards. SaveDir persists it in the manifest so routing context
	// survives reload; OpenDir restores it.
	plan *PlanNode

	// snaps holds the mmap-backed snapshots of an OpenDir index; Close
	// unmaps them after stopping the engines that search them.
	snaps []*packed.Snapshot

	// Per-collection latency families, resolved once at build.
	histSearch *obs.Histogram
	histMerge  *obs.Histogram

	// scatterCands tallies, per shard, the candidates its streams have
	// contributed since build (one atomic add per shard per query, in the
	// gather loop). The shard.candidate_imbalance{collection=...} callback
	// gauge reads them: max over mean of the per-shard totals, 1.0 when the
	// partitioning spreads query load evenly, growing as one shard turns
	// hot. 0 before any query.
	scatterCands   []atomic.Uint64
	unregisterImbl func()
}

// Build partitions items into opts.Shards space-partitioned shards and
// starts an engine pool per shard. The items slice is not retained; dim is
// the dimensionality every item (and every query) must have.
func Build(items []geom.Item, dim int, opts Options) (*Index, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("shard: dim = %d", dim)
	}
	opts.fill()
	switch opts.Substrate {
	case "sstree", "mtree", "rtree":
	default:
		return nil, fmt.Errorf("shard: unknown substrate %q", opts.Substrate)
	}
	x := &Index{
		opts:       opts,
		dim:        dim,
		n:          len(items),
		histSearch: obs.GetOrNewHistogram("shard.search_latency", `collection="`+opts.Label+`"`),
		histMerge:  obs.GetOrNewHistogram("shard.merge_latency", `collection="`+opts.Label+`"`),
	}
	parts, plan := partition(items, dim, opts.Shards, opts.SampleSize)
	x.plan = plan
	x.shards = make([]shardState, len(parts))
	for i, part := range parts {
		idx, snap, err := buildTree(opts.Substrate, part, dim, opts.MaxFill)
		if err != nil {
			for j := 0; j < i; j++ {
				x.shards[j].eng.Close()
			}
			return nil, err
		}
		x.shards[i] = shardState{
			idx:  idx,
			n:    len(part),
			snap: snap,
			eng: engine.New(idx,
				engine.WithWorkers(opts.WorkersPerShard),
				engine.WithCriterion(opts.Criterion),
				engine.WithAlgorithm(opts.Algorithm)),
		}
	}
	x.scatterCands = make([]atomic.Uint64, len(x.shards))
	x.unregisterImbl = obs.RegisterGaugeFunc("shard.candidate_imbalance",
		`collection="`+opts.Label+`"`, x.candidateImbalance)
	if obs.On() {
		obsIndexes.Inc()
		obsShards.Add(uint64(len(parts)))
	}
	return x, nil
}

// candidateImbalance is the shard.candidate_imbalance callback: the
// busiest shard's cumulative candidate contribution over the per-shard
// mean. 1.0 means perfectly balanced scatter traffic; k·N/total shards
// pathological. 0 before the first query.
func (x *Index) candidateImbalance() float64 {
	if len(x.scatterCands) == 0 {
		return 0
	}
	var max, total uint64
	for i := range x.scatterCands {
		c := x.scatterCands[i].Load()
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(x.scatterCands))
	return float64(max) / mean
}

// buildTree constructs, fills and freezes one shard's substrate, returning
// the adapter plus the frozen snapshot SaveDir persists (an empty shard
// freezes to an explicit empty snapshot, so a saved directory always has
// one file per shard).
func buildTree(substrate string, items []geom.Item, dim, maxFill int) (knn.Index, *packed.Tree, error) {
	switch substrate {
	case "sstree":
		var t *sstree.Tree
		if maxFill > 0 {
			t = sstree.New(dim, sstree.WithMaxFill(maxFill))
		} else {
			t = sstree.New(dim)
		}
		for _, it := range items {
			t.Insert(it)
		}
		return knn.WrapSSTree(t), t.Freeze(), nil
	case "mtree":
		var t *mtree.Tree
		if maxFill > 0 {
			t = mtree.New(dim, mtree.WithMaxFill(maxFill))
		} else {
			t = mtree.New(dim)
		}
		for _, it := range items {
			t.Insert(it)
		}
		return knn.WrapMTree(t), t.Freeze(), nil
	case "rtree":
		var t *rtree.Tree
		if maxFill > 0 {
			t = rtree.New(dim, rtree.WithMaxFill(maxFill))
		} else {
			t = rtree.New(dim)
		}
		for _, it := range items {
			t.Insert(it)
		}
		return knn.WrapRTree(t), t.Freeze(), nil
	}
	return nil, nil, fmt.Errorf("shard: unknown substrate %q", substrate)
}

// Shards returns the shard count.
func (x *Index) Shards() int { return len(x.shards) }

// Len returns the total item count.
func (x *Index) Len() int { return x.n }

// Dim returns the dimensionality.
func (x *Index) Dim() int { return x.dim }

// Label returns the collection label of the metrics exposition.
func (x *Index) Label() string { return x.opts.Label }

// ShardSizes returns the per-shard item counts, in shard order.
func (x *Index) ShardSizes() []int {
	out := make([]int, len(x.shards))
	for i := range x.shards {
		out[i] = x.shards[i].n
	}
	return out
}

// Close stops every shard's worker pool, then releases any snapshot
// mappings behind an OpenDir index — strictly in that order, because a
// worker still draining a search must not touch an unmapped page. Safe to
// call more than once.
func (x *Index) Close() {
	if x.unregisterImbl != nil {
		x.unregisterImbl()
		x.unregisterImbl = nil
	}
	for i := range x.shards {
		x.shards[i].eng.Close()
	}
	for _, s := range x.snaps {
		s.Close()
	}
	x.snaps = nil
}

// PlanNode is one node of the partition planner's split tree. An internal
// node records the cut: items whose center[Dim] orders before Cut went
// left, the rest right (ties broken by ID at plan time). A node with nil
// Left/Right is a leaf owning shard Shard. SaveDir persists the tree in
// the manifest — the partitioning is a property of the corpus, and a
// reloaded index must keep serving (and later route inserts) under the
// same plan rather than re-derive a different one.
type PlanNode struct {
	Dim   int       `json:"dim,omitempty"`
	Cut   float64   `json:"cut,omitempty"`
	Shard int       `json:"shard"`
	Left  *PlanNode `json:"left,omitempty"`
	Right *PlanNode `json:"right,omitempty"`
}

// Plan returns the partition planner's split tree (nil only for indexes
// predating plan capture).
func (x *Index) Plan() *PlanNode { return x.plan }

// partition splits items into n space-partitioned groups of near-equal
// size: recursively pick the widest center dimension from a stride sample,
// sort by (center[dim], ID) and cut proportionally to the shard counts on
// each side. Deterministic for a given input order, and every group is a
// contiguous region of space, so a query's candidates concentrate in few
// shards and the others prune fast off the pushdown bound. The returned
// plan tree records every cut, leaves numbered in shard order.
func partition(items []geom.Item, dim, n, sampleSize int) ([][]geom.Item, *PlanNode) {
	work := make([]geom.Item, len(items))
	copy(work, items)
	out := make([][]geom.Item, 0, n)
	var split func(part []geom.Item, n int) *PlanNode
	split = func(part []geom.Item, n int) *PlanNode {
		if n == 1 {
			out = append(out, part)
			return &PlanNode{Shard: len(out) - 1}
		}
		d := widestDim(part, dim, sampleSize)
		sort.Slice(part, func(a, b int) bool {
			ca, cb := part[a].Sphere.Center[d], part[b].Sphere.Center[d]
			if ca != cb {
				return ca < cb
			}
			return part[a].ID < part[b].ID
		})
		n1 := (n + 1) / 2
		cut := len(part) * n1 / n
		// The boundary is the first right-side center value (the last value
		// overall when everything went left — degenerate tiny parts).
		var boundary float64
		switch {
		case cut < len(part):
			boundary = part[cut].Sphere.Center[d]
		case len(part) > 0:
			boundary = part[len(part)-1].Sphere.Center[d]
		}
		node := &PlanNode{Dim: d, Cut: boundary}
		node.Left = split(part[:cut], n1)
		node.Right = split(part[cut:], n-n1)
		return node
	}
	plan := split(work, n)
	return out, plan
}

// widestDim picks the center dimension with the widest spread over a
// stride sample of at most sampleSize items.
func widestDim(items []geom.Item, dim, sampleSize int) int {
	if len(items) == 0 {
		return 0
	}
	stride := 1
	if len(items) > sampleSize {
		stride = (len(items) + sampleSize - 1) / sampleSize
	}
	best, bestSpread := 0, math.Inf(-1)
	for d := 0; d < dim; d++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < len(items); i += stride {
			c := items[i].Sphere.Center[d]
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		if spread := hi - lo; spread > bestSpread {
			best, bestSpread = d, spread
		}
	}
	return best
}
