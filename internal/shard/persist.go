package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"hyperdom/internal/dominance"
	"hyperdom/internal/engine"
	"hyperdom/internal/knn"
	"hyperdom/internal/obs"
	"hyperdom/internal/packed"
)

// ManifestName is the directory-level metadata file SaveDir writes next to
// the per-shard snapshot files.
const ManifestName = "manifest.json"

// manifestFormat versions the manifest schema, independently of the packed
// snapshot format the shard files carry (which versions itself).
const manifestFormat = 1

// manifest is the JSON sidecar tying a directory of shard snapshots back
// into one sharded index: which file is which shard, how the space was cut
// (the partition plan), and the build parameters a reload must match.
type manifest struct {
	Format    int             `json:"format"`
	Substrate string          `json:"substrate"`
	Dim       int             `json:"dim"`
	Items     int             `json:"items"`
	MaxFill   int             `json:"max_fill,omitempty"`
	Shards    []manifestShard `json:"shards"`
	Plan      *PlanNode       `json:"plan,omitempty"`
}

type manifestShard struct {
	File  string `json:"file"`
	Items int    `json:"items"`
}

// shardFileName names shard i's snapshot inside a SaveDir directory.
func shardFileName(i int) string { return fmt.Sprintf("shard-%04d.hds", i) }

// SaveDir persists the index into dir: one packed snapshot per shard
// (shard-0000.hds, shard-0001.hds, ...) plus a manifest.json carrying the
// substrate, dimensionality, per-shard item counts and the partition
// planner's split tree. Each file is written atomically (temp file +
// fsync + rename, directory fsynced), so a crash mid-save never leaves a
// half-written file under the final name; the manifest is written last, so
// a directory with a manifest always has all its shard files. dir is
// created if missing. The index stays fully serveable throughout.
func (x *Index) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("shard: save: %w", err)
	}
	m := manifest{
		Format:    manifestFormat,
		Substrate: x.opts.Substrate,
		Dim:       x.dim,
		Items:     x.n,
		MaxFill:   x.opts.MaxFill,
		Shards:    make([]manifestShard, len(x.shards)),
		Plan:      x.plan,
	}
	for i := range x.shards {
		snap := x.shards[i].snap
		if snap == nil {
			return fmt.Errorf("shard: save: shard %d has no snapshot (index not built in this process?)", i)
		}
		name := shardFileName(i)
		if err := snap.Save(filepath.Join(dir, name)); err != nil {
			return fmt.Errorf("shard: save shard %d: %w", i, err)
		}
		m.Shards[i] = manifestShard{File: name, Items: x.shards[i].n}
	}
	return writeManifest(dir, &m)
}

// writeManifest writes manifest.json with the same atomic temp+rename+
// fsync discipline as the snapshot files.
func writeManifest(dir string, m *manifest) (err error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("shard: encode manifest: %w", err)
	}
	data = append(data, '\n')
	f, err := os.CreateTemp(dir, ".manifest-*.tmp")
	if err != nil {
		return fmt.Errorf("shard: save manifest: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if _, err = f.Write(data); err != nil {
		return fmt.Errorf("shard: save manifest: %w", err)
	}
	if err = f.Chmod(0o644); err != nil {
		return fmt.Errorf("shard: save manifest: %w", err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("shard: save manifest: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("shard: save manifest: %w", err)
	}
	if err = os.Rename(tmp, filepath.Join(dir, ManifestName)); err != nil {
		return fmt.Errorf("shard: save manifest: %w", err)
	}
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// OpenOptions configures OpenDir. The structural build parameters
// (substrate, dimensionality, shard count, max fill) come from the
// manifest, not from here — a loaded index must match what was saved.
type OpenOptions struct {
	// WorkersPerShard, Criterion, Algorithm, DisablePushdown and Label act
	// exactly as in Options; zero values select the same defaults.
	WorkersPerShard int
	Criterion       dominance.Criterion
	Algorithm       knn.Algorithm
	DisablePushdown bool
	Label           string
	// Verify forces a full checksum pass over every section of every shard
	// file at open (packed.VerifyChecksums). Off by default on the mmap
	// path, where eager verification would fault in every page and forfeit
	// the lazy-load win; corruption is still caught structurally at open
	// and the header is always checksum-verified.
	Verify bool
	// NoMmap forces the copying load path even where mmap is available.
	NoMmap bool
}

// OpenDir loads a SaveDir directory into a serving index: the manifest is
// read and validated, every shard snapshot is opened zero-copy (mmap where
// the platform supports it, with an automatic copying fallback), and an
// engine pool is started per shard. No tree is rebuilt and no item is
// copied on the mmap path — restart-to-ready is bounded by open+validate,
// not by BulkLoad+Freeze. The returned index answers Search bit-identically
// to the index that was saved. Close unmaps the snapshots; callers must
// keep the index (not just its results) alive while results' Center slices
// are in use, as those alias the mapping.
func OpenDir(dir string, opts OpenOptions) (*Index, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("shard: open %s: %w", dir, err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("shard: open %s: bad manifest: %w", dir, err)
	}
	if m.Format != manifestFormat {
		return nil, fmt.Errorf("shard: open %s: manifest format %d, this build reads %d — rebuild the snapshot directory",
			dir, m.Format, manifestFormat)
	}
	switch m.Substrate {
	case "sstree", "mtree", "rtree":
	default:
		return nil, fmt.Errorf("shard: open %s: unknown substrate %q in manifest", dir, m.Substrate)
	}
	if m.Dim <= 0 || len(m.Shards) == 0 {
		return nil, fmt.Errorf("shard: open %s: manifest dim=%d shards=%d", dir, m.Dim, len(m.Shards))
	}
	wantSub := packed.SubstrateFromString(m.Substrate)

	bopts := Options{
		Shards:          len(m.Shards),
		WorkersPerShard: opts.WorkersPerShard,
		Substrate:       m.Substrate,
		MaxFill:         m.MaxFill,
		Criterion:       opts.Criterion,
		Algorithm:       opts.Algorithm,
		DisablePushdown: opts.DisablePushdown,
		Label:           opts.Label,
	}
	bopts.fill()

	x := &Index{
		opts:       bopts,
		dim:        m.Dim,
		n:          0,
		histSearch: obs.GetOrNewHistogram("shard.search_latency", `collection="`+bopts.Label+`"`),
		histMerge:  obs.GetOrNewHistogram("shard.merge_latency", `collection="`+bopts.Label+`"`),
		plan:       m.Plan,
	}
	fail := func(err error) (*Index, error) {
		for i := range x.shards {
			if x.shards[i].eng != nil {
				x.shards[i].eng.Close()
			}
		}
		for _, s := range x.snaps {
			s.Close()
		}
		return nil, err
	}

	x.shards = make([]shardState, len(m.Shards))
	var popts []packed.OpenOption
	if opts.Verify {
		popts = append(popts, packed.VerifyChecksums())
	}
	if opts.NoMmap {
		popts = append(popts, packed.NoMmap())
	}
	for i, ms := range m.Shards {
		if ms.File == "" || filepath.Base(ms.File) != ms.File {
			return fail(fmt.Errorf("shard: open %s: manifest shard %d names non-local file %q", dir, i, ms.File))
		}
		snap, err := packed.Open(filepath.Join(dir, ms.File), popts...)
		if err != nil {
			return fail(fmt.Errorf("shard: open %s shard %d (%s): %w", dir, i, ms.File, err))
		}
		x.snaps = append(x.snaps, snap)
		t := snap.Tree
		if t.Dim() != m.Dim {
			return fail(fmt.Errorf("shard: open %s shard %d: dim %d, manifest says %d", dir, i, t.Dim(), m.Dim))
		}
		if got := t.Substrate(); got != wantSub && got != packed.SubstrateUnknown {
			return fail(fmt.Errorf("shard: open %s shard %d: substrate %v, manifest says %q", dir, i, got, m.Substrate))
		}
		if t.Len() != ms.Items {
			return fail(fmt.Errorf("shard: open %s shard %d: %d items, manifest says %d", dir, i, t.Len(), ms.Items))
		}
		idx := knn.WrapPacked(t)
		x.shards[i] = shardState{
			idx:  idx,
			n:    t.Len(),
			snap: t,
			eng: engine.New(idx,
				engine.WithWorkers(bopts.WorkersPerShard),
				engine.WithCriterion(bopts.Criterion),
				engine.WithAlgorithm(bopts.Algorithm)),
		}
		x.n += t.Len()
	}
	if m.Items != x.n {
		return fail(fmt.Errorf("shard: open %s: shards hold %d items, manifest says %d", dir, x.n, m.Items))
	}

	x.scatterCands = make([]atomic.Uint64, len(x.shards))
	x.unregisterImbl = obs.RegisterGaugeFunc("shard.candidate_imbalance",
		`collection="`+bopts.Label+`"`, x.candidateImbalance)
	if obs.On() {
		obsIndexes.Inc()
		obsShards.Add(uint64(len(x.shards)))
		// v1 snapshots always carry both narrow tiers; the info gauge makes
		// the running format/substrate visible per collection.
		obs.SetGauge("snapshot.info",
			fmt.Sprintf(`collection=%q,version="%d",substrate=%q,quant="f32+i8"`,
				bopts.Label, packed.FormatVersion, m.Substrate), 1)
	}
	return x, nil
}
