package shard

import (
	"math/rand"
	"sync"
	"testing"

	"hyperdom/internal/dominance"
	"hyperdom/internal/geom"
	"hyperdom/internal/knn"
	"hyperdom/internal/sstree"
)

func randItems(rng *rand.Rand, d, n int, maxR float64) []geom.Item {
	items := make([]geom.Item, n)
	for i := range items {
		c := make([]float64, d)
		for j := range c {
			c[j] = 100 + rng.NormFloat64()*25
		}
		items[i] = geom.Item{Sphere: geom.NewSphere(c, rng.Float64()*maxR), ID: i}
	}
	return items
}

func randQuery(rng *rand.Rand, d int, maxR float64) geom.Sphere {
	c := make([]float64, d)
	for j := range c {
		c[j] = 100 + rng.NormFloat64()*25
	}
	return geom.NewSphere(c, rng.Float64()*maxR)
}

// singleIndex builds one frozen SS-tree over all items — the oracle every
// sharded answer must match bit for bit.
func singleIndex(items []geom.Item, d int) knn.Index {
	t := sstree.New(d, sstree.WithMaxFill(16))
	for _, it := range items {
		t.Insert(it)
	}
	if len(items) > 0 {
		t.Freeze()
	}
	return knn.WrapSSTree(t)
}

func sameItems(t *testing.T, ctx string, got, want []geom.Item) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d items, want %d", ctx, len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID {
			t.Fatalf("%s: item %d has ID %d, want %d", ctx, i, got[i].ID, want[i].ID)
		}
	}
}

// TestShardedMatchesSingle locks the acceptance criterion of the
// scatter-gather layer: for every substrate, traversal strategy and
// quantization tier, the sharded result set is bit-identical (same IDs,
// same order) to a single-index search over the same data.
func TestShardedMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	const d, n = 3, 900
	items := randItems(rng, d, n, 3)
	oracle := singleIndex(items, d)
	defer knn.SetQuantMode(knn.SetQuantMode(knn.QuantF32)) // restore on exit
	for _, substrate := range []string{"sstree", "mtree", "rtree"} {
		for _, algo := range []knn.Algorithm{knn.DF, knn.HS} {
			for _, shards := range []int{2, 3, 5} {
				x, err := Build(items, d, Options{
					Shards:          shards,
					WorkersPerShard: 2,
					Substrate:       substrate,
					MaxFill:         16,
					Algorithm:       algo,
				})
				if err != nil {
					t.Fatal(err)
				}
				for _, quant := range []knn.QuantMode{knn.QuantNone, knn.QuantF32, knn.QuantI8} {
					knn.SetQuantMode(quant)
					for q := 0; q < 20; q++ {
						sq := randQuery(rng, d, 3)
						k := 1 + rng.Intn(15)
						want := knn.Search(oracle, sq, k, dominance.Hyperbola{}, algo)
						got := x.Search(sq, k)
						ctx := substrate + "/" + algo.String()
						sameItems(t, ctx, got.Items, want.Items)
						if got.K != k {
							t.Fatalf("%s: K = %d, want %d", ctx, got.K, k)
						}
					}
				}
				x.Close()
			}
		}
	}
}

// TestShardedStatsDeterministic pins that with pushdown disabled the
// aggregate Stats — per-shard traversal sums plus the merge layer's final
// filter — are identical across repeated runs of the same query.
func TestShardedStatsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	const d = 3
	items := randItems(rng, d, 600, 3)
	x, err := Build(items, d, Options{
		Shards:          4,
		Substrate:       "sstree",
		Algorithm:       knn.HS,
		DisablePushdown: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	for q := 0; q < 10; q++ {
		sq := randQuery(rng, d, 3)
		first := x.Search(sq, 7)
		for rep := 0; rep < 3; rep++ {
			again := x.Search(sq, 7)
			if again.Stats != first.Stats {
				t.Fatalf("query %d: stats %+v then %+v", q, first.Stats, again.Stats)
			}
			sameItems(t, "rerun", again.Items, first.Items)
		}
		if first.Stats.DomChecks == 0 && len(items) > 7 {
			t.Fatalf("query %d: merge filter ran no dominance checks", q)
		}
	}
}

// TestShardedSmallDatabases covers the degenerate shapes: empty dataset,
// fewer items than k, fewer items than shards.
func TestShardedSmallDatabases(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	const d = 2
	for _, n := range []int{0, 1, 3, 7} {
		items := randItems(rng, d, n, 2)
		x, err := Build(items, d, Options{Shards: 4, Algorithm: knn.HS})
		if err != nil {
			t.Fatal(err)
		}
		oracle := singleIndex(items, d)
		for q := 0; q < 5; q++ {
			sq := randQuery(rng, d, 2)
			k := 1 + rng.Intn(10)
			want := knn.Search(oracle, sq, k, dominance.Hyperbola{}, knn.HS)
			got := x.Search(sq, k)
			sameItems(t, "small", got.Items, want.Items)
		}
		x.Close()
	}
}

// TestPartitionBalance pins the planner's contract: shards differ in size
// by at most the rounding slack of the recursive proportional cuts, are
// disjoint, and cover every item.
func TestPartitionBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	for _, n := range []int{1, 10, 1000, 4096} {
		for _, shards := range []int{1, 2, 3, 7, 8} {
			items := randItems(rng, 4, n, 1)
			parts, plan := partition(items, 4, shards, 256)
			if plan == nil {
				t.Fatalf("n=%d shards=%d: nil plan", n, shards)
			}
			if len(parts) != shards {
				t.Fatalf("n=%d shards=%d: got %d parts", n, shards, len(parts))
			}
			seen := make(map[int]bool, n)
			lo, hi := n, 0
			for _, p := range parts {
				if len(p) < lo {
					lo = len(p)
				}
				if len(p) > hi {
					hi = len(p)
				}
				for _, it := range p {
					if seen[it.ID] {
						t.Fatalf("n=%d shards=%d: item %d in two shards", n, shards, it.ID)
					}
					seen[it.ID] = true
				}
			}
			if len(seen) != n {
				t.Fatalf("n=%d shards=%d: covered %d items", n, shards, len(seen))
			}
			if n >= shards && hi-lo > shards {
				t.Fatalf("n=%d shards=%d: shard sizes range [%d, %d]", n, shards, lo, hi)
			}
		}
	}
}

// TestShardedConcurrentQueries hammers one sharded index from many
// goroutines with pushdown enabled — under -race this is the detector run
// for the shared knn.Bound traffic — and checks every answer against the
// single-index oracle.
func TestShardedConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	const d, n = 3, 800
	items := randItems(rng, d, n, 3)
	oracle := singleIndex(items, d)
	x, err := Build(items, d, Options{Shards: 4, WorkersPerShard: 2, Algorithm: knn.HS})
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	type cq struct {
		sq geom.Sphere
		k  int
	}
	queries := make([]cq, 64)
	want := make([]knn.Result, len(queries))
	for i := range queries {
		queries[i] = cq{randQuery(rng, d, 3), 1 + rng.Intn(12)}
		want[i] = knn.Search(oracle, queries[i].sq, queries[i].k, dominance.Hyperbola{}, knn.HS)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(queries); i += 8 {
				got := x.Search(queries[i].sq, queries[i].k)
				if len(got.Items) != len(want[i].Items) {
					t.Errorf("query %d: %d items, want %d", i, len(got.Items), len(want[i].Items))
					return
				}
				for j := range got.Items {
					if got.Items[j].ID != want[i].Items[j].ID {
						t.Errorf("query %d: item %d mismatch", i, j)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestBuildRejectsBadOptions pins the Build validation surface.
func TestBuildRejectsBadOptions(t *testing.T) {
	if _, err := Build(nil, 0, Options{}); err == nil {
		t.Fatal("dim 0 accepted")
	}
	if _, err := Build(nil, 2, Options{Substrate: "btree"}); err == nil {
		t.Fatal("unknown substrate accepted")
	}
}
