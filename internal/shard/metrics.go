package shard

import "hyperdom/internal/obs"

// Package counters of the scatter-gather layer: exposed as
// hyperdom_shard_* in the /metrics exposition. The per-collection latency
// families (shard.search_latency, shard.merge_latency, labeled
// collection="...") are resolved per Index in Build.
var (
	// obsIndexes counts Build calls; obsShards the shards they started.
	obsIndexes = obs.New("shard.indexes_built")
	obsShards  = obs.New("shard.shards_started")
	// obsQueries counts scatter-gather searches; obsScatter the per-shard
	// candidate searches they fanned out to.
	obsQueries = obs.New("shard.queries")
	obsScatter = obs.New("shard.scatter_searches")
	// obsMergeCandidates counts candidates reaching the merge layer;
	// obsMergePruned the ones the final global-Sk filter discarded.
	obsMergeCandidates = obs.New("shard.merge_candidates")
	obsMergePruned     = obs.New("shard.merge_pruned")
)
