package shard

import (
	"math"
	"math/rand"
	"testing"
)

// TestSearchExplainMatchesSearch locks the tentpole acceptance criterion:
// SearchExplain's result set is bit-identical to Search over the same
// data, and the trace tree it returns is fully populated — one span per
// shard with the traversal's work and both sides of the distK pushdown,
// plus a merge span whose candidate count equals the per-shard sum.
func TestSearchExplainMatchesSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	const d, n, k = 3, 600, 7
	items := randItems(rng, d, n, 2)
	for _, shards := range []int{1, 2, 3} {
		x, err := Build(items, d, Options{Shards: shards, WorkersPerShard: 1})
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 20; q++ {
			sq := randQuery(rng, d, 1)
			plain := x.Search(sq, k)
			res, ex := x.SearchExplain(sq, k)
			sameItems(t, "explain vs plain", res.Items, plain.Items)

			if len(ex.Shards) != shards {
				t.Fatalf("%d shard spans, want %d", len(ex.Shards), shards)
			}
			nodes, scanned, cands := 0, 0, 0
			for i, sp := range ex.Shards {
				if sp.Shard != i {
					t.Fatalf("span %d has shard %d", i, sp.Shard)
				}
				if sp.Items <= 0 {
					t.Fatalf("span %d: items %d", i, sp.Items)
				}
				if sp.LatencyNs <= 0 {
					t.Fatalf("span %d: latency %d", i, sp.LatencyNs)
				}
				if sp.QueueWaitNs <= 0 {
					t.Fatalf("span %d: queue wait %d", i, sp.QueueWaitNs)
				}
				nodes += sp.NodesVisited
				scanned += sp.ItemsScanned
				cands += sp.Candidates
				// A shard only fails to publish a finite local distK when
				// the external bound pruned it before its live list filled
				// — in which case it streamed (nearly) no candidates. A
				// shard with an Inf bound AND a full candidate stream
				// would mean the telemetry plumbing is broken.
				if math.IsInf(float64(sp.BoundPublished), 0) && sp.Candidates >= k {
					t.Fatalf("span %d: published bound not finite with %d candidates", i, sp.Candidates)
				}
				// The observed bound is the CAS-min over every published
				// value, so it can never exceed this shard's own
				// publication.
				if float64(sp.BoundObserved) > float64(sp.BoundPublished) {
					t.Fatalf("span %d: observed %v > published %v",
						i, sp.BoundObserved, sp.BoundPublished)
				}
			}
			if nodes != plain.Stats.NodesVisited || scanned != plain.Stats.Items {
				// Pushdown racing makes per-shard work nondeterministic
				// run to run, but within ONE explain run the span sums
				// must equal what that run's Stats aggregated from the
				// same traversals.
				if nodes != res.Stats.NodesVisited || scanned != res.Stats.Items {
					t.Fatalf("span sums nodes=%d scanned=%d, stats %d/%d",
						nodes, scanned, res.Stats.NodesVisited, res.Stats.Items)
				}
			}
			if ex.Merge.Candidates != cands {
				t.Fatalf("merge candidates %d, shard sum %d", ex.Merge.Candidates, cands)
			}
			if ex.Merge.Results != len(res.Items) {
				t.Fatalf("merge results %d, items %d", ex.Merge.Results, len(res.Items))
			}
			if ex.Merge.LatencyNs <= 0 {
				t.Fatalf("merge latency %d", ex.Merge.LatencyNs)
			}
		}
		x.Close()
	}
}

// TestSearchExplainPushdownDisabled pins the no-pushdown shape: the
// observed bound stays +Inf (there is no shared bound to observe) and the
// JSON layer will render it as null.
func TestSearchExplainPushdownDisabled(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	const d, n, k = 2, 300, 5
	x, err := Build(randItems(rng, d, n, 2), d, Options{Shards: 2, WorkersPerShard: 1, DisablePushdown: true})
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	_, ex := x.SearchExplain(randQuery(rng, d, 1), k)
	for i, sp := range ex.Shards {
		if !math.IsInf(float64(sp.BoundObserved), 1) {
			t.Fatalf("span %d: observed bound %v with pushdown disabled", i, sp.BoundObserved)
		}
		// Without an external bound nothing can prune a shard early, so
		// every shard (each holding >> k items) publishes a finite local
		// distK.
		if math.IsInf(float64(sp.BoundPublished), 0) {
			t.Fatalf("span %d: published bound not finite without pushdown", i)
		}
	}
}

// TestSearchExplainAllocs locks the explain budget: the extra allocations
// of SearchExplain over Search are a small per-request constant (the span
// and telemetry slices), NOT a function of shard count — per-shard
// recording is plain scalar stores into preallocated slots.
func TestSearchExplainAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	const d, n, k = 3, 400, 5
	items := randItems(rng, d, n, 2)
	extraPerShards := make(map[int]float64)
	for _, shards := range []int{2, 4} {
		x, err := Build(items, d, Options{Shards: shards, WorkersPerShard: 1})
		if err != nil {
			t.Fatal(err)
		}
		sq := randQuery(rng, d, 1)
		plain := testing.AllocsPerRun(50, func() { x.Search(sq, k) })
		explain := testing.AllocsPerRun(50, func() { x.SearchExplain(sq, k) })
		extraPerShards[shards] = explain - plain
		x.Close()
	}
	// Allow slack of 1 for allocator noise across configurations, but the
	// explain overhead must not grow with the shard count.
	if extra2, extra4 := extraPerShards[2], extraPerShards[4]; extra4 > extra2+1 {
		t.Fatalf("explain alloc overhead grew with shards: 2 shards +%v, 4 shards +%v",
			extra2, extra4)
	}
	for shards, extra := range extraPerShards {
		if extra > 4 {
			t.Fatalf("%d shards: explain adds %v allocs/op, want <= 4", shards, extra)
		}
	}
}
