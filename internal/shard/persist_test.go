package shard

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"hyperdom/internal/knn"
	"hyperdom/internal/packed"
)

// TestSaveDirOpenDirBitIdentity is the persistence half of the
// scatter-gather acceptance gate: an index reloaded from disk — shard
// snapshots mmapped straight into serving — answers every query with the
// same result set and the same aggregate Stats as the index that was
// saved, across substrates, traversals and quantization tiers.
func TestSaveDirOpenDirBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	const d, n = 3, 800
	defer knn.SetQuantMode(knn.SetQuantMode(knn.QuantNone)) // restore on exit
	for _, substrate := range []string{"sstree", "mtree", "rtree"} {
		t.Run(substrate, func(t *testing.T) {
			items := randItems(rng, d, n, 3)
			built, err := Build(items, d, Options{
				Shards:          3,
				WorkersPerShard: 2,
				Substrate:       substrate,
				MaxFill:         16,
				Algorithm:       knn.HS,
				DisablePushdown: true, // deterministic Stats on both sides
			})
			if err != nil {
				t.Fatal(err)
			}
			defer built.Close()
			dir := t.TempDir()
			if err := built.SaveDir(dir); err != nil {
				t.Fatalf("SaveDir: %v", err)
			}
			for _, mode := range []struct {
				name string
				o    OpenOptions
			}{
				{"mmap", OpenOptions{WorkersPerShard: 2, Algorithm: knn.HS, DisablePushdown: true}},
				{"verify", OpenOptions{WorkersPerShard: 2, Algorithm: knn.HS, DisablePushdown: true, Verify: true}},
				{"copy", OpenOptions{WorkersPerShard: 2, Algorithm: knn.HS, DisablePushdown: true, NoMmap: true}},
			} {
				loaded, err := OpenDir(dir, mode.o)
				if err != nil {
					t.Fatalf("OpenDir(%s): %v", mode.name, err)
				}
				if loaded.Len() != built.Len() || loaded.Dim() != d || loaded.Shards() != built.Shards() {
					t.Fatalf("%s: loaded n=%d dim=%d shards=%d, want n=%d dim=%d shards=%d",
						mode.name, loaded.Len(), loaded.Dim(), loaded.Shards(),
						built.Len(), d, built.Shards())
				}
				if !reflect.DeepEqual(loaded.ShardSizes(), built.ShardSizes()) {
					t.Fatalf("%s: shard sizes %v, want %v", mode.name, loaded.ShardSizes(), built.ShardSizes())
				}
				if !reflect.DeepEqual(loaded.Plan(), built.Plan()) {
					t.Fatalf("%s: plan did not round-trip", mode.name)
				}
				for _, quant := range []knn.QuantMode{knn.QuantNone, knn.QuantF32, knn.QuantI8} {
					knn.SetQuantMode(quant)
					for q := 0; q < 12; q++ {
						sq := randQuery(rng, d, 3)
						k := 1 + rng.Intn(12)
						want := built.Search(sq, k)
						got := loaded.Search(sq, k)
						ctx := substrate + "/" + mode.name + "/" + quant.String()
						sameItems(t, ctx, got.Items, want.Items)
						if got.Stats != want.Stats {
							t.Fatalf("%s: stats %+v, want %+v", ctx, got.Stats, want.Stats)
						}
					}
				}
				knn.SetQuantMode(knn.QuantNone)
				loaded.Close()
				loaded.Close() // double Close is safe
			}
		})
	}
}

// TestSaveDirEmptyShards: with fewer items than shards some shards are
// empty; the directory still has one snapshot per shard and reloads into
// an equivalent index.
func TestSaveDirEmptyShards(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	for _, n := range []int{0, 1, 3} {
		items := randItems(rng, 2, n, 2)
		built, err := Build(items, 2, Options{Shards: 4, Algorithm: knn.HS})
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		if err := built.SaveDir(dir); err != nil {
			t.Fatalf("n=%d: SaveDir: %v", n, err)
		}
		for i := 0; i < 4; i++ {
			if _, err := os.Stat(filepath.Join(dir, shardFileName(i))); err != nil {
				t.Fatalf("n=%d: missing %s: %v", n, shardFileName(i), err)
			}
		}
		loaded, err := OpenDir(dir, OpenOptions{Algorithm: knn.HS})
		if err != nil {
			t.Fatalf("n=%d: OpenDir: %v", n, err)
		}
		if loaded.Len() != n {
			t.Fatalf("n=%d: loaded %d items", n, loaded.Len())
		}
		for q := 0; q < 3; q++ {
			sq := randQuery(rng, 2, 2)
			want := built.Search(sq, 5)
			got := loaded.Search(sq, 5)
			sameItems(t, "empty-shards", got.Items, want.Items)
		}
		loaded.Close()
		built.Close()
	}
}

// TestSaveDirManifest pins the manifest schema: format, substrate, dim,
// per-shard files and a plan whose leaves cover every shard exactly once.
func TestSaveDirManifest(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	items := randItems(rng, 4, 500, 2)
	built, err := Build(items, 4, Options{Shards: 5, Substrate: "rtree", MaxFill: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer built.Close()
	dir := t.TempDir()
	if err := built.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest does not parse: %v", err)
	}
	if m.Format != manifestFormat || m.Substrate != "rtree" || m.Dim != 4 || m.Items != 500 {
		t.Fatalf("manifest header %+v", m)
	}
	if len(m.Shards) != 5 {
		t.Fatalf("%d shard entries", len(m.Shards))
	}
	total := 0
	for i, s := range m.Shards {
		if s.File != shardFileName(i) {
			t.Fatalf("shard %d file %q", i, s.File)
		}
		total += s.Items
	}
	if total != 500 {
		t.Fatalf("shard items sum to %d", total)
	}
	if m.Plan == nil {
		t.Fatal("no plan in manifest")
	}
	seen := map[int]bool{}
	var walk func(p *PlanNode)
	walk = func(p *PlanNode) {
		if p.Left == nil && p.Right == nil {
			if seen[p.Shard] {
				t.Fatalf("plan leaf shard %d twice", p.Shard)
			}
			seen[p.Shard] = true
			return
		}
		if p.Left == nil || p.Right == nil {
			t.Fatal("half-internal plan node")
		}
		if p.Dim < 0 || p.Dim >= 4 {
			t.Fatalf("plan cut dim %d", p.Dim)
		}
		walk(p.Left)
		walk(p.Right)
	}
	walk(m.Plan)
	if len(seen) != 5 {
		t.Fatalf("plan covers %d shards", len(seen))
	}
}

// TestOpenDirRejects covers the validation surface: missing or corrupt
// manifests, mismatched metadata, escaping file names, and a corrupted
// shard file under Verify.
func TestOpenDirRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(98))
	items := randItems(rng, 3, 200, 2)
	built, err := Build(items, 3, Options{Shards: 2, MaxFill: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer built.Close()
	save := func(t *testing.T) string {
		dir := t.TempDir()
		if err := built.SaveDir(dir); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	edit := func(t *testing.T, dir string, f func(m *manifest)) {
		data, err := os.ReadFile(filepath.Join(dir, ManifestName))
		if err != nil {
			t.Fatal(err)
		}
		var m manifest
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatal(err)
		}
		f(&m)
		out, err := json.Marshal(&m)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, ManifestName), out, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		name    string
		corrupt func(t *testing.T, dir string)
		want    string
	}{
		{"missing manifest", func(t *testing.T, dir string) {
			os.Remove(filepath.Join(dir, ManifestName))
		}, "no such file"},
		{"garbage manifest", func(t *testing.T, dir string) {
			os.WriteFile(filepath.Join(dir, ManifestName), []byte("{nope"), 0o644)
		}, "bad manifest"},
		{"future format", func(t *testing.T, dir string) {
			edit(t, dir, func(m *manifest) { m.Format = 99 })
		}, "manifest format 99"},
		{"bad substrate", func(t *testing.T, dir string) {
			edit(t, dir, func(m *manifest) { m.Substrate = "btree" })
		}, "unknown substrate"},
		{"escaping file name", func(t *testing.T, dir string) {
			edit(t, dir, func(m *manifest) { m.Shards[0].File = "../evil.hds" })
		}, "non-local file"},
		{"missing shard file", func(t *testing.T, dir string) {
			os.Remove(filepath.Join(dir, shardFileName(1)))
		}, "shard 1"},
		{"item count lie", func(t *testing.T, dir string) {
			edit(t, dir, func(m *manifest) { m.Shards[0].Items++ })
		}, "manifest says"},
		{"total lie", func(t *testing.T, dir string) {
			edit(t, dir, func(m *manifest) {
				m.Items++
				m.Shards[0].Items = 0 // keep per-shard check from firing first
				m.Shards[0].File = shardFileName(0)
			})
		}, "manifest says"},
		{"truncated shard file", func(t *testing.T, dir string) {
			p := filepath.Join(dir, shardFileName(0))
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			os.WriteFile(p, data[:len(data)/2], 0o644)
		}, "shard 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := save(t)
			tc.corrupt(t, dir)
			_, err := OpenDir(dir, OpenOptions{})
			if err == nil {
				t.Fatal("OpenDir accepted a corrupt directory")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	// A flipped payload byte gets through the structural checks only to be
	// caught by the full checksum pass under Verify. Flip mid-file: the
	// tail of the file can be unchecksummed alignment padding.
	t.Run("bit flip under Verify", func(t *testing.T) {
		dir := save(t)
		p := filepath.Join(dir, shardFileName(0))
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x01
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenDir(dir, OpenOptions{Verify: true}); err == nil {
			t.Fatal("Verify missed a flipped payload byte")
		} else if !strings.Contains(err.Error(), packed.ErrChecksum.Error()) {
			t.Fatalf("error %q is not a checksum error", err)
		}
	})
}

// TestSaveDirOverwrite: saving twice into the same directory is fine, and
// a reload after the second save serves the second index.
func TestSaveDirOverwrite(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	dir := t.TempDir()
	first, err := Build(randItems(rng, 2, 100, 1), 2, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := first.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	first.Close()
	second, err := Build(randItems(rng, 2, 150, 1), 2, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	if err := second.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := OpenDir(dir, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if loaded.Len() != 150 {
		t.Fatalf("reload has %d items, want 150", loaded.Len())
	}
	// No stray temp files survive the atomic writes.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("stray temp file %s", e.Name())
		}
	}
}
