package shard

import (
	"math/rand"
	"testing"

	"hyperdom/internal/obs"
)

// TestCandidateImbalanceGauge pins the per-collection scatter gauge
// (ISSUE 9): registered at Build under the collection label, fed by the
// gather loop, unregistered at Close — and last-writer-wins when an index
// is rebuilt under the same label.
func TestCandidateImbalanceGauge(t *testing.T) {
	rng := rand.New(rand.NewSource(907))
	const d, n = 3, 600
	items := randItems(rng, d, n, 2)
	x, err := Build(items, d, Options{Shards: 3, Label: "imbalance-test"})
	if err != nil {
		t.Fatal(err)
	}

	label := `collection="imbalance-test"`
	v, ok := obs.GaugeValue("shard.candidate_imbalance", label)
	if !ok {
		t.Fatal("gauge not registered after Build")
	}
	if v != 0 {
		t.Errorf("imbalance = %v before any query, want 0", v)
	}

	for i := 0; i < 20; i++ {
		x.Search(randQuery(rng, d, 2), 5)
	}
	v, ok = obs.GaugeValue("shard.candidate_imbalance", label)
	if !ok {
		t.Fatal("gauge lost after queries")
	}
	// max/mean of per-shard cumulative candidate counts: ≥ 1 whenever any
	// shard produced candidates (max ≥ mean by construction).
	if v < 1 {
		t.Errorf("imbalance = %v after queries, want ≥ 1", v)
	}

	// Rebuilding under the same label replaces the registration; closing
	// the OLD index afterwards must not remove the new one (token-guarded
	// unregister).
	y, err := Build(items, d, Options{Shards: 2, Label: "imbalance-test"})
	if err != nil {
		t.Fatal(err)
	}
	x.Close()
	if v, ok := obs.GaugeValue("shard.candidate_imbalance", label); !ok {
		t.Error("gauge vanished when the replaced index closed")
	} else if v != 0 {
		t.Errorf("fresh index imbalance = %v, want 0", v)
	}

	y.Close()
	if _, ok := obs.GaugeValue("shard.candidate_imbalance", label); ok {
		t.Error("gauge still registered after the live index closed")
	}
}
