package shard

import (
	"fmt"
	"time"

	"hyperdom/internal/dominance"
	"hyperdom/internal/engine"
	"hyperdom/internal/geom"
	"hyperdom/internal/knn"
	"hyperdom/internal/obs"
)

// Explain is the request-scoped trace tree of one scatter-gather search
// (ISSUE 8): one ShardSpan per shard — latency, engine queue wait,
// candidates streamed, traversal work, coarse-prune hits, and the distK
// pushdown bound observed vs. published — plus the final merge/filter span.
// The serving layer wraps it in an obs.RequestTrace; semantics are spelled
// out in DESIGN.md §14.
type Explain struct {
	Shards []obs.ShardSpan `json:"shards"`
	Merge  obs.MergeSpan   `json:"merge"`
}

// Search answers the Definition 2 kNN query by scatter-gather: broadcast
// to every shard, merge the per-shard candidate streams, compute the
// global Sk and apply the one final dominance filter. The result — items
// in ascending (MaxDist, ID) order — is bit-identical to a single-index
// knn.Search over the same data when the criterion is sound (Hyperbola,
// Exact). Stats aggregates the per-shard traversal work plus the merge
// layer's own DomChecks/Pruned; it is deterministic only when pushdown is
// disabled (racing bound publications otherwise change how much work each
// traversal happens to do, never the answer).
func (x *Index) Search(sq geom.Sphere, k int) knn.Result {
	return x.search(sq, k, nil)
}

// SearchExplain is Search plus the per-request trace tree. The result is
// bit-identical to Search over the same data (the trace records scalar
// by-products the traversals produce anyway); the extra cost is two slice
// allocations per request and a few clock reads per shard, independent of
// the process-wide obs gate.
func (x *Index) SearchExplain(sq geom.Sphere, k int) (knn.Result, *Explain) {
	ex := &Explain{}
	res := x.search(sq, k, ex)
	return res, ex
}

func (x *Index) search(sq geom.Sphere, k int, ex *Explain) knn.Result {
	if k <= 0 {
		panic(fmt.Sprintf("shard: k = %d", k))
	}
	on := obs.On()
	var sw obs.Stopwatch
	if on {
		sw = obs.StartTimer()
		obsQueries.Inc()
		obsScatter.Add(uint64(len(x.shards)))
	}
	var ext *knn.Bound
	if !x.opts.DisablePushdown {
		ext = knn.NewBound()
	}

	// Scatter: one candidate search per shard, each through that shard's
	// engine pool (so it runs on the pool's warm arenas). Results arrive
	// in completion order so the gather loop can tighten the shared bound
	// for shards still in flight. The explain path pre-sizes its span and
	// telemetry slices here — the per-shard recording itself is plain
	// scalar stores, zero allocations per shard.
	type arrival struct {
		i  int
		cs knn.CandidateSet
	}
	var tts []engine.TaskTelemetry
	if ex != nil {
		ex.Shards = make([]obs.ShardSpan, len(x.shards))
		tts = make([]engine.TaskTelemetry, len(x.shards))
	}
	ch := make(chan arrival, len(x.shards))
	for i := range x.shards {
		if ex == nil {
			go func(i int) {
				ch <- arrival{i, x.shards[i].eng.SearchCandidates(sq, k, ext, nil)}
			}(i)
			continue
		}
		go func(i int) {
			t0 := time.Now()
			cs := x.shards[i].eng.SearchCandidates(sq, k, ext, &tts[i])
			ex.Shards[i] = obs.ShardSpan{
				Shard:          i,
				Items:          x.shards[i].n,
				LatencyNs:      time.Since(t0).Nanoseconds(),
				QueueWaitNs:    tts[i].QueueWaitNs,
				Candidates:     len(cs.Candidates),
				NodesVisited:   cs.Stats.NodesVisited,
				ItemsScanned:   cs.Stats.Items,
				CoarsePrunes:   cs.CoarsePrunes,
				BoundObserved:  obs.BoundValue(cs.BoundObserved),
				BoundPublished: obs.BoundValue(cs.BoundPublished),
				TraceID:        cs.TraceID,
			}
			ch <- arrival{i, cs}
		}(i)
	}

	// Gather: as each stream lands, fold its candidates into a running
	// global k-heap on (MaxDist, ID) and publish the heap's k-th smallest
	// — the running global distK over everything merged so far — back to
	// the laggard shards. The heap's top is a k-th smallest MaxDist over a
	// subset of the data, so it can never undershoot the final global
	// distK (the pushdown safety invariant of knn.Bound).
	sets := make([]knn.CandidateSet, len(x.shards))
	var res knn.Result
	res.K = k
	h := newKHeap(k)
	for range x.shards {
		a := <-ch
		sets[a.i] = a.cs
		x.scatterCands[a.i].Add(uint64(len(a.cs.Candidates)))
		addStats(&res.Stats, &a.cs.Stats)
		if ext != nil {
			for _, c := range a.cs.Candidates {
				// The stream is sorted: the first candidate the full heap
				// rejects ends the fold.
				if !h.offer(c.MaxDist, c.Item.ID) {
					break
				}
			}
			if h.full() {
				ext.Tighten(h.top())
			}
		}
	}

	var msw obs.Stopwatch
	if on {
		msw = obs.StartTimer()
	}
	var mt time.Time
	if ex != nil {
		mt = time.Now()
	}
	var ms *obs.MergeSpan
	if ex != nil {
		ms = &ex.Merge
	}
	res.Items = x.merge(sets, sq, k, &res.Stats, ms)
	if ex != nil {
		ex.Merge.LatencyNs = time.Since(mt).Nanoseconds()
	}
	if on {
		msw.Stop(x.histMerge)
		sw.Stop(x.histSearch)
	}
	return res
}

// merge N sorted candidate streams into the final Definition 2 answer:
// k-th smallest (MaxDist, ID) of the union is Sk, and every candidate Sk
// does not provably dominate survives, in merged order. Fewer than k
// candidates in total means the whole database qualified. ms, when
// non-nil, receives the merge's explain scalars (candidates folded, final
// filter prunes, results kept).
func (x *Index) merge(sets []knn.CandidateSet, sq geom.Sphere, k int, stats *knn.Stats, ms *obs.MergeSpan) []geom.Item {
	total := 0
	for i := range sets {
		total += len(sets[i].Candidates)
	}
	if ms != nil {
		ms.Candidates = total
	}
	if total == 0 {
		return nil
	}
	merged := make([]knn.Candidate, 0, total)
	cursors := make([]int, len(sets))
	for {
		best := -1
		var bc knn.Candidate
		for i := range sets {
			if cursors[i] >= len(sets[i].Candidates) {
				continue
			}
			c := sets[i].Candidates[cursors[i]]
			if best < 0 || candLess(c, bc) {
				best, bc = i, c
			}
		}
		if best < 0 {
			break
		}
		merged = append(merged, bc)
		cursors[best]++
	}
	if obs.On() {
		obsMergeCandidates.Add(uint64(total))
	}
	if total < k {
		out := make([]geom.Item, len(merged))
		for i, c := range merged {
			out[i] = c.Item
		}
		if ms != nil {
			ms.Results = len(out)
		}
		return out
	}
	sk := merged[k-1].Item
	_, hyp := x.opts.Criterion.(dominance.Hyperbola)
	var pp dominance.PreparedPair
	out := make([]geom.Item, 0, k)
	pruned := 0
	for _, c := range merged {
		stats.DomChecks++
		var dominated bool
		if hyp {
			pp.Reset(sk.Sphere, c.Item.Sphere)
			dominated = pp.Dominates(sq)
		} else {
			dominated = x.opts.Criterion.Dominates(sk.Sphere, c.Item.Sphere, sq)
		}
		if dominated {
			pruned++
			continue
		}
		out = append(out, c.Item)
	}
	stats.Pruned += pruned
	if ms != nil {
		ms.Pruned = pruned
		ms.Results = len(out)
	}
	if obs.On() {
		obsMergePruned.Add(uint64(pruned))
		pp.FlushObs()
	}
	return out
}

func candLess(a, b knn.Candidate) bool {
	if a.MaxDist != b.MaxDist {
		return a.MaxDist < b.MaxDist
	}
	return a.Item.ID < b.Item.ID
}

func addStats(dst, src *knn.Stats) {
	dst.NodesVisited += src.NodesVisited
	dst.Items += src.Items
	dst.DomChecks += src.DomChecks
	dst.Pruned += src.Pruned
	dst.Resurrected += src.Resurrected
}

// kHeap keeps the k smallest (maxDist, ID) pairs seen so far as a max-heap:
// the root is the running global distK once the heap is full.
type kHeap struct {
	k  int
	ds []float64
	id []int
}

func newKHeap(k int) *kHeap {
	return &kHeap{k: k, ds: make([]float64, 0, k), id: make([]int, 0, k)}
}

func (h *kHeap) full() bool   { return len(h.ds) == h.k }
func (h *kHeap) top() float64 { return h.ds[0] }

// above reports whether (d, id) orders after the root — i.e. would not
// displace anything in a full heap.
func (h *kHeap) above(d float64, id int) bool {
	return d > h.ds[0] || (d == h.ds[0] && id > h.id[0])
}

// offer inserts (d, id) if it belongs among the k smallest and reports
// whether it did (a full heap rejecting means every later element of an
// ascending stream would be rejected too).
func (h *kHeap) offer(d float64, id int) bool {
	if len(h.ds) < h.k {
		h.ds = append(h.ds, d)
		h.id = append(h.id, id)
		h.siftUp(len(h.ds) - 1)
		return true
	}
	if h.above(d, id) {
		return false
	}
	h.ds[0], h.id[0] = d, id
	h.siftDown(0)
	return true
}

func (h *kHeap) less(a, b int) bool {
	if h.ds[a] != h.ds[b] {
		return h.ds[a] < h.ds[b]
	}
	return h.id[a] < h.id[b]
}

func (h *kHeap) swap(a, b int) {
	h.ds[a], h.ds[b] = h.ds[b], h.ds[a]
	h.id[a], h.id[b] = h.id[b], h.id[a]
}

func (h *kHeap) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(p, i) {
			break
		}
		h.swap(p, i)
		i = p
	}
}

func (h *kHeap) siftDown(i int) {
	for {
		c := 2*i + 1
		if c >= len(h.ds) {
			return
		}
		if c+1 < len(h.ds) && h.less(c, c+1) {
			c++
		}
		if !h.less(i, c) {
			return
		}
		h.swap(i, c)
		i = c
	}
}
