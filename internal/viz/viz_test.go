package viz

import (
	"encoding/xml"
	"math"
	"strings"
	"testing"

	"hyperdom/internal/dominance"
	"hyperdom/internal/geom"
	"hyperdom/internal/vec"
)

func sph(r float64, c ...float64) geom.Sphere { return geom.NewSphere(c, r) }

func TestRenderSVGWellFormed(t *testing.T) {
	svg, err := RenderSVG(sph(1, 0, 0), sph(1, 9, 0), sph(2, -4, 0), Options{})
	if err != nil {
		t.Fatalf("RenderSVG: %v", err)
	}
	// Must be parseable XML.
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v", err)
		}
	}
	for _, want := range []string{"<svg", "circle", "polyline", "Dom(Sa, Sb, Sq) = true", "Sa", "Sb", "Sq"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestRenderSVGOverlapHasNoBoundary(t *testing.T) {
	svg, err := RenderSVG(sph(2, 0, 0), sph(2, 1, 0), sph(1, 5, 5), Options{})
	if err != nil {
		t.Fatalf("RenderSVG: %v", err)
	}
	if strings.Contains(svg, "polyline") {
		t.Error("overlapping objects must not draw a boundary curve")
	}
	if !strings.Contains(svg, "Lemma 1") {
		t.Error("overlap caption missing")
	}
	if !strings.Contains(svg, "= false") {
		t.Error("overlap verdict missing")
	}
}

func TestRenderSVGRejectsNon2D(t *testing.T) {
	if _, err := RenderSVG(sph(1, 0, 0, 0), sph(1, 9, 0, 0), sph(1, -4, 0, 0), Options{}); err == nil {
		t.Error("3-dimensional input accepted")
	}
}

// TestBoundaryPolylineOnCurve: every sampled point must satisfy the
// defining equation Dist(cb,x) − Dist(ca,x) = ra + rb.
func TestBoundaryPolylineOnCurve(t *testing.T) {
	sa := sph(1, -3, 2)
	sb := sph(2, 6, -1)
	sq := sph(1, -5, 5)
	pts := boundaryPolyline(sa, sb, sq, 64)
	if len(pts) == 0 {
		t.Fatal("no boundary points")
	}
	rab := sa.Radius + sb.Radius
	for i, p := range pts {
		x := []float64{p[0], p[1]}
		diff := vec.Dist(sb.Center, x) - vec.Dist(sa.Center, x)
		if math.Abs(diff-rab) > 1e-6*(1+rab) {
			t.Fatalf("point %d off-curve: diff=%v want %v", i, diff, rab)
		}
	}
}

// TestBoundarySeparatesVerdicts: points just inside the branch (toward ca)
// are in Ra, points just outside are not — spot-check by evaluating the
// point-dominance condition on both sides of a sampled boundary point.
func TestBoundarySeparatesVerdicts(t *testing.T) {
	sa := sph(1, 0, 0)
	sb := sph(1, 10, 0)
	sq := sph(0, -5, 0) // unused by the polyline except for reach
	pts := boundaryPolyline(sa, sb, sq, 8)
	h := dominance.Hyperbola{}
	mid := pts[len(pts)/2] // the vertex region
	eps := 0.05
	inside := geom.Point([]float64{mid[0] - eps, mid[1]})
	outside := geom.Point([]float64{mid[0] + eps, mid[1]})
	if !h.Dominates(sa, sb, inside) {
		t.Error("point on ca's side of the boundary should be dominated-for")
	}
	if h.Dominates(sa, sb, outside) {
		t.Error("point on cb's side of the boundary should not be dominated-for")
	}
}

func TestRenderSVGPointObjects(t *testing.T) {
	// rab = 0: boundary degenerates to the bisector line; must still render.
	svg, err := RenderSVG(sph(0, 0, 0), sph(0, 4, 0), sph(1, -2, 1), Options{Width: 300, Samples: 32})
	if err != nil {
		t.Fatalf("RenderSVG: %v", err)
	}
	if !strings.Contains(svg, "polyline") {
		t.Error("bisector line missing for point objects")
	}
}
