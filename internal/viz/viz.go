// Package viz renders two-dimensional dominance instances as SVG: the two
// object spheres, the query sphere, and the hyperbola boundary of the
// region Ra — the picture of the paper's Figures 1 and 6. Intended for
// documentation, debugging and the cmd/domviz tool.
package viz

import (
	"fmt"
	"math"
	"strings"

	"hyperdom/internal/dominance"
	"hyperdom/internal/geom"
)

// Options controls the rendering.
type Options struct {
	// Width is the SVG pixel width (height follows the scene's aspect
	// ratio). 0 selects 640.
	Width int
	// Samples is the number of polyline points per boundary branch arm
	// (before clipping to the scene). 0 selects 1024.
	Samples int
}

// RenderSVG draws the dominance instance. All three spheres must be
// 2-dimensional. The boundary curve is drawn only when Sa and Sb do not
// overlap (otherwise it does not exist and Dom is false by Lemma 1, which
// the caption states).
func RenderSVG(sa, sb, sq geom.Sphere, opts Options) (string, error) {
	if sa.Dim() != 2 || sb.Dim() != 2 || sq.Dim() != 2 {
		return "", fmt.Errorf("viz: RenderSVG requires 2-dimensional spheres")
	}
	for _, s := range []geom.Sphere{sa, sb, sq} {
		if err := s.Validate(); err != nil {
			return "", fmt.Errorf("viz: %w", err)
		}
	}
	width := opts.Width
	if width <= 0 {
		width = 640
	}
	samples := opts.Samples
	if samples <= 0 {
		samples = 1024
	}

	verdict := dominance.Hyperbola{}.Dominates(sa, sb, sq)
	boundary := boundaryPolyline(sa, sb, sq, samples)

	// Scene bounds come from the spheres; the boundary curve is unbounded
	// and gets clipped to the scene rather than allowed to stretch it.
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	grow := func(x, y, r float64) {
		minX = math.Min(minX, x-r)
		minY = math.Min(minY, y-r)
		maxX = math.Max(maxX, x+r)
		maxY = math.Max(maxY, y+r)
	}
	for _, s := range []geom.Sphere{sa, sb, sq} {
		grow(s.Center[0], s.Center[1], math.Max(s.Radius, 1e-9))
	}
	pad := 0.15 * math.Max(maxX-minX, maxY-minY)
	if pad == 0 {
		pad = 1
	}
	minX, minY, maxX, maxY = minX-pad, minY-pad, maxX+pad, maxY+pad
	boundary = clipPolyline(boundary, minX, minY, maxX, maxY)

	scale := float64(width) / (maxX - minX)
	height := int(math.Ceil((maxY - minY) * scale))
	px := func(x float64) float64 { return (x - minX) * scale }
	py := func(y float64) float64 { return (maxY - y) * scale } // SVG y grows down

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="100%%" height="100%%" fill="white"/>`+"\n")

	if len(boundary) > 1 {
		var pts strings.Builder
		for i, p := range boundary {
			if i > 0 {
				pts.WriteByte(' ')
			}
			fmt.Fprintf(&pts, "%.2f,%.2f", px(p[0]), py(p[1]))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="#888" stroke-width="1.5" stroke-dasharray="6 3"/>`+"\n", pts.String())
	}

	circle := func(s geom.Sphere, stroke, fill, label string) {
		r := s.Radius * scale
		if r < 2 {
			r = 2 // keep points visible
		}
		fmt.Fprintf(&b, `<circle cx="%.2f" cy="%.2f" r="%.2f" stroke="%s" fill="%s" fill-opacity="0.25" stroke-width="2"/>`+"\n",
			px(s.Center[0]), py(s.Center[1]), r, stroke, fill)
		fmt.Fprintf(&b, `<text x="%.2f" y="%.2f" font-size="14" fill="%s">%s</text>`+"\n",
			px(s.Center[0])+r+3, py(s.Center[1]), stroke, label)
	}
	circle(sa, "#1a7f37", "#a6e3b0", "Sa")
	circle(sb, "#c4432b", "#f5b7a8", "Sb")
	circle(sq, "#1f6feb", "#a8c7fa", "Sq")

	caption := fmt.Sprintf("Dom(Sa, Sb, Sq) = %v", verdict)
	if geom.Overlap(sa, sb) {
		caption += " (Sa and Sb overlap: Lemma 1)"
	}
	fmt.Fprintf(&b, `<text x="10" y="%d" font-size="15" fill="black">%s</text>`+"\n", height-10, caption)
	b.WriteString("</svg>\n")
	return b.String(), nil
}

// clipPolyline keeps the contiguous run of points inside the box around
// the longest inside stretch; dropping outside points is enough here
// because the curve is smooth and densely sampled.
func clipPolyline(pts [][2]float64, minX, minY, maxX, maxY float64) [][2]float64 {
	var best, cur [][2]float64
	flush := func() {
		if len(cur) > len(best) {
			best = cur
		}
		cur = nil
	}
	for _, p := range pts {
		if p[0] >= minX && p[0] <= maxX && p[1] >= minY && p[1] <= maxY {
			cur = append(cur, p)
		} else {
			flush()
		}
	}
	flush()
	return best
}

// boundaryPolyline samples the branch of Dist(cb,x) − Dist(ca,x) = ra+rb
// nearest to ca, in world coordinates, or nil when Sa and Sb overlap.
func boundaryPolyline(sa, sb, sq geom.Sphere, samples int) [][2]float64 {
	ca, cb := sa.Center, sb.Center
	dx := cb[0] - ca[0]
	dy := cb[1] - ca[1]
	dcc := math.Hypot(dx, dy)
	rab := sa.Radius + sb.Radius
	if dcc <= rab {
		return nil
	}
	// Canonical frame: origin at the midpoint, e1 toward cb.
	mx, my := (ca[0]+cb[0])/2, (ca[1]+cb[1])/2
	e1x, e1y := dx/dcc, dy/dcc
	e2x, e2y := -e1y, e1x
	alpha := dcc / 2
	hA := rab / 2
	b2 := (alpha - hA) * (alpha + hA)

	// Extent: cover the whole scene — reach at least to the query sphere
	// and a bit beyond the focal scale.
	reach := 2 * (alpha + sq.Radius + math.Hypot(sq.Center[0]-mx, sq.Center[1]-my))
	out := make([][2]float64, 0, 2*samples+1)
	for i := -samples; i <= samples; i++ {
		y := reach * float64(i) / float64(samples)
		var x float64
		if rab == 0 {
			x = 0 // the bisector line
		} else {
			x = -hA * math.Sqrt(1+y*y/b2)
		}
		out = append(out, [2]float64{
			mx + x*e1x + y*e2x,
			my + x*e1y + y*e2y,
		})
	}
	return out
}
