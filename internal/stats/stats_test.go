package stats

import (
	"math"
	"strings"
	"testing"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Mean([]float64{2, 4, 6}) != 4 {
		t.Error("Mean broken")
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Error("StdDev of singleton != 0")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {-1, 1}, {101, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) != 0")
	}
	// Must not mutate the input.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 {
		t.Error("Percentile sorted the caller's slice")
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	xs := []float64{1.5, -2, 7, 7, 3.25, 0}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != len(xs) {
		t.Errorf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-Mean(xs)) > 1e-12 {
		t.Errorf("Welford mean %v vs batch %v", w.Mean(), Mean(xs))
	}
	if math.Abs(w.StdDev()-StdDev(xs)) > 1e-12 {
		t.Errorf("Welford stddev %v vs batch %v", w.StdDev(), StdDev(xs))
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{Title: "demo", Header: []string{"name", "value"}}
	tab.AddRow("alpha", "1")
	tab.AddRow("a-much-longer-name", "22")
	out := tab.Render()
	if !strings.Contains(out, "demo") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns must align: "value" cells start at the same offset.
	h := strings.Index(lines[1], "value")
	r1 := strings.Index(lines[3], "1")
	if h != r1 {
		t.Errorf("misaligned columns:\n%s", out)
	}
}
