// Package stats provides the small numeric-summary and table-formatting
// helpers the experiment drivers and CLI tools share.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs by linear
// interpolation, or 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Welford is a streaming mean/variance accumulator.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n))
}

// Table is a simple aligned text table, the output format of the
// experiment drivers.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render returns the table as aligned text.
func (t Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}
