package dominance

import "testing"

// TestCriterionMetadata pins the Name/Correct/Sound contract of every
// criterion, including the test-oriented ones.
func TestCriterionMetadata(t *testing.T) {
	cases := []struct {
		c       Criterion
		name    string
		correct bool
		sound   bool
	}{
		{Hyperbola{}, "Hyperbola", true, true},
		{HyperbolaLambda{}, "Hyperbola-λ", true, true},
		{MinMax{}, "MinMax", true, false},
		{MBR{}, "MBR", true, false},
		{GP{}, "GP", true, false},
		{Trigonometric{}, "Trigonometric", false, true},
		{Exact{}, "Exact", true, true},
		{MonteCarlo{}, "MonteCarlo", false, true},
	}
	for _, tc := range cases {
		if tc.c.Name() != tc.name {
			t.Errorf("Name = %q, want %q", tc.c.Name(), tc.name)
		}
		if tc.c.Correct() != tc.correct {
			t.Errorf("%s Correct = %v", tc.name, tc.c.Correct())
		}
		if tc.c.Sound() != tc.sound {
			t.Errorf("%s Sound = %v", tc.name, tc.c.Sound())
		}
	}
}

// TestDminPanicsOnOverlap: the boundary does not exist for overlapping
// objects, and asking for a distance to it is a caller bug.
func TestDminPanicsOnOverlap(t *testing.T) {
	sa := sph(2, 0, 0)
	sb := sph(2, 1, 0)
	sq := sph(1, 9, 9)
	for name, fn := range map[string]func(){
		"Dmin":          func() { Dmin(sa, sb, sq) },
		"HyperbolaDmin": func() { HyperbolaDmin(sa, sb, sq) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on overlapping objects did not panic", name)
				}
			}()
			fn()
		}()
	}
}
