package dominance

import (
	"sync/atomic"

	"hyperdom/internal/geom"
	"hyperdom/internal/obs"
)

// Shadow evaluation (ISSUE 4) instruments the paper's Table 1 in vivo:
// alongside whichever criterion a search actually uses, every cheaper
// criterion is evaluated on the same (s_a, s_b, s_q) instance and compared
// against Hyperbola, the correct-and-sound reference. A disagreement is
// either a missed dominance (Hyperbola proves s_b dominated, the cheap
// criterion cannot — the unsound side, a pruning opportunity lost) or a
// false positive (the cheap criterion claims dominance Hyperbola refutes —
// the incorrect side, which would wrongly discard a result). Disagreements
// land in per-criterion counters and, for traced queries, as SpanShadow
// events, so a trace shows the exact node and item where e.g. MinMax failed
// to prune. Shadow mode multiplies the cost of every dominance check
// roughly five-fold; it is strictly opt-in via SetShadow and never changes
// a query's answer — callers always get the primary criterion's verdict.

var shadowEnabled atomic.Bool

// SetShadow toggles shadow evaluation process-wide.
func SetShadow(on bool) { shadowEnabled.Store(on) }

// ShadowOn reports whether shadow evaluation is enabled.
func ShadowOn() bool { return shadowEnabled.Load() }

// shadowCompetitors are the cheaper Table 1 criteria audited against
// Hyperbola, in table order: MinMax and MBR (correct, not sound), GP
// (correct; sound only for d ≤ 2), Trigonometric (sound, not correct).
var shadowCompetitors = []Criterion{MinMax{}, MBR{}, GP{}, Trigonometric{}}

// ShadowCompetitorNames returns the audited criteria's names; bit i of a
// ShadowCompare mask refers to the i-th name.
func ShadowCompetitorNames() []string {
	names := make([]string, len(shadowCompetitors))
	for i, c := range shadowCompetitors {
		names[i] = c.Name()
	}
	return names
}

var (
	obsShadowChecks = obs.New("dominance.shadow.checks")
	// Indexed like shadowCompetitors: missed = Hyperbola true, competitor
	// false; false_positive = competitor true, Hyperbola false.
	obsShadowMissed   [4]*obs.Counter
	obsShadowFalsePos [4]*obs.Counter
	shadowLabels      [4]obs.LabelID
)

func init() {
	for i, c := range shadowCompetitors {
		obsShadowMissed[i] = obs.New("dominance.shadow.missed_prune." + c.Name())
		obsShadowFalsePos[i] = obs.New("dominance.shadow.false_positive." + c.Name())
		shadowLabels[i] = obs.FlightLabel(c.Name())
	}
}

// ShadowCompare evaluates Hyperbola and every competitor on one dominance
// instance. It returns Hyperbola's verdict and a bitmask of competitors
// that disagreed (bit i = shadowCompetitors[i]). Disagreement counters
// move when the obs gate is on; each disagreement is also recorded into tb
// when a trace is active (tb may be nil).
func ShadowCompare(sa, sb, sq geom.Sphere, tb *obs.TraceBuf) (bool, uint8) {
	hyp := Hyperbola{}.Dominates(sa, sb, sq)
	on := obs.On()
	if on {
		obsShadowChecks.Inc()
	}
	var mask uint8
	for i, c := range shadowCompetitors {
		v := c.Dominates(sa, sb, sq)
		if v == hyp {
			continue
		}
		mask |= 1 << i
		if on {
			if hyp {
				obsShadowMissed[i].Inc()
			} else {
				obsShadowFalsePos[i].Inc()
			}
		}
		if tb != nil && tb.Active() {
			tb.Shadow(shadowLabels[i], v, hyp)
		}
	}
	return hyp, mask
}

// ShadowAudit runs ShadowCompare for its side effects and returns the
// primary criterion's verdict, so a search running in shadow mode answers
// exactly as it would without it. When primary is Hyperbola its verdict is
// reused rather than recomputed.
func ShadowAudit(primary Criterion, sa, sb, sq geom.Sphere, tb *obs.TraceBuf) bool {
	hyp, _ := ShadowCompare(sa, sb, sq, tb)
	if _, ok := primary.(Hyperbola); ok {
		return hyp
	}
	return primary.Dominates(sa, sb, sq)
}
