package dominance

import "hyperdom/internal/geom"

// MinMax is the MinMax decision criterion of Section 2.2 (refs [26, 15] of
// the paper): it reports true iff MaxDist(Sa,Sq) < MinDist(Sb,Sq).
//
// It is correct (Lemma 2) but not sound (Lemma 3): when Sq has non-zero
// radius, dominance can hold even though the max/min distance interval of Sa
// and the one of Sb overlap. It is sound when Sq is a point.
type MinMax struct{}

// Name implements Criterion.
func (MinMax) Name() string { return "MinMax" }

// Correct implements Criterion. MinMax never produces false positives.
func (MinMax) Correct() bool { return true }

// Sound implements Criterion. MinMax produces false negatives whenever the
// query sphere is fat enough (Lemma 3).
func (MinMax) Sound() bool { return false }

// Dominates implements Criterion in O(d) time.
func (MinMax) Dominates(sa, sb, sq geom.Sphere) bool {
	checkDims(sa, sb, sq)
	return geom.MaxDist(sa, sq) < geom.MinDist(sb, sq)
}
