package dominance

import (
	"hyperdom/internal/geom"
	"hyperdom/internal/hrect"
)

// MBR is the adapted MBR decision criterion of Section 2.2: the three
// spheres are replaced by their minimum bounding hyperrectangles and the
// DDC-optimal rectangle criterion of Emrich et al. (SIGMOD 2010, ref [14])
// is applied to those.
//
// The rectangle criterion itself is correct and sound for rectangles; the
// adaptation to spheres is correct (Lemma 4) but not sound (Lemma 5),
// because the MBRs of two disjoint spheres can intersect.
type MBR struct{}

// Name implements Criterion.
func (MBR) Name() string { return "MBR" }

// Correct implements Criterion.
func (MBR) Correct() bool { return true }

// Sound implements Criterion.
func (MBR) Sound() bool { return false }

// Dominates implements Criterion in O(d) time. Matching the adaptation the
// paper describes (and costs), it first constructs the three minimum
// bounding hyperrectangles — an O(d) step of its own — and then applies the
// O(d) rectangle criterion.
func (MBR) Dominates(sa, sb, sq geom.Sphere) bool {
	checkDims(sa, sb, sq)
	return hrect.Optimal(sa.MBR(), sb.MBR(), sq.MBR())
}
