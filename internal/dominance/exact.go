package dominance

import (
	"math"

	"hyperdom/internal/geom"
)

// Exact is a reference oracle for the dominance problem: correct and sound
// like Hyperbola, but deliberately implemented with a different minimisation
// strategy — a dense parameter scan over the hyperbola branch followed by
// golden-section refinement — so that the two implementations can validate
// each other. It runs in O(d + S) time for a scan budget S and is meant for
// tests and ground-truth computation, not for hot pruning loops.
type Exact struct{}

// Name implements Criterion.
func (Exact) Name() string { return "Exact" }

// Correct implements Criterion.
func (Exact) Correct() bool { return true }

// Sound implements Criterion.
func (Exact) Sound() bool { return true }

// Dominates implements Criterion.
func (Exact) Dominates(sa, sb, sq geom.Sphere) bool {
	checkDims(sa, sb, sq)
	red, ok := reduce(sa, sb, sq)
	if !ok {
		return false
	}
	if !red.inside {
		return false
	}
	if sq.Radius == 0 {
		return true
	}
	return exactDmin(red) > sq.Radius
}

// Dmin returns the minimum distance from the center of sq to the boundary
// of the region Ra defined by sa and sb, computed by the oracle's numeric
// minimiser. It panics if sa and sb overlap (the boundary does not exist).
// Exposed for tests that want to compare distances rather than verdicts.
func Dmin(sa, sb, sq geom.Sphere) float64 {
	red, ok := reduce(sa, sb, sq)
	if !ok {
		panic("dominance: Dmin called on overlapping Sa, Sb")
	}
	return exactDmin(red)
}

// HyperbolaDmin is the closed-form quartic counterpart of Dmin, exposed for
// the same cross-validation tests. It panics if sa and sb overlap.
func HyperbolaDmin(sa, sb, sq geom.Sphere) float64 {
	red, ok := reduce(sa, sb, sq)
	if !ok {
		panic("dominance: HyperbolaDmin called on overlapping Sa, Sb")
	}
	return hyperbolaDmin(red)
}

// exactDmin computes the minimum distance from (p1,p2) to the left branch
// x²/A² − y²/B² = 1, x ≤ −A by scanning the branch ordinate y over a bracket
// guaranteed to contain the minimiser and refining with golden-section
// search. Robust by construction; used as ground truth.
func exactDmin(red reduced) float64 {
	alpha, rab, p1, p2 := red.alpha, red.rab, red.p1, red.p2
	if red.line {
		// 1-dimensional ambient space: the boundary of Ra is one point.
		return math.Abs(p1 + rab/2)
	}
	if rab == 0 {
		return math.Abs(p1)
	}
	hA := rab / 2
	b2 := (alpha - hA) * (alpha + hA)
	if b2 <= 0 {
		// Fully degenerate branch (tangent spheres): the ray x ≤ −A, y = 0.
		if p1 <= -hA {
			return math.Abs(p2)
		}
		return math.Hypot(p1+hA, p2)
	}
	dist := func(y float64) float64 {
		x := -hA * math.Sqrt(1+y*y/b2)
		return math.Hypot(p1-x, p2-y)
	}
	// The minimiser ŷ satisfies |p2 − ŷ| ≤ dist(ŷ) ≤ dist(0), so it lies in
	// [p2 − dist(0), p2 + dist(0)].
	d0 := dist(0)
	lo, hi := p2-d0, p2+d0
	const steps = 2048
	bestY, bestD := 0.0, d0
	for i := 0; i <= steps; i++ {
		y := lo + (hi-lo)*float64(i)/steps
		if dd := dist(y); dd < bestD {
			bestY, bestD = y, dd
		}
	}
	// Golden-section refinement around the best scanned cell.
	h := (hi - lo) / steps
	a, b := bestY-h, bestY+h
	const phi = 0.6180339887498949
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f1, f2 := dist(x1), dist(x2)
	for i := 0; i < 120 && b-a > 1e-14*(1+math.Abs(a)+math.Abs(b)); i++ {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			f1 = dist(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			f2 = dist(x2)
		}
	}
	if f1 < bestD {
		bestD = f1
	}
	if f2 < bestD {
		bestD = f2
	}
	return bestD
}
