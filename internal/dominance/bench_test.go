package dominance

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkCriteria measures every criterion across dimensionalities on a
// workload of non-trivial (mostly non-overlapping) instances, the per-call
// cost behind the paper's Figures 8–11.
func BenchmarkCriteria(b *testing.B) {
	for _, d := range []int{2, 6, 16, 64} {
		rng := rand.New(rand.NewSource(int64(d)))
		ins := make([]instance, 1024)
		for i := range ins {
			ins[i] = randInstance(rng, d)
		}
		for _, crit := range append(All(), Exact{}) {
			crit := crit
			b.Run(fmt.Sprintf("d=%d/%s", d, crit.Name()), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					in := ins[i%len(ins)]
					crit.Dominates(in.sa, in.sb, in.sq)
				}
			})
		}
	}
}

// BenchmarkReduce isolates the O(d) coordinate transformation.
func BenchmarkReduce(b *testing.B) {
	for _, d := range []int{2, 16, 128} {
		rng := rand.New(rand.NewSource(int64(d)))
		ins := make([]instance, 256)
		for i := range ins {
			ins[i] = instance{
				sa: randSphereT(rng, d, 10, 2),
				sb: randSphereT(rng, d, 10, 2),
				sq: randSphereT(rng, d, 10, 2),
			}
		}
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				in := ins[i%len(ins)]
				reduce(in.sa, in.sb, in.sq)
			}
		})
	}
}

// BenchmarkFindWitness measures the falsifier's cost per budget.
func BenchmarkFindWitness(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	ins := make([]instance, 128)
	for i := range ins {
		ins[i] = randInstance(rng, 4)
	}
	for _, samples := range []int{32, 256} {
		samples := samples
		b.Run(fmt.Sprintf("samples=%d", samples), func(b *testing.B) {
			local := rand.New(rand.NewSource(1))
			for i := 0; i < b.N; i++ {
				in := ins[i%len(ins)]
				FindWitness(in.sa, in.sb, in.sq, samples, local)
			}
		})
	}
}

// BenchmarkHorizon measures the bisection cost of the dominance horizon.
func BenchmarkHorizon(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	ins := make([]instance, 128)
	for i := range ins {
		ins[i] = randInstance(rng, 3)
	}
	for i := 0; i < b.N; i++ {
		in := ins[i%len(ins)]
		Horizon(in.sa, in.sb, in.sq, 0.5, 0.5, 0.5, 100)
	}
}
