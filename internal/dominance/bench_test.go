package dominance

import (
	"fmt"
	"math/rand"
	"testing"

	"hyperdom/internal/geom"
)

// BenchmarkCriteria measures every criterion across dimensionalities on a
// workload of non-trivial (mostly non-overlapping) instances, the per-call
// cost behind the paper's Figures 8–11.
func BenchmarkCriteria(b *testing.B) {
	for _, d := range []int{2, 6, 16, 64} {
		rng := rand.New(rand.NewSource(int64(d)))
		ins := make([]instance, 1024)
		for i := range ins {
			ins[i] = randInstance(rng, d)
		}
		for _, crit := range append(All(), Exact{}) {
			crit := crit
			b.Run(fmt.Sprintf("d=%d/%s", d, crit.Name()), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					in := ins[i%len(ins)]
					crit.Dominates(in.sa, in.sb, in.sq)
				}
			})
		}
	}
}

// BenchmarkPreparedPair measures the pair-amortized kernel against the
// per-triple criterion on a fixed (Sa, Sb) pair at d = 10 — the repeated-
// pair shape of kNN pruning and moving-query workloads.
//
// The headline sub-benchmarks use certain (point) queries, the classic
// "which of A, B is closer to q" pruning check: there the per-query work is
// exactly the two dot products plus the MDD inside test, and the
// amortization removes the whole pair transform (~2.5× on this hardware).
// The SphereQuery pair uses fat queries whose borderline instances run the
// Eq. (14) quartic; that closed-form solve is query-dependent and shared by
// both paths, so it bounds the gain there (~1.2×). BENCH_knn.json records
// both ratios.
func BenchmarkPreparedPair(b *testing.B) {
	const d = 10
	rng := rand.New(rand.NewSource(123))
	sa, sb, points, spheres := preparedPairWorkload(rng, d, 1024)
	var sink bool
	run := func(name string, queries []geom.Sphere) {
		b.Run(name+"/PerTriple", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sq := queries[i%len(queries)]
				sink = Hyperbola{}.Dominates(sa, sb, sq) != sink
			}
		})
		b.Run(name+"/Prepared", func(b *testing.B) {
			pp := PreparePair(sa, sb)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sq := queries[i%len(queries)]
				sink = pp.Dominates(sq) != sink
			}
		})
	}
	run("PointQuery", points)
	run("SphereQuery", spheres)
	_ = sink
}

// preparedPairWorkload builds a non-overlapping (Sa, Sb) pair plus point-
// and sphere-query batches spread around it, shared by
// BenchmarkPreparedPair and the cmd/benchkernel JSON emitter (which repeats
// the same construction).
func preparedPairWorkload(rng *rand.Rand, d, nq int) (sa, sb geom.Sphere, points, spheres []geom.Sphere) {
	for {
		sa = randSphereT(rng, d, 10, 2)
		sb = randSphereT(rng, d, 10, 2)
		if !geom.Overlap(sa, sb) {
			break
		}
	}
	points = make([]geom.Sphere, nq)
	spheres = make([]geom.Sphere, nq)
	for i := range spheres {
		spheres[i] = randSphereT(rng, d, 10, 2)
		points[i] = geom.Sphere{Center: spheres[i].Center, Radius: 0}
	}
	return sa, sb, points, spheres
}

// BenchmarkReduce isolates the O(d) coordinate transformation.
func BenchmarkReduce(b *testing.B) {
	for _, d := range []int{2, 16, 128} {
		rng := rand.New(rand.NewSource(int64(d)))
		ins := make([]instance, 256)
		for i := range ins {
			ins[i] = instance{
				sa: randSphereT(rng, d, 10, 2),
				sb: randSphereT(rng, d, 10, 2),
				sq: randSphereT(rng, d, 10, 2),
			}
		}
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				in := ins[i%len(ins)]
				reduce(in.sa, in.sb, in.sq)
			}
		})
	}
}

// BenchmarkFindWitness measures the falsifier's cost per budget.
func BenchmarkFindWitness(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	ins := make([]instance, 128)
	for i := range ins {
		ins[i] = randInstance(rng, 4)
	}
	for _, samples := range []int{32, 256} {
		samples := samples
		b.Run(fmt.Sprintf("samples=%d", samples), func(b *testing.B) {
			local := rand.New(rand.NewSource(1))
			for i := 0; i < b.N; i++ {
				in := ins[i%len(ins)]
				FindWitness(in.sa, in.sb, in.sq, samples, local)
			}
		})
	}
}

// BenchmarkHorizon measures the bisection cost of the dominance horizon.
func BenchmarkHorizon(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	ins := make([]instance, 128)
	for i := range ins {
		ins[i] = randInstance(rng, 3)
	}
	for i := 0; i < b.N; i++ {
		in := ins[i%len(ins)]
		Horizon(in.sa, in.sb, in.sq, 0.5, 0.5, 0.5, 100)
	}
}
