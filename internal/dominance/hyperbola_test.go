package dominance

import (
	"math"
	"math/rand"
	"testing"

	"hyperdom/internal/geom"
)

func sph(r float64, c ...float64) geom.Sphere { return geom.NewSphere(c, r) }

func TestHyperbolaHandExamples(t *testing.T) {
	h := Hyperbola{}
	tests := []struct {
		name       string
		sa, sb, sq geom.Sphere
		want       bool
	}{
		{
			// Figure 1(a)-style: Sa close to Sq, Sb far behind Sa.
			"clear dominance",
			sph(1, 0, 0), sph(1, 20, 0), sph(1, -10, 0),
			true,
		},
		{
			// Along the axis diff(q=(x,0)) = 6−2x, positive-dominant while
			// x < 2; rq = 2.5 keeps Sq's reach at x ≤ 1.5 < 2.
			"query almost too fat",
			sph(1, 0, 0), sph(1, 6, 0), sph(2.5, -1, 0),
			true,
		},
		{
			// Figure 1(b)-style: rq = 3.5 reaches x = 2.5 > 2, so a query
			// point exists that is nearly equidistant.
			"query too fat",
			sph(1, 0, 0), sph(1, 6, 0), sph(3.5, -1, 0),
			false,
		},
		{
			"overlapping objects (Lemma 1)",
			sph(2, 0, 0), sph(2, 3, 0), sph(0.1, -10, 0),
			false,
		},
		{
			"tangent objects count as overlap",
			sph(1, 0, 0), sph(1, 2, 0), sph(0.1, -10, 0),
			false,
		},
		{
			// Points: dominance iff strictly closer for the single q.
			"all points, closer",
			sph(0, 0, 0), sph(0, 10, 0), sph(0, 1, 0),
			true,
		},
		{
			"all points, equidistant",
			sph(0, 0, 0), sph(0, 2, 0), sph(0, 1, 0),
			false,
		},
		{
			// Lemma 3 construction: q-sphere straddles nothing; perpendicular
			// bisector logic with zero-radius objects. Sa=(0,1), Sb=(0,-1),
			// Sq centered (0,5) r=2: every q has y ≥ 3 > 0, closer to Sa.
			"bisector halfplane, fat query",
			sph(0, 0, 1), sph(0, 0, -1), sph(2, 0, 5),
			true,
		},
		{
			"bisector halfplane, query touches plane",
			sph(0, 0, 1), sph(0, 0, -1), sph(5, 0, 5),
			false,
		},
		{
			// Boundary vertex sits at x = 4 (diff = 10−2x = 2); cq at x = 3
			// is inside Ra with dmin = 1, so rq = 1.1 pokes through.
			"query grazes boundary",
			sph(1, 0, 0), sph(1, 10, 0), sph(1.1, 3, 0),
			false,
		},
		{
			"query just clears boundary",
			sph(1, 0, 0), sph(1, 10, 0), sph(0.9, 3, 0),
			true,
		},
		{
			"query center outside Ra",
			sph(1, 0, 0), sph(1, 10, 0), sph(0.1, 9, 0),
			false,
		},
		{
			"3d symmetric",
			sph(1, 0, 0, 0), sph(1, 10, 0, 0), sph(1, -5, 3, -2),
			true,
		},
		{
			"1d dominance",
			sph(1, 0), sph(1, 10), sph(1, -4),
			true,
		},
		{
			"1d query between",
			sph(1, 0), sph(1, 10), sph(2, 4),
			false,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := h.Dominates(tc.sa, tc.sb, tc.sq); got != tc.want {
				t.Errorf("Hyperbola = %v, want %v", got, tc.want)
			}
			if got := (Exact{}).Dominates(tc.sa, tc.sb, tc.sq); got != tc.want {
				t.Errorf("Exact oracle = %v, want %v (test expectation wrong?)", got, tc.want)
			}
		})
	}
}

// TestHyperbolaQueryGrazesExact pins the grazing case analytically: with
// point objects at ±1 on the x-axis the boundary is the plane x = 0, so Sq
// centered at (−3,…) with radius exactly 3 touches the boundary and must not
// dominate, while radius 2.999 must.
func TestHyperbolaGrazingHyperplane(t *testing.T) {
	h := Hyperbola{}
	sa := sph(0, -1, 0)
	sb := sph(0, 1, 0)
	if h.Dominates(sa, sb, sph(3, -3, 0)) {
		t.Error("query tangent to the bisector plane must not be dominated (strictness)")
	}
	if !h.Dominates(sa, sb, sph(2.999, -3, 0)) {
		t.Error("query strictly inside the halfplane must be dominated")
	}
}

// TestHyperbolaVsExactRandom is the central agreement test: on hundreds of
// thousands of random instances across dimensionalities, the closed-form
// Hyperbola verdict must equal the numeric oracle's verdict except within a
// hair of the decision boundary.
func TestHyperbolaVsExactRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := Hyperbola{}
	e := Exact{}
	const perDim = 20000
	for _, d := range []int{1, 2, 3, 5, 8, 16, 50} {
		checked, skipped := 0, 0
		for i := 0; i < perDim; i++ {
			in := randInstance(rng, d)
			if nearBoundary(in, 1e-7) {
				skipped++
				continue
			}
			checked++
			got := h.Dominates(in.sa, in.sb, in.sq)
			want := e.Dominates(in.sa, in.sb, in.sq)
			if got != want {
				t.Fatalf("d=%d i=%d: Hyperbola=%v Exact=%v\nsa=%v\nsb=%v\nsq=%v",
					d, i, got, want, in.sa, in.sb, in.sq)
			}
		}
		if checked < perDim/2 {
			t.Errorf("d=%d: only %d instances checked (%d skipped as boundary-ambiguous)", d, checked, skipped)
		}
	}
}

// TestDminAgreement compares the closed-form quartic distance against the
// oracle's scan-and-refine distance directly.
func TestDminAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50000; i++ {
		d := 1 + rng.Intn(8)
		sa := randSphereT(rng, d, 10, 4)
		sb := randSphereT(rng, d, 10, 4)
		sq := randSphereT(rng, d, 10, 4)
		if geom.Overlap(sa, sb) {
			continue
		}
		got := HyperbolaDmin(sa, sb, sq)
		want := Dmin(sa, sb, sq)
		if math.Abs(got-want) > 1e-6*(1+want) {
			t.Fatalf("i=%d: HyperbolaDmin=%v Dmin=%v\nsa=%v\nsb=%v\nsq=%v",
				i, got, want, sa, sb, sq)
		}
	}
}

// TestDminSpecialPositions exercises the degenerate positions the Lagrange
// back-substitution cannot reach: cq on the focal axis, cq on the
// perpendicular bisector plane, and point objects.
func TestDminSpecialPositions(t *testing.T) {
	sa := sph(1, -5, 0)
	sb := sph(2, 5, 0)

	t.Run("cq on axis, near side", func(t *testing.T) {
		sq := sph(0, -20, 0)
		got := HyperbolaDmin(sa, sb, sq)
		want := Dmin(sa, sb, sq)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Errorf("dmin = %v, oracle %v", got, want)
		}
	})
	t.Run("cq on axis, between vertex and focus", func(t *testing.T) {
		sq := sph(0, -3, 0)
		got := HyperbolaDmin(sa, sb, sq)
		want := Dmin(sa, sb, sq)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Errorf("dmin = %v, oracle %v", got, want)
		}
	})
	t.Run("cq on bisector plane", func(t *testing.T) {
		sq := sph(0, 0, 7)
		got := HyperbolaDmin(sa, sb, sq)
		want := Dmin(sa, sb, sq)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Errorf("dmin = %v, oracle %v", got, want)
		}
	})
	t.Run("point objects: plane distance", func(t *testing.T) {
		pa := sph(0, -1, 0)
		pb := sph(0, 1, 0)
		got := HyperbolaDmin(pa, pb, sph(0, -4, 3))
		if math.Abs(got-4) > 1e-12 {
			t.Errorf("dmin to bisector plane = %v, want 4", got)
		}
	})
	t.Run("vertex is nearest for on-axis cq just left of vertex region", func(t *testing.T) {
		// Vertex at x = −rab/2 = −1.5; focus at −5. For p1 ∈ (−α²/A, −A)
		// the vertex is the minimiser.
		sq := sph(0, -2.0, 0)
		got := HyperbolaDmin(sa, sb, sq)
		want := Dmin(sa, sb, sq)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("dmin = %v, oracle %v", got, want)
		}
	})
}

// TestHyperbolaNearTangent probes numerical behaviour when Sa and Sb are
// almost tangent (B² → 0) — the hyperbola degenerates toward a ray.
func TestHyperbolaNearTangent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		d := 2 + rng.Intn(4)
		sa := randSphereT(rng, d, 10, 3)
		sb := randSphereT(rng, d, 10, 3)
		// Stretch sb's radius so the gap is tiny but positive.
		gap := 1e-6 * (1 + rng.Float64())
		dcc := distCenters(sa, sb)
		sb.Radius = dcc - sa.Radius - gap
		if sb.Radius < 0 {
			continue
		}
		sq := randSphereT(rng, d, 10, 3)
		in := instance{sa, sb, sq}
		if nearBoundary(in, 1e-6) {
			continue
		}
		got := Hyperbola{}.Dominates(sa, sb, sq)
		want := Exact{}.Dominates(sa, sb, sq)
		if got != want {
			t.Fatalf("near-tangent i=%d: Hyperbola=%v Exact=%v\nsa=%v\nsb=%v\nsq=%v",
				i, got, want, sa, sb, sq)
		}
	}
}

// TestHyperbolaFarOffsets checks robustness under large coordinate offsets,
// the classic catastrophic-cancellation trap.
func TestHyperbolaFarOffsets(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, offset := range []float64{1e3, 1e5, 1e6} {
		mism := 0
		total := 0
		for i := 0; i < 5000; i++ {
			d := 2 + rng.Intn(4)
			in := randInstance(rng, d)
			shift := make([]float64, d)
			for j := range shift {
				shift[j] = offset
			}
			in.sa = transformSphere(in.sa, identity(d), 1, shift)
			in.sb = transformSphere(in.sb, identity(d), 1, shift)
			in.sq = transformSphere(in.sq, identity(d), 1, shift)
			// The boundary tolerance must scale with the offset: absolute
			// float error grows linearly with coordinate magnitude.
			if nearBoundary(in, 1e-7*offset) {
				continue
			}
			total++
			if (Hyperbola{}).Dominates(in.sa, in.sb, in.sq) != (Exact{}).Dominates(in.sa, in.sb, in.sq) {
				mism++
			}
		}
		if mism > 0 {
			t.Errorf("offset %g: %d/%d verdict mismatches vs oracle", offset, mism, total)
		}
	}
}

func TestHyperbolaPanicsOnMixedDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mixed dimensionality did not panic")
		}
	}()
	Hyperbola{}.Dominates(sph(1, 0, 0), sph(1, 0, 0, 0), sph(1, 0, 0))
}

func distCenters(a, b geom.Sphere) float64 {
	var s float64
	for i := range a.Center {
		d := a.Center[i] - b.Center[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func identity(d int) [][]float64 {
	m := make([][]float64, d)
	for i := range m {
		m[i] = make([]float64, d)
		m[i][i] = 1
	}
	return m
}
