package dominance

import (
	"math"

	"hyperdom/internal/geom"
)

// GP is an adaptation of the GP (geometric pruning) decision criterion of
// Lian and Chen (VLDBJ 2009, ref [22] of the paper). For dimensionality
// d > 2 it collapses the instance to 2-D and decides dominance there; for
// d ≤ 2 it is the exact 2-D procedure, matching the paper's remark that GP
// "is optimal for 2-dimensional datasets only".
//
// The collapse: coordinates are first translated so that ca is the origin,
// then a point x is mapped to u(x) = (‖x[1..d−1]‖, x[d]). The transform has
// two properties the appendix of the paper relies on:
//
//   - Dist(u(x), u(y)) ≤ Dist(x, y)       (pairwise distances shrink), and
//   - Dist(u(x), u(ca)) = Dist(x, ca)     (distances to ca are preserved,
//     because ‖u(x)‖ = ‖x‖ and ca maps to the origin).
//
// If dominance holds among the collapsed spheres (same radii, collapsed
// centers), then for every q ∈ Sq its image q′ lies in the collapsed query
// sphere and Dist(cb,q) − Dist(ca,q) ≥ Dist(u(cb),q′) − Dist(u(ca),q′) >
// ra+rb, so dominance holds in the original space: the criterion is correct.
// It is not sound for d > 2: the collapse can shrink Dist(cb,·) enough to
// break the MDD condition in 2-D even though it holds in d dimensions.
//
// The exact internals of [22] are not fully specified in the paper; this
// reconstruction provably has every property the paper asserts for GP
// (correct, not sound, O(d), "does the computations in the 2D space only").
// See DESIGN.md §5.
type GP struct{}

// Name implements Criterion.
func (GP) Name() string { return "GP" }

// Correct implements Criterion.
func (GP) Correct() bool { return true }

// Sound implements Criterion. GP is sound only for d ≤ 2.
func (GP) Sound() bool { return false }

// Dominates implements Criterion in O(d) time.
func (GP) Dominates(sa, sb, sq geom.Sphere) bool {
	d := checkDims(sa, sb, sq)
	if d <= 2 {
		return Hyperbola{}.Dominates(sa, sb, sq)
	}
	ca, cb, cq := sa.Center, sb.Center, sq.Center
	var nb2, nq2 float64 // squared norms of the first d−1 translated coords
	for i := 0; i < d-1; i++ {
		eb := cb[i] - ca[i]
		nb2 += eb * eb
		eq := cq[i] - ca[i]
		nq2 += eq * eq
	}
	last := d - 1
	ub := [2]float64{math.Sqrt(nb2), cb[last] - ca[last]}
	uq := [2]float64{math.Sqrt(nq2), cq[last] - ca[last]}
	sa2 := geom.Sphere{Center: []float64{0, 0}, Radius: sa.Radius}
	sb2 := geom.Sphere{Center: ub[:], Radius: sb.Radius}
	sq2 := geom.Sphere{Center: uq[:], Radius: sq.Radius}
	return Hyperbola{}.Dominates(sa2, sb2, sq2)
}
