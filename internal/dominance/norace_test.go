//go:build !race

package dominance

// raceEnabled reports that this test binary was built with -race, whose
// instrumentation distorts timing and allocation measurements.
const raceEnabled = false
