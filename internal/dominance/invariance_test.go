package dominance

import (
	"math/rand"
	"testing"
)

// Dominance is defined purely through Euclidean distances, so every
// criterion's verdict must be invariant under rigid motions (rotation +
// translation) and positive uniform scaling of the whole instance. These
// metamorphic properties catch coordinate-system bugs that pointwise tests
// cannot.

// Criteria defined purely through pairwise distances must be invariant
// under rotation + translation. MBR (axis-aligned boxes) and GP (collapses
// onto the last coordinate) are deliberately excluded: their verdicts are
// allowed to change under rotation — see
// TestRotationNeverCreatesFalsePositives for the guarantee they do keep.
func TestVerdictInvariantUnderRigidMotion(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	criteria := []Criterion{MinMax{}, Trigonometric{}, Hyperbola{}, Exact{}}
	for i := 0; i < 3000; i++ {
		d := 2 + rng.Intn(6)
		in := randInstance(rng, d)
		if nearBoundary(in, 1e-6) {
			continue
		}
		rot := randRotation(rng, d)
		tr := make([]float64, d)
		for j := range tr {
			tr[j] = rng.NormFloat64() * 50
		}
		for _, c := range criteria {
			before := c.Dominates(in.sa, in.sb, in.sq)
			after := c.Dominates(
				transformSphere(in.sa, rot, 1, tr),
				transformSphere(in.sb, rot, 1, tr),
				transformSphere(in.sq, rot, 1, tr),
			)
			if before != after {
				t.Fatalf("%s verdict changed under rigid motion (i=%d d=%d): %v -> %v\nsa=%v\nsb=%v\nsq=%v",
					c.Name(), i, d, before, after, in.sa, in.sb, in.sq)
			}
		}
	}
}

// Every criterion, including MBR and GP, must be invariant under pure
// translation.
func TestVerdictInvariantUnderTranslation(t *testing.T) {
	rng := rand.New(rand.NewSource(2027))
	for i := 0; i < 3000; i++ {
		d := 2 + rng.Intn(6)
		in := randInstance(rng, d)
		if nearBoundary(in, 1e-6) {
			continue
		}
		tr := make([]float64, d)
		for j := range tr {
			tr[j] = rng.NormFloat64() * 50
		}
		for _, c := range All() {
			before := c.Dominates(in.sa, in.sb, in.sq)
			after := c.Dominates(
				transformSphere(in.sa, identity(d), 1, tr),
				transformSphere(in.sb, identity(d), 1, tr),
				transformSphere(in.sq, identity(d), 1, tr),
			)
			if before != after {
				t.Fatalf("%s verdict changed under translation (i=%d d=%d): %v -> %v\nsa=%v\nsb=%v\nsq=%v",
					c.Name(), i, d, before, after, in.sa, in.sb, in.sq)
			}
		}
	}
}

func TestVerdictInvariantUnderScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(2025))
	zero := func(d int) []float64 { return make([]float64, d) }
	for i := 0; i < 4000; i++ {
		d := 2 + rng.Intn(6)
		in := randInstance(rng, d)
		if nearBoundary(in, 1e-6) {
			continue
		}
		s := 0.01 + rng.Float64()*100
		for _, c := range All() {
			before := c.Dominates(in.sa, in.sb, in.sq)
			after := c.Dominates(
				transformSphere(in.sa, identity(d), s, zero(d)),
				transformSphere(in.sb, identity(d), s, zero(d)),
				transformSphere(in.sq, identity(d), s, zero(d)),
			)
			if before != after {
				t.Fatalf("%s verdict changed under scaling by %v (i=%d d=%d): %v -> %v\nsa=%v\nsb=%v\nsq=%v",
					c.Name(), s, i, d, before, after, in.sa, in.sb, in.sq)
			}
		}
	}
}

// The GP criterion is NOT rotation-invariant in its collapsed coordinates
// for d > 2 — but its verdict changes only between false and false or
// false and true in the "safe" direction. This test documents the weaker
// guarantee that holds: rotations never turn a correct criterion's verdict
// into a false positive.
func TestRotationNeverCreatesFalsePositives(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	oracle := Exact{}
	for i := 0; i < 2000; i++ {
		d := 3 + rng.Intn(5)
		in := randInstance(rng, d)
		if nearBoundary(in, 1e-6) {
			continue
		}
		rot := randRotation(rng, d)
		sa := transformSphere(in.sa, rot, 1, make([]float64, d))
		sb := transformSphere(in.sb, rot, 1, make([]float64, d))
		sq := transformSphere(in.sq, rot, 1, make([]float64, d))
		truth := oracle.Dominates(sa, sb, sq)
		for _, c := range All() {
			if !c.Correct() {
				continue
			}
			if c.Dominates(sa, sb, sq) && !truth {
				t.Fatalf("%s false positive after rotation\nsa=%v\nsb=%v\nsq=%v", c.Name(), sa, sb, sq)
			}
		}
	}
}
