package dominance

import (
	"math/rand"
	"testing"

	"hyperdom/internal/geom"
)

// TestTable1 empirically verifies the correctness/soundness matrix of the
// paper's Table 1 against the exact oracle on a large random workload:
//
//	MinMax, MBR, GP:  correct (never true when the oracle says false)
//	Trigonometric:    sound   (never false when the oracle says true)
//	Hyperbola:        both
//
// and additionally that each "no" in the table is real: the unsound
// criteria must produce at least one false negative on the workload, and
// Trigonometric at least one false positive.
func TestTable1(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	oracle := Exact{}
	type tally struct{ fp, fn int }
	counts := map[string]*tally{}
	for _, c := range All() {
		counts[c.Name()] = &tally{}
	}
	const n = 30000
	for i := 0; i < n; i++ {
		d := 2 + rng.Intn(7)
		in := randInstance(rng, d)
		if nearBoundary(in, 1e-7) {
			continue
		}
		truth := oracle.Dominates(in.sa, in.sb, in.sq)
		for _, c := range All() {
			got := c.Dominates(in.sa, in.sb, in.sq)
			tl := counts[c.Name()]
			switch {
			case got && !truth:
				tl.fp++
				if c.Correct() {
					t.Fatalf("%s produced a false positive but claims correctness\nsa=%v\nsb=%v\nsq=%v",
						c.Name(), in.sa, in.sb, in.sq)
				}
			case !got && truth:
				tl.fn++
				if c.Sound() {
					t.Fatalf("%s produced a false negative but claims soundness\nsa=%v\nsb=%v\nsq=%v",
						c.Name(), in.sa, in.sb, in.sq)
				}
			}
		}
	}
	// The "no" cells must be exercised by the workload.
	for _, name := range []string{"MinMax", "MBR", "GP"} {
		if counts[name].fn == 0 {
			t.Errorf("%s produced no false negatives on %d instances; workload too easy for a meaningful Table 1 check", name, n)
		}
	}
	if counts["Trigonometric"].fp == 0 {
		t.Errorf("Trigonometric produced no false positives on %d instances", n)
	}
	if c := counts["Hyperbola"]; c.fp != 0 || c.fn != 0 {
		t.Errorf("Hyperbola fp=%d fn=%d, want 0/0", c.fp, c.fn)
	}
}

// TestCorrectnessHierarchy checks the implication chain on random
// instances: a true verdict from any correct criterion implies a true
// verdict from Hyperbola (= truth), and a true verdict from Hyperbola
// implies a true verdict from every sound criterion.
func TestCorrectnessHierarchy(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	correct := []Criterion{MinMax{}, MBR{}, GP{}}
	sound := []Criterion{Trigonometric{}}
	for i := 0; i < 30000; i++ {
		d := 1 + rng.Intn(8)
		in := randInstance(rng, d)
		if nearBoundary(in, 1e-7) {
			continue
		}
		hyp := Hyperbola{}.Dominates(in.sa, in.sb, in.sq)
		for _, c := range correct {
			if c.Dominates(in.sa, in.sb, in.sq) && !hyp {
				t.Fatalf("%s=true but Hyperbola=false\nsa=%v\nsb=%v\nsq=%v",
					c.Name(), in.sa, in.sb, in.sq)
			}
		}
		if hyp {
			for _, c := range sound {
				if !c.Dominates(in.sa, in.sb, in.sq) {
					t.Fatalf("Hyperbola=true but %s=false\nsa=%v\nsb=%v\nsq=%v",
						c.Name(), in.sa, in.sb, in.sq)
				}
			}
		}
	}
}

// TestLemma3MinMaxNotSound reproduces the construction in the proof of
// Lemma 3: two point objects on a vertical line and a fat query sphere
// above the bisector. MinMax must say false while dominance holds.
func TestLemma3MinMaxNotSound(t *testing.T) {
	sa := sph(0, 0, 1)  // point at (0, 1)
	sb := sph(0, 0, -1) // point at (0, −1)
	sq := sph(3, 0, 4)  // fat sphere strictly above the bisector y = 0
	if (MinMax{}).Dominates(sa, sb, sq) {
		t.Fatal("MinMax unexpectedly true; the construction requires MaxDist(Sa,Sq) > MinDist(Sb,Sq)")
	}
	if !(Hyperbola{}).Dominates(sa, sb, sq) {
		t.Fatal("dominance should hold: every q ∈ Sq has positive y, closer to Sa")
	}
}

// TestLemma5MBRNotSound reproduces the construction in the proof of
// Lemma 5: three equal-radius spheres with centers on a slope-1 line,
// spaced so the spheres are disjoint but their MBRs intersect.
func TestLemma5MBRNotSound(t *testing.T) {
	r := 1.0
	delta := 0.05
	// Unit direction along the line y = x.
	u := []float64{0.7071067811865476, 0.7071067811865476}
	cq := []float64{0, 0}
	ca := []float64{4 * r * u[0], 4 * r * u[1]}
	cb := []float64{(6*r + delta) * u[0], (6*r + delta) * u[1]}
	sa := geom.NewSphere(ca, r)
	sb := geom.NewSphere(cb, r)
	sq := geom.NewSphere(cq, r)
	if !sa.MBR().Intersects(sb.MBR()) {
		t.Fatal("construction broken: MBRs of Sa and Sb should intersect")
	}
	if geom.Overlap(sa, sb) {
		t.Fatal("construction broken: Sa and Sb must not overlap as spheres")
	}
	if (MBR{}).Dominates(sa, sb, sq) {
		t.Fatal("MBR criterion unexpectedly true with intersecting MBRs")
	}
	if !(Exact{}).Dominates(sa, sb, sq) {
		t.Fatal("dominance should hold in the Lemma 5 construction")
	}
}

// TestLemma11TrigNotCorrect pins a false positive of the Trigonometric
// criterion (Lemma 11 of the paper). The construction exploits the lemma's
// core idea — optimising the surrogate g is not equivalent to optimising
// the true margin f: with ca=(−3,0) and cb=(0,100) the two g-extreme probes
// lie nearly along the y-axis, while f dips below zero at ~45°, between the
// probes.
//
// (The paper's own numeric example, ca=(20,8) cb=(8,10) cq=(16,16)
// ra=0.4 rb=0.3 rq=0.3, does not produce a false positive under the
// appendix's literal probe-the-two-g-extremes procedure — there the g-probe
// happens to land inside the witness region — so this test uses a
// construction where the failure provably occurs. See EXPERIMENTS.md.)
func TestLemma11TrigNotCorrect(t *testing.T) {
	sa := sph(0, -3, 0)
	sb := sph(95.8, 0, 100)
	sq := sph(1, 0, 0)
	if !(Trigonometric{}).Dominates(sa, sb, sq) {
		t.Fatal("Trigonometric should return true on this construction (false positive)")
	}
	if (Exact{}).Dominates(sa, sb, sq) {
		t.Fatal("dominance must not hold on this construction")
	}
	if (Hyperbola{}).Dominates(sa, sb, sq) {
		t.Fatal("Hyperbola must agree with the oracle")
	}
	// The failure of dominance is independently certified by a witness point.
	if w := FindWitness(sa, sb, sq, 2048, nil); w == nil {
		t.Fatal("no witness found although the oracle reports non-dominance")
	}
}

// TestMinMaxSoundForPointQueries: the paper notes MinMax is sound when Sq
// is a point, making it exact there.
func TestMinMaxSoundForPointQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for i := 0; i < 20000; i++ {
		d := 1 + rng.Intn(6)
		sa := randSphereT(rng, d, 10, 4)
		sb := randSphereT(rng, d, 10, 4)
		sq := geom.Point(randSphereT(rng, d, 10, 0).Center)
		in := instance{sa, sb, sq}
		if nearBoundary(in, 1e-9) {
			continue
		}
		if (MinMax{}).Dominates(sa, sb, sq) != (Exact{}).Dominates(sa, sb, sq) {
			t.Fatalf("MinMax must be exact for point queries\nsa=%v\nsb=%v\nsq=%v", sa, sb, sq)
		}
	}
}

// TestGPExactIn2D: GP is optimal for d ≤ 2.
func TestGPExactIn2D(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 20000; i++ {
		in := randInstance(rng, 2)
		if nearBoundary(in, 1e-8) {
			continue
		}
		if (GP{}).Dominates(in.sa, in.sb, in.sq) != (Exact{}).Dominates(in.sa, in.sb, in.sq) {
			t.Fatalf("GP must be exact in 2D\nsa=%v\nsb=%v\nsq=%v", in.sa, in.sb, in.sq)
		}
	}
}

// TestAllCriteriaOverlapFalse: with overlapping Sa and Sb no correct
// criterion may report dominance (Lemma 1).
func TestAllCriteriaOverlapFalse(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for i := 0; i < 5000; i++ {
		d := 1 + rng.Intn(6)
		sa := randSphereT(rng, d, 5, 4)
		sb := sa.Clone()
		// Nudge sb but keep it overlapping.
		for j := range sb.Center {
			sb.Center[j] += rng.NormFloat64() * sa.Radius / (2 * float64(d))
		}
		sq := randSphereT(rng, d, 5, 4)
		if !geom.Overlap(sa, sb) {
			continue
		}
		for _, c := range All() {
			if !c.Correct() {
				continue
			}
			if c.Dominates(sa, sb, sq) {
				t.Fatalf("%s reported dominance for overlapping objects\nsa=%v\nsb=%v\nsq=%v",
					c.Name(), sa, sb, sq)
			}
		}
	}
}

// TestDominanceAsymmetry: Dom(Sa,Sb,Sq) and Dom(Sb,Sa,Sq) can never both
// hold.
func TestDominanceAsymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	h := Hyperbola{}
	for i := 0; i < 20000; i++ {
		d := 1 + rng.Intn(6)
		in := randInstance(rng, d)
		if h.Dominates(in.sa, in.sb, in.sq) && h.Dominates(in.sb, in.sa, in.sq) {
			t.Fatalf("both directions dominate\nsa=%v\nsb=%v\nsq=%v", in.sa, in.sb, in.sq)
		}
	}
}

// TestShrinkingQueryMonotone: if Sq ⊆ Sq′ then dominance wrt Sq′ implies
// dominance wrt Sq (the MDD min is over a smaller set).
func TestShrinkingQueryMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	h := Hyperbola{}
	for i := 0; i < 20000; i++ {
		d := 1 + rng.Intn(6)
		in := randInstance(rng, d)
		small := geom.NewSphere(in.sq.Center, in.sq.Radius*rng.Float64())
		if h.Dominates(in.sa, in.sb, in.sq) && !h.Dominates(in.sa, in.sb, small) {
			t.Fatalf("shrinking the query broke dominance\nsa=%v\nsb=%v\nsq=%v small r=%v",
				in.sa, in.sb, in.sq, small.Radius)
		}
	}
}

// TestGrowingObjectsMonotone: growing Sb's radius (while staying disjoint
// from Sa) can only break dominance... it actually strengthens the
// requirement; conversely shrinking rb preserves dominance.
func TestGrowingObjectsMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	h := Hyperbola{}
	for i := 0; i < 20000; i++ {
		d := 1 + rng.Intn(6)
		in := randInstance(rng, d)
		smaller := geom.NewSphere(in.sb.Center, in.sb.Radius*rng.Float64())
		if h.Dominates(in.sa, in.sb, in.sq) && !h.Dominates(in.sa, smaller, in.sq) {
			t.Fatalf("shrinking Sb broke dominance\nsa=%v\nsb=%v\nsq=%v", in.sa, in.sb, in.sq)
		}
	}
}

// TestDominanceTransitive: Dom(X,Y,Q) ∧ Dom(Y,Z,Q) ⟹ Dom(X,Z,Q). The kNN
// eviction logic (Section 6 Case 1) silently relies on this chaining.
func TestDominanceTransitive(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	h := Hyperbola{}
	chains := 0
	for i := 0; i < 60000 && chains < 300; i++ {
		d := 1 + rng.Intn(4)
		// Collinear-ish placement makes chains likely.
		base := randSphereT(rng, d, 5, 1)
		y := randSphereT(rng, d, 5, 1)
		z := randSphereT(rng, d, 5, 1)
		q := randSphereT(rng, d, 5, 1)
		if !h.Dominates(base.Clone(), y.Clone(), q) || !h.Dominates(y.Clone(), z.Clone(), q) {
			continue
		}
		chains++
		if !h.Dominates(base, z, q) {
			t.Fatalf("transitivity violated (i=%d)\nx=%v\ny=%v\nz=%v\nq=%v", i, base, y, z, q)
		}
	}
	if chains < 50 {
		t.Skipf("only %d chains found; property weakly exercised", chains)
	}
}

func TestByName(t *testing.T) {
	for _, c := range All() {
		got := ByName(c.Name())
		if got == nil || got.Name() != c.Name() {
			t.Errorf("ByName(%q) = %v", c.Name(), got)
		}
	}
	if ByName("Exact") == nil {
		t.Error("ByName(Exact) = nil")
	}
	if ByName("nope") != nil {
		t.Error("ByName(nope) != nil")
	}
}

func TestAllOrderMatchesTable1(t *testing.T) {
	want := []string{"MinMax", "MBR", "GP", "Trigonometric", "Hyperbola"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("All() returned %d criteria", len(all))
	}
	for i, c := range all {
		if c.Name() != want[i] {
			t.Errorf("All()[%d] = %s, want %s", i, c.Name(), want[i])
		}
	}
}
