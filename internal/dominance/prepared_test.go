package dominance

import (
	"math"
	"math/rand"
	"testing"

	"hyperdom/internal/geom"
)

// TestPreparedPairMatchesHyperbola is the differential test behind the
// PreparedPair contract: over random instances of every flavour —
// overlapping, borderline, degenerate, 1-dimensional — the prepared verdict
// must equal Hyperbola{}'s exactly, with no tolerance. Both paths are pure
// float64 arithmetic with identical association, so even boundary instances
// must agree bit for bit.
func TestPreparedPairMatchesHyperbola(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, d := range []int{1, 2, 3, 8, 16} {
		for trial := 0; trial < 4000; trial++ {
			in := randInstance(rng, d)
			pp := PreparePair(in.sa, in.sb)
			got := pp.Dominates(in.sq)
			want := Hyperbola{}.Dominates(in.sa, in.sb, in.sq)
			if got != want {
				t.Fatalf("d=%d: PreparedPair=%v Hyperbola=%v\nsa=%v\nsb=%v\nsq=%v",
					d, got, want, in.sa, in.sb, in.sq)
			}
		}
	}
}

// TestPreparedPairAmortizedReuse drives one prepared pair through many
// queries — the usage pattern the type exists for — and a Reset-reused
// value through fresh pairs, checking agreement with the per-triple path.
func TestPreparedPairAmortizedReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	const d = 6
	var pp PreparedPair
	for pair := 0; pair < 50; pair++ {
		sa := randSphereT(rng, d, 10, 3)
		sb := randSphereT(rng, d, 10, 3)
		pp.Reset(sa, sb)
		if pp.Overlaps() != geom.Overlap(sa, sb) {
			t.Fatalf("Overlaps()=%v but geom.Overlap=%v", pp.Overlaps(), geom.Overlap(sa, sb))
		}
		for q := 0; q < 100; q++ {
			sq := randSphereT(rng, d, 10, 3)
			if got, want := pp.Dominates(sq), (Hyperbola{}).Dominates(sa, sb, sq); got != want {
				t.Fatalf("pair %d query %d: PreparedPair=%v Hyperbola=%v", pair, q, got, want)
			}
		}
	}
}

// TestPreparedPairDegenerateCases pins the hand-picked geometries where the
// closed-form machinery branches: rab = 0, p1 = 0 (bisector query), p2 = 0
// (on-axis query), overlapping pairs, tangent pairs, point queries, and the
// 1-dimensional line case.
func TestPreparedPairDegenerateCases(t *testing.T) {
	cases := []struct {
		name       string
		sa, sb, sq geom.Sphere
	}{
		{"rab=0", geom.NewSphere([]float64{0, 0}, 0), geom.NewSphere([]float64{10, 0}, 0), geom.NewSphere([]float64{-3, 1}, 2)},
		{"rab=0 grazing", geom.NewSphere([]float64{0, 0}, 0), geom.NewSphere([]float64{1, 0}, 0), geom.NewSphere([]float64{-3, 0}, 3)},
		{"p1=0 bisector", geom.NewSphere([]float64{-5, 0}, 1), geom.NewSphere([]float64{5, 0}, 2), geom.NewSphere([]float64{0, 7}, 1)},
		{"p2=0 on-axis", geom.NewSphere([]float64{-5, 0}, 1), geom.NewSphere([]float64{5, 0}, 2), geom.NewSphere([]float64{-20, 0}, 1)},
		{"p1=0 p2=0 midpoint", geom.NewSphere([]float64{-5, 0}, 1), geom.NewSphere([]float64{5, 0}, 1), geom.NewSphere([]float64{0, 0}, 1)},
		{"overlap", geom.NewSphere([]float64{0, 0}, 2), geom.NewSphere([]float64{3, 0}, 2), geom.NewSphere([]float64{10, 10}, 1)},
		{"tangent", geom.NewSphere([]float64{0, 0}, 2), geom.NewSphere([]float64{4, 0}, 2), geom.NewSphere([]float64{-9, 0}, 1)},
		{"point query inside", geom.NewSphere([]float64{0, 0}, 1), geom.NewSphere([]float64{9, 0}, 1), geom.NewSphere([]float64{-4, 0}, 0)},
		{"point query outside", geom.NewSphere([]float64{0, 0}, 1), geom.NewSphere([]float64{9, 0}, 1), geom.NewSphere([]float64{5, 0}, 0)},
		{"1-D dominates", geom.NewSphere([]float64{0}, 1), geom.NewSphere([]float64{10}, 1), geom.NewSphere([]float64{-5}, 1)},
		{"1-D boundary", geom.NewSphere([]float64{0}, 1), geom.NewSphere([]float64{10}, 1), geom.NewSphere([]float64{3}, 1)},
	}
	for _, tc := range cases {
		pp := PreparePair(tc.sa, tc.sb)
		got := pp.Dominates(tc.sq)
		want := Hyperbola{}.Dominates(tc.sa, tc.sb, tc.sq)
		if got != want {
			t.Errorf("%s: PreparedPair=%v Hyperbola=%v", tc.name, got, want)
		}
	}
}

// TestPreparedPairPanicsOnMixedDims: the prepared kernel must fail fast on
// dimensionality bugs exactly like checkDims does.
func TestPreparedPairPanicsOnMixedDims(t *testing.T) {
	check := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic on mixed dimensionality", name)
			}
		}()
		fn()
	}
	check("PreparePair", func() {
		PreparePair(geom.NewSphere([]float64{0, 0}, 1), geom.NewSphere([]float64{1}, 1))
	})
	check("Dominates", func() {
		pp := PreparePair(geom.NewSphere([]float64{0, 0}, 1), geom.NewSphere([]float64{9, 0}, 1))
		pp.Dominates(geom.NewSphere([]float64{1}, 1))
	})
}

// TestPreparedPairDominatesAllocFree: the per-query path must not touch the
// heap — it is the inner loop of the kNN kernel.
func TestPreparedPairDominatesAllocFree(t *testing.T) {
	sa := geom.NewSphere([]float64{0, 0, 0, 0}, 1)
	sb := geom.NewSphere([]float64{9, 0, 0, 0}, 1)
	queries := []geom.Sphere{
		geom.NewSphere([]float64{-4, 0, 0, 0}, 2),   // quartic path
		geom.NewSphere([]float64{-4, 0, 0, 0}, 0),   // point query
		geom.NewSphere([]float64{20, 3, 0, 0}, 1),   // outside Ra
		geom.NewSphere([]float64{-4, 0.5, 0, 0}, 3), // fat, borderline
	}
	pp := PreparePair(sa, sb)
	var sink bool
	allocs := testing.AllocsPerRun(200, func() {
		for _, sq := range queries {
			sink = pp.Dominates(sq) != sink
		}
	})
	_ = sink
	if allocs != 0 {
		t.Errorf("PreparedPair.Dominates allocated %.1f times per run, want 0", allocs)
	}
}

// FuzzPreparedPairAgree is the adversarial form of the differential test:
// arbitrary 3-D coordinates, including the degenerate rab=0 / p1=0 / p2=0
// seeds, must produce exactly equal verdicts from the prepared and
// per-triple paths. No boundary tolerance is allowed — the two paths share
// their arithmetic, so any disagreement is a real bug in the factoring.
func FuzzPreparedPairAgree(f *testing.F) {
	f.Add(0.0, 0.0, 0.0, 1.0, 9.0, 0.0, 0.0, 1.0, -4.0, 0.0, 0.0, 2.0)
	f.Add(0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, -3.0, 0.0, 0.0, 3.0)   // rab = 0
	f.Add(-5.0, 0.0, 0.0, 1.0, 5.0, 0.0, 0.0, 2.0, 0.0, 7.0, 0.0, 1.0)   // p1 = 0 (bisector)
	f.Add(-5.0, 0.0, 0.0, 1.0, 5.0, 0.0, 0.0, 2.0, -20.0, 0.0, 0.0, 0.0) // p2 = 0 (on-axis)
	f.Add(0.0, 0.0, 0.0, 2.0, 3.0, 0.0, 0.0, 2.0, 10.0, 10.0, 0.0, 1.0)  // overlap
	f.Add(1e6, 1e6, 0.0, 1.0, 1e6+9, 1e6, 0.0, 1.0, 1e6-4, 1e6, 0.0, 2.0)
	f.Fuzz(func(t *testing.T, ax, ay, az, ar, bx, by, bz, br, qx, qy, qz, qr float64) {
		for _, v := range []float64{ax, ay, az, ar, bx, by, bz, br, qx, qy, qz, qr} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				t.Skip()
			}
		}
		if ar < 0 || br < 0 || qr < 0 {
			t.Skip()
		}
		sa := geom.Sphere{Center: []float64{ax, ay, az}, Radius: ar}
		sb := geom.Sphere{Center: []float64{bx, by, bz}, Radius: br}
		sq := geom.Sphere{Center: []float64{qx, qy, qz}, Radius: qr}
		pp := PreparePair(sa, sb)
		got := pp.Dominates(sq)
		want := Hyperbola{}.Dominates(sa, sb, sq)
		if got != want {
			t.Fatalf("PreparedPair=%v Hyperbola=%v\nsa=%v\nsb=%v\nsq=%v", got, want, sa, sb, sq)
		}
	})
}
