package dominance

import (
	"math"

	"hyperdom/internal/geom"
	"hyperdom/internal/obs"
	"hyperdom/internal/poly"
)

// Hyperbola is the paper's decision criterion (Algorithm 1, Section 4): the
// first correct, sound and O(d) procedure for hypersphere dominance in any
// dimensionality.
//
// When Sa and Sb do not overlap, the boundary of the region
// Ra = { x : Dist(cb,x) − Dist(ca,x) > ra+rb } is one branch of a
// hyperboloid of revolution with foci ca and cb (Eq. 8), and
// Dom(Sa,Sb,Sq) holds iff Sq lies entirely inside Ra (Lemma 7), i.e. iff cq
// lies inside Ra and the minimum distance dmin from cq to the branch exceeds
// rq. dmin is found in O(d): the rotational symmetry about the focal axis
// reduces the problem to two coordinates, and the Lagrange conditions of the
// constrained minimisation reduce to the quartic of Eq. (14), solvable in
// closed form.
type Hyperbola struct{}

// Name implements Criterion.
func (Hyperbola) Name() string { return "Hyperbola" }

// Correct implements Criterion (Theorem 1).
func (Hyperbola) Correct() bool { return true }

// Sound implements Criterion (Theorem 1).
func (Hyperbola) Sound() bool { return true }

// Dominates implements Criterion in O(d) time (Theorem 2).
func (Hyperbola) Dominates(sa, sb, sq geom.Sphere) bool {
	checkDims(sa, sb, sq)
	on := obs.On()
	if on {
		obsHypInvocations.Inc()
	}
	red, ok := reduce(sa, sb, sq)
	if !ok { // Sa and Sb overlap: Dom is false (Lemma 1).
		if on {
			obsHypOverlap.Inc()
			obsHypFalse.Inc()
		}
		return false
	}
	if !red.inside { // cq ∈ Sq itself violates the MDD condition.
		if on {
			obsHypFalse.Inc()
		}
		return false
	}
	if sq.Radius == 0 { // cq strictly inside Ra and Sq = {cq}.
		if on {
			obsHypTrue.Inc()
		}
		return true
	}
	v := hyperbolaDmin(red) > sq.Radius
	if on {
		if v {
			obsHypTrue.Inc()
		} else {
			obsHypFalse.Inc()
		}
	}
	return v
}

// reduced is the canonical 2-D form of a dominance instance: coordinates are
// transformed (Section 4.3.1) so that ca = (−α, 0, …, 0) and
// cb = (α, 0, …, 0). By rotational symmetry about the focal axis only two
// coordinates of cq matter: p1 along the axis and p2 = the distance from cq
// to the axis (p2 ≥ 0).
type reduced struct {
	alpha  float64 // Dist(ca,cb)/2, half the focal distance
	rab    float64 // ra + rb; the branch is Dist(cb,x) − Dist(ca,x) = rab
	p1, p2 float64 // cq in the canonical frame
	inside bool    // cq strictly inside Ra: Dist(cb,cq) − Dist(ca,cq) > rab
	line   bool    // the ambient space is 1-dimensional
}

// reduce performs the O(d) coordinate transformation. It reports ok=false
// when Sa and Sb overlap (Dist(ca,cb) ≤ ra+rb), in which case the hyperbola
// does not exist and Dom is false by Lemma 1.
func reduce(sa, sb, sq geom.Sphere) (reduced, bool) {
	d := sa.Dim()
	ca, cb, cq := sa.Center, sb.Center, sq.Center
	var dcc2, da2, db2 float64
	for i := 0; i < d; i++ {
		e := cb[i] - ca[i]
		dcc2 += e * e
		ea := cq[i] - ca[i]
		da2 += ea * ea
		eb := cq[i] - cb[i]
		db2 += eb * eb
	}
	rab := sa.Radius + sb.Radius
	if dcc2 <= rab*rab {
		return reduced{}, false
	}
	dcc := math.Sqrt(dcc2)
	da := math.Sqrt(da2)
	db := math.Sqrt(db2)
	alpha := dcc / 2
	// With ca = (−α,0,…) and cb = (α,0,…): da² − db² = 4·α·p1.
	p1 := (da2 - db2) / (2 * dcc)
	p22 := da2 - (p1+alpha)*(p1+alpha)
	if p22 < 0 {
		p22 = 0
	}
	return reduced{
		alpha:  alpha,
		rab:    rab,
		p1:     p1,
		p2:     math.Sqrt(p22),
		inside: db-da > rab,
		line:   d == 1,
	}, true
}

// hyperbolaDmin returns the minimum distance from cq = (p1, p2) to the
// branch of the hyperbola
//
//	x²/A² − y²/B² = 1,  x ≤ −A,   A = rab/2,  B² = α² − A²
//
// (the boundary of Ra in the canonical frame) using the closed-form quartic
// of Eq. (14).
//
// Subtleties the paper glosses over (see DESIGN.md §4):
//
//   - Squaring Eq. (8) twice admits both branches; every candidate is
//     projected onto the left branch through its y-coordinate, which never
//     decreases the reported distance below the true dmin and leaves the
//     true minimiser fixed.
//   - rab = 0 degenerates the branch to the hyperplane x = 0.
//   - p1 = 0 and p2 = 0 make the Lagrange back-substitution formulas
//     (Eqs. 12–13) divide by zero; their critical points are added in closed
//     form instead.
func hyperbolaDmin(red reduced) float64 {
	alpha, rab, p1, p2 := red.alpha, red.rab, red.p1, red.p2
	if red.line {
		// In a 1-dimensional ambient space the boundary of Ra is the single
		// point x = −rab/2; the hyperboloid's off-axis points do not exist.
		return math.Abs(p1 + rab/2)
	}
	if rab == 0 {
		// Degenerate "hyperbola": the perpendicular-bisector hyperplane.
		return math.Abs(p1)
	}
	hA := rab / 2
	b2 := (alpha - hA) * (alpha + hA) // B², > 0 strictly (non-overlap)

	// Distance to the left-branch point with ordinate y.
	distToY := func(y float64) float64 {
		x := -hA * math.Sqrt(1+y*y/b2)
		dx := p1 - x
		dy := p2 - y
		return math.Hypot(dx, dy)
	}

	// Vertex (−A, 0) is always on the branch: a free upper-bound candidate
	// that also covers the p2 = 0 vertex-optimal case.
	dmin := distToY(0)

	// Critical point with λ = −1/a5 (the p1 = 0 case of Eq. 12): the unique
	// minimiser when cq is on the perpendicular-bisector plane, an on-curve
	// candidate otherwise.
	if y := p2 * b2 / (alpha * alpha); y != 0 {
		if dd := distToY(y); dd < dmin {
			dmin = dd
		}
	}

	// Critical points with λ = −1/a4 (the p2 = 0 case of Eq. 13): off-axis
	// minimisers exist when cq sits far enough along the axis. The candidate
	// is on the curve, hence safe to add unconditionally — it also covers
	// the numerically-delicate region where p2 is tiny but non-zero.
	if x := p1 * hA * hA / (alpha * alpha); x < 0 {
		if y2 := b2 * (x*x/(hA*hA) - 1); y2 > 0 {
			y := math.Sqrt(y2)
			if dd := distToY(y); dd < dmin {
				dmin = dd
			}
		}
	}

	// The generic case: the quartic of Eq. (14), solved after the Möbius
	// change of variable of Eq. (13), y = p2/(1 + 4r²λ) — the ordinate of
	// the critical point itself. The transformed quartic
	//
	//	α⁴·y⁴ − 2α²B²p2·y³ + B²(α⁴ + B²p2² − A²p1²)·y² − 2α²B⁴p2·y + B⁶p2² = 0
	//
	// has the same roots as Eq. (14) (one-to-one via Eq. 13) but stays
	// well-conditioned when rab ≪ Dist(ca,cb), the regime where the raw
	// λ-quartic's coefficients span ten orders of magnitude. Coordinates
	// are additionally normalised by α. Every real root is a candidate
	// ordinate; spurious roots introduced by squaring land on the curve via
	// the projection in distToY and can only overestimate, never
	// underestimate, their own candidate distance.
	if obs.On() {
		obsQuarticSolves.Inc()
	}
	hatA2 := (hA / alpha) * (hA / alpha)
	hatB2 := b2 / (alpha * alpha)
	P1 := p1 / alpha
	P2 := p2 / alpha
	q4 := 1.0
	q3 := -2 * hatB2 * P2
	q2 := hatB2 * (1 + hatB2*P2*P2 - hatA2*P1*P1)
	q1 := -2 * hatB2 * hatB2 * P2
	q0 := hatB2 * hatB2 * hatB2 * P2 * P2

	roots, n := poly.Quartic4(q4, q3, q2, q1, q0)
	for _, y := range roots[:n] {
		if dd := distToY(alpha * y); dd < dmin {
			dmin = dd
		}
	}
	return dmin
}
