package dominance

import (
	"math/rand"
	"testing"

	"hyperdom/internal/geom"
)

// TestWitnessRefutesHyperbola: whenever the sampler finds a witness, the
// Hyperbola verdict must be false — a fully independent check performed in
// the original d-dimensional space, with no shared 2-D reduction.
func TestWitnessRefutesHyperbola(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	h := Hyperbola{}
	found := 0
	for i := 0; i < 8000; i++ {
		d := 1 + rng.Intn(7)
		in := randInstance(rng, d)
		if nearBoundary(in, 1e-6) {
			continue
		}
		w := FindWitness(in.sa, in.sb, in.sq, 256, rng)
		if w == nil {
			continue
		}
		found++
		if !in.sq.Contains(w.Q) {
			// Allow a hair of float slack on the ball membership.
			grown := geom.NewSphere(in.sq.Center, in.sq.Radius*(1+1e-9)+1e-12)
			if !grown.Contains(w.Q) {
				t.Fatalf("witness outside Sq: %v not in %v", w.Q, in.sq)
			}
		}
		if h.Dominates(in.sa, in.sb, in.sq) {
			t.Fatalf("witness (margin %v) refutes a true Hyperbola verdict\nsa=%v\nsb=%v\nsq=%v\nq=%v",
				w.Margin, in.sa, in.sb, in.sq, w.Q)
		}
	}
	if found < 1000 {
		t.Errorf("only %d witnesses found; the generator should produce plenty of non-dominant instances", found)
	}
}

// TestWitnessFoundWhenClearlyNotDominant: on instances where the oracle
// reports non-dominance with a fat margin, the sampler should almost always
// find the witness.
func TestWitnessFoundWhenClearlyNotDominant(t *testing.T) {
	rng := rand.New(rand.NewSource(405))
	missed, total := 0, 0
	for i := 0; i < 4000; i++ {
		d := 1 + rng.Intn(6)
		in := randInstance(rng, d)
		// Only clearly-false instances: margin at least 10% of the radius.
		if (Exact{}).Dominates(in.sa, in.sb, in.sq) || nearBoundary(in, 0.1) {
			continue
		}
		total++
		if FindWitness(in.sa, in.sb, in.sq, 512, rng) == nil {
			missed++
		}
	}
	if total == 0 {
		t.Fatal("no clearly-non-dominant instances generated")
	}
	if missed > total/100 {
		t.Errorf("sampler missed %d/%d clear witnesses", missed, total)
	}
}

// TestMonteCarloCriterion exercises the Criterion packaging.
func TestMonteCarloCriterion(t *testing.T) {
	mc := MonteCarlo{Samples: 256, Seed: 1}
	if mc.Name() != "MonteCarlo" || mc.Correct() || !mc.Sound() {
		t.Error("MonteCarlo metadata wrong")
	}
	// Clear dominance: no witness exists.
	if !mc.Dominates(sph(1, 0, 0), sph(1, 20, 0), sph(1, -10, 0)) {
		t.Error("MonteCarlo found a bogus witness for clear dominance")
	}
	// Clear non-dominance.
	if mc.Dominates(sph(1, 0, 0), sph(1, 6, 0), sph(3.5, -1, 0)) {
		t.Error("MonteCarlo failed to find a witness for a clearly non-dominant instance")
	}
	// Overlap is certain.
	if mc.Dominates(sph(2, 0, 0), sph(2, 1, 0), sph(1, 5, 5)) {
		t.Error("MonteCarlo must report false for overlapping objects")
	}
}
