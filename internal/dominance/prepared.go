package dominance

import (
	"math"
	"time"

	"hyperdom/internal/geom"
	"hyperdom/internal/obs"
	"hyperdom/internal/poly"
)

// PreparedPair is the pair-amortized form of the Hyperbola criterion: every
// quantity of the canonical-frame reduction (Section 4.3.1) that depends only
// on (Sa, Sb) — the overlap verdict, the half focal distance α, rab = ra+rb,
// the semi-axes A = rab/2 and B² = α² − A², and the α-normalised prefactors
// of the Eq. (14) quartic — is computed once by PreparePair. Dominates then
// needs only the two query-dependent dot products da² = Dist²(cq,ca) and
// db² = Dist²(cq,cb), the MDD inside test, and (when Sq is fat and cq is
// inside Ra) the closed-form quartic.
//
// Verdicts are bit-identical to Hyperbola{}.Dominates(sa, sb, sq): the
// per-query arithmetic mirrors reduce/hyperbolaDmin expression by
// expression, with precomputed scalars substituted only where Go's
// left-to-right association makes the substitution exact (see
// TestPreparedPairMatchesHyperbola and FuzzPreparedPairAgree).
//
// A PreparedPair retains references to the centers of Sa and Sb; the caller
// must not mutate them while the pair is in use. The zero value is not
// meaningful; construct with PreparePair or (re)initialise with Reset.
// Dominates performs no heap allocation, and a PreparedPair value may be
// reused across pairs via Reset, so hot loops can keep one in scratch space.
// It is safe for concurrent use only after initialisation (Reset is a
// write).
type PreparedPair struct {
	ca, cb []float64 // centers of Sa and Sb (referenced, not copied)
	dim    int
	rab    float64 // ra + rb

	overlap bool // Sa and Sb overlap: Dominates is constantly false (Lemma 1)
	line    bool // 1-dimensional ambient space

	// Canonical frame (valid when !overlap).
	alpha  float64 // Dist(ca,cb)/2
	twoDcc float64 // 2·Dist(ca,cb), the p1 divisor of reduce
	hA     float64 // A = rab/2

	// Quartic precomputation (valid when !overlap && rab > 0 && !line).
	b2     float64 // B² = (α−A)(α+A)
	hA2    float64 // A²
	alpha2 float64 // α²
	hatA2  float64 // (A/α)²
	hatB2  float64 // B²/α²
	c3     float64 // −2·hatB2          (q3 = c3·P2)
	c1     float64 // −2·hatB2·hatB2    (q1 = c1·P2)
	c0     float64 // hatB2³            (q0 = c0·P2·P2)

	// Observability (see metrics.go). obsOn caches the obs gate at Reset
	// time so the per-query check is a plain byte load; tally accumulates
	// events locally and survives Reset; fresh marks that no query has run
	// since the last Reset (for reuse-hit accounting).
	obsOn bool
	fresh bool
	tally pairTally
}

// PreparePair factors the (Sa, Sb)-only part of the Hyperbola criterion in
// O(d) time. It panics if the spheres mix dimensionalities.
func PreparePair(sa, sb geom.Sphere) PreparedPair {
	var p PreparedPair
	p.Reset(sa, sb)
	return p
}

// Reset re-initialises p for a new (Sa, Sb) pair in place, without
// allocating. It is the hot-loop form of PreparePair.
func (p *PreparedPair) Reset(sa, sb geom.Sphere) {
	d := sa.Dim()
	if sb.Dim() != d {
		panic("dominance: spheres with mixed dimensionality")
	}
	ca, cb := sa.Center, sb.Center
	var dcc2 float64
	for i := 0; i < d; i++ {
		e := cb[i] - ca[i]
		dcc2 += e * e
	}
	rab := sa.Radius + sb.Radius
	// Field-by-field reinitialisation: a `*p = PreparedPair{...}` literal
	// zero-fills and copies the whole struct (runtime.duffcopy) on every
	// Reset, which the kNN search's per-offer eviction checks turned into
	// a top-ten profile entry. Every field below is either assigned on
	// this path or only read on branches that assigned it first (the
	// quartic block is read only when Reset's tail ran for this pair), so
	// skipping the zero-fill changes nothing.
	p.ca, p.cb = ca, cb
	p.dim = d
	p.rab = rab
	p.obsOn = obs.On()
	p.fresh = true
	if p.obsOn {
		p.tally.resets++
	}
	if dcc2 <= rab*rab {
		p.overlap = true
		p.line = false
		return
	}
	p.overlap = false
	dcc := math.Sqrt(dcc2)
	p.alpha = dcc / 2
	p.twoDcc = 2 * dcc
	p.hA = rab / 2
	p.line = d == 1
	if rab == 0 || p.line {
		return // degenerate dmin cases need no quartic machinery
	}
	p.b2 = (p.alpha - p.hA) * (p.alpha + p.hA)
	p.hA2 = p.hA * p.hA
	p.alpha2 = p.alpha * p.alpha
	p.hatA2 = (p.hA / p.alpha) * (p.hA / p.alpha)
	p.hatB2 = p.b2 / (p.alpha * p.alpha)
	p.c3 = -2 * p.hatB2
	p.c1 = p.c3 * p.hatB2
	p.c0 = p.hatB2 * p.hatB2 * p.hatB2
}

// Overlaps reports whether Sa and Sb overlap, in which case Dominates is
// constantly false and callers can skip the per-query work entirely.
func (p *PreparedPair) Overlaps() bool { return p.overlap }

// QuarticSolves returns the pair's locally tallied quartic-solve count
// since its last obs flush. Execution tracing reads it before and after a
// check to attribute solves to individual spans; the difference is only
// meaningful across a window with no intervening flush (windows of up to
// obsFlushEvery queries), so callers must treat a decrease as zero.
func (p *PreparedPair) QuarticSolves() uint64 { return p.tally.quartics }

// DominatesBatch evaluates the pair's verdict for every query sphere,
// writing out[i] = p.Dominates(qs[i]). Verdicts are bit-identical to the
// one-at-a-time path; the whole sweep is timed with a single clock-read
// pair into the dominance.prepared_batch_latency histogram, so batch
// callers get latency observability without perturbing the per-query
// kernel. It panics if the slice lengths differ.
func (p *PreparedPair) DominatesBatch(qs []geom.Sphere, out []bool) {
	if len(qs) != len(out) {
		panic("dominance: DominatesBatch with mismatched slice lengths")
	}
	var start time.Time
	if p.obsOn {
		start = time.Now()
	}
	for i := range qs {
		out[i] = p.Dominates(qs[i])
	}
	if p.obsOn {
		histPreparedBatch.RecordDuration(time.Since(start))
	}
}

// Dominates reports whether Sa dominates Sb with respect to sq, with a
// verdict bit-identical to Hyperbola{}.Dominates(sa, sb, sq). Cost per call:
// one pass over cq accumulating da² and db², two square roots, and — only
// when cq lies inside Ra and Sq has positive radius — the closed-form
// quartic of Eq. (14). It panics if sq's dimensionality differs from the
// pair's.
func (p *PreparedPair) Dominates(sq geom.Sphere) bool {
	if sq.Dim() != p.dim {
		panic("dominance: spheres with mixed dimensionality")
	}
	on := p.obsOn
	if on {
		p.tallyQuery()
	}
	if p.overlap {
		if on {
			p.tally.overlaps++
			p.tally.falses++
		}
		return false
	}
	ca, cb, cq := p.ca, p.cb, sq.Center
	var da2, db2 float64
	for i := 0; i < p.dim; i++ {
		ea := cq[i] - ca[i]
		da2 += ea * ea
		eb := cq[i] - cb[i]
		db2 += eb * eb
	}
	da := math.Sqrt(da2)
	db := math.Sqrt(db2)
	if !(db-da > p.rab) { // cq not strictly inside Ra: MDD violated
		if on {
			p.tally.falses++
		}
		return false
	}
	if sq.Radius == 0 { // cq strictly inside Ra and Sq = {cq}
		if on {
			p.tally.trues++
		}
		return true
	}
	// Coarse accept (ISSUE 6): every point Z of the dominance boundary
	// satisfies db(Z) − da(Z) = rab, so the triangle inequality through each
	// focus gives db − da − rab ≤ 2·dist(cq, Z), i.e. dmin ≥ (db−da−rab)/2 —
	// a lower bound available before the canonical-frame reduction even
	// runs. The absolute margin scales with db+da because the rounding of
	// the two square roots (and of the frame coordinates the full path
	// derives from them) is relative to the focal distances, not to their
	// difference; 1e-12 clears that ~1e-15 noise by three orders, so
	// whenever this test passes the full path's computed dmin clears the
	// radius too, for every dmin branch (line, planar, hyperbola). A NaN or
	// Inf−Inf operand settles the comparison false and falls through.
	if (db-da-p.rab)*0.5-1e-12*(db+da) > sq.Radius {
		if on {
			p.tally.coarseAccepts++
			p.tally.trues++
		}
		return true
	}
	// Canonical coordinates of cq, exactly as reduce computes them.
	p1 := (da2 - db2) / p.twoDcc
	p22 := da2 - (p1+p.alpha)*(p1+p.alpha)
	if p22 < 0 {
		p22 = 0
	}
	p2 := math.Sqrt(p22)
	var v bool
	if p.line || p.rab == 0 {
		v = p.dmin(p1, p2) > sq.Radius
	} else {
		// Coarse filter (ISSUE 6): bracket dmin before paying for the
		// quartic. d0 is dmin's first candidate distToY(0), inlined
		// verbatim so it stays bit-identical even on degenerate frames
		// (b2 = 0 makes the 0/b2 term NaN — so d0, and then dmin, is NaN
		// too, and the reject arm settles the same false verdict the full
		// path would). Since dmin only ever shrinks from d0, !(d0 > radius)
		// settles the verdict false with zero slack. For the accept side,
		// every candidate the search takes a distance to lies on the branch
		// x ≤ −A, hence dist ≥ p1 − x ≥ p1 + A; the 1e-9 shave absorbs the
		// few-ulp rounding of Hypot and the branch evaluation (error
		// ~1e-15), so clearing it guarantees the computed dmin clears the
		// radius too. Both short-circuits reproduce the full computation's
		// verdict exactly — FuzzPreparedPairAgree leans on that.
		x0 := -p.hA * math.Sqrt(1+0/p.b2)
		d0 := math.Hypot(p1-x0, p2)
		switch {
		case !(d0 > sq.Radius):
			if on {
				p.tally.coarseRejects++
			}
			v = false
		case (p1+p.hA)*(1-1e-9) > sq.Radius:
			if on {
				p.tally.coarseAccepts++
			}
			v = true
		default:
			v = p.dminBeats(d0, p1, p2, sq.Radius)
		}
	}
	if on {
		if v {
			p.tally.trues++
		} else {
			p.tally.falses++
		}
	}
	return v
}

// dmin mirrors hyperbolaDmin with the (Sa, Sb)-only scalars precomputed;
// every expression keeps the association of the original so the float64
// result is identical.
func (p *PreparedPair) dmin(p1, p2 float64) float64 {
	if p.line {
		return math.Abs(p1 + p.hA)
	}
	if p.rab == 0 {
		return math.Abs(p1)
	}
	x0 := -p.hA * math.Sqrt(1+0/p.b2)
	return p.dminTail(math.Hypot(p1-x0, p2), p1, p2)
}

// dminBeats reports p.dminTail(d0, p1, p2) > r without always paying for
// the quartic: dmin is the minimum over a fixed candidate sequence, so the
// moment a running prefix of it fails to clear r the final value fails too
// (later candidates only lower the minimum) and the verdict is settled
// false. A NaN prefix settles false exactly as the full path's NaN dmin
// would. Only checks that still clear r after the closed-form candidates
// reach the quartic, which is what keeps the quartic_solves counter an
// honest count of solves actually performed.
func (p *PreparedPair) dminBeats(d0, p1, p2, r float64) bool {
	hA, b2 := p.hA, p.b2

	dmin := d0

	if y := p2 * b2 / p.alpha2; y != 0 {
		x := -hA * math.Sqrt(1+y*y/b2)
		if dd := math.Hypot(p1-x, p2-y); dd < dmin {
			dmin = dd
		}
	}
	if !(dmin > r) {
		return false
	}

	if x := p1 * hA * hA / p.alpha2; x < 0 {
		if y2 := b2 * (x*x/p.hA2 - 1); y2 > 0 {
			y := math.Sqrt(y2)
			xx := -hA * math.Sqrt(1+y*y/b2)
			if dd := math.Hypot(p1-xx, p2-y); dd < dmin {
				dmin = dd
			}
		}
	}
	if !(dmin > r) {
		return false
	}

	if p.obsOn {
		p.tally.quartics++
	}
	P1 := p1 / p.alpha
	P2 := p2 / p.alpha
	q3 := p.c3 * P2
	q2 := p.hatB2 * (1 + p.hatB2*P2*P2 - p.hatA2*P1*P1)
	q1 := p.c1 * P2
	q0 := p.c0 * P2 * P2

	roots, n := poly.Quartic4(1.0, q3, q2, q1, q0)
	for _, y := range roots[:n] {
		x := -hA * math.Sqrt(1+(p.alpha*y)*(p.alpha*y)/b2)
		if dd := math.Hypot(p1-x, p2-p.alpha*y); dd < dmin {
			dmin = dd
		}
	}
	return dmin > r
}

// dminTail is dmin's general (hyperbola) branch with the y = 0 seed
// candidate hoisted to the caller: d0 must be distToY(0) bit for bit
// (inlined as -hA·√(1+0/b2), the 0/b2 term preserving the NaN of a
// degenerate b2 = 0 frame), so the coarse filter in Dominates can reuse
// it instead of computing it twice.
func (p *PreparedPair) dminTail(d0, p1, p2 float64) float64 {
	hA, b2 := p.hA, p.b2

	distToY := func(y float64) float64 {
		x := -hA * math.Sqrt(1+y*y/b2)
		dx := p1 - x
		dy := p2 - y
		return math.Hypot(dx, dy)
	}

	dmin := d0

	if y := p2 * b2 / p.alpha2; y != 0 {
		if dd := distToY(y); dd < dmin {
			dmin = dd
		}
	}

	if x := p1 * hA * hA / p.alpha2; x < 0 {
		if y2 := b2 * (x*x/p.hA2 - 1); y2 > 0 {
			y := math.Sqrt(y2)
			if dd := distToY(y); dd < dmin {
				dmin = dd
			}
		}
	}

	if p.obsOn {
		p.tally.quartics++
	}
	P1 := p1 / p.alpha
	P2 := p2 / p.alpha
	q3 := p.c3 * P2
	q2 := p.hatB2 * (1 + p.hatB2*P2*P2 - p.hatA2*P1*P1)
	q1 := p.c1 * P2
	q0 := p.c0 * P2 * P2

	roots, n := poly.Quartic4(1.0, q3, q2, q1, q0)
	for _, y := range roots[:n] {
		if dd := distToY(p.alpha * y); dd < dmin {
			dmin = dd
		}
	}
	return dmin
}
