package dominance

import (
	"math"
	"math/rand"
	"testing"

	"hyperdom/internal/geom"
)

// TestHorizonHyperplaneAnalytic: with two point objects the boundary is
// the bisector hyperplane at distance dmin from cq; only rq grows, so the
// horizon is exactly (dmin − rq)/vq.
func TestHorizonHyperplaneAnalytic(t *testing.T) {
	sa := sph(0, -1, 0) // boundary is the plane x = 0
	sb := sph(0, 1, 0)
	sq := sph(1, -5, 0) // dmin = 5, slack = 4
	got := Horizon(sa, sb, sq, 0, 0, 2, 100)
	if math.Abs(got-2) > 1e-9 {
		t.Errorf("horizon = %v, want 2 ((5−1)/2)", got)
	}
}

// TestHorizonRadiusSumAnalytic: growing ra against a point query on the
// axis. With centers at ±5 and the query at x = −20, the MDD margin along
// the axis is dcc − rab... the dominance boundary (vertex) sits at
// x = −rab/2, the query center at canonical −20+5 = −15 with rq = 0, so
// dominance holds while rab/2 < 15, i.e. ra + rb < 30 — but overlap breaks
// it earlier, at ra + rb = dcc = 10.
func TestHorizonOverlapBreaks(t *testing.T) {
	sa := sph(1, 0, 0)
	sb := sph(1, 10, 0)
	sq := sph(0, -20, 0)
	// ra(t) = 1 + t: overlap at ra + rb = 10 → t = 8.
	got := Horizon(sa, sb, sq, 1, 0, 0, 100)
	if math.Abs(got-8) > 1e-9 {
		t.Errorf("horizon = %v, want 8 (tangency time)", got)
	}
}

func TestHorizonBoundaryBehaviour(t *testing.T) {
	sa := sph(1, 0, 0)
	sb := sph(1, 6, 0)
	notDominant := sph(3.5, -1, 0)
	if got := Horizon(sa, sb, notDominant, 1, 1, 1, 10); got != 0 {
		t.Errorf("horizon of a non-dominant instance = %v, want 0", got)
	}
	dominant := sph(1, -1, 0)
	if got := Horizon(sa, sb, dominant, 0, 0, 0, 10); got != 10 {
		t.Errorf("horizon with zero velocities = %v, want tMax", got)
	}
	if got := Horizon(sa, sb, dominant, 0, 0, 1e-9, 1); got != 1 {
		t.Errorf("horizon that outlives tMax = %v, want tMax", got)
	}
}

// TestHorizonConsistentWithCriterion: just below the horizon dominance
// holds, just above it does not.
func TestHorizonConsistentWithCriterion(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	h := Hyperbola{}
	checked := 0
	for i := 0; i < 4000 && checked < 500; i++ {
		d := 1 + rng.Intn(6)
		in := randInstance(rng, d)
		va, vb, vq := rng.Float64(), rng.Float64(), rng.Float64()
		const tMax = 50
		ts := Horizon(in.sa, in.sb, in.sq, va, vb, vq, tMax)
		if ts == 0 || ts == tMax {
			continue
		}
		checked++
		eps := 1e-6 * (1 + ts)
		grow := func(s geom.Sphere, v, t float64) geom.Sphere {
			return geom.Sphere{Center: s.Center, Radius: s.Radius + v*t}
		}
		if !h.Dominates(grow(in.sa, va, ts-eps), grow(in.sb, vb, ts-eps), grow(in.sq, vq, ts-eps)) {
			t.Fatalf("dominance fails below the horizon (i=%d, t*=%v)", i, ts)
		}
		if h.Dominates(grow(in.sa, va, ts+eps), grow(in.sb, vb, ts+eps), grow(in.sq, vq, ts+eps)) {
			t.Fatalf("dominance holds above the horizon (i=%d, t*=%v)", i, ts)
		}
	}
	if checked < 100 {
		t.Errorf("only %d interior horizons exercised", checked)
	}
}

// TestRadiusAntiMonotonicity pins the lemma the bisection relies on:
// growing any radius never turns a non-dominant instance dominant.
func TestRadiusAntiMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := Hyperbola{}
	for i := 0; i < 20000; i++ {
		d := 1 + rng.Intn(6)
		in := randInstance(rng, d)
		if h.Dominates(in.sa, in.sb, in.sq) {
			continue
		}
		grown := geom.Sphere{Center: in.sa.Center, Radius: in.sa.Radius + rng.Float64()}
		if h.Dominates(grown, in.sb, in.sq) {
			t.Fatalf("growing ra repaired dominance (i=%d)", i)
		}
		grown = geom.Sphere{Center: in.sq.Center, Radius: in.sq.Radius + rng.Float64()}
		if h.Dominates(in.sa, in.sb, grown) {
			t.Fatalf("growing rq repaired dominance (i=%d)", i)
		}
	}
}

func TestHorizonPanics(t *testing.T) {
	sa, sb, sq := sph(0, 0), sph(0, 1), sph(0, -1)
	for name, fn := range map[string]func(){
		"negative velocity": func() { Horizon(sa, sb, sq, -1, 0, 0, 1) },
		"negative tMax":     func() { Horizon(sa, sb, sq, 0, 0, 0, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
