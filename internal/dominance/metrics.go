package dominance

import "hyperdom/internal/obs"

// Criterion-level observability counters (ISSUE 2): the work counts the
// paper's evaluation is stated in. The stateless Hyperbola path increments
// them directly (one obs.On() gate load plus an atomic add per event); the
// PreparedPair kernel tallies into plain struct-local fields and flushes
// them here at amortization points, so the per-query hot path stays free
// of atomic traffic — see pairTally.
var (
	obsHypInvocations = obs.New("dominance.hyperbola.invocations")
	obsHypTrue        = obs.New("dominance.hyperbola.verdict_true")
	obsHypFalse       = obs.New("dominance.hyperbola.verdict_false")
	obsHypOverlap     = obs.New("dominance.hyperbola.overlap_shortcircuit")
	obsQuarticSolves  = obs.New("dominance.quartic_solves")

	obsPrepResets  = obs.New("dominance.prepared.resets")
	obsPrepQueries = obs.New("dominance.prepared.queries")
	obsPrepTrue    = obs.New("dominance.prepared.verdict_true")
	obsPrepFalse   = obs.New("dominance.prepared.verdict_false")
	obsPrepOverlap = obs.New("dominance.prepared.overlap_shortcircuit")
	obsPrepReuse   = obs.New("dominance.prepared.reuse_hits")

	// Coarse-filter outcomes (ISSUE 6): fat-sphere queries the dmin
	// bracket settled without the curve search + quartic solve. The
	// verdicts are identical either way; these counters say how often the
	// expensive tail was skipped.
	obsPrepCoarseAccept = obs.New("dominance.prepared.coarse_accepts")
	obsPrepCoarseReject = obs.New("dominance.prepared.coarse_rejects")
)

// histPreparedBatch times whole DominatesBatch sweeps (ISSUE 3): the
// ~30ns per-query kernel cannot afford a clock read per verdict, so the
// latency observability of this layer is stated per batch — one time.Now
// delta amortized over the sweep, same discipline as the counter tallies.
var histPreparedBatch = obs.NewHistogram("dominance.prepared_batch_latency", "")

// obsFlushEvery bounds how many queries a PreparedPair tallies locally
// before pushing into the global counters, so long-lived pairs cannot lag
// a snapshot by more than this many events. Power of two; the flush costs
// a handful of atomic adds amortized over the whole window.
const obsFlushEvery = 1 << 12

// pairTally is the PreparedPair's local event accumulator. The fields are
// plain uint64s owned by the pair's single goroutine: incrementing one
// costs a register add, not a LOCK-prefixed RMW, which is what keeps the
// instrumented kernel within the <5% overhead budget (TestObsOverhead)
// at ~30ns per point query. Reset preserves the tally across pair changes;
// FlushObs (or the obsFlushEvery threshold) drains it into the registry.
type pairTally struct {
	resets        uint64
	queries       uint64
	trues         uint64
	falses        uint64
	overlaps      uint64
	quartics      uint64
	reuse         uint64
	coarseAccepts uint64
	coarseRejects uint64
}

// flushObs drains the local tally into the global counters and zeroes it.
func (p *PreparedPair) flushObs() {
	t := &p.tally
	if t.resets != 0 {
		obsPrepResets.Add(t.resets)
	}
	if t.queries != 0 {
		obsPrepQueries.Add(t.queries)
	}
	if t.trues != 0 {
		obsPrepTrue.Add(t.trues)
	}
	if t.falses != 0 {
		obsPrepFalse.Add(t.falses)
	}
	if t.overlaps != 0 {
		obsPrepOverlap.Add(t.overlaps)
	}
	if t.quartics != 0 {
		obsQuarticSolves.Add(t.quartics)
	}
	if t.reuse != 0 {
		obsPrepReuse.Add(t.reuse)
	}
	if t.coarseAccepts != 0 {
		obsPrepCoarseAccept.Add(t.coarseAccepts)
	}
	if t.coarseRejects != 0 {
		obsPrepCoarseReject.Add(t.coarseRejects)
	}
	*t = pairTally{}
}

// FlushObs publishes the pair's locally tallied events to the obs
// registry. Owners of long-lived pairs (the kNN scratch arena, the
// parallel workload workers) call it at batch boundaries so snapshots are
// exact there; between flushes a snapshot can lag by at most obsFlushEvery
// events per live pair.
func (p *PreparedPair) FlushObs() { p.flushObs() }

// tallyQuery records one Dominates call on the pair: the query count, the
// reuse accounting (a query on a pair that already served one since its
// last Reset is a "reuse hit" — the amortization PreparePair exists for),
// and the periodic drain into the registry.
func (p *PreparedPair) tallyQuery() {
	p.tally.queries++
	if p.fresh {
		p.fresh = false
	} else {
		p.tally.reuse++
	}
	if p.tally.queries >= obsFlushEvery {
		p.flushObs()
	}
}
