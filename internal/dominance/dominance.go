// Package dominance implements the hypersphere spatial-dominance operator of
// the paper "Hypersphere Dominance: An Optimal Approach" (SIGMOD 2014),
// together with the four competitor decision criteria the paper evaluates
// against and two reference oracles used in testing.
//
// Given three hyperspheres Sa, Sb and Sq, Sa dominates Sb with respect to Sq
// (Definition 1) iff
//
//	∀q ∈ Sq, ∀a ∈ Sa, ∀b ∈ Sb :  Dist(a,q) < Dist(b,q)
//
// which, when Sa and Sb do not overlap, is equivalent to the minimum
// distance difference (MDD) condition (Eq. 7):
//
//	min_{q ∈ Sq} ( Dist(cb,q) − Dist(ca,q) )  >  ra + rb
//
// A decision criterion is correct if it never returns true when dominance
// does not hold (no false positives) and sound if it never returns false
// when dominance holds (no false negatives). The paper's Hyperbola criterion
// is the only one that is correct, sound and O(d):
//
//	| Criterion     | Correct | Sound | Time  |
//	|---------------|---------|-------|-------|
//	| Hyperbola     | yes     | yes   | O(d)  |
//	| MinMax        | yes     | no    | O(d)  |
//	| MBR           | yes     | no    | O(d)  |
//	| GP            | yes     | no*   | O(d)  |
//	| Trigonometric | no      | yes   | O(d)  |
//
// (*) GP is sound — hence optimal — for dimensionality ≤ 2 only.
package dominance

import "hyperdom/internal/geom"

// Criterion is a decision procedure for the hypersphere dominance problem.
// Implementations must be safe for concurrent use.
type Criterion interface {
	// Name returns the criterion's name as used in the paper's figures.
	Name() string
	// Dominates reports the criterion's verdict on whether sa dominates sb
	// with respect to the query sphere sq. All three spheres must share one
	// dimensionality.
	Dominates(sa, sb, sq geom.Sphere) bool
	// Correct reports whether the criterion is correct for arbitrary
	// dimensionality: a true verdict always implies real dominance.
	Correct() bool
	// Sound reports whether the criterion is sound for arbitrary
	// dimensionality: a false verdict always implies real non-dominance.
	Sound() bool
}

// All returns the five criteria evaluated in the paper, in the order of
// Table 1: MinMax, MBR, GP, Trigonometric, Hyperbola.
func All() []Criterion {
	return []Criterion{MinMax{}, MBR{}, GP{}, Trigonometric{}, Hyperbola{}}
}

// ByName returns the criterion with the given name (as reported by Name),
// or nil if there is none. Recognised names: "Hyperbola", "MinMax", "MBR",
// "GP", "Trigonometric", "Exact".
func ByName(name string) Criterion {
	switch name {
	case "Hyperbola":
		return Hyperbola{}
	case "MinMax":
		return MinMax{}
	case "MBR":
		return MBR{}
	case "GP":
		return GP{}
	case "Trigonometric":
		return Trigonometric{}
	case "Exact":
		return Exact{}
	}
	return nil
}

// checkDims panics if the three spheres do not share one dimensionality.
// Mixing dimensionalities is always a caller bug; failing fast beats
// returning a silently wrong verdict from a pruning operator.
func checkDims(sa, sb, sq geom.Sphere) int {
	d := sa.Dim()
	if sb.Dim() != d || sq.Dim() != d {
		panic("dominance: spheres with mixed dimensionality")
	}
	return d
}
