package dominance

import (
	"math"

	"hyperdom/internal/geom"
)

// Trigonometric is the adapted Trigonometric decision criterion of Emrich et
// al. (SSDBM 2010, ref [12] of the paper), described in the paper's
// appendix. It is sound and O(d) but not correct (Lemma 11).
//
// The MDD condition asks whether f(q) = Dist(cb,q) − Dist(ca,q) − (ra+rb)
// stays positive over Sq. Because optimising f directly is hard, the method
// optimises the surrogate g(q) = Dist(cb,q)² − Dist(ca,q)² − (ra+rb)
// instead, whose extrema over the ball Sq are at the two antipodal points
//
//	q1, q2 = cq ∓ rq·(ca−cb)/‖ca−cb‖
//
// (g is linear in q, so its extrema lie on the boundary sphere along its
// gradient). The criterion then inspects the sign of the true f at those
// two surrogate extrema and, following the appendix literally, returns
// false iff f(q1) and f(q2) have different signs or either is zero — i.e.
// iff a sign change of f inside Sq has been detected. A detected sign
// change implies (by continuity) a point of Sq where f ≤ 0, so every false
// verdict is justified (Lemma 12: sound). The true verdict carries no
// guarantee at all: f can dip below zero between two positive probes, and
// when Sa and Sb overlap — or the query is fat enough — BOTH probes go
// negative, the signs agree, and the criterion answers true for an
// instance that is clearly non-dominant. The latter failure mode is why
// the paper's Figures 8–10 show Trigonometric's precision collapsing as
// the average radius μ grows.
type Trigonometric struct{}

// Name implements Criterion.
func (Trigonometric) Name() string { return "Trigonometric" }

// Correct implements Criterion (Lemma 11: no).
func (Trigonometric) Correct() bool { return false }

// Sound implements Criterion (Lemma 12).
func (Trigonometric) Sound() bool { return true }

// Dominates implements Criterion in O(d) time.
func (Trigonometric) Dominates(sa, sb, sq geom.Sphere) bool {
	d := checkDims(sa, sb, sq)
	ca, cb, cq := sa.Center, sb.Center, sq.Center
	rab := sa.Radius + sb.Radius

	var dcc2 float64
	for i := 0; i < d; i++ {
		e := cb[i] - ca[i]
		dcc2 += e * e
	}
	if dcc2 == 0 {
		// Coincident centers: f(cq) = −rab ≤ 0, a witness at q = cq.
		return false
	}
	t := sq.Radius / math.Sqrt(dcc2)

	// q1 = cq − t·(ca−cb), q2 = cq + t·(ca−cb); accumulate all four squared
	// distances in one pass without materialising q1 and q2.
	var da1, db1, da2, db2 float64
	for i := 0; i < d; i++ {
		w := t * (ca[i] - cb[i])
		q1 := cq[i] - w
		q2 := cq[i] + w
		e := q1 - ca[i]
		da1 += e * e
		e = q1 - cb[i]
		db1 += e * e
		e = q2 - ca[i]
		da2 += e * e
		e = q2 - cb[i]
		db2 += e * e
	}
	f1 := math.Sqrt(db1) - math.Sqrt(da1) - rab
	f2 := math.Sqrt(db2) - math.Sqrt(da2) - rab
	// False iff a sign change (or zero) is detected between the probes.
	return f1*f2 > 0
}
