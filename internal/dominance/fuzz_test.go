package dominance

import (
	"math"
	"testing"

	"hyperdom/internal/geom"
)

// FuzzHyperbolaVsExact2D feeds raw coordinates to the closed-form criterion
// and the numeric oracle: they must agree away from the decision boundary
// and neither may panic or return a NaN-driven verdict. Runs on the seed
// corpus in normal test runs; `go test -fuzz FuzzHyperbolaVsExact2D` digs
// deeper.
func FuzzHyperbolaVsExact2D(f *testing.F) {
	f.Add(0.0, 0.0, 1.0, 9.0, 0.0, 1.0, -4.0, 0.0, 2.0)
	f.Add(0.0, 0.0, 0.0, 1.0, 0.0, 0.0, -3.0, 0.0, 3.0)   // rab = 0, grazing
	f.Add(-5.0, 0.0, 1.0, 5.0, 0.0, 2.0, -20.0, 0.0, 0.0) // on-axis query
	f.Add(-5.0, 0.0, 1.0, 5.0, 0.0, 2.0, 0.0, 7.0, 1.0)   // bisector query
	f.Add(0.0, 0.0, 2.0, 3.0, 0.0, 2.0, 10.0, 10.0, 1.0)  // overlap
	f.Add(1e6, 1e6, 1.0, 1e6+9, 1e6, 1.0, 1e6-4, 1e6, 2.0)
	f.Fuzz(func(t *testing.T, ax, ay, ar, bx, by, br, qx, qy, qr float64) {
		for _, v := range []float64{ax, ay, ar, bx, by, br, qx, qy, qr} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				t.Skip()
			}
		}
		if ar < 0 || br < 0 || qr < 0 {
			t.Skip()
		}
		sa := geom.Sphere{Center: []float64{ax, ay}, Radius: ar}
		sb := geom.Sphere{Center: []float64{bx, by}, Radius: br}
		sq := geom.Sphere{Center: []float64{qx, qy}, Radius: qr}
		in := instance{sa, sb, sq}
		// Scale-aware boundary tolerance.
		scale := 1.0
		for _, v := range []float64{ax, ay, bx, by, qx, qy, ar, br, qr} {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		if nearBoundary(in, 1e-7*scale) {
			t.Skip()
		}
		got := Hyperbola{}.Dominates(sa, sb, sq)
		want := Exact{}.Dominates(sa, sb, sq)
		if got != want {
			t.Fatalf("Hyperbola=%v Exact=%v\nsa=%v\nsb=%v\nsq=%v", got, want, sa, sb, sq)
		}
	})
}

// FuzzAllCriteriaNoPanic drives every criterion (and the witness search)
// with arbitrary 3-D inputs: none may panic on any valid sphere triple, and
// the correctness hierarchy must hold pointwise.
func FuzzAllCriteriaNoPanic(f *testing.F) {
	f.Add(0.0, 0.0, 0.0, 1.0, 5.0, 5.0, 5.0, 1.0, -5.0, -5.0, -5.0, 1.0)
	f.Add(1.0, 2.0, 3.0, 0.0, 1.0, 2.0, 3.0, 0.0, 1.0, 2.0, 3.0, 0.0) // all identical points
	f.Fuzz(func(t *testing.T, ax, ay, az, ar, bx, by, bz, br, qx, qy, qz, qr float64) {
		for _, v := range []float64{ax, ay, az, ar, bx, by, bz, br, qx, qy, qz, qr} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				t.Skip()
			}
		}
		if ar < 0 || br < 0 || qr < 0 {
			t.Skip()
		}
		sa := geom.Sphere{Center: []float64{ax, ay, az}, Radius: ar}
		sb := geom.Sphere{Center: []float64{bx, by, bz}, Radius: br}
		sq := geom.Sphere{Center: []float64{qx, qy, qz}, Radius: qr}
		hyp := Hyperbola{}.Dominates(sa, sb, sq)
		for _, c := range All() {
			v := c.Dominates(sa, sb, sq)
			// Correct criteria may only say true when the exact one does;
			// allow boundary slack since fuzz inputs can sit right on it.
			if c.Correct() && v && !hyp && !nearBoundary(instance{sa, sb, sq}, 1e-6*(1+math.Abs(ax)+math.Abs(bx)+math.Abs(qx))) {
				t.Fatalf("%s=true but Hyperbola=false\nsa=%v\nsb=%v\nsq=%v", c.Name(), sa, sb, sq)
			}
		}
		if w := FindWitness(sa, sb, sq, 32, nil); w != nil && len(w.Q) != 3 {
			t.Fatal("witness with wrong dimensionality")
		}
	})
}
