package dominance

import (
	"math"
	"math/rand"

	"hyperdom/internal/geom"
	"hyperdom/internal/vec"
)

// instance is one dominance problem.
type instance struct {
	sa, sb, sq geom.Sphere
}

// randSphereT returns a random sphere with N(0, scale) coordinates and a
// radius uniform in [0, maxR].
func randSphereT(rng *rand.Rand, d int, scale, maxR float64) geom.Sphere {
	c := make([]float64, d)
	for i := range c {
		c[i] = rng.NormFloat64() * scale
	}
	return geom.NewSphere(c, rng.Float64()*maxR)
}

// randInstance generates a random dominance instance. Roughly half the
// instances are "borderline": Sq's radius is placed within ±20% of the true
// dmin so that verdicts flip around the decision boundary, which is where
// bugs live.
func randInstance(rng *rand.Rand, d int) instance {
	for {
		sa := randSphereT(rng, d, 10, 4)
		sb := randSphereT(rng, d, 10, 4)
		sq := randSphereT(rng, d, 10, 4)
		if geom.Overlap(sa, sb) {
			if rng.Float64() < 0.9 {
				continue // keep some overlapping instances, but not 40% of them
			}
			return instance{sa, sb, sq}
		}
		if rng.Float64() < 0.5 {
			red, ok := reduce(sa, sb, sq)
			if ok && red.inside {
				dmin := exactDmin(red)
				sq.Radius = dmin * (0.8 + 0.4*rng.Float64())
			}
		}
		return instance{sa, sb, sq}
	}
}

// randRotation returns a random d×d orthonormal matrix (rows are the basis)
// built by Gram-Schmidt on a Gaussian matrix.
func randRotation(rng *rand.Rand, d int) [][]float64 {
	for {
		m := make([][]float64, d)
		ok := true
		for i := 0; i < d && ok; i++ {
			v := make([]float64, d)
			for j := range v {
				v[j] = rng.NormFloat64()
			}
			for k := 0; k < i; k++ {
				p := vec.Dot(v, m[k])
				vec.Axpy(v, -p, m[k], v)
			}
			n := vec.Norm(v)
			if n < 1e-8 {
				ok = false
				break
			}
			vec.ScaleTo(v, 1/n, v)
			m[i] = v
		}
		if ok {
			return m
		}
	}
}

// apply returns the image of point p under rotation m.
func apply(m [][]float64, p []float64) []float64 {
	out := make([]float64, len(m))
	for i, row := range m {
		out[i] = vec.Dot(row, p)
	}
	return out
}

// transformSphere applies rotation m, then scales by s, then translates by t.
func transformSphere(sp geom.Sphere, m [][]float64, s float64, t []float64) geom.Sphere {
	c := apply(m, sp.Center)
	for i := range c {
		c[i] = c[i]*s + t[i]
	}
	return geom.NewSphere(c, sp.Radius*math.Abs(s))
}

// nearBoundary reports whether the instance is too close to the decision
// boundary for float verdicts to be compared reliably: near-tangent Sa/Sb,
// or Sq within tol of grazing the hyperbola branch.
func nearBoundary(in instance, tol float64) bool {
	dcc := vec.Dist(in.sa.Center, in.sb.Center)
	rab := in.sa.Radius + in.sb.Radius
	if math.Abs(dcc-rab) < tol {
		return true // overlap verdict itself is ambiguous
	}
	red, ok := reduce(in.sa, in.sb, in.sq)
	if !ok {
		return false // robustly overlapping: verdict is a solid false
	}
	dmin := exactDmin(red) // distance from cq to the branch, either side
	if red.inside {
		return math.Abs(dmin-in.sq.Radius) < tol
	}
	// cq outside Ra: the verdict flips only if cq is nearly on the boundary
	// AND the query radius is nearly zero.
	return dmin < tol && in.sq.Radius < 2*tol
}
