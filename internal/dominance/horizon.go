package dominance

import (
	"fmt"

	"hyperdom/internal/geom"
)

// This file implements the first future-work direction the paper's
// conclusion names: deciding dominance "when the radii of the hyperspheres
// change over time". Radii grow linearly — r(t) = r + v·t with velocity
// v ≥ 0 — which models uncertainty regions inflating as measurements age
// (dead reckoning in moving-object databases).
//
// Dominance is anti-monotone in every radius: growing ra or rb raises the
// MDD threshold ra+rb, and growing rq shrinks the minimum of the distance
// difference over the larger query ball. Hence with non-negative velocities
// there is a single switch time t* — dominance holds for all t < t* and for
// no t > t* — and bisection over the (exact) Hyperbola criterion finds it
// to any precision.

// Horizon returns the dominance horizon of the instance under linear radius
// growth: the supremum t* ∈ [0, tMax] such that Dom(Sa(t), Sb(t), Sq(t))
// holds for every t < t*, where X(t) keeps X's center and has radius
// rx + vx·t. It returns 0 when dominance does not hold at t = 0 and tMax
// when it still holds at tMax. All velocities must be non-negative.
//
// The result is exact up to the bisection tolerance of ~1e-12·(1+tMax).
func Horizon(sa, sb, sq geom.Sphere, va, vb, vq float64, tMax float64) float64 {
	if va < 0 || vb < 0 || vq < 0 {
		panic(fmt.Sprintf("dominance: Horizon with negative velocity (%v, %v, %v)", va, vb, vq))
	}
	if tMax < 0 {
		panic(fmt.Sprintf("dominance: Horizon with negative tMax %v", tMax))
	}
	h := Hyperbola{}
	at := func(t float64) bool {
		return h.Dominates(
			geom.Sphere{Center: sa.Center, Radius: sa.Radius + va*t},
			geom.Sphere{Center: sb.Center, Radius: sb.Radius + vb*t},
			geom.Sphere{Center: sq.Center, Radius: sq.Radius + vq*t},
		)
	}
	if !at(0) {
		return 0
	}
	if va == 0 && vb == 0 && vq == 0 {
		return tMax
	}
	if at(tMax) {
		return tMax
	}
	lo, hi := 0.0, tMax // at(lo) true, at(hi) false
	for i := 0; i < 100 && hi-lo > 1e-12*(1+tMax); i++ {
		mid := lo + (hi-lo)/2
		if at(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
