package dominance

import (
	"math"
	"math/rand"

	"hyperdom/internal/geom"
	"hyperdom/internal/vec"
)

// Witness is a certificate of non-dominance: a point q ∈ Sq at which the
// MDD margin Dist(cb,q) − Dist(ca,q) − (ra+rb) is non-positive (or, in the
// overlap case, a pair of coincident object points).
type Witness struct {
	Q      []float64 // the query point certifying the failure
	Margin float64   // Dist(cb,Q) − Dist(ca,Q) − (ra+rb); ≤ 0 proves non-dominance
}

// FindWitness searches for a witness that sa does NOT dominate sb wrt sq,
// using random sampling inside sq followed by projected gradient descent on
// the MDD margin. It operates entirely in the original d-dimensional space,
// independently of the 2-D reduction the deterministic criteria share, which
// makes it a useful cross-check in tests.
//
// A non-nil result is a proof of non-dominance (up to floating-point
// evaluation of the margin). A nil result proves nothing: the search is
// randomized and can miss witnesses.
func FindWitness(sa, sb, sq geom.Sphere, samples int, rng *rand.Rand) *Witness {
	checkDims(sa, sb, sq)
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	if geom.Overlap(sa, sb) {
		// Lemma 1: any point of the intersection works with any q; report
		// cq with the (≤ 0) margin for uniformity.
		q := vec.Clone(sq.Center)
		return &Witness{Q: q, Margin: margin(sa, sb, q)}
	}

	best := vec.Clone(sq.Center)
	bestM := margin(sa, sb, best)
	d := sq.Dim()

	// Deterministic seed candidates: cq pushed toward cb and away from ca —
	// the directions in which the margin tends to shrink.
	for _, dir := range [][]float64{
		vec.Sub(sb.Center, sq.Center),
		vec.Sub(sq.Center, sa.Center),
		vec.Sub(sa.Center, sb.Center),
	} {
		u, n := vec.Unit(dir)
		if n == 0 {
			continue
		}
		q := vec.Axpy(make([]float64, d), sq.Radius, u, sq.Center)
		if m := margin(sa, sb, q); m < bestM {
			best, bestM = q, m
		}
	}

	for i := 0; i < samples && bestM > 0; i++ {
		q := sampleBall(sq, rng)
		if m := margin(sa, sb, q); m < bestM {
			best, bestM = q, m
		}
	}

	// Projected gradient descent from the best point found so far.
	best, bestM = descend(sa, sb, sq, best, bestM)
	if bestM <= 0 {
		return &Witness{Q: best, Margin: bestM}
	}
	return nil
}

// MonteCarlo is a randomized falsifier packaged as a Criterion: it returns
// false iff FindWitness locates a certificate, and true otherwise. A false
// verdict is always justified (sound, up to float evaluation); a true
// verdict is only probabilistic (not correct in the worst case, though
// misses are rare with a generous sample budget). Intended for tests.
type MonteCarlo struct {
	Samples int   // sampling budget per call; 0 means 512
	Seed    int64 // seed for the internal generator; calls are deterministic given the inputs
}

// Name implements Criterion.
func (MonteCarlo) Name() string { return "MonteCarlo" }

// Correct implements Criterion: sampling can miss witnesses, so a true
// verdict carries no guarantee.
func (MonteCarlo) Correct() bool { return false }

// Sound implements Criterion: every false verdict is backed by a witness.
func (MonteCarlo) Sound() bool { return true }

// Dominates implements Criterion.
func (m MonteCarlo) Dominates(sa, sb, sq geom.Sphere) bool {
	n := m.Samples
	if n == 0 {
		n = 512
	}
	rng := rand.New(rand.NewSource(m.Seed + 1))
	return FindWitness(sa, sb, sq, n, rng) == nil
}

// margin returns Dist(cb,q) − Dist(ca,q) − (ra+rb).
func margin(sa, sb geom.Sphere, q []float64) float64 {
	return vec.Dist(sb.Center, q) - vec.Dist(sa.Center, q) - (sa.Radius + sb.Radius)
}

// descend runs projected gradient descent on the margin within sq.
func descend(sa, sb, sq geom.Sphere, q []float64, m float64) ([]float64, float64) {
	d := len(q)
	grad := make([]float64, d)
	cand := make([]float64, d)
	step := sq.Radius / 4
	if step == 0 {
		return q, m
	}
	for iter := 0; iter < 80 && m > 0; iter++ {
		// ∇margin = (q−cb)/‖q−cb‖ − (q−ca)/‖q−ca‖.
		db := vec.Dist(sb.Center, q)
		da := vec.Dist(sa.Center, q)
		if da == 0 || db == 0 {
			break
		}
		for i := 0; i < d; i++ {
			grad[i] = (q[i]-sb.Center[i])/db - (q[i]-sa.Center[i])/da
		}
		gn := vec.Norm(grad)
		if gn < 1e-15 {
			break
		}
		improved := false
		for ; step > 1e-12*sq.Radius; step /= 2 {
			vec.Axpy(cand, -step/gn, grad, q)
			projectBall(cand, sq)
			if mc := margin(sa, sb, cand); mc < m {
				copy(q, cand)
				m = mc
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
	return q, m
}

// projectBall clamps p into the ball sq in place.
func projectBall(p []float64, sq geom.Sphere) {
	dist := vec.Dist(p, sq.Center)
	if dist <= sq.Radius || dist == 0 {
		return
	}
	t := sq.Radius / dist
	for i := range p {
		p[i] = sq.Center[i] + t*(p[i]-sq.Center[i])
	}
}

// sampleBall returns a uniform random point in the ball s.
func sampleBall(s geom.Sphere, rng *rand.Rand) []float64 {
	d := s.Dim()
	v := make([]float64, d)
	for {
		var n2 float64
		for i := range v {
			v[i] = rng.NormFloat64()
			n2 += v[i] * v[i]
		}
		if n2 > 0 {
			r := s.Radius * math.Pow(rng.Float64(), 1/float64(d)) / math.Sqrt(n2)
			for i := range v {
				v[i] = s.Center[i] + r*v[i]
			}
			return v
		}
	}
}
