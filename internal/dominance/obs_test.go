package dominance

import (
	"math/rand"
	"testing"
	"time"

	"hyperdom/internal/geom"
	"hyperdom/internal/obs"
)

// obsWorkload builds the fixture the observability tests share: one fixed
// non-overlapping pair at d=10 and a mixed query batch straddling the
// dominance boundary — half point queries (the certain-query pruning case)
// and half fat sphere queries (the quartic path).
func obsWorkload(nq int) (sa, sb geom.Sphere, queries []geom.Sphere) {
	rng := rand.New(rand.NewSource(123))
	d := 10
	for {
		sa = randSphereT(rng, d, 3, 1.5)
		sb = randSphereT(rng, d, 3, 1.5)
		if !geom.Overlap(sa, sb) {
			break
		}
	}
	queries = make([]geom.Sphere, nq)
	for i := range queries {
		c := make([]float64, d)
		for j := range c {
			c[j] = (sa.Center[j]+sb.Center[j])/2 + rng.NormFloat64()*6
		}
		if i%2 == 0 {
			queries[i] = geom.Point(c)
		} else {
			queries[i] = geom.NewSphere(c, rng.Float64()*2)
		}
	}
	return sa, sb, queries
}

var obsSink bool

// TestObsOverhead is the instrumentation cost gate of ISSUE 2: running the
// dominance kernel with the obs layer enabled must cost less than 5% over
// running it disabled. The kernel tallies into plain struct-locals and
// flushes atomically only every obsFlushEvery queries, so the enabled path
// adds a handful of register adds per call.
func TestObsOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts the timing comparison")
	}
	sa, sb, queries := obsWorkload(512)
	defer obs.SetEnabled(true)

	// One measured round: the whole query batch, repeated a few times so a
	// round lasts long enough for the monotonic clock to resolve it.
	round := func(pp *PreparedPair) time.Duration {
		start := time.Now()
		for rep := 0; rep < 8; rep++ {
			for _, q := range queries {
				obsSink = obsSink != pp.Dominates(q)
			}
		}
		return time.Since(start)
	}

	// Alternate enabled/disabled rounds and keep the minimum of each, so
	// scheduler noise and thermal drift hit both sides alike; accept the
	// first of three attempts that lands under the budget.
	const attempts, rounds = 3, 9
	var lastOn, lastOff time.Duration
	for a := 0; a < attempts; a++ {
		minOn, minOff := time.Duration(1<<62), time.Duration(1<<62)
		for r := 0; r < rounds; r++ {
			obs.SetEnabled(false)
			ppOff := PreparePair(sa, sb)
			if d := round(&ppOff); d < minOff {
				minOff = d
			}
			obs.SetEnabled(true)
			ppOn := PreparePair(sa, sb)
			if d := round(&ppOn); d < minOn {
				minOn = d
			}
			ppOn.FlushObs()
		}
		lastOn, lastOff = minOn, minOff
		if float64(minOn) <= float64(minOff)*1.05 {
			return
		}
	}
	t.Errorf("obs-enabled kernel %.1f%% slower than disabled (on=%v off=%v), budget 5%%",
		100*(float64(lastOn)/float64(lastOff)-1), lastOn, lastOff)
}

// TestObsPairCounters pins the prepared-pair event accounting: queries,
// reuse hits, resets, verdicts and quartic solves must land in the
// registry after a flush, and must not move while the gate is off. The
// registry is zeroed up front (obs.ResetForTest) so every assertion reads
// an absolute counter value rather than diffing snapshots.
func TestObsPairCounters(t *testing.T) {
	sa, sb, queries := obsWorkload(64)
	defer obs.SetEnabled(true)

	obs.SetEnabled(true)
	obs.ResetForTest()
	pp := PreparePair(sa, sb)
	trues, falses := 0, 0
	for _, q := range queries {
		if pp.Dominates(q) {
			trues++
		} else {
			falses++
		}
	}
	pp.FlushObs()
	got := obs.Snapshot()

	if got := got.Get("dominance.prepared.queries"); got != uint64(len(queries)) {
		t.Errorf("prepared.queries = %d, want %d", got, len(queries))
	}
	if got := got.Get("dominance.prepared.resets"); got != 1 {
		t.Errorf("prepared.resets = %d, want 1", got)
	}
	if got := got.Get("dominance.prepared.reuse_hits"); got != uint64(len(queries)-1) {
		t.Errorf("prepared.reuse_hits = %d, want %d", got, len(queries)-1)
	}
	if got := got.Get("dominance.prepared.verdict_true"); got != uint64(trues) {
		t.Errorf("prepared.verdict_true = %d, want %d", got, trues)
	}
	if got := got.Get("dominance.prepared.verdict_false"); got != uint64(falses) {
		t.Errorf("prepared.verdict_false = %d, want %d", got, falses)
	}
	if trues+falses != len(queries) {
		t.Fatalf("verdict partition broken: %d+%d != %d", trues, falses, len(queries))
	}
	// Sphere queries with cq inside Ra hit the quartic; the fixture is
	// built to exercise that path.
	if got.Get("dominance.quartic_solves") == 0 {
		t.Error("quartic_solves did not move on a workload with fat queries inside Ra")
	}

	// With the gate off, nothing may move.
	obs.SetEnabled(false)
	obs.ResetForTest()
	pp2 := PreparePair(sa, sb)
	for _, q := range queries {
		obsSink = obsSink != pp2.Dominates(q)
	}
	pp2.FlushObs()
	if moved := obs.Snapshot().Diff(obs.Snap{}); len(moved) != 0 {
		t.Errorf("counters moved while disabled: %v", moved)
	}
}

// TestObsHyperbolaCounters pins the stateless-path accounting, including
// the overlap short-circuit.
func TestObsHyperbolaCounters(t *testing.T) {
	defer obs.SetEnabled(true)
	obs.SetEnabled(true)
	sa, sb, queries := obsWorkload(32)

	obs.ResetForTest()
	crit := Hyperbola{}
	for _, q := range queries {
		obsSink = obsSink != crit.Dominates(sa, sb, q)
	}
	// An overlapping pair must take the short-circuit.
	crit.Dominates(sa, sa, queries[0])
	got := obs.Snapshot()

	if got := got.Get("dominance.hyperbola.invocations"); got != uint64(len(queries)+1) {
		t.Errorf("hyperbola.invocations = %d, want %d", got, len(queries)+1)
	}
	if got := got.Get("dominance.hyperbola.overlap_shortcircuit"); got != 1 {
		t.Errorf("hyperbola.overlap_shortcircuit = %d, want 1", got)
	}
	wantVerdicts := uint64(len(queries) + 1)
	if got := got.Get("dominance.hyperbola.verdict_true") + got.Get("dominance.hyperbola.verdict_false"); got != wantVerdicts {
		t.Errorf("hyperbola verdict counters sum to %d, want %d", got, wantVerdicts)
	}
}

// TestObsAutoFlush verifies the threshold drain: a pair that serves more
// than obsFlushEvery queries publishes without an explicit FlushObs.
func TestObsAutoFlush(t *testing.T) {
	defer obs.SetEnabled(true)
	obs.SetEnabled(true)
	sa, sb, queries := obsWorkload(16)

	obs.ResetForTest()
	pp := PreparePair(sa, sb)
	n := obsFlushEvery + 5
	for i := 0; i < n; i++ {
		obsSink = obsSink != pp.Dominates(queries[i%len(queries)])
	}
	if got := obs.Snapshot().Get("dominance.prepared.queries"); got < obsFlushEvery {
		t.Errorf("prepared.queries = %d before explicit flush, want >= %d (auto-flush)", got, obsFlushEvery)
	}
	pp.FlushObs()
	if got := obs.Snapshot().Get("dominance.prepared.queries"); got != uint64(n) {
		t.Errorf("prepared.queries = %d after flush, want %d", got, n)
	}
}

// TestDominatesBatch checks the batch sweep returns verdicts bit-identical
// to the one-at-a-time path and records exactly one sample into the
// batch-latency histogram per call (and none with the gate off).
func TestDominatesBatch(t *testing.T) {
	defer obs.SetEnabled(true)
	sa, sb, queries := obsWorkload(128)

	obs.SetEnabled(true)
	obs.ResetForTest()
	pp := PreparePair(sa, sb)
	want := make([]bool, len(queries))
	for i, q := range queries {
		want[i] = pp.Dominates(q)
	}
	pp2 := PreparePair(sa, sb)
	got := make([]bool, len(queries))
	pp2.DominatesBatch(queries, got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DominatesBatch verdict %d = %v, per-query path says %v", i, got[i], want[i])
		}
	}
	if n := obs.MergedHist("dominance.prepared_batch_latency").Count; n != 1 {
		t.Errorf("prepared_batch_latency holds %d samples after one batch, want 1", n)
	}

	obs.SetEnabled(false)
	obs.ResetForTest()
	pp3 := PreparePair(sa, sb)
	pp3.DominatesBatch(queries, got)
	if n := obs.MergedHist("dominance.prepared_batch_latency").Count; n != 0 {
		t.Errorf("prepared_batch_latency recorded %d samples with the gate off, want 0", n)
	}

	defer func() {
		if recover() == nil {
			t.Error("mismatched slice lengths did not panic")
		}
	}()
	pp3.DominatesBatch(queries, got[:1])
}
