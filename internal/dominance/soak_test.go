package dominance

import (
	"math/rand"
	"testing"
)

// TestHyperbolaVsExactSoak is the heavyweight agreement sweep: a few
// hundred thousand instances spanning dimensionalities, coordinate scales
// and radius regimes. Skipped under -short; the lighter
// TestHyperbolaVsExactRandom runs always.
func TestHyperbolaVsExactSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test in -short mode")
	}
	rng := rand.New(rand.NewSource(20240622))
	h := Hyperbola{}
	e := Exact{}
	configs := []struct {
		d     int
		scale float64
		maxR  float64
	}{
		{1, 10, 4}, {2, 10, 4}, {3, 10, 4}, {4, 1000, 2}, {6, 10, 40},
		{8, 0.01, 0.004}, {12, 10, 4}, {24, 100, 400}, {64, 10, 4},
	}
	const perConfig = 25000
	for _, cfg := range configs {
		checked := 0
		for i := 0; i < perConfig; i++ {
			sa := randSphereT(rng, cfg.d, cfg.scale, cfg.maxR)
			sb := randSphereT(rng, cfg.d, cfg.scale, cfg.maxR)
			sq := randSphereT(rng, cfg.d, cfg.scale, cfg.maxR)
			in := instance{sa, sb, sq}
			if nearBoundary(in, 1e-7*(cfg.scale+cfg.maxR)) {
				continue
			}
			checked++
			if h.Dominates(sa, sb, sq) != e.Dominates(sa, sb, sq) {
				t.Fatalf("disagreement at d=%d scale=%v maxR=%v i=%d\nsa=%v\nsb=%v\nsq=%v",
					cfg.d, cfg.scale, cfg.maxR, i, sa, sb, sq)
			}
		}
		if checked < perConfig/2 {
			t.Errorf("config %+v: only %d/%d instances usable", cfg, checked, perConfig)
		}
	}
}
