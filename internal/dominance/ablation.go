package dominance

import (
	"math"

	"hyperdom/internal/geom"
	"hyperdom/internal/poly"
)

// HyperbolaLambda is the ablation variant of the Hyperbola criterion that
// solves the quartic of Eq. (14) literally in the Lagrange multiplier λ, as
// printed in the paper, instead of in the transformed variable y of Eq. (13)
// that the default implementation uses.
//
// The two are mathematically identical (y = p2/(1 + 4r²λ) is a Möbius map
// between the roots), but the λ form is numerically brittle: when the
// combined radius rab is small relative to the focal distance, its
// coefficients span ten or more orders of magnitude, Ferrari's method loses
// roots, and the solver must fall back to the slow bracketing path. The
// ablation benchmark BenchmarkAblationQuartic quantifies the difference;
// the agreement test in ablation_test.go confirms the verdicts match.
type HyperbolaLambda struct{}

// Name implements Criterion.
func (HyperbolaLambda) Name() string { return "Hyperbola-λ" }

// Correct implements Criterion.
func (HyperbolaLambda) Correct() bool { return true }

// Sound implements Criterion.
func (HyperbolaLambda) Sound() bool { return true }

// Dominates implements Criterion.
func (HyperbolaLambda) Dominates(sa, sb, sq geom.Sphere) bool {
	checkDims(sa, sb, sq)
	red, ok := reduce(sa, sb, sq)
	if !ok {
		return false
	}
	if !red.inside {
		return false
	}
	if sq.Radius == 0 {
		return true
	}
	return lambdaDmin(red) > sq.Radius
}

// lambdaDmin mirrors hyperbolaDmin but runs the paper's λ-quartic,
// Eq. (14), with the back-substitutions of Eqs. (12)–(13).
func lambdaDmin(red reduced) float64 {
	alpha, rab, p1, p2 := red.alpha, red.rab, red.p1, red.p2
	if red.line {
		return math.Abs(p1 + rab/2)
	}
	if rab == 0 {
		return math.Abs(p1)
	}
	hA := rab / 2
	b2 := (alpha - hA) * (alpha + hA)

	distToY := func(y float64) float64 {
		x := -hA * math.Sqrt(1+y*y/b2)
		return math.Hypot(p1-x, p2-y)
	}

	dmin := distToY(0)
	if y := p2 * b2 / (alpha * alpha); y != 0 {
		if dd := distToY(y); dd < dmin {
			dmin = dd
		}
	}
	if x := p1 * hA * hA / (alpha * alpha); x < 0 {
		if y2 := b2 * (x*x/(hA*hA) - 1); y2 > 0 {
			if dd := distToY(math.Sqrt(y2)); dd < dmin {
				dmin = dd
			}
		}
	}

	// Eq. (14) verbatim, scale-normalised by max(α, rab) so the aᵢ do not
	// overflow; the conditioning pathology this ablation demonstrates is
	// about coefficient *spread*, which normalisation cannot remove.
	s := 1 / math.Max(alpha, rab)
	sa, sr, sp1, sp2 := alpha*s, rab*s, p1*s, p2*s
	a1 := (16*sa*sa - 4*sr*sr) * sp1 * sp1
	a2 := sr*sr*sr*sr - 4*sr*sr*sa*sa
	a3 := 4 * sr * sr * sp2 * sp2
	a4 := 4 * sr * sr
	a5 := 4*sr*sr - 16*sa*sa

	qa := a2 * a4 * a4 * a5 * a5
	qb := 2*a2*a4*a4*a5 + 2*a2*a4*a5*a5
	qc := a1*a4*a4 + a2*a4*a4 + 4*a2*a4*a5 + a2*a5*a5 - a3*a5*a5
	qd := 2*a1*a4 + 2*a2*a4 + 2*a2*a5 - 2*a3*a5
	qe := a1 + a2 - a3

	roots, n := poly.Quartic4(qa, qb, qc, qd, qe)
	for _, lambda := range roots[:n] {
		den := 1 + a4*lambda
		if math.Abs(den) < 1e-14 {
			continue // the p2 = 0 family, covered in closed form above
		}
		// Eq. (13): y = cq[2]/(4r²λ + 1); the normalisation scale cancels.
		y := p2 / den
		if dd := distToY(y); dd < dmin {
			dmin = dd
		}
	}
	return dmin
}
