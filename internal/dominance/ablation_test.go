package dominance

import (
	"math/rand"
	"testing"

	"hyperdom/internal/geom"
)

// TestLambdaVariantAgreesWithDefault: the λ-quartic ablation and the
// default y-quartic implementation decide the same instances identically
// (both are exact; only their numerics differ).
func TestLambdaVariantAgreesWithDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	h := Hyperbola{}
	l := HyperbolaLambda{}
	for i := 0; i < 40000; i++ {
		d := 1 + rng.Intn(8)
		in := randInstance(rng, d)
		if nearBoundary(in, 1e-6) {
			continue
		}
		if h.Dominates(in.sa, in.sb, in.sq) != l.Dominates(in.sa, in.sb, in.sq) {
			t.Fatalf("variants disagree (i=%d)\nsa=%v\nsb=%v\nsq=%v", i, in.sa, in.sb, in.sq)
		}
	}
}

// TestLambdaVariantSmallRadiusRegime: the regime that motivated the
// variable change — tiny radii against large focal distances, as in the
// NBA dataset. Both variants must stay exact (the λ path via its fallback).
func TestLambdaVariantSmallRadiusRegime(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for i := 0; i < 3000; i++ {
		d := 2 + rng.Intn(6)
		sa := randSphereT(rng, d, 800, 6)
		sb := randSphereT(rng, d, 800, 6)
		sq := randSphereT(rng, d, 800, 6)
		if geom.Overlap(sa, sb) {
			continue
		}
		in := instance{sa, sb, sq}
		if nearBoundary(in, 1e-5) {
			continue
		}
		want := Exact{}.Dominates(sa, sb, sq)
		if got := (Hyperbola{}).Dominates(sa, sb, sq); got != want {
			t.Fatalf("default variant wrong in small-radius regime (i=%d)", i)
		}
		if got := (HyperbolaLambda{}).Dominates(sa, sb, sq); got != want {
			t.Fatalf("λ variant wrong in small-radius regime (i=%d)", i)
		}
	}
}

// BenchmarkAblationQuartic contrasts the default y-variable quartic with
// the paper-literal λ quartic in the small-radius regime where their
// conditioning differs most.
func BenchmarkAblationQuartic(b *testing.B) {
	rng := rand.New(rand.NewSource(33))
	ins := make([]instance, 1024)
	for i := range ins {
		d := 2 + rng.Intn(6)
		ins[i] = instance{
			sa: randSphereT(rng, d, 800, 6),
			sb: randSphereT(rng, d, 800, 6),
			sq: randSphereT(rng, d, 800, 6),
		}
	}
	b.Run("y-quartic", func(b *testing.B) {
		h := Hyperbola{}
		for i := 0; i < b.N; i++ {
			in := ins[i%len(ins)]
			h.Dominates(in.sa, in.sb, in.sq)
		}
	})
	b.Run("lambda-quartic", func(b *testing.B) {
		h := HyperbolaLambda{}
		for i := 0; i < b.N; i++ {
			in := ins[i%len(ins)]
			h.Dominates(in.sa, in.sb, in.sq)
		}
	})
}
