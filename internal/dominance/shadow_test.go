package dominance

import (
	"math/rand"
	"testing"
	"time"

	"hyperdom/internal/obs"
)

// shadowWorkload generates borderline-heavy dominance instances across
// dimensions 2..8 — the decision-boundary regime where Table 1's criteria
// actually disagree.
func shadowWorkload(seed int64, n int) []instance {
	rng := rand.New(rand.NewSource(seed))
	w := make([]instance, n)
	for i := range w {
		w[i] = randInstance(rng, 2+i%7)
	}
	return w
}

// TestShadowComparePolarity checks ShadowCompare against Table 1 on a seed
// workload: the correct criteria (MinMax, MBR, GP) may only land on the
// missed-prune side of a disagreement, the sound one (Trigonometric) only
// on the false-positive side, and the cheap criteria do disagree with
// Hyperbola somewhere in the workload (otherwise the audit proves nothing).
func TestShadowComparePolarity(t *testing.T) {
	names := ShadowCompetitorNames()
	missed := make(map[string]int)
	falsePos := make(map[string]int)

	for _, in := range shadowWorkload(77, 4000) {
		hyp, mask := ShadowCompare(in.sa, in.sb, in.sq, nil)
		if want := (Hyperbola{}).Dominates(in.sa, in.sb, in.sq); hyp != want {
			t.Fatalf("ShadowCompare verdict %v diverges from Hyperbola %v", hyp, want)
		}
		for i, name := range names {
			if mask&(1<<i) == 0 {
				continue
			}
			if hyp {
				missed[name]++
			} else {
				falsePos[name]++
			}
		}
	}

	// Table 1 polarity: correct criteria never produce false positives.
	for _, name := range []string{"MinMax", "MBR", "GP"} {
		if falsePos[name] != 0 {
			t.Errorf("correct criterion %s produced %d false positives", name, falsePos[name])
		}
	}
	// The sound criterion never misses a prune Hyperbola finds.
	if missed["Trigonometric"] != 0 {
		t.Errorf("sound criterion Trigonometric missed %d prunes", missed["Trigonometric"])
	}
	// And the audit must observe real disagreement on both sides somewhere.
	if missed["MinMax"] == 0 || missed["MBR"] == 0 {
		t.Errorf("workload produced no missed prunes for MinMax/MBR: %v", missed)
	}
	if falsePos["Trigonometric"] == 0 {
		t.Errorf("workload produced no Trigonometric false positives: %v", falsePos)
	}
}

// TestShadowCompareCounters checks the per-criterion disagreement counters
// mirror what ShadowCompare reports, and stand still when the obs gate is
// off.
func TestShadowCompareCounters(t *testing.T) {
	defer obs.SetEnabled(true)
	obs.SetEnabled(true)
	obs.ResetForTest()

	names := ShadowCompetitorNames()
	w := shadowWorkload(78, 2000)
	wantChecks := uint64(len(w))
	wantMissed := make(map[string]uint64)
	wantFalsePos := make(map[string]uint64)
	for _, in := range w {
		hyp, mask := ShadowCompare(in.sa, in.sb, in.sq, nil)
		for i, name := range names {
			if mask&(1<<i) == 0 {
				continue
			}
			if hyp {
				wantMissed[name]++
			} else {
				wantFalsePos[name]++
			}
		}
	}

	snap := obs.Snapshot()
	if got := snap.Get("dominance.shadow.checks"); got != wantChecks {
		t.Errorf("dominance.shadow.checks = %d, want %d", got, wantChecks)
	}
	for _, name := range names {
		if got := snap.Get("dominance.shadow.missed_prune." + name); got != wantMissed[name] {
			t.Errorf("missed_prune.%s = %d, want %d", name, got, wantMissed[name])
		}
		if got := snap.Get("dominance.shadow.false_positive." + name); got != wantFalsePos[name] {
			t.Errorf("false_positive.%s = %d, want %d", name, got, wantFalsePos[name])
		}
	}

	// Gate off: verdicts unchanged, counters frozen.
	obs.SetEnabled(false)
	for _, in := range w[:200] {
		hyp, _ := ShadowCompare(in.sa, in.sb, in.sq, nil)
		if want := (Hyperbola{}).Dominates(in.sa, in.sb, in.sq); hyp != want {
			t.Fatalf("gate-off ShadowCompare verdict diverged")
		}
	}
	obs.SetEnabled(true)
	if got := obs.Snapshot().Get("dominance.shadow.checks"); got != wantChecks {
		t.Errorf("gate-off ShadowCompare moved checks to %d, want %d", got, wantChecks)
	}
}

// TestShadowAudit checks the primary-verdict contract: whatever the
// audit observes, the caller gets exactly the primary criterion's answer.
func TestShadowAudit(t *testing.T) {
	for _, in := range shadowWorkload(79, 1000) {
		for _, crit := range []Criterion{Hyperbola{}, MinMax{}, MBR{}, GP{}, Trigonometric{}} {
			want := crit.Dominates(in.sa, in.sb, in.sq)
			if got := ShadowAudit(crit, in.sa, in.sb, in.sq, nil); got != want {
				t.Fatalf("ShadowAudit(%s) = %v, want the primary verdict %v",
					crit.Name(), got, want)
			}
		}
	}
}

// TestShadowTraceEvents checks disagreements land in an active TraceBuf as
// shadow spans carrying both verdicts.
func TestShadowTraceEvents(t *testing.T) {
	var tb obs.TraceBuf
	tb.Begin(time.Now())
	recorded := 0
	for _, in := range shadowWorkload(80, 1500) {
		hyp, mask := ShadowCompare(in.sa, in.sb, in.sq, &tb)
		if mask == 0 {
			continue
		}
		for i := 0; i < len(ShadowCompetitorNames()); i++ {
			if mask&(1<<i) != 0 {
				recorded++
			}
		}
		_ = hyp
	}
	if recorded == 0 {
		t.Fatal("workload produced no disagreements to record")
	}
	qt := tb.Finish(obs.FlightLabel("test"), obs.FlightLabel("shadow"), 0, 1, 1)
	if got := qt.CountKind(obs.SpanShadow); got != recorded {
		t.Errorf("trace has %d shadow spans, want %d", got, recorded)
	}
}
