// Package lpball explores the second future-work direction of the paper's
// conclusion: the dominance problem "when some distance metrics other than
// Euclidean distance are adopted".
//
// Objects are balls of the Lp metric (p ≥ 1, including p = ∞): the set of
// points within Lp-distance Radius of Center. Dominance keeps Definition
// 1's shape with Dist replaced by the Lp distance.
//
// The Hyperbola criterion does not transfer — its geometry (a hyperboloid
// of revolution with a closed-form point-to-curve distance) is specific to
// L2 — but two of the paper's tools do:
//
//   - The MinMax criterion is correct for EVERY metric, because MaxDist and
//     MinDist bounds follow from the triangle inequality alone (Lemma 2's
//     proof never uses Euclidean structure). It is exposed as MinMax.
//   - The sampling falsifier transfers verbatim and certifies
//     non-dominance with a witness point. It is exposed as FindWitness.
//
// Together they bracket the truth from both sides: MinMax true ⇒ dominated;
// witness found ⇒ not dominated; between them lies the gap a future exact
// Lp criterion would close.
package lpball

import (
	"fmt"
	"math"
	"math/rand"
)

// Ball is a ball of the Lp metric.
type Ball struct {
	Center []float64
	Radius float64
}

// New returns a ball, panicking on invalid parameters.
func New(center []float64, radius float64) Ball {
	if len(center) == 0 {
		panic("lpball: New with empty center")
	}
	if radius < 0 || math.IsNaN(radius) {
		panic(fmt.Sprintf("lpball: New with invalid radius %v", radius))
	}
	return Ball{Center: center, Radius: radius}
}

// Dist returns the Lp distance between points a and b. p must be ≥ 1;
// p = math.Inf(1) selects the Chebyshev (L∞) metric.
func Dist(p float64, a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("lpball: Dist of %d-dim and %d-dim points", len(a), len(b)))
	}
	if p < 1 {
		panic(fmt.Sprintf("lpball: p = %v is not a metric exponent", p))
	}
	if math.IsInf(p, 1) {
		var m float64
		for i := range a {
			if d := math.Abs(a[i] - b[i]); d > m {
				m = d
			}
		}
		return m
	}
	if p == 1 {
		var s float64
		for i := range a {
			s += math.Abs(a[i] - b[i])
		}
		return s
	}
	if p == 2 {
		var s float64
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return math.Sqrt(s)
	}
	var s float64
	for i := range a {
		s += math.Pow(math.Abs(a[i]-b[i]), p)
	}
	return math.Pow(s, 1/p)
}

// MinDist returns the minimum Lp distance between a point of a and a point
// of b (0 when the balls overlap), by the triangle inequality.
func MinDist(p float64, a, b Ball) float64 {
	d := Dist(p, a.Center, b.Center) - a.Radius - b.Radius
	if d > 0 {
		return d
	}
	return 0
}

// MaxDist returns the maximum Lp distance between a point of a and a point
// of b.
func MaxDist(p float64, a, b Ball) float64 {
	return Dist(p, a.Center, b.Center) + a.Radius + b.Radius
}

// MinMax is the MinMax decision criterion under the Lp metric: true iff
// MaxDist(Sa,Sq) < MinDist(Sb,Sq). Correct for every p ≥ 1 (the proof of
// Lemma 2 only needs the triangle inequality); not sound, exactly as in
// the Euclidean case.
func MinMax(p float64, sa, sb, sq Ball) bool {
	return MaxDist(p, sa, sq) < MinDist(p, sb, sq)
}

// Witness certifies non-dominance under the Lp metric: a point q in Sq at
// which the margin MinDist(Sb,q) − MaxDist(Sa,q) is non-positive.
type Witness struct {
	Q      []float64
	Margin float64
}

// FindWitness searches for a certificate that sa does NOT dominate sb wrt
// sq under the Lp metric, by sampling q within Sq and refining with local
// coordinate descent. A non-nil result is a proof; nil proves nothing.
func FindWitness(p float64, sa, sb, sq Ball, samples int, rng *rand.Rand) *Witness {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	if samples <= 0 {
		samples = 512
	}
	margin := func(q []float64) float64 {
		// Dominance needs MaxDist(Sa,q) < MinDist(Sb,q) for all q ∈ Sq.
		return (Dist(p, sb.Center, q) - sb.Radius) - (Dist(p, sa.Center, q) + sa.Radius)
	}
	d := len(sq.Center)
	best := append([]float64(nil), sq.Center...)
	bestM := margin(best)
	cand := make([]float64, d)
	// Sampling: uniform in the Lp ball's bounding box, rejected against
	// the ball (cheap for the p values used in practice).
	for i := 0; i < samples && bestM > 0; i++ {
		for j := range cand {
			cand[j] = sq.Center[j] + (2*rng.Float64()-1)*sq.Radius
		}
		if Dist(p, cand, sq.Center) > sq.Radius {
			continue
		}
		if m := margin(cand); m < bestM {
			copy(best, cand)
			bestM = m
		}
	}
	// Coordinate descent with shrinking steps, projected into the ball.
	step := sq.Radius / 2
	for iter := 0; iter < 60 && bestM > 0 && step > 1e-12*(1+sq.Radius); iter++ {
		improved := false
		for j := 0; j < d; j++ {
			for _, dir := range [2]float64{+1, -1} {
				copy(cand, best)
				cand[j] += dir * step
				if Dist(p, cand, sq.Center) > sq.Radius {
					continue
				}
				if m := margin(cand); m < bestM {
					copy(best, cand)
					bestM = m
					improved = true
				}
			}
		}
		if !improved {
			step /= 2
		}
	}
	if bestM <= 0 {
		return &Witness{Q: best, Margin: bestM}
	}
	return nil
}
