package lpball

import (
	"math"
	"math/rand"
	"testing"

	"hyperdom/internal/dominance"
	"hyperdom/internal/geom"
)

func TestDistHandCases(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{3, 4}
	cases := []struct {
		p    float64
		want float64
	}{
		{1, 7},
		{2, 5},
		{math.Inf(1), 4},
		{3, math.Pow(27+64, 1.0/3)},
	}
	for _, c := range cases {
		if got := Dist(c.p, a, b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("L%v dist = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestDistPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"p<1":      func() { Dist(0.5, []float64{0}, []float64{1}) },
		"dims":     func() { Dist(2, []float64{0}, []float64{1, 2}) },
		"bad ball": func() { New(nil, 1) },
		"bad r":    func() { New([]float64{0}, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestTriangleInequalityAllP(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ps := []float64{1, 1.5, 2, 3, math.Inf(1)}
	for i := 0; i < 5000; i++ {
		d := 1 + rng.Intn(6)
		a, b, c := randPt(rng, d), randPt(rng, d), randPt(rng, d)
		for _, p := range ps {
			if Dist(p, a, c) > Dist(p, a, b)+Dist(p, b, c)+1e-9 {
				t.Fatalf("triangle inequality fails for p=%v", p)
			}
		}
	}
}

// TestL2MatchesEuclidean: for p = 2 the Lp MinMax criterion must agree
// with the Euclidean MinMax criterion on identical instances.
func TestL2MatchesEuclidean(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		d := 1 + rng.Intn(6)
		sa, sb, sq := randBall(rng, d), randBall(rng, d), randBall(rng, d)
		want := dominance.MinMax{}.Dominates(
			geom.Sphere{Center: sa.Center, Radius: sa.Radius},
			geom.Sphere{Center: sb.Center, Radius: sb.Radius},
			geom.Sphere{Center: sq.Center, Radius: sq.Radius},
		)
		if got := MinMax(2, sa, sb, sq); got != want {
			t.Fatalf("L2 MinMax disagrees with Euclidean MinMax (i=%d)", i)
		}
	}
}

// TestMinMaxCorrectForAllP: a MinMax-true verdict must never be refuted by
// a witness, under any metric exponent.
func TestMinMaxCorrectForAllP(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ps := []float64{1, 2, 3, math.Inf(1)}
	for i := 0; i < 3000; i++ {
		d := 1 + rng.Intn(5)
		sa, sb, sq := randBall(rng, d), randBall(rng, d), randBall(rng, d)
		for _, p := range ps {
			if MinMax(p, sa, sb, sq) {
				if w := FindWitness(p, sa, sb, sq, 256, rng); w != nil {
					t.Fatalf("p=%v: witness (margin %v) refutes MinMax-true (i=%d)", p, w.Margin, i)
				}
			}
		}
	}
}

// TestWitnessFoundOnOverlap: overlapping objects are never dominant; the
// falsifier must find that under every metric.
func TestWitnessFoundOnOverlap(t *testing.T) {
	for _, p := range []float64{1, 2, math.Inf(1)} {
		sa := New([]float64{0, 0}, 2)
		sb := New([]float64{1, 0}, 2)
		sq := New([]float64{10, 10}, 1)
		if w := FindWitness(p, sa, sb, sq, 512, nil); w == nil {
			t.Errorf("p=%v: no witness for overlapping objects", p)
		}
	}
}

// TestMetricsDisagree: an instance decided differently under L1 and L∞,
// demonstrating that the operator is genuinely metric-dependent. The
// MinMax condition is D(cb,cq) − D(ca,cq) > ra + rb + 2rq = 1.6. With
// ca−cq diagonal and cb−cq axis-aligned, the L1 metric doubles the
// diagonal leg (margin 3 − 2 = 1 < 1.6) while L∞ does not (margin
// 3 − 1 = 2 > 1.6).
func TestMetricsDisagree(t *testing.T) {
	sa := New([]float64{1, 1}, 0.4)
	sb := New([]float64{3, 0}, 0.4)
	sq := New([]float64{0, 0}, 0.4)
	if MinMax(1, sa, sb, sq) {
		t.Fatal("L1 should not certify dominance (margin 1 < 1.6)")
	}
	if !MinMax(math.Inf(1), sa, sb, sq) {
		t.Fatal("L∞ should certify dominance (margin 2 > 1.6)")
	}
}

func randPt(rng *rand.Rand, d int) []float64 {
	p := make([]float64, d)
	for i := range p {
		p[i] = rng.NormFloat64() * 10
	}
	return p
}

func randBall(rng *rand.Rand, d int) Ball {
	return New(randPt(rng, d), rng.Float64()*4)
}
