package knn

import (
	"math/rand"
	"testing"

	"hyperdom/internal/dominance"
	"hyperdom/internal/mtree"
	"hyperdom/internal/sstree"
)

// TestSSAndMTreeAgree: the kNN answer is a property of the database, not of
// the index, so DF/HS over the SS-tree and over the M-tree must return the
// same items with the same criterion.
func TestSSAndMTreeAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, d := range []int{2, 5} {
		items := randItems(rng, d, 3000, 5)
		ss := sstree.New(d)
		mt := mtree.New(d)
		for _, it := range items {
			ss.Insert(it)
			mt.Insert(it)
		}
		ssIdx := WrapSSTree(ss)
		mtIdx := WrapMTree(mt)
		for trial := 0; trial < 15; trial++ {
			sq := randQuery(rng, d, 5)
			k := 1 + rng.Intn(15)
			want := BruteForce(items, sq, k, dominance.Hyperbola{})
			for _, idx := range []Index{ssIdx, mtIdx} {
				for _, algo := range []Algorithm{DF, HS} {
					got := Search(idx, sq, k, dominance.Hyperbola{}, algo)
					if !equalIDs(sortedIDs(got.Items), sortedIDs(want.Items)) {
						t.Fatalf("d=%d trial=%d algo=%v: index answer differs from brute force", d, trial, algo)
					}
				}
			}
		}
	}
}
