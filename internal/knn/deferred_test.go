package knn

import (
	"math/rand"
	"testing"

	"hyperdom/internal/dominance"
)

// TestDeferredResurrectionHappens documents why the deferred list exists:
// Section 6's literal Cases 1–2 prune against the k-th candidate *at
// encounter time*, but Definition 2 defines the answer against the FINAL
// Sk, and dominance by an interim Sk does not imply dominance by the final
// one. Over a random workload the final filter must readmit at least some
// deferred items — if this ever drops to zero the deferral machinery has
// silently stopped mattering (or a refactor broke its accounting).
func TestDeferredResurrectionHappens(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	resurrected := 0
	for trial := 0; trial < 40 && resurrected == 0; trial++ {
		d := 2 + rng.Intn(3)
		items := randItems(rng, d, 2000, 1)
		idx := index(items, d)
		for q := 0; q < 10; q++ {
			sq := randQuery(rng, d, 1)
			res := Search(idx, sq, 5, dominance.Hyperbola{}, DF)
			resurrected += res.Stats.Resurrected
		}
	}
	if resurrected == 0 {
		t.Fatal("no deferred item was ever resurrected by the final filter; " +
			"either the workload is degenerate or the deferral accounting broke")
	}
}

// TestResurrectionPreservesExactness: on queries where resurrection
// occurred, the Hyperbola-based result still matches brute force exactly
// (the resurrected items are genuine answers, not artifacts).
func TestResurrectionPreservesExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(4243))
	verified := 0
	for trial := 0; trial < 60 && verified < 5; trial++ {
		d := 2 + rng.Intn(3)
		items := randItems(rng, d, 1500, 1)
		idx := index(items, d)
		sq := randQuery(rng, d, 1)
		res := Search(idx, sq, 5, dominance.Hyperbola{}, HS)
		if res.Stats.Resurrected == 0 {
			continue
		}
		verified++
		want := BruteForce(items, sq, 5, dominance.Hyperbola{})
		if !equalIDs(sortedIDs(res.Items), sortedIDs(want.Items)) {
			t.Fatalf("trial %d: result with resurrections differs from brute force", trial)
		}
	}
	if verified == 0 {
		t.Skip("no resurrecting query found in the budget; covered by TestDeferredResurrectionHappens")
	}
}
