package knn

import (
	"fmt"
	"time"

	"hyperdom/internal/obs"
	"hyperdom/internal/packed"
)

// Traversal-level observability counters (ISSUE 2). The per-query figures
// (node visits, criterion checks, prunes) keep accumulating in the
// per-search Stats struct exactly as before; on top of that, every search
// drains its Stats — plus the traversal internals Stats never carried:
// heap pushes/pops, heap backing-array growth, depth-first child
// expansions and deferred-list merge work — into these process-wide
// counters, one batch of atomic adds per search. The hot per-node
// increments are plain field adds on scratch-owned structs.
var (
	obsSearches      = obs.New("knn.searches")
	obsSearchSSTree  = obs.New("knn.searches.sstree")
	obsSearchMTree   = obs.New("knn.searches.mtree")
	obsSearchRTree   = obs.New("knn.searches.rtree")
	obsSearchOther   = obs.New("knn.searches.other")
	obsNodesVisited  = obs.New("knn.nodes_visited")
	obsItemsScanned  = obs.New("knn.items_scanned")
	obsDomChecks     = obs.New("knn.dom_checks")
	obsPruned        = obs.New("knn.pruned")
	obsResurrected   = obs.New("knn.resurrected")
	obsHeapPushes    = obs.New("knn.heap_pushes")
	obsHeapPops      = obs.New("knn.heap_pops")
	obsHeapGrowth    = obs.New("knn.heap_growth")
	obsDFExpansions  = obs.New("knn.df_child_expansions")
	obsDeferMerges   = obs.New("knn.deferred_merges")
	obsDeferItems    = obs.New("knn.deferred_items")
	obsBatches       = obs.New("knn.batches")
	obsBatchQueries  = obs.New("knn.batch_queries")
	obsBruteSearches = obs.New("knn.brute_force_searches")
)

// Quantized coarse-filter counters (ISSUE 6): how often the narrow-tier
// pass settled a candidate (coarse prune) versus deferring to the exact
// float64 block (exact fallback), split by child entries and leaf items.
// prunes/(prunes+fallbacks) is the coarse hit-rate the bench reports.
var (
	obsQuantNodePrunes = obs.New("packed.quant.node_coarse_prunes")
	obsQuantNodeExact  = obs.New("packed.quant.node_exact_fallbacks")
	obsQuantItemPrunes = obs.New("packed.quant.item_coarse_prunes")
	obsQuantItemExact  = obs.New("packed.quant.item_exact_fallbacks")
)

// substrate indexes the per-substrate latency histograms and flight-record
// labels. It mirrors the adapter type switch in flushObs.
type substrate uint8

const (
	subSSTree substrate = iota
	subMTree
	subRTree
	subOther
	numSubstrates
)

var substrateNames = [numSubstrates]string{"sstree", "mtree", "rtree", "other"}

// Per-search latency histograms (ISSUE 3), one instance per (substrate,
// strategy) pair of the "knn.search_latency" family, plus a brute-force
// instance. Each search records exactly one sample, into the shard its
// pooled scratch arena owns, at the same flush point as the counters.
var (
	searchLatency [numSubstrates][2]*obs.Histogram
	bruteLatency  = obs.NewHistogram("knn.search_latency", `substrate="brute",algo="scan"`)

	flightSub   [numSubstrates]obs.LabelID
	flightAlgo  [2]obs.LabelID
	flightBrute = obs.FlightLabel("brute")
	flightScan  = obs.FlightLabel("scan")
)

func init() {
	for s := substrate(0); s < numSubstrates; s++ {
		flightSub[s] = obs.FlightLabel(substrateNames[s])
		for _, a := range []Algorithm{DF, HS} {
			searchLatency[s][a] = obs.NewHistogram("knn.search_latency",
				fmt.Sprintf("substrate=%q,algo=%q", substrateNames[s], a.String()))
		}
	}
	flightAlgo[DF] = obs.FlightLabel(DF.String())
	flightAlgo[HS] = obs.FlightLabel(HS.String())
}

// flushStats adds one query's Stats to the global counters.
func flushStats(st *Stats) {
	obsNodesVisited.Add(uint64(st.NodesVisited))
	obsItemsScanned.Add(uint64(st.Items))
	obsDomChecks.Add(uint64(st.DomChecks))
	obsPruned.Add(uint64(st.Pruned))
	obsResurrected.Add(uint64(st.Resurrected))
}

// flushObs drains one finished search into the global counters, records
// its latency into the (substrate, strategy) histogram, offers it to the
// flight recorder, and zeroes the scratch-local tallies. Called once per
// search when the obs gate is on; the scratch tallies still accumulate
// (cheaply) when it is off, so they are also zeroed here to keep a later
// snapshot from attributing old work to a new window. The return value is
// the ID of the span trace this search recorded, 0 when it was not sampled
// — candidate-mode callers surface it so request-level traces can link to
// the retained execution trace in /debug/trace.
func (sc *scratch) flushObs(idx Index, algo Algorithm, k int, start time.Time, st *Stats) (traceID uint64) {
	obsSearches.Inc()
	sub := subOther
	switch a := idx.(type) {
	case ssAdapter:
		obsSearchSSTree.Inc()
		sub = subSSTree
	case mAdapter:
		obsSearchMTree.Inc()
		sub = subMTree
	case rAdapter:
		obsSearchRTree.Inc()
		sub = subRTree
	case packedAdapter:
		// A loaded snapshot attributes to the substrate that froze it, so
		// restart-from-snapshot keeps the same metric shape as serve-after-
		// build (SubstrateUnknown — pre-stamping files — lands in other).
		switch a.t.Substrate() {
		case packed.SubstrateSSTree:
			obsSearchSSTree.Inc()
			sub = subSSTree
		case packed.SubstrateMTree:
			obsSearchMTree.Inc()
			sub = subMTree
		case packed.SubstrateRTree:
			obsSearchRTree.Inc()
			sub = subRTree
		default:
			obsSearchOther.Inc()
		}
	default:
		obsSearchOther.Inc()
	}
	flushStats(st)

	heapPushes := sc.heap.pushes + sc.ssHeap.pushes + sc.pHeap.pushes
	if heapPushes != 0 {
		obsHeapPushes.Add(heapPushes)
	}
	if n := sc.heap.pops + sc.ssHeap.pops + sc.pHeap.pops; n != 0 {
		obsHeapPops.Add(n)
	}
	if n := sc.heap.grown + sc.ssHeap.grown + sc.pHeap.grown; n != 0 {
		obsHeapGrowth.Add(n)
	}
	if sc.dfExpansions != 0 {
		obsDFExpansions.Add(sc.dfExpansions)
	}
	if sc.qNodePrunes != 0 {
		obsQuantNodePrunes.Add(sc.qNodePrunes)
	}
	if sc.qNodeExact != 0 {
		obsQuantNodeExact.Add(sc.qNodeExact)
	}
	if sc.qItemPrunes != 0 {
		obsQuantItemPrunes.Add(sc.qItemPrunes)
	}
	if sc.qItemExact != 0 {
		obsQuantItemExact.Add(sc.qItemExact)
	}
	if sc.list.deferMerges != 0 {
		obsDeferMerges.Add(sc.list.deferMerges)
		obsDeferItems.Add(sc.list.deferItems)
	}

	if !start.IsZero() {
		lat := time.Since(start).Nanoseconds()
		searchLatency[sub][algo].RecordShard(sc.shard, lat)
		sample := obs.FlightSample{
			WhenUnixNs: start.UnixNano(),
			LatencyNs:  lat,
			Substrate:  flightSub[sub],
			Algo:       flightAlgo[algo],
			K:          k,
			Nodes:      uint64(st.NodesVisited),
			Items:      uint64(st.Items),
			DomChecks:  uint64(st.DomChecks),
			Pruned:     uint64(st.Pruned),
			HeapPushes: heapPushes,
		}
		if sc.tb != nil {
			// Freeze the sampled span tree and hand it to the ring with the
			// counters: a trace is retained exactly as long as its query
			// stays among the FlightSlots slowest (tail sampling).
			sample.Trace = sc.trace.Finish(flightSub[sub], flightAlgo[algo], k, start.UnixNano(), lat)
			sc.tb = nil
			if sample.Trace != nil {
				traceID = sample.Trace.ID
			}
		}
		obs.Flight.Record(sample)
	}
	sc.clearObsTallies()

	// The criterion-level events the search's PreparedPair tallied
	// (quartic solves, overlap short-circuits) become visible with the
	// same per-search cadence.
	sc.list.pp.FlushObs()
	return traceID
}

// clearObsTallies zeroes the scratch-local counters a flush (or a pool
// put-back with the gate off) has accounted for.
func (sc *scratch) clearObsTallies() {
	sc.heap.pushes, sc.heap.pops, sc.heap.grown = 0, 0, 0
	sc.ssHeap.pushes, sc.ssHeap.pops, sc.ssHeap.grown = 0, 0, 0
	sc.pHeap.pushes, sc.pHeap.pops, sc.pHeap.grown = 0, 0, 0
	sc.dfExpansions = 0
	sc.qNodePrunes, sc.qNodeExact = 0, 0
	sc.qItemPrunes, sc.qItemExact = 0, 0
	sc.list.deferMerges, sc.list.deferItems = 0, 0
}
