package knn

import (
	"math"
	"math/rand"
	"testing"

	"hyperdom/internal/dominance"
	"hyperdom/internal/obs"
	"hyperdom/internal/sstree"
)

// TestCandidateSetTelemetry pins the per-shard request-telemetry scalars
// (ISSUE 8) a candidate search returns alongside its stream: both sides of
// the distK pushdown, coarse-prune counts under a quantized tier, and the
// trace linkage ID when the traversal was sampled.
func TestCandidateSetTelemetry(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	items := randItems(rng, 3, 600, 3)
	idx := index(items, 3)
	sq := randQuery(rng, 3, 2)
	const k = 6
	crit := dominance.Hyperbola{}

	// No external bound: nothing to observe (Inf → JSON null downstream),
	// but the local distK is still published for the explain tree.
	cs := SearchCandidates(idx, sq, k, crit, HS, nil)
	if !math.IsInf(cs.BoundObserved, 1) {
		t.Fatalf("nil ext: observed bound %v, want +Inf", cs.BoundObserved)
	}
	if math.IsInf(cs.BoundPublished, 0) || cs.BoundPublished <= 0 {
		t.Fatalf("nil ext: published bound %v, want finite positive", cs.BoundPublished)
	}
	if cs.CoarsePrunes != 0 {
		t.Fatalf("unfrozen index reported %d coarse prunes", cs.CoarsePrunes)
	}

	// A seeded external bound must surface as observed ≤ seed (the CAS-min
	// can only tighten further).
	seed := cs.Candidates[k-1].MaxDist
	ext := NewBound()
	ext.Tighten(seed)
	cs2 := SearchCandidates(idx, sq, k, crit, HS, ext)
	if cs2.BoundObserved > seed {
		t.Fatalf("seeded ext: observed %v > seed %v", cs2.BoundObserved, seed)
	}
}

// TestCandidateSetCoarsePrunes pins that the quantized narrow-tier
// settlements of a frozen traversal surface on the CandidateSet.
func TestCandidateSetCoarsePrunes(t *testing.T) {
	prev := SetQuantMode(QuantF32)
	defer SetQuantMode(prev)
	rng := rand.New(rand.NewSource(74))
	items := randItems(rng, 3, 800, 3)
	tr := sstree.New(3, sstree.WithMaxFill(16))
	for _, it := range items {
		tr.Insert(it)
	}
	tr.Freeze()
	idx := WrapSSTree(tr)

	total := uint64(0)
	for q := 0; q < 10; q++ {
		cs := SearchCandidates(idx, randQuery(rng, 3, 2), 5, dominance.Hyperbola{}, HS, nil)
		total += cs.CoarsePrunes
	}
	if total == 0 {
		t.Fatal("frozen f32 traversals reported zero coarse prunes over 10 queries")
	}
}

// TestCandidateSetTraceID pins the request-to-execution-trace linkage: a
// sampled candidate search returns the ID of the QueryTrace it recorded,
// and an unsampled one returns 0.
func TestCandidateSetTraceID(t *testing.T) {
	obs.ResetForTest()
	obs.SetEnabled(true)
	obs.SetTraceEvery(1)
	defer func() {
		obs.SetTraceEvery(0)
		obs.SetEnabled(false)
		obs.ResetForTest()
	}()
	rng := rand.New(rand.NewSource(75))
	items := randItems(rng, 3, 300, 3)
	idx := index(items, 3)
	cs := SearchCandidates(idx, randQuery(rng, 3, 2), 5, dominance.Hyperbola{}, HS, nil)
	if cs.TraceID == 0 {
		t.Fatal("sampled search returned trace ID 0")
	}
	// The linked trace must be retrievable from the flight recorder.
	found := false
	for _, qt := range obs.Flight.Traces() {
		if qt.ID == cs.TraceID {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("trace %d not in flight recorder", cs.TraceID)
	}

	obs.SetTraceEvery(0)
	cs = SearchCandidates(idx, randQuery(rng, 3, 2), 5, dominance.Hyperbola{}, HS, nil)
	if cs.TraceID != 0 {
		t.Fatalf("unsampled search returned trace ID %d", cs.TraceID)
	}
}
