package knn

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"hyperdom/internal/dominance"
	"hyperdom/internal/geom"
	"hyperdom/internal/mtree"
	"hyperdom/internal/rtree"
	"hyperdom/internal/sstree"
)

// frozenFixture builds the same dataset into all three substrates and
// returns (pointer index, freeze func) pairs per substrate name.
type frozenFixture struct {
	name   string
	idx    Index
	freeze func()
	thaw   func() // mutate once so the snapshot drops
}

func buildFixtures(rng *rand.Rand, d, n int) ([]Item, []frozenFixture) {
	items := randItems(rng, d, n, 5)
	ss := sstree.New(d)
	mt := mtree.New(d)
	rt := rtree.New(d)
	for _, it := range items {
		ss.Insert(it)
		mt.Insert(it)
		rt.Insert(it)
	}
	extra := Item{ID: n + 1, Sphere: geom.Sphere{Center: make([]float64, d), Radius: 0.5}}
	return items, []frozenFixture{
		{"sstree", WrapSSTree(ss), func() { ss.Freeze() }, func() { ss.Insert(extra) }},
		{"mtree", WrapMTree(mt), func() { mt.Freeze() }, func() { mt.Insert(extra) }},
		{"rtree", WrapRTree(rt), func() { rt.Freeze() }, func() { rt.Insert(extra) }},
	}
}

// TestPackedMatchesPointer is the differential lock of ISSUE 5, widened by
// ISSUE 6 over the quantization modes: on every substrate, both traversal
// strategies and every quant tier (none, f32, i8), a frozen tree must
// return the exact result list (items AND order) and the exact work Stats
// the pointer path returns. The tiers keep even Stats identical because a
// coarse prune takes exactly the branch the exact value would have taken —
// the narrow pass only decides *when* the exact block is read, never what
// the traversal does.
func TestPackedMatchesPointer(t *testing.T) {
	prev := SetQuantMode(QuantNone)
	defer SetQuantMode(prev)
	quants := []QuantMode{QuantNone, QuantF32, QuantI8}
	rng := rand.New(rand.NewSource(501))
	for _, d := range []int{2, 5, 8} {
		items, fixtures := buildFixtures(rng, d, 2500)
		_ = items
		queries := make([]geom.Sphere, 25)
		ks := make([]int, len(queries))
		for i := range queries {
			queries[i] = randQuery(rng, d, 5)
			ks[i] = 1 + rng.Intn(15)
		}
		for _, fx := range fixtures {
			for _, crit := range []dominance.Criterion{dominance.Hyperbola{}, dominance.MinMax{}} {
				// Pointer answers first, then freeze and re-ask per tier.
				type ans struct{ res [2]Result }
				pointer := make([]ans, len(queries))
				for i, sq := range queries {
					for _, algo := range []Algorithm{DF, HS} {
						pointer[i].res[algo] = Search(fx.idx, sq, ks[i], crit, algo)
					}
				}
				fx.freeze()
				for _, qm := range quants {
					SetQuantMode(qm)
					for i, sq := range queries {
						for _, algo := range []Algorithm{DF, HS} {
							got := Search(fx.idx, sq, ks[i], crit, algo)
							want := pointer[i].res[algo]
							if !reflect.DeepEqual(got.Items, want.Items) {
								t.Fatalf("%s d=%d crit=%s algo=%v quant=%s q=%d: packed items differ\n got %v\nwant %v",
									fx.name, d, crit.Name(), algo, qm, i, sortedIDs(got.Items), sortedIDs(want.Items))
							}
							if got.Stats != want.Stats {
								t.Fatalf("%s d=%d crit=%s algo=%v quant=%s q=%d: packed stats differ\n got %+v\nwant %+v",
									fx.name, d, crit.Name(), algo, qm, i, got.Stats, want.Stats)
							}
						}
					}
				}
				SetQuantMode(QuantNone)
				fx.thaw()
				fx.freeze()
			}
		}
	}
}

// TestPackedMatchesBruteForce anchors the frozen path to ground truth
// directly, independent of the pointer comparison.
func TestPackedMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(502))
	d := 4
	items, fixtures := buildFixtures(rng, d, 2000)
	for _, fx := range fixtures {
		fx.freeze()
	}
	for trial := 0; trial < 20; trial++ {
		sq := randQuery(rng, d, 5)
		k := 1 + rng.Intn(12)
		want := BruteForce(items, sq, k, dominance.Hyperbola{})
		for _, fx := range fixtures {
			for _, algo := range []Algorithm{DF, HS} {
				got := Search(fx.idx, sq, k, dominance.Hyperbola{}, algo)
				if !equalIDs(sortedIDs(got.Items), sortedIDs(want.Items)) {
					t.Fatalf("%s trial=%d algo=%v: frozen answer differs from brute force", fx.name, trial, algo)
				}
			}
		}
	}
}

// TestQuantModeFlipDuringSearches hammers concurrent quantized searches
// while another goroutine flips the process-wide mode across all tiers:
// every search must still return the pointer answer, whatever tier it
// happened to stash at dispatch (the mode is read once per search, so no
// traversal can straddle tiers), and under -race this doubles as the data
// race lock on the quantized two-phase path.
func TestQuantModeFlipDuringSearches(t *testing.T) {
	prev := SetQuantMode(QuantNone)
	defer SetQuantMode(prev)
	rng := rand.New(rand.NewSource(504))
	d := 6
	_, fixtures := buildFixtures(rng, d, 1500)
	fx := fixtures[0] // sstree
	queries := make([]geom.Sphere, 32)
	want := make([]Result, len(queries))
	for i := range queries {
		queries[i] = randQuery(rng, d, 5)
		want[i] = Search(fx.idx, queries[i], 8, dominance.Hyperbola{}, HS)
	}
	fx.freeze()

	stop := make(chan struct{})
	flipDone := make(chan struct{})
	go func() {
		defer close(flipDone)
		modes := []QuantMode{QuantNone, QuantF32, QuantI8}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				SetQuantMode(modes[i%len(modes)])
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				for i, sq := range queries {
					got := Search(fx.idx, sq, 8, dominance.Hyperbola{}, HS)
					if !reflect.DeepEqual(got.Items, want[i].Items) {
						t.Errorf("q=%d round=%d: items diverged under mode flips", i, round)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-flipDone
}

// TestAutoThaw locks the mutation half of the freeze/thaw contract: any
// mutation drops the snapshot, searches keep answering correctly off the
// pointer path, and a re-freeze picks up the mutated contents.
func TestAutoThaw(t *testing.T) {
	rng := rand.New(rand.NewSource(503))
	d := 3
	items := randItems(rng, d, 500, 3)

	ss := sstree.New(d)
	mt := mtree.New(d)
	rt := rtree.New(d)
	for _, it := range items {
		ss.Insert(it)
		mt.Insert(it)
		rt.Insert(it)
	}
	checkFrozen := func(name string, frozen func() bool, want bool) {
		t.Helper()
		if got := frozen(); got != want {
			t.Fatalf("%s: Frozen() = %v, want %v", name, got, want)
		}
	}

	// Each substrate: freeze → mutation thaws → re-freeze sees the change.
	newIt := Item{ID: 9001, Sphere: geom.Sphere{Center: make([]float64, d), Radius: 0.25}}

	ss.Freeze()
	checkFrozen("sstree", func() bool { _, ok := ss.Frozen(); return ok }, true)
	ss.Insert(newIt)
	checkFrozen("sstree after Insert", func() bool { _, ok := ss.Frozen(); return ok }, false)
	if pt := ss.Freeze(); pt.Len() != len(items)+1 {
		t.Fatalf("sstree refreeze: %d items, want %d", pt.Len(), len(items)+1)
	}
	ss.Delete(newIt)
	checkFrozen("sstree after Delete", func() bool { _, ok := ss.Frozen(); return ok }, false)

	mt.Freeze()
	mt.Insert(newIt)
	checkFrozen("mtree after Insert", func() bool { _, ok := mt.Frozen(); return ok }, false)
	mt.Delete(newIt)

	rt.Freeze()
	rt.Insert(newIt)
	checkFrozen("rtree after Insert", func() bool { _, ok := rt.Frozen(); return ok }, false)
	rt.Delete(newIt)

	// BulkLoad thaws too (fresh tree: freeze empty, then load).
	ss2 := sstree.New(d)
	ss2.Freeze()
	checkFrozen("empty sstree", func() bool { _, ok := ss2.Frozen(); return ok }, true)
	ss2.BulkLoad(items)
	checkFrozen("sstree after BulkLoad", func() bool { _, ok := ss2.Frozen(); return ok }, false)
	if pt := ss2.Freeze(); pt.Len() != len(items) {
		t.Fatalf("bulk-loaded freeze: %d items, want %d", pt.Len(), len(items))
	}

	// A search against the thawed-and-refrozen tree answers correctly.
	sq := randQuery(rng, d, 3)
	want := BruteForce(items, sq, 5, dominance.Hyperbola{})
	got := Search(WrapSSTree(ss2), sq, 5, dominance.Hyperbola{}, HS)
	if !equalIDs(sortedIDs(got.Items), sortedIDs(want.Items)) {
		t.Fatal("search after thaw+refreeze differs from brute force")
	}
}

// TestPackedEmptyTree: searching a frozen empty substrate returns the empty
// result, as the pointer path does.
func TestPackedEmptyTree(t *testing.T) {
	ss := sstree.New(3)
	ss.Freeze()
	res := Search(WrapSSTree(ss), geom.Sphere{Center: []float64{0, 0, 0}, Radius: 1}, 3, dominance.MinMax{}, DF)
	if len(res.Items) != 0 {
		t.Fatalf("empty frozen tree returned %d items", len(res.Items))
	}
}
