package knn

import (
	"math/rand"
	"testing"
	"time"

	"hyperdom/internal/dominance"
	"hyperdom/internal/geom"
	"hyperdom/internal/mtree"
	"hyperdom/internal/obs"
	"hyperdom/internal/rtree"
)

func mIndex(items []Item, d int) Index {
	t := mtree.New(d)
	for _, it := range items {
		t.Insert(it)
	}
	return WrapMTree(t)
}

func rIndex(items []Item, d int) Index {
	t := rtree.New(d)
	for _, it := range items {
		t.Insert(it)
	}
	return WrapRTree(t)
}

// traceFixtures builds one index per substrate over the same items.
func traceFixtures(t *testing.T) (items []Item, q geom.Sphere, fixtures map[string]Index) {
	t.Helper()
	rng := rand.New(rand.NewSource(4242))
	d := 4
	items = randItems(rng, d, 900, 2)
	q = randQuery(rng, d, 1)
	fixtures = map[string]Index{
		"sstree": index(items, d),
		"mtree":  mIndex(items, d),
		"rtree":  rIndex(items, d),
	}
	return items, q, fixtures
}

// TestTraceSpanCountsMatchStats is the ISSUE 4 acceptance gate: a sampled
// search must produce a span tree whose node-visit, item-prune and
// dominance-check span counts exactly equal the query's knn obs counters —
// across every substrate and both traversal strategies — and the trace must
// be linked to the query's flight record.
func TestTraceSpanCountsMatchStats(t *testing.T) {
	defer obs.SetEnabled(true)
	defer obs.SetTraceEvery(0)
	obs.SetEnabled(true)
	obs.SetTraceEvery(1)

	_, q, fixtures := traceFixtures(t)
	for name, idx := range fixtures {
		for _, algo := range []Algorithm{DF, HS} {
			t.Run(name+"/"+algo.String(), func(t *testing.T) {
				obs.ResetForTest()
				res := Search(idx, q, 10, dominance.Hyperbola{}, algo)

				traces := obs.Flight.Traces()
				if len(traces) != 1 {
					t.Fatalf("retained %d traces, want 1", len(traces))
				}
				qt := traces[0]

				if got := qt.CountKind(obs.SpanSearch); got != 1 {
					t.Errorf("search spans = %d, want 1", got)
				}
				if got := qt.CountKind(obs.SpanNode); got != res.Stats.NodesVisited {
					t.Errorf("node-visit spans = %d, Stats.NodesVisited = %d", got, res.Stats.NodesVisited)
				}
				if got := qt.CountKind(obs.SpanItemPrune); got != res.Stats.Pruned {
					t.Errorf("item-prune spans = %d, Stats.Pruned = %d", got, res.Stats.Pruned)
				}
				if got := qt.CountKind(obs.SpanDomCheck); got != res.Stats.DomChecks {
					t.Errorf("dom-check spans = %d, Stats.DomChecks = %d", got, res.Stats.DomChecks)
				}
				var leafItems int
				for _, sp := range qt.Spans {
					if sp.Kind == obs.SpanNode {
						leafItems += int(sp.Items)
					}
				}
				if leafItems != res.Stats.Items {
					t.Errorf("leaf-span item total = %d, Stats.Items = %d", leafItems, res.Stats.Items)
				}

				// The per-query global counters come from the same Stats, so
				// the trace agrees with the registry too.
				snap := obs.Snapshot()
				if got := snap.Get("knn.nodes_visited"); got != uint64(qt.CountKind(obs.SpanNode)) {
					t.Errorf("knn.nodes_visited = %d, node spans = %d", got, qt.CountKind(obs.SpanNode))
				}
				if got := snap.Get("knn.pruned"); got != uint64(qt.CountKind(obs.SpanItemPrune)) {
					t.Errorf("knn.pruned = %d, item-prune spans = %d", got, qt.CountKind(obs.SpanItemPrune))
				}
				if got := snap.Get("knn.dom_checks"); got != uint64(qt.CountKind(obs.SpanDomCheck)) {
					t.Errorf("knn.dom_checks = %d, dom-check spans = %d", got, qt.CountKind(obs.SpanDomCheck))
				}

				// Flight linkage: the query's record carries the trace ID and
				// the same counters the spans reproduce.
				dump := obs.Flight.Dump()
				if len(dump) != 1 {
					t.Fatalf("flight dump has %d records, want 1", len(dump))
				}
				rec := dump[0]
				if rec.TraceID != qt.ID {
					t.Errorf("flight TraceID = %d, trace ID = %d", rec.TraceID, qt.ID)
				}
				if rec.Nodes != uint64(res.Stats.NodesVisited) || rec.Pruned != uint64(res.Stats.Pruned) {
					t.Errorf("flight record counters diverge from Stats: %+v vs %+v", rec, res.Stats)
				}

				// Span-tree structural sanity: parents precede children, node
				// spans nest, instant events are zero-length.
				for i, sp := range qt.Spans {
					if i == 0 {
						continue
					}
					if sp.Parent < 0 || int(sp.Parent) >= i {
						t.Fatalf("span %d has parent %d", i, sp.Parent)
					}
					switch qt.Spans[sp.Parent].Kind {
					case obs.SpanSearch, obs.SpanNode:
					default:
						t.Fatalf("span %d parented to non-container span %d", i, sp.Parent)
					}
					if sp.Kind != obs.SpanNode && sp.Kind != obs.SpanSearch && sp.StartNs != sp.EndNs {
						t.Errorf("instant span %d has duration", i)
					}
				}
			})
		}
	}
}

// TestTraceSampledResultsUnchanged verifies tracing is observation only: a
// sampled search returns exactly the answer an untraced one does.
func TestTraceSampledResultsUnchanged(t *testing.T) {
	defer obs.SetTraceEvery(0)
	_, q, fixtures := traceFixtures(t)
	idx := fixtures["sstree"]
	for _, algo := range []Algorithm{DF, HS} {
		obs.SetTraceEvery(0)
		plain := Search(idx, q, 7, dominance.Hyperbola{}, algo)
		obs.SetTraceEvery(1)
		traced := Search(idx, q, 7, dominance.Hyperbola{}, algo)
		if len(plain.Items) != len(traced.Items) {
			t.Fatalf("%v: traced answer has %d items, untraced %d", algo, len(traced.Items), len(plain.Items))
		}
		for i := range plain.Items {
			if plain.Items[i].ID != traced.Items[i].ID {
				t.Fatalf("%v: answer diverged at position %d", algo, i)
			}
		}
		if plain.Stats != traced.Stats {
			t.Errorf("%v: Stats diverged: %+v vs %+v", algo, plain.Stats, traced.Stats)
		}
	}
}

// TestSearchShadowMode verifies the shadow-evaluation mode: answers are
// unchanged for any primary criterion, and the per-criterion disagreement
// counters move with the correct/sound polarity of Table 1 — correct
// criteria (MinMax, MBR, GP) may only miss prunes, the sound one
// (Trigonometric) may only report false positives.
func TestSearchShadowMode(t *testing.T) {
	defer obs.SetEnabled(true)
	defer dominance.SetShadow(false)
	obs.SetEnabled(true)

	_, q, fixtures := traceFixtures(t)
	idx := fixtures["sstree"]
	for _, crit := range []dominance.Criterion{dominance.Hyperbola{}, dominance.MinMax{}} {
		dominance.SetShadow(false)
		plain := Search(idx, q, 10, crit, HS)
		dominance.SetShadow(true)
		obs.ResetForTest()
		shadowed := Search(idx, q, 10, crit, HS)

		if len(plain.Items) != len(shadowed.Items) {
			t.Fatalf("%s: shadow mode changed the answer: %d vs %d items",
				crit.Name(), len(shadowed.Items), len(plain.Items))
		}
		for i := range plain.Items {
			if plain.Items[i].ID != shadowed.Items[i].ID {
				t.Fatalf("%s: shadow mode changed the answer at position %d", crit.Name(), i)
			}
		}

		snap := obs.Snapshot()
		if got := snap.Get("dominance.shadow.checks"); got != uint64(shadowed.Stats.DomChecks) {
			t.Errorf("%s: shadow checks = %d, DomChecks = %d", crit.Name(), got, shadowed.Stats.DomChecks)
		}
		for _, name := range []string{"MinMax", "MBR", "GP"} {
			if got := snap.Get("dominance.shadow.false_positive." + name); got != 0 {
				t.Errorf("%s: correct criterion %s reported %d false positives", crit.Name(), name, got)
			}
		}
		if got := snap.Get("dominance.shadow.missed_prune.Trigonometric"); got != 0 {
			t.Errorf("%s: sound criterion Trigonometric missed %d prunes", crit.Name(), got)
		}
	}
}

// TestTraceDisabledAllocs is the satellite gate: with tracing compiled in
// but sampling disabled, Search must stay at its 2 allocs/op steady state.
func TestTraceDisabledAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-item fixture")
	}
	if raceEnabled {
		t.Skip("race instrumentation allocates; AllocsPerRun is meaningless under -race")
	}
	obs.SetTraceEvery(0)
	idx, queries := allocFixture(10000)
	for _, algo := range []Algorithm{DF, HS} {
		q := 0
		// Warm the scratch pool and histogram shards.
		for i := 0; i < 8; i++ {
			Search(idx, queries[q%len(queries)], 10, dominance.Hyperbola{}, algo)
			q++
		}
		allocs := testing.AllocsPerRun(64, func() {
			Search(idx, queries[q%len(queries)], 10, dominance.Hyperbola{}, algo)
			q++
		})
		if allocs > 2 {
			t.Errorf("%v: %.1f allocs/op with tracing disabled, want ≤ 2", algo, allocs)
		}
	}
}

// TestTraceOverheadDisabled extends the TestObsOverhead methodology to the
// tracing layer: with tracing compiled in but sampling disabled, a Search
// must cost less than 5% over the pre-tracing baseline — measured here as
// the same binary with the whole obs gate off, which the ISSUE 2/3 gates
// already hold to <5% of the bare kernel. Min-of-rounds timing with
// retries, as in internal/dominance.
func TestTraceOverheadDisabled(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts the timing comparison")
	}
	obs.SetTraceEvery(0)
	defer obs.SetEnabled(true)
	idx, queries := allocFixture(4000)

	round := func() time.Duration {
		start := time.Now()
		for rep := 0; rep < 4; rep++ {
			for _, q := range queries {
				res := Search(idx, q, 10, dominance.Hyperbola{}, HS)
				traceSink += len(res.Items)
			}
		}
		return time.Since(start)
	}

	measure := func(enabled bool) time.Duration {
		obs.SetEnabled(enabled)
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 9; i++ {
			if d := round(); d < best {
				best = d
			}
		}
		return best
	}

	const budget = 1.05
	for attempt := 1; ; attempt++ {
		round() // warm caches, pool and tree paths
		off := measure(false)
		on := measure(true)
		ratio := float64(on) / float64(off)
		t.Logf("attempt %d: off=%v on(sampling disabled)=%v ratio=%.3f", attempt, off, on, ratio)
		if ratio < budget {
			break
		}
		if attempt == 3 {
			t.Errorf("tracing-disabled overhead %.1f%% exceeds %.0f%% budget",
				(ratio-1)*100, (budget-1)*100)
			break
		}
	}
}

var traceSink int
