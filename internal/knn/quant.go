package knn

import (
	"fmt"
	"sync/atomic"

	"hyperdom/internal/obs"
	"hyperdom/internal/packed"
)

// QuantMode selects which quantized tier of a frozen snapshot the packed
// traversals consult before touching the exact float64 blocks (ISSUE 6).
// The mode changes only how much work a search does, never its answer: the
// narrow bounds are conservative, survivors fall back to the exact kernels,
// and result sets and Stats stay bit-identical to the pointer path across
// all modes. Process-wide, read once per search.
type QuantMode int32

const (
	// QuantNone streams the exact float64 blocks directly (the ISSUE 5
	// behavior).
	QuantNone QuantMode = iota
	// QuantF32 coarse-filters on the float32 tier. The default: half the
	// bytes per candidate with slack far below any realistic inter-point
	// distance.
	QuantF32
	// QuantI8 coarse-filters on the int8 tier: one byte per coordinate
	// against per-node scale/offset.
	QuantI8
)

func (m QuantMode) String() string {
	switch m {
	case QuantNone:
		return "none"
	case QuantF32:
		return "f32"
	case QuantI8:
		return "i8"
	}
	return fmt.Sprintf("QuantMode(%d)", int32(m))
}

// ParseQuantMode maps the flag spelling ("none", "f32", "i8") to a mode.
func ParseQuantMode(s string) (QuantMode, error) {
	switch s {
	case "none":
		return QuantNone, nil
	case "f32":
		return QuantF32, nil
	case "i8":
		return QuantI8, nil
	}
	return QuantNone, fmt.Errorf("knn: unknown quant mode %q (want none, f32 or i8)", s)
}

// tier maps the mode to the snapshot tier the packed accessors take.
func (m QuantMode) tier() packed.Tier {
	switch m {
	case QuantF32:
		return packed.TierF32
	case QuantI8:
		return packed.TierI8
	}
	return packed.TierNone
}

var quantMode atomic.Int32

func init() {
	quantMode.Store(int32(QuantF32))
	publishQuantModeGauge(QuantF32)
}

// publishQuantModeGauge keeps the live hyperdom_quant_mode gauge in step
// with the process-wide mode (ISSUE 9): a one-hot labeled family — the
// active mode's instance reads 1, the others 0 — so a scrape reflects a
// runtime SetQuantMode flip immediately, where the build_info gauge only
// records the mode the server booted with.
func publishQuantModeGauge(active QuantMode) {
	for _, m := range []QuantMode{QuantNone, QuantF32, QuantI8} {
		v := 0.0
		if m == active {
			v = 1.0
		}
		obs.SetGauge("quant_mode", `mode="`+m.String()+`"`, v)
	}
}

// SetQuantMode switches the process-wide quantization mode and returns the
// previous one. Safe to call concurrently with searches; each search reads
// the mode once at dispatch. The hyperdom_quant_mode gauge follows every
// flip.
func SetQuantMode(m QuantMode) QuantMode {
	prev := QuantMode(quantMode.Swap(int32(m)))
	publishQuantModeGauge(m)
	return prev
}

// QuantModeNow returns the current process-wide quantization mode.
func QuantModeNow() QuantMode { return QuantMode(quantMode.Load()) }
