package knn

import (
	"math/rand"
	"sort"
	"testing"

	"hyperdom/internal/dominance"
	"hyperdom/internal/geom"
	"hyperdom/internal/sstree"
)

func randItems(rng *rand.Rand, d, n int, maxR float64) []Item {
	items := make([]Item, n)
	for i := range items {
		c := make([]float64, d)
		for j := range c {
			c[j] = 100 + rng.NormFloat64()*25
		}
		items[i] = Item{Sphere: geom.NewSphere(c, rng.Float64()*maxR), ID: i}
	}
	return items
}

func randQuery(rng *rand.Rand, d int, maxR float64) geom.Sphere {
	c := make([]float64, d)
	for j := range c {
		c[j] = 100 + rng.NormFloat64()*25
	}
	return geom.NewSphere(c, rng.Float64()*maxR)
}

func index(items []Item, d int) Index {
	t := sstree.New(d, sstree.WithMaxFill(16))
	for _, it := range items {
		t.Insert(it)
	}
	return WrapSSTree(t)
}

func sortedIDs(items []Item) []int {
	ids := make([]int, len(items))
	for i, it := range items {
		ids[i] = it.ID
	}
	sort.Ints(ids)
	return ids
}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBruteForceHandCase pins Definition 2 on a tiny example: points on a
// line at 0, 10, 20, 30 with a point query at 0.
func TestBruteForceHandCase(t *testing.T) {
	var items []Item
	for i, x := range []float64{0, 10, 20, 30} {
		items = append(items, Item{Sphere: geom.NewSphere([]float64{x}, 0), ID: i})
	}
	sq := geom.NewSphere([]float64{0}, 0)
	res := BruteForce(items, sq, 2, dominance.Exact{})
	// Sk = item 1 (MaxDist 10). Items 2 and 3 are dominated (points,
	// strictly farther); items 0 and 1 are kept.
	if !equalIDs(sortedIDs(res.Items), []int{0, 1}) {
		t.Errorf("answer IDs = %v, want [0 1]", sortedIDs(res.Items))
	}
}

// TestBruteForceFatQueryKeepsMore: with an uncertain (fat) query, objects
// beyond the k-th can survive because Sk no longer dominates them.
func TestBruteForceFatQueryKeepsMore(t *testing.T) {
	var items []Item
	for i, x := range []float64{0, 10, 12, 200} {
		items = append(items, Item{Sphere: geom.NewSphere([]float64{x, 0}, 1), ID: i})
	}
	sq := geom.NewSphere([]float64{0, 0}, 8)
	res := BruteForce(items, sq, 2, dominance.Exact{})
	ids := sortedIDs(res.Items)
	// Item 2 at x=12 is nearly tied with item 1 at x=10: the fat query
	// cannot separate them, so 0, 1, 2 all stay; 200 is clearly dominated.
	if !equalIDs(ids, []int{0, 1, 2}) {
		t.Errorf("answer IDs = %v, want [0 1 2]", ids)
	}
}

func TestBruteForceSmallDatabase(t *testing.T) {
	items := randItems(rand.New(rand.NewSource(1)), 3, 5, 2)
	sq := randQuery(rand.New(rand.NewSource(2)), 3, 2)
	res := BruteForce(items, sq, 10, dominance.Exact{})
	if len(res.Items) != 5 {
		t.Errorf("k > |D| must return the whole database; got %d items", len(res.Items))
	}
}

func TestBruteForcePanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 did not panic")
		}
	}()
	BruteForce(nil, geom.NewSphere([]float64{0}, 0), 0, dominance.Exact{})
}

// TestTreeSearchMatchesBruteForceHyperbola: with the optimal criterion,
// DF and HS over the SS-tree must return exactly the ground truth.
func TestTreeSearchMatchesBruteForceHyperbola(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, d := range []int{2, 4, 8} {
		for _, mu := range []float64{0.5, 3, 8} {
			items := randItems(rng, d, 2000, mu)
			idx := index(items, d)
			for _, k := range []int{1, 5, 20} {
				for trial := 0; trial < 10; trial++ {
					sq := randQuery(rng, d, mu)
					want := BruteForce(items, sq, k, dominance.Hyperbola{})
					for _, algo := range []Algorithm{DF, HS} {
						got := Search(idx, sq, k, dominance.Hyperbola{}, algo)
						if !equalIDs(sortedIDs(got.Items), sortedIDs(want.Items)) {
							t.Fatalf("d=%d mu=%v k=%d %v: got %d items %v, want %d items %v",
								d, mu, k, algo, len(got.Items), sortedIDs(got.Items),
								len(want.Items), sortedIDs(want.Items))
						}
					}
				}
			}
		}
	}
}

// TestTreeSearchSupersetWithCorrectCriteria: correct-but-unsound criteria
// must return a superset of the truth (perfect recall, possibly imperfect
// precision) under both strategies.
func TestTreeSearchSupersetWithCorrectCriteria(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	criteria := []dominance.Criterion{dominance.MinMax{}, dominance.MBR{}, dominance.GP{}}
	for trial := 0; trial < 20; trial++ {
		d := 2 + rng.Intn(5)
		items := randItems(rng, d, 1500, 6)
		idx := index(items, d)
		sq := randQuery(rng, d, 6)
		k := 1 + rng.Intn(20)
		truth := map[int]bool{}
		for _, it := range BruteForce(items, sq, k, dominance.Exact{}).Items {
			truth[it.ID] = true
		}
		for _, crit := range criteria {
			for _, algo := range []Algorithm{DF, HS} {
				got := Search(idx, sq, k, crit, algo)
				seen := map[int]bool{}
				for _, it := range got.Items {
					seen[it.ID] = true
				}
				for id := range truth {
					if !seen[id] {
						t.Fatalf("trial=%d %s/%v dropped true answer item %d (recall < 100%%)",
							trial, crit.Name(), algo, id)
					}
				}
			}
		}
	}
}

// TestResultsSortedByMaxDist: answers come back ordered.
func TestResultsSortedByMaxDist(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	items := randItems(rng, 3, 500, 3)
	idx := index(items, 3)
	sq := randQuery(rng, 3, 3)
	res := Search(idx, sq, 10, dominance.Hyperbola{}, HS)
	for i := 1; i < len(res.Items); i++ {
		if geom.MaxDist(res.Items[i-1].Sphere, sq) > geom.MaxDist(res.Items[i].Sphere, sq)+1e-12 {
			t.Fatal("result items not sorted by MaxDist")
		}
	}
}

// TestHSVisitsNoMoreNodesThanDF: best-first is at least as node-frugal as
// depth-first on the same tree and query.
func TestHSVisitsNoMoreNodesThanDF(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	items := randItems(rng, 4, 5000, 2)
	idx := index(items, 4)
	worse := 0
	for trial := 0; trial < 20; trial++ {
		sq := randQuery(rng, 4, 2)
		df := Search(idx, sq, 10, dominance.Hyperbola{}, DF)
		hs := Search(idx, sq, 10, dominance.Hyperbola{}, HS)
		if hs.Stats.NodesVisited > df.Stats.NodesVisited {
			worse++
		}
	}
	// HS is optimal in nodes visited for plain kNN; with the dominance
	// list the guarantee is heuristic, so allow a couple of exceptions.
	if worse > 4 {
		t.Errorf("HS visited more nodes than DF in %d/20 trials", worse)
	}
}

func TestSearchSmallIndex(t *testing.T) {
	// Fewer items than k: the whole database is the answer under every
	// strategy.
	items := randItems(rand.New(rand.NewSource(47)), 3, 7, 2)
	idx := index(items, 3)
	sq := randQuery(rand.New(rand.NewSource(48)), 3, 2)
	for _, algo := range []Algorithm{DF, HS} {
		res := Search(idx, sq, 20, dominance.Hyperbola{}, algo)
		if len(res.Items) != 7 {
			t.Errorf("%v: got %d items, want all 7", algo, len(res.Items))
		}
	}
}

func TestSearchEmptyIndex(t *testing.T) {
	idx := WrapSSTree(sstree.New(3))
	res := Search(idx, geom.NewSphere([]float64{0, 0, 0}, 1), 5, dominance.Hyperbola{}, DF)
	if len(res.Items) != 0 {
		t.Errorf("empty index returned %d items", len(res.Items))
	}
}

func TestAlgorithmString(t *testing.T) {
	if DF.String() != "DF" || HS.String() != "HS" {
		t.Error("Algorithm String broken")
	}
	if Algorithm(9).String() != "Algorithm(9)" {
		t.Errorf("unknown algorithm String = %s", Algorithm(9).String())
	}
}

// TestPrecisionOrdering: on fat-radius workloads, Hyperbola precision is 1
// and the unsound criteria admit extra items (precision < 1 at least once
// over the workload).
func TestPrecisionOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	d := 4
	items := randItems(rng, d, 2000, 10)
	idx := index(items, d)
	extras := map[string]int{}
	for trial := 0; trial < 30; trial++ {
		sq := randQuery(rng, d, 10)
		truth := BruteForce(items, sq, 10, dominance.Exact{})
		for _, crit := range []dominance.Criterion{dominance.Hyperbola{}, dominance.MinMax{}, dominance.MBR{}, dominance.GP{}} {
			got := Search(idx, sq, 10, crit, HS)
			extras[crit.Name()] += len(got.Items) - len(truth.Items)
			if len(got.Items) < len(truth.Items) {
				t.Fatalf("%s returned fewer items than the truth", crit.Name())
			}
		}
	}
	if extras["Hyperbola"] != 0 {
		t.Errorf("Hyperbola admitted %d extra items; precision must be 100%%", extras["Hyperbola"])
	}
	for _, name := range []string{"MinMax", "MBR", "GP"} {
		if extras[name] == 0 {
			t.Errorf("%s admitted no extra items on a fat workload; expected imperfect precision", name)
		}
	}
}
