package knn

import (
	"container/heap"
	"fmt"
	"sort"

	"hyperdom/internal/dominance"
	"hyperdom/internal/geom"
	"hyperdom/internal/sstree"
)

// Algorithm selects the index traversal strategy.
type Algorithm int

const (
	// DF is the depth-first branch-and-bound traversal of Roussopoulos,
	// Kelley and Vincent (SIGMOD 1995) adapted to hypersphere nodes.
	DF Algorithm = iota
	// HS is the best-first (priority queue on MinDist) traversal of
	// Hjaltason and Samet (TODS 1999).
	HS
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case DF:
		return "DF"
	case HS:
		return "HS"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Index abstracts the tree the searches traverse, implemented by the
// SS-tree and M-tree adapters below and in package mtree.
type Index interface {
	// RootNode returns the root cursor, or ok=false for an empty index.
	RootNode() (IndexNode, bool)
}

// IndexNode is a read-only cursor over one index node.
type IndexNode interface {
	IsLeaf() bool
	// MinDistTo returns a lower bound on the distance from any item in the
	// subtree to the query sphere: 0 when they can intersect, and never
	// more than the true minimum distance. Sphere-bounded nodes (SS-tree,
	// M-tree) return MinDist of their bounding sphere; rectangle-bounded
	// nodes (R-tree) return MinDist of their MBR.
	MinDistTo(q geom.Sphere) float64
	// ChildNodes appends the node's children to dst and returns it. Only
	// valid on internal nodes.
	ChildNodes(dst []IndexNode) []IndexNode
	// NodeItems returns the node's items. Only valid on leaves.
	NodeItems() []Item
}

// Search answers the kNN query of Definition 2 over an index using the
// given traversal strategy and dominance criterion.
func Search(idx Index, sq geom.Sphere, k int, crit dominance.Criterion, algo Algorithm) Result {
	if k <= 0 {
		panic(fmt.Sprintf("knn: k = %d", k))
	}
	res := Result{K: k}
	root, ok := idx.RootNode()
	if !ok {
		return res
	}
	l := &bestList{sq: sq, k: k, crit: crit, stats: &res.Stats}
	switch algo {
	case DF:
		searchDF(root, sq, l)
	case HS:
		searchHS(root, sq, l)
	default:
		panic(fmt.Sprintf("knn: unknown algorithm %d", int(algo)))
	}
	res.Items = l.finish()
	return res
}

// searchDF visits children in ascending MinDist order, pruning subtrees
// whose MinDist to the query exceeds distk (every item below would fall to
// Case 3).
func searchDF(n IndexNode, sq geom.Sphere, l *bestList) {
	l.stats.NodesVisited++
	if n.IsLeaf() {
		for _, it := range n.NodeItems() {
			l.offer(it)
		}
		return
	}
	children := n.ChildNodes(nil)
	dists := make([]float64, len(children))
	order := make([]int, len(children))
	for i, c := range children {
		dists[i] = c.MinDistTo(sq)
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return dists[order[a]] < dists[order[b]] })
	for _, i := range order {
		if dists[i] > l.distK() {
			// Every deeper item has MinDist ≥ this bound: Case 3 territory.
			break
		}
		searchDF(children[i], sq, l)
	}
}

// nodeHeap is a min-heap of index nodes keyed by MinDist to the query.
type nodeHeap struct {
	nodes []IndexNode
	dists []float64
}

func (h *nodeHeap) Len() int           { return len(h.nodes) }
func (h *nodeHeap) Less(i, j int) bool { return h.dists[i] < h.dists[j] }
func (h *nodeHeap) Swap(i, j int) {
	h.nodes[i], h.nodes[j] = h.nodes[j], h.nodes[i]
	h.dists[i], h.dists[j] = h.dists[j], h.dists[i]
}
func (h *nodeHeap) Push(x any) {
	e := x.(heapEntry)
	h.nodes = append(h.nodes, e.node)
	h.dists = append(h.dists, e.dist)
}
func (h *nodeHeap) Pop() any {
	n := len(h.nodes) - 1
	e := heapEntry{h.nodes[n], h.dists[n]}
	h.nodes = h.nodes[:n]
	h.dists = h.dists[:n]
	return e
}

type heapEntry struct {
	node IndexNode
	dist float64
}

// searchHS pops nodes in globally ascending MinDist order; once the nearest
// unexplored node is beyond distk the traversal is complete, because distk
// never increases.
func searchHS(root IndexNode, sq geom.Sphere, l *bestList) {
	h := &nodeHeap{}
	heap.Push(h, heapEntry{root, root.MinDistTo(sq)})
	var scratch []IndexNode
	for h.Len() > 0 {
		e := heap.Pop(h).(heapEntry)
		if e.dist > l.distK() {
			return
		}
		l.stats.NodesVisited++
		if e.node.IsLeaf() {
			for _, it := range e.node.NodeItems() {
				l.offer(it)
			}
			continue
		}
		scratch = e.node.ChildNodes(scratch[:0])
		for _, c := range scratch {
			d := c.MinDistTo(sq)
			if d <= l.distK() {
				heap.Push(h, heapEntry{c, d})
			}
		}
	}
}

// ssAdapter adapts an SS-tree to the Index interface.
type ssAdapter struct{ t *sstree.Tree }

// WrapSSTree adapts an SS-tree for Search.
func WrapSSTree(t *sstree.Tree) Index { return ssAdapter{t} }

func (a ssAdapter) RootNode() (IndexNode, bool) {
	root, ok := a.t.Root()
	if !ok {
		return nil, false
	}
	return ssNode{root}, true
}

type ssNode struct{ n sstree.Node }

func (n ssNode) IsLeaf() bool                    { return n.n.IsLeaf() }
func (n ssNode) MinDistTo(q geom.Sphere) float64 { return geom.MinDist(n.n.Sphere(), q) }
func (n ssNode) NodeItems() []Item               { return n.n.Items() }
func (n ssNode) ChildNodes(dst []IndexNode) []IndexNode {
	for _, c := range n.n.Children() {
		dst = append(dst, ssNode{c})
	}
	return dst
}
