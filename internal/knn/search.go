package knn

import (
	"fmt"
	"time"

	"hyperdom/internal/dominance"
	"hyperdom/internal/geom"
	"hyperdom/internal/obs"
	"hyperdom/internal/packed"
	"hyperdom/internal/sstree"
)

// Algorithm selects the index traversal strategy.
type Algorithm int

const (
	// DF is the depth-first branch-and-bound traversal of Roussopoulos,
	// Kelley and Vincent (SIGMOD 1995) adapted to hypersphere nodes.
	DF Algorithm = iota
	// HS is the best-first (priority queue on MinDist) traversal of
	// Hjaltason and Samet (TODS 1999).
	HS
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case DF:
		return "DF"
	case HS:
		return "HS"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Index abstracts the tree the searches traverse, implemented by the
// SS-tree and M-tree adapters below and in package mtree.
type Index interface {
	// RootNode returns the root cursor, or ok=false for an empty index.
	RootNode() (IndexNode, bool)
}

// IndexNode is a read-only cursor over one index node.
type IndexNode interface {
	IsLeaf() bool
	// MinDistTo returns a lower bound on the distance from any item in the
	// subtree to the query sphere: 0 when they can intersect, and never
	// more than the true minimum distance. Sphere-bounded nodes (SS-tree,
	// M-tree) return MinDist of their bounding sphere; rectangle-bounded
	// nodes (R-tree) return MinDist of their MBR.
	MinDistTo(q geom.Sphere) float64
	// ChildNodes appends the node's children to dst and returns it. Only
	// valid on internal nodes.
	ChildNodes(dst []IndexNode) []IndexNode
	// NodeItems returns the node's items. Only valid on leaves.
	NodeItems() []Item
}

// Search answers the kNN query of Definition 2 over an index using the
// given traversal strategy and dominance criterion. SS-tree indexes take a
// concrete fast path that traverses sstree.Node cursors directly; other
// indexes go through the IndexNode interface. Either way the traversal runs
// out of a pooled scratch arena and performs no steady-state heap
// allocation beyond the returned answer slice.
func Search(idx Index, sq geom.Sphere, k int, crit dominance.Criterion, algo Algorithm) Result {
	sc := getScratch()
	defer putScratch(sc)
	return sc.search(idx, sq, k, crit, algo)
}

// Searcher owns one scratch arena for repeated searches from a single
// goroutine — the per-worker handle of the batch-query engine (package
// engine). It skips the pool round-trip Search pays per query; otherwise
// the two are identical. Not safe for concurrent use.
type Searcher struct{ sc *scratch }

// NewSearcher takes a scratch arena out of the pool.
func NewSearcher() *Searcher { return &Searcher{sc: getScratch()} }

// Search answers one query out of the Searcher's arena; see Search.
func (s *Searcher) Search(idx Index, sq geom.Sphere, k int, crit dominance.Criterion, algo Algorithm) Result {
	return s.sc.search(idx, sq, k, crit, algo)
}

// Close returns the arena to the pool. The Searcher must not be used after.
func (s *Searcher) Close() {
	if s.sc != nil {
		putScratch(s.sc)
		s.sc = nil
	}
}

func (sc *scratch) search(idx Index, sq geom.Sphere, k int, crit dominance.Criterion, algo Algorithm) Result {
	res := Result{K: k}
	l, start, ok := sc.traverse(idx, sq, k, crit, algo, nil, &res.Stats)
	if !ok {
		return res
	}
	res.Items = l.finish()
	if obs.On() {
		sc.flushObs(idx, algo, k, start, &res.Stats)
	}
	return res
}

// traverse runs the index traversal shared by Search (finish() filter) and
// SearchCandidates (raw candidate stream): dispatch to the packed,
// concrete-SS-tree or generic path, with the best-known list filled in and
// the per-search instrumentation armed. ext is the optional scatter-gather
// pushdown bound (nil for single-index searches — the nil check is the
// only cost the hot path pays for it). ok=false means the index was empty:
// the list holds nothing and any sampled trace was cancelled; callers skip
// both the answer pass and the obs flush, exactly as before the split.
func (sc *scratch) traverse(idx Index, sq geom.Sphere, k int, crit dominance.Criterion, algo Algorithm, ext *Bound, stats *Stats) (l *bestList, start time.Time, ok bool) {
	if k <= 0 {
		panic(fmt.Sprintf("knn: k = %d", k))
	}
	// One clock read per search when instrumentation is on: the delta feeds
	// the per-(substrate, strategy) latency histogram and the flight
	// recorder at the same flush point as the work counters.
	if obs.On() {
		start = time.Now()
		if obs.SampleTrace() {
			// This search records its full span tree; flushObs freezes it
			// and offers it to the flight recorder with the counters.
			sc.trace.Begin(start)
			sc.tb = &sc.trace
		}
	}
	sc.resetTraversal()
	l = &sc.list
	l.reset(sq, k, crit, stats)
	l.ext = ext
	if sc.tb != nil {
		l.tb = sc.tb
		l.critLabel = obs.FlightLabel(crit.Name())
	}
	// A frozen substrate routes to the packed traversal: same verdicts,
	// result sets and stats (the kernels and traversal order are
	// bit-identical to the pointer path), off contiguous SoA blocks.
	if pt := frozenOf(idx); pt != nil {
		if pt.Empty() {
			sc.cancelTrace()
			return nil, start, false
		}
		// Stash the process-wide quantization mode for this search: the
		// two-phase loops consult sc.quant so a concurrent SetQuantMode
		// cannot split one traversal across tiers. A degenerate query
		// radius (negative or NaN) takes the exact path outright — the
		// coarse kernels' threshold arithmetic assumes all-non-negative
		// terms (see vec/quant.go), and such a query is never hot.
		sc.quant = QuantModeNow().tier()
		if !(sq.Radius >= 0) {
			sc.quant = packed.TierNone
		}
		switch algo {
		case DF:
			sc.searchDFPacked(pt, pt.Root(), pt.RootMinDist(sq), sq, l)
		case HS:
			sc.searchHSPacked(pt, sq, l)
		default:
			panic(fmt.Sprintf("knn: unknown algorithm %d", int(algo)))
		}
		if obs.On() {
			obsSearchPacked.Inc()
		}
		return l, start, true
	}
	if a, isSS := idx.(ssAdapter); isSS {
		root, rok := a.t.Root()
		if !rok {
			sc.cancelTrace()
			return nil, start, false
		}
		switch algo {
		case DF:
			sc.searchDFSS(root, sq, l)
		case HS:
			sc.searchHSSS(root, sq, l)
		default:
			panic(fmt.Sprintf("knn: unknown algorithm %d", int(algo)))
		}
		return l, start, true
	}
	root, rok := idx.RootNode()
	if !rok {
		sc.cancelTrace()
		return nil, start, false
	}
	switch algo {
	case DF:
		sc.searchDF(root, sq, l)
	case HS:
		sc.searchHS(root, sq, l)
	default:
		panic(fmt.Sprintf("knn: unknown algorithm %d", int(algo)))
	}
	return l, start, true
}

// searchDF visits children in ascending MinDist order, pruning subtrees
// whose MinDist to the query exceeds distk (every item below would fall to
// Case 3). Child cursors and distance keys live in the scratch arena,
// frame-stacked across recursion levels.
func (sc *scratch) searchDF(n IndexNode, sq geom.Sphere, l *bestList) {
	l.stats.NodesVisited++
	sp := int32(-1)
	if tb := sc.tb; tb != nil {
		sp = tb.StartNode(nodeID(n), n.MinDistTo(sq))
	}
	if n.IsLeaf() {
		items := n.NodeItems()
		for _, it := range items {
			l.offer(it)
		}
		if sc.tb != nil {
			sc.tb.EndNode(sp, 0, int32(len(items)))
		}
		return
	}
	base := len(sc.stack)
	sc.stack = n.ChildNodes(sc.stack)
	nc := len(sc.stack) - base
	sc.dfExpansions += uint64(nc)
	sc.dists = growTo(sc.dists, base+nc)
	for i := 0; i < nc; i++ {
		sc.dists[base+i] = sc.stack[base+i].MinDistTo(sq)
	}
	sortByDist(sc.stack[base:base+nc], sc.dists[base:base+nc])
	for i := 0; i < nc; i++ {
		if sc.dists[base+i] > l.pruneBound() {
			// Every deeper item has MinDist ≥ this bound: Case 3 territory.
			if tb := sc.tb; tb != nil {
				for j := i; j < nc; j++ {
					tb.NodePrune(nodeID(sc.stack[base+j]), sc.dists[base+j])
				}
			}
			break
		}
		sc.searchDF(sc.stack[base+i], sq, l)
	}
	clear(sc.stack[base : base+nc]) // drop node refs before the frame pops
	sc.stack = sc.stack[:base]
	sc.dists = sc.dists[:base]
	if sc.tb != nil {
		sc.tb.EndNode(sp, int32(nc), 0)
	}
}

// nodeIdent is the optional node-identity hook of index cursors; the three
// tree substrates implement it.
type nodeIdent interface{ DebugID() uint64 }

// nodeID extracts a node's trace identity, 0 when the substrate offers none.
func nodeID(n IndexNode) uint64 {
	if id, ok := n.(nodeIdent); ok {
		return id.DebugID()
	}
	return 0
}

// growTo extends s to length n, reusing capacity.
func growTo(s []float64, n int) []float64 {
	if cap(s) < n {
		ns := make([]float64, n, 2*n)
		copy(ns, s)
		return ns
	}
	return s[:n]
}

// nodeHeap is a hand-rolled min-heap of index nodes keyed by MinDist to the
// query. It deliberately does not implement container/heap: the standard
// interface forces every pushed entry through an `any` box, which allocated
// on each node visit.
type nodeHeap struct {
	nodes []IndexNode
	dists []float64

	// Scratch-local observability tallies (plain adds; drained per search
	// by scratch.flushObs).
	pushes, pops, grown uint64
}

func (h *nodeHeap) len() int { return len(h.nodes) }

func (h *nodeHeap) push(n IndexNode, d float64) {
	h.pushes++
	if len(h.nodes) == cap(h.nodes) {
		h.grown++
	}
	h.nodes = append(h.nodes, n)
	h.dists = append(h.dists, d)
	i := len(h.nodes) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.dists[p] <= h.dists[i] {
			break
		}
		h.nodes[p], h.nodes[i] = h.nodes[i], h.nodes[p]
		h.dists[p], h.dists[i] = h.dists[i], h.dists[p]
		i = p
	}
}

// pop removes and returns the nearest node. The vacated slot is nilled
// before the slice shrinks: the backing array survives in the scratch pool,
// and a live reference there would retain an entire abandoned index during
// deep traversals.
func (h *nodeHeap) pop() (IndexNode, float64) {
	h.pops++
	n, d := h.nodes[0], h.dists[0]
	last := len(h.nodes) - 1
	h.nodes[0], h.dists[0] = h.nodes[last], h.dists[last]
	h.nodes[last] = nil
	h.nodes = h.nodes[:last]
	h.dists = h.dists[:last]
	h.siftDown(0)
	return n, d
}

func (h *nodeHeap) siftDown(i int) {
	for {
		c := 2*i + 1
		if c >= len(h.nodes) {
			return
		}
		if c+1 < len(h.nodes) && h.dists[c+1] < h.dists[c] {
			c++
		}
		if h.dists[i] <= h.dists[c] {
			return
		}
		h.nodes[i], h.nodes[c] = h.nodes[c], h.nodes[i]
		h.dists[i], h.dists[c] = h.dists[c], h.dists[i]
		i = c
	}
}

// searchHS pops nodes in globally ascending MinDist order; once the nearest
// unexplored node is beyond distk the traversal is complete, because distk
// never increases.
func (sc *scratch) searchHS(root IndexNode, sq geom.Sphere, l *bestList) {
	h := &sc.heap
	h.push(root, root.MinDistTo(sq))
	for h.len() > 0 {
		n, dist := h.pop()
		if dist > l.pruneBound() {
			if tb := sc.tb; tb != nil {
				tb.NodePrune(nodeID(n), dist)
			}
			return
		}
		l.stats.NodesVisited++
		sp := int32(-1)
		if tb := sc.tb; tb != nil {
			sp = tb.StartNode(nodeID(n), dist)
		}
		if n.IsLeaf() {
			items := n.NodeItems()
			for _, it := range items {
				l.offer(it)
			}
			if sc.tb != nil {
				sc.tb.EndNode(sp, 0, int32(len(items)))
			}
			continue
		}
		base := len(sc.stack)
		sc.stack = n.ChildNodes(sc.stack)
		// Invariant: distk cannot change inside this loop — it only shrinks
		// when an item is offered to the list, and expanding an internal
		// node only pushes child nodes. Hoisting the bound out of the loop
		// saves a distK() call per child. The external bound may tighten
		// concurrently, but it is monotone non-increasing, so a hoisted
		// read is merely conservative.
		dk := l.pruneBound()
		for _, c := range sc.stack[base:] {
			if d := c.MinDistTo(sq); d <= dk {
				h.push(c, d)
			} else if tb := sc.tb; tb != nil {
				tb.NodePrune(nodeID(c), d)
			}
		}
		nc := int32(len(sc.stack) - base)
		clear(sc.stack[base:])
		sc.stack = sc.stack[:base]
		if sc.tb != nil {
			sc.tb.EndNode(sp, nc, 0)
		}
	}
}

// ssAdapter adapts an SS-tree to the Index interface. Searches recognise it
// and traverse the tree's concrete cursors directly.
type ssAdapter struct{ t *sstree.Tree }

// WrapSSTree adapts an SS-tree for Search.
func WrapSSTree(t *sstree.Tree) Index { return ssAdapter{t} }

func (a ssAdapter) RootNode() (IndexNode, bool) {
	root, ok := a.t.Root()
	if !ok {
		return nil, false
	}
	return ssNode{root}, true
}

type ssNode struct{ n sstree.Node }

func (n ssNode) IsLeaf() bool                    { return n.n.IsLeaf() }
func (n ssNode) MinDistTo(q geom.Sphere) float64 { return geom.MinDist(n.n.Sphere(), q) }
func (n ssNode) NodeItems() []Item               { return n.n.Items() }
func (n ssNode) DebugID() uint64                 { return n.n.DebugID() }
func (n ssNode) ChildNodes(dst []IndexNode) []IndexNode {
	for i, m := 0, n.n.NumChildren(); i < m; i++ {
		dst = append(dst, ssNode{n.n.Child(i)})
	}
	return dst
}

// searchDFSS is searchDF over concrete sstree.Node cursors: no IndexNode
// boxing, no interface dispatch on the MinDist hot call.
func (sc *scratch) searchDFSS(n sstree.Node, sq geom.Sphere, l *bestList) {
	l.stats.NodesVisited++
	sp := int32(-1)
	if tb := sc.tb; tb != nil {
		sp = tb.StartNode(n.DebugID(), geom.MinDist(n.Sphere(), sq))
	}
	if n.IsLeaf() {
		items := n.Items()
		for _, it := range items {
			l.offer(it)
		}
		if sc.tb != nil {
			sc.tb.EndNode(sp, 0, int32(len(items)))
		}
		return
	}
	base := len(sc.ssStack)
	nc := n.NumChildren()
	sc.dfExpansions += uint64(nc)
	for i := 0; i < nc; i++ {
		c := n.Child(i)
		sc.ssStack = append(sc.ssStack, c)
		sc.ssDists = append(sc.ssDists, geom.MinDist(c.Sphere(), sq))
	}
	sortByDist(sc.ssStack[base:base+nc], sc.ssDists[base:base+nc])
	for i := 0; i < nc; i++ {
		if sc.ssDists[base+i] > l.pruneBound() {
			if tb := sc.tb; tb != nil {
				for j := i; j < nc; j++ {
					tb.NodePrune(sc.ssStack[base+j].DebugID(), sc.ssDists[base+j])
				}
			}
			break
		}
		sc.searchDFSS(sc.ssStack[base+i], sq, l)
	}
	clear(sc.ssStack[base : base+nc])
	sc.ssStack = sc.ssStack[:base]
	sc.ssDists = sc.ssDists[:base]
	if sc.tb != nil {
		sc.tb.EndNode(sp, int32(nc), 0)
	}
}

// ssHeap is nodeHeap over concrete SS-tree cursors.
type ssHeap struct {
	nodes []sstree.Node
	dists []float64

	// Scratch-local observability tallies, as in nodeHeap.
	pushes, pops, grown uint64
}

func (h *ssHeap) len() int { return len(h.nodes) }

func (h *ssHeap) push(n sstree.Node, d float64) {
	h.pushes++
	if len(h.nodes) == cap(h.nodes) {
		h.grown++
	}
	h.nodes = append(h.nodes, n)
	h.dists = append(h.dists, d)
	i := len(h.nodes) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.dists[p] <= h.dists[i] {
			break
		}
		h.nodes[p], h.nodes[i] = h.nodes[i], h.nodes[p]
		h.dists[p], h.dists[i] = h.dists[i], h.dists[p]
		i = p
	}
}

func (h *ssHeap) pop() (sstree.Node, float64) {
	h.pops++
	n, d := h.nodes[0], h.dists[0]
	last := len(h.nodes) - 1
	h.nodes[0], h.dists[0] = h.nodes[last], h.dists[last]
	h.nodes[last] = sstree.Node{} // release the cursor's tree reference
	h.nodes = h.nodes[:last]
	h.dists = h.dists[:last]
	h.siftDown(0)
	return n, d
}

func (h *ssHeap) siftDown(i int) {
	for {
		c := 2*i + 1
		if c >= len(h.nodes) {
			return
		}
		if c+1 < len(h.nodes) && h.dists[c+1] < h.dists[c] {
			c++
		}
		if h.dists[i] <= h.dists[c] {
			return
		}
		h.nodes[i], h.nodes[c] = h.nodes[c], h.nodes[i]
		h.dists[i], h.dists[c] = h.dists[c], h.dists[i]
		i = c
	}
}

// searchHSSS is searchHS over concrete sstree.Node cursors. Children are
// scored and pushed straight from the node — no intermediate child slice at
// all.
func (sc *scratch) searchHSSS(root sstree.Node, sq geom.Sphere, l *bestList) {
	h := &sc.ssHeap
	h.push(root, geom.MinDist(root.Sphere(), sq))
	for h.len() > 0 {
		n, dist := h.pop()
		if dist > l.pruneBound() {
			if tb := sc.tb; tb != nil {
				tb.NodePrune(n.DebugID(), dist)
			}
			return
		}
		l.stats.NodesVisited++
		sp := int32(-1)
		if tb := sc.tb; tb != nil {
			sp = tb.StartNode(n.DebugID(), dist)
		}
		if n.IsLeaf() {
			items := n.Items()
			for _, it := range items {
				l.offer(it)
			}
			if sc.tb != nil {
				sc.tb.EndNode(sp, 0, int32(len(items)))
			}
			continue
		}
		// Invariant: distk cannot change inside this loop — it only shrinks
		// when an item is offered, and this loop only pushes child nodes.
		// A hoisted external-bound read is safe: the bound only tightens.
		dk := l.pruneBound()
		m := n.NumChildren()
		for i := 0; i < m; i++ {
			c := n.Child(i)
			if d := geom.MinDist(c.Sphere(), sq); d <= dk {
				h.push(c, d)
			} else if tb := sc.tb; tb != nil {
				tb.NodePrune(c.DebugID(), d)
			}
		}
		if sc.tb != nil {
			sc.tb.EndNode(sp, int32(m), 0)
		}
	}
}
