package knn

import (
	"math"

	"hyperdom/internal/dominance"
	"hyperdom/internal/geom"
	"hyperdom/internal/obs"
)

// The candidate-search entry points of the scatter-gather layer (DESIGN.md
// §13). A shard cannot apply Definition 2's final filter itself: the filter
// runs against the GLOBAL Sk, which no single shard knows, and dominance is
// not monotone in MaxDist — an item dominated by a shard-local Sk need not
// be dominated by the (closer) global one. So per-shard searches return the
// raw candidate stream — everything the traversal did not prove dominated
// by the final global Sk via Lemma 9 — and the merge layer computes Sk over
// the union and applies the one final filter.

// Candidate is one surviving entry of a per-shard kNN traversal: the item
// plus its cached MaxDist/MinDist to the query, in exactly the arithmetic
// the single-index path uses (so merged orderings are bit-identical).
type Candidate struct {
	Item    Item
	MaxDist float64
	MinDist float64
}

// CandidateSet is the answer of one per-shard candidate search: candidates
// in ascending (MaxDist, ID) order, plus the traversal's work Stats.
//
// Invariants the merge layer relies on:
//   - every indexed item is either present or was pruned under a bound that
//     is ≥ the final global distK (so it is provably dominated by the final
//     global Sk and provably outside the global top-k);
//   - in particular every item whose MaxDist is among the k smallest
//     globally is present, so the global Sk is computable from the union.
type CandidateSet struct {
	K          int
	Stats      Stats
	Candidates []Candidate

	// Per-shard request telemetry (ISSUE 8). Scalar by-products of the
	// traversal the scatter-gather layer surfaces in EXPLAIN output; they
	// ride in the (stack-allocated) CandidateSet so recording them costs the
	// search path nothing. Deliberately NOT part of Stats — Stats equality
	// between the packed and pointer paths is test-locked, and these fields
	// depend on quant mode and cross-shard timing.

	// CoarsePrunes counts quantized narrow-tier settlements (node + leaf)
	// this traversal made; 0 when quant mode is off or the index is not
	// frozen.
	CoarsePrunes uint64
	// BoundObserved is the external distK pushdown bound as of this
	// traversal's completion — what its node prunes could cut against.
	// +Inf when ext was nil or never tightened.
	BoundObserved float64
	// BoundPublished is this traversal's own final local distK as last
	// published into ext (Lemma 9: a k-th-smallest over a subset, hence
	// ≥ the final global distK). +Inf when fewer than k items were seen.
	BoundPublished float64
	// TraceID links to this traversal's retained execution trace in
	// /debug/trace when it was sampled, 0 otherwise.
	TraceID uint64
}

// SearchCandidates runs the kNN traversal and returns the surviving
// candidate stream instead of the final Definition 2 answer. ext, when
// non-nil, is the scatter-gather distK pushdown bound: the traversal reads
// it at every node-prune decision (pop/visit time) and publishes its own
// running local distK into it. Pass nil for a standalone candidate search.
func SearchCandidates(idx Index, sq geom.Sphere, k int, crit dominance.Criterion, algo Algorithm, ext *Bound) CandidateSet {
	sc := getScratch()
	defer putScratch(sc)
	return sc.searchCandidates(idx, sq, k, crit, algo, ext)
}

// SearchCandidates is the Searcher form of the package-level function; see
// Searcher.Search for the ownership contract.
func (s *Searcher) SearchCandidates(idx Index, sq geom.Sphere, k int, crit dominance.Criterion, algo Algorithm, ext *Bound) CandidateSet {
	return s.sc.searchCandidates(idx, sq, k, crit, algo, ext)
}

func (sc *scratch) searchCandidates(idx Index, sq geom.Sphere, k int, crit dominance.Criterion, algo Algorithm, ext *Bound) CandidateSet {
	cs := CandidateSet{K: k}
	cs.BoundObserved = math.Inf(1)
	cs.BoundPublished = math.Inf(1)
	l, start, ok := sc.traverse(idx, sq, k, crit, algo, ext, &cs.Stats)
	if !ok {
		return cs
	}
	cs.Candidates = l.collect()
	// Request-telemetry scalars for the EXPLAIN layer: read the coarse-prune
	// tallies before flushObs zeroes them, and snapshot both sides of the
	// distK pushdown — the shard's own final local distK versus the shared
	// bound it could prune with.
	cs.CoarsePrunes = sc.qNodePrunes + sc.qItemPrunes
	cs.BoundPublished = l.distK()
	if ext != nil {
		cs.BoundObserved = ext.Load()
	}
	if obs.On() {
		cs.TraceID = sc.flushObs(idx, algo, k, start, &cs.Stats)
	}
	return cs
}

// collect returns the traversal's surviving entries — live list and
// deferred candidates merged in ascending (MaxDist, ID) order — without
// applying the final Definition 2 filter. The mirror of finish() for the
// scatter-gather path.
func (l *bestList) collect() []Candidate {
	if len(l.entries) == 0 && len(l.deferred) == 0 {
		return nil
	}
	sortEntries(l.deferred)
	out := make([]Candidate, 0, len(l.entries)+len(l.deferred))
	i, j := 0, 0
	for i < len(l.entries) || j < len(l.deferred) {
		var e entry
		if j >= len(l.deferred) || (i < len(l.entries) && entryLess(l.entries[i], l.deferred[j])) {
			e = l.entries[i]
			i++
		} else {
			e = l.deferred[j]
			j++
		}
		out = append(out, Candidate{Item: e.item, MaxDist: e.maxDist, MinDist: e.minDist})
	}
	return out
}
