package knn

import (
	"math"

	"hyperdom/internal/geom"
	"hyperdom/internal/obs"
	"hyperdom/internal/packed"
)

// obsSearchPacked counts searches answered off a frozen SoA snapshot
// (ISSUE 5) rather than the pointer-chasing node path.
var obsSearchPacked = obs.New("knn.searches.packed")

// quantNodePhase gates the node-level (child bounds) coarse pass. Measured
// on the 10k-item bench fixture, only ~20% of children prune at node level
// (vs ~99% of leaf items): the narrow select pass plus per-survivor exact
// re-scoring costs more than the streaming exact kernel it replaces, so the
// traversals run the coarse filter at leaf granularity only. The node
// kernels and accessors stay built and tested should a workload with
// heavier node-level pruning want them back.
const quantNodePhase = false

// quantOn reports whether this search should run the two-phase
// coarse-filter loops (ISSUE 6): a quantized tier is selected, the search
// is not being traced (the trace schema records exact per-entry distances,
// which the coarse pass deliberately never computes), and the best-list is
// full with a usable threshold (0 <= dk < +Inf: an unbounded dk can prune
// nothing, and a negative one — possible only with degenerate data spheres
// — would reintroduce the mixed-sign cancellation the select kernels'
// threshold arithmetic excludes; see vec/quant.go).
func (sc *scratch) quantOn(dk float64) bool {
	return sc.quant != packed.TierNone && sc.tb == nil && dk >= 0 && !math.IsInf(dk, 1)
}

// frozenOf returns the substrate's cached packed snapshot, or nil when the
// index is not one of the three tree adapters or has not been frozen (or
// was mutated since — the substrates auto-thaw).
func frozenOf(idx Index) *packed.Tree {
	switch a := idx.(type) {
	case ssAdapter:
		if pt, ok := a.t.Frozen(); ok {
			return pt
		}
	case mAdapter:
		if pt, ok := a.t.Frozen(); ok {
			return pt
		}
	case rAdapter:
		if pt, ok := a.t.Frozen(); ok {
			return pt
		}
	case packedAdapter:
		return a.t
	}
	return nil
}

// packedNodeID is the trace identity of a packed node: its dense id shifted
// by one, because 0 means "no identity" in the span schema.
func packedNodeID(n int32) uint64 { return uint64(n) + 1 }

// offerLeafPacked streams one DistBlock pass over leaf n's packed item
// centers and offers every item off it.
//
// The pass exploits the SoA layout twice. First, one sqrt per item instead
// of the pointer path's two (MaxDist + MinDist). Second — the big one — a
// Case-3 item (minDist > distk, Lemma 9) is recognised from the distance
// and radius blocks alone, so the Item struct behind it is never loaded:
// the prune touches only two sequential float64 arrays. The condition is
// exactly offerDist's Case 3 (minDist > dk with dk ≥ 0 implies the raw and
// clamped minDist agree, and maxDist ≥ minDist > dk rules out Cases 1–2),
// and a Case-3 offer changes no list state, so stats and results stay
// bit-identical. Traced searches take the plain per-item path, which emits
// the identical ItemPrune spans.
func (sc *scratch) offerLeafPacked(t *packed.Tree, n int32, sq geom.Sphere, l *bestList) int32 {
	items := t.LeafItems(n)
	if l.tb != nil {
		sc.pBuf = growTo(sc.pBuf, len(items))
		t.LeafDists(n, sq.Center, sc.pBuf)
		for i, it := range items {
			l.offerDist(it, sc.pBuf[i])
		}
		return int32(len(items))
	}
	radii := t.ItemRadii(n)
	qr := sq.Radius
	dk := l.distK()
	if sc.quantOn(dk) {
		// Two-phase (ISSUE 6): one select pass over the narrow tier drops
		// every item whose lower bound certifies Case 3 against the distk at
		// leaf entry — same Items/Pruned accounting, and neither the exact
		// center block nor a sqrt is ever touched. Survivors replay the
		// exact per-item logic bit for bit (LeafDistAt == DistBlock entry)
		// against the live distk, so list state and Stats match the exact
		// pass: distk only shrinks as items are offered, which keeps the
		// entry-distk coarse decisions valid (they prune a subset of what
		// the live value would).
		sc.qSel = growToI32(sc.qSel, len(items))
		nsel := t.LeafQuantSelect(sc.quant, n, sq, dk, sc.qSel)
		dropped := len(items) - nsel
		sc.qItemPrunes += uint64(dropped)
		sc.qItemExact += uint64(nsel)
		l.stats.Items += dropped
		l.stats.Pruned += dropped
		for _, i := range sc.qSel[:nsel] {
			dist := t.LeafDistAt(n, i, sq.Center)
			if dist-radii[i]-qr > dk {
				l.stats.Items++
				l.stats.Pruned++
				continue
			}
			l.offerDist(items[i], dist)
			dk = l.distK()
		}
		return int32(len(items))
	}
	sc.pBuf = growTo(sc.pBuf, len(items))
	t.LeafDists(n, sq.Center, sc.pBuf)
	for i := range items {
		dist := sc.pBuf[i]
		if dist-radii[i]-qr > dk {
			l.stats.Items++
			l.stats.Pruned++
			continue
		}
		l.offerDist(items[i], dist)
		dk = l.distK()
	}
	return int32(len(items))
}

// searchDFPacked is searchDF over a frozen snapshot: node ids instead of
// cursors, and the per-child MinDist loop replaced by one streaming kernel
// call over the node's packed bounds. nd is n's own MinDist to the query,
// known from the parent's pass (RootMinDist at the root).
func (sc *scratch) searchDFPacked(t *packed.Tree, n int32, nd float64, sq geom.Sphere, l *bestList) {
	l.stats.NodesVisited++
	sp := int32(-1)
	if tb := sc.tb; tb != nil {
		sp = tb.StartNode(packedNodeID(n), nd)
	}
	if t.IsLeaf(n) {
		scanned := sc.offerLeafPacked(t, n, sq, l)
		if sc.tb != nil {
			sc.tb.EndNode(sp, 0, scanned)
		}
		return
	}
	base := len(sc.pStack)
	kids := t.Children(n)
	nc := len(kids)
	sc.dfExpansions += uint64(nc)
	// Two-phase expansion (ISSUE 6): score every child off the narrow tier
	// first and compute the exact mindist only for children whose bound
	// does not already exceed distk. Dropped children are exactly the ones
	// the exact path would never recurse into: their exact mindist is >= the
	// bound > distk-at-expansion >= distk at any later point of this visit
	// loop (distk only shrinks), so the sorted visit sequence, the break
	// point and every Stats field are unchanged. Restricted to fan-outs the
	// stable insertion sort handles (<= 48): subsetting survivors under the
	// heapsort fallback could reorder equal-distance children relative to
	// the pointer path's full-array sort.
	if quantNodePhase && sc.quantOn(l.distK()) && nc <= 48 {
		dk := l.distK()
		sc.qSel = growToI32(sc.qSel, nc)
		nsel := t.ChildQuantSelect(sc.quant, n, sq, dk, sc.qSel)
		sc.qNodePrunes += uint64(nc - nsel)
		sc.qNodeExact += uint64(nsel)
		for _, i := range sc.qSel[:nsel] {
			sc.pStack = append(sc.pStack, kids[i])
			sc.pDists = append(sc.pDists, t.ChildMinDistAt(n, i, sq))
		}
		nc = len(sc.pStack) - base
	} else {
		sc.pStack = append(sc.pStack, kids...)
		sc.pDists = growTo(sc.pDists, base+nc)
		t.ChildMinDists(n, sq, sc.pDists[base:base+nc])
	}
	sortByDist(sc.pStack[base:base+nc], sc.pDists[base:base+nc])
	for i := 0; i < nc; i++ {
		if sc.pDists[base+i] > l.pruneBound() {
			if tb := sc.tb; tb != nil {
				for j := i; j < nc; j++ {
					tb.NodePrune(packedNodeID(sc.pStack[base+j]), sc.pDists[base+j])
				}
			}
			break
		}
		sc.searchDFPacked(t, sc.pStack[base+i], sc.pDists[base+i], sq, l)
	}
	sc.pStack = sc.pStack[:base]
	sc.pDists = sc.pDists[:base]
	if sc.tb != nil {
		sc.tb.EndNode(sp, int32(nc), 0)
	}
}

// pHeap is the best-first frontier over packed node ids, mirroring ssHeap.
// Unlike its cursor-based siblings it stores each (dist, id) pair in one
// struct: a sift step then touches one cache line per level instead of two
// (the parallel-slice layout showed up as pure memory stalls in profiles),
// and since the comparisons and swap structure are unchanged the pop order
// — and with it the packed/pointer bit-identity — is too.
type pHeap struct {
	es []pHeapEntry

	// Scratch-local observability tallies, as in nodeHeap.
	pushes, pops, grown uint64
}

type pHeapEntry struct {
	dist float64
	id   int32
}

func (h *pHeap) len() int { return len(h.es) }

func (h *pHeap) push(n int32, d float64) {
	h.pushes++
	if len(h.es) == cap(h.es) {
		h.grown++
	}
	h.es = append(h.es, pHeapEntry{d, n})
	i := len(h.es) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.es[p].dist <= h.es[i].dist {
			break
		}
		h.es[p], h.es[i] = h.es[i], h.es[p]
		i = p
	}
}

func (h *pHeap) pop() (int32, float64) {
	h.pops++
	e := h.es[0]
	last := len(h.es) - 1
	h.es[0] = h.es[last]
	h.es = h.es[:last]
	h.siftDown(0)
	return e.id, e.dist
}

func (h *pHeap) siftDown(i int) {
	es := h.es
	for {
		c := 2*i + 1
		if c >= len(es) {
			return
		}
		if c+1 < len(es) && es[c+1].dist < es[c].dist {
			c++
		}
		if es[i].dist <= es[c].dist {
			return
		}
		es[i], es[c] = es[c], es[i]
		i = c
	}
}

// searchHSPacked is searchHS over a frozen snapshot. Children are scored by
// one kernel pass per expanded node and pushed under the hoisted distk
// bound; the pop order is identical to the pointer path because the keys
// are bit-identical and the heap is the same shape.
func (sc *scratch) searchHSPacked(t *packed.Tree, sq geom.Sphere, l *bestList) {
	h := &sc.pHeap
	h.push(t.Root(), t.RootMinDist(sq))
	for h.len() > 0 {
		n, dist := h.pop()
		if dist > l.pruneBound() {
			if tb := sc.tb; tb != nil {
				tb.NodePrune(packedNodeID(n), dist)
			}
			return
		}
		l.stats.NodesVisited++
		sp := int32(-1)
		if tb := sc.tb; tb != nil {
			sp = tb.StartNode(packedNodeID(n), dist)
		}
		if t.IsLeaf(n) {
			scanned := sc.offerLeafPacked(t, n, sq, l)
			if sc.tb != nil {
				sc.tb.EndNode(sp, 0, scanned)
			}
			continue
		}
		// Invariant: distk cannot change inside this loop — it only shrinks
		// when an item is offered, and this loop only pushes child nodes.
		// A hoisted external-bound read is safe: the bound only tightens.
		dk := l.pruneBound()
		kids := t.Children(n)
		if quantNodePhase && sc.quantOn(dk) {
			// Two-phase (ISSUE 6): a narrow bound beyond distk certifies
			// the exact mindist is too, so the child is skipped without
			// touching the exact block — the pointer path would not have
			// pushed it either. Survivors are scored exactly and pushed in
			// the same index order as the exact pass, so the heap stays
			// bit-identical.
			sc.qSel = growToI32(sc.qSel, len(kids))
			nsel := t.ChildQuantSelect(sc.quant, n, sq, dk, sc.qSel)
			sc.qNodePrunes += uint64(len(kids) - nsel)
			sc.qNodeExact += uint64(nsel)
			for _, i := range sc.qSel[:nsel] {
				if d := t.ChildMinDistAt(n, i, sq); d <= dk {
					h.push(kids[i], d)
				}
			}
			continue
		}
		sc.pBuf = growTo(sc.pBuf, len(kids))
		t.ChildMinDists(n, sq, sc.pBuf)
		for i, c := range kids {
			if d := sc.pBuf[i]; d <= dk {
				h.push(c, d)
			} else if tb := sc.tb; tb != nil {
				tb.NodePrune(packedNodeID(c), d)
			}
		}
		if sc.tb != nil {
			sc.tb.EndNode(sp, int32(len(kids)), 0)
		}
	}
}
