package knn

import (
	"hyperdom/internal/geom"
	"hyperdom/internal/obs"
	"hyperdom/internal/packed"
)

// obsSearchPacked counts searches answered off a frozen SoA snapshot
// (ISSUE 5) rather than the pointer-chasing node path.
var obsSearchPacked = obs.New("knn.searches.packed")

// frozenOf returns the substrate's cached packed snapshot, or nil when the
// index is not one of the three tree adapters or has not been frozen (or
// was mutated since — the substrates auto-thaw).
func frozenOf(idx Index) *packed.Tree {
	switch a := idx.(type) {
	case ssAdapter:
		if pt, ok := a.t.Frozen(); ok {
			return pt
		}
	case mAdapter:
		if pt, ok := a.t.Frozen(); ok {
			return pt
		}
	case rAdapter:
		if pt, ok := a.t.Frozen(); ok {
			return pt
		}
	}
	return nil
}

// packedNodeID is the trace identity of a packed node: its dense id shifted
// by one, because 0 means "no identity" in the span schema.
func packedNodeID(n int32) uint64 { return uint64(n) + 1 }

// offerLeafPacked streams one DistBlock pass over leaf n's packed item
// centers and offers every item off it.
//
// The pass exploits the SoA layout twice. First, one sqrt per item instead
// of the pointer path's two (MaxDist + MinDist). Second — the big one — a
// Case-3 item (minDist > distk, Lemma 9) is recognised from the distance
// and radius blocks alone, so the Item struct behind it is never loaded:
// the prune touches only two sequential float64 arrays. The condition is
// exactly offerDist's Case 3 (minDist > dk with dk ≥ 0 implies the raw and
// clamped minDist agree, and maxDist ≥ minDist > dk rules out Cases 1–2),
// and a Case-3 offer changes no list state, so stats and results stay
// bit-identical. Traced searches take the plain per-item path, which emits
// the identical ItemPrune spans.
func (sc *scratch) offerLeafPacked(t *packed.Tree, n int32, sq geom.Sphere, l *bestList) int32 {
	items := t.LeafItems(n)
	sc.pBuf = growTo(sc.pBuf, len(items))
	t.LeafDists(n, sq.Center, sc.pBuf)
	if l.tb != nil {
		for i, it := range items {
			l.offerDist(it, sc.pBuf[i])
		}
		return int32(len(items))
	}
	radii := t.ItemRadii(n)
	qr := sq.Radius
	dk := l.distK()
	for i := range items {
		dist := sc.pBuf[i]
		if dist-radii[i]-qr > dk {
			l.stats.Items++
			l.stats.Pruned++
			continue
		}
		l.offerDist(items[i], dist)
		dk = l.distK()
	}
	return int32(len(items))
}

// searchDFPacked is searchDF over a frozen snapshot: node ids instead of
// cursors, and the per-child MinDist loop replaced by one streaming kernel
// call over the node's packed bounds. nd is n's own MinDist to the query,
// known from the parent's pass (RootMinDist at the root).
func (sc *scratch) searchDFPacked(t *packed.Tree, n int32, nd float64, sq geom.Sphere, l *bestList) {
	l.stats.NodesVisited++
	sp := int32(-1)
	if tb := sc.tb; tb != nil {
		sp = tb.StartNode(packedNodeID(n), nd)
	}
	if t.IsLeaf(n) {
		scanned := sc.offerLeafPacked(t, n, sq, l)
		if sc.tb != nil {
			sc.tb.EndNode(sp, 0, scanned)
		}
		return
	}
	base := len(sc.pStack)
	kids := t.Children(n)
	nc := len(kids)
	sc.dfExpansions += uint64(nc)
	sc.pStack = append(sc.pStack, kids...)
	sc.pDists = growTo(sc.pDists, base+nc)
	t.ChildMinDists(n, sq, sc.pDists[base:base+nc])
	sortByDist(sc.pStack[base:base+nc], sc.pDists[base:base+nc])
	for i := 0; i < nc; i++ {
		if sc.pDists[base+i] > l.distK() {
			if tb := sc.tb; tb != nil {
				for j := i; j < nc; j++ {
					tb.NodePrune(packedNodeID(sc.pStack[base+j]), sc.pDists[base+j])
				}
			}
			break
		}
		sc.searchDFPacked(t, sc.pStack[base+i], sc.pDists[base+i], sq, l)
	}
	sc.pStack = sc.pStack[:base]
	sc.pDists = sc.pDists[:base]
	if sc.tb != nil {
		sc.tb.EndNode(sp, int32(nc), 0)
	}
}

// pHeap is the best-first frontier over packed node ids, mirroring ssHeap.
type pHeap struct {
	ids   []int32
	dists []float64

	// Scratch-local observability tallies, as in nodeHeap.
	pushes, pops, grown uint64
}

func (h *pHeap) len() int { return len(h.ids) }

func (h *pHeap) push(n int32, d float64) {
	h.pushes++
	if len(h.ids) == cap(h.ids) {
		h.grown++
	}
	h.ids = append(h.ids, n)
	h.dists = append(h.dists, d)
	i := len(h.ids) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.dists[p] <= h.dists[i] {
			break
		}
		h.ids[p], h.ids[i] = h.ids[i], h.ids[p]
		h.dists[p], h.dists[i] = h.dists[i], h.dists[p]
		i = p
	}
}

func (h *pHeap) pop() (int32, float64) {
	h.pops++
	n, d := h.ids[0], h.dists[0]
	last := len(h.ids) - 1
	h.ids[0], h.dists[0] = h.ids[last], h.dists[last]
	h.ids = h.ids[:last]
	h.dists = h.dists[:last]
	h.siftDown(0)
	return n, d
}

func (h *pHeap) siftDown(i int) {
	for {
		c := 2*i + 1
		if c >= len(h.ids) {
			return
		}
		if c+1 < len(h.ids) && h.dists[c+1] < h.dists[c] {
			c++
		}
		if h.dists[i] <= h.dists[c] {
			return
		}
		h.ids[i], h.ids[c] = h.ids[c], h.ids[i]
		h.dists[i], h.dists[c] = h.dists[c], h.dists[i]
		i = c
	}
}

// searchHSPacked is searchHS over a frozen snapshot. Children are scored by
// one kernel pass per expanded node and pushed under the hoisted distk
// bound; the pop order is identical to the pointer path because the keys
// are bit-identical and the heap is the same shape.
func (sc *scratch) searchHSPacked(t *packed.Tree, sq geom.Sphere, l *bestList) {
	h := &sc.pHeap
	h.push(t.Root(), t.RootMinDist(sq))
	for h.len() > 0 {
		n, dist := h.pop()
		if dist > l.distK() {
			if tb := sc.tb; tb != nil {
				tb.NodePrune(packedNodeID(n), dist)
			}
			return
		}
		l.stats.NodesVisited++
		sp := int32(-1)
		if tb := sc.tb; tb != nil {
			sp = tb.StartNode(packedNodeID(n), dist)
		}
		if t.IsLeaf(n) {
			scanned := sc.offerLeafPacked(t, n, sq, l)
			if sc.tb != nil {
				sc.tb.EndNode(sp, 0, scanned)
			}
			continue
		}
		// Invariant: distk cannot change inside this loop — it only shrinks
		// when an item is offered, and this loop only pushes child nodes.
		dk := l.distK()
		kids := t.Children(n)
		sc.pBuf = growTo(sc.pBuf, len(kids))
		t.ChildMinDists(n, sq, sc.pBuf)
		for i, c := range kids {
			if d := sc.pBuf[i]; d <= dk {
				h.push(c, d)
			} else if tb := sc.tb; tb != nil {
				tb.NodePrune(packedNodeID(c), d)
			}
		}
		if sc.tb != nil {
			sc.tb.EndNode(sp, int32(len(kids)), 0)
		}
	}
}
