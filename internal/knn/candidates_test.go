package knn

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"hyperdom/internal/dominance"
	"hyperdom/internal/geom"
)

func TestBoundTighten(t *testing.T) {
	b := NewBound()
	if got := b.Load(); !math.IsInf(got, 1) {
		t.Fatalf("fresh bound = %v, want +Inf", got)
	}
	if !b.Tighten(5) {
		t.Fatal("Tighten(5) from +Inf reported no change")
	}
	if b.Tighten(7) {
		t.Fatal("Tighten(7) loosened a bound of 5")
	}
	if b.Tighten(math.NaN()) {
		t.Fatal("Tighten(NaN) reported a change")
	}
	if !b.Tighten(2) {
		t.Fatal("Tighten(2) from 5 reported no change")
	}
	if got := b.Load(); got != 2 {
		t.Fatalf("bound = %v, want 2", got)
	}
	b.Reset()
	if got := b.Load(); !math.IsInf(got, 1) {
		t.Fatalf("reset bound = %v, want +Inf", got)
	}
}

// finalFilter applies Definition 2's final filter to a candidate stream the
// way the merge layer does: Sk = k-th smallest (MaxDist, ID), keep every
// candidate Sk does not provably dominate.
func finalFilter(cs CandidateSet, sq geom.Sphere, crit dominance.Criterion) []Item {
	cands := cs.Candidates
	if len(cands) <= cs.K {
		out := make([]Item, len(cands))
		for i, c := range cands {
			out[i] = c.Item
		}
		return out
	}
	sk := cands[cs.K-1].Item
	var out []Item
	for _, c := range cands {
		if crit.Dominates(sk.Sphere, c.Item.Sphere, sq) {
			continue
		}
		out = append(out, c.Item)
	}
	return out
}

// TestSearchCandidatesRecoversAnswer locks the contract the scatter-gather
// merge layer depends on: applying the final Definition 2 filter to the raw
// candidate stream reproduces the Search answer exactly, for both
// traversals, with and without an external bound in play.
func TestSearchCandidatesRecoversAnswer(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	crit := dominance.Hyperbola{}
	for trial := 0; trial < 40; trial++ {
		d := 2 + rng.Intn(3)
		n := 1 + rng.Intn(400)
		items := randItems(rng, d, n, 4)
		idx := index(items, d)
		sq := randQuery(rng, d, 4)
		k := 1 + rng.Intn(12)
		for _, algo := range []Algorithm{DF, HS} {
			want := Search(idx, sq, k, crit, algo)
			cs := SearchCandidates(idx, sq, k, crit, algo, nil)
			got := finalFilter(cs, sq, crit)
			if !equalIDs(idsOf(want.Items), idsOf(got)) {
				t.Fatalf("trial %d %v: filtered candidates %v != answer %v",
					trial, algo, idsOf(got), idsOf(want.Items))
			}
			// Candidates must arrive in ascending (MaxDist, ID) order.
			for i := 1; i < len(cs.Candidates); i++ {
				a, b := cs.Candidates[i-1], cs.Candidates[i]
				if a.MaxDist > b.MaxDist || (a.MaxDist == b.MaxDist && a.Item.ID > b.Item.ID) {
					t.Fatalf("trial %d %v: candidate order violated at %d", trial, algo, i)
				}
			}
			// A finite external bound seeded at the true final distK must
			// not change the recovered answer (it can only prune items the
			// final Sk provably dominates).
			if len(cs.Candidates) >= k {
				ext := NewBound()
				ext.Tighten(cs.Candidates[k-1].MaxDist)
				cs2 := SearchCandidates(idx, sq, k, crit, algo, ext)
				got2 := finalFilter(cs2, sq, crit)
				if !equalIDs(idsOf(want.Items), idsOf(got2)) {
					t.Fatalf("trial %d %v: ext-bounded candidates broke the answer", trial, algo)
				}
			}
		}
	}
}

// TestSearchCandidatesStats pins that a nil-bound candidate search performs
// exactly the traversal work of a plain Search (same Stats), since the two
// share one traversal and differ only in the answer pass.
func TestSearchCandidatesStats(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	items := randItems(rng, 3, 500, 3)
	idx := index(items, 3)
	sq := randQuery(rng, 3, 3)
	for _, algo := range []Algorithm{DF, HS} {
		res := Search(idx, sq, 8, dominance.Hyperbola{}, algo)
		cs := SearchCandidates(idx, sq, 8, dominance.Hyperbola{}, algo, nil)
		// finish() runs extra final-filter DomChecks that collect() skips,
		// so compare the traversal-side fields only.
		if cs.Stats.NodesVisited != res.Stats.NodesVisited || cs.Stats.Items != res.Stats.Items {
			t.Fatalf("%v: candidate stats %+v diverge from search stats %+v", algo, cs.Stats, res.Stats)
		}
	}
}

func TestSearchCandidatesEmptyIndex(t *testing.T) {
	idx := index(nil, 2)
	cs := SearchCandidates(idx, randQuery(rand.New(rand.NewSource(1)), 2, 1), 3, dominance.Hyperbola{}, HS, nil)
	if len(cs.Candidates) != 0 || cs.K != 3 {
		t.Fatalf("empty index returned %+v", cs)
	}
}

func idsOf(items []Item) []int {
	ids := make([]int, len(items))
	for i, it := range items {
		ids[i] = it.ID
	}
	sort.Ints(ids)
	return ids
}
