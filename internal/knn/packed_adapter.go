package knn

import (
	"hyperdom/internal/packed"
)

// packedAdapter serves a packed.Tree directly — typically one loaded from
// a snapshot file (packed.Open), which has no pointer substrate behind it.
// frozenOf recognises it, so every search takes the packed traversal.
type packedAdapter struct{ t *packed.Tree }

// WrapPacked adapts a frozen snapshot for Search. Unlike the substrate
// adapters there is nothing to thaw: the tree is immutable, and searches
// are bit-identical to searches over the (frozen) substrate that built it
// — the traversal dispatches on the snapshot, never on its origin.
func WrapPacked(t *packed.Tree) Index { return packedAdapter{t} }

// RootNode implements Index. A packed tree has no pointer cursors; the
// traversals recognise the adapter through frozenOf before consulting
// RootNode, so this is reached only by code that insists on the pointer
// path — which must see an empty index rather than a panic.
func (a packedAdapter) RootNode() (IndexNode, bool) { return nil, false }
