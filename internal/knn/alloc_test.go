package knn

import (
	"fmt"
	"math/rand"
	"testing"

	"hyperdom/internal/dominance"
	"hyperdom/internal/geom"
	"hyperdom/internal/sstree"
)

// searchAllocBudget is the steady-state allocations-per-search ceiling for
// the tree traversals on an SS-tree. The only mandatory allocation is the
// answer slice handed to the caller; the budget leaves room for incidental
// growth (a pool miss after GC, a first-time buffer resize) without letting
// per-node allocation creep back in — the old traversal allocated child
// slices, dist slices, order permutations, sort closures and heap boxes on
// every node visit, hundreds per search.
const searchAllocBudget = 8

// allocFixture builds the 10k-item SS-tree the allocation and benchmark
// tests share.
func allocFixture(n int) (Index, []geom.Sphere) {
	rng := rand.New(rand.NewSource(7001))
	d := 8
	t := sstree.New(d)
	for i := 0; i < n; i++ {
		c := make([]float64, d)
		for j := range c {
			c[j] = 100 + rng.NormFloat64()*25
		}
		t.Insert(Item{Sphere: geom.NewSphere(c, rng.Float64()*2), ID: i})
	}
	queries := make([]geom.Sphere, 16)
	for i := range queries {
		c := make([]float64, d)
		for j := range c {
			c[j] = 100 + rng.NormFloat64()*25
		}
		queries[i] = geom.NewSphere(c, rng.Float64()*2)
	}
	return WrapSSTree(t), queries
}

// TestSearchAllocs is the allocation regression gate of the zero-allocation
// kernel: a steady-state Search over a 10k-item SS-tree must stay within
// searchAllocBudget for both traversal strategies.
func TestSearchAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-item fixture")
	}
	if raceEnabled {
		t.Skip("race instrumentation allocates; AllocsPerRun is meaningless under -race")
	}
	idx, queries := allocFixture(10000)
	for _, algo := range []Algorithm{DF, HS} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			q := 0
			// Warm the scratch pool and the arena capacities first so the
			// measurement sees the steady state, not the first-use growth.
			for i := 0; i < 4; i++ {
				Search(idx, queries[i], 10, dominance.Hyperbola{}, algo)
			}
			allocs := testing.AllocsPerRun(64, func() {
				Search(idx, queries[q%len(queries)], 10, dominance.Hyperbola{}, algo)
				q++
			})
			if allocs > searchAllocBudget {
				t.Errorf("%v: %.1f allocs per search, budget %d", algo, allocs, searchAllocBudget)
			}
		})
	}
}

// TestSearchAllocsPacked holds the frozen (packed SoA) traversal to the
// same steady-state budget as the pointer path: the streaming kernels write
// into scratch-owned buffers, so freezing must not reintroduce per-node
// allocation.
func TestSearchAllocsPacked(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-item fixture")
	}
	if raceEnabled {
		t.Skip("race instrumentation allocates; AllocsPerRun is meaningless under -race")
	}
	idx, queries := allocFixture(10000)
	idx.(ssAdapter).t.Freeze()
	for _, algo := range []Algorithm{DF, HS} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			q := 0
			for i := 0; i < 4; i++ {
				Search(idx, queries[i], 10, dominance.Hyperbola{}, algo)
			}
			allocs := testing.AllocsPerRun(64, func() {
				Search(idx, queries[q%len(queries)], 10, dominance.Hyperbola{}, algo)
				q++
			})
			if allocs > searchAllocBudget {
				t.Errorf("%v packed: %.1f allocs per search, budget %d", algo, allocs, searchAllocBudget)
			}
		})
	}
}

// TestSearchBatchAllocs pins the per-query allocation cost of the batch
// path, which reuses one scratch arena per worker across all its queries.
func TestSearchBatchAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-item fixture")
	}
	if raceEnabled {
		t.Skip("race instrumentation allocates; AllocsPerRun is meaningless under -race")
	}
	idx, queries := allocFixture(10000)
	SearchBatch(idx, queries, 10, dominance.Hyperbola{}, HS, 1) // warm
	allocs := testing.AllocsPerRun(16, func() {
		SearchBatch(idx, queries, 10, dominance.Hyperbola{}, HS, 1)
	})
	// Budget: one answer slice per query plus the fixed batch scaffolding
	// (result slice, channel, waitgroup, goroutine closure).
	budget := float64(len(queries)*searchAllocBudget + 8)
	if allocs > budget {
		t.Errorf("%.1f allocs per %d-query batch, budget %.0f", allocs, len(queries), budget)
	}
}

// BenchmarkSearch measures the kNN traversals over the 10k-item SS-tree —
// the figures BENCH_knn.json tracks across PRs.
func BenchmarkSearch(b *testing.B) {
	idx, queries := allocFixture(10000)
	for _, algo := range []Algorithm{DF, HS} {
		algo := algo
		b.Run(fmt.Sprintf("SS10k/%v", algo), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Search(idx, queries[i%len(queries)], 10, dominance.Hyperbola{}, algo)
			}
		})
	}
}

// BenchmarkSearchPacked is BenchmarkSearch over the frozen snapshot — the
// single-thread packed-layout win BENCH_knn.json records as
// speedup_packed_layout.
func BenchmarkSearchPacked(b *testing.B) {
	idx, queries := allocFixture(10000)
	idx.(ssAdapter).t.Freeze()
	for _, algo := range []Algorithm{DF, HS} {
		algo := algo
		b.Run(fmt.Sprintf("SS10k/%v", algo), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Search(idx, queries[i%len(queries)], 10, dominance.Hyperbola{}, algo)
			}
		})
	}
}

// BenchmarkSearchBatch measures batch throughput with worker-pooled scratch.
func BenchmarkSearchBatch(b *testing.B) {
	idx, queries := allocFixture(10000)
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(fmt.Sprintf("SS10k/HS/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				SearchBatch(idx, queries, 10, dominance.Hyperbola{}, HS, workers)
			}
		})
	}
}
