// Package knn implements the k-nearest-neighbour query over hypersphere
// databases defined in Section 6 of the paper (Definition 2), the
// application that exercises the dominance operator.
//
// Given a query hypersphere Sq and a database D of hyperspheres, let Sk be
// the member of D with the k-th smallest MaxDist to Sq. The answer of the
// kNN query is every member of D that is NOT dominated by Sk with respect
// to Sq — the set of objects that could still be among the k nearest under
// the uncertainty the spheres model.
//
// Three evaluators are provided:
//
//   - BruteForce: scans D; with the Exact (or Hyperbola) criterion this is
//     the ground truth the paper measures precision against.
//   - DF: the depth-first tree traversal of Roussopoulos et al. (ref [26]).
//   - HS: the best-first traversal of Hjaltason and Samet (ref [15]).
//
// DF and HS run over an index (package sstree or mtree) and maintain the
// best-known list L exactly as Section 6 prescribes: Case 1 inserts and
// evicts newly-dominated members, Case 2 consults the pluggable dominance
// criterion, Case 3 prunes by Lemma 9. With a correct criterion the result
// is a superset of the truth (recall 100%); with Hyperbola it is exact.
package knn

import (
	"fmt"
	"math"
	"sort"
	"time"

	"hyperdom/internal/dominance"
	"hyperdom/internal/geom"
	"hyperdom/internal/obs"
	"hyperdom/internal/vec"
)

// Item is the indexed unit, shared with the index packages.
type Item = geom.Item

// Stats counts the work a query performed.
type Stats struct {
	NodesVisited int // internal + leaf index nodes touched
	Items        int // data items reached through the index (or scanned)
	DomChecks    int // dominance-criterion invocations
	Pruned       int // items discarded by Case 2 or Case 3
	// Resurrected counts items that an interim Sk had dominated (Case 2
	// prune or Case 1 eviction) but that the FINAL Sk does not dominate,
	// so the Definition 2 filter readmitted them. Non-zero values are the
	// reason the deferred list exists; see the bestList comment.
	Resurrected int
}

// Result is the answer of a kNN query.
type Result struct {
	// Items is the answer set, sorted by ascending MaxDist to the query.
	Items []Item
	// K is the k the query ran with.
	K int
	// Stats describes the work performed.
	Stats Stats
}

// IDs returns the answer's item IDs in result order.
func (r Result) IDs() []int {
	out := make([]int, len(r.Items))
	for i, it := range r.Items {
		out[i] = it.ID
	}
	return out
}

// BruteForce evaluates the kNN query by Definition 2 with a full scan:
// find Sk, then keep every item the criterion does not prove dominated.
// With dominance.Exact{} or dominance.Hyperbola{} the result is the ground
// truth. If D has fewer than k items the whole database is the answer.
func BruteForce(items []Item, sq geom.Sphere, k int, crit dominance.Criterion) Result {
	if k <= 0 {
		panic(fmt.Sprintf("knn: k = %d", k))
	}
	res := Result{K: k}
	res.Stats.Items = len(items)
	var start time.Time
	if obs.On() {
		start = time.Now()
	}
	defer func() {
		if obs.On() {
			obsBruteSearches.Inc()
			flushStats(&res.Stats)
			if !start.IsZero() {
				lat := time.Since(start).Nanoseconds()
				bruteLatency.Record(lat)
				obs.Flight.Record(obs.FlightSample{
					WhenUnixNs: start.UnixNano(),
					LatencyNs:  lat,
					Substrate:  flightBrute,
					Algo:       flightScan,
					K:          k,
					Nodes:      uint64(res.Stats.NodesVisited),
					Items:      uint64(res.Stats.Items),
					DomChecks:  uint64(res.Stats.DomChecks),
					Pruned:     uint64(res.Stats.Pruned),
				})
			}
		}
	}()
	if len(items) == 0 {
		return res
	}
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	maxd := make([]float64, len(items))
	for i, it := range items {
		maxd[i] = geom.MaxDist(it.Sphere, sq)
	}
	sort.Slice(order, func(a, b int) bool {
		if maxd[order[a]] != maxd[order[b]] {
			return maxd[order[a]] < maxd[order[b]]
		}
		return items[order[a]].ID < items[order[b]].ID
	})
	if len(items) <= k {
		for _, idx := range order {
			res.Items = append(res.Items, items[idx])
		}
		return res
	}
	sk := items[order[k-1]]
	for _, idx := range order {
		res.Stats.DomChecks++
		if crit.Dominates(sk.Sphere, items[idx].Sphere, sq) {
			res.Stats.Pruned++
			continue
		}
		res.Items = append(res.Items, items[idx])
	}
	return res
}

// bestList is the best-known list L of Section 6: candidates ordered by
// ascending MaxDist to the query.
//
// One refinement over the paper's literal Cases 1–3: an item dominated by
// the k-th candidate *at encounter time* (Case 2) or evicted after a Case 1
// insertion is not discarded outright but parked in a deferred list,
// because Definition 2 defines the answer against the FINAL Sk and
// dominance by an interim Sk does not imply dominance by the final one
// (distk shrinks as the search progresses, and dominance is not monotone in
// MaxDist). Case 3 prunes need no deferral: distk never increases, so
// MinDist(S,Sq) > distk at any time implies MaxDist(Sk_final,Sq) ≤ distk <
// MinDist(S,Sq), which is DCMinMax — dominance by the final Sk is already
// proven. The deferred items are re-filtered against the final Sk in
// finish(), making the search return exactly the Definition 2 answer when
// the criterion is correct and sound.
type bestList struct {
	sq       geom.Sphere
	k        int
	crit     dominance.Criterion
	hyp      bool                   // crit is the Hyperbola criterion
	pp       dominance.PreparedPair // kernel scratch for the hyp fast path
	entries  []entry
	deferred []entry
	stats    *Stats

	// Execution tracing and shadow evaluation (ISSUE 4). tb is non-nil only
	// while the owning search is sampled for tracing; critLabel is the
	// criterion's interned name for DomCheck spans. shadow mirrors
	// dominance.ShadowOn at reset time so the per-check branch is a plain
	// bool load.
	tb        *obs.TraceBuf
	critLabel obs.LabelID
	shadow    bool

	// Scratch-local observability tallies: finish() merge passes that had
	// deferred candidates to fold back in, and how many. Drained per
	// search by scratch.flushObs.
	deferMerges uint64
	deferItems  uint64

	// ext is the scatter-gather distK pushdown bound (DESIGN.md §13), nil
	// for single-index searches. When set, node-prune decisions read
	// pruneBound() — min(local distK, ext) — and offerDist publishes the
	// running local distK back into ext whenever it shrinks. lastPub
	// remembers the last value published so unchanged distKs skip the
	// atomic.
	ext     *Bound
	lastPub float64
}

type entry struct {
	item    Item
	maxDist float64
	minDist float64
}

// reset reinitialises the list for a new search, reusing the entry storage
// retained from previous searches on the same scratch.
func (l *bestList) reset(sq geom.Sphere, k int, crit dominance.Criterion, stats *Stats) {
	l.sq = sq
	l.k = k
	l.crit = crit
	_, l.hyp = crit.(dominance.Hyperbola)
	l.stats = stats
	l.entries = l.entries[:0]
	l.deferred = l.deferred[:0]
	l.tb = nil
	l.critLabel = 0
	l.shadow = dominance.ShadowOn()
	l.ext = nil
	l.lastPub = math.Inf(1)
}

// dominates runs one criterion check of the search. With the Hyperbola
// criterion it goes through the dominance kernel's prepared-pair path —
// identical verdicts, no interface dispatch, and the degenerate/overlap
// exits factored up front.
func (l *bestList) dominates(sa, sb geom.Sphere) bool {
	if l.hyp {
		l.pp.Reset(sa, sb)
		return l.pp.Dominates(l.sq)
	}
	return l.crit.Dominates(sa, sb, l.sq)
}

// check is the audited form of dominates: it owns the DomChecks count for
// its call site, routes through shadow evaluation when enabled (the
// returned verdict is always the primary criterion's), and emits a DomCheck
// span — with the check's quartic-solve cost on the Hyperbola path — when
// the search is traced.
func (l *bestList) check(phase uint8, sa, sb geom.Sphere, itemID int) bool {
	l.stats.DomChecks++
	if l.shadow {
		v := dominance.ShadowAudit(l.crit, sa, sb, l.sq, l.tb)
		if l.tb != nil {
			l.tb.DomCheck(phase, l.critLabel, int64(itemID), v, 0)
		}
		return v
	}
	if l.tb == nil {
		return l.dominates(sa, sb)
	}
	var q0 uint64
	if l.hyp {
		q0 = l.pp.QuarticSolves()
	}
	v := l.dominates(sa, sb)
	var dq uint64
	if l.hyp {
		// The tally auto-flushes every obsFlushEvery queries; a wrapped
		// window reads as zero rather than garbage.
		if q := l.pp.QuarticSolves(); q > q0 {
			dq = q - q0
		}
	}
	l.tb.DomCheck(phase, l.critLabel, int64(itemID), v, dq)
	return v
}

// notePrune owns the Pruned count for its call site and emits the matching
// ItemPrune span when the search is traced — span counts and the knn.pruned
// counter stay exactly equal by construction.
func (l *bestList) notePrune(phase uint8, e entry) {
	l.stats.Pruned++
	if l.tb != nil {
		l.tb.ItemPrune(phase, int64(e.item.ID), e.minDist)
	}
}

// distK returns the k-th smallest MaxDist in L, or +Inf while L holds fewer
// than k entries.
func (l *bestList) distK() float64 {
	if len(l.entries) < l.k {
		return math.Inf(1)
	}
	return l.entries[l.k-1].maxDist
}

// sk returns the entry whose MaxDist is the k-th smallest.
func (l *bestList) sk() Item { return l.entries[l.k-1].item }

// pruneBound returns the tightest node-prune bound available: the local
// distK, sharpened by the external scatter-gather bound when one is wired
// in. Only NODE prune decisions consult it — item-level Case 2/3 logic
// stays on the local distK, because those cases feed the candidate stream
// the merge layer filters (and the local Sk semantics they encode must not
// shift under a racing external value). Pruning a node by ext is safe for
// the same Lemma 9 argument as Case 3: ext ≥ the final global distK at all
// times, so MinDist > ext proves dominance by the final global Sk.
func (l *bestList) pruneBound() float64 {
	dk := l.distK()
	if l.ext != nil {
		if e := l.ext.Load(); e < dk {
			dk = e
		}
	}
	return dk
}

// publish pushes the running local distK into the external bound when it
// shrank since the last publication. Called after every list mutation that
// can lower distK; the lastPub guard makes the common no-change case one
// float compare.
func (l *bestList) publish() {
	if l.ext == nil || len(l.entries) < l.k {
		return
	}
	if dk := l.entries[l.k-1].maxDist; dk < l.lastPub {
		l.lastPub = dk
		l.ext.Tighten(dk)
	}
}

// add inserts e keeping the order by MaxDist (ties by ID for determinism).
func (l *bestList) add(e entry) {
	i := sort.Search(len(l.entries), func(i int) bool {
		if l.entries[i].maxDist != e.maxDist {
			return l.entries[i].maxDist > e.maxDist
		}
		return l.entries[i].item.ID > e.item.ID
	})
	l.entries = append(l.entries, entry{})
	copy(l.entries[i+1:], l.entries[i:])
	l.entries[i] = e
}

// offer processes one data item through the Case 1–3 logic of Section 6.
func (l *bestList) offer(it Item) {
	l.offerDist(it, vec.Dist(it.Sphere.Center, l.sq.Center))
}

// offerDist is offer with the item's center-to-query distance already in
// hand: the packed leaf pass computes it for a whole leaf in one streaming
// kernel call, and both MaxDist and MinDist derive from it — in exactly the
// operation order of geom.MaxDist/geom.MinDist, which keeps the pointer and
// packed paths bit-identical — for the price of a single sqrt.
func (l *bestList) offerDist(it Item, dist float64) {
	l.stats.Items++
	minDist := dist - it.Sphere.Radius - l.sq.Radius
	if !(minDist > 0) {
		minDist = 0
	}
	e := entry{
		item:    it,
		maxDist: dist + it.Sphere.Radius + l.sq.Radius,
		minDist: minDist,
	}
	if len(l.entries) < l.k {
		l.add(e)
		l.publish()
		return
	}
	dk := l.distK()
	switch {
	case e.maxDist <= dk:
		// Case 1: insert, then evict members the new Sk dominates.
		l.add(e)
		l.evictDominated()
		l.publish()
	case e.minDist <= dk:
		// Case 2: the k-th candidate may or may not dominate it (Lemma 10).
		if l.check(obs.PhaseCase2, l.sk().Sphere, it.Sphere, it.ID) {
			l.notePrune(obs.PhaseCase2, e)
			l.deferred = append(l.deferred, e)
			return
		}
		l.add(e)
	default:
		// Case 3: Lemma 9 — MinMax-provably dominated.
		l.notePrune(obs.PhaseCase3, e)
	}
}

// evictDominated removes every member dominated by the current Sk wrt Sq.
// Sk itself is safe: a sphere overlaps itself, so no criterion can report
// it dominated.
func (l *bestList) evictDominated() {
	sk := l.sk()
	dk := l.entries[l.k-1].maxDist
	kept := l.entries[:0]
	for _, e := range l.entries {
		// DCMinMax fast path: MinDist(e,Sq) > MaxDist(Sk,Sq) proves Sk
		// dominates e from the cached entry bounds alone — the same Lemma 9
		// argument Case 3 relies on — so the prepared-pair machinery never
		// runs and no DomCheck is recorded (it is a bound comparison, not a
		// criterion invocation; spans, shadow audits and the DomChecks stat
		// all track criterion invocations and stay equal by construction).
		// Entries can hold MinDist > distk only because distk shrank after
		// they were admitted, which is exactly the population this evicts.
		// Evicted members land in deferred either way and finish()
		// re-filters every entry against the final Sk, so which proof
		// evicts is invisible in the answer.
		if e.minDist > dk {
			l.notePrune(obs.PhaseEvict, e)
			l.deferred = append(l.deferred, e)
			continue
		}
		if l.check(obs.PhaseEvict, sk.Sphere, e.item.Sphere, e.item.ID) {
			l.notePrune(obs.PhaseEvict, e)
			l.deferred = append(l.deferred, e)
			continue
		}
		kept = append(kept, e)
	}
	l.entries = kept
}

// finish applies the final Definition 2 filter — against the final Sk — to
// the live list and the deferred candidates, and returns the answer in
// MaxDist order.
func (l *bestList) finish() []Item {
	if len(l.entries) == 0 {
		return nil
	}
	if len(l.entries) < l.k {
		// Fewer than k objects in the database: everything qualifies.
		// (Deferral and eviction require |L| ≥ k, so deferred is empty.)
		out := make([]Item, len(l.entries))
		for i, e := range l.entries {
			out[i] = e.item
		}
		return out
	}
	sk := l.sk()
	if len(l.deferred) > 0 {
		l.deferMerges++
		l.deferItems += uint64(len(l.deferred))
	}
	// The live list is already ordered by (MaxDist, ID) — add() maintains
	// that invariant — so sorting the deferred candidates in place and
	// merging the two runs replaces the old gather-into-one-slice +
	// sort.Slice pass, which allocated a combined buffer, a closure and a
	// reflect swapper on every search.
	sortEntries(l.deferred)
	out := make([]Item, 0, len(l.entries)+len(l.deferred))
	i, j := 0, 0
	for i < len(l.entries) || j < len(l.deferred) {
		var e entry
		var wasDeferred bool
		if j >= len(l.deferred) || (i < len(l.entries) && entryLess(l.entries[i], l.deferred[j])) {
			e = l.entries[i]
			i++
		} else {
			e = l.deferred[j]
			wasDeferred = true
			j++
		}
		if l.check(obs.PhaseFinal, sk.Sphere, e.item.Sphere, e.item.ID) {
			l.notePrune(obs.PhaseFinal, e)
			continue
		}
		if wasDeferred {
			l.stats.Resurrected++
		}
		out = append(out, e.item)
	}
	return out
}

// entryLess orders entries by ascending MaxDist, ties by ID — the result
// order of Definition 2 answers.
func entryLess(a, b entry) bool {
	if a.maxDist != b.maxDist {
		return a.maxDist < b.maxDist
	}
	return a.item.ID < b.item.ID
}

// sortEntries sorts es by entryLess without allocating: insertion sort for
// the short deferred lists of typical searches, in-place heapsort beyond
// that so adversarial workloads cannot go quadratic.
func sortEntries(es []entry) {
	if len(es) <= 32 {
		for i := 1; i < len(es); i++ {
			e := es[i]
			j := i - 1
			for j >= 0 && entryLess(e, es[j]) {
				es[j+1] = es[j]
				j--
			}
			es[j+1] = e
		}
		return
	}
	siftEntries := func(root, end int) {
		for {
			c := 2*root + 1
			if c >= end {
				return
			}
			if c+1 < end && entryLess(es[c], es[c+1]) {
				c++
			}
			if !entryLess(es[root], es[c]) {
				return
			}
			es[root], es[c] = es[c], es[root]
			root = c
		}
	}
	for i := len(es)/2 - 1; i >= 0; i-- {
		siftEntries(i, len(es))
	}
	for end := len(es) - 1; end > 0; end-- {
		es[0], es[end] = es[end], es[0]
		siftEntries(0, end)
	}
}
