package knn

import (
	"math/rand"
	"path/filepath"
	"testing"

	"hyperdom/internal/dominance"
	"hyperdom/internal/geom"
	"hyperdom/internal/mtree"
	"hyperdom/internal/packed"
	"hyperdom/internal/rtree"
	"hyperdom/internal/sstree"
)

// buildFrozen builds, fills and freezes one substrate index and returns
// both the live adapter and its packed snapshot.
func buildFrozen(t *testing.T, substrate string, items []Item, d int) (Index, *packed.Tree) {
	t.Helper()
	switch substrate {
	case "sstree":
		tr := sstree.New(d, sstree.WithMaxFill(16))
		for _, it := range items {
			tr.Insert(it)
		}
		return WrapSSTree(tr), tr.Freeze()
	case "mtree":
		tr := mtree.New(d, mtree.WithMaxFill(16))
		for _, it := range items {
			tr.Insert(it)
		}
		return WrapMTree(tr), tr.Freeze()
	case "rtree":
		tr := rtree.New(d, rtree.WithMaxFill(16))
		for _, it := range items {
			tr.Insert(it)
		}
		return WrapRTree(tr), tr.Freeze()
	}
	t.Fatalf("unknown substrate %q", substrate)
	return nil, nil
}

func eqResult(t *testing.T, label string, want, got Result) {
	t.Helper()
	if want.K != got.K || len(want.Items) != len(got.Items) {
		t.Fatalf("%s: %d items (k=%d), want %d (k=%d)", label, len(got.Items), got.K, len(want.Items), want.K)
	}
	for i := range want.Items {
		w, g := want.Items[i], got.Items[i]
		if w.ID != g.ID || w.Sphere.Radius != g.Sphere.Radius {
			t.Fatalf("%s: item %d = {id %d, r %v}, want {id %d, r %v}", label, i, g.ID, g.Sphere.Radius, w.ID, w.Sphere.Radius)
		}
		for j := range w.Sphere.Center {
			if w.Sphere.Center[j] != g.Sphere.Center[j] {
				t.Fatalf("%s: item %d center[%d] = %v, want %v", label, i, j, g.Sphere.Center[j], w.Sphere.Center[j])
			}
		}
	}
	if want.Stats != got.Stats {
		t.Fatalf("%s: stats %+v, want %+v", label, got.Stats, want.Stats)
	}
}

// TestLoadedSnapshotBitIdentity is the round-trip lock (ISSUE 10): a
// snapshot loaded from disk — through the copying path and the mmap path
// alike — must answer every query with bit-identical result sets AND
// bit-identical knn.Stats versus the in-memory original, across all three
// substrates, both traversal strategies and all three quantization tiers.
func TestLoadedSnapshotBitIdentity(t *testing.T) {
	prev := SetQuantMode(QuantNone)
	defer SetQuantMode(prev)
	rng := rand.New(rand.NewSource(1010))
	const d, n = 4, 3000
	for _, substrate := range []string{"sstree", "mtree", "rtree"} {
		t.Run(substrate, func(t *testing.T) {
			items := randItems(rng, d, n, 2)
			orig, pt := buildFrozen(t, substrate, items, d)
			path := filepath.Join(t.TempDir(), substrate+".hds")
			if err := pt.Save(path); err != nil {
				t.Fatalf("Save: %v", err)
			}
			mm, err := packed.Open(path)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			defer mm.Close()
			cp, err := packed.Load(path)
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			defer cp.Close()
			if want := packed.SubstrateFromString(substrate); mm.Tree.Substrate() != want {
				t.Fatalf("substrate stamp = %v, want %v", mm.Tree.Substrate(), want)
			}
			loaded := []struct {
				name string
				idx  Index
			}{
				{"mmap", WrapPacked(mm.Tree)},
				{"copy", WrapPacked(cp.Tree)},
			}
			queries := make([]geom.Sphere, 12)
			for i := range queries {
				queries[i] = randQuery(rng, d, 2)
			}
			for _, qm := range []QuantMode{QuantNone, QuantF32, QuantI8} {
				SetQuantMode(qm)
				for _, algo := range []Algorithm{DF, HS} {
					for qi, sq := range queries {
						k := 1 + qi
						want := Search(orig, sq, k, dominance.Hyperbola{}, algo)
						for _, ld := range loaded {
							got := Search(ld.idx, sq, k, dominance.Hyperbola{}, algo)
							eqResult(t, substrate+"/"+qm.String()+"/"+algo.String()+"/"+ld.name, want, got)
						}
					}
				}
			}
			SetQuantMode(QuantNone)
		})
	}
}

// TestLoadedSnapshotEmpty: an empty snapshot round-trips and serves empty
// answers through both load paths.
func TestLoadedSnapshotEmpty(t *testing.T) {
	tr := sstree.New(3)
	pt := tr.Freeze()
	path := filepath.Join(t.TempDir(), "empty.hds")
	if err := pt.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	s, err := packed.Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	res := Search(WrapPacked(s.Tree), geom.Sphere{Center: []float64{0, 0, 0}, Radius: 1}, 3, dominance.Hyperbola{}, HS)
	if len(res.Items) != 0 {
		t.Fatalf("%d items from an empty snapshot", len(res.Items))
	}
}

// TestSearchAllocsLoaded holds the loaded-snapshot path (mmap-backed
// WrapPacked) to the same steady-state allocation budget as the in-memory
// packed path: loading from disk must not reintroduce per-search
// allocation.
func TestSearchAllocsLoaded(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-item fixture")
	}
	if raceEnabled {
		t.Skip("race instrumentation allocates; AllocsPerRun is meaningless under -race")
	}
	idx, queries := allocFixture(10000)
	pt := idx.(ssAdapter).t.Freeze()
	path := filepath.Join(t.TempDir(), "alloc.hds")
	if err := pt.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	s, err := packed.Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	loaded := WrapPacked(s.Tree)
	for _, algo := range []Algorithm{DF, HS} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			q := 0
			for i := 0; i < 4; i++ {
				Search(loaded, queries[i], 10, dominance.Hyperbola{}, algo)
			}
			allocs := testing.AllocsPerRun(64, func() {
				Search(loaded, queries[q%len(queries)], 10, dominance.Hyperbola{}, algo)
				q++
			})
			if allocs > searchAllocBudget {
				t.Errorf("%v loaded: %.1f allocs per search, budget %d", algo, allocs, searchAllocBudget)
			}
		})
	}
}
